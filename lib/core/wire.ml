(* The serve daemon's wire format: newline-delimited JSON, hand-rolled
   (the toolchain has no JSON library and the protocol needs only the
   core grammar).  One request per line in, one response per line out;
   the printer never emits a raw newline, so framing is trivial.

   Bit-exactness across the wire: performance numbers travel twice,
   as a decimal [Num] for humans and as a ["%h"] hex string — decimal
   printing uses 17 significant digits (lossless for binary64), and
   the hex field makes the cold-vs-warm bit-equality check in CI a
   plain string comparison. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ---- printer ---------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_string f =
  if Float.is_nan f || Float.is_integer f = false then
    if Float.is_finite f then Printf.sprintf "%.17g" f
    else "null" (* JSON has no infinities; nan falls through below *)
  else if Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      Buffer.add_string buf
        (if Float.is_finite f then number_string f else "null")
  | Str s -> escape_string buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* ---- parser ----------------------------------------------------------- *)

exception Parse of string

let of_string ?max_bytes s =
  match max_bytes with
  | Some m when String.length s > m ->
      Error
        (Printf.sprintf "payload too large: %d bytes (limit %d)"
           (String.length s) m)
  | _ -> (
      let n = String.length s in
      let pos = ref 0 in
      let fail fmt =
        Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s at byte %d" m !pos))) fmt
      in
      let peek () = if !pos >= n then fail "unexpected end of input" else s.[!pos] in
      let advance () = incr pos in
      let skip_ws () =
        while
          !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
        do
          incr pos
        done
      in
      let expect c =
        if peek () <> c then fail "expected %C" c;
        advance ()
      in
      let literal word v =
        String.iter expect word;
        v
      in
      let parse_hex4 () =
        let v = ref 0 in
        for _ = 1 to 4 do
          let d =
            match peek () with
            | '0' .. '9' as c -> Char.code c - Char.code '0'
            | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
            | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
            | _ -> fail "bad \\u escape"
          in
          v := (!v * 16) + d;
          advance ()
        done;
        !v
      in
      let add_utf8 buf cp =
        if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
        else if cp < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
        end
        else if cp < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
        end
      in
      (* A \u escape in 0xD800-0xDBFF is a UTF-16 high surrogate: combine
         it with an immediately following \uDC00-\uDFFF low surrogate
         into one non-BMP code point.  A lone surrogate keeps the legacy
         3-byte encoding (the input was already non-conforming). *)
      let parse_escaped_cp () =
        let hi = parse_hex4 () in
        if hi >= 0xD800 && hi <= 0xDBFF
           && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
        then begin
          let save = !pos in
          advance ();
          advance ();
          let lo = parse_hex4 () in
          if lo >= 0xDC00 && lo <= 0xDFFF then
            0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
          else begin
            (* not a low surrogate: rewind and let go () re-parse it *)
            pos := save;
            hi
          end
        end
        else hi
      in
      let parse_string () =
        expect '"';
        let buf = Buffer.create 16 in
        let rec go () =
          match peek () with
          | '"' -> advance ()
          | '\\' ->
              advance ();
              (match peek () with
              | '"' -> Buffer.add_char buf '"'; advance ()
              | '\\' -> Buffer.add_char buf '\\'; advance ()
              | '/' -> Buffer.add_char buf '/'; advance ()
              | 'n' -> Buffer.add_char buf '\n'; advance ()
              | 'r' -> Buffer.add_char buf '\r'; advance ()
              | 't' -> Buffer.add_char buf '\t'; advance ()
              | 'b' -> Buffer.add_char buf '\b'; advance ()
              | 'f' -> Buffer.add_char buf '\012'; advance ()
              | 'u' ->
                  advance ();
                  add_utf8 buf (parse_escaped_cp ())
              | c -> fail "bad escape \\%C" c);
              go ()
          | c when Char.code c < 0x20 -> fail "raw control character in string"
          | c ->
              Buffer.add_char buf c;
              advance ();
              go ()
        in
        go ();
        Buffer.contents buf
      in
      let parse_number () =
        let start = !pos in
        let num_char c =
          match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
        in
        while !pos < n && num_char s.[!pos] do
          incr pos
        done;
        let tok = String.sub s start (!pos - start) in
        match float_of_string_opt tok with
        | Some f -> Num f
        | None -> fail "bad number %S" tok
      in
      (* The recursion is bounded: a hostile request of millions of '['
         would otherwise overflow the stack, and Stack_overflow escapes
         the Parse handler below. *)
      let max_depth = 256 in
      let rec parse_value depth =
        if depth > max_depth then fail "nesting deeper than %d" max_depth;
        skip_ws ();
        match peek () with
        | 'n' -> literal "null" Null
        | 't' -> literal "true" (Bool true)
        | 'f' -> literal "false" (Bool false)
        | '"' -> Str (parse_string ())
        | '[' ->
            advance ();
            skip_ws ();
            if peek () = ']' then begin advance (); Arr [] end
            else begin
              let items = ref [ parse_value (depth + 1) ] in
              skip_ws ();
              while peek () = ',' do
                advance ();
                items := parse_value (depth + 1) :: !items;
                skip_ws ()
              done;
              expect ']';
              Arr (List.rev !items)
            end
        | '{' ->
            advance ();
            skip_ws ();
            if peek () = '}' then begin advance (); Obj [] end
            else begin
              let field () =
                skip_ws ();
                let k = parse_string () in
                skip_ws ();
                expect ':';
                let v = parse_value (depth + 1) in
                (k, v)
              in
              let fields = ref [ field () ] in
              skip_ws ();
              while peek () = ',' do
                advance ();
                fields := field () :: !fields;
                skip_ws ()
              done;
              expect '}';
              Obj (List.rev !fields)
            end
        | _ -> parse_number ()
      in
      try
        let v = parse_value 0 in
        skip_ws ();
        if !pos <> n then Error (Printf.sprintf "trailing garbage at byte %d" !pos)
        else Ok v
      with
      | Parse m -> Error m
      | Stack_overflow -> Error "input too deeply nested")

(* ---- field helpers ---------------------------------------------------- *)

let field fields k = List.assoc_opt k fields

let str_opt fields k =
  match field fields k with Some (Str s) -> Some s | _ -> None

let num_opt fields k =
  match field fields k with Some (Num f) -> Some f | _ -> None

let int_opt fields k = Option.map int_of_float (num_opt fields k)

let bool_def fields k d =
  match field fields k with Some (Bool b) -> b | _ -> d

let int_def fields k d = match int_opt fields k with Some v -> v | None -> d
let str_def fields k d = match str_opt fields k with Some v -> v | None -> d

let opt_field k f = function None -> [] | Some v -> [ (k, f v) ]

(* ---- workload --------------------------------------------------------- *)

type workload = {
  w_app : string option;
  w_input : string option;
  w_nodes : int;
  w_cluster : string;
  w_graph : string option;
  w_machine : string option;
}

let default_workload =
  {
    w_app = None;
    w_input = None;
    w_nodes = 1;
    w_cluster = "shepard";
    w_graph = None;
    w_machine = None;
  }

let workload_fields w =
  opt_field "app" (fun s -> Str s) w.w_app
  @ opt_field "input" (fun s -> Str s) w.w_input
  @ [ ("nodes", Num (float_of_int w.w_nodes)); ("cluster", Str w.w_cluster) ]
  @ opt_field "graph" (fun s -> Str s) w.w_graph
  @ opt_field "machine" (fun s -> Str s) w.w_machine

let workload_of_fields fields =
  {
    w_app = str_opt fields "app";
    w_input = str_opt fields "input";
    w_nodes = int_def fields "nodes" default_workload.w_nodes;
    w_cluster = str_def fields "cluster" default_workload.w_cluster;
    w_graph = str_opt fields "graph";
    w_machine = str_opt fields "machine";
  }

(* ---- search config ---------------------------------------------------- *)

let cfg_fields (c : Slice.cfg) =
  let d = Slice.default_cfg in
  let if_ne field v dv mk = if v = dv then [] else [ (field, mk v) ]in
  if_ne "algo" c.Slice.algo d.Slice.algo (fun a -> Str (Slice.algo_spec a))
  @ if_ne "runs" c.Slice.runs d.Slice.runs (fun v -> Num (float_of_int v))
  @ opt_field "noise_sigma" (fun v -> Num v) c.Slice.noise_sigma
  @ opt_field "iterations" (fun v -> Num (float_of_int v)) c.Slice.iterations
  @ if_ne "seed" c.Slice.seed d.Slice.seed (fun v -> Num (float_of_int v))
  @ opt_field "budget" (fun v -> Num v) c.Slice.budget
  @ opt_field "max_trials" (fun v -> Num (float_of_int v)) c.Slice.max_trials
  @ if_ne "batch" c.Slice.batch d.Slice.batch (fun v -> Bool v)
  @ if_ne "min_batch" c.Slice.min_batch d.Slice.min_batch (fun v ->
        Num (float_of_int v))
  @ if_ne "surrogate" c.Slice.surrogate d.Slice.surrogate (fun v -> Bool v)
  @ opt_field "surrogate_skim" (fun v -> Num (float_of_int v)) c.Slice.surrogate_skim
  @ if_ne "symmetry" c.Slice.symmetry d.Slice.symmetry (fun v -> Bool v)
  @ if_ne "dominance" c.Slice.dominance d.Slice.dominance (fun v -> Bool v)
  @ if_ne "heft_seed" c.Slice.heft_seed d.Slice.heft_seed (fun v -> Bool v)
  @ if_ne "final_top" c.Slice.final_top d.Slice.final_top (fun v ->
        Num (float_of_int v))
  @ if_ne "final_runs" c.Slice.final_runs d.Slice.final_runs (fun v ->
        Num (float_of_int v))

let algo_of_spec s =
  match String.split_on_char ':' s with
  | [ "ccd"; r ] ->
      Option.map (fun r -> Driver.Ccd { rotations = r }) (int_of_string_opt r)
  | [ "random"; m ] ->
      Option.map (fun m -> Driver.Random_walk { max_evals = m }) (int_of_string_opt m)
  | [ "annealing"; m ] ->
      Option.map (fun m -> Driver.Annealing { max_evals = m }) (int_of_string_opt m)
  | [ one ] -> Result.to_option (Driver.algo_of_string one)
  | _ -> None

let cfg_of_fields fields =
  let d = Slice.default_cfg in
  let ( let* ) = Result.bind in
  let* algo =
    match str_opt fields "algo" with
    | None -> Ok d.Slice.algo
    | Some s -> (
        match algo_of_spec s with
        | Some a -> Ok a
        | None -> Error (Printf.sprintf "unknown algorithm %S" s))
  in
  Ok
    {
      Slice.algo;
      runs = int_def fields "runs" d.Slice.runs;
      noise_sigma = num_opt fields "noise_sigma";
      iterations = int_opt fields "iterations";
      seed = int_def fields "seed" d.Slice.seed;
      budget = num_opt fields "budget";
      max_trials = int_opt fields "max_trials";
      batch = bool_def fields "batch" d.Slice.batch;
      min_batch = int_def fields "min_batch" d.Slice.min_batch;
      surrogate = bool_def fields "surrogate" d.Slice.surrogate;
      surrogate_skim = int_opt fields "surrogate_skim";
      symmetry = bool_def fields "symmetry" d.Slice.symmetry;
      dominance = bool_def fields "dominance" d.Slice.dominance;
      heft_seed = bool_def fields "heft_seed" d.Slice.heft_seed;
      final_top = int_def fields "final_top" d.Slice.final_top;
      final_runs = int_def fields "final_runs" d.Slice.final_runs;
    }

(* ---- requests --------------------------------------------------------- *)

type request =
  | Ping
  | Status
  | Shutdown
  | Analyze of { an_id : string; workload : workload }
  | Map of {
      m_id : string;
      workload : workload;
      cfg : Slice.cfg;
      wait : bool;
      warm : bool;
    }
  | Poll of { p_id : string }

let request_to_json = function
  | Ping -> Obj [ ("type", Str "ping") ]
  | Status -> Obj [ ("type", Str "status") ]
  | Shutdown -> Obj [ ("type", Str "shutdown") ]
  | Analyze { an_id; workload } ->
      Obj ((("type", Str "analyze") :: ("id", Str an_id) :: workload_fields workload))
  | Map { m_id; workload; cfg; wait; warm } ->
      Obj
        (("type", Str "map") :: ("id", Str m_id)
        :: (if wait then [ ("wait", Bool true) ] else [])
        @ (if warm then [] else [ ("warm", Bool false) ])
        @ workload_fields workload @ cfg_fields cfg)
  | Poll { p_id } -> Obj [ ("type", Str "result"); ("id", Str p_id) ]

let request_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Obj fields -> (
      let* id =
        match str_opt fields "id" with
        | Some id when String.length id > 0 && String.length id <= 128 -> Ok id
        | Some _ -> Error "id must be 1..128 characters"
        | None -> Ok ""
      in
      match str_opt fields "type" with
      | Some "ping" -> Ok Ping
      | Some "status" -> Ok Status
      | Some "shutdown" -> Ok Shutdown
      | Some "analyze" ->
          if id = "" then Error "analyze: missing id"
          else Ok (Analyze { an_id = id; workload = workload_of_fields fields })
      | Some ("map" | "search") ->
          if id = "" then Error "map: missing id"
          else
            let* cfg = cfg_of_fields fields in
            Ok
              (Map
                 {
                   m_id = id;
                   workload = workload_of_fields fields;
                   cfg;
                   wait = bool_def fields "wait" false;
                   warm = bool_def fields "warm" true;
                 })
      | Some ("result" | "poll") ->
          (* "result" is the canonical spelling; "poll" is accepted. *)
          if id = "" then Error "result: missing id" else Ok (Poll { p_id = id })
      | Some other -> Error (Printf.sprintf "unknown request type %S" other)
      | None -> Error "missing request type")
  | _ -> Error "request must be a JSON object"

(* ---- responses -------------------------------------------------------- *)

type job_state = Queued | Running | Done | Failed

let job_state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"

let job_state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | _ -> None

type result_payload = {
  r_id : string;
  r_state : job_state;
  r_mapping : string option;   (* canonical key, when done *)
  r_perf : float option;       (* final protocol average (or best-so-far) *)
  r_perf_hex : string option;  (* the same value, %h — bit-exact *)
  r_trials : int;
  r_cached : bool;             (* answered from the result memo *)
  r_warm_started : bool;
  r_error : string option;     (* failure reason, when failed *)
}

type response =
  | Pong
  | R_error of { e_id : string option; message : string }
  | R_accepted of { a_id : string }
  | R_status of {
      requests : int;
      jobs : (string * job_state) list;
      counters : (string * int) list;
    }
  | R_analysis of { ra_id : string; report : string list }
  | R_result of result_payload

let response_to_json = function
  | Pong -> Obj [ ("type", Str "pong") ]
  | R_error { e_id; message } ->
      Obj
        (("type", Str "error")
         :: opt_field "id" (fun s -> Str s) e_id
        @ [ ("message", Str message) ])
  | R_accepted { a_id } -> Obj [ ("type", Str "accepted"); ("id", Str a_id) ]
  | R_status { requests; jobs; counters } ->
      Obj
        [
          ("type", Str "status");
          ("requests", Num (float_of_int requests));
          ("jobs", Obj (List.map (fun (k, s) -> (k, Str (job_state_to_string s))) jobs));
          ("counters", Obj (List.map (fun (k, v) -> (k, Num (float_of_int v))) counters));
        ]
  | R_analysis { ra_id; report } ->
      Obj
        [
          ("type", Str "analysis");
          ("id", Str ra_id);
          ("report", Arr (List.map (fun l -> Str l) report));
        ]
  | R_result r ->
      Obj
        (("type", Str "result")
         :: ("id", Str r.r_id)
         :: ("state", Str (job_state_to_string r.r_state))
         :: opt_field "mapping" (fun s -> Str s) r.r_mapping
        @ opt_field "perf" (fun v -> Num v) r.r_perf
        @ opt_field "perf_hex" (fun s -> Str s) r.r_perf_hex
        @ [
            ("trials", Num (float_of_int r.r_trials));
            ("cached", Bool r.r_cached);
            ("warm_started", Bool r.r_warm_started);
          ]
        @ opt_field "error" (fun s -> Str s) r.r_error)

let response_of_json j =
  let ( let* ) = Result.bind in
  match j with
  | Obj fields -> (
      match str_opt fields "type" with
      | Some "pong" -> Ok Pong
      | Some "error" -> (
          match str_opt fields "message" with
          | Some message -> Ok (R_error { e_id = str_opt fields "id"; message })
          | None -> Error "error response: missing message")
      | Some "accepted" -> (
          match str_opt fields "id" with
          | Some a_id -> Ok (R_accepted { a_id })
          | None -> Error "accepted response: missing id")
      | Some "status" ->
          let* jobs =
            match field fields "jobs" with
            | Some (Obj js) ->
                List.fold_left
                  (fun acc (k, v) ->
                    let* acc = acc in
                    match v with
                    | Str s -> (
                        match job_state_of_string s with
                        | Some st -> Ok ((k, st) :: acc)
                        | None -> Error (Printf.sprintf "bad job state %S" s))
                    | _ -> Error "job state must be a string")
                  (Ok []) js
                |> Result.map List.rev
            | None -> Ok []
            | Some _ -> Error "jobs must be an object"
          in
          let* counters =
            match field fields "counters" with
            | Some (Obj cs) ->
                List.fold_left
                  (fun acc (k, v) ->
                    let* acc = acc in
                    match v with
                    | Num f -> Ok ((k, int_of_float f) :: acc)
                    | _ -> Error "counter must be a number")
                  (Ok []) cs
                |> Result.map List.rev
            | None -> Ok []
            | Some _ -> Error "counters must be an object"
          in
          Ok (R_status { requests = int_def fields "requests" 0; jobs; counters })
      | Some "analysis" -> (
          match (str_opt fields "id", field fields "report") with
          | Some ra_id, Some (Arr lines) ->
              let* report =
                List.fold_left
                  (fun acc l ->
                    let* acc = acc in
                    match l with
                    | Str s -> Ok (s :: acc)
                    | _ -> Error "report lines must be strings")
                  (Ok []) lines
                |> Result.map List.rev
              in
              Ok (R_analysis { ra_id; report })
          | None, _ -> Error "analysis response: missing id"
          | _, _ -> Error "analysis response: missing report")
      | Some "result" -> (
          match (str_opt fields "id", str_opt fields "state") with
          | Some r_id, Some state -> (
              match job_state_of_string state with
              | Some r_state ->
                  Ok
                    (R_result
                       {
                         r_id;
                         r_state;
                         r_mapping = str_opt fields "mapping";
                         r_perf = num_opt fields "perf";
                         r_perf_hex = str_opt fields "perf_hex";
                         r_trials = int_def fields "trials" 0;
                         r_cached = bool_def fields "cached" false;
                         r_warm_started = bool_def fields "warm_started" false;
                         r_error = str_opt fields "error";
                       })
              | None -> Error (Printf.sprintf "bad result state %S" state))
          | _ -> Error "result response: missing id or state")
      | Some other -> Error (Printf.sprintf "unknown response type %S" other)
      | None -> Error "missing response type")
  | _ -> Error "response must be a JSON object"

(* ---- line-level conveniences ------------------------------------------ *)

let default_max_bytes = 4 * 1024 * 1024

let request_of_string ?(max_bytes = default_max_bytes) line =
  Result.bind (of_string ~max_bytes line) request_of_json

let request_to_string r = to_string (request_to_json r)

let response_of_string ?(max_bytes = default_max_bytes) line =
  Result.bind (of_string ~max_bytes line) response_of_json

let response_to_string r = to_string (response_to_json r)
