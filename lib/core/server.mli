(** Mapping-as-a-service: the [automap_cli serve] daemon's core.

    `map` requests become jobs whose searches run as chains of {!Slice}
    quanta on a pool of worker domains; between quanta a job re-enters
    the back of a FIFO, so concurrent requests make interleaved
    progress — a long search cannot starve an [analyze] or a short
    search.  Everything cross-request is memoized behind one mutex:

    - a compile LRU of {!Exec.compiled} artifacts keyed by (machine
      fingerprint, graph fingerprint), weighed by {!Exec.compiled_words};
    - a result memo keyed additionally by {!Slice.fingerprint}: an
      exact repeat is answered at submit time, bit-equal to the run
      that populated the entry, without invoking the simulator;
    - an incumbent table per (machine, graph): near-repeats (different
      search config) warm-start from the best known mapping;
    - a profiles pool per (machine, graph, eval fingerprint), merged
      after every slice, seeding fresh starts.  Resumed slices restore
      their profiles from the checkpoint envelope, never the pool, so
      per-job decision identity survives restarts.

    Durability: accepted jobs persist a meta file (the request with the
    workload inlined as codec text, the warm-start choice pinned) and,
    after every paused slice, the checkpoint envelope — temp+rename
    writes into [state_dir].  {!recover} rescans that directory; each
    orphan resumes from its envelope decision-identically. *)

type t

val create :
  ?slice_trials:int ->
  ?compile_entries:int ->
  ?compile_bytes:int ->
  ?memo_entries:int ->
  ?state_dir:string ->
  unit ->
  t
(** A server with no workers yet.  [slice_trials] (default 40) is the
    scheduling quantum in evaluated trials; [compile_entries] /
    [compile_bytes] (32 / 256 MiB) bound the compile LRU;
    [memo_entries] (512) the result memo.  [state_dir] (created if
    missing) enables checkpoint persistence. *)

val recover : t -> int
(** Rescan [state_dir] and re-enqueue every orphaned job (meta file
    present, no terminal result).  Returns the number recovered. *)

(** {1 Request handling}

    Safe from any domain.  [analyze], [status], [ping] and memo-hit
    [map] requests are answered inline; other [map] requests enqueue a
    job and return [accepted]. *)

val handle : t -> Wire.request -> Wire.response

val handle_line : t -> string -> Wire.response
(** Parse one request line (with the {!Wire.default_max_bytes} guard)
    and handle it; parse errors become error responses. *)

(** {1 Driving}

    In-process mode (tests, benches): no domains — call {!step} /
    {!drain} to run queued slices on the calling thread, deterministic
    and single-threaded.  Daemon mode: {!start_workers} + {!serve}. *)

val step : t -> bool
(** Run one queued job for one slice quantum; false if the queue was
    empty.  A paused job re-enters the back of the queue. *)

val drain : t -> unit
(** {!step} until the queue is empty. *)

val start_workers : t -> int -> unit Domain.t list

val stop : t -> unit
(** Ask workers to exit at their next slice boundary (their current
    slice's envelope is persisted before the job becomes visible
    again, so stopping never loses committed progress). *)

val stopping : t -> bool

(** {1 Socket serving} *)

type endpoint = Unix_path of string | Tcp of int
(** A Unix-domain socket path, or a TCP port on loopback. *)

val serve : ?workers:int -> t -> endpoint -> unit
(** Blocking accept loop: newline-delimited JSON requests in,
    responses out; [workers] (default 1) domains run the slices.
    Returns after a [shutdown] request or SIGTERM/SIGINT, having
    joined the workers and restored signal handlers — all in-flight
    search state is then on disk (given [state_dir]). *)
