(** The serve daemon's wire protocol: newline-delimited JSON.

    Hand-rolled codec (the toolchain carries no JSON library): a
    minimal [json] value type, a recursive-descent parser with an
    oversized-payload guard, a compact printer that never emits a raw
    newline (so one line = one message), and typed request/response
    encodings shared by the server, the CLI client, tests and the
    servrate bench.

    Bit-exactness: result performance travels both as a decimal
    number (17 significant digits — lossless for binary64) and as a
    ["%h"] hex string, so "warm repeat equals cold run to the bit" is
    a plain string comparison on the wire. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact print, no raw newlines.  Non-finite numbers print as
    [null] (JSON has no representation for them). *)

val of_string : ?max_bytes:int -> string -> (json, string) result
(** Parse one JSON value; trailing non-whitespace is an error.  When
    [max_bytes] is given, inputs longer than it are rejected up front
    without parsing — the server's defence against hostile payloads. *)

(** {1 Requests} *)

type workload = {
  w_app : string option;      (** bundled app name (see [App.find]) *)
  w_input : string option;    (** app input; default: the app's first *)
  w_nodes : int;
  w_cluster : string;         (** machine preset name *)
  w_graph : string option;    (** inline graph codec text — overrides [w_app] *)
  w_machine : string option;  (** inline machine codec text — overrides [w_cluster] *)
}

val default_workload : workload
(** One node of the shepard preset, no app. *)

type request =
  | Ping
  | Status
  | Shutdown
  | Analyze of { an_id : string; workload : workload }
  | Map of {
      m_id : string;
      workload : workload;
      cfg : Slice.cfg;
      wait : bool;
      warm : bool;
    }
      (** [wait] holds the connection until the search finishes rather
          than answering [accepted] immediately.  [warm] (default true)
          permits seeding the search from a cached incumbent for the
          same (machine, graph); pass false for a reproducible cold
          run. *)
  | Poll of { p_id : string }  (** fetch the result of an earlier [Map] *)

val request_to_json : request -> json

val request_of_json : json -> (request, string) result
(** Unknown types, missing ids and malformed config fields are
    [Error]s (the server turns them into error responses).  Search
    config fields absent from a [map] request take their
    {!Slice.default_cfg} values. *)

(** {1 Responses} *)

type job_state = Queued | Running | Done | Failed

val job_state_to_string : job_state -> string
val job_state_of_string : string -> job_state option

type result_payload = {
  r_id : string;
  r_state : job_state;
  r_mapping : string option;   (** canonical mapping key, when done *)
  r_perf : float option;       (** final average; best-so-far when pending *)
  r_perf_hex : string option;  (** the same value as ["%h"] — bit-exact *)
  r_trials : int;
  r_cached : bool;             (** answered from the cross-request result memo *)
  r_warm_started : bool;       (** search was seeded from a memoized incumbent *)
  r_error : string option;     (** failure reason, when [Failed] *)
}

type response =
  | Pong
  | R_error of { e_id : string option; message : string }
  | R_accepted of { a_id : string }
  | R_status of {
      requests : int;  (** requests served since daemon start *)
      jobs : (string * job_state) list;
      counters : (string * int) list;
          (** cache/scheduler counters — compile_hits, result_hits,
              warm_starts, evictions, resident bytes, … *)
    }
  | R_analysis of { ra_id : string; report : string list }
  | R_result of result_payload

val response_to_json : response -> json
val response_of_json : json -> (response, string) result

(** {1 Line-level conveniences} *)

val default_max_bytes : int
(** 4 MiB — generous for inline graph/machine codec text, small enough
    to bound a hostile request line. *)

val request_of_string : ?max_bytes:int -> string -> (request, string) result
val request_to_string : request -> string
val response_of_string : ?max_bytes:int -> string -> (response, string) result
val response_to_string : response -> string
