(* Mapping-as-a-service: the serve daemon's core.

   Requests arrive as {!Wire} messages; `map` requests become jobs whose
   searches run as chains of {!Slice} quanta on a worker pool, re-enqueued
   at the back of a FIFO between quanta — a long search therefore cannot
   starve anything; every queued job gets a slice per round.

   Cross-request memoization, all behind one mutex:

   - resolution cache: LRU of (machine, graph, pair fp) keyed by the
     workload's literal fields; repeat requests skip preset/graph
     construction and fingerprinting, so a memo hit is pure lookups.
   - compile cache: LRU of {!Exec.compiled} keyed (machine fp, graph fp),
     weighed by {!Exec.compiled_words}.  Workers share the immutable
     compiled problem and build a private scratch per slice.
   - result memo: LRU keyed (machine fp, graph fp, {!Slice.fingerprint});
     an exact repeat is answered at submit time, bit-equal to the run
     that populated the entry, without touching the simulator.
   - incumbents: best known mapping per (machine fp, graph fp); a
     near-repeat (same workload, different search config) warm-starts
     from it instead of the default/HEFT start.
   - profiles pool: measured-run databases per (machine fp, graph fp,
     eval fingerprint), merged after every slice, seeding fresh starts.
     Resumed slices always restore their database from the checkpoint
     envelope, never the pool — per-job decision identity survives
     daemon restarts.

   Durability: each accepted job persists a meta file (its request, with
   the workload inlined as codec text) and, after every paused slice, a
   checkpoint envelope — both via write-to-temp-then-rename.  SIGTERM
   stops workers at their next slice boundary; a restarted daemon
   rescans the state directory and resumes each orphan from its
   envelope, decision-identically (the envelope is the complete search
   state).  Jobs that never ran a slice restart from scratch, which is
   the same thing: they had made no decisions (their warm-start choice,
   made at accept time, is pinned in the meta file). *)

type job = {
  jb_id : string;
  jb_cfg : Slice.cfg;
  jb_machine : Machine.t;
  jb_graph : Graph.t;
  jb_pair : string;      (* machine fp / graph fp *)
  jb_memo_key : string;  (* pair / full search-config fingerprint *)
  jb_pool_key : string;  (* pair / eval fingerprint *)
  jb_warm : Mapping.t option;  (* incumbent seed, first slice only *)
  mutable jb_state : Wire.job_state;
  mutable jb_ckpt : string option;
  mutable jb_trials : int;
  mutable jb_best : float;  (* best perf so far; nan until first slice *)
  mutable jb_result : Wire.result_payload option;
}

type memo = { mm_mapping : string; mm_perf : float; mm_trials : int }

type t = {
  mu : Mutex.t;
  work : Condition.t;
  queue : string Queue.t;
  jobs : (string, job) Hashtbl.t;
  compile_cache : Exec.compiled Cache.t;
  result_memo : memo Cache.t;
  resolve_cache : (Machine.t * Graph.t * string) Cache.t;
  incumbents : (string, string * float) Hashtbl.t;
  pool : (string, string) Hashtbl.t;
  slice_trials : int;
  state_dir : string option;
  mutable stopping : bool;
  mutable requests : int;
  mutable warm_starts : int;
  mutable slices : int;
  mutable completed : int;
}

(* ---- fingerprints and persistence paths ------------------------------- *)

let pair_key machine graph =
  Machine_codec.fingerprint machine ^ "/" ^ Graph_codec.fingerprint graph

let id_ok id =
  String.length id > 0 && String.length id <= 128
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       id

let meta_path dir id = Filename.concat dir (id ^ ".meta")
let ckpt_path dir id = Filename.concat dir (id ^ ".ckpt")

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

let read_file_opt path =
  if Sys.file_exists path then (
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some s)
  else None

(* ---- workload resolution ---------------------------------------------- *)

let machine_of_preset ~cluster ~nodes = Presets.of_spec cluster ~nodes

let resolve (w : Wire.workload) =
  let ( let* ) = Result.bind in
  let* () =
    (* preset and app constructors raise Invalid_argument on a bad node
       count; reject it here so a hostile request gets an error response *)
    if w.Wire.w_nodes >= 1 then Ok ()
    else Error (Printf.sprintf "nodes must be >= 1 (got %d)" w.Wire.w_nodes)
  in
  let* machine =
    match w.Wire.w_machine with
    | Some text -> Machine_codec.of_string text
    | None -> machine_of_preset ~cluster:w.Wire.w_cluster ~nodes:w.Wire.w_nodes
  in
  let* graph =
    match w.Wire.w_graph with
    | Some text -> Graph_codec.of_string text
    | None -> (
        match w.Wire.w_app with
        | None -> Error "workload needs an app name or inline graph text"
        | Some name -> (
            match App.find name with
            | None -> Error (Printf.sprintf "unknown application %S" name)
            | Some app ->
                let input =
                  match w.Wire.w_input with
                  | Some i -> i
                  | None -> (
                      match app.App.inputs ~nodes:w.Wire.w_nodes with
                      | i :: _ -> i
                      | [] -> "")
                in
                Ok (app.App.graph ~nodes:w.Wire.w_nodes ~input)))
  in
  Ok (machine, graph)

(* ---- construction ----------------------------------------------------- *)

let create ?(slice_trials = 40) ?(compile_entries = 32)
    ?(compile_bytes = 256 * 1024 * 1024) ?(memo_entries = 512) ?state_dir () =
  if slice_trials < 1 then invalid_arg "Server.create: slice_trials must be positive";
  (match state_dir with
  | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
  | _ -> ());
  {
    mu = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    jobs = Hashtbl.create 64;
    compile_cache = Cache.create ~max_entries:compile_entries ~max_bytes:compile_bytes ();
    result_memo = Cache.create ~max_entries:memo_entries ();
    resolve_cache = Cache.create ~max_entries:64 ();
    incumbents = Hashtbl.create 64;
    pool = Hashtbl.create 64;
    slice_trials;
    state_dir;
    stopping = false;
    requests = 0;
    warm_starts = 0;
    slices = 0;
    completed = 0;
  }

(* ---- shared caches ---------------------------------------------------- *)

(* Resolution is deterministic, so (machine, graph, pair fp) triples are
   cached under the workload's literal field tuple: repeat requests — the
   memo-hit hot path — skip preset construction, graph building and MD5
   fingerprinting entirely.  Presence-tagged fields keep None distinct
   from Some "". *)
let workload_key (w : Wire.workload) =
  let opt tag = function None -> "-" | Some s -> tag ^ s in
  String.concat "\x00"
    [
      opt "a:" w.Wire.w_app;
      opt "i:" w.Wire.w_input;
      string_of_int w.Wire.w_nodes;
      String.lowercase_ascii w.Wire.w_cluster;
      opt "g:" w.Wire.w_graph;
      opt "m:" w.Wire.w_machine;
    ]

let resolve_cached t w =
  let key = workload_key w in
  Mutex.lock t.mu;
  let hit = Cache.find t.resolve_cache key in
  Mutex.unlock t.mu;
  match hit with
  | Some triple -> Ok triple
  | None -> (
      match resolve w with
      | Error _ as e -> e
      | Ok (machine, graph) ->
          let triple = (machine, graph, pair_key machine graph) in
          Mutex.lock t.mu;
          Cache.put t.resolve_cache key triple ~weight:1;
          Mutex.unlock t.mu;
          Ok triple)

(* Compile outside the lock: a duplicate concurrent compile of the same
   pair wastes one compile, never corrupts (put replaces). *)
let compiled_for t j =
  Mutex.lock t.mu;
  let hit = Cache.find t.compile_cache j.jb_pair in
  Mutex.unlock t.mu;
  match hit with
  | Some c -> c
  | None ->
      let c = Exec.compile j.jb_machine j.jb_graph in
      Mutex.lock t.mu;
      Cache.put t.compile_cache j.jb_pair c
        ~weight:(Exec.compiled_words c * (Sys.word_size / 8));
      Mutex.unlock t.mu;
      c

(* Line-union merge of profiles-db text: the pool keeps its line for a
   key both sides measured (same eval identity implies the same runs,
   so the choice is cosmetic). *)
let pool_merge t key fresh =
  let merged =
    match Hashtbl.find_opt t.pool key with
    | None -> fresh
    | Some existing ->
        let keys_of s =
          String.split_on_char '\n' s
          |> List.filter_map (fun line ->
                 match String.index_opt line ' ' with
                 | Some i -> Some (String.sub line 0 i, line)
                 | None -> if String.trim line = "" then None else Some (line, line))
        in
        let have = Hashtbl.create 64 in
        List.iter (fun (k, _) -> Hashtbl.replace have k ()) (keys_of existing);
        let extra =
          keys_of fresh
          |> List.filter (fun (k, _) -> not (Hashtbl.mem have k))
          |> List.map snd
        in
        if extra = [] then existing
        else existing ^ String.concat "\n" extra ^ "\n"
  in
  Hashtbl.replace t.pool key merged

let cache_counters t =
  let c = Cache.stats t.compile_cache and r = Cache.stats t.result_memo in
  ( c.Cache.hits,
    c.Cache.misses,
    c.Cache.evictions + r.Cache.evictions,
    c.Cache.resident_bytes + r.Cache.resident_bytes )

(* ---- running one slice ------------------------------------------------ *)

let payload_done j (f : Slice.finished) =
  {
    Wire.r_id = j.jb_id;
    r_state = Wire.Done;
    r_mapping = Some (Mapping.canonical_key f.Slice.best);
    r_perf = Some f.Slice.perf;
    r_perf_hex = Some (Printf.sprintf "%h" f.Slice.perf);
    r_trials = f.Slice.trials;
    r_cached = false;
    r_warm_started = j.jb_warm <> None;
    r_error = None;
  }

let payload_failed j msg =
  {
    Wire.r_id = j.jb_id;
    r_state = Wire.Failed;
    r_mapping = None;
    r_perf = None;
    r_perf_hex = None;
    r_trials = j.jb_trials;
    r_cached = false;
    r_warm_started = j.jb_warm <> None;
    r_error = Some msg;
  }

let clean_state_files t j =
  match t.state_dir with
  | None -> ()
  | Some d ->
      remove_quiet (meta_path d j.jb_id);
      remove_quiet (ckpt_path d j.jb_id)

let run_slice_inner t j scratch =
  match j.jb_ckpt with
  | Some ckpt ->
      Slice.resume ~scratch ~slice_trials:t.slice_trials j.jb_cfg j.jb_machine
        j.jb_graph ~ckpt
  | None ->
      let db =
        Mutex.lock t.mu;
        let text = Hashtbl.find_opt t.pool j.jb_pool_key in
        Mutex.unlock t.mu;
        match text with
        | None -> None
        | Some s -> (
            match Profiles_db.load j.jb_graph s with Ok db -> Some db | Error _ -> None)
      in
      Ok
        (Slice.start ~scratch ?db ?warm_start:j.jb_warm
           ~slice_trials:t.slice_trials j.jb_cfg j.jb_machine j.jb_graph)

(* Runs with the lock NOT held; publishes its outcome under the lock. *)
let run_slice t j =
  let outcome =
    (* a bad config (e.g. ccd:1) raises deep in compilation or strategy
       construction: fail the job, never the worker domain *)
    try
      let compiled = compiled_for t j in
      run_slice_inner t j (Exec.scratch compiled)
    with exn -> Error (Printexc.to_string exn)
  in
  match outcome with
  | Error e ->
      Mutex.lock t.mu;
      j.jb_state <- Wire.Failed;
      j.jb_result <- Some (payload_failed j e);
      Mutex.unlock t.mu;
      clean_state_files t j
  | Ok (status, ev) -> (
      (* surface the shared-cache state through the slice's stats *)
      let ch, cm, ce, cb = (Mutex.lock t.mu; let v = cache_counters t in Mutex.unlock t.mu; v) in
      Evaluator.note_cache_state ev ~hits:ch ~misses:cm ~evictions:ce ~resident_bytes:cb;
      let db_text = Profiles_db.save (Evaluator.db ev) in
      match status with
      | Slice.Finished f ->
          let payload = payload_done j f in
          let key = Mapping.canonical_key f.Slice.best in
          Mutex.lock t.mu;
          pool_merge t j.jb_pool_key db_text;
          t.slices <- t.slices + 1;
          t.completed <- t.completed + 1;
          j.jb_state <- Wire.Done;
          j.jb_trials <- f.Slice.trials;
          j.jb_best <- f.Slice.perf;
          j.jb_result <- Some payload;
          Cache.put t.result_memo j.jb_memo_key
            { mm_mapping = key; mm_perf = f.Slice.perf; mm_trials = f.Slice.trials }
            ~weight:(String.length key + 64);
          (match Hashtbl.find_opt t.incumbents j.jb_pair with
          | Some (_, p) when p <= f.Slice.perf -> ()
          | _ -> Hashtbl.replace t.incumbents j.jb_pair (key, f.Slice.perf));
          Mutex.unlock t.mu;
          clean_state_files t j
      | Slice.Paused p ->
          (* persist before publishing: once the job is visible as
             re-queued, its envelope is already on disk *)
          (match t.state_dir with
          | Some d -> write_atomic (ckpt_path d j.jb_id) p.Slice.ckpt
          | None -> ());
          Mutex.lock t.mu;
          pool_merge t j.jb_pool_key db_text;
          t.slices <- t.slices + 1;
          j.jb_ckpt <- Some p.Slice.ckpt;
          j.jb_trials <- p.Slice.p_trials;
          j.jb_best <- p.Slice.p_best_perf;
          j.jb_state <- Wire.Queued;
          Queue.push j.jb_id t.queue;
          Condition.signal t.work;
          Mutex.unlock t.mu)

(* ---- in-process driving ----------------------------------------------- *)

let step t =
  Mutex.lock t.mu;
  match Queue.take_opt t.queue with
  | None ->
      Mutex.unlock t.mu;
      false
  | Some id ->
      let j = Hashtbl.find t.jobs id in
      j.jb_state <- Wire.Running;
      Mutex.unlock t.mu;
      run_slice t j;
      true

let drain t = while step t do () done

(* ---- workers ---------------------------------------------------------- *)

let rec worker t =
  Mutex.lock t.mu;
  while (not t.stopping) && Queue.is_empty t.queue do
    Condition.wait t.work t.mu
  done;
  if t.stopping then Mutex.unlock t.mu
  else begin
    let id = Queue.pop t.queue in
    let j = Hashtbl.find t.jobs id in
    j.jb_state <- Wire.Running;
    Mutex.unlock t.mu;
    run_slice t j;
    worker t
  end

let start_workers t n = List.init (max 0 n) (fun _ -> Domain.spawn (fun () -> worker t))

let stop t =
  Mutex.lock t.mu;
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu

let stopping t =
  Mutex.lock t.mu;
  let v = t.stopping in
  Mutex.unlock t.mu;
  v

(* ---- request handling ------------------------------------------------- *)

let err ?id message = Wire.R_error { e_id = id; message }

let pending_payload j =
  {
    Wire.r_id = j.jb_id;
    r_state = j.jb_state;
    r_mapping = None;
    r_perf = (if Float.is_nan j.jb_best then None else Some j.jb_best);
    r_perf_hex =
      (if Float.is_nan j.jb_best then None else Some (Printf.sprintf "%h" j.jb_best));
    r_trials = j.jb_trials;
    r_cached = false;
    r_warm_started = j.jb_warm <> None;
    r_error = None;
  }

(* Meta file: the map request with the workload inlined as codec text
   (recovery must not depend on the app registry), plus the warm-start
   key pinned so a restart replays the same accept-time decision. *)
let meta_json j =
  let req =
    Wire.Map
      {
        m_id = j.jb_id;
        workload =
          {
            Wire.default_workload with
            Wire.w_graph = Some (Graph_codec.to_string j.jb_graph);
            w_machine = Some (Machine_codec.to_string j.jb_machine);
          };
        cfg = j.jb_cfg;
        wait = false;
        warm = false;
      }
  in
  match (Wire.request_to_json req, j.jb_warm) with
  | Wire.Obj fields, Some m ->
      Wire.Obj (fields @ [ ("warm_key", Wire.Str (Mapping.canonical_key m)) ])
  | json, _ -> json

let persist_meta t j =
  match t.state_dir with
  | None -> ()
  | Some d -> write_atomic (meta_path d j.jb_id) (Wire.to_string (meta_json j))

(* Build and enqueue a job; caller holds no lock.  Returns the
   immediate response. *)
let submit t ~id ~cfg ~warm ~pair machine graph =
  let memo_key = pair ^ "/" ^ Slice.fingerprint cfg in
  let pool_key = pair ^ "/" ^ Slice.eval_fingerprint cfg in
  Mutex.lock t.mu;
  if Hashtbl.mem t.jobs id then begin
    Mutex.unlock t.mu;
    err ~id "duplicate job id"
  end
  else begin
    match Cache.find t.result_memo memo_key with
    | Some m ->
        (* exact repeat: answered from the memo, no search, no simulate *)
        let payload =
          {
            Wire.r_id = id;
            r_state = Wire.Done;
            r_mapping = Some m.mm_mapping;
            r_perf = Some m.mm_perf;
            r_perf_hex = Some (Printf.sprintf "%h" m.mm_perf);
            r_trials = m.mm_trials;
            r_cached = true;
            r_warm_started = false;
            r_error = None;
          }
        in
        let j =
          {
            jb_id = id;
            jb_cfg = cfg;
            jb_machine = machine;
            jb_graph = graph;
            jb_pair = pair;
            jb_memo_key = memo_key;
            jb_pool_key = pool_key;
            jb_warm = None;
            jb_state = Wire.Done;
            jb_ckpt = None;
            jb_trials = m.mm_trials;
            jb_best = m.mm_perf;
            jb_result = Some payload;
          }
        in
        Hashtbl.replace t.jobs id j;
        Mutex.unlock t.mu;
        Wire.R_result payload
    | None ->
        let jb_warm =
          if not warm then None
          else
            match Hashtbl.find_opt t.incumbents pair with
            | Some (key, _) -> Mapping.of_canonical_key graph key
            | None -> None
        in
        if jb_warm <> None then t.warm_starts <- t.warm_starts + 1;
        let j =
          {
            jb_id = id;
            jb_cfg = cfg;
            jb_machine = machine;
            jb_graph = graph;
            jb_pair = pair;
            jb_memo_key = memo_key;
            jb_pool_key = pool_key;
            jb_warm;
            jb_state = Wire.Queued;
            jb_ckpt = None;
            jb_trials = 0;
            jb_best = Float.nan;
            jb_result = None;
          }
        in
        Hashtbl.replace t.jobs id j;
        Queue.push id t.queue;
        Condition.signal t.work;
        Mutex.unlock t.mu;
        persist_meta t j;
        Wire.R_accepted { a_id = id }
  end

let status t =
  Mutex.lock t.mu;
  let jobs =
    Hashtbl.fold (fun id j acc -> (id, j.jb_state) :: acc) t.jobs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let c = Cache.stats t.compile_cache and r = Cache.stats t.result_memo in
  let counters =
    [
      ("compile_hits", c.Cache.hits);
      ("compile_misses", c.Cache.misses);
      ("compile_entries", c.Cache.entries);
      ("result_hits", r.Cache.hits);
      ("result_misses", r.Cache.misses);
      ("result_entries", r.Cache.entries);
      ("warm_starts", t.warm_starts);
      ("evictions", c.Cache.evictions + r.Cache.evictions);
      ("resident_bytes", c.Cache.resident_bytes + r.Cache.resident_bytes);
      ("slices", t.slices);
      ("completed", t.completed);
      ("queued", Queue.length t.queue);
      ("pool_entries", Hashtbl.length t.pool);
    ]
  in
  let requests = t.requests in
  Mutex.unlock t.mu;
  Wire.R_status { requests; jobs; counters }

let poll t id =
  Mutex.lock t.mu;
  let r =
    match Hashtbl.find_opt t.jobs id with
    | None -> err ~id "unknown job id"
    | Some j -> (
        match j.jb_result with
        | Some p -> Wire.R_result p
        | None -> Wire.R_result (pending_payload j))
  in
  Mutex.unlock t.mu;
  r

let analyze t ~id workload =
  match resolve_cached t workload with
  | Error e -> err ~id e
  | Ok (machine, graph, _) ->
      let a = Analysis.analyze ~rotations:5 machine graph in
      let text = Format.asprintf "%a" Analysis.report a in
      let rec rstrip = function
        | [] -> []
        | l :: rest -> (
            match rstrip rest with
            | [] when String.trim l = "" -> []
            | r -> l :: r)
      in
      let report = rstrip (String.split_on_char '\n' text) in
      Wire.R_analysis { ra_id = id; report }

let handle t req =
  Mutex.lock t.mu;
  t.requests <- t.requests + 1;
  Mutex.unlock t.mu;
  (* last line of defense: no request may kill the daemon.  Workload
     resolution, analysis and submission run outside t.mu (locked
     regions below are straight-line), so catching here cannot leak a
     held mutex. *)
  let id =
    match req with
    | Wire.Poll { p_id } -> Some p_id
    | Wire.Analyze { an_id; _ } -> Some an_id
    | Wire.Map { m_id; _ } -> Some m_id
    | Wire.Ping | Wire.Status | Wire.Shutdown -> None
  in
  try
    match req with
    | Wire.Ping -> Wire.Pong
    | Wire.Status -> status t
    | Wire.Shutdown ->
        stop t;
        Wire.R_accepted { a_id = "shutdown" }
    | Wire.Poll { p_id } -> poll t p_id
    | Wire.Analyze { an_id; workload } ->
        if id_ok an_id then analyze t ~id:an_id workload
        else err "id must be 1..128 filename-safe characters"
    | Wire.Map { m_id; workload; cfg; wait = _; warm } -> (
        if not (id_ok m_id) then err "id must be 1..128 filename-safe characters"
        else
          match resolve_cached t workload with
          | Error e -> err ~id:m_id e
          | Ok (machine, graph, pair) -> submit t ~id:m_id ~cfg ~warm ~pair machine graph)
  with exn -> err ?id (Printexc.to_string exn)

let handle_line t line =
  match Wire.request_of_string line with
  | Ok req -> handle t req
  | Error e -> err e

(* ---- recovery --------------------------------------------------------- *)

let recover t =
  match t.state_dir with
  | None -> 0
  | Some dir ->
      let metas =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".meta")
        |> List.sort compare
      in
      List.fold_left
        (fun n f ->
          let id = Filename.chop_suffix f ".meta" in
          match read_file_opt (Filename.concat dir f) with
          | None -> n
          | Some text -> (
              match Wire.of_string text with
              | Error _ -> n
              | Ok json -> (
                  match Wire.request_of_json json with
                  | Ok (Wire.Map { m_id; workload; cfg; _ }) when m_id = id -> (
                      match resolve_cached t workload with
                      | Error _ -> n
                      | Ok (machine, graph, pair) ->
                          let warm_key =
                            match json with
                            | Wire.Obj fields -> (
                                match List.assoc_opt "warm_key" fields with
                                | Some (Wire.Str k) -> Mapping.of_canonical_key graph k
                                | _ -> None)
                            | _ -> None
                          in
                          let j =
                            {
                              jb_id = id;
                              jb_cfg = cfg;
                              jb_machine = machine;
                              jb_graph = graph;
                              jb_pair = pair;
                              jb_memo_key = pair ^ "/" ^ Slice.fingerprint cfg;
                              jb_pool_key = pair ^ "/" ^ Slice.eval_fingerprint cfg;
                              jb_warm = warm_key;
                              jb_state = Wire.Queued;
                              jb_ckpt = read_file_opt (ckpt_path dir id);
                              jb_trials = 0;
                              jb_best = Float.nan;
                              jb_result = None;
                            }
                          in
                          Mutex.lock t.mu;
                          let fresh = not (Hashtbl.mem t.jobs id) in
                          if fresh then begin
                            Hashtbl.replace t.jobs id j;
                            Queue.push id t.queue;
                            Condition.signal t.work
                          end;
                          Mutex.unlock t.mu;
                          if fresh then n + 1 else n)
                  | _ -> n)))
        0 metas

(* ---- socket serving --------------------------------------------------- *)

type endpoint = Unix_path of string | Tcp of int

let listen_socket = function
  | Unix_path path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 16;
      fd

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received, not yet terminated by '\n' *)
  mutable waiting : string list;  (* job ids of wait:true maps, FIFO *)
}

(* Write the whole response line.  The client fd is non-blocking, so a
   single write may be partial or fail with EAGAIN: loop, waiting (with
   a deadline) for writability between attempts — truncating a response
   mid-line would corrupt the framing for everything after it.  EPIPE /
   ECONNRESET (SIGPIPE is ignored, so a vanished reader surfaces as an
   error, not a signal) and a client that stops draining both report
   [false]: the caller must drop the connection, never reuse it. *)
let send_response fd resp =
  let line = Wire.response_to_string resp ^ "\n" in
  let len = String.length line in
  let rec go off budget =
    if off >= len then true
    else if budget <= 0 then false
    else
      match Unix.write_substring fd line off (len - off) with
      | n -> go (off + n) budget
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (try ignore (Unix.select [] [ fd ] [] 1.0)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          go off (budget - 1)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off budget
      | exception Unix.Unix_error _ -> false
  in
  go 0 5

(* Serve until shutdown: accepts connections, one JSON request per
   line, one JSON response per line.  Search work happens on the
   worker domains; this loop only parses, submits and replies — plus a
   periodic scan that flushes wait:true responses as jobs finish.
   SIGTERM/SIGINT set an atomic flag (checked each select tick) so
   shutdown happens at a quiet point, never inside a handler. *)
let serve ?(workers = 1) t endpoint =
  let stop_flag = Atomic.make false in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true))
  in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let listener = listen_socket endpoint in
  let pool = start_workers t workers in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let close_client c =
    Hashtbl.remove clients c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  (* a failed send means the client is gone or wedged: drop it rather
     than risk a half-written line followed by more responses *)
  let send c resp = if not (send_response c.fd resp) then close_client c in
  let handle_request c line =
    match Wire.request_of_string line with
    | Error e -> send c (err e)
    | Ok (Wire.Map { wait = true; _ } as req) -> (
        match handle t req with
        | Wire.R_accepted { a_id } -> c.waiting <- c.waiting @ [ a_id ]
        | resp -> send c resp)
    | Ok req -> send c (handle t req)
  in
  let feed c data =
    Buffer.add_string c.buf data;
    let rec split () =
      let s = Buffer.contents c.buf in
      match String.index_opt s '\n' with
      | None ->
          if String.length s > Wire.default_max_bytes then begin
            ignore (send_response c.fd (err "request line too long"));
            close_client c
          end
      | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear c.buf;
          Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
          if String.trim line <> "" then handle_request c line;
          if Hashtbl.mem clients c.fd then split ()
    in
    split ()
  in
  let flush_waiters () =
    (* snapshot: send can close a client, which mutates the table *)
    let cs = Hashtbl.fold (fun _ c acc -> c :: acc) clients [] in
    List.iter
      (fun c ->
        let rec deliver = function
          | [] -> []
          | pending when not (Hashtbl.mem clients c.fd) -> pending
          | id :: rest -> (
              match handle t (Wire.Poll { p_id = id }) with
              | Wire.R_result p
                when p.Wire.r_state = Wire.Done || p.Wire.r_state = Wire.Failed ->
                  send c (Wire.R_result p);
                  deliver rest
              | _ -> id :: deliver rest)
        in
        c.waiting <- deliver c.waiting)
      cs
  in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    if Atomic.get stop_flag then ()
    else begin
      let fds = listener :: (Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []) in
      let readable =
        match Unix.select fds [] [] 0.05 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          if fd = listener then (
            match Unix.accept listener with
            | cfd, _ ->
                Unix.set_nonblock cfd;
                Hashtbl.replace clients cfd
                  { fd = cfd; buf = Buffer.create 256; waiting = [] }
            | exception Unix.Unix_error _ -> ())
          else
            match Hashtbl.find_opt clients fd with
            | None -> ()
            | Some c -> (
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> close_client c
                | n -> feed c (Bytes.sub_string chunk 0 n)
                | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
                | exception Unix.Unix_error _ -> close_client c))
        readable;
      flush_waiters ();
      if stopping t then () else loop ()
    end
  in
  loop ();
  (* graceful: workers finish their current slice (whose envelope is
     persisted before the job becomes visible again), then exit *)
  stop t;
  List.iter Domain.join pool;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (match endpoint with
  | Unix_path p -> (try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ());
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int
