(** String-keyed LRU cache with entry-count and byte-weight limits.

    The serve daemon's cross-request memoization substrate: compiled
    {!Exec} artifacts (weighed by {!Exec.compiled_words}) and result
    memos both live in one of these, keyed by fingerprint strings.
    O(1) find/put.  Not thread-safe: callers serialize access (the
    server holds its cache mutex around every call). *)

type 'a t

val create : ?max_entries:int -> ?max_bytes:int -> unit -> 'a t
(** [max_entries] (default 64) caps the entry count; [max_bytes]
    (default unlimited) caps the summed entry weights.  Least recently
    used entries are evicted to satisfy both — except that the single
    most recent entry is never evicted for weight (an oversized entry
    must still be usable once).
    @raise Invalid_argument if [max_entries < 1]. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit refreshes the entry's recency.  Counts hit/miss. *)

val put : 'a t -> string -> 'a -> weight:int -> unit
(** Insert or replace, as most recent; evicts LRU entries as needed. *)

val mem : 'a t -> string -> bool
(** Presence test without touching recency or hit/miss counters. *)

val length : 'a t -> int

type stats = {
  entries : int;
  resident_bytes : int;  (** summed weights of resident entries *)
  hits : int;
  misses : int;
  evictions : int;
}

val stats : 'a t -> stats
