(* String-keyed LRU with both an entry cap and a weight (bytes) cap.
   Classic hashtable + doubly-linked recency list; every operation is
   O(1).  Not thread-safe — the server serializes access under its own
   mutex (the critical sections are pointer swaps, far too short to be
   worth finer locking). *)

type 'a entry = {
  key : string;
  value : 'a;
  weight : int;
  mutable newer : 'a entry option;
  mutable older : 'a entry option;
}

type 'a t = {
  tbl : (string, 'a entry) Hashtbl.t;
  max_entries : int;
  max_bytes : int;
  mutable head : 'a entry option;  (* most recently used *)
  mutable tail : 'a entry option;  (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(max_entries = 64) ?(max_bytes = max_int) () =
  if max_entries < 1 then invalid_arg "Cache.create: max_entries must be positive";
  {
    tbl = Hashtbl.create 64;
    max_entries;
    max_bytes;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t e =
  (match e.newer with Some n -> n.older <- e.older | None -> t.head <- e.older);
  (match e.older with Some o -> o.newer <- e.newer | None -> t.tail <- e.newer);
  e.newer <- None;
  e.older <- None

let push_front t e =
  e.older <- t.head;
  e.newer <- None;
  (match t.head with Some h -> h.newer <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let drop t e =
  unlink t e;
  Hashtbl.remove t.tbl e.key;
  t.bytes <- t.bytes - e.weight

let evict_to_fit t =
  while
    Hashtbl.length t.tbl > t.max_entries
    || (t.bytes > t.max_bytes && Hashtbl.length t.tbl > 1)
  do
    match t.tail with
    | Some lru ->
        drop t lru;
        t.evictions <- t.evictions + 1
    | None -> assert false (* non-empty table implies a tail *)
  done

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.hits <- t.hits + 1;
      unlink t e;
      push_front t e;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let put t key value ~weight =
  (match Hashtbl.find_opt t.tbl key with Some old -> drop t old | None -> ());
  let e = { key; value; weight; newer = None; older = None } in
  Hashtbl.replace t.tbl key e;
  t.bytes <- t.bytes + weight;
  push_front t e;
  evict_to_fit t

let mem t key = Hashtbl.mem t.tbl key
let length t = Hashtbl.length t.tbl

type stats = {
  entries : int;
  resident_bytes : int;
  hits : int;
  misses : int;
  evictions : int;
}

let stats t =
  {
    entries = Hashtbl.length t.tbl;
    resident_bytes = t.bytes;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
  }
