type comparison = {
  label : string;
  mapping : Mapping.t;
  perf : float;
  speedup_vs_default : float;
}

type tuning = {
  machine : Machine.t;
  graph : Graph.t;
  analysis : Analysis.t;
  result : Driver.result;
  default_perf : float;
  comparisons : comparison list;
}

exception Infeasible of Analysis.t

let check_feasible machine graph =
  let a = Analysis.analyze machine graph in
  if not (Analysis.feasible a) then raise (Infeasible a);
  a

let infeasible_message a =
  String.concat "; "
    (List.map
       (fun (d : Analysis.diagnostic) ->
         Printf.sprintf "[%s] %s: %s" d.Analysis.code d.Analysis.subject
           d.Analysis.message)
       (Analysis.errors a))

let speedup ~baseline t = baseline /. t

let measure_mapping ?(runs = 7) ?(seed = 9001) ?noise_sigma machine graph mapping =
  let ev = Evaluator.create ~runs ?noise_sigma ~seed machine graph in
  Stats.mean (Evaluator.measure ev mapping)

let tune ?(algo = Driver.Ccd { rotations = 5 }) ?(seed = 0) ?runs ?final_runs ?budget
    ?noise_sigma ~app ~machine ~input () =
  let graph = app.App.graph ~nodes:machine.Machine.nodes ~input in
  (* Static feasibility gate: error-level diagnostics certify that no
     candidate can validate and place, so the search would only ever
     measure penalties — refuse instead of burning the budget. *)
  let analysis = check_feasible machine graph in
  let result =
    Driver.run ?runs ?final_runs ?noise_sigma ~seed ?budget algo machine graph
  in
  let default_mapping = Mapping.default_start graph machine in
  let custom = app.App.custom graph machine in
  let measure = measure_mapping ?noise_sigma ~seed:(seed + 77) machine graph in
  let default_perf = measure default_mapping in
  let perf_or_inf m = try measure m with Failure _ -> infinity in
  let comparisons =
    List.map
      (fun (label, mapping, perf) ->
        { label; mapping; perf; speedup_vs_default = speedup ~baseline:default_perf perf })
      [
        ("default", default_mapping, default_perf);
        ("custom", custom, perf_or_inf custom);
        ("automap", result.Driver.best, result.Driver.perf);
      ]
  in
  { machine; graph; analysis; result; default_perf; comparisons }
