(** High-level AutoMap API: one call from (application, machine,
    input) to a tuned mapping with baseline comparisons.

    This is the workflow of §3.3: profile the application once to
    build the search space, run an offline search that repeatedly
    executes the application under candidate mappings, and report the
    fastest mapping found together with its speedup over the runtime's
    default strategy and the application's hand-written mapper. *)

type comparison = {
  label : string;
  mapping : Mapping.t;
  perf : float;            (** mean per-iteration seconds *)
  speedup_vs_default : float;
}

type tuning = {
  machine : Machine.t;
  graph : Graph.t;
  analysis : Analysis.t;            (** the pre-search feasibility analysis *)
  result : Driver.result;           (** the search outcome and telemetry *)
  default_perf : float;             (** Legion-default-mapper baseline *)
  comparisons : comparison list;    (** default, custom, AutoMap *)
}

exception Infeasible of Analysis.t
(** Raised by {!tune} / {!check_feasible} when the static analyzer
    reports error-level diagnostics: every candidate mapping is
    certified to fail validation or strict placement, so searching is
    pointless.  The payload carries the full analysis (render with
    {!Analysis.report} or {!infeasible_message}). *)

val check_feasible : Machine.t -> Graph.t -> Analysis.t
(** Run {!Analysis.analyze} and raise {!Infeasible} if it reports any
    error-level diagnostic. *)

val infeasible_message : Analysis.t -> string
(** One-line rendering of the error diagnostics, for [Failure]-style
    reporting. *)

val tune :
  ?algo:Driver.algo ->
  ?seed:int ->
  ?runs:int ->
  ?final_runs:int ->
  ?budget:float ->
  ?noise_sigma:float ->
  app:App.t ->
  machine:Machine.t ->
  input:string ->
  unit ->
  tuning
(** Tunes [app] on [machine] for [input].  [algo] defaults to CCD with
    5 rotations.  Runs {!check_feasible} before the search and raises
    {!Infeasible} on error-level inputs.  The returned comparisons measure (with the same
    protocol) the default mapping, the app's custom mapping and the
    tuned mapping. *)

val measure_mapping :
  ?runs:int -> ?seed:int -> ?noise_sigma:float ->
  Machine.t -> Graph.t -> Mapping.t -> float
(** Mean per-iteration time of one mapping, [runs] (default 7)
    noise-seeded simulator executions.  Raises [Failure] if the
    mapping cannot run. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline t] = baseline / t. *)
