let variants_to_string vs =
  String.concat "," (List.map Kinds.proc_kind_to_string vs)

let pattern_fields = function
  | Pattern.Same_shard -> "pattern=same"
  | Pattern.Halo { frac } -> Printf.sprintf "pattern=halo:%.17g" frac

let to_string (g : Graph.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "graph %s iterations=%d\n" g.Graph.gname g.Graph.iterations);
  Array.iter
    (fun (t : Graph.task) ->
      Buffer.add_string buf
        (Printf.sprintf "task %s group=%d variants=%s flops=%.17g cpu_eff=%.17g gpu_eff=%.17g\n"
           t.Graph.tname t.Graph.group_size
           (variants_to_string t.Graph.variants)
           t.Graph.flops t.Graph.cpu_efficiency t.Graph.gpu_efficiency);
      List.iter
        (fun (c : Graph.collection) ->
          Buffer.add_string buf
            (Printf.sprintf "arg %s %s bytes=%.17g mode=%s\n" t.Graph.tname
               c.Graph.cname c.Graph.bytes (Mode.to_string c.Graph.mode)))
        t.Graph.args)
    g.Graph.tasks;
  let name_of cid =
    let c = Graph.collection g cid in
    ((Graph.task g c.Graph.owner).Graph.tname, c.Graph.cname)
  in
  List.iter
    (fun (e : Graph.edge) ->
      let st, sa = name_of e.Graph.src and dt, da = name_of e.Graph.dst in
      Buffer.add_string buf
        (Printf.sprintf "dep %s %s %s %s bytes=%.17g %s carried=%b\n" st sa dt da
           e.Graph.bytes (pattern_fields e.Graph.pattern) e.Graph.carried))
    g.Graph.edges;
  List.iter
    (fun (c1, c2, w) ->
      let t1, a1 = name_of c1 and t2, a2 = name_of c2 in
      Buffer.add_string buf
        (Printf.sprintf "overlap %s %s %s %s bytes=%.17g\n" t1 a1 t2 a2 w))
    g.Graph.overlaps;
  Buffer.contents buf

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* positional tokens (no '=') and key=value fields of a directive line *)
let split_fields _lineno tokens =
  let pos, kv = List.partition (fun tok -> not (String.contains tok '=')) tokens in
  let fields =
    List.map
      (fun tok ->
        let i = String.index tok '=' in
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
      kv
  in
  (pos, fields)

let fget_float lineno fields key ~default =
  match List.assoc_opt key fields with
  | None -> (
      match default with
      | Some d -> d
      | None -> fail "line %d: missing field %s" lineno key)
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None -> fail "line %d: %s: bad number %S" lineno key v)

let fget_int lineno fields key =
  match List.assoc_opt key fields with
  | None -> fail "line %d: missing field %s" lineno key
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None -> fail "line %d: %s: bad integer %S" lineno key v)

let parse_variants lineno s =
  String.split_on_char ',' s
  |> List.map (fun v ->
         match Kinds.proc_kind_of_string v with
         | Some k -> k
         | None -> fail "line %d: bad processor kind %S" lineno v)

let parse_mode lineno s =
  match String.uppercase_ascii s with
  | "R" -> Mode.Read
  | "W" -> Mode.Write
  | "RW" -> Mode.Read_write
  | _ -> fail "line %d: bad mode %S" lineno s

let parse_pattern lineno s =
  if s = "same" then Pattern.Same_shard
  else
    match String.split_on_char ':' s with
    | [ "halo"; f ] -> (
        match float_of_string_opt f with
        | Some frac -> Pattern.halo ~frac
        | None -> fail "line %d: bad halo fraction %S" lineno f)
    | _ -> fail "line %d: bad pattern %S" lineno s

let of_string s =
  try
    let builder = ref None in
    let tasks : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let args : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
    let b lineno =
      match !builder with
      | Some b -> b
      | None -> fail "line %d: the graph header must come first" lineno
    in
    let task_id lineno name =
      match Hashtbl.find_opt tasks name with
      | Some tid -> tid
      | None -> fail "line %d: unknown task %S" lineno name
    in
    let arg_id lineno task arg =
      match Hashtbl.find_opt args (task, arg) with
      | Some cid -> cid
      | None -> fail "line %d: unknown argument %s/%s" lineno task arg
    in
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | "graph" :: name :: rest ->
              if Option.is_some !builder then fail "line %d: duplicate graph header" lineno;
              let _, fields = split_fields lineno rest in
              let iterations =
                match List.assoc_opt "iterations" fields with
                | None -> 1
                | Some v -> (
                    match int_of_string_opt v with
                    | Some n -> n
                    | None -> fail "line %d: bad iterations %S" lineno v)
              in
              builder := Some (Graph.Builder.create ~iterations ~name ())
          | "task" :: name :: rest ->
              let _, fields = split_fields lineno rest in
              let variants =
                match List.assoc_opt "variants" fields with
                | Some v -> parse_variants lineno v
                | None -> Kinds.all_proc_kinds
              in
              let tid =
                Graph.Builder.add_task (b lineno) ~name
                  ~group_size:(fget_int lineno fields "group")
                  ~variants
                  ~flops:(fget_float lineno fields "flops" ~default:None)
                  ~cpu_efficiency:(fget_float lineno fields "cpu_eff" ~default:(Some 1.0))
                  ~gpu_efficiency:(fget_float lineno fields "gpu_eff" ~default:(Some 1.0))
                  ()
              in
              Hashtbl.replace tasks name tid
          | "arg" :: task :: name :: rest ->
              let _, fields = split_fields lineno rest in
              let mode =
                match List.assoc_opt "mode" fields with
                | Some m -> parse_mode lineno m
                | None -> fail "line %d: missing field mode" lineno
              in
              let cid =
                Graph.Builder.add_arg (b lineno) ~task:(task_id lineno task) ~name
                  ~bytes:(fget_float lineno fields "bytes" ~default:None)
                  ~mode
              in
              Hashtbl.replace args (task, name) cid
          | "dep" :: st :: sa :: dt :: da :: rest ->
              let _, fields = split_fields lineno rest in
              let pattern =
                match List.assoc_opt "pattern" fields with
                | Some p -> parse_pattern lineno p
                | None -> Pattern.Same_shard
              in
              let carried =
                match List.assoc_opt "carried" fields with
                | Some v -> (
                    match bool_of_string_opt v with
                    | Some b -> b
                    | None -> fail "line %d: bad carried %S" lineno v)
                | None -> false
              in
              let bytes =
                match List.assoc_opt "bytes" fields with
                | Some v -> (
                    match float_of_string_opt v with
                    | Some f -> Some f
                    | None -> fail "line %d: bad bytes %S" lineno v)
                | None -> None
              in
              Graph.Builder.add_dep ?bytes ~pattern ~carried (b lineno)
                ~src:(arg_id lineno st sa) ~dst:(arg_id lineno dt da)
          | "overlap" :: t1 :: a1 :: t2 :: a2 :: rest ->
              let _, fields = split_fields lineno rest in
              Graph.Builder.add_overlap (b lineno) (arg_id lineno t1 a1)
                (arg_id lineno t2 a2)
                ~bytes:(fget_float lineno fields "bytes" ~default:None)
          | other :: _ -> fail "line %d: unknown directive %S" lineno other
          | [] -> ())
      (String.split_on_char '\n' s);
    match !builder with
    | None -> Error "empty input: no graph header"
    | Some b -> Ok (Graph.Builder.build b)
  with
  | Parse_error e -> Error e
  | Graph.Invalid_graph e -> Error e

let round_trip_exn g =
  match of_string (to_string g) with
  | Ok g' -> g'
  | Error e -> failwith ("Graph_codec.round_trip_exn: " ^ e)

let fingerprint g = Digest.to_hex (Digest.string (to_string g))
