(** Dependence graph G of a task-based program (§2).

    Nodes are *group tasks* (§3.1: individual tasks are groups of size
    one); each task has a list of *collection arguments*, and edges are
    per-collection dependencies: an edge records which argument of the
    producer feeds which argument of the consumer and how many bytes
    move per shard.  Sizes are per-shard bytes: a group task of
    [group_size] S launched over an input partitions the data into S
    shard instances.

    Graphs are built through {!Builder}, which assigns ids and
    validates the result ([build] checks acyclicity, argument
    ownership, size positivity, and producer/consumer access modes). *)

type collection = private {
  cid : int;            (** unique across the graph *)
  cname : string;
  owner : int;          (** tid of the task this argument belongs to *)
  bytes : float;        (** per-shard instance size in bytes *)
  mode : Mode.t;
}

type task = private {
  tid : int;            (** unique, dense from 0 *)
  tname : string;
  group_size : int;     (** number of shards launched *)
  variants : Kinds.proc_kind list;  (** kinds with object code (§2) *)
  flops : float;        (** per-shard useful work *)
  cpu_efficiency : float; (** fraction of peak the task achieves on CPU *)
  gpu_efficiency : float;
  args : collection list;
}

type edge = private {
  src : int;            (** cid of the producer's argument *)
  dst : int;            (** cid of the consumer's argument *)
  bytes : float;        (** per-shard bytes that must be visible at dst *)
  pattern : Pattern.t;
  carried : bool;
      (** loop-carried: the producer of iteration i feeds the consumer
          of iteration i+1 (e.g., the state array an update task writes
          and the first task of the next time step reads).  Carried
          edges are excluded from the acyclicity check. *)
}

type t = private {
  gname : string;
  iterations : int;     (** time steps: the graph body repeats this many times *)
  tasks : task array;
  edges : edge list;
  overlaps : (int * int * float) list;
      (** collection-overlap edges (c1, c2, |c1∩c2| in bytes) inducing
          the graph C of §4.2; stored with c1 < c2 *)
  cols : collection array;
      (** cid-indexed; what {!collection} reads, derived in [build] *)
}

exception Invalid_graph of string

module Builder : sig
  type graph := t
  type t

  val create : ?iterations:int -> name:string -> unit -> t
  (** [iterations] defaults to 1. *)

  val add_task :
    t ->
    name:string ->
    group_size:int ->
    variants:Kinds.proc_kind list ->
    flops:float ->
    ?cpu_efficiency:float ->
    ?gpu_efficiency:float ->
    unit ->
    int
  (** Returns the new task's [tid].  Efficiencies default to 1.0. *)

  val add_arg : t -> task:int -> name:string -> bytes:float -> mode:Mode.t -> int
  (** Declares a collection argument of [task]; returns its [cid]. *)

  val add_dep :
    ?bytes:float -> ?pattern:Pattern.t -> ?carried:bool -> t -> src:int -> dst:int -> unit
  (** Dependence from the task owning argument [src] to the task owning
      argument [dst].  [bytes] defaults to the dst argument's size;
      [pattern] defaults to [Same_shard]; [carried] (default false)
      marks a loop-carried dependence. *)

  val add_overlap : t -> int -> int -> bytes:float -> unit
  (** Declares that two collection arguments reference non-disjoint
      data of [bytes] overlap (an edge of the induced graph C). *)

  val build : t -> graph
  (** Validates and freezes.  @raise Invalid_graph on: unknown ids,
      non-positive sizes, an argument used as dependence source whose
      mode does not write or destination whose mode does not read, a
      cyclic task-level dependence structure, overlap weight exceeding
      either argument's size, or a self-overlap. *)
end

(** {1 Queries} *)

val n_tasks : t -> int
val n_collections : t -> int
val task : t -> int -> task
val collection : t -> int -> collection
val collections : t -> collection list
(** All collection arguments, in cid order. *)

val topological_order : t -> task list
(** Tasks in a dependence-respecting order (stable: ties broken by
    tid). *)

val predecessors : t -> int -> edge list
(** Edges whose destination argument belongs to task [tid]. *)

val successors : t -> int -> edge list

val total_bytes : t -> float
(** Sum of per-shard bytes over all collection arguments. *)

val has_variant : task -> Kinds.proc_kind -> bool

val pp_summary : Format.formatter -> t -> unit
(** Name, task count, collection-argument count, edges, overlaps. *)
