module Pair = struct
  type t = int * int

  let compare = compare
end

module PM = Map.Make (Pair)

type t = {
  weights : float PM.t;
  (* per-cid adjacency, memoized at construction: [neighbors] sits on
     the co-location repair path, which queries it once per candidate
     coordinate — folding over the whole edge map there would dominate
     candidate construction *)
  nbr : (int * float) list array;
}

let normalize (a, b, w) = if a <= b then (a, b, w) else (b, a, w)

let of_edges raw =
  let weights =
    List.fold_left
      (fun acc e ->
        let a, b, w = normalize e in
        if a = b then invalid_arg "Overlap.of_edges: self-overlap";
        if w <= 0.0 then invalid_arg "Overlap.of_edges: non-positive weight";
        PM.update (a, b)
          (function Some w' -> Some (Float.max w w') | None -> Some w)
          acc)
      PM.empty raw
  in
  let maxc = PM.fold (fun (a, b) _ m -> max m (max a b)) weights (-1) in
  let nbr = Array.make (maxc + 1) [] in
  (* ascending map order with a final reverse: element order matches
     what a fold over [weights] would have produced *)
  PM.iter
    (fun (a, b) w ->
      nbr.(a) <- (b, w) :: nbr.(a);
      nbr.(b) <- (a, w) :: nbr.(b))
    weights;
  Array.iteri (fun i l -> nbr.(i) <- List.rev l) nbr;
  { weights; nbr }

let of_graph (g : Graph.t) = of_edges g.overlaps

let n_edges t = PM.cardinal t.weights
let edges t = PM.fold (fun (a, b) w acc -> (a, b, w) :: acc) t.weights [] |> List.rev
let is_empty t = PM.is_empty t.weights

let neighbors t cid =
  if cid >= 0 && cid < Array.length t.nbr then t.nbr.(cid) else []

let partners t cid = List.map fst (neighbors t cid)

let prune_lightest t n =
  if n <= 0 then t
  else begin
    let es = edges t in
    let sorted =
      List.sort
        (fun (a1, b1, w1) (a2, b2, w2) ->
          match compare w1 w2 with 0 -> compare (a1, b1) (a2, b2) | c -> c)
        es
    in
    let rec drop k = function
      | [] -> []
      | _ :: rest when k > 0 -> drop (k - 1) rest
      | l -> l
    in
    of_edges (drop n sorted)
  end

let o_map g t cid =
  let owner c = (Graph.collection g c).owner in
  (owner cid, cid) :: List.map (fun c -> (owner c, c)) (partners t cid)
