type collection = {
  cid : int;
  cname : string;
  owner : int;
  bytes : float;
  mode : Mode.t;
}

type task = {
  tid : int;
  tname : string;
  group_size : int;
  variants : Kinds.proc_kind list;
  flops : float;
  cpu_efficiency : float;
  gpu_efficiency : float;
  args : collection list;
}

type edge = {
  src : int;
  dst : int;
  bytes : float;
  pattern : Pattern.t;
  carried : bool;
}

type t = {
  gname : string;
  iterations : int;
  tasks : task array;
  edges : edge list;
  overlaps : (int * int * float) list;
  cols : collection array;
}

exception Invalid_graph of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_graph s)) fmt

module Builder = struct
  type t = {
    bname : string;
    biterations : int;
    mutable btasks : task list;  (* reversed; args reversed inside *)
    mutable bcols : collection list;  (* reversed *)
    mutable bedges : edge list;
    mutable boverlaps : (int * int * float) list;
    mutable next_tid : int;
    mutable next_cid : int;
  }

  let create ?(iterations = 1) ~name () =
    if iterations <= 0 then fail "graph %s: iterations must be positive" name;
    {
      bname = name;
      biterations = iterations;
      btasks = [];
      bcols = [];
      bedges = [];
      boverlaps = [];
      next_tid = 0;
      next_cid = 0;
    }

  let add_task b ~name ~group_size ~variants ~flops ?(cpu_efficiency = 1.0)
      ?(gpu_efficiency = 1.0) () =
    if group_size <= 0 then fail "task %s: group_size must be positive" name;
    if flops < 0.0 then fail "task %s: flops must be non-negative" name;
    if variants = [] then fail "task %s: needs at least one processor variant" name;
    if cpu_efficiency <= 0.0 || cpu_efficiency > 1.0 then
      fail "task %s: cpu_efficiency must be in (0,1]" name;
    if gpu_efficiency <= 0.0 || gpu_efficiency > 1.0 then
      fail "task %s: gpu_efficiency must be in (0,1]" name;
    let tid = b.next_tid in
    b.next_tid <- tid + 1;
    b.btasks <-
      {
        tid;
        tname = name;
        group_size;
        variants;
        flops;
        cpu_efficiency;
        gpu_efficiency;
        args = [];
      }
      :: b.btasks;
    tid

  let find_task b tid =
    match List.find_opt (fun t -> t.tid = tid) b.btasks with
    | Some t -> t
    | None -> fail "unknown task id %d" tid

  let add_arg b ~task ~name ~bytes ~mode =
    let t = find_task b task in
    if bytes <= 0.0 then fail "collection %s: bytes must be positive" name;
    let cid = b.next_cid in
    b.next_cid <- cid + 1;
    let col = { cid; cname = name; owner = task; bytes; mode } in
    b.bcols <- col :: b.bcols;
    b.btasks <-
      List.map
        (fun t' -> if t'.tid = t.tid then { t' with args = col :: t'.args } else t')
        b.btasks;
    cid

  let find_col b cid =
    match List.find_opt (fun c -> c.cid = cid) b.bcols with
    | Some c -> c
    | None -> fail "unknown collection id %d" cid

  let add_dep ?bytes ?(pattern = Pattern.Same_shard) ?(carried = false) b ~src ~dst =
    let cs = find_col b src and cd = find_col b dst in
    if not (Mode.writes cs.mode) then
      fail "dependence source %s is never written (mode %s)" cs.cname
        (Mode.to_string cs.mode);
    if not (Mode.reads cd.mode) then
      fail "dependence destination %s is never read (mode %s)" cd.cname
        (Mode.to_string cd.mode);
    let bytes = match bytes with Some bs -> bs | None -> cd.bytes in
    if bytes <= 0.0 then fail "dependence %s -> %s: bytes must be positive" cs.cname cd.cname;
    b.bedges <- { src; dst; bytes; pattern; carried } :: b.bedges

  let add_overlap b c1 c2 ~bytes =
    let a = find_col b c1 and c = find_col b c2 in
    if a.cid = c.cid then fail "self-overlap on collection %s" a.cname;
    if bytes <= 0.0 then fail "overlap %s ~ %s: bytes must be positive" a.cname c.cname;
    if bytes > a.bytes +. 1e-9 || bytes > c.bytes +. 1e-9 then
      fail "overlap %s ~ %s: %g bytes exceeds an argument size" a.cname c.cname bytes;
    let lo, hi = if c1 < c2 then (c1, c2) else (c2, c1) in
    b.boverlaps <- (lo, hi, bytes) :: b.boverlaps

  (* Kahn's algorithm over the task-level projection of the edges. *)
  let check_acyclic tasks edges =
    let n = Array.length tasks in
    let indeg = Array.make n 0 in
    let adj = Array.make n [] in
    let owner_of = Hashtbl.create 64 in
    Array.iter (fun t -> List.iter (fun c -> Hashtbl.replace owner_of c.cid t.tid) t.args) tasks;
    List.iter
      (fun e ->
        let s = Hashtbl.find owner_of e.src and d = Hashtbl.find owner_of e.dst in
        if s <> d && not e.carried then begin
          adj.(s) <- d :: adj.(s);
          indeg.(d) <- indeg.(d) + 1
        end)
      edges;
    let queue = Queue.create () in
    Array.iter (fun t -> if indeg.(t.tid) = 0 then Queue.add t.tid queue) tasks;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      incr visited;
      List.iter
        (fun v ->
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue)
        adj.(u)
    done;
    if !visited <> n then fail "task-level dependence graph is cyclic"

  let build b =
    let tasks =
      b.btasks
      |> List.map (fun t -> { t with args = List.rev t.args })
      |> List.sort (fun a c -> compare a.tid c.tid)
      |> Array.of_list
    in
    let edges = List.rev b.bedges in
    check_acyclic tasks edges;
    (* cids are dense by construction, so a cid-indexed array makes
       [collection] O(1) — the search layers look collections up per
       candidate, where rebuilding the list per call dominated. *)
    let cols =
      match List.rev b.bcols with
      | [] -> [||]
      | c0 :: _ as l ->
          let arr = Array.make b.next_cid c0 in
          List.iter (fun c -> arr.(c.cid) <- c) l;
          arr
    in
    {
      gname = b.bname;
      iterations = b.biterations;
      tasks;
      edges;
      overlaps = List.rev b.boverlaps;
      cols;
    }
end

let n_tasks g = Array.length g.tasks

let collections g = Array.to_list g.cols

let n_collections g = Array.length g.cols

let task g tid =
  if tid < 0 || tid >= Array.length g.tasks then invalid_arg "Graph.task: bad tid";
  g.tasks.(tid)

let collection g cid =
  if cid < 0 || cid >= Array.length g.cols then invalid_arg "Graph.collection: bad cid";
  g.cols.(cid)

let owner_table g =
  let tbl = Hashtbl.create 64 in
  Array.iter (fun t -> List.iter (fun c -> Hashtbl.replace tbl c.cid t.tid) t.args) g.tasks;
  tbl

let topological_order g =
  let n = Array.length g.tasks in
  let indeg = Array.make n 0 in
  let adj = Array.make n [] in
  let owner = owner_table g in
  List.iter
    (fun e ->
      let s = Hashtbl.find owner e.src and d = Hashtbl.find owner e.dst in
      if s <> d && not e.carried then begin
        adj.(s) <- d :: adj.(s);
        indeg.(d) <- indeg.(d) + 1
      end)
    g.edges;
  (* Stable Kahn: a sorted work list keeps ties in tid order. *)
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iter (fun t -> if indeg.(t.tid) = 0 then ready := IS.add t.tid !ready) g.tasks;
  let order = ref [] in
  while not (IS.is_empty !ready) do
    let u = IS.min_elt !ready in
    ready := IS.remove u !ready;
    order := u :: !order;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then ready := IS.add v !ready)
      adj.(u)
  done;
  List.rev_map (fun tid -> g.tasks.(tid)) !order

let predecessors g tid =
  let owner = owner_table g in
  List.filter (fun e -> Hashtbl.find owner e.dst = tid) g.edges

let successors g tid =
  let owner = owner_table g in
  List.filter (fun e -> Hashtbl.find owner e.src = tid) g.edges

let total_bytes g =
  List.fold_left (fun acc (c : collection) -> acc +. c.bytes) 0.0 (collections g)

let has_variant t k = List.exists (fun v -> Kinds.equal_proc v k) t.variants

let pp_summary ppf g =
  Format.fprintf ppf "%s: %d tasks, %d collection args, %d deps, %d overlaps, %d iteration(s)"
    g.gname (n_tasks g) (n_collections g) (List.length g.edges)
    (List.length g.overlaps) g.iterations
