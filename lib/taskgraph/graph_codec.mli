(** Textual task-graph description files.

    Together with {!Machine_codec} this completes §3.3's workflow: the
    "file containing the search space … of the target application"
    that profiling generates.  A graph file lists tasks, their
    collection arguments, per-collection dependencies and overlap
    edges:

    {v
    graph stencil iterations=3
    task sweep group=8 variants=CPU,GPU flops=1e6 cpu_eff=1 gpu_eff=0.9
    arg sweep in bytes=1e6 mode=R
    arg sweep out bytes=1e6 mode=W
    task bump group=8 variants=CPU,GPU flops=2e5
    arg bump in bytes=1e6 mode=RW
    dep sweep out bump in
    dep bump in sweep in pattern=halo:0.05 carried=true
    overlap sweep in bump in bytes=1e6
    v}

    [dep src_task src_arg dst_task dst_arg] lines accept optional
    [bytes=], [pattern=same|halo:<frac>] and [carried=true|false]
    fields; [overlap t1 a1 t2 a2 bytes=w] declares an edge of the
    induced collection graph C.  Names must not contain spaces. *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Parse and validate via {!Graph.Builder} (acyclicity, modes,
    sizes). *)

val round_trip_exn : Graph.t -> Graph.t
(** Test helper: serialize then parse, raising on error. *)

val fingerprint : Graph.t -> string
(** Hex digest of {!to_string} — the canonical identity of a task
    graph, used (with {!Machine_codec.fingerprint}) as the serve
    daemon's compile- and result-cache key. *)
