(** Explicit interconnect topology: typed links between nodes (and,
    for indirect networks, internal switch vertices), with per-link
    bandwidth/latency and deterministic shortest-path routing.

    The kind-level machine model collapses the inter-node network to a
    single per-source-node channel; the targets the roadmap cares
    about — 2D-mesh manycores and multi-rack fat-trees at 10^2–10^4
    processors — have locality structure that only an explicit link
    graph can express.  A [t] attached to a {!Machine.t} makes every
    cross-node copy travel its routed link path; the simulator charges
    each link along the path with FIFO contention (see Exec).

    Routing is deterministic and mapping-independent: the generated
    families ([grid]/[torus]/[fattree]/[direct]) route arithmetically
    in O(1) per hop with no stored tables (dimension-order X-then-Y on
    meshes, shorter-ring-direction with an eastward tie-break on tori,
    up/down through the least common ancestor on fat-trees), so a
    10^4-node machine costs O(links) memory, not O(nodes^2).  [custom]
    topologies get a BFS next-hop table (smallest-link-id tie-break),
    intended for small test/lint machines.

    Vertices [0, n_nodes) are the machine's compute nodes; vertices
    [n_nodes, n_vertices) are switches (fat-tree levels, the [direct]
    family's shared ether vertex). *)

type family =
  | Grid of { w : int; h : int; wrap : bool }  (** mesh; torus when [wrap] *)
  | Fattree of { levels : int; arity : int }
  | Direct
      (** degenerate one-NIC-link-per-node family: every cross-node
          copy is a single hop on the source node's link, charged the
          exact kind-level Network cost — bit-identical to the
          un-routed model (see DESIGN.md §15) *)
  | Custom

type link = private {
  lid : int;    (** dense id, [0, n_links) *)
  lsrc : int;   (** source vertex *)
  ldst : int;   (** destination vertex (links are directed) *)
  lbw : float;  (** bytes/second; the analyzer lints non-positive values *)
  llat : float; (** seconds *)
}

type t

(** {1 Construction} *)

val grid :
  w:int -> h:int -> ?wrap:bool -> link_bw:float -> link_latency:float -> unit -> t
(** [w*h] nodes, bidirectional mesh links (two directed links per
    edge).  [wrap] adds the torus wrap-around rings; tori require
    [w >= 2] and [h >= 2].  Raises [Invalid_argument] on bad shapes. *)

val fattree : levels:int -> arity:int -> link_bw:float -> link_latency:float -> t
(** [arity^levels] leaf nodes under a single-rooted fat-tree with
    [levels] switch levels.  Level-[j] links carry
    [link_bw * arity^(j-1)]: capacity fattens toward the root, the
    classic full-bisection profile. *)

val direct : nodes:int -> link_bw:float -> link_latency:float -> t

val custom :
  name:string ->
  n_nodes:int ->
  ?n_vertices:int ->
  links:(int * int * float * float) list ->
  unit ->
  t
(** Arbitrary directed link list [(src, dst, bw, latency)].  Route
    tables are built by per-destination BFS (hop-count shortest paths,
    smallest-link-id tie-break), so routes are deterministic.
    Disconnected node pairs are permitted at construction — the
    feasibility analyzer flags them; copies between them fall back to
    the kind-level network channel. *)

val with_contention : t -> bool -> t
(** Same topology with link FIFO contention switched on/off.  An
    uncontended topology still charges every copy its full routed path
    cost, but links never queue — the counterfactual model the
    congestion tests compare against. *)

(** {1 Structure queries} *)

val family : t -> family
val name : t -> string
val n_nodes : t -> int
val n_vertices : t -> int
val n_links : t -> int
val links : t -> link array
val contended : t -> bool

val diameter : t -> int
(** Max routing distance over connected node pairs (hops). *)

val max_hops : t -> int
(** Static bound on any route's length ([>= diameter]); sizes the
    simulator's per-dependence hop arrays. *)

val bisection_bw : t -> float
(** Total bandwidth of the links crossing the canonical bisection cut
    (mid-column / mid-row for meshes and tori, the top-level subtree
    split for fat-trees).  0 when the family has no meaningful cut
    ([Direct], [Custom], single-node grids) — callers must then skip
    bisection-based bounds. *)

val side : t -> int -> int
(** Which side (0/1) of the canonical bisection cut a node lies on. *)

(** {1 Routing} *)

val distance : t -> src:int -> dst:int -> int
(** Hops on the deterministic route between two nodes; 0 when
    [src = dst], -1 when unreachable. *)

val route_iter : t -> src:int -> dst:int -> f:(link -> unit) -> unit
(** Iterate the links of the deterministic route in path order.
    Raises [Invalid_argument] on an unreachable pair (callers check
    {!distance} first). *)

val route : t -> src:int -> dst:int -> link list

(** {1 Lint queries} *)

val unreachable_pairs : t -> int
(** Ordered node pairs with no route (always 0 for generated
    families). *)

val zero_bw_links : t -> int list
(** Ids of links with non-positive bandwidth. *)

(** {1 Spec codec} *)

val to_spec : t -> string option
(** Canonical parseable spec of a generated family —
    ["grid:8x8"], ["torus:4x4"], ["fattree:3:4"], ["direct:4"], with
    a [":free"] suffix when uncontended.  [None] for [Custom]
    (serialized link-by-link by {!Machine_codec}). *)

val of_spec : string -> link_bw:float -> link_latency:float -> (t, string) result
(** Parse a spec produced by {!to_spec} (case-insensitive).  Route
    structure is regenerated, never deserialized. *)

val equal_structure : t -> t -> bool
(** Same family, node/vertex counts, link array (ids, endpoints,
    rates) and contention flag — the structural equality the codec
    round-trip tests pin. *)
