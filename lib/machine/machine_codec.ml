(* topology stanzas: route tables are never serialized — generated
   families round-trip through their spec, custom topologies through
   their link list, and decoding regenerates the routes
   deterministically. *)
let topology_lines topo =
  match Topology.to_spec topo with
  | Some spec ->
      (* base rates travel with the spec so non-default-rate
         topologies round-trip exactly (linkless degenerate shapes,
         e.g. grid:1x1, have no rates to preserve) *)
      let bw, lat =
        if Topology.n_links topo = 0 then (1.0, 0.0)
        else
          let l = (Topology.links topo).(0) in
          (l.Topology.lbw, l.Topology.llat)
      in
      [ Printf.sprintf "topology spec=%s bw=%.17g lat=%.17g" spec bw lat ]
  | None ->
      Printf.sprintf "topology custom=%s nodes=%d vertices=%d contended=%b"
        (Topology.name topo) (Topology.n_nodes topo) (Topology.n_vertices topo)
        (Topology.contended topo)
      :: (Array.to_list (Topology.links topo)
         |> List.map (fun l ->
                Printf.sprintf "topolink src=%d dst=%d bw=%.17g lat=%.17g"
                  l.Topology.lsrc l.Topology.ldst l.Topology.lbw l.Topology.llat))

let to_string (m : Machine.t) =
  let n = m.Machine.node in
  let e = m.Machine.exec_bw in
  let c = m.Machine.compute in
  let y = m.Machine.copy in
  String.concat "\n"
    ([
      Printf.sprintf "machine %s nodes=%d" m.Machine.name m.Machine.nodes;
      Printf.sprintf
        "node sockets=%d cores_per_socket=%d gpus=%d sysmem=%.17g zc=%.17g fb=%.17g"
        n.Machine.sockets n.Machine.cores_per_socket n.Machine.gpus
        n.Machine.sysmem_per_socket n.Machine.zc_capacity n.Machine.fb_capacity;
      Printf.sprintf "exec_bw cpu_sys=%.17g cpu_zc=%.17g gpu_fb=%.17g gpu_zc=%.17g"
        e.Machine.cpu_sys e.Machine.cpu_zc e.Machine.gpu_fb e.Machine.gpu_zc;
      Printf.sprintf
        "compute cpu_flops=%.17g gpu_flops=%.17g cpu_launch=%.17g gpu_launch=%.17g dispatch=%.17g"
        c.Machine.cpu_flops c.Machine.gpu_flops c.Machine.cpu_launch_overhead
        c.Machine.gpu_launch_overhead c.Machine.runtime_dispatch;
      Printf.sprintf
        "copy memcpy=%.17g cross_socket=%.17g pcie=%.17g gpu_peer=%.17g local_latency=%.17g net_bw=%.17g net_latency=%.17g"
        y.Machine.memcpy_bw y.Machine.cross_socket_bw y.Machine.pcie_bw
        y.Machine.gpu_peer_bw y.Machine.local_latency y.Machine.net_bandwidth
        y.Machine.net_latency;
    ]
    @ (match m.Machine.topology with
      | None -> []
      | Some topo -> topology_lines topo)
    @ [ "" ])

type fields = (string * string) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_fields lineno tokens : fields =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
      | None -> fail "line %d: expected key=value, got %S" lineno tok)
    tokens

let get_float lineno fields key =
  match List.assoc_opt key fields with
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None -> fail "line %d: %s: bad number %S" lineno key v)
  | None -> fail "line %d: missing field %s" lineno key

let get_int lineno fields key =
  match List.assoc_opt key fields with
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None -> fail "line %d: %s: bad integer %S" lineno key v)
  | None -> fail "line %d: missing field %s" lineno key

type stanzas = {
  mutable header : (string * int) option;
  mutable node : Machine.node_desc option;
  mutable exec_bw : Machine.exec_bandwidth option;
  mutable compute : Machine.compute_perf option;
  mutable copy : Machine.copy_perf option;
  mutable topo_spec : (string * float * float) option;
  mutable topo_custom : (string * int * int * bool) option;
  mutable topo_links : (int * int * float * float) list; (* reversed *)
}

let of_string s =
  let st =
    {
      header = None;
      node = None;
      exec_bw = None;
      compute = None;
      copy = None;
      topo_spec = None;
      topo_custom = None;
      topo_links = [];
    }
  in
  let once lineno what current =
    if Option.is_some current then fail "line %d: duplicate %s stanza" lineno what
  in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then ()
        else
          match String.split_on_char ' ' line |> List.filter (( <> ) "") with
          | "machine" :: name :: rest ->
              once lineno "machine" st.header;
              let fields = parse_fields lineno rest in
              st.header <- Some (name, get_int lineno fields "nodes")
          | "node" :: rest ->
              once lineno "node" st.node;
              let f = parse_fields lineno rest in
              st.node <-
                Some
                  {
                    Machine.sockets = get_int lineno f "sockets";
                    cores_per_socket = get_int lineno f "cores_per_socket";
                    gpus = get_int lineno f "gpus";
                    sysmem_per_socket = get_float lineno f "sysmem";
                    zc_capacity = get_float lineno f "zc";
                    fb_capacity = get_float lineno f "fb";
                  }
          | "exec_bw" :: rest ->
              once lineno "exec_bw" st.exec_bw;
              let f = parse_fields lineno rest in
              st.exec_bw <-
                Some
                  {
                    Machine.cpu_sys = get_float lineno f "cpu_sys";
                    cpu_zc = get_float lineno f "cpu_zc";
                    gpu_fb = get_float lineno f "gpu_fb";
                    gpu_zc = get_float lineno f "gpu_zc";
                  }
          | "compute" :: rest ->
              once lineno "compute" st.compute;
              let f = parse_fields lineno rest in
              st.compute <-
                Some
                  {
                    Machine.cpu_flops = get_float lineno f "cpu_flops";
                    gpu_flops = get_float lineno f "gpu_flops";
                    cpu_launch_overhead = get_float lineno f "cpu_launch";
                    gpu_launch_overhead = get_float lineno f "gpu_launch";
                    runtime_dispatch = get_float lineno f "dispatch";
                  }
          | "copy" :: rest ->
              once lineno "copy" st.copy;
              let f = parse_fields lineno rest in
              st.copy <-
                Some
                  {
                    Machine.memcpy_bw = get_float lineno f "memcpy";
                    cross_socket_bw = get_float lineno f "cross_socket";
                    pcie_bw = get_float lineno f "pcie";
                    gpu_peer_bw = get_float lineno f "gpu_peer";
                    local_latency = get_float lineno f "local_latency";
                    net_bandwidth = get_float lineno f "net_bw";
                    net_latency = get_float lineno f "net_latency";
                  }
          | "topology" :: rest -> (
              if Option.is_some st.topo_spec || Option.is_some st.topo_custom then
                fail "line %d: duplicate topology stanza" lineno;
              let f = parse_fields lineno rest in
              match List.assoc_opt "spec" f with
              | Some spec ->
                  st.topo_spec <-
                    Some (spec, get_float lineno f "bw", get_float lineno f "lat")
              | None -> (
                  match List.assoc_opt "custom" f with
                  | Some name ->
                      let contended =
                        match List.assoc_opt "contended" f with
                        | Some "true" | None -> true
                        | Some "false" -> false
                        | Some v -> fail "line %d: contended: bad boolean %S" lineno v
                      in
                      st.topo_custom <-
                        Some
                          ( name,
                            get_int lineno f "nodes",
                            get_int lineno f "vertices",
                            contended )
                  | None -> fail "line %d: topology needs spec= or custom=" lineno))
          | "topolink" :: rest ->
              if Option.is_none st.topo_custom then
                fail "line %d: topolink before a custom topology stanza" lineno;
              let f = parse_fields lineno rest in
              st.topo_links <-
                ( get_int lineno f "src",
                  get_int lineno f "dst",
                  get_float lineno f "bw",
                  get_float lineno f "lat" )
                :: st.topo_links
          | other :: _ -> fail "line %d: unknown stanza %S" lineno other
          | [] -> ())
      (String.split_on_char '\n' s);
    let req what = function Some v -> v | None -> fail "missing %s stanza" what in
    let name, nodes = req "machine" st.header in
    let topology =
      (* routes are regenerated here, never read from the file *)
      match (st.topo_spec, st.topo_custom) with
      | Some (spec, bw, lat), _ -> (
          match Topology.of_spec spec ~link_bw:bw ~link_latency:lat with
          | Ok topo -> Some topo
          | Error e -> fail "topology: %s" e)
      | None, Some (tname, n_nodes, n_vertices, contended) ->
          let topo =
            Topology.custom ~name:tname ~n_nodes ~n_vertices
              ~links:(List.rev st.topo_links) ()
          in
          Some (Topology.with_contention topo contended)
      | None, None -> None
    in
    let machine =
      Machine.make ~name ~nodes ~node:(req "node" st.node)
        ~exec_bw:(req "exec_bw" st.exec_bw)
        ~compute:(req "compute" st.compute)
        ~copy:(req "copy" st.copy)
        ?topology ()
    in
    Ok machine
  with
  | Parse_error e -> Error e
  | Invalid_argument e -> Error e

let round_trip_exn m =
  match of_string (to_string m) with
  | Ok m' -> m'
  | Error e -> failwith ("Machine_codec.round_trip_exn: " ^ e)

let fingerprint m = Digest.to_hex (Digest.string (to_string m))
