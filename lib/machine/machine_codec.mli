(** Textual machine description files.

    §3.3: AutoMap's input includes "the machine model representation".
    This codec lets users describe a cluster in a small key=value file
    instead of writing OCaml:

    {v
    machine MyCluster nodes=2
    node sockets=2 cores_per_socket=1 gpus=4 sysmem=128e9 zc=60e9 fb=16e9
    exec_bw cpu_sys=80e9 cpu_zc=55e9 gpu_fb=500e9 gpu_zc=10e9
    compute cpu_flops=720e9 gpu_flops=4000e9 cpu_launch=10e-6 gpu_launch=30e-6 dispatch=12e-6
    copy memcpy=20e9 cross_socket=10e9 pcie=12e9 gpu_peer=12e9 local_latency=5e-6 net_bw=10e9 net_latency=3e-6
    v}

    '#' starts a comment; the four stanza lines may appear in any
    order but each exactly once.

    An optional [topology] stanza attaches an explicit interconnect.
    Generated families serialize as their spec plus base link rates —
    {v
    topology spec=grid:8x8 bw=4e9 lat=2e-6
    v}
    — and custom topologies as a header plus one [topolink] line per
    directed link:
    {v
    topology custom=ring3 nodes=3 vertices=3 contended=true
    topolink src=0 dst=1 bw=1e9 lat=1e-6
    v}
    Route tables are {e never} serialized: decoding regenerates them
    deterministically, so a decoded machine is structurally equal and
    route-identical to the encoded one. *)

val to_string : Machine.t -> string

val of_string : string -> (Machine.t, string) result
(** Parses and validates (via {!Machine.make}); returns a descriptive
    error on malformed input. *)

val round_trip_exn : Machine.t -> Machine.t
(** Test helper. *)

val fingerprint : Machine.t -> string
(** Hex digest of {!to_string} — the canonical identity of a machine
    model.  Two machines fingerprint equal iff their serialized
    descriptions are byte-equal; the serve daemon keys its compile and
    result caches on it. *)
