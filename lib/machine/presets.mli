(** Machine presets for the clusters used in the paper's evaluation
    (§5, "Experimental Setup") plus a tiny testbed for unit tests.

    Rates are engineering estimates for the published hardware — the
    search only observes the *relative* costs these induce (GPU
    launch overhead vs. throughput, FB vs. ZC bandwidth, PCIe vs.
    NVLink, cross-socket System traffic), which is what shapes the
    paper's results.

    In the cluster presets a CPU "processor" is one socket-wide OpenMP
    group — the granularity at which Legion CPU task variants usually
    run — so its FLOP rate and streaming bandwidth are socket
    aggregates and each node exposes two schedulable CPU processors. *)

val shepard : nodes:int -> Machine.t
(** Stanford Shepard: per node 2× Xeon Platinum 8276 (28 cores; 8
    reserved for the runtime as in §5, leaving 24/socket for the
    application), 196 GB RAM, one NVIDIA P100 with 16 GB Frame-Buffer,
    60 GB pinned Zero-Copy pool, PCIe 3.0 host links. *)

val lassen : nodes:int -> Machine.t
(** LLNL Lassen: per node 2× Power9 (20 usable cores; 8 reserved for
    the runtime, leaving 16/socket), 256 GB RAM, four V100 GPUs with
    16 GB Frame-Buffer each and NVLink 2.0 host links (fast ZC access
    and GPU peer transfers), 60 GB Zero-Copy pool. *)

val testbed : nodes:int -> Machine.t
(** Small synthetic machine (1 socket × 2 cores + 1 GPU per node, tiny
    capacities) for fast, readable unit tests. *)

val cpu_only : nodes:int -> Machine.t
(** Degenerate machine with no GPUs — exercises the "kind absent"
    paths of the search (tasks may only map to CPU). *)

val headless : nodes:int -> Machine.t
(** Deliberately broken preset: one GPU per node and {e no} CPU cores,
    leaving the socket's System memory unreachable from every present
    processor kind.  Constructible (so codecs and tests can exercise
    it) but {!Analysis.analyze} reports an error-level
    [unreachable-memory] diagnostic for it. *)

val of_topology : Topology.t -> Machine.t
(** A machine built around an explicit interconnect, with per-family
    node flavors: grids/tori get a manycore-style CPU tile (one
    schedulable core, small memories) so [grid:32x32] reaches 10^3
    processors cheaply; fat-trees get a testbed-like GPU leaf node;
    [direct:N] gets the Shepard node and rates, making it the
    degenerate routed twin of [shepard ~nodes:N] (decision- and
    bit-identical searches — the toporate bench gate). *)

val of_spec : string -> nodes:int -> (Machine.t, string) result
(** Resolve a machine spec: one of the legacy preset names ([shepard],
    [lassen], [testbed], [cpu_only]/[cpu-only], [headless], scaled by
    [nodes]) or a topology spec ([grid:WxH], [torus:WxH],
    [fattree:LEVELS:ARITY], [direct:N], each optionally suffixed
    [:free] for the contention-free counterfactual).  Topology specs
    fix their own node count: [nodes] must be 1 (the CLI default,
    meaning "let the spec decide") or match it exactly. *)
