let gb = 1e9

(* A CPU "processor" in these presets is one socket-wide OpenMP group
   (Legion's common CPU-variant granularity), so its compute rate and
   streaming bandwidth are socket aggregates.  cores_per_socket = 1
   therefore means "one schedulable CPU processor per socket". *)

let shepard ~nodes =
  Machine.make ~name:"Shepard" ~nodes
    ~node:
      {
        sockets = 2;
        cores_per_socket = 1;
        gpus = 1;
        sysmem_per_socket = 98.0 *. gb;
        zc_capacity = 60.0 *. gb;
        fb_capacity = 16.0 *. gb;
      }
    ~exec_bw:
      {
        (* 24 application cores/socket on the Xeon 8276 *)
        cpu_sys = 80.0 *. gb;
        cpu_zc = 55.0 *. gb;
        gpu_fb = 500.0 *. gb;
        gpu_zc = 10.0 *. gb;
      }
    ~compute:
      {
        cpu_flops = 720e9;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 10e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 12e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }

let lassen ~nodes =
  Machine.make ~name:"Lassen" ~nodes
    ~node:
      {
        sockets = 2;
        cores_per_socket = 1;
        gpus = 4;
        sysmem_per_socket = 128.0 *. gb;
        zc_capacity = 60.0 *. gb;
        fb_capacity = 16.0 *. gb;
      }
    ~exec_bw:
      {
        (* 16 application cores/socket on the Power9 *)
        cpu_sys = 70.0 *. gb;
        cpu_zc = 50.0 *. gb;
        gpu_fb = 700.0 *. gb;
        gpu_zc = 50.0 *. gb;  (* NVLink 2.0 host link *)
      }
    ~compute:
      {
        cpu_flops = 400e9;
        gpu_flops = 7000e9;
        cpu_launch_overhead = 10e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 12e-6;
      }
    ~copy:
      {
        memcpy_bw = 25.0 *. gb;
        cross_socket_bw = 12.0 *. gb;
        pcie_bw = 50.0 *. gb;
        gpu_peer_bw = 150.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 12.0 *. gb;
        net_latency = 2e-6;
      }

let testbed ~nodes =
  Machine.make ~name:"Testbed" ~nodes
    ~node:
      {
        sockets = 1;
        cores_per_socket = 2;
        gpus = 1;
        sysmem_per_socket = 8.0 *. gb;
        zc_capacity = 2.0 *. gb;
        fb_capacity = 1.0 *. gb;
      }
    ~exec_bw:
      {
        cpu_sys = 8.0 *. gb;
        cpu_zc = 6.0 *. gb;
        gpu_fb = 500.0 *. gb;
        gpu_zc = 10.0 *. gb;
      }
    ~compute:
      {
        cpu_flops = 30e9;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 5e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 5e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }

let cpu_only ~nodes =
  Machine.make ~name:"CpuOnly" ~nodes
    ~node:
      {
        sockets = 2;
        cores_per_socket = 4;
        gpus = 0;
        sysmem_per_socket = 16.0 *. gb;
        zc_capacity = 4.0 *. gb;
        fb_capacity = 0.0;
      }
    ~exec_bw:
      {
        cpu_sys = 8.0 *. gb;
        cpu_zc = 6.0 *. gb;
        gpu_fb = 0.0;
        gpu_zc = 0.0;
      }
    ~compute:
      {
        cpu_flops = 30e9;
        gpu_flops = 0.0;
        cpu_launch_overhead = 5e-6;
        gpu_launch_overhead = 0.0;
        runtime_dispatch = 5e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 0.0;
        gpu_peer_bw = 0.0;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }

(* A deliberately broken machine: GPUs without any host CPU.  Its
   per-socket System memory exists but no present processor kind can
   address it, so the feasibility analyzer must flag the preset with an
   error-level unreachable-memory diagnostic (§4.2 constraint 1).
   Constructible on purpose — Machine.make validates only local
   positivity, reachability is the analyzer's job. *)
let headless ~nodes =
  Machine.make ~name:"Headless" ~nodes
    ~node:
      {
        sockets = 1;
        cores_per_socket = 0;
        gpus = 1;
        sysmem_per_socket = 8.0 *. gb;
        zc_capacity = 2.0 *. gb;
        fb_capacity = 1.0 *. gb;
      }
    ~exec_bw:
      {
        cpu_sys = 0.0;
        cpu_zc = 0.0;
        gpu_fb = 500.0 *. gb;
        gpu_zc = 10.0 *. gb;
      }
    ~compute:
      {
        cpu_flops = 0.0;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 0.0;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 5e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }
