let gb = 1e9

(* A CPU "processor" in these presets is one socket-wide OpenMP group
   (Legion's common CPU-variant granularity), so its compute rate and
   streaming bandwidth are socket aggregates.  cores_per_socket = 1
   therefore means "one schedulable CPU processor per socket". *)

let shepard ~nodes =
  Machine.make ~name:"Shepard" ~nodes
    ~node:
      {
        sockets = 2;
        cores_per_socket = 1;
        gpus = 1;
        sysmem_per_socket = 98.0 *. gb;
        zc_capacity = 60.0 *. gb;
        fb_capacity = 16.0 *. gb;
      }
    ~exec_bw:
      {
        (* 24 application cores/socket on the Xeon 8276 *)
        cpu_sys = 80.0 *. gb;
        cpu_zc = 55.0 *. gb;
        gpu_fb = 500.0 *. gb;
        gpu_zc = 10.0 *. gb;
      }
    ~compute:
      {
        cpu_flops = 720e9;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 10e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 12e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }
    ()

let lassen ~nodes =
  Machine.make ~name:"Lassen" ~nodes
    ~node:
      {
        sockets = 2;
        cores_per_socket = 1;
        gpus = 4;
        sysmem_per_socket = 128.0 *. gb;
        zc_capacity = 60.0 *. gb;
        fb_capacity = 16.0 *. gb;
      }
    ~exec_bw:
      {
        (* 16 application cores/socket on the Power9 *)
        cpu_sys = 70.0 *. gb;
        cpu_zc = 50.0 *. gb;
        gpu_fb = 700.0 *. gb;
        gpu_zc = 50.0 *. gb;  (* NVLink 2.0 host link *)
      }
    ~compute:
      {
        cpu_flops = 400e9;
        gpu_flops = 7000e9;
        cpu_launch_overhead = 10e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 12e-6;
      }
    ~copy:
      {
        memcpy_bw = 25.0 *. gb;
        cross_socket_bw = 12.0 *. gb;
        pcie_bw = 50.0 *. gb;
        gpu_peer_bw = 150.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 12.0 *. gb;
        net_latency = 2e-6;
      }
    ()

let testbed ~nodes =
  Machine.make ~name:"Testbed" ~nodes
    ~node:
      {
        sockets = 1;
        cores_per_socket = 2;
        gpus = 1;
        sysmem_per_socket = 8.0 *. gb;
        zc_capacity = 2.0 *. gb;
        fb_capacity = 1.0 *. gb;
      }
    ~exec_bw:
      {
        cpu_sys = 8.0 *. gb;
        cpu_zc = 6.0 *. gb;
        gpu_fb = 500.0 *. gb;
        gpu_zc = 10.0 *. gb;
      }
    ~compute:
      {
        cpu_flops = 30e9;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 5e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 5e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }
    ()

let cpu_only ~nodes =
  Machine.make ~name:"CpuOnly" ~nodes
    ~node:
      {
        sockets = 2;
        cores_per_socket = 4;
        gpus = 0;
        sysmem_per_socket = 16.0 *. gb;
        zc_capacity = 4.0 *. gb;
        fb_capacity = 0.0;
      }
    ~exec_bw:
      {
        cpu_sys = 8.0 *. gb;
        cpu_zc = 6.0 *. gb;
        gpu_fb = 0.0;
        gpu_zc = 0.0;
      }
    ~compute:
      {
        cpu_flops = 30e9;
        gpu_flops = 0.0;
        cpu_launch_overhead = 5e-6;
        gpu_launch_overhead = 0.0;
        runtime_dispatch = 5e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 0.0;
        gpu_peer_bw = 0.0;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }
    ()

(* A deliberately broken machine: GPUs without any host CPU.  Its
   per-socket System memory exists but no present processor kind can
   address it, so the feasibility analyzer must flag the preset with an
   error-level unreachable-memory diagnostic (§4.2 constraint 1).
   Constructible on purpose — Machine.make validates only local
   positivity, reachability is the analyzer's job. *)
let headless ~nodes =
  Machine.make ~name:"Headless" ~nodes
    ~node:
      {
        sockets = 1;
        cores_per_socket = 0;
        gpus = 1;
        sysmem_per_socket = 8.0 *. gb;
        zc_capacity = 2.0 *. gb;
        fb_capacity = 1.0 *. gb;
      }
    ~exec_bw:
      {
        cpu_sys = 0.0;
        cpu_zc = 0.0;
        gpu_fb = 500.0 *. gb;
        gpu_zc = 10.0 *. gb;
      }
    ~compute:
      {
        cpu_flops = 0.0;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 0.0;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 5e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }
    ()

(* ------------------------------------------------------------------ *)
(* Topology preset families                                            *)
(* ------------------------------------------------------------------ *)

(* Mesh/torus tile: a manycore-style CPU node (one schedulable core,
   small memories, no GPU) so that grid:32x32 reaches 10^3 processors
   while staying cheap to simulate.  Link bandwidth is deliberately
   modest relative to per-node injection so that link contention is
   load-bearing in searches. *)
let mesh_tile topo =
  let nodes = Topology.n_nodes topo in
  Machine.make
    ~name:(Option.value (Topology.to_spec topo) ~default:(Topology.name topo))
    ~nodes
    ~node:
      {
        sockets = 1;
        cores_per_socket = 1;
        gpus = 0;
        sysmem_per_socket = 4.0 *. gb;
        zc_capacity = 1.0 *. gb;
        fb_capacity = 0.0;
      }
    ~exec_bw:{ cpu_sys = 8.0 *. gb; cpu_zc = 6.0 *. gb; gpu_fb = 0.0; gpu_zc = 0.0 }
    ~compute:
      {
        cpu_flops = 100e9;
        gpu_flops = 0.0;
        cpu_launch_overhead = 2e-6;
        gpu_launch_overhead = 0.0;
        runtime_dispatch = 2e-6;
      }
    ~copy:
      {
        memcpy_bw = 8.0 *. gb;
        cross_socket_bw = 8.0 *. gb;
        pcie_bw = 0.0;
        gpu_peer_bw = 0.0;
        local_latency = 2e-6;
        net_bandwidth = 4.0 *. gb;
        net_latency = 2e-6;
      }
    ~topology:topo ()

(* Fat-tree leaf: a testbed-like GPU node — multi-rack cluster shape. *)
let fattree_leaf topo =
  let nodes = Topology.n_nodes topo in
  Machine.make
    ~name:(Option.value (Topology.to_spec topo) ~default:(Topology.name topo))
    ~nodes
    ~node:
      {
        sockets = 1;
        cores_per_socket = 2;
        gpus = 1;
        sysmem_per_socket = 8.0 *. gb;
        zc_capacity = 2.0 *. gb;
        fb_capacity = 1.0 *. gb;
      }
    ~exec_bw:
      { cpu_sys = 8.0 *. gb; cpu_zc = 6.0 *. gb; gpu_fb = 500.0 *. gb; gpu_zc = 10.0 *. gb }
    ~compute:
      {
        cpu_flops = 30e9;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 5e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 5e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 12.0 *. gb;
        net_latency = 2e-6;
      }
    ~topology:topo ()

(* Degenerate routed Shepard: same node and rates as [shepard], one
   NIC link per node into a shared ether vertex.  The routed DES folds
   the whole kind-level Network cost into that single hop, so searches
   on [direct:N] are decision-identical (and per-candidate bit-identical)
   to [shepard ~nodes:N] — the bench gate's degenerate baseline. *)
let direct_shepard topo =
  let nodes = Topology.n_nodes topo in
  Machine.make
    ~name:(Option.value (Topology.to_spec topo) ~default:(Topology.name topo))
    ~nodes
    ~node:
      {
        sockets = 2;
        cores_per_socket = 1;
        gpus = 1;
        sysmem_per_socket = 98.0 *. gb;
        zc_capacity = 60.0 *. gb;
        fb_capacity = 16.0 *. gb;
      }
    ~exec_bw:
      { cpu_sys = 80.0 *. gb; cpu_zc = 55.0 *. gb; gpu_fb = 500.0 *. gb; gpu_zc = 10.0 *. gb }
    ~compute:
      {
        cpu_flops = 720e9;
        gpu_flops = 4000e9;
        cpu_launch_overhead = 10e-6;
        gpu_launch_overhead = 30e-6;
        runtime_dispatch = 12e-6;
      }
    ~copy:
      {
        memcpy_bw = 20.0 *. gb;
        cross_socket_bw = 10.0 *. gb;
        pcie_bw = 12.0 *. gb;
        gpu_peer_bw = 12.0 *. gb;
        local_latency = 5e-6;
        net_bandwidth = 10.0 *. gb;
        net_latency = 3e-6;
      }
    ~topology:topo ()

let topo_link_rates spec =
  let starts p = String.length spec >= String.length p && String.sub spec 0 (String.length p) = p in
  if starts "fattree" then (12.0 *. gb, 2e-6)
  else if starts "direct" then (10.0 *. gb, 3e-6)
  else (4.0 *. gb, 2e-6)

let of_topology topo =
  match Topology.family topo with
  | Topology.Grid _ -> mesh_tile topo
  | Topology.Fattree _ -> fattree_leaf topo
  | Topology.Direct -> direct_shepard topo
  | Topology.Custom -> mesh_tile topo

let of_spec spec ~nodes =
  let lower = String.lowercase_ascii (String.trim spec) in
  match lower with
  | "shepard" -> Ok (shepard ~nodes)
  | "lassen" -> Ok (lassen ~nodes)
  | "testbed" -> Ok (testbed ~nodes)
  | "cpu_only" | "cpu-only" -> Ok (cpu_only ~nodes)
  | "headless" -> Ok (headless ~nodes)
  | _ -> (
      let link_bw, link_latency = topo_link_rates lower in
      match Topology.of_spec lower ~link_bw ~link_latency with
      | Error e -> Error e
      | Ok topo ->
          let tn = Topology.n_nodes topo in
          if nodes <> 1 && nodes <> tn then
            Error
              (Printf.sprintf
                 "topology preset %s fixes the node count at %d (got -n %d)" lower tn
                 nodes)
          else Ok (of_topology topo))
