type family =
  | Grid of { w : int; h : int; wrap : bool }
  | Fattree of { levels : int; arity : int }
  | Direct
  | Custom

type link = {
  lid : int;
  lsrc : int;
  ldst : int;
  lbw : float;
  llat : float;
}

type t = {
  family : family;
  tname : string;
  n_nodes : int;
  n_vertices : int;
  links : link array;
  contended : bool;
  diameter : int;
  bisection_bw : float;
  side_arr : int array;
  base_bw : float;
  base_lat : float;
  (* fat-tree routing helpers: [ft_pow.(j)] = arity^j, [ft_up_off.(j)]
     = first up-link id of level j, [ft_total_up] = count of up links
     (down links mirror them after this offset).  Empty for other
     families. *)
  ft_pow : int array;
  ft_up_off : int array;
  ft_total_up : int;
  (* Custom routing: [next.(v * n_nodes + d)] = link id of the first
     hop from vertex [v] toward node [d] (-1 unreachable);
     [ndist.(s * n_nodes + d)] = hop distance between nodes.  Empty
     for generated families (they route arithmetically). *)
  next : int array;
  ndist : int array;
}

let family t = t.family
let name t = t.tname
let n_nodes t = t.n_nodes
let n_vertices t = t.n_vertices
let n_links t = Array.length t.links
let links t = t.links
let contended t = t.contended
let diameter t = t.diameter
let bisection_bw t = t.bisection_bw
let side t n = t.side_arr.(n)

let with_contention t on = if t.contended = on then t else { t with contended = on }

let check_rates ~link_bw ~link_latency =
  if link_bw <= 0.0 then invalid_arg "Topology: link_bw must be positive";
  if link_latency < 0.0 then invalid_arg "Topology: link_latency must be non-negative"

(* hard cap on generated sizes: 10^6 nodes is already far past the
   10^4-processor roadmap target, and guards the int arithmetic *)
let max_gen_nodes = 1_000_000

(* ------------------------------------------------------------------ *)
(* Grid / torus                                                        *)
(* ------------------------------------------------------------------ *)

(* Link-id layout, mesh (wrap = false):
     east  (x,y)->(x+1,y)            id =              y*(w-1) + x
     west  (x+1,y)->(x,y)            id = h*(w-1)    + y*(w-1) + x
     south (x,y)->(x,y+1)            id = 2h*(w-1)   + x*(h-1) + y
     north (x,y+1)->(x,y)            id = 2h*(w-1) + w*(h-1) + x*(h-1) + y
   torus (wrap = true, all coordinates mod w/h):
     east  id = y*w + x    west  id = hw + y*w + x
     south id = 2hw + x*h + y      north id = 2hw + wh + x*h + y *)
let grid ~w ~h ?(wrap = false) ~link_bw ~link_latency () =
  if w < 1 || h < 1 then invalid_arg "Topology.grid: dimensions must be >= 1";
  if wrap && (w < 2 || h < 2) then
    invalid_arg "Topology.grid: torus dimensions must be >= 2";
  if w * h > max_gen_nodes then invalid_arg "Topology.grid: too many nodes";
  check_rates ~link_bw ~link_latency;
  let n = w * h in
  let node x y = (y * w) + x in
  let mk lid lsrc ldst = { lid; lsrc; ldst; lbw = link_bw; llat = link_latency } in
  let links =
    if wrap then begin
      let a = Array.make (4 * n) (mk 0 0 0) in
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          let e = (y * w) + x in
          a.(e) <- mk e (node x y) (node ((x + 1) mod w) y);
          let wl = (h * w) + e in
          a.(wl) <- mk wl (node x y) (node ((x + w - 1) mod w) y);
          let s = (2 * h * w) + (x * h) + y in
          a.(s) <- mk s (node x y) (node x ((y + 1) mod h));
          let nl = (2 * h * w) + (w * h) + (x * h) + y in
          a.(nl) <- mk nl (node x y) (node x ((y + h - 1) mod h))
        done
      done;
      a
    end
    else begin
      let nl = 2 * ((h * (w - 1)) + (w * (h - 1))) in
      let a = Array.make (max nl 1) (mk 0 0 0) in
      for y = 0 to h - 1 do
        for x = 0 to w - 2 do
          let e = (y * (w - 1)) + x in
          a.(e) <- mk e (node x y) (node (x + 1) y);
          let wl = (h * (w - 1)) + e in
          a.(wl) <- mk wl (node (x + 1) y) (node x y)
        done
      done;
      for x = 0 to w - 1 do
        for y = 0 to h - 2 do
          let s = (2 * h * (w - 1)) + (x * (h - 1)) + y in
          a.(s) <- mk s (node x y) (node x (y + 1));
          let nb = (2 * h * (w - 1)) + (w * (h - 1)) + (x * (h - 1)) + y in
          a.(nb) <- mk nb (node x (y + 1)) (node x y)
        done
      done;
      if nl = 0 then [||] else a
    end
  in
  (* canonical bisection: cut the larger dimension at its midpoint;
     tori cross the cut twice (midpoint and wrap-around) *)
  let side_arr = Array.make n 0 in
  let bisection_bw =
    if w >= h && w >= 2 then begin
      let cx = w / 2 in
      for y = 0 to h - 1 do
        for x = cx to w - 1 do
          side_arr.(node x y) <- 1
        done
      done;
      float_of_int ((if wrap then 4 else 2) * h) *. link_bw
    end
    else if h >= 2 then begin
      let cy = h / 2 in
      for y = cy to h - 1 do
        for x = 0 to w - 1 do
          side_arr.(node x y) <- 1
        done
      done;
      float_of_int ((if wrap then 4 else 2) * w) *. link_bw
    end
    else 0.0
  in
  let diameter = if wrap then (w / 2) + (h / 2) else w - 1 + (h - 1) in
  {
    family = Grid { w; h; wrap };
    tname = Printf.sprintf "%s:%dx%d" (if wrap then "torus" else "grid") w h;
    n_nodes = n;
    n_vertices = n;
    links;
    contended = true;
    diameter;
    bisection_bw;
    side_arr;
    base_bw = link_bw;
    base_lat = link_latency;
    ft_pow = [||];
    ft_up_off = [||];
    ft_total_up = 0;
    next = [||];
    ndist = [||];
  }

(* ------------------------------------------------------------------ *)
(* Fat-tree                                                            *)
(* ------------------------------------------------------------------ *)

let fattree ~levels ~arity ~link_bw ~link_latency =
  if levels < 1 then invalid_arg "Topology.fattree: levels must be >= 1";
  if arity < 2 then invalid_arg "Topology.fattree: arity must be >= 2";
  check_rates ~link_bw ~link_latency;
  let pow = Array.make (levels + 1) 1 in
  for j = 1 to levels do
    pow.(j) <- pow.(j - 1) * arity;
    if pow.(j) > max_gen_nodes then invalid_arg "Topology.fattree: too many nodes"
  done;
  let n = pow.(levels) in
  (* vertex ids: leaves [0,n), then switch levels bottom-up *)
  let lvl_off = Array.make (levels + 1) 0 in
  (* lvl_off.(0) = 0 (leaves); lvl_off.(j) = first vertex of level j *)
  lvl_off.(1) <- n;
  for j = 2 to levels do
    lvl_off.(j) <- lvl_off.(j - 1) + pow.(levels - j + 1)
  done;
  let n_vertices = lvl_off.(levels) + pow.(0) in
  (* up links of level j: one per level-(j-1) vertex, child index c *)
  let up_off = Array.make (levels + 1) 0 in
  for j = 2 to levels do
    up_off.(j) <- up_off.(j - 1) + pow.(levels - j + 2)
  done;
  let total_up = up_off.(levels) + pow.(1) in
  let vertex_of ~level ~idx = if level = 0 then idx else lvl_off.(level) + idx in
  let dummy = { lid = 0; lsrc = 0; ldst = 0; lbw = link_bw; llat = link_latency } in
  let links = Array.make (2 * total_up) dummy in
  for j = 1 to levels do
    let bw = link_bw *. float_of_int pow.(j - 1) in
    for c = 0 to pow.(levels - j + 1) - 1 do
      let child = vertex_of ~level:(j - 1) ~idx:c in
      let parent = vertex_of ~level:j ~idx:(c / arity) in
      let up = up_off.(j) + c in
      links.(up) <- { lid = up; lsrc = child; ldst = parent; lbw = bw; llat = link_latency };
      let down = total_up + up in
      links.(down) <-
        { lid = down; lsrc = parent; ldst = child; lbw = bw; llat = link_latency }
    done
  done;
  (* bisection: split by top-level subtree; crossing traffic transits
     the root's up+down links of the first-side children *)
  let side_arr = Array.init n (fun leaf -> if leaf / pow.(levels - 1) < (arity + 1) / 2 then 0 else 1) in
  let c0 = (arity + 1) / 2 in
  let bisection_bw =
    2.0 *. float_of_int c0 *. (link_bw *. float_of_int pow.(levels - 1))
  in
  {
    family = Fattree { levels; arity };
    tname = Printf.sprintf "fattree:%d:%d" levels arity;
    n_nodes = n;
    n_vertices;
    links;
    contended = true;
    diameter = 2 * levels;
    bisection_bw;
    side_arr;
    base_bw = link_bw;
    base_lat = link_latency;
    ft_pow = pow;
    ft_up_off = up_off;
    ft_total_up = total_up;
    next = [||];
    ndist = [||];
  }

(* ------------------------------------------------------------------ *)
(* Direct (degenerate)                                                 *)
(* ------------------------------------------------------------------ *)

let direct ~nodes ~link_bw ~link_latency =
  if nodes < 1 then invalid_arg "Topology.direct: nodes must be >= 1";
  if nodes > max_gen_nodes then invalid_arg "Topology.direct: too many nodes";
  check_rates ~link_bw ~link_latency;
  let links =
    Array.init nodes (fun i ->
        { lid = i; lsrc = i; ldst = nodes; lbw = link_bw; llat = link_latency })
  in
  {
    family = Direct;
    tname = Printf.sprintf "direct:%d" nodes;
    n_nodes = nodes;
    n_vertices = nodes + 1;
    links;
    contended = true;
    diameter = (if nodes > 1 then 1 else 0);
    bisection_bw = 0.0;
    side_arr = Array.make nodes 0;
    base_bw = link_bw;
    base_lat = link_latency;
    ft_pow = [||];
    ft_up_off = [||];
    ft_total_up = 0;
    next = [||];
    ndist = [||];
  }

(* ------------------------------------------------------------------ *)
(* Custom (BFS route tables)                                           *)
(* ------------------------------------------------------------------ *)

let custom ~name ~n_nodes ?n_vertices ~links:link_list () =
  if n_nodes < 1 then invalid_arg "Topology.custom: n_nodes must be >= 1";
  let n_vertices = Option.value n_vertices ~default:n_nodes in
  if n_vertices < n_nodes then
    invalid_arg "Topology.custom: n_vertices must be >= n_nodes";
  let links =
    Array.of_list
      (List.mapi
         (fun lid (lsrc, ldst, lbw, llat) ->
           if lsrc < 0 || lsrc >= n_vertices || ldst < 0 || ldst >= n_vertices then
             invalid_arg "Topology.custom: link endpoint out of range";
           { lid; lsrc; ldst; lbw; llat })
         link_list)
  in
  let nl = Array.length links in
  (* per-vertex outgoing adjacency, in link-id order (determinism) *)
  let out_cnt = Array.make (n_vertices + 1) 0 in
  Array.iter (fun l -> out_cnt.(l.lsrc) <- out_cnt.(l.lsrc) + 1) links;
  let out_off = Array.make (n_vertices + 1) 0 in
  for v = 0 to n_vertices - 1 do
    out_off.(v + 1) <- out_off.(v) + out_cnt.(v)
  done;
  let out_lids = Array.make (max nl 1) 0 in
  let fill = Array.make n_vertices 0 in
  for lid = 0 to nl - 1 do
    let v = links.(lid).lsrc in
    out_lids.(out_off.(v) + fill.(v)) <- lid;
    fill.(v) <- fill.(v) + 1
  done;
  (* reverse adjacency for the per-destination BFS *)
  let in_cnt = Array.make (n_vertices + 1) 0 in
  Array.iter (fun l -> in_cnt.(l.ldst) <- in_cnt.(l.ldst) + 1) links;
  let in_off = Array.make (n_vertices + 1) 0 in
  for v = 0 to n_vertices - 1 do
    in_off.(v + 1) <- in_off.(v) + in_cnt.(v)
  done;
  let in_lids = Array.make (max nl 1) 0 in
  Array.fill fill 0 n_vertices 0;
  for lid = 0 to nl - 1 do
    let v = links.(lid).ldst in
    in_lids.(in_off.(v) + fill.(v)) <- lid;
    fill.(v) <- fill.(v) + 1
  done;
  let next = Array.make (n_vertices * n_nodes) (-1) in
  let ndist = Array.make (n_nodes * n_nodes) (-1) in
  let dist = Array.make n_vertices (-1) in
  let queue = Array.make n_vertices 0 in
  for d = 0 to n_nodes - 1 do
    Array.fill dist 0 n_vertices (-1);
    dist.(d) <- 0;
    queue.(0) <- d;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      for j = in_off.(v) to in_off.(v + 1) - 1 do
        let u = links.(in_lids.(j)).lsrc in
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          queue.(!tail) <- u;
          incr tail
        end
      done
    done;
    for v = 0 to n_vertices - 1 do
      if v <> d && dist.(v) > 0 then begin
        (* first outgoing link (smallest lid) that makes progress *)
        let chosen = ref (-1) in
        let j = ref out_off.(v) in
        while !chosen < 0 && !j < out_off.(v + 1) do
          let lid = out_lids.(!j) in
          let u = links.(lid).ldst in
          if dist.(u) = dist.(v) - 1 then chosen := lid else incr j
        done;
        next.((v * n_nodes) + d) <- !chosen
      end
    done;
    for s = 0 to n_nodes - 1 do
      ndist.((s * n_nodes) + d) <- dist.(s)
    done
  done;
  let diameter = Array.fold_left (fun acc d -> if d > acc then d else acc) 0 ndist in
  {
    family = Custom;
    tname = name;
    n_nodes;
    n_vertices;
    links;
    contended = true;
    diameter;
    bisection_bw = 0.0;
    side_arr = Array.make n_nodes 0;
    base_bw = (if nl > 0 then links.(0).lbw else 1.0);
    base_lat = (if nl > 0 then links.(0).llat else 0.0);
    ft_pow = [||];
    ft_up_off = [||];
    ft_total_up = 0;
    next;
    ndist;
  }

(* ------------------------------------------------------------------ *)
(* Routing                                                             *)
(* ------------------------------------------------------------------ *)

let distance t ~src ~dst =
  if src = dst then 0
  else
    match t.family with
    | Grid { w; h; wrap } ->
        let sx = src mod w and sy = src / w in
        let dx = dst mod w and dy = dst / w in
        if wrap then
          let ex = abs (dx - sx) in
          let ey = abs (dy - sy) in
          min ex (w - ex) + min ey (h - ey)
        else abs (dx - sx) + abs (dy - sy)
    | Fattree _ ->
        let pow = t.ft_pow in
        let j = ref 1 in
        while src / pow.(!j) <> dst / pow.(!j) do
          incr j
        done;
        2 * !j
    | Direct -> 1
    | Custom -> t.ndist.((src * t.n_nodes) + dst)

let route_iter t ~src ~dst ~f =
  if src <> dst then
    match t.family with
    | Grid { w; h; wrap } ->
        let x = ref (src mod w) and y = ref (src / w) in
        let tx = dst mod w and ty = dst / w in
        if wrap then begin
          while !x <> tx do
            let de = (tx - !x + w) mod w and dw = (!x - tx + w) mod w in
            if de <= dw then begin
              f t.links.((!y * w) + !x);
              x := (!x + 1) mod w
            end
            else begin
              f t.links.((h * w) + (!y * w) + !x);
              x := (!x + w - 1) mod w
            end
          done;
          while !y <> ty do
            let ds = (ty - !y + h) mod h and dn = (!y - ty + h) mod h in
            if ds <= dn then begin
              f t.links.((2 * h * w) + (!x * h) + !y);
              y := (!y + 1) mod h
            end
            else begin
              f t.links.((2 * h * w) + (w * h) + (!x * h) + !y);
              y := (!y + h - 1) mod h
            end
          done
        end
        else begin
          while !x < tx do
            f t.links.((!y * (w - 1)) + !x);
            incr x
          done;
          while !x > tx do
            f t.links.((h * (w - 1)) + (!y * (w - 1)) + (!x - 1));
            decr x
          done;
          while !y < ty do
            f t.links.((2 * h * (w - 1)) + (!x * (h - 1)) + !y);
            incr y
          done;
          while !y > ty do
            f t.links.((2 * h * (w - 1)) + (w * (h - 1)) + (!x * (h - 1)) + (!y - 1));
            decr y
          done
        end
    | Fattree _ ->
        let pow = t.ft_pow in
        let up_off = t.ft_up_off in
        let jstar = ref 1 in
        while src / pow.(!jstar) <> dst / pow.(!jstar) do
          incr jstar
        done;
        for j = 1 to !jstar do
          f t.links.(up_off.(j) + (src / pow.(j - 1)))
        done;
        for j = !jstar downto 1 do
          f t.links.(t.ft_total_up + up_off.(j) + (dst / pow.(j - 1)))
        done
    | Direct -> f t.links.(src)
    | Custom ->
        let v = ref src in
        while !v <> dst do
          let lid = t.next.((!v * t.n_nodes) + dst) in
          if lid < 0 then invalid_arg "Topology.route_iter: unreachable pair";
          f t.links.(lid);
          v := t.links.(lid).ldst
        done

let route t ~src ~dst =
  let acc = ref [] in
  route_iter t ~src ~dst ~f:(fun l -> acc := l :: !acc);
  List.rev !acc

let max_hops t =
  match t.family with
  | Direct -> 1
  | _ -> max t.diameter 1

(* ------------------------------------------------------------------ *)
(* Lint queries                                                        *)
(* ------------------------------------------------------------------ *)

let unreachable_pairs t =
  match t.family with
  | Custom ->
      let n = ref 0 in
      Array.iter (fun d -> if d < 0 then incr n) t.ndist;
      !n
  | _ -> 0

let zero_bw_links t =
  Array.to_list t.links
  |> List.filter_map (fun l -> if l.lbw <= 0.0 then Some l.lid else None)

(* ------------------------------------------------------------------ *)
(* Spec codec                                                          *)
(* ------------------------------------------------------------------ *)

let to_spec t =
  match t.family with
  | Custom -> None
  | _ -> Some (if t.contended then t.tname else t.tname ^ ":free")

let of_spec s ~link_bw ~link_latency =
  let err () = Error (Printf.sprintf "bad topology spec %S" s) in
  let parts = String.split_on_char ':' (String.lowercase_ascii (String.trim s)) in
  let parts, free =
    match List.rev parts with
    | "free" :: rest -> (List.rev rest, true)
    | _ -> (parts, false)
  in
  let dims str =
    match String.split_on_char 'x' str with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some w, Some h -> Some (w, h)
        | _ -> None)
    | _ -> None
  in
  let build () =
    match parts with
    | [ "grid"; d ] -> (
        match dims d with
        | Some (w, h) -> Ok (grid ~w ~h ~link_bw ~link_latency ())
        | None -> err ())
    | [ "torus"; d ] -> (
        match dims d with
        | Some (w, h) -> Ok (grid ~w ~h ~wrap:true ~link_bw ~link_latency ())
        | None -> err ())
    | [ "fattree"; l; a ] -> (
        match (int_of_string_opt l, int_of_string_opt a) with
        | Some levels, Some arity -> Ok (fattree ~levels ~arity ~link_bw ~link_latency)
        | _ -> err ())
    | [ "direct"; n ] -> (
        match int_of_string_opt n with
        | Some nodes -> Ok (direct ~nodes ~link_bw ~link_latency)
        | None -> err ())
    | _ -> err ()
  in
  match build () with
  | Ok t -> Ok (if free then with_contention t false else t)
  | Error _ as e -> e
  | exception Invalid_argument m -> Error m

let equal_structure a b =
  a.family = b.family && a.n_nodes = b.n_nodes && a.n_vertices = b.n_vertices
  && a.contended = b.contended && a.links = b.links
