type processor = {
  pid : int;
  pnode : int;
  psocket : int;
  pkind : Kinds.proc_kind;
  plocal : int;
}

type memory = {
  mid : int;
  mnode : int;
  msocket : int;
  mkind : Kinds.mem_kind;
  capacity : float;
  mlocal : int;
}

type node_desc = {
  sockets : int;
  cores_per_socket : int;
  gpus : int;
  sysmem_per_socket : float;
  zc_capacity : float;
  fb_capacity : float;
}

type exec_bandwidth = {
  cpu_sys : float;
  cpu_zc : float;
  gpu_fb : float;
  gpu_zc : float;
}

type compute_perf = {
  cpu_flops : float;
  gpu_flops : float;
  cpu_launch_overhead : float;
  gpu_launch_overhead : float;
  runtime_dispatch : float;
}

type copy_perf = {
  memcpy_bw : float;
  cross_socket_bw : float;
  pcie_bw : float;
  gpu_peer_bw : float;
  local_latency : float;
  net_bandwidth : float;
  net_latency : float;
}

type t = {
  name : string;
  nodes : int;
  node : node_desc;
  exec_bw : exec_bandwidth;
  compute : compute_perf;
  copy : copy_perf;
  processors : processor array;
  memories : memory array;
  topology : Topology.t option;
}

let check_positive name v =
  if v <= 0.0 then invalid_arg (Printf.sprintf "Machine.make: %s must be positive" name)

let check_positive_int name v =
  if v <= 0 then invalid_arg (Printf.sprintf "Machine.make: %s must be positive" name)

(* GPUs are assigned to sockets round-robin, as on real multi-socket
   servers where devices hang off alternating PCIe root complexes. *)
let gpu_socket node gpu_index = gpu_index mod node.sockets

let build_processors ~nodes ~node =
  let per_node = (node.sockets * node.cores_per_socket) + node.gpus in
  let a =
    Array.make (nodes * per_node)
      { pid = 0; pnode = 0; psocket = 0; pkind = Kinds.Cpu; plocal = 0 }
  in
  let i = ref 0 in
  for n = 0 to nodes - 1 do
    for s = 0 to node.sockets - 1 do
      for c = 0 to node.cores_per_socket - 1 do
        a.(!i) <-
          {
            pid = !i;
            pnode = n;
            psocket = s;
            pkind = Kinds.Cpu;
            plocal = (s * node.cores_per_socket) + c;
          };
        incr i
      done
    done;
    for g = 0 to node.gpus - 1 do
      a.(!i) <-
        { pid = !i; pnode = n; psocket = gpu_socket node g; pkind = Kinds.Gpu; plocal = g };
      incr i
    done
  done;
  a

let build_memories ~nodes ~node =
  let per_node = node.sockets + 1 + node.gpus in
  let a =
    Array.make (nodes * per_node)
      { mid = 0; mnode = 0; msocket = 0; mkind = Kinds.System; capacity = 0.0; mlocal = 0 }
  in
  let i = ref 0 in
  for n = 0 to nodes - 1 do
    for s = 0 to node.sockets - 1 do
      a.(!i) <-
        {
          mid = !i;
          mnode = n;
          msocket = s;
          mkind = Kinds.System;
          capacity = node.sysmem_per_socket;
          mlocal = s;
        };
      incr i
    done;
    a.(!i) <-
      {
        mid = !i;
        mnode = n;
        msocket = -1;
        mkind = Kinds.Zero_copy;
        capacity = node.zc_capacity;
        mlocal = 0;
      };
    incr i;
    for g = 0 to node.gpus - 1 do
      a.(!i) <-
        {
          mid = !i;
          mnode = n;
          msocket = gpu_socket node g;
          mkind = Kinds.Frame_buffer;
          capacity = node.fb_capacity;
          mlocal = g;
        };
      incr i
    done
  done;
  a

let make ~name ~nodes ~node ~exec_bw ~compute ~copy ?topology () =
  check_positive_int "nodes" nodes;
  (match topology with
  | Some topo when Topology.n_nodes topo <> nodes ->
      invalid_arg
        (Printf.sprintf "Machine.make: topology has %d nodes, machine has %d"
           (Topology.n_nodes topo) nodes)
  | _ -> ());
  check_positive_int "sockets" node.sockets;
  (* cores_per_socket = 0 describes a headless (GPU-only) node: legal
     to construct — the feasibility analyzer is what flags its
     unreachable System memory — but only if GPUs remain *)
  if node.cores_per_socket < 0 then
    invalid_arg "Machine.make: cores_per_socket must be non-negative";
  if node.gpus < 0 then invalid_arg "Machine.make: gpus must be non-negative";
  if node.cores_per_socket = 0 && node.gpus = 0 then
    invalid_arg "Machine.make: node needs at least one processor";
  check_positive "sysmem_per_socket" node.sysmem_per_socket;
  check_positive "zc_capacity" node.zc_capacity;
  if node.gpus > 0 then check_positive "fb_capacity" node.fb_capacity;
  List.iter
    (fun (n, v) -> check_positive n v)
    [
      ("memcpy_bw", copy.memcpy_bw);
      ("cross_socket_bw", copy.cross_socket_bw);
      ("net_bandwidth", copy.net_bandwidth);
    ];
  if node.cores_per_socket > 0 then
    List.iter
      (fun (n, v) -> check_positive n v)
      [
        ("cpu_sys bandwidth", exec_bw.cpu_sys);
        ("cpu_zc bandwidth", exec_bw.cpu_zc);
        ("cpu_flops", compute.cpu_flops);
        ("cpu_launch_overhead", compute.cpu_launch_overhead);
      ];
  if node.gpus > 0 then
    List.iter
      (fun (n, v) -> check_positive n v)
      [
        ("gpu_fb bandwidth", exec_bw.gpu_fb);
        ("gpu_zc bandwidth", exec_bw.gpu_zc);
        ("gpu_flops", compute.gpu_flops);
        ("gpu_launch_overhead", compute.gpu_launch_overhead);
        ("pcie_bw", copy.pcie_bw);
        ("gpu_peer_bw", copy.gpu_peer_bw);
      ];
  {
    name;
    nodes;
    node;
    exec_bw;
    compute;
    copy;
    processors = build_processors ~nodes ~node;
    memories = build_memories ~nodes ~node;
    topology;
  }

let procs_of_kind_per_node t = function
  | Kinds.Cpu -> t.node.sockets * t.node.cores_per_socket
  | Kinds.Gpu -> t.node.gpus

let proc_kinds_available t =
  List.filter (fun k -> procs_of_kind_per_node t k > 0) Kinds.all_proc_kinds

let procs_per_node t = (t.node.sockets * t.node.cores_per_socket) + t.node.gpus
let mems_per_node t = t.node.sockets + 1 + t.node.gpus

let proc t ~node ~kind ~local =
  let per_kind = procs_of_kind_per_node t kind in
  if node < 0 || node >= t.nodes then invalid_arg "Machine.proc: bad node";
  if local < 0 || local >= per_kind then invalid_arg "Machine.proc: bad local index";
  let base = node * procs_per_node t in
  let offset =
    match kind with
    | Kinds.Cpu -> local
    | Kinds.Gpu -> (t.node.sockets * t.node.cores_per_socket) + local
  in
  t.processors.(base + offset)

let memory t ~node ~kind ~local =
  let base = node * mems_per_node t in
  let offset =
    match kind with
    | Kinds.System -> local
    | Kinds.Zero_copy -> t.node.sockets
    | Kinds.Frame_buffer -> t.node.sockets + 1 + local
  in
  t.memories.(base + offset)

let addressable _t p m =
  p.pnode = m.mnode
  && Kinds.accessible p.pkind m.mkind
  &&
  match m.mkind with
  | Kinds.Zero_copy -> true
  | Kinds.System -> p.psocket = m.msocket
  | Kinds.Frame_buffer -> (
      match p.pkind with Kinds.Gpu -> p.plocal = m.mlocal | Kinds.Cpu -> false)

let closest_memory t p kind =
  if not (Kinds.accessible p.pkind kind) then
    invalid_arg
      (Printf.sprintf "Machine.closest_memory: %s cannot address %s"
         (Kinds.proc_kind_to_string p.pkind)
         (Kinds.mem_kind_to_string kind));
  match kind with
  | Kinds.Zero_copy -> memory t ~node:p.pnode ~kind ~local:0
  | Kinds.System -> memory t ~node:p.pnode ~kind ~local:p.psocket
  | Kinds.Frame_buffer -> memory t ~node:p.pnode ~kind ~local:p.plocal

let mem_kind_capacity t = function
  | Kinds.System -> t.node.sysmem_per_socket
  | Kinds.Zero_copy -> t.node.zc_capacity
  | Kinds.Frame_buffer -> t.node.fb_capacity

let launch_overhead t = function
  | Kinds.Cpu -> t.compute.cpu_launch_overhead
  | Kinds.Gpu -> t.compute.gpu_launch_overhead

let compute_rate t = function
  | Kinds.Cpu -> t.compute.cpu_flops
  | Kinds.Gpu -> t.compute.gpu_flops

let exec_bandwidth t p m =
  match (p, m) with
  | Kinds.Cpu, Kinds.System -> t.exec_bw.cpu_sys
  | Kinds.Cpu, Kinds.Zero_copy -> t.exec_bw.cpu_zc
  | Kinds.Gpu, Kinds.Frame_buffer -> t.exec_bw.gpu_fb
  | Kinds.Gpu, Kinds.Zero_copy -> t.exec_bw.gpu_zc
  | (Kinds.Cpu, Kinds.Frame_buffer | Kinds.Gpu, Kinds.System) ->
      invalid_arg "Machine.exec_bandwidth: memory kind not addressable"

type channel =
  | Same_memory
  | Host_local
  | Cross_socket
  | Pcie
  | Gpu_peer
  | Network

let channel_between _t a b =
  if a.mid = b.mid then Same_memory
  else if a.mnode <> b.mnode then Network
  else
    match (a.mkind, b.mkind) with
    | Kinds.Frame_buffer, Kinds.Frame_buffer -> Gpu_peer
    | Kinds.Frame_buffer, _ | _, Kinds.Frame_buffer -> Pcie
    | Kinds.System, Kinds.System ->
        if a.msocket <> b.msocket then Cross_socket else Host_local
    | Kinds.System, Kinds.Zero_copy | Kinds.Zero_copy, Kinds.System -> Host_local
    | Kinds.Zero_copy, Kinds.Zero_copy -> Host_local

let channel_bandwidth t = function
  | Same_memory -> infinity
  | Host_local -> t.copy.memcpy_bw
  | Cross_socket -> t.copy.cross_socket_bw
  | Pcie -> t.copy.pcie_bw
  | Gpu_peer -> t.copy.gpu_peer_bw
  | Network -> t.copy.net_bandwidth

let channel_latency t = function
  | Same_memory -> 0.0
  | Network -> t.copy.net_latency
  | Host_local | Cross_socket | Pcie | Gpu_peer -> t.copy.local_latency

let copy_cost t ~src ~dst ~bytes =
  let ch = channel_between t src dst in
  match ch with
  | Same_memory -> 0.0
  | Network -> (
      (* Cross-node transfers whose endpoint is a Frame-Buffer stage
         through the host over PCIe (no GPUDirect), one extra hop per
         FB endpoint — this is why Zero-Copy placement pays off for
         halo-exchanged collections. *)
      let fb_hops =
        (if src.mkind = Kinds.Frame_buffer then 1 else 0)
        + if dst.mkind = Kinds.Frame_buffer then 1 else 0
      in
      match t.topology with
      | Some topo
        when Topology.family topo <> Topology.Direct
             && Topology.distance topo ~src:src.mnode ~dst:dst.mnode >= 0 ->
          (* routed: sum per-link serialization along the deterministic
             path, plus the same PCIe staging (guarded so FB-free
             machines with pcie_bw = 0 stay finite).  The Direct family
             (and unreachable pairs on a Custom topology) fall through
             to the kind-level expression below, which Direct
             reproduces hop-for-hop — the bit-identity hinge of
             DESIGN.md §15. *)
          let acc =
            ref
              (if fb_hops = 0 then 0.0
               else
                 float_of_int fb_hops
                 *. (t.copy.local_latency +. (bytes /. t.copy.pcie_bw)))
          in
          Topology.route_iter topo ~src:src.mnode ~dst:dst.mnode ~f:(fun l ->
              acc := !acc +. (l.Topology.llat +. (bytes /. l.Topology.lbw)));
          !acc
      | _ ->
          channel_latency t ch
          +. (bytes /. channel_bandwidth t ch)
          +. (float_of_int fb_hops *. (t.copy.local_latency +. (bytes /. t.copy.pcie_bw))))
  | Host_local | Cross_socket | Pcie | Gpu_peer ->
      channel_latency t ch +. (bytes /. channel_bandwidth t ch)

let pp ppf t =
  Format.fprintf ppf
    "%s: %d node(s) x (%d sockets x %d cores, %d GPU(s); SYS %.0fGB/socket, ZC %.0fGB, FB %.0fGB/GPU)"
    t.name t.nodes t.node.sockets t.node.cores_per_socket t.node.gpus
    (t.node.sysmem_per_socket /. 1e9)
    (t.node.zc_capacity /. 1e9)
    (t.node.fb_capacity /. 1e9)
