(** Processor and memory kinds (§2 of the paper).

    The machine model distinguishes processor *kinds* (CPU, GPU) and
    memory *kinds* (System, Zero-Copy, Frame-Buffer).  AutoMap's
    factored search space (§3.2) operates on kinds only; the runtime
    logic (our simulator) later selects concrete devices of the chosen
    kind.  Addressability follows Figure 1: System memory is reachable
    only from CPUs, Frame-Buffer only from GPUs, and Zero-Copy (pinned
    host memory) from both. *)

type proc_kind = Cpu | Gpu

type mem_kind = System | Zero_copy | Frame_buffer

val all_proc_kinds : proc_kind list
val all_mem_kinds : mem_kind list

val accessible : proc_kind -> mem_kind -> bool
(** [accessible p m] is true iff a processor of kind [p] can address a
    memory of kind [m] directly (constraint (1) of §4.2 requires every
    collection argument to satisfy this). *)

val accessible_mem_kinds : proc_kind -> mem_kind list
(** Memory kinds addressable from a processor kind, fastest first
    (Frame-Buffer before Zero-Copy for GPUs, System before Zero-Copy
    for CPUs). *)

val rank_proc : proc_kind -> int
(** Dense index of a kind (Cpu = 0, Gpu = 1), for kind-indexed arrays. *)

val rank_mem : mem_kind -> int
(** Dense index (System = 0, Zero_copy = 1, Frame_buffer = 2). *)

val compare_proc : proc_kind -> proc_kind -> int
val compare_mem : mem_kind -> mem_kind -> int
val equal_proc : proc_kind -> proc_kind -> bool
val equal_mem : mem_kind -> mem_kind -> bool

val proc_kind_to_string : proc_kind -> string
val mem_kind_to_string : mem_kind -> string

val proc_kind_of_string : string -> proc_kind option
val mem_kind_of_string : string -> mem_kind option

val pp_proc : Format.formatter -> proc_kind -> unit
val pp_mem : Format.formatter -> mem_kind -> unit
