(** Machine model M (§2): a graph of processors and memories.

    Nodes of the graph are processors (with a kind) and memories (with
    a kind and a byte capacity).  Edges are (a) addressability edges
    between a processor and the memories it can reach and (b)
    communication channels between memories.  We build the graph from a
    compact per-node description (sockets, cores, GPUs, capacities) and
    a performance table; the channel structure — intra-node PCIe /
    peer-to-peer / memcpy paths, the cross-socket System-memory hop the
    paper highlights in §5 ("Stencil"), and the inter-node network — is
    derived from the topology.

    All byte quantities are [float] (sizes reach tens of GB), all times
    are seconds, bandwidths bytes/second, compute rates FLOP/s. *)

type processor = private {
  pid : int;          (** globally unique id *)
  pnode : int;        (** owning node *)
  psocket : int;      (** socket within node (GPUs: socket they hang off) *)
  pkind : Kinds.proc_kind;
  plocal : int;       (** index among same-kind processors of the node *)
}

type memory = private {
  mid : int;          (** globally unique id *)
  mnode : int;
  msocket : int;      (** for System memories; -1 when not socket-bound *)
  mkind : Kinds.mem_kind;
  capacity : float;   (** bytes *)
  mlocal : int;       (** index among same-kind memories of the node *)
}

(** Static description of one node of the cluster. *)
type node_desc = {
  sockets : int;
  cores_per_socket : int;  (** cores usable by the application *)
  gpus : int;
  sysmem_per_socket : float;
  zc_capacity : float;     (** pinned zero-copy pool (one per node) *)
  fb_capacity : float;     (** frame-buffer capacity per GPU *)
}

(** Effective streaming bandwidth a task observes against each
    addressable memory kind.  The FB ≫ ZC gap for GPUs is the central
    asymmetry of the mapping problem (§1). *)
type exec_bandwidth = {
  cpu_sys : float;
  cpu_zc : float;
  gpu_fb : float;
  gpu_zc : float;
}

(** Compute-side performance of each processor kind. *)
type compute_perf = {
  cpu_flops : float;           (** per core *)
  gpu_flops : float;           (** per device *)
  cpu_launch_overhead : float; (** per task instance, seconds *)
  gpu_launch_overhead : float; (** kernel-launch + runtime overhead *)
  runtime_dispatch : float;
      (** per-instance dependence-analysis/dispatch cost serialized on
          each node's runtime utility processor, *independent of the
          mapping* — the fixed runtime floor that bounds how much a
          better mapping can help at tiny inputs *)
}

(** Channel performance for explicit data movement (copies inserted
    when a producer's and a consumer's memories differ, §2). *)
type copy_perf = {
  memcpy_bw : float;        (** same-socket host-side copies *)
  cross_socket_bw : float;  (** SYS(socket 0) ↔ SYS(socket 1) *)
  pcie_bw : float;          (** host ↔ FB transfers *)
  gpu_peer_bw : float;      (** FB ↔ FB within a node *)
  local_latency : float;    (** per-copy fixed cost, intra-node *)
  net_bandwidth : float;    (** inter-node *)
  net_latency : float;
}

type t = private {
  name : string;
  nodes : int;
  node : node_desc;
  exec_bw : exec_bandwidth;
  compute : compute_perf;
  copy : copy_perf;
  processors : processor array;
  memories : memory array;
  topology : Topology.t option;
      (** explicit interconnect; [None] = kind-level network channel
          (all pre-topology presets), preserving their exact costs *)
}

val make :
  name:string ->
  nodes:int ->
  node:node_desc ->
  exec_bw:exec_bandwidth ->
  compute:compute_perf ->
  copy:copy_perf ->
  ?topology:Topology.t ->
  unit ->
  t
(** Builds the explicit graph.  Raises [Invalid_argument] if any count
    or rate is non-positive, or if [topology] disagrees with [nodes]
    on the node count. *)

(** {1 Graph queries} *)

val procs_of_kind_per_node : t -> Kinds.proc_kind -> int
(** How many processors of a kind each node offers (0 means the kind is
    absent and no task may be mapped to it). *)

val proc_kinds_available : t -> Kinds.proc_kind list

val proc : t -> node:int -> kind:Kinds.proc_kind -> local:int -> processor
(** The [local]-th processor of [kind] on [node]. *)

val addressable : t -> processor -> memory -> bool
(** Addressability edge: same node, kind-accessible, and — for System
    memory — same socket; for Frame-Buffer — the GPU's own device
    memory.  Zero-Copy is addressable by every processor of the node. *)

val closest_memory : t -> processor -> Kinds.mem_kind -> memory
(** The memory of the requested kind that is closest to the processor:
    its own FB for a GPU, its socket's System memory for a CPU, the
    node's ZC pool for either.  This is the deterministic runtime logic
    of §3.2 ("the mapper instantiates each collection in the memory of
    the desired kind that is closest to the selected processor").
    Raises [Invalid_argument] if the kind is not accessible from the
    processor's kind. *)

val mem_kind_capacity : t -> Kinds.mem_kind -> float
(** Capacity of one memory instance of the kind (used by search-side
    feasibility prechecks). *)

(** {1 Cost queries} *)

val launch_overhead : t -> Kinds.proc_kind -> float
val compute_rate : t -> Kinds.proc_kind -> float
val exec_bandwidth : t -> Kinds.proc_kind -> Kinds.mem_kind -> float

(** Classification of the channel a copy travels on.  The full
    classification table implemented by {!channel_between} (and pinned
    by the [machine] test suite):

    - same memory id → [Same_memory];
    - different nodes → [Network], whatever the endpoint kinds;
    - same node: FB↔FB → [Gpu_peer]; FB↔anything-else → [Pcie];
      SYS↔SYS → [Cross_socket] when the sockets differ, else
      [Host_local]; every pair involving ZC (ZC↔SYS either direction,
      ZC↔ZC) → [Host_local].

    Note [Cross_socket] is {e only} produced for SYS↔SYS pairs on
    different sockets: the Zero-Copy pool is node-wide
    ([msocket = -1]), so ZC-endpoint copies are socket-agnostic and
    always classify as [Host_local], never [Cross_socket]. *)
type channel =
  | Same_memory                 (** no copy needed *)
  | Host_local                  (** same-node host copy: same-socket
                                    SYS↔SYS, or any pair with a ZC
                                    endpoint (ZC is socket-agnostic) *)
  | Cross_socket                (** SYS↔SYS across sockets (only) *)
  | Pcie                        (** host ↔ FB *)
  | Gpu_peer                    (** FB ↔ FB same node *)
  | Network                     (** any cross-node pair *)

val channel_between : t -> memory -> memory -> channel

val copy_cost : t -> src:memory -> dst:memory -> bytes:float -> float
(** Seconds to move [bytes] from [src] to [dst]: 0 when [Same_memory],
    otherwise channel latency + bytes / channel bandwidth.  Network
    copies touching a Frame-Buffer additionally pay one PCIe staging
    hop per FB endpoint (no GPUDirect), which is what makes Zero-Copy
    placement attractive for cross-node-shared collections.  On a
    machine with a routed topology (other than the degenerate
    [Direct] family), a Network copy instead pays the sum of per-link
    latency + serialization along its deterministic route, plus the
    same PCIe staging — the uncontended total the simulator's
    link-FIFO model reduces to when no copies queue. *)

val channel_bandwidth : t -> channel -> float
(** Bandwidth of a channel class ([Same_memory] is [infinity]). *)

val pp : Format.formatter -> t -> unit
(** One-line summary (name, nodes, per-node inventory). *)
