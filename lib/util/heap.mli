(** Imperative binary min-heap keyed by float priority.

    This is the event queue of the discrete-event simulator: events are
    ordered by simulated timestamp, with a monotonically increasing
    sequence number breaking ties so that simultaneous events pop in
    insertion order (making simulations deterministic). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h priority v] inserts [v] with the given priority. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element, insertion order
    breaking ties. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
(** Empties the heap, keeping the backing array (so a reused heap does
    not regrow from scratch).  The sequence counter keeps running:
    entries pushed after [clear] still tie-break after anything pushed
    before it.  Cleared slots retain their old values until
    overwritten. *)

val reset : 'a t -> unit
(** {!clear} plus rewinding the insertion sequence to 0 — use when
    reusing a heap across independent simulations whose tie-breaking
    must not depend on earlier runs. *)
