type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }
let state t = t.state
let of_state s = { state = s }
let set_state t s = t.state <- s

(* SplitMix64 output function: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  (* Using the mixed output as the seed of the child stream keeps the
     two streams decorrelated even for adjacent parent states. *)
  { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value is a non-negative OCaml int (native ints
     are 63-bit).  Rejection-free modulo is fine here: n is always tiny
     (choice among kinds, techniques, tasks) relative to 2^62, so bias
     is negligible for our purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 random mantissa bits, scaled to [0, x). *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
  in
  draw ()

let lognormal t ~sigma = exp (sigma *. gaussian t)

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
