(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that
    every experiment is reproducible from a single integer seed.  The
    generator is SplitMix64 (Steele, Lea & Flood, OOPSLA '14): a tiny,
    statistically solid 64-bit generator whose state can be [split]
    into independent streams, which lets concurrent components (the
    search driver, the noise model of each simulated run, each search
    technique of the ensemble tuner) draw from disjoint streams without
    coordination. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original
    subsequently produce identical streams. *)

val state : t -> int64
(** Raw 64-bit state, for checkpointing.  [of_state (state t)] resumes
    the exact stream [t] would have produced. *)

val of_state : int64 -> t
(** Rebuild a generator from a checkpointed {!state}. *)

val set_state : t -> int64 -> unit
(** Overwrite the state in place (checkpoint restore). *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n-1].  [n] must be positive. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val lognormal : t -> sigma:float -> float
(** [lognormal t ~sigma] draws exp(sigma * N(0,1)) — the multiplicative
    noise factor used by the simulator's measurement-noise model.  Its
    median is 1.0. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
