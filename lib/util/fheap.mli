(** Monomorphic binary min-heap: float priority, int payload.

    The allocation-free event queue of the compiled simulator
    ({!Exec.simulate}).  Entries live in three parallel flat arrays
    (priority, insertion sequence, payload), so pushing and popping
    never allocates — unlike the polymorphic {!Heap}, which boxes an
    entry record per push.  Ties on priority pop in insertion order,
    exactly like {!Heap}, which is what makes a compiled simulation
    bit-identical to the legacy interpreter.

    The inspection API is split ([top_prio] / [top] / [drop]) instead
    of returning an option pair so the hot loop touches no boxed
    values. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 16) pre-sizes the backing arrays. *)

val length : t -> int
val is_empty : t -> bool

val push : t -> float -> int -> unit
(** [push h prio payload] inserts [payload] with priority [prio]. *)

val top_prio : t -> float
(** Priority of the minimum entry.  Undefined (reads stale storage)
    on an empty heap — guard with {!is_empty}. *)

val top : t -> int
(** Payload of the minimum entry.  Same caveat as {!top_prio}. *)

val drop : t -> unit
(** Removes the minimum entry.  No-op on an empty heap. *)

val reset : t -> unit
(** Empties the heap and rewinds the insertion sequence to 0, keeping
    the backing arrays — the per-simulation reset. *)

(** {1 Explicit insertion sequences}

    The incremental replay of {!Exec} reconstructs the event queue as
    it stood mid-simulation: pending events must re-enter the heap with
    the insertion sequence numbers the full run assigned them, so that
    every later priority tie breaks exactly as it would have. *)

val push_with_seq : t -> float -> int -> seq:int -> unit
(** [push_with_seq h prio payload ~seq] inserts with an explicit
    insertion sequence instead of the internal counter (which it does
    not advance — pair with {!set_next_seq}). *)

val set_next_seq : t -> int -> unit
(** Overrides the internal insertion counter subsequent {!push}es
    draw from. *)

val next_seq : t -> int
(** The sequence number the next {!push} would be assigned. *)
