type t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable payload : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  {
    prio = Array.make capacity 0.0;
    seq = Array.make capacity 0;
    payload = Array.make capacity 0;
    size = 0;
    next_seq = 0;
  }

let length h = h.size
let is_empty h = h.size = 0

(* strict ordering: priority, then insertion sequence (FIFO on ties) *)
let lt h i j =
  h.prio.(i) < h.prio.(j) || (h.prio.(i) = h.prio.(j) && h.seq.(i) < h.seq.(j))

let swap h i j =
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  let s = h.seq.(i) in
  h.seq.(i) <- h.seq.(j);
  h.seq.(j) <- s;
  let v = h.payload.(i) in
  h.payload.(i) <- h.payload.(j);
  h.payload.(j) <- v

let grow h =
  let cap = Array.length h.prio in
  if h.size = cap then begin
    let ncap = 2 * cap in
    let np = Array.make ncap 0.0 and ns = Array.make ncap 0 and nv = Array.make ncap 0 in
    Array.blit h.prio 0 np 0 h.size;
    Array.blit h.seq 0 ns 0 h.size;
    Array.blit h.payload 0 nv 0 h.size;
    h.prio <- np;
    h.seq <- ns;
    h.payload <- nv
  end

let sift_up h start =
  let i = ref start in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt h !i parent then begin
      swap h !i parent;
      i := parent
    end
    else continue := false
  done

let push_with_seq h prio payload ~seq =
  grow h;
  let i = h.size in
  h.prio.(i) <- prio;
  h.seq.(i) <- seq;
  h.payload.(i) <- payload;
  h.size <- h.size + 1;
  sift_up h i

let set_next_seq h seq = h.next_seq <- seq
let next_seq h = h.next_seq

let push h prio payload =
  grow h;
  let i = ref h.size in
  h.prio.(!i) <- prio;
  h.seq.(!i) <- h.next_seq;
  h.payload.(!i) <- payload;
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h !i

let top_prio h = h.prio.(0)
let top h = h.payload.(0)

let drop h =
  if h.size > 0 then begin
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.prio.(0) <- h.prio.(h.size);
      h.seq.(0) <- h.seq.(h.size);
      h.payload.(0) <- h.payload.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && lt h l !smallest then smallest := l;
        if r < h.size && lt h r !smallest then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end
  end

let reset h =
  h.size <- 0;
  h.next_seq <- 0
