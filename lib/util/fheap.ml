type t = {
  mutable prio : float array;
  mutable seq : int array;
  mutable payload : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  {
    prio = Array.make capacity 0.0;
    seq = Array.make capacity 0;
    payload = Array.make capacity 0;
    size = 0;
    next_seq = 0;
  }

let length h = h.size
let[@inline] is_empty h = h.size = 0

(* strict ordering: priority, then insertion sequence (FIFO on ties).
   The sift loops move the displaced element as a hole (read once,
   shift the path, write once) rather than swapping at every level —
   half the array traffic on the event loop's hottest inner loops. *)

let grow h =
  let cap = Array.length h.prio in
  if h.size = cap then begin
    let ncap = 2 * cap in
    let np = Array.make ncap 0.0 and ns = Array.make ncap 0 and nv = Array.make ncap 0 in
    Array.blit h.prio 0 np 0 h.size;
    Array.blit h.seq 0 ns 0 h.size;
    Array.blit h.payload 0 nv 0 h.size;
    h.prio <- np;
    h.seq <- ns;
    h.payload <- nv
  end

(* Unsafe indexing below: every index is either [start] (< size, by the
   callers) or a parent/child index derived from one, and the three
   arrays always share one capacity >= size. *)
let sift_up h start =
  let prio = h.prio and seq = h.seq and payload = h.payload in
  let p = Array.unsafe_get prio start
  and s = Array.unsafe_get seq start
  and v = Array.unsafe_get payload start in
  let i = ref start in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pp = Array.unsafe_get prio parent in
    if p < pp || (p = pp && s < Array.unsafe_get seq parent) then begin
      Array.unsafe_set prio !i pp;
      Array.unsafe_set seq !i (Array.unsafe_get seq parent);
      Array.unsafe_set payload !i (Array.unsafe_get payload parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set prio !i p;
  Array.unsafe_set seq !i s;
  Array.unsafe_set payload !i v

let[@inline] push_with_seq h prio payload ~seq =
  grow h;
  let i = h.size in
  h.prio.(i) <- prio;
  h.seq.(i) <- seq;
  h.payload.(i) <- payload;
  h.size <- h.size + 1;
  sift_up h i

let set_next_seq h seq = h.next_seq <- seq
let next_seq h = h.next_seq

(* [@inline] on the per-event entry points keeps float arguments and
   returns unboxed at native call sites — the event loop's no-allocation
   invariant (see Exec) depends on it. *)
let[@inline] push h prio payload =
  grow h;
  let i = h.size in
  h.prio.(i) <- prio;
  h.seq.(i) <- h.next_seq;
  h.payload.(i) <- payload;
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  sift_up h i

let[@inline] top_prio h = h.prio.(0)
let[@inline] top h = h.payload.(0)

let drop h =
  if h.size > 0 then begin
    h.size <- h.size - 1;
    let n = h.size in
    if n > 0 then begin
      let prio = h.prio and seq = h.seq and payload = h.payload in
      let p = Array.unsafe_get prio n
      and s = Array.unsafe_get seq n
      and v = Array.unsafe_get payload n in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= n then continue := false
        else begin
          let r = l + 1 in
          let pl = Array.unsafe_get prio l in
          let c =
            if
              r < n
              && (let pr = Array.unsafe_get prio r in
                  pr < pl
                  || (pr = pl && Array.unsafe_get seq r < Array.unsafe_get seq l))
            then r
            else l
          in
          let pc = Array.unsafe_get prio c in
          if pc < p || (pc = p && Array.unsafe_get seq c < s) then begin
            Array.unsafe_set prio !i pc;
            Array.unsafe_set seq !i (Array.unsafe_get seq c);
            Array.unsafe_set payload !i (Array.unsafe_get payload c);
            i := c
          end
          else continue := false
        end
      done;
      Array.unsafe_set prio !i p;
      Array.unsafe_set seq !i s;
      Array.unsafe_set payload !i v
    end
  end

let reset h =
  h.size <- 0;
  h.next_seq <- 0
