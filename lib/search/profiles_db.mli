(** Profiles database (Figure 4).

    The driver records every evaluated mapping together with its
    measured runtimes.  The database serves three purposes: (a) dedup —
    a mapping suggested again is answered from the database instead of
    re-executing the application (the gap between "suggested" and
    "evaluated" counts reported in §5.3); (b) ranking — the top-k
    mappings are re-measured at the end of the search; (c) provenance —
    the per-task profile of the best mapping feeds the task ordering of
    the next rotation. *)

type entry = {
  mapping : Mapping.t;
  runs : float list;    (** per-iteration times of each measured run *)
  perf : float;         (** mean of [runs] — the number the search compares *)
}

type t

val create : unit -> t

val find : t -> Mapping.t -> entry option

val record : t -> Mapping.t -> float list -> entry
(** Stores measurements for a mapping (replacing any previous entry)
    and returns the entry. *)

val find_key : t -> string -> entry option
(** {!find} for a caller that already computed
    {!Mapping.canonical_key} — the evaluator computes it once per
    evaluation and reuses it for the db, the partials table and batch
    rollback. *)

val record_key : t -> key:string -> Mapping.t -> float list -> entry
(** {!record} with a precomputed canonical key. *)

val remove_key : t -> string -> unit
(** Drops the entry for a canonical key (no-op when absent).  Batch
    evaluation uses this to unwind entries recorded by candidates a
    short-circuit proves the sequential protocol would never have
    evaluated. *)

val size : t -> int

val top : t -> int -> entry list
(** The [k] entries with the best (lowest) perf, best first. *)

val best : t -> entry option

(** {1 Persistence}

    The database serializes to a line-oriented text file (one mapping
    per line: canonical key followed by its measured runs), so a long
    offline search can be checkpointed and warm-started — re-suggested
    mappings are then answered from the reloaded measurements. *)

val save : t -> string
val load : Graph.t -> string -> (t, string) result
(** Keys that do not match [g] are rejected with an error, as is a
    key appearing on more than one line — a checkpoint written by
    {!save} never contains duplicates, so one signals a corrupted or
    hand-edited file whose measurements cannot be trusted. *)
