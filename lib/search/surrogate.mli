(** Online surrogate cost model: a feature-hashed linear regressor on
    log-makespan, trained from every exact evaluation the engine
    performs and used to pre-rank candidate batches by predicted
    makespan (ROADMAP item 3, following the graph-representation-
    learning mapping line of arXiv 2204.11981).

    The model is pure OCaml with no dependencies and a reused sparse
    scratch on the prediction path: features are hashed (FNV-1a) into a fixed
    [dims]-sized weight vector, updates are SGD with per-feature
    adaptive (AdaGrad-style) learning rates, and predictions are plain
    sparse dot products.  Features are computable from the mapping and
    graph alone — per-coordinate (task-kind, proc-kind) and
    (collection-kind, mem-kind) choices weighted by work/size, the
    analyzer domain sizes of the chosen coordinates, and the
    diff-vs-incumbent coordinates — never from simulation, so ranking a
    candidate costs microseconds where simulating it costs
    milliseconds.

    The surrogate only ever {e orders} candidates; every verdict the
    search acts on still comes from the exact evaluator.  Reranking a
    batch is therefore a quality heuristic, not an approximation: see
    {!Descent.next_batch} and DESIGN.md §12 for the exact guarantees
    (ranked-batch ≡ ranked-sequential bit-equality, and the
    never-worse-final-best golden gate for skim mode). *)

type t

val create : ?dims:int -> ?eta:float -> ?window:int -> ?skim:int -> Space.t -> t
(** A fresh model for the space's (graph, machine) pair, weights all
    zero.  [dims] (default 512) is the hashed feature-vector width,
    [eta] (default 0.3) the base learning rate, [window] (default 64)
    the size of the (predicted, actual) ring buffer behind
    {!spearman}.  [skim] (default [None]) caps ranked batches to the
    top-[skim] predicted candidates ({!Descent}); it is carried here so
    checkpoints preserve the decision-relevant configuration.
    @raise Invalid_argument if [dims < 8], [window < 2] or
    [skim <= 0]. *)

val skim : t -> int option

val skim_active : t -> int option
(** [skim], gated by warmup: [None] until the model has absorbed at
    least [2 * window] observations.  Skimming on an untrained model
    discards candidates essentially at random and can converge descent
    prematurely; ranked-but-full batches cost nothing extra, so early
    batches go unskimmed.  Deterministic in [trained], which
    checkpoints carry — resume skims exactly where the uninterrupted
    run would. *)

val graph : t -> Graph.t

val observe : t -> Mapping.t -> float -> unit
(** One SGD step toward [log perf]; non-finite or non-positive [perf]
    (penalty values) is recorded nowhere and changes nothing.  The
    engine calls this for every [Eval] event, so bounded evaluations
    train on their certified loser value — a lower bound, biased but
    ordered correctly against the incumbent (DESIGN.md §12). *)

val note_incumbent : t -> Mapping.t -> unit
(** The search's current incumbent — the reference point for the
    diff-vs-incumbent features of every subsequent prediction. *)

val predict : t -> Mapping.t -> float
(** Predicted log-makespan.  Deterministic in the model state; never
    simulates. *)

val rank : t -> Mapping.t array -> int array
(** A permutation of [0 .. n-1] ordering the candidates by ascending
    predicted makespan, ties broken by original index (stable).  Arrays
    of length [<= 1] are returned identity without counting a rerank. *)

val note_skips : t -> int -> unit
(** Record [n] candidates dropped by skim-mode batch truncation. *)

val trained : t -> int
val reranks : t -> int
val skips : t -> int

val spearman : t -> float
(** Spearman rank correlation between predicted and actual
    log-makespan over the observation window ([nan] until at least 8
    observations) — the online estimate of how trustworthy the ranking
    is. *)

val features : t -> Mapping.t -> (int * float) list
(** The hashed sparse feature vector, ascending index — exposed for the
    property tests (totality, stability); not part of the search
    path. *)

val save : t -> string list
(** Checkpoint lines: configuration header (fingerprint-guarded),
    counters, reference incumbent, non-zero weight entries and the
    observation window, floats in hex ([%h]) for bit-exact restore. *)

val restore : t -> string list -> (unit, string) result
(** Inverse of {!save} into a freshly {!create}d model.  Fails if the
    header disagrees with the model's configuration ([dims], [eta],
    [window], [skim], graph or machine) — restoring weights into a
    different schema would silently change every subsequent rank. *)
