(** Mapping evaluation service (EvaluateMapping, Algorithm 1 line 21,
    and the driver/mapper interaction of Figure 4).

    Each *evaluation* executes the application (our simulator) [runs]
    times with distinct noise seeds and averages the per-iteration
    times — the paper's protocol ("each mapping ran 7 times, and the
    average was used", §5).  Results are cached in the
    {!Profiles_db}: re-suggesting an already-measured mapping costs
    nothing, which is how CCD's 1941 suggestions collapse to ~460
    executions (§5.3).

    The evaluator also keeps the bookkeeping the experiments report:

    - [suggested] / [evaluated] / [cache_hits] / [invalid] / [oom]
      counters;
    - *virtual search time*: the simulated wall-clock the search would
      have spent — the sum of all executed runs' makespans plus a
      per-action overhead — used as the x-axis of Figure 9;
    - the best-so-far trace [(virtual time, best perf)].

    Invalid mappings (§4.2 constraint (1) violations, as a
    constraint-unaware tuner produces) are answered with [penalty]
    without executing.  OOM mappings cost one aborted run and are
    answered with [penalty] (the search "detects an out-of-memory
    error and moves on", §5.2).

    {!create} compiles the simulation problem once ({!Exec.compile})
    and every [evaluate] / [measure] / [profile_for] call reuses the
    compiled problem and one {!Exec.scratch} — candidate evaluation is
    the search's hot path.  A consequence: an evaluator must not be
    shared across domains; give each domain its own (see {!Parallel}). *)

type t

val create :
  ?runs:int ->
  ?noise_sigma:float ->
  ?fallback:bool ->
  ?iterations:int ->
  ?penalty:float ->
  ?seed:int ->
  ?eval_overhead:float ->
  ?objective:(Machine.t -> Exec.result -> float) ->
  ?extended:bool ->
  ?prune:bool ->
  ?incremental:bool ->
  ?domain_prune:bool ->
  ?symmetry:bool ->
  ?dominance:bool ->
  ?db:Profiles_db.t ->
  ?scratch:Exec.scratch ->
  Machine.t ->
  Graph.t ->
  t
(** Defaults: [runs] = 7, [noise_sigma] = 0.03, [fallback] = false,
    [penalty] = infinity, [seed] = 0, [eval_overhead] = 0.2 ms of
    virtual time per executed evaluation (relaunch cost, scaled to the
    simulator's compressed time base so the §5.3 useful-time fractions
    keep their relative magnitudes).
    [iterations] overrides the graph's iteration count during search
    evaluations (searches often run a truncated workload).
    [objective] maps a simulated run to the scalar the search
    minimizes; the default is per-iteration execution time, and
    {!Energy.joules_per_iteration} makes the same search stack optimize
    power consumption (§3.3).  [extended] (default false) opens the
    distribution-strategy dimension (see {!Space.make}).
    [prune] (default true) enables bound-and-prune evaluation: when
    {!evaluate} is given a finite [?bound], losing candidates are
    aborted as early as the partial mean proves they cannot win (see
    {!evaluate}).  Pruning never changes a search decision; disable it
    only to measure its effect.
    [incremental] (default true) enables {!Exec}'s incremental
    re-simulation (committed timelines + dirty-cone replay) on the
    evaluator's scratch.  Replay is bit-identical to full simulation,
    so decisions never change; disable it only for debugging or to
    measure its effect.
    [symmetry] (default false) activates orbit canonicalization on the
    evaluator's {!Space} (canonical random samples; the engine's
    seen-set uses {!Space.canonicalize} to skip symmetric duplicates,
    counted by {!symmetry_skips}).  [dominance] (default false)
    additionally prunes dominated values from the space's choice lists
    ({!Analysis.compute_dominance}); it requires [domain_prune] and is
    ignored under [fallback], whose demotions invalidate the
    certificates.  Both flags are part of {!fingerprint}: unlike the
    surrogate, they change the decision stream, so a resume must use
    the same settings as the checkpointing run.

    Seeding uses common random numbers: run [k] of every evaluation
    draws seed [seed * 1_000_003 + k], so all candidates face the same
    [runs] noise streams (paired comparisons), and Exec's per-seed
    noise/timeline caches hit across the whole search.

    [scratch] supplies a pre-built {!Exec.scratch} instead of compiling
    a fresh one — {!Parallel} compiles the problem once and gives each
    domain's portfolio members one shared scratch (members on a domain
    run sequentially, so sharing is safe and lets bind/noise/timeline
    caches hit across members).  The scratch must come from
    [Exec.compile machine graph] for the same (machine, graph) pair. *)

val machine : t -> Machine.t
val graph : t -> Graph.t
val space : t -> Space.t
val db : t -> Profiles_db.t

val evaluate : ?bound:float -> t -> Mapping.t -> float
(** Average objective value of the mapping (cached), or [penalty]
    for invalid/OOM mappings.

    [?bound] is the caller's incumbent value: a candidate is useful to
    the caller only if its final mean objective is strictly below it.
    With pruning enabled and the default objective, run [i] of the §5
    protocol gets the clock cutoff [(runs * bound - sum_so_far) *
    iterations] ({!Exec.simulate_bounded}): run times are nonnegative,
    so once the partial sum alone pushes the final mean to [bound] the
    remaining runs are aborted and [max penalty bound] — a certified
    loser value — is returned.  This is *decision-exact*: the
    accept/reject sequence, the RNG stream (the per-candidate seed
    budget is consumed even when runs are skipped), the profiles
    database contents and the best-mapping trace are identical to the
    unpruned search, provided [bound] is at least the best perf this
    evaluator has seen (true for an incumbent/Metropolis threshold).
    A cut candidate is remembered as a partial evaluation: if it is
    ever re-suggested with a bound below its proven lower bound, the
    protocol resumes with the originally assigned seeds and reproduces
    the unpruned measurements bit-for-bit.  Without [?bound] (or with
    [~prune:false], a non-default objective, or an infinite bound) the
    behaviour is the exact legacy protocol. *)

type outcome =
  | Evaluated of float  (** the value {!evaluate} would have returned *)
  | Skipped
      (** short-circuited: an earlier-index candidate beat the bound,
          so a sequential caller stopping at its first acceptance would
          never have evaluated this one *)

val evaluate_batch :
  ?bound:float -> ?overhead:float -> t -> Mapping.t array -> outcome array
(** Evaluate a set of candidates against one fixed [bound], equivalent
    to the sequential loop

    {[for i = 0 to n-1 do
        let v = evaluate ?bound t cands.(i) in
        if overhead > 0.0 then note_suggestion_overhead t overhead;
        if v < Option.value bound ~default:infinity then stop
      done]}

    (with [overhead] charged before each evaluated candidate's clock
    charge) — every counter, clock value, db entry, partial, best and
    trace line is bit-identical to that loop, which is the contract
    {!Search} strategies rely on when they hand the engine whole
    neighbour sets.  Note the loop stops at the {e first} candidate
    strictly beating [bound]: batching is only decision-identical for
    callers whose acceptance test is exactly [value < bound]
    (first-improvement descent; see {!Search.Engine}).

    With [?bound] the loop above stops at the first acceptance, so
    original index order is the {e unique} sim-optimal evaluation
    order — any candidate evaluated out of turn past the eventual
    improver is work the sequential protocol never performs.  The
    bounded path therefore runs the sequential loop literally, with an
    early exit and no allocation beyond the outcome array; what
    batching buys is the amortized scratch setup, the one shared
    incumbent rebind, and the per-batch short-circuit accounting.

    Without [?bound] no short-circuit applies and every candidate is
    evaluated, so the evaluation order is free: candidates evaluate in
    ascending diff distance from the pinned replay anchor (the last
    {!note_incumbent} mapping, else the last bound mapping),
    maximizing Exec's placement-patch and cone-replay reuse.  The sort
    is stable on the original index, so duplicates keep their relative
    order (earlier evaluates, later cache-hits, as sequentially), and
    per-candidate clock charges and best-notes are journaled and
    replayed in original index order afterwards. *)

val batch_calls : t -> int
(** Number of {!evaluate_batch} invocations. *)

val batch_short_circuits : t -> int
(** Batches in which at least one candidate was skipped because an
    earlier-index candidate beat the bound. *)

val note_suggestion_overhead : t -> float -> unit
(** Charge extra virtual time attributed to the search algorithm
    itself (the ensemble tuner's proposal machinery, §5.3's
    13–45 %-useful-time observation). *)

val best : t -> (Mapping.t * float) option

val trace : t -> (float * float) list
(** Improvement trace: (virtual search time, new best perf), oldest
    first. *)

val virtual_time : t -> float
val suggested : t -> int
val evaluated : t -> int
val cache_hits : t -> int
val invalid_count : t -> int
val oom_count : t -> int

val cut_evals : t -> int
(** Evaluations answered by pruning (the candidate was certified a
    loser before completing its run protocol).  A later resume that
    completes the protocol additionally counts in [evaluated]. *)

val cut_runs : t -> int
(** Protocol runs skipped outright thanks to pruning (the aborted run
    itself counts in [cut_sims], not here); decremented when a resume
    later executes them. *)

val cut_sims : t -> int
(** Simulations aborted by the clock cutoff. *)

val noop_skips : t -> int
(** No-op neighbours the search skipped (see {!note_noop_neighbor}). *)

val dead_coord_skips : t -> int
(** Coordinate values the searches never suggested because the
    analyzer-computed domains exclude them (see
    {!note_dead_coords}). *)

val note_dead_coords : t -> int -> unit
(** Record that a search skipped [n] domain-excluded candidate
    values without suggesting them. *)

val note_noop_neighbor : t -> unit
(** Record that a search skipped a candidate identical to its
    incumbent without suggesting it. *)

val symmetry_skips : t -> int
(** Candidates the engine rejected from its canonical seen-set — a
    symmetric twin had already been evaluated and its recorded value
    certifies rejection — without evaluating
    (see {!note_symmetry_skip}). *)

val note_symmetry_skip : t -> unit
(** Record that the engine skipped a candidate whose orbit-canonical
    representative was already evaluated. *)

val note_incumbent : t -> Mapping.t -> unit
(** Tell the evaluator which mapping the search currently holds as its
    incumbent ({!Exec.prefer_timeline}): its committed timelines are
    kept pinned so every neighbour candidate replays against a schedule
    at most a couple of coordinates away.  Purely a performance hint —
    never changes any evaluation result. *)

val note_result_cache_hit : t -> unit
(** The serve daemon answered a request from its result memo without
    simulating — counted here so {!stats} carries cache telemetry. *)

val note_warm_start : t -> unit
(** This evaluator's search was seeded from a memoized incumbent of an
    earlier request (same machine and graph, different search config). *)

val note_cache_state : t ->
  hits:int -> misses:int -> evictions:int -> resident_bytes:int -> unit
(** Overwrite the compile-cache counters with the server's global LRU
    statistics before reading {!stats}.  Telemetry only — never
    serialized by {!save_state}, never decision-relevant. *)

val attach_surrogate : t -> Surrogate.t -> unit
(** Register the search's surrogate model so {!stats} reports its
    counters (trained observations, reranks, skim skips, rank
    correlation).  Telemetry only: the evaluator never consults the
    model — training is the engine's, ranking the strategies'. *)

type stats = {
  s_suggested : int;
  s_evaluated : int;
  s_cache_hits : int;
  s_invalid : int;
  s_oom : int;
  s_cut_evals : int;
  s_cut_runs : int;
  s_cut_sims : int;
  s_noop_skips : int;
  s_dead_coord_skips : int;
  s_symmetry_skips : int;        (** {!symmetry_skips} *)
  s_batch_calls : int;           (** {!batch_calls} *)
  s_batch_short_circuits : int;  (** {!batch_short_circuits} *)
  s_compile_cache_hits : int;
      (** compiled-problem reuses: 1 when this evaluator was created
          with [?scratch], plus any server compile-cache hits noted via
          {!note_cache_state} *)
  s_compile_cache_misses : int;  (** fresh {!Exec.compile} invocations *)
  s_result_cache_hits : int;
      (** requests answered from the server's result memo without any
          simulation ({!note_result_cache_hit}) *)
  s_warm_starts : int;
      (** searches seeded from a memoized incumbent ({!note_warm_start}) *)
  s_cache_evictions : int;       (** server LRU evictions *)
  s_cache_resident_bytes : int;  (** server cache footprint, bytes *)
  s_delta_binds : int;  (** {!Exec.delta_binds} of the evaluator's scratch *)
  s_full_binds : int;   (** {!Exec.full_binds} of the evaluator's scratch *)
  s_bind_hits_shared : int;
      (** {!Exec.bind_cache_hits} shared-label hits (portfolio members
          reusing a sibling's bind) *)
  s_bind_hits_private : int;  (** {!Exec.bind_cache_hits} private hits *)
  s_cone_replays : int;   (** {!Exec.cone_replays} *)
  s_cone_instances : int; (** {!Exec.cone_instances} *)
  s_full_replays : int;   (** {!Exec.full_replays} *)
  s_timeline_bytes : int; (** {!Exec.timeline_bytes} *)
  s_surrogate_trained : int;  (** {!Surrogate.trained} (0 when none attached) *)
  s_surrogate_reranks : int;  (** {!Surrogate.reranks} *)
  s_surrogate_skips : int;    (** {!Surrogate.skips} *)
  s_spearman : float;  (** {!Surrogate.spearman} ([nan] when none attached) *)
}
(** One-shot snapshot of every counter, for benches and tests. *)

val stats : t -> stats

val eval_time : t -> float
(** Virtual time spent actually executing candidates (for the
    useful-time fraction of §5.3). *)

val fingerprint : t -> string
(** One-line digest of the decision-relevant configuration (machine,
    graph, runs, noise, fallback, iterations, penalty, overhead, prune
    flag, CRN seed base).  A checkpoint written by one evaluator may
    only be restored into an evaluator with an equal fingerprint —
    anything else would silently change the decision sequence.
    Incremental replay and domain pruning are deliberately excluded:
    both are proven decision-neutral. *)

val save_state : t -> string list
(** Serialize the evaluator's mutable search state — counters, virtual
    and eval clocks, [measure] seed counter, best-so-far, improvement
    trace, and the partial-evaluation table — as text lines with
    hex-float ([%h]) exactness.  The profiles database is {e not}
    included; checkpoint it alongside with {!Profiles_db.save}.
    Restoring these lines (plus the database) into a fresh evaluator
    with the same {!fingerprint} makes every subsequent evaluation,
    budget test, and [measure] draw bit-identical to the uninterrupted
    run: cache answers come from the database, cut candidates resume
    from the partials table with their original seeds, and the virtual
    clock continues from the exact same value. *)

val restore_state : t -> string list -> (unit, string) result
(** Inverse of {!save_state}.  Overwrites the evaluator's mutable state;
    the caller is responsible for having checked {!fingerprint} equality
    and for loading the saved profiles database into [~db] at
    {!create} time.  Exec's per-seed noise/timeline caches are rebuilt
    lazily — they are bit-exact performance state, not decisions. *)

val measure : t -> ?runs:int -> ?iterations:int -> Mapping.t -> float list
(** Per-iteration *times* of [runs] executions, outside the search
    bookkeeping — for baseline comparisons.  Raises [Failure] on
    invalid/OOM mappings. *)

val measure_objective : t -> ?runs:int -> Mapping.t -> float list
(** Like {!measure} but returns the evaluator's objective values —
    what the final top-5 × 30 re-evaluation ranks by. *)

val profile_for : t -> Mapping.t -> Profile.t
(** Noise-free per-task profile under a mapping (task ordering for
    CD/CCD); falls back to the uniform profile if the mapping cannot
    run. *)
