(** Mapping evaluation service (EvaluateMapping, Algorithm 1 line 21,
    and the driver/mapper interaction of Figure 4).

    Each *evaluation* executes the application (our simulator) [runs]
    times with distinct noise seeds and averages the per-iteration
    times — the paper's protocol ("each mapping ran 7 times, and the
    average was used", §5).  Results are cached in the
    {!Profiles_db}: re-suggesting an already-measured mapping costs
    nothing, which is how CCD's 1941 suggestions collapse to ~460
    executions (§5.3).

    The evaluator also keeps the bookkeeping the experiments report:

    - [suggested] / [evaluated] / [cache_hits] / [invalid] / [oom]
      counters;
    - *virtual search time*: the simulated wall-clock the search would
      have spent — the sum of all executed runs' makespans plus a
      per-action overhead — used as the x-axis of Figure 9;
    - the best-so-far trace [(virtual time, best perf)].

    Invalid mappings (§4.2 constraint (1) violations, as a
    constraint-unaware tuner produces) are answered with [penalty]
    without executing.  OOM mappings cost one aborted run and are
    answered with [penalty] (the search "detects an out-of-memory
    error and moves on", §5.2).

    {!create} compiles the simulation problem once ({!Exec.compile})
    and every [evaluate] / [measure] / [profile_for] call reuses the
    compiled problem and one {!Exec.scratch} — candidate evaluation is
    the search's hot path.  A consequence: an evaluator must not be
    shared across domains; give each domain its own (see {!Parallel}). *)

type t

val create :
  ?runs:int ->
  ?noise_sigma:float ->
  ?fallback:bool ->
  ?iterations:int ->
  ?penalty:float ->
  ?seed:int ->
  ?eval_overhead:float ->
  ?objective:(Machine.t -> Exec.result -> float) ->
  ?extended:bool ->
  ?db:Profiles_db.t ->
  Machine.t ->
  Graph.t ->
  t
(** Defaults: [runs] = 7, [noise_sigma] = 0.03, [fallback] = false,
    [penalty] = infinity, [seed] = 0, [eval_overhead] = 0.2 ms of
    virtual time per executed evaluation (relaunch cost, scaled to the
    simulator's compressed time base so the §5.3 useful-time fractions
    keep their relative magnitudes).
    [iterations] overrides the graph's iteration count during search
    evaluations (searches often run a truncated workload).
    [objective] maps a simulated run to the scalar the search
    minimizes; the default is per-iteration execution time, and
    {!Energy.joules_per_iteration} makes the same search stack optimize
    power consumption (§3.3).  [extended] (default false) opens the
    distribution-strategy dimension (see {!Space.make}). *)

val machine : t -> Machine.t
val graph : t -> Graph.t
val space : t -> Space.t
val db : t -> Profiles_db.t

val evaluate : t -> Mapping.t -> float
(** Average objective value of the mapping (cached), or [penalty]
    for invalid/OOM mappings. *)

val note_suggestion_overhead : t -> float -> unit
(** Charge extra virtual time attributed to the search algorithm
    itself (the ensemble tuner's proposal machinery, §5.3's
    13–45 %-useful-time observation). *)

val best : t -> (Mapping.t * float) option

val trace : t -> (float * float) list
(** Improvement trace: (virtual search time, new best perf), oldest
    first. *)

val virtual_time : t -> float
val suggested : t -> int
val evaluated : t -> int
val cache_hits : t -> int
val invalid_count : t -> int
val oom_count : t -> int

val eval_time : t -> float
(** Virtual time spent actually executing candidates (for the
    useful-time fraction of §5.3). *)

val measure : t -> ?runs:int -> ?iterations:int -> Mapping.t -> float list
(** Per-iteration *times* of [runs] executions, outside the search
    bookkeeping — for baseline comparisons.  Raises [Failure] on
    invalid/OOM mappings. *)

val measure_objective : t -> ?runs:int -> Mapping.t -> float list
(** Like {!measure} but returns the evaluator's objective values —
    what the final top-5 × 30 re-evaluation ranks by. *)

val profile_for : t -> Mapping.t -> Profile.t
(** Noise-free per-task profile under a mapping (task ordering for
    CD/CCD); falls back to the uniform profile if the mapping cannot
    run. *)
