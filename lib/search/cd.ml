(* Coordinate descent as an Engine strategy: one Descent sweep over the
   start point's profile, accepting strict improvements.  The legacy
   self-contained loop moved verbatim into the engine protocol: the
   start evaluation, incumbent pinning and budget test are the engine's;
   the candidate order and bounds are the cursor's. *)

type state = {
  ev : Evaluator.t;
  batch : bool;  (* emit whole neighbour sets via Propose_batch *)
  min_batch : int;  (* rounds smaller than this run sequentially *)
  surrogate : Surrogate.t option;  (* ranked batches (see Descent) *)
  mutable incumbent : (Mapping.t * float) option;
  mutable sweep : Descent.t option;
}

let encode_state st =
  [
    (match st.incumbent with
    | None -> "incumbent none"
    | Some (m, p) -> "incumbent " ^ Codec.incumbent_line m p);
    (match st.sweep with None -> "sweep none" | Some c -> Descent.encode c);
  ]

let strategy_of st =
  {
    Engine.name = "cd";
    init = (fun ip -> st.incumbent <- Some ip);
    step =
      (fun _ctx ->
        match st.incumbent with
        | None -> Engine.Stop
        | Some (f, p) -> (
            let cur =
              match st.sweep with
              | Some c -> c
              | None ->
                  (* task order from the start point's noise-free
                     profile, as the legacy loop computed it *)
                  let c =
                    Descent.start ?surrogate:st.surrogate st.ev ~overlap:None
                      ~profile:(Evaluator.profile_for st.ev f)
                  in
                  st.sweep <- Some c;
                  c
            in
            if st.batch then begin
              match Descent.next_gated cur ~incumbent:f ~min_batch:st.min_batch with
              | `Done -> Engine.Stop
              | `Batch cands ->
                  Engine.Propose_batch (cands, { Engine.bound = Some p; overhead = 0.0 })
              | `Seq cand ->
                  Engine.Propose (cand, { Engine.bound = Some p; overhead = 0.0 })
            end
            else
              match Descent.next cur ~incumbent:f with
              | Some cand ->
                  Engine.Propose (cand, { Engine.bound = Some p; overhead = 0.0 })
              | None -> Engine.Stop));
    receive =
      (fun m perf ->
        (* batched rounds consume per verdict (plain: specs; ranked:
           the queued candidate), gated sequential rounds consumed at
           proposal time — [deliver_verdict] dispatches *)
        if st.batch then
          (match st.sweep with
          | Some c -> Descent.deliver_verdict c
          | None -> ());
        match st.incumbent with
        | Some (_, p) when perf < p ->
            st.incumbent <- Some (m, perf);
            if st.surrogate <> None then
              (match st.sweep with Some c -> Descent.abandon c | None -> ());
            true
        | _ -> false);
    encode = (fun () -> encode_state st);
  }

let make ?(batch = false) ?(min_batch = 1) ?surrogate ev =
  strategy_of { ev; batch; min_batch; surrogate; incumbent = None; sweep = None }

let decode ?(batch = false) ?(min_batch = 1) ?surrogate ev lines =
  let g = Evaluator.graph ev in
  match lines with
  | [ inc; sweep ] -> (
      let st = { ev; batch; min_batch; surrogate; incumbent = None; sweep = None } in
      let ( let* ) = Result.bind in
      let* () =
        if inc = "incumbent none" then Ok ()
        else
          match String.index_opt inc ' ' with
          | Some i when String.sub inc 0 i = "incumbent" ->
              let* mp =
                Codec.parse_incumbent g
                  (String.sub inc (i + 1) (String.length inc - i - 1))
              in
              st.incumbent <- Some mp;
              Evaluator.note_incumbent ev (fst mp);
              Ok ()
          | _ -> Error "Cd.decode: bad incumbent line"
      in
      let* () =
        if sweep = "sweep none" then Ok ()
        else
          let* c = Descent.decode ?surrogate ev ~overlap:None sweep in
          st.sweep <- Some c;
          Ok ()
      in
      Ok (strategy_of st))
  | _ -> Error "Cd.decode: expected 2 lines"

let search ?batch ?min_batch ?surrogate ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let o =
    Engine.run ?surrogate ~budget:(Budget.of_virtual budget) ~start:f0 ev
      (make ?batch ?min_batch ?surrogate ev)
  in
  (o.Engine.best, o.Engine.perf)
