let search ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  Evaluator.note_incumbent ev f0;
  let should_stop () = Evaluator.virtual_time ev > budget in
  let profile = Evaluator.profile_for ev f0 in
  Descent.sweep ev ~overlap:None ~should_stop ~profile (f0, p0)
