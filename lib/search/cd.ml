(* Coordinate descent as an Engine strategy: one Descent sweep over the
   start point's profile, accepting strict improvements.  The legacy
   self-contained loop moved verbatim into the engine protocol: the
   start evaluation, incumbent pinning and budget test are the engine's;
   the candidate order and bounds are the cursor's. *)

type state = {
  ev : Evaluator.t;
  batch : bool;  (* emit whole neighbour sets via Propose_batch *)
  surrogate : Surrogate.t option;  (* ranked batches (see Descent) *)
  mutable incumbent : (Mapping.t * float) option;
  mutable sweep : Descent.t option;
}

let encode_state st =
  [
    (match st.incumbent with
    | None -> "incumbent none"
    | Some (m, p) -> "incumbent " ^ Codec.incumbent_line m p);
    (match st.sweep with None -> "sweep none" | Some c -> Descent.encode c);
  ]

let strategy_of st =
  {
    Engine.name = "cd";
    init = (fun ip -> st.incumbent <- Some ip);
    step =
      (fun _ctx ->
        match st.incumbent with
        | None -> Engine.Stop
        | Some (f, p) -> (
            let cur =
              match st.sweep with
              | Some c -> c
              | None ->
                  (* task order from the start point's noise-free
                     profile, as the legacy loop computed it *)
                  let c =
                    Descent.start ?surrogate:st.surrogate st.ev ~overlap:None
                      ~profile:(Evaluator.profile_for st.ev f)
                  in
                  st.sweep <- Some c;
                  c
            in
            if st.batch then begin
              let cands = Descent.next_batch cur ~incumbent:f in
              if Array.length cands = 0 then Engine.Stop
              else Engine.Propose_batch (cands, { Engine.bound = Some p; overhead = 0.0 })
            end
            else
              match Descent.next cur ~incumbent:f with
              | Some cand ->
                  Engine.Propose (cand, { Engine.bound = Some p; overhead = 0.0 })
              | None -> Engine.Stop));
    receive =
      (fun m perf ->
        (* ranked batches consume their specs at build time; each
           verdict drains one queued candidate instead, so a
           budget-truncated batch leaves exactly the undelivered
           remainder for the checkpoint *)
        if st.batch then
          (match (st.sweep, st.surrogate) with
          | Some c, None -> Descent.deliver c
          | Some c, Some _ -> Descent.deliver_ranked c
          | None, _ -> ());
        match st.incumbent with
        | Some (_, p) when perf < p ->
            st.incumbent <- Some (m, perf);
            if st.surrogate <> None then
              (match st.sweep with Some c -> Descent.abandon c | None -> ());
            true
        | _ -> false);
    encode = (fun () -> encode_state st);
  }

let make ?(batch = false) ?surrogate ev =
  strategy_of { ev; batch; surrogate; incumbent = None; sweep = None }

let decode ?(batch = false) ?surrogate ev lines =
  let g = Evaluator.graph ev in
  match lines with
  | [ inc; sweep ] -> (
      let st = { ev; batch; surrogate; incumbent = None; sweep = None } in
      let ( let* ) = Result.bind in
      let* () =
        if inc = "incumbent none" then Ok ()
        else
          match String.index_opt inc ' ' with
          | Some i when String.sub inc 0 i = "incumbent" ->
              let* mp =
                Codec.parse_incumbent g
                  (String.sub inc (i + 1) (String.length inc - i - 1))
              in
              st.incumbent <- Some mp;
              Evaluator.note_incumbent ev (fst mp);
              Ok ()
          | _ -> Error "Cd.decode: bad incumbent line"
      in
      let* () =
        if sweep = "sweep none" then Ok ()
        else
          let* c = Descent.decode ?surrogate ev ~overlap:None sweep in
          st.sweep <- Some c;
          Ok ()
      in
      Ok (strategy_of st))
  | _ -> Error "Cd.decode: expected 2 lines"

let search ?batch ?surrogate ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let o =
    Engine.run ?surrogate ~budget:(Budget.of_virtual budget) ~start:f0 ev
      (make ?batch ?surrogate ev)
  in
  (o.Engine.best, o.Engine.perf)
