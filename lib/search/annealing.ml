(* Constraint-repairing single-coordinate mutation: unlike the
   ensemble's unconstrained mutation, the result is always valid. *)
let mutate_valid g space rng parent =
  let dims = Array.of_list (Space.dims space) in
  match Rng.choose rng dims with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid
        (match Mapping.strategy_of parent tid with
        | Mapping.Blocked -> Mapping.Cyclic
        | Mapping.Cyclic -> Mapping.Blocked)
  | Space.Processor tid ->
      let choices = Space.proc_choices space tid in
      let k = Rng.choose_list rng choices in
      let m = Mapping.set_proc parent tid k in
      (* repair arguments that the new kind cannot address *)
      List.fold_left
        (fun acc (c : Graph.collection) ->
          if Kinds.accessible k (Mapping.mem_of acc c.cid) then acc
          else
            match Kinds.accessible_mem_kinds k with
            | mk :: _ -> Mapping.set_mem acc c.cid mk
            | [] -> acc)
        m (Graph.task g tid).args
  | Space.Memory cid ->
      let owner = (Graph.collection g cid).owner in
      let k = Mapping.proc_of parent owner in
      Mapping.set_mem parent cid
        (Rng.choose_list rng (Space.mem_choices_for space ~cid k))

type state = {
  ev : Evaluator.t;
  max_evals : int;
  t0 : float;
  cooling : float;
  rng : Rng.t;
  mutable current : (Mapping.t * float) option;
  mutable p0 : float;  (* the start point's perf scales the temperature *)
  mutable temp : float;
  mutable evals : int;
  mutable threshold : float;  (* acceptance threshold of the pending proposal *)
}

let strategy_of st =
  let g = Evaluator.graph st.ev in
  let space = Evaluator.space st.ev in
  {
    Engine.name = "annealing";
    init =
      (fun (f0, p0) ->
        st.current <- Some (f0, p0);
        st.p0 <- p0);
    step =
      (fun _ctx ->
        match st.current with
        | None -> Engine.Stop
        | Some (cur, pcur) ->
            if st.evals >= st.max_evals then Engine.Stop
            else begin
              st.evals <- st.evals + 1;
              let candidate = mutate_valid g space st.rng cur in
              (* Draw the acceptance variate *before* evaluating and fold
                 the Metropolis test into a closed-form threshold: accept
                 iff perf < pcur + p0·T·(−ln u), which is "u < exp(−Δ/T)"
                 solved for perf.  The threshold is known up front, so it
                 doubles as an exact pruning bound — a candidate cut at it
                 could be neither accepted nor a new best
                 (threshold >= pcur >= best). *)
              let u = Rng.float st.rng 1.0 in
              st.threshold <-
                (if u <= 0.0 then infinity
                 else
                   let bump = st.p0 *. Float.max st.temp 1e-9 *. -.log u in
                   if Float.is_finite bump then pcur +. bump else infinity);
              Engine.Propose
                (candidate, { Engine.bound = Some st.threshold; overhead = 0.0 })
            end);
    receive =
      (fun m perf ->
        let accepted = perf < st.threshold in
        if accepted then st.current <- Some (m, perf);
        st.temp <- st.temp *. st.cooling;
        accepted);
    encode =
      (fun () ->
        let fl = Codec.hex_of_float in
        [
          Printf.sprintf "anneal %d %d %s %s %s %s %Ld" st.max_evals st.evals
            (fl st.t0) (fl st.cooling) (fl st.temp) (fl st.p0)
            (Rng.state st.rng);
          (match st.current with
          | None -> "current none"
          | Some (m, p) -> "current " ^ Codec.incumbent_line m p);
        ]);
  }

let make ?(seed = 11) ?(max_evals = 2000) ?(t0 = 0.3) ?(cooling = 0.995) ev =
  strategy_of
    {
      ev;
      max_evals;
      t0;
      cooling;
      rng = Rng.create seed;
      current = None;
      p0 = nan;
      temp = t0;
      evals = 0;
      threshold = nan;
    }

let decode ev lines =
  let g = Evaluator.graph ev in
  match lines with
  | [ head; cur ] -> (
      let ( let* ) = Result.bind in
      let* st =
        match String.split_on_char ' ' head |> List.filter (( <> ) "") with
        | [ "anneal"; max_evals; evals; t0; cooling; temp; p0; rng ] -> (
            match
              ( int_of_string_opt max_evals,
                int_of_string_opt evals,
                Codec.float_of_hex t0,
                Codec.float_of_hex cooling,
                Codec.float_of_hex temp,
                Codec.float_of_hex p0,
                Int64.of_string_opt rng )
            with
            | Some max_evals, Some evals, Some t0, Some cooling, Some temp, Some p0,
              Some rng ->
                Ok
                  {
                    ev;
                    max_evals;
                    t0;
                    cooling;
                    rng = Rng.of_state rng;
                    current = None;
                    p0;
                    temp;
                    evals;
                    threshold = nan;
                  }
            | _ -> Error "Annealing.decode: bad anneal fields")
        | _ -> Error "Annealing.decode: bad anneal line"
      in
      let* () =
        match String.index_opt cur ' ' with
        | Some i when String.sub cur 0 i = "current" ->
            let* mp =
              Codec.parse_incumbent g (String.sub cur (i + 1) (String.length cur - i - 1))
            in
            st.current <- Some mp;
            Evaluator.note_incumbent ev (fst mp);
            Ok ()
        | _ -> Error "Annealing.decode: bad current line"
      in
      Ok (strategy_of st))
  | _ -> Error "Annealing.decode: expected 2 lines"

let search ?(seed = 11) ?(max_evals = 2000) ?(t0 = 0.3) ?(cooling = 0.995) ?start
    ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let o =
    Engine.run ~budget:(Budget.of_virtual budget) ~start:f0 ev
      (make ~seed ~max_evals ~t0 ~cooling ev)
  in
  (o.Engine.best, o.Engine.perf)
