(* Constraint-repairing single-coordinate mutation: unlike the
   ensemble's unconstrained mutation, the result is always valid. *)
let mutate_valid g space rng parent =
  let dims = Array.of_list (Space.dims space) in
  match Rng.choose rng dims with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid
        (match Mapping.strategy_of parent tid with
        | Mapping.Blocked -> Mapping.Cyclic
        | Mapping.Cyclic -> Mapping.Blocked)
  | Space.Processor tid ->
      let choices = Space.proc_choices space tid in
      let k = Rng.choose_list rng choices in
      let m = Mapping.set_proc parent tid k in
      (* repair arguments that the new kind cannot address *)
      List.fold_left
        (fun acc (c : Graph.collection) ->
          if Kinds.accessible k (Mapping.mem_of acc c.cid) then acc
          else
            match Kinds.accessible_mem_kinds k with
            | mk :: _ -> Mapping.set_mem acc c.cid mk
            | [] -> acc)
        m (Graph.task g tid).args
  | Space.Memory cid ->
      let owner = (Graph.collection g cid).owner in
      let k = Mapping.proc_of parent owner in
      Mapping.set_mem parent cid
        (Rng.choose_list rng (Space.mem_choices_for space ~cid k))

let search ?(seed = 11) ?(max_evals = 2000) ?(t0 = 0.3) ?(cooling = 0.995) ?start
    ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let rng = Rng.create seed in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  Evaluator.note_incumbent ev f0;
  let current = ref (f0, p0) in
  let best = ref (f0, p0) in
  let temp = ref t0 in
  let evals = ref 0 in
  while !evals < max_evals && Evaluator.virtual_time ev <= budget do
    incr evals;
    let candidate = mutate_valid g space rng (fst !current) in
    (* Draw the acceptance variate *before* evaluating and fold the
       Metropolis test into a closed-form threshold: accept iff
       perf < pcur + p0·T·(−ln u), which is "u < exp(−Δ/T)" solved for
       perf.  The threshold is known up front, so it doubles as an
       exact pruning bound — a candidate cut at it could be neither
       accepted nor a new best (threshold >= pcur >= best). *)
    let u = Rng.float rng 1.0 in
    let _, pcur = !current in
    let threshold =
      if u <= 0.0 then infinity
      else
        let bump = p0 *. Float.max !temp 1e-9 *. -.log u in
        if Float.is_finite bump then pcur +. bump else infinity
    in
    let perf = Evaluator.evaluate ~bound:threshold ev candidate in
    if perf < threshold then begin
      Evaluator.note_incumbent ev candidate;
      current := (candidate, perf)
    end;
    if perf < snd !best then best := (candidate, perf);
    temp := !temp *. cooling
  done;
  !best
