(** Coordinate-wise descent (§4.1).

    One pass of OptimizeTask over every task — equivalent to the final
    (fully pruned) rotation of CCD — starting from the §4.1 starting
    point: group tasks distributed, GPU-capable tasks on GPUs,
    collections in the fastest memory of the chosen kind.  Runtime is
    linear in tasks × collections. *)

val make :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  Engine.strategy
(** CD as an engine strategy (name ["cd"]).  [batch] (default false)
    emits each task's whole neighbour set as one {!Engine.Propose_batch}
    — decision-identical to sequential proposals (CD's acceptance test
    is exactly [perf < incumbent], the batch contract) but faster:
    {!Evaluator.evaluate_batch} orders evaluations for cache locality
    and skips candidates past the first improvement.  [min_batch]
    (default 1: always batch) gates each round through
    {!Descent.next_gated}: rounds below the threshold are proposed
    sequentially, past the amortization point as batches — still
    decision-identical for any value.

    [surrogate] runs the sweep cursor in ranked mode: each task's batch
    is permuted best-predicted-first (and skimmed to the top-K when the
    model carries a skim setting) — see {!Descent.start}.  Pass the
    same model to {!Engine.run} so it trains from the evaluations. *)

val decode :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  string list ->
  (Engine.strategy, string) result
(** Rebuild a checkpointed CD strategy from its {!Engine.strategy.encode}
    lines; re-pins the restored incumbent.  Checkpoints carry no batch
    flag (batching is decision-neutral, and so is the [min_batch]
    gate); pass [batch]/[min_batch] to resume in (gated) batch mode
    and [surrogate] (restored from the checkpoint's surrogate section)
    to resume ranked mode decision-identically. *)

val search :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  ?start:Mapping.t ->
  ?budget:float ->
  Evaluator.t ->
  Mapping.t * float
(** Returns the best mapping found and its measured performance.
    [budget] bounds the evaluator's virtual search time (default
    unlimited).  Convenience wrapper over {!Engine.run} with {!make}. *)
