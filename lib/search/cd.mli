(** Coordinate-wise descent (§4.1).

    One pass of OptimizeTask over every task — equivalent to the final
    (fully pruned) rotation of CCD — starting from the §4.1 starting
    point: group tasks distributed, GPU-capable tasks on GPUs,
    collections in the fastest memory of the chosen kind.  Runtime is
    linear in tasks × collections. *)

val make : Evaluator.t -> Engine.strategy
(** CD as an engine strategy (name ["cd"]). *)

val decode : Evaluator.t -> string list -> (Engine.strategy, string) result
(** Rebuild a checkpointed CD strategy from its {!Engine.strategy.encode}
    lines; re-pins the restored incumbent. *)

val search :
  ?start:Mapping.t ->
  ?budget:float ->
  Evaluator.t ->
  Mapping.t * float
(** Returns the best mapping found and its measured performance.
    [budget] bounds the evaluator's virtual search time (default
    unlimited).  Convenience wrapper over {!Engine.run} with {!make}. *)
