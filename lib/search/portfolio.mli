(** Algorithm portfolio over one shared evaluator.

    §4 presents the search algorithm as a pluggable component; the
    portfolio runs several of them back to back against the *same*
    evaluator, so the shared profiles database deduplicates across
    algorithms (a mapping CCD measured is answered from cache when
    annealing later re-proposes it) and the best-so-far mapping of one
    algorithm seeds the next.  Each member gets an equal share of the
    virtual-time budget. *)

type member = Ccd of int | Cd | Annealing | Random

val default_members : member list
(** [Ccd 5; Annealing; Random] — a coordinated searcher plus two
    stochastic escapers. *)

val member_name : member -> string

val member_to_string : member -> string
(** Checkpoint-stable spelling (["ccd:5"], ["cd"], …). *)

val member_of_string : string -> member option

val make :
  ?members:member list ->
  ?budget:float ->
  ?seed:int ->
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  Engine.strategy
(** The portfolio as a meta-strategy (name ["portfolio"]): members run
    sequentially, each seeded with the best-so-far (proposed as a
    normal trial — a cache hit) and cut at an absolute virtual-time
    deadline of [budget / n_members] past its entry.  Member
    transitions surface as {!Engine.Phase} events.  [batch] (default
    false) runs CD/CCD members through {!Engine.Propose_batch}
    ([min_batch], default 1, gates sub-threshold rounds back to
    sequential proposals — see {!Descent.next_gated}), and
    [surrogate] additionally ranks their batches (see {!Cd.make}) —
    the one model is shared across members, so annealing/random
    evaluations train the ranker the descent members use.
    @raise Invalid_argument on an empty member list. *)

val decode :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  string list ->
  (Engine.strategy, string) result
(** Rebuild a checkpointed portfolio, including the active member's own
    nested strategy state; [batch]/[min_batch]/[surrogate] apply to
    the restored CD/CCD members exactly as in {!make}. *)

val search :
  ?members:member list ->
  ?budget:float ->
  ?seed:int ->
  Evaluator.t ->
  Mapping.t * float
(** Returns the best mapping any member found.  With an infinite
    budget each member simply runs to its own completion. *)
