(** Domains-based parallel search driver.

    {!Portfolio} members (and ensemble restarts generally) are
    independent searches with independent seeds, so they parallelize
    trivially: each worker domain gets its own {!Evaluator} (the
    compiled problem, profiles database and RNG streams are all
    per-evaluator state), jobs are dealt from an atomic counter, and
    results are merged deterministically — output order is input
    order and ties on performance resolve to the earliest member.

    Running with [domains = 1] executes the identical jobs inline, so
    parallel and sequential runs return the same results bit-for-bit
    (test/test_compile.ml enforces this). *)

val map : ?domains:int -> (unit -> 'a) list -> 'a list
(** [map ~domains jobs] runs the thunks across [domains] worker
    domains (including the calling one) and returns their results in
    input order.  [domains] defaults to
    [min 4 (Domain.recommended_domain_count ())], capped at the number
    of jobs; [1] runs everything inline.  Jobs must not share mutable
    state.  The first job exception (if any) is re-raised after all
    domains are joined.
    @raise Invalid_argument if [domains < 1]. *)

(** Outcome of one independent member search. *)
type member_result = {
  member : string;     (** {!Portfolio.member_name} *)
  mapping : Mapping.t;
  perf : float;
  evaluated : int;     (** executed evaluations of that member's evaluator *)
  suggested : int;
  steps : int;         (** {!Engine} strategy steps taken by that member *)
}

val run_members :
  ?domains:int ->
  ?members:Portfolio.member list ->
  ?budget:float ->
  ?seed:int ->
  ?runs:int ->
  ?noise_sigma:float ->
  ?iterations:int ->
  ?batch:bool ->
  ?share_bound:bool ->
  Machine.t ->
  Graph.t ->
  member_result list
(** Runs every member as an independent search from
    {!Mapping.default_start} with its own evaluator, in parallel, and
    returns the outcomes in member order.  [budget] (default
    [infinity]) is each member's own virtual-time budget — unlike
    {!Portfolio.search}, members do not share a budget or warm-start
    each other, which is what makes them embarrassingly parallel.
    [seed] (default 0) derives a distinct evaluator noise stream per
    member; [runs] / [noise_sigma] / [iterations] are passed to each
    {!Evaluator.create}.

    The simulation problem is compiled once and shared; each domain
    builds one {!Exec.scratch} that all its members reuse (members on a
    domain run sequentially), so bind/noise/timeline caches hit across
    members — decision-neutral, results still match fully-private
    evaluators bit-for-bit.  [batch] (default false) runs CD/CCD
    members with {!Engine.Propose_batch} neighbour sets (also
    decision-neutral, see {!Cd.make}).  [share_bound] (default false)
    publishes each member's best perf to an atomic cell and tightens
    every plain proposal's pruning bound with the global best —
    cross-member pruning that can only convert certain-rejections into
    cheaper ones, but whose exact cut set depends on cross-domain
    timing: enable it for throughput, not for reproducible decision
    sequences.
    @raise Invalid_argument if [members] is empty. *)

val best : member_result list -> member_result
(** Minimum-perf result; ties break to the earliest member, so the
    merge is deterministic regardless of completion order.
    @raise Invalid_argument on the empty list. *)

val search :
  ?domains:int ->
  ?members:Portfolio.member list ->
  ?budget:float ->
  ?seed:int ->
  ?runs:int ->
  ?noise_sigma:float ->
  ?iterations:int ->
  ?batch:bool ->
  ?share_bound:bool ->
  Machine.t ->
  Graph.t ->
  Mapping.t * float
(** [run_members] followed by {!best}: the parallel portfolio. *)
