(** The coordinate-descent sweep shared by CD and CCD — OptimizeTask
    over every task, longest-running first (Algorithm 1 lines 6,
    10–19) — expressed as a resumable cursor for {!Engine}.

    A cursor enumerates, task by task, the same candidate coordinates
    the legacy loops tested: first the distribution setting, then
    jointly the processor kind and, per collection argument in
    decreasing size order, the memory kind.  Each candidate is
    materialized against the caller's {e current} incumbent only when
    {!next} is called, so an accept in between changes subsequent
    candidates exactly as the in-place legacy loops did.  When an
    overlap graph is supplied (CCD), every candidate is repaired into
    co-location-satisfying form by Algorithm 2 before being returned;
    plain CD yields the raw candidate (Algorithm 1 "excluding
    line 17").

    The cursor also owns the sweep's bookkeeping side effects:
    analyzer-dead coordinates are counted ({!Evaluator.note_dead_coords})
    when a task is entered, and candidates equal to the incumbent after
    repair are counted ({!Evaluator.note_noop_neighbor}) and skipped
    rather than returned. *)

type t

val start : Evaluator.t -> overlap:Overlap.t option -> profile:Profile.t -> t
(** Fresh sweep: task order is fixed now from [profile]
    (runtime-descending), candidates are generated lazily. *)

val next : t -> incumbent:Mapping.t -> Mapping.t option
(** The next candidate to evaluate, built from [incumbent]; [None] when
    the sweep is complete.  Advancing may consume no-op specs (counted)
    and enter new tasks (dead-coordinate accounting). *)

val encode : t -> string
(** Checkpoint line: task order + position.  Candidate specs are
    re-derived from the space on {!decode}, so the line stays small. *)

val decode : Evaluator.t -> overlap:Overlap.t option -> string -> (t, string) result
(** Rebuild a cursor mid-sweep.  Entry accounting for the current task
    is {e not} redone — the restored evaluator counters already include
    it. *)
