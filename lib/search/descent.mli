(** The coordinate-descent sweep shared by CD and CCD — OptimizeTask
    over every task, longest-running first (Algorithm 1 lines 6,
    10–19) — expressed as a resumable cursor for {!Engine}.

    A cursor enumerates, task by task, the same candidate coordinates
    the legacy loops tested: first the distribution setting, then
    jointly the processor kind and, per collection argument in
    decreasing size order, the memory kind.  Each candidate is
    materialized against the caller's {e current} incumbent only when
    {!next} is called, so an accept in between changes subsequent
    candidates exactly as the in-place legacy loops did.  When an
    overlap graph is supplied (CCD), every candidate is repaired into
    co-location-satisfying form by Algorithm 2 before being returned;
    plain CD yields the raw candidate (Algorithm 1 "excluding
    line 17").

    The cursor also owns the sweep's bookkeeping side effects:
    analyzer-dead coordinates are counted ({!Evaluator.note_dead_coords})
    when a task is entered, and candidates equal to the incumbent after
    repair are counted ({!Evaluator.note_noop_neighbor}) and skipped
    rather than returned. *)

type t

val start : Evaluator.t -> overlap:Overlap.t option -> profile:Profile.t -> t
(** Fresh sweep: task order is fixed now from [profile]
    (runtime-descending), candidates are generated lazily. *)

val next : t -> incumbent:Mapping.t -> Mapping.t option
(** The next candidate to evaluate, built from [incumbent]; [None] when
    the sweep is complete.  Advancing may consume no-op specs (counted)
    and enter new tasks (dead-coordinate accounting). *)

val next_batch : t -> incumbent:Mapping.t -> Mapping.t array
(** Batch mode: the current task's remaining (non-no-op) candidates,
    all built against [incumbent], {e without} consuming their specs —
    leading no-ops and task-entry accounting are settled eagerly, gap
    and trailing no-ops are not counted yet.  Empty iff the sweep is
    complete.  Each candidate's verdict must be acknowledged with
    {!deliver}; candidates past the last delivered one are forgotten
    (the next call rebuilds them against the then-current incumbent),
    which is exactly the state a sequential {!next} caller that stopped
    at the same point would be in. *)

val deliver : t -> unit
(** Acknowledge the verdict of the next outstanding batch candidate:
    consumes its spec plus the gap no-ops before it (counted now —
    same totals as {!next}, which counts them on its way to the
    candidate).  @raise Invalid_argument with no outstanding batch. *)

val encode : t -> string
(** Checkpoint line: task order + position.  Candidate specs are
    re-derived from the space on {!decode}, so the line stays small. *)

val decode : Evaluator.t -> overlap:Overlap.t option -> string -> (t, string) result
(** Rebuild a cursor mid-sweep.  Entry accounting for the current task
    is {e not} redone — the restored evaluator counters already include
    it. *)
