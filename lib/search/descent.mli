(** The coordinate-descent sweep shared by CD and CCD — OptimizeTask
    over every task, longest-running first (Algorithm 1 lines 6,
    10–19) — expressed as a resumable cursor for {!Engine}.

    A cursor enumerates, task by task, the same candidate coordinates
    the legacy loops tested: first the distribution setting, then
    jointly the processor kind and, per collection argument in
    decreasing size order, the memory kind.  Each candidate is
    materialized against the caller's {e current} incumbent only when
    {!next} is called, so an accept in between changes subsequent
    candidates exactly as the in-place legacy loops did.  When an
    overlap graph is supplied (CCD), every candidate is repaired into
    co-location-satisfying form by Algorithm 2 before being returned;
    plain CD yields the raw candidate (Algorithm 1 "excluding
    line 17").

    The cursor also owns the sweep's bookkeeping side effects:
    analyzer-dead coordinates are counted ({!Evaluator.note_dead_coords})
    when a task is entered, and candidates equal to the incumbent after
    repair are counted ({!Evaluator.note_noop_neighbor}) and skipped
    rather than returned. *)

type t

val start :
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  overlap:Overlap.t option ->
  profile:Profile.t ->
  t
(** Fresh sweep: task order is fixed now from [profile]
    (runtime-descending), candidates are generated lazily.

    With [surrogate] the cursor runs in {e ranked mode}: {!next_batch}
    returns the whole current task's candidates permuted
    best-predicted-first by {!Surrogate.rank} (truncated to the top-K
    when the surrogate carries a skim setting, dropped candidates
    counted as surrogate skips), and the task's specs are consumed
    atomically at build time — {!deliver} must {e not} be called.
    {!next} proposes the same ranked order one candidate at a time
    from an internal queue ({!abandon} drops it on an accept), so
    ranked-batched and ranked-sequential drives are bit-identical.
    The queue {e is} serialized by {!encode}: the permutation depends
    on the model weights as they stood before the batch trained on its
    own results, so it cannot be re-derived at decode time — carrying
    it makes resume exact even when the engine truncated a ranked
    batch at the trial budget. *)

val next : t -> incumbent:Mapping.t -> Mapping.t option
(** The next candidate to evaluate, built from [incumbent]; [None] when
    the sweep is complete.  Advancing may consume no-op specs (counted)
    and enter new tasks (dead-coordinate accounting). *)

val next_batch : t -> incumbent:Mapping.t -> Mapping.t array
(** Batch mode: the current task's remaining (non-no-op) candidates,
    all built against [incumbent], {e without} consuming their specs —
    leading no-ops and task-entry accounting are settled eagerly, gap
    and trailing no-ops are not counted yet.  Empty iff the sweep is
    complete.  Each candidate's verdict must be acknowledged with
    {!deliver}; candidates past the last delivered one are forgotten
    (the next call rebuilds them against the then-current incumbent),
    which is exactly the state a sequential {!next} caller that stopped
    at the same point would be in.  In ranked mode (see {!start}) the
    contract changes: the array is the whole task permuted by predicted
    makespan, its specs are already consumed, and each verdict is
    acknowledged with {!deliver_ranked} instead — a resumed cursor
    holding an undelivered remainder returns it verbatim, in its
    original model order. *)

val default_min_batch : int
(** Default minimum round size below which {!next_gated} prefers the
    sequential drive — BENCH_searchrate.json showed sub-this-size
    batches losing to sequential evaluation (geomean 0.981 at smoke
    sizes), so batching only engages past the amortization point. *)

val next_gated :
  t ->
  incumbent:Mapping.t ->
  min_batch:int ->
  [ `Done | `Batch of Mapping.t array | `Seq of Mapping.t ]
(** Size-gated proposal round: [`Batch] with the same array
    {!next_batch} would return when it holds at least [min_batch]
    candidates, [`Seq] with one candidate at a time (the same
    candidates in the same order) below the gate, [`Done] when the
    sweep is complete.  Every verdict — batched or sequential — is
    acknowledged with {!deliver_verdict}.  Decision-identical to both
    {!next_batch} and the sequential drive for any [min_batch]: the
    gate only switches between two representations that are themselves
    bit-identical, and it is re-decided each round from checkpointed
    cursor state, so resumed runs reproduce it.  [min_batch <= 1]
    always batches; [max_int] never does. *)

val deliver_verdict : t -> unit
(** Acknowledge one verdict after a {!next_gated} round: dispatches to
    {!deliver} (plain) or {!deliver_ranked} (ranked) for batched
    rounds, and is a no-op for gated sequential rounds, whose
    candidates were already consumed at proposal time. *)

val deliver : t -> unit
(** Acknowledge the verdict of the next outstanding batch candidate:
    consumes its spec plus the gap no-ops before it (counted now —
    same totals as {!next}, which counts them on its way to the
    candidate).  Plain batch mode only.
    @raise Invalid_argument with no outstanding batch. *)

val deliver_ranked : t -> unit
(** Ranked batch mode: acknowledge one verdict by draining the queued
    candidate it belongs to, so a budget-truncated batch leaves exactly
    the undelivered remainder in the (serialized) queue.
    @raise Invalid_argument with no outstanding ranked candidate. *)

val abandon : t -> unit
(** Ranked mode, on an accept: drop the rest of the current ranked
    batch — those candidates were built against the replaced incumbent.
    No-op in plain mode and after batched delivery. *)

val encode : t -> string
(** Checkpoint line: task order + position.  Candidate specs are
    re-derived from the space on {!decode}, so the line stays small. *)

val decode :
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  overlap:Overlap.t option ->
  string ->
  (t, string) result
(** Rebuild a cursor mid-sweep.  Entry accounting for the current task
    is {e not} redone — the restored evaluator counters already include
    it.  [surrogate] resumes the cursor in ranked mode (the caller
    restores the model itself from the checkpoint's surrogate
    section). *)
