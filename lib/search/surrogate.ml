(* Feature-hashed linear regression on log-makespan, trained online
   from the engine's exact evaluations (DESIGN.md §12).

   Everything is derived from the mapping and the graph — never from a
   simulation — so a prediction costs a few hundred integer hashes and
   float multiplies.  The feature schema (stable, versioned by the
   save-format header):

     bias                                            value 1
     (task kind, proc kind)                          value work share
     (task kind, distribution × strategy)            value work share
     (task kind, proc kind) × proc-domain size       value log2 |domain|
     (collection kind, mem kind)                     value size share
     (collection kind, mem kind) × mem-domain size   value log2 |domain|
     task kind differs from incumbent                value 1
     collection kind differs from incumbent          value 1
     diff cardinality vs incumbent                   value |diff|

   "Kind" is the task/collection *name* (every shard of a group task
   shares one coordinate already), so same-named coordinates share
   weights — the generalization that lets ~100 observations order a
   128-bit space.  Work/size shares are log-scaled, max-normalized and
   floored at 1/8 so every coordinate keeps a live gradient.  Indices
   are FNV-1a hashes folded into [dims] buckets; collisions just share
   a weight (standard hashing-trick behaviour, harmless for ranking).

   Updates are SGD with AdaGrad-style per-feature step sizes on the
   clipped residual in log space; bounded evaluations train on their
   certified loser value (a lower bound — see the .mli).  The
   (predicted, actual) ring buffer behind [spearman] is telemetry
   only: it never influences a rank. *)

type t = {
  graph : Graph.t;
  dims : int;
  eta : float;
  window : int;
  skim : int option;
  gid : int;  (* fnv1a of graph name, for the save-format header *)
  mid : int;  (* fnv1a of machine name *)
  w : float array;   (* dims weights *)
  g2 : float array;  (* dims squared-gradient accumulators *)
  (* per-coordinate constants, precomputed at create *)
  task_h : int array;
  col_h : int array;
  task_wt : float array;
  col_wt : float array;
  task_dom : float array;
  col_dom : float array;
  (* sparse feature scratch *)
  fx : float array;     (* dims *)
  touched : int array;
  mutable n_touched : int;
  mutable reference : Mapping.t option;
  (* counters *)
  mutable trained : int;
  mutable reranks : int;
  mutable skips : int;
  (* (predicted, actual) ring buffer for the rank-correlation window *)
  win_pred : float array;
  win_act : float array;
  mutable win_n : int;
  mutable win_i : int;
}

let mask = 0x3FFFFFFF

let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land mask) s;
  !h

let mix h k = (((h lxor (k * 0x9E3779B1)) + 0x85EBCA6B) * 0x01000193) land mask

let create ?(dims = 512) ?(eta = 0.3) ?(window = 64) ?skim space =
  if dims < 8 then invalid_arg "Surrogate.create: dims must be at least 8";
  if window < 2 then invalid_arg "Surrogate.create: window must be at least 2";
  (match skim with
  | Some k when k <= 0 -> invalid_arg "Surrogate.create: skim must be positive"
  | _ -> ());
  let g = Space.graph space in
  let machine = Space.machine space in
  let n_tasks = Graph.n_tasks g and n_cols = Graph.n_collections g in
  let task_h = Array.make n_tasks 0 and col_h = Array.make (max 1 n_cols) 0 in
  let task_wt = Array.make n_tasks 0.0 and col_wt = Array.make (max 1 n_cols) 0.0 in
  let task_dom = Array.make n_tasks 0.0 and col_dom = Array.make (max 1 n_cols) 0.0 in
  Array.iter
    (fun (task : Graph.task) ->
      task_h.(task.tid) <- fnv1a task.tname;
      task_wt.(task.tid) <- log1p (task.flops *. float_of_int task.group_size);
      task_dom.(task.tid) <-
        log (1.0 +. float_of_int (List.length (Space.proc_choices space task.tid)));
      List.iter
        (fun (c : Graph.collection) ->
          col_h.(c.cid) <- fnv1a (task.tname ^ "." ^ c.cname);
          col_wt.(c.cid) <- log1p (c.bytes *. float_of_int task.group_size);
          let dom =
            List.fold_left
              (fun acc k ->
                max acc (List.length (Space.mem_choices_for space ~cid:c.cid k)))
              0
              (Space.proc_choices space task.tid)
          in
          col_dom.(c.cid) <- log (1.0 +. float_of_int dom))
        task.args)
    g.Graph.tasks;
  (* max-normalize the work/size shares, floored so every coordinate
     keeps a live gradient *)
  let norm a =
    let m = Array.fold_left max 0.0 a in
    Array.iteri (fun i v -> a.(i) <- 0.125 +. (if m > 0.0 then v /. m else 0.0)) a
  in
  norm task_wt;
  norm col_wt;
  {
    graph = g;
    dims;
    eta;
    window;
    skim;
    gid = fnv1a g.Graph.gname;
    mid = fnv1a machine.Machine.name;
    w = Array.make dims 0.0;
    g2 = Array.make dims 0.0;
    task_h;
    col_h;
    task_wt;
    col_wt;
    task_dom;
    col_dom;
    fx = Array.make dims 0.0;
    touched = Array.make (2 + (4 * n_tasks) + (3 * max 1 n_cols)) 0;
    n_touched = 0;
    reference = None;
    trained = 0;
    reranks = 0;
    skips = 0;
    win_pred = Array.make window 0.0;
    win_act = Array.make window 0.0;
    win_n = 0;
    win_i = 0;
  }

let skim t = t.skim

(* skim only once the model has seen enough exact results to order
   candidates better than chance; 2×window observations also fills the
   correlation telemetry twice over.  [trained] rides in checkpoints,
   so a resumed run crosses the threshold at the same trial. *)
let skim_active t =
  match t.skim with
  | Some _ when t.trained >= 2 * t.window -> t.skim
  | _ -> None

let graph t = t.graph
let trained t = t.trained
let reranks t = t.reranks
let skips t = t.skips
let note_incumbent t m = t.reference <- Some m
let note_skips t n = if n > 0 then t.skips <- t.skips + n

(* ---- feature extraction ------------------------------------------------- *)

let clear t =
  for i = 0 to t.n_touched - 1 do
    t.fx.(t.touched.(i)) <- 0.0
  done;
  t.n_touched <- 0

let add t h v =
  let idx = h mod t.dims in
  if t.fx.(idx) = 0.0 then begin
    t.touched.(t.n_touched) <- idx;
    t.n_touched <- t.n_touched + 1
  end;
  t.fx.(idx) <- t.fx.(idx) +. v

let extract t m =
  clear t;
  add t 0x811C9DC5 1.0;
  for tid = 0 to Array.length t.task_h - 1 do
    let th = t.task_h.(tid) in
    let p = Kinds.rank_proc (Mapping.proc_of m tid) in
    let d =
      (if Mapping.distribute_of m tid then 2 else 0)
      + (match Mapping.strategy_of m tid with Mapping.Blocked -> 0 | Mapping.Cyclic -> 1)
    in
    add t (mix (mix th 1) p) t.task_wt.(tid);
    add t (mix (mix th 2) d) t.task_wt.(tid);
    add t (mix (mix th 3) p) t.task_dom.(tid)
  done;
  for cid = 0 to Graph.n_collections t.graph - 1 do
    let ch = t.col_h.(cid) in
    let r = Kinds.rank_mem (Mapping.mem_of m cid) in
    add t (mix (mix ch 4) r) t.col_wt.(cid);
    add t (mix (mix ch 5) r) t.col_dom.(cid)
  done;
  match t.reference with
  | None -> ()
  | Some incumbent ->
      let tids, cids = Mapping.diff incumbent m in
      List.iter (fun tid -> add t (mix t.task_h.(tid) 6) 1.0) tids;
      List.iter (fun cid -> add t (mix t.col_h.(cid) 7) 1.0) cids;
      let n = List.length tids + List.length cids in
      if n > 0 then add t (mix 0x2545F491 8) (float_of_int n)

let dot t =
  let acc = ref 0.0 in
  for i = 0 to t.n_touched - 1 do
    let idx = t.touched.(i) in
    acc := !acc +. (t.w.(idx) *. t.fx.(idx))
  done;
  !acc

let predict t m =
  extract t m;
  dot t

let features t m =
  extract t m;
  let l = ref [] in
  for i = 0 to t.n_touched - 1 do
    let idx = t.touched.(i) in
    l := (idx, t.fx.(idx)) :: !l
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !l

(* ---- training ----------------------------------------------------------- *)

let observe t m perf =
  if Float.is_finite perf && perf > 0.0 then begin
    extract t m;
    let pred = dot t in
    let y = log perf in
    let err = pred -. y in
    let err = if err > 10.0 then 10.0 else if err < -10.0 then -10.0 else err in
    for i = 0 to t.n_touched - 1 do
      let idx = t.touched.(i) in
      let gr = err *. t.fx.(idx) in
      t.g2.(idx) <- t.g2.(idx) +. (gr *. gr);
      t.w.(idx) <- t.w.(idx) -. (t.eta *. gr /. sqrt (1.0 +. t.g2.(idx)))
    done;
    t.trained <- t.trained + 1;
    t.win_pred.(t.win_i) <- pred;
    t.win_act.(t.win_i) <- y;
    t.win_i <- (t.win_i + 1) mod t.window;
    if t.win_n < t.window then t.win_n <- t.win_n + 1
  end

(* ---- ranking ------------------------------------------------------------ *)

let rank t cands =
  let n = Array.length cands in
  let perm = Array.init n (fun i -> i) in
  if n > 1 then begin
    let preds = Array.map (fun m -> predict t m) cands in
    Array.sort
      (fun a b ->
        let c = compare preds.(a) preds.(b) in
        if c <> 0 then c else compare a b)
      perm;
    t.reranks <- t.reranks + 1
  end;
  perm

(* ---- rank correlation --------------------------------------------------- *)

let spearman t =
  let n = t.win_n in
  if n < 8 then Float.nan
  else begin
    (* Pearson correlation of the rank sequences (ties keep insertion
       order — fine for a telemetry estimate) *)
    let slot j = (t.win_i - n + j + (2 * t.window)) mod t.window in
    let ranks_of arr =
      let idx = Array.init n (fun j -> j) in
      Array.sort
        (fun a b ->
          let c = compare arr.(slot a) arr.(slot b) in
          if c <> 0 then c else compare a b)
        idx;
      let r = Array.make n 0.0 in
      Array.iteri (fun pos j -> r.(j) <- float_of_int pos) idx;
      r
    in
    let rp = ranks_of t.win_pred and ra = ranks_of t.win_act in
    let mean = (float_of_int n -. 1.0) /. 2.0 in
    let num = ref 0.0 and dp = ref 0.0 and da = ref 0.0 in
    for j = 0 to n - 1 do
      let x = rp.(j) -. mean and y = ra.(j) -. mean in
      num := !num +. (x *. y);
      dp := !dp +. (x *. x);
      da := !da +. (y *. y)
    done;
    if !dp = 0.0 || !da = 0.0 then 0.0 else !num /. sqrt (!dp *. !da)
  end

(* ---- checkpoint codec --------------------------------------------------- *)

let header t =
  Printf.sprintf "surrogate 1 %d %d %s %s %d %d" t.dims t.window
    (Codec.hex_of_float t.eta)
    (match t.skim with None -> "-" | Some k -> string_of_int k)
    t.gid t.mid

let save t =
  let lines = ref [] in
  let out l = lines := l :: !lines in
  out (header t);
  out (Printf.sprintf "counters %d %d %d" t.trained t.reranks t.skips);
  out
    (match t.reference with
    | None -> "ref none"
    | Some m -> "ref " ^ Mapping.canonical_key m);
  let nw = ref 0 in
  for i = 0 to t.dims - 1 do
    if t.w.(i) <> 0.0 || t.g2.(i) <> 0.0 then incr nw
  done;
  out (Printf.sprintf "weights %d" !nw);
  for i = 0 to t.dims - 1 do
    if t.w.(i) <> 0.0 || t.g2.(i) <> 0.0 then
      out
        (Printf.sprintf "w %d %s %s" i
           (Codec.hex_of_float t.w.(i))
           (Codec.hex_of_float t.g2.(i)))
  done;
  out (Printf.sprintf "window %d" t.win_n);
  let slot j = (t.win_i - t.win_n + j + (2 * t.window)) mod t.window in
  for j = 0 to t.win_n - 1 do
    out
      (Printf.sprintf "s %s %s"
         (Codec.hex_of_float t.win_pred.(slot j))
         (Codec.hex_of_float t.win_act.(slot j)))
  done;
  List.rev !lines

let restore t lines =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Surrogate.restore: " ^ m)) fmt in
  let ( let* ) = Result.bind in
  let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let take n tag rest =
    let rec go n acc rest =
      if n = 0 then Ok (List.rev acc, rest)
      else
        match rest with
        | l :: rest -> go (n - 1) (l :: acc) rest
        | [] -> fail "truncated %s entries" tag
    in
    go n [] rest
  in
  match lines with
  | hd :: counters :: refl :: rest ->
      let* () =
        if hd = header t then Ok ()
        else
          fail
            "configuration mismatch — checkpoint written with different \
             dims/eta/window/skim or for a different machine or graph (%S vs %S)"
            hd (header t)
      in
      let* () =
        match words counters with
        | [ "counters"; a; b; c ] -> (
            match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
            | Some a, Some b, Some c ->
                t.trained <- a;
                t.reranks <- b;
                t.skips <- c;
                Ok ()
            | _ -> fail "bad counters line")
        | _ -> fail "bad counters line"
      in
      let* () =
        if refl = "ref none" then begin
          t.reference <- None;
          Ok ()
        end
        else
          match String.index_opt refl ' ' with
          | Some i when String.sub refl 0 i = "ref" -> (
              let key = String.sub refl (i + 1) (String.length refl - i - 1) in
              match Mapping.of_canonical_key t.graph key with
              | Some m ->
                  t.reference <- Some m;
                  Ok ()
              | None -> fail "reference mapping does not parse")
          | _ -> fail "bad ref line"
      in
      let* nw, rest =
        match rest with
        | l :: rest -> (
            match words l with
            | [ "weights"; n ] -> (
                match int_of_string_opt n with
                | Some n when n >= 0 && n <= t.dims -> Ok (n, rest)
                | _ -> fail "bad weights count")
            | _ -> fail "bad weights line")
        | [] -> fail "missing weights section"
      in
      let* wlines, rest = take nw "weight" rest in
      Array.fill t.w 0 t.dims 0.0;
      Array.fill t.g2 0 t.dims 0.0;
      let* () =
        List.fold_left
          (fun acc l ->
            let* () = acc in
            match words l with
            | [ "w"; i; w; g2 ] -> (
                match (int_of_string_opt i, Codec.float_of_hex w, Codec.float_of_hex g2)
                with
                | Some i, Some w, Some g2 when i >= 0 && i < t.dims ->
                    t.w.(i) <- w;
                    t.g2.(i) <- g2;
                    Ok ()
                | _ -> fail "bad weight entry")
            | _ -> fail "bad weight entry")
          (Ok ()) wlines
      in
      let* wn, rest =
        match rest with
        | l :: rest -> (
            match words l with
            | [ "window"; n ] -> (
                match int_of_string_opt n with
                | Some n when n >= 0 && n <= t.window -> Ok (n, rest)
                | _ -> fail "bad window count")
            | _ -> fail "bad window line")
        | [] -> fail "missing window section"
      in
      let* slines, rest = take wn "window" rest in
      let* () = if rest = [] then Ok () else fail "trailing lines" in
      Array.fill t.win_pred 0 t.window 0.0;
      Array.fill t.win_act 0 t.window 0.0;
      t.win_n <- wn;
      t.win_i <- wn mod t.window;
      let* _ =
        List.fold_left
          (fun acc l ->
            let* j = acc in
            match words l with
            | [ "s"; p; a ] -> (
                match (Codec.float_of_hex p, Codec.float_of_hex a) with
                | Some p, Some a ->
                    t.win_pred.(j) <- p;
                    t.win_act.(j) <- a;
                    Ok (j + 1)
                | _ -> fail "bad window entry")
            | _ -> fail "bad window entry")
          (Ok 0) slines
      in
      Ok ()
  | _ -> fail "truncated"
