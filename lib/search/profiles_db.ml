type entry = { mapping : Mapping.t; runs : float list; perf : float }

type t = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }

(* Keyed variants let a caller that already holds the canonical key (the
   evaluator computes it once per evaluation) skip recomputing it. *)
let find_key t key = Hashtbl.find_opt t.tbl key
let find t m = find_key t (Mapping.canonical_key m)

let record_key t ~key m runs =
  let entry = { mapping = m; runs; perf = Stats.mean runs } in
  Hashtbl.replace t.tbl key entry;
  entry

let record t m runs = record_key t ~key:(Mapping.canonical_key m) m runs

let remove_key t key = Hashtbl.remove t.tbl key

let size t = Hashtbl.length t.tbl

let top t k =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort (fun a b -> compare a.perf b.perf)
  |> List.filteri (fun i _ -> i < k)

let best t = match top t 1 with [] -> None | e :: _ -> Some e

let save t =
  let buf = Buffer.create 1024 in
  Hashtbl.iter
    (fun key e ->
      Buffer.add_string buf key;
      List.iter (fun r -> Buffer.add_string buf (Printf.sprintf " %.17g" r)) e.runs;
      Buffer.add_char buf '\n')
    t.tbl;
  Buffer.contents buf

let load g s =
  let db = create () in
  let error = ref None in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && !error = None then
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | key :: runs_s -> (
            let runs = List.filter_map float_of_string_opt runs_s in
            if List.length runs <> List.length runs_s || runs = [] then
              error := Some (Printf.sprintf "line %d: bad measurements" (i + 1))
            else
              match Mapping.of_canonical_key g key with
              | Some m ->
                  if Hashtbl.mem db.tbl key then
                    error := Some (Printf.sprintf "line %d: duplicate mapping %s" (i + 1) key)
                  else ignore (record db m runs)
              | None ->
                  error :=
                    Some (Printf.sprintf "line %d: key does not match the graph" (i + 1)))
        | [] -> ())
    (String.split_on_char '\n' s);
  match !error with Some e -> Error e | None -> Ok db
