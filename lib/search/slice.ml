(* One scheduling quantum of a search, for the serve daemon: run the
   engine for at most [slice_trials] evaluated proposals, then either
   finish (strategy stopped or the request's own budget ran out) or
   pause into a checkpoint envelope.  Because the pause/resume path is
   the PR 5 checkpoint codec — proven decision-identical — a search
   chopped into slices (possibly hopping between worker domains, each
   slice on a fresh evaluator over the shared compiled problem) takes
   exactly the trial sequence the unsliced run would.

   The only approximation is the wall clock: each slice accumulates its
   own elapsed time into the envelope's wall field.  Wall is not
   decision-relevant here (slice budgets are trial-counted and requests
   carry no max_wall), so the accumulated value is telemetry. *)

type cfg = {
  algo : Driver.algo;
  runs : int;
  noise_sigma : float option;
  iterations : int option;
  seed : int;
  budget : float option;      (* request's virtual-time cap *)
  max_trials : int option;    (* request's total trial cap *)
  batch : bool;
  min_batch : int;
  surrogate : bool;
  surrogate_skim : int option;
  symmetry : bool;
  dominance : bool;
  heft_seed : bool;
  final_top : int;
  final_runs : int;
}

let default_cfg =
  {
    algo = Driver.Ccd { rotations = 5 };
    runs = 7;
    noise_sigma = None;
    iterations = None;
    seed = 0;
    budget = None;
    max_trials = None;
    batch = true;
    min_batch = Descent.default_min_batch;
    surrogate = true;
    surrogate_skim = None;
    symmetry = true;
    dominance = true;
    heft_seed = false;
    final_top = 5;
    final_runs = 30;
  }

let algo_spec = function
  | Driver.Cd -> "cd"
  | Driver.Ccd { rotations } -> Printf.sprintf "ccd:%d" rotations
  | Driver.Ensemble_tuner -> "ensemble"
  | Driver.Random_walk { max_evals } -> Printf.sprintf "random:%d" max_evals
  | Driver.Annealing { max_evals } -> Printf.sprintf "annealing:%d" max_evals
  | Driver.Portfolio -> "portfolio"
  | Driver.Heft -> "heft"

let opt_f = function None -> "none" | Some v -> Printf.sprintf "%h" v
let opt_i = function None -> "none" | Some v -> string_of_int v

(* Only the fields that pick the evaluator's decision stream: profiles
   measured under one eval identity are poison under another (different
   CRN seeds, run counts, noise), so the server's shared profiles pool
   is segmented by this digest. *)
let eval_identity cfg =
  Printf.sprintf "runs=%d noise=%s iters=%s seed=%d" cfg.runs
    (opt_f cfg.noise_sigma) (opt_i cfg.iterations) cfg.seed

let eval_fingerprint cfg = Digest.to_hex (Digest.string (eval_identity cfg))

(* The full search identity, for the result memo.  Deliberately
   conservative: decision-neutral fields (batch, min_batch) are
   included too — segmenting the memo slightly finer than necessary
   costs a warm start where a hit was possible, never a wrong answer. *)
let fingerprint cfg =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf
          "algo=%s %s budget=%s trials=%s batch=%b min_batch=%d surrogate=%b \
           skim=%s symmetry=%b dominance=%b heft=%b top=%d final_runs=%d"
          (algo_spec cfg.algo) (eval_identity cfg) (opt_f cfg.budget)
          (opt_i cfg.max_trials) cfg.batch cfg.min_batch cfg.surrogate
          (opt_i cfg.surrogate_skim) cfg.symmetry cfg.dominance cfg.heft_seed
          cfg.final_top cfg.final_runs))

type finished = {
  best : Mapping.t;
  perf : float;
  best_runs : float list;
  search_best : Mapping.t;
  search_perf : float;
  trials : int;
}

type progress = { ckpt : string; p_trials : int; p_best_perf : float }
type status = Finished of finished | Paused of progress

(* skim only makes sense on ranked batches (mirrors Driver.run) *)
let eff_batch cfg = cfg.batch || cfg.surrogate_skim <> None

let make_evaluator ?scratch ?db cfg machine graph =
  Evaluator.create ~runs:cfg.runs ?noise_sigma:cfg.noise_sigma
    ?iterations:cfg.iterations ~seed:cfg.seed ~symmetry:cfg.symmetry
    ~dominance:cfg.dominance ?db ?scratch machine graph

(* mirrors Driver.run: the seen-set exists exactly when the evaluator's
   space canonicalizes; symmetry is part of the fingerprint so resumed
   slices cannot silently flip it *)
let make_seen ev =
  if Space.symmetry (Evaluator.space ev) then
    Some (Engine.seen_create (Space.canonicalize (Evaluator.space ev)))
  else None

let slice_budget cfg ~done_trials ~slice_trials =
  let cap =
    let c = done_trials + slice_trials in
    match cfg.max_trials with Some m -> min m c | None -> c
  in
  (* the portfolio consumes [budget] through its own member deadlines;
     every other algorithm gets it as the engine's virtual-time cap
     (mirrors Driver.run) *)
  let max_virtual = if cfg.algo = Driver.Portfolio then None else cfg.budget in
  (cap, Budget.make ~max_trials:cap ?max_virtual ())

(* Did the slice end because the search is over, or because the quantum
   ran out?  Hitting the slice cap with the request's own limits still
   open means "more work"; anything else — strategy stop, request trial
   cap, virtual budget overrun — is final.  A strategy that stops
   exactly on the cap is indistinguishable from a truncated one; it
   costs one extra no-op slice that stops immediately, evaluating
   nothing. *)
let is_finished cfg ev (o : Engine.outcome) ~cap =
  o.Engine.trials < cap
  || (match cfg.max_trials with Some m -> o.Engine.trials >= m | None -> false)
  ||
  match cfg.budget with
  | Some b when cfg.algo <> Driver.Portfolio -> Evaluator.virtual_time ev > b
  | _ -> false

let conclude cfg ev (o : Engine.outcome) =
  let best, best_runs =
    Driver.final_protocol ~final_top:cfg.final_top ~final_runs:cfg.final_runs ev
      ~search_best:o.Engine.best ~search_perf:o.Engine.perf
  in
  Finished
    {
      best;
      perf = Stats.mean best_runs;
      best_runs;
      search_best = o.Engine.best;
      search_perf = o.Engine.perf;
      trials = o.Engine.trials;
    }

let pause ?surrogate ?seen ev strat (o : Engine.outcome) ~wall =
  Paused
    {
      ckpt =
        Engine.checkpoint_string ?surrogate ?seen ev strat ~trials:o.Engine.trials
          ~steps:o.Engine.steps ~wall ~best:(o.Engine.best, o.Engine.perf);
      p_trials = o.Engine.trials;
      p_best_perf = o.Engine.perf;
    }

let start ?scratch ?db ?warm_start ?on_event ~slice_trials cfg machine graph =
  let batch = eff_batch cfg in
  let ev = make_evaluator ?scratch ?db cfg machine graph in
  let start_m =
    match warm_start with
    | Some m -> Evaluator.note_warm_start ev; m
    | None ->
        if cfg.heft_seed || cfg.algo = Driver.Heft then Heft.mapping machine graph
        else Mapping.default_start graph machine
  in
  let sg =
    if not cfg.surrogate then None
    else Some (Surrogate.create ?skim:cfg.surrogate_skim (Evaluator.space ev))
  in
  Option.iter (Evaluator.attach_surrogate ev) sg;
  let rank_sg = if batch then sg else None in
  let strat =
    Driver.make_strategy ~seed:cfg.seed ?budget:cfg.budget ~batch
      ~min_batch:cfg.min_batch ?surrogate:rank_sg cfg.algo ev
  in
  let seen = make_seen ev in
  let cap, budget = slice_budget cfg ~done_trials:0 ~slice_trials in
  let t0 = Unix.gettimeofday () in
  let o =
    Engine.run ~budget ?on_event ?surrogate:sg ?seen ~start:start_m ev strat
  in
  let status =
    if is_finished cfg ev o ~cap then conclude cfg ev o
    else pause ?surrogate:sg ?seen ev strat o ~wall:(Unix.gettimeofday () -. t0)
  in
  (status, ev)

let resume ?scratch ?on_event ~slice_trials cfg machine graph ~ckpt =
  let ( let* ) = Result.bind in
  let batch = eff_batch cfg in
  let* s = Engine.snapshot_of_string ckpt in
  let* db = Profiles_db.load graph s.Engine.s_profiles in
  let ev = make_evaluator ?scratch ~db cfg machine graph in
  let* () =
    if Evaluator.fingerprint ev = s.Engine.s_fingerprint then Ok ()
    else
      Error
        (Printf.sprintf
           "Slice.resume: fingerprint mismatch (%s vs %s) — checkpoint belongs \
            to a different machine/graph/config"
           s.Engine.s_fingerprint (Evaluator.fingerprint ev))
  in
  let* () = Evaluator.restore_state ev s.Engine.s_evaluator in
  (* the snapshot decides whether a surrogate resumes (see Driver.run) *)
  let* sg =
    if s.Engine.s_surrogate = [] then Ok None
    else
      let m = Surrogate.create ?skim:cfg.surrogate_skim (Evaluator.space ev) in
      let* () = Surrogate.restore m s.Engine.s_surrogate in
      Ok (Some m)
  in
  Option.iter (Evaluator.attach_surrogate ev) sg;
  let rank_sg = if batch then sg else None in
  let* strat =
    Driver.decode_strategy ~batch ~min_batch:cfg.min_batch ?surrogate:rank_sg ev
      ~algo:s.Engine.s_algo s.Engine.s_strategy
  in
  let* best_m =
    match Mapping.of_canonical_key graph s.Engine.s_best_key with
    | Some m -> Ok m
    | None -> Error "Slice.resume: best-mapping key does not parse for this graph"
  in
  let carry =
    {
      Engine.c_trials = s.Engine.s_trials;
      c_steps = s.Engine.s_steps;
      c_wall = s.Engine.s_wall;
      c_best = (best_m, s.Engine.s_best_perf);
    }
  in
  let seen = make_seen ev in
  let* () =
    match seen with
    | Some sn -> Engine.seen_restore sn s.Engine.s_symmetry
    | None ->
        if s.Engine.s_symmetry = [] then Ok ()
        else
          Error
            "Slice.resume: checkpoint has a symmetry section but symmetry is off"
  in
  let cap, budget = slice_budget cfg ~done_trials:s.Engine.s_trials ~slice_trials in
  let t0 = Unix.gettimeofday () in
  let o =
    Engine.run ~budget ?on_event ~carry ?surrogate:sg ?seen ~start:best_m ev strat
  in
  let status =
    if is_finished cfg ev o ~cap then conclude cfg ev o
    else
      pause ?surrogate:sg ?seen ev strat o
        ~wall:(s.Engine.s_wall +. (Unix.gettimeofday () -. t0))
  in
  Ok (status, ev)
