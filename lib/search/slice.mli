(** Time-sliced search execution for the serve daemon.

    A request's search runs as a chain of slices: {!start} performs the
    first [slice_trials] evaluated proposals, {!resume} continues from
    the checkpoint envelope the previous slice produced.  Between
    slices the search exists only as that envelope — the server can
    persist it, re-enqueue it behind other requests, or hand it to a
    different worker domain (each slice builds a fresh evaluator, so
    only the immutable {!Exec.compiled} problem is shared).  Because
    pause/resume is the {!Engine} checkpoint codec, the sliced search
    is decision-identical to the unsliced one; SIGTERM durability falls
    out of persisting the envelope after every slice. *)

type cfg = {
  algo : Driver.algo;
  runs : int;                  (** per-candidate measurement runs (§5: 7) *)
  noise_sigma : float option;  (** [None] = evaluator default *)
  iterations : int option;
  seed : int;
  budget : float option;       (** request's virtual-time cap *)
  max_trials : int option;     (** request's total evaluated-trial cap *)
  batch : bool;
  min_batch : int;
  surrogate : bool;
  surrogate_skim : int option;
  symmetry : bool;   (** orbit canonicalization + seen-set skipping *)
  dominance : bool;  (** dominance-pruned choice lists *)
  heft_seed : bool;
  final_top : int;
  final_runs : int;
}
(** Everything that determines a search's decision stream (plus the
    decision-neutral batching knobs).  The server derives cache keys
    from it and rebuilds identical slice drivers from it on restart. *)

val default_cfg : cfg
(** CCD(5), 7 runs, seed 0, no caps, gated batching with
    {!Descent.default_min_batch}, surrogate on, symmetry and dominance
    reduction on — the serve daemon's per-request defaults. *)

val algo_spec : Driver.algo -> string
(** Compact wire spelling of an algorithm, e.g. ["ccd:5"],
    ["random:1000"] — the inverse of the CLI/wire algo parsers. *)

val fingerprint : cfg -> string
(** Hex digest of the full search identity.  Together with the machine
    and graph fingerprints this keys the server's result memo: equal
    triples guarantee bit-equal answers. *)

val eval_fingerprint : cfg -> string
(** Digest of only the evaluator-identity fields (runs, noise,
    iterations, seed).  Profiles measured under one eval identity are
    meaningless under another, so the shared profiles pool is
    segmented by (machine, graph, this). *)

type finished = {
  best : Mapping.t;       (** winner of the final protocol *)
  perf : float;           (** its final average *)
  best_runs : float list; (** the final protocol's runs for it *)
  search_best : Mapping.t;
  search_perf : float;
  trials : int;
}

type progress = {
  ckpt : string;        (** checkpoint envelope — feed to {!resume} *)
  p_trials : int;
  p_best_perf : float;
}

type status = Finished of finished | Paused of progress

val start :
  ?scratch:Exec.scratch ->
  ?db:Profiles_db.t ->
  ?warm_start:Mapping.t ->
  ?on_event:(Engine.event -> unit) ->
  slice_trials:int ->
  cfg ->
  Machine.t ->
  Graph.t ->
  status * Evaluator.t
(** First slice: build the evaluator (over [scratch]'s compiled problem
    when given — the compile-cache path), seed the profiles database
    from [db] (the shared pool), run at most [slice_trials] trials.
    [warm_start] seeds the search from a memoized incumbent instead of
    the default/HEFT start (counted via {!Evaluator.note_warm_start});
    warm-started searches explore a different — typically shorter —
    trajectory, which is exactly their point.  The returned evaluator
    carries the slice's stats and profiles database. *)

val resume :
  ?scratch:Exec.scratch ->
  ?on_event:(Engine.event -> unit) ->
  slice_trials:int ->
  cfg ->
  Machine.t ->
  Graph.t ->
  ckpt:string ->
  (status * Evaluator.t, string) result
(** Continue a paused search from its envelope, decision-identically:
    profiles database, evaluator state, strategy cursor and surrogate
    all restore from [ckpt] ([cfg] must be the one the chain started
    with — the evaluator fingerprint check enforces the eval-identity
    part).  Errors on a corrupt or mismatched envelope. *)
