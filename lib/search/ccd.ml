(* Constrained coordinate descent (Algorithm 1) as an Engine strategy:
   [rotations] Descent sweeps, each re-profiled from the current
   incumbent and constrained by the overlap graph C, with
   ⌈E₀/(N−1)⌉ lightest edges pruned between rotations so the final
   sweep runs unconstrained. *)

type state = {
  ev : Evaluator.t;
  batch : bool;  (* emit whole neighbour sets via Propose_batch *)
  min_batch : int;  (* rounds smaller than this run sequentially *)
  surrogate : Surrogate.t option;  (* ranked batches (see Descent) *)
  rotations : int;
  prune_per_rotation : int;
  mutable r : int;  (* current rotation, 0 before the first *)
  mutable overlap : Overlap.t;  (* C as used by rotation [r] *)
  mutable sweep : Descent.t option;
  mutable incumbent : (Mapping.t * float) option;
}

let overlap_opt c = if Overlap.is_empty c then None else Some c

let prune_per_rotation ~rotations c0 =
  (* ⌈E₀/(N−1)⌉ lightest edges removed after each rotation so the
     final rotation runs with C empty (Algorithm 1 line 8). *)
  let e0 = Overlap.n_edges c0 in
  if e0 = 0 then 0 else (e0 + rotations - 2) / (rotations - 1)

let advance st (f, _p) =
  if st.r >= st.rotations then Engine.Stop
  else begin
    if st.r > 0 then
      st.overlap <- Overlap.prune_lightest st.overlap st.prune_per_rotation;
    st.r <- st.r + 1;
    (* refresh the longest-running-first order against the incumbent,
       exactly at rotation entry as the legacy loop did *)
    let profile = Evaluator.profile_for st.ev f in
    st.sweep <-
      Some
        (Descent.start ?surrogate:st.surrogate st.ev
           ~overlap:(overlap_opt st.overlap) ~profile);
    Engine.Phase (Printf.sprintf "rotation %d/%d" st.r st.rotations)
  end

let strategy_of st =
  {
    Engine.name = "ccd";
    init = (fun ip -> st.incumbent <- Some ip);
    step =
      (fun _ctx ->
        match st.incumbent with
        | None -> Engine.Stop
        | Some ((f, p) as inc) -> (
            match st.sweep with
            | None -> advance st inc
            | Some cur ->
                if st.batch then begin
                  match
                    Descent.next_gated cur ~incumbent:f ~min_batch:st.min_batch
                  with
                  | `Done ->
                      st.sweep <- None;
                      advance st inc
                  | `Batch cands ->
                      Engine.Propose_batch
                        (cands, { Engine.bound = Some p; overhead = 0.0 })
                  | `Seq cand ->
                      Engine.Propose (cand, { Engine.bound = Some p; overhead = 0.0 })
                end
                else (
                  match Descent.next cur ~incumbent:f with
                  | Some cand ->
                      Engine.Propose (cand, { Engine.bound = Some p; overhead = 0.0 })
                  | None ->
                      st.sweep <- None;
                      advance st inc)));
    receive =
      (fun m perf ->
        (* batched rounds consume per verdict (plain: specs; ranked:
           the queued candidate), gated sequential rounds consumed at
           proposal time — [deliver_verdict] dispatches *)
        if st.batch then
          (match st.sweep with
          | Some c -> Descent.deliver_verdict c
          | None -> ());
        match st.incumbent with
        | Some (_, p) when perf < p ->
            st.incumbent <- Some (m, perf);
            if st.surrogate <> None then
              (match st.sweep with Some c -> Descent.abandon c | None -> ());
            true
        | _ -> false);
    encode =
      (fun () ->
        [
          Printf.sprintf "rot %d %d" st.rotations st.r;
          (match st.incumbent with
          | None -> "incumbent none"
          | Some (m, p) -> "incumbent " ^ Codec.incumbent_line m p);
          (match st.sweep with None -> "sweep none" | Some c -> Descent.encode c);
        ]);
  }

let make ?(batch = false) ?(min_batch = 1) ?surrogate ?(rotations = 5) ev =
  if rotations < 2 then invalid_arg "Ccd.search: rotations must be at least 2";
  let c0 = Overlap.of_graph (Evaluator.graph ev) in
  strategy_of
    {
      ev;
      batch;
      min_batch;
      surrogate;
      rotations;
      prune_per_rotation = prune_per_rotation ~rotations c0;
      r = 0;
      overlap = c0;
      sweep = None;
      incumbent = None;
    }

let decode ?(batch = false) ?(min_batch = 1) ?surrogate ev lines =
  let g = Evaluator.graph ev in
  match lines with
  | [ rot; inc; sweep ] -> (
      let ( let* ) = Result.bind in
      let* rotations, r =
        match String.split_on_char ' ' rot |> List.filter (( <> ) "") with
        | [ "rot"; rots; r ] -> (
            match (int_of_string_opt rots, int_of_string_opt r) with
            | Some rots, Some r when rots >= 2 && r >= 0 && r <= rots -> Ok (rots, r)
            | _ -> Error "Ccd.decode: bad rot fields")
        | _ -> Error "Ccd.decode: bad rot line"
      in
      let c0 = Overlap.of_graph g in
      let ppr = prune_per_rotation ~rotations c0 in
      (* rotation r runs against C after r-1 prunes — deterministic, so
         the overlap graph is re-derived rather than serialized *)
      let overlap = ref c0 in
      for _ = 2 to r do
        overlap := Overlap.prune_lightest !overlap ppr
      done;
      let st =
        {
          ev;
          batch;
          min_batch;
          surrogate;
          rotations;
          prune_per_rotation = ppr;
          r;
          overlap = !overlap;
          sweep = None;
          incumbent = None;
        }
      in
      let* () =
        if inc = "incumbent none" then Ok ()
        else
          match String.index_opt inc ' ' with
          | Some i when String.sub inc 0 i = "incumbent" ->
              let* mp =
                Codec.parse_incumbent g
                  (String.sub inc (i + 1) (String.length inc - i - 1))
              in
              st.incumbent <- Some mp;
              Evaluator.note_incumbent ev (fst mp);
              Ok ()
          | _ -> Error "Ccd.decode: bad incumbent line"
      in
      let* () =
        if sweep = "sweep none" then Ok ()
        else
          let* c = Descent.decode ?surrogate ev ~overlap:(overlap_opt !overlap) sweep in
          st.sweep <- Some c;
          Ok ()
      in
      Ok (strategy_of st))
  | _ -> Error "Ccd.decode: expected 3 lines"

let search ?batch ?min_batch ?surrogate ?(rotations = 5) ?start ?(budget = infinity)
    ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let strat = make ?batch ?min_batch ?surrogate ~rotations ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let o = Engine.run ?surrogate ~budget:(Budget.of_virtual budget) ~start:f0 ev strat in
  (o.Engine.best, o.Engine.perf)
