let search ?(rotations = 5) ?start ?(budget = infinity) ev =
  if rotations < 2 then invalid_arg "Ccd.search: rotations must be at least 2";
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  Evaluator.note_incumbent ev f0;
  let should_stop () = Evaluator.virtual_time ev > budget in
  let c0 = Overlap.of_graph g in
  let prune_per_rotation =
    (* ⌈E₀/(N−1)⌉ lightest edges removed after each rotation so the
       final rotation runs with C empty (Algorithm 1 line 8). *)
    let e0 = Overlap.n_edges c0 in
    if e0 = 0 then 0 else ((e0 + rotations - 2) / (rotations - 1))
  in
  let rec rotate r c (f, p) =
    if r > rotations || should_stop () then (f, p)
    else begin
      let overlap = if Overlap.is_empty c then None else Some c in
      let profile = Evaluator.profile_for ev f in
      let f, p = Descent.sweep ev ~overlap ~should_stop ~profile (f, p) in
      rotate (r + 1) (Overlap.prune_lightest c prune_per_rotation) (f, p)
    end
  in
  rotate 1 c0 (f0, p0)
