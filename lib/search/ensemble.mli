(** Generic ensemble autotuner — the OpenTuner stand-in (§4.3).

    OpenTuner is an external Python framework; in this sealed
    reproduction we implement the same *observable behaviour class*:
    an ensemble of generic search techniques (uniform random sampling,
    single-coordinate mutation of elites, crossover of elites, and a
    pattern walk) sharing one results database, with a multi-armed
    bandit allocating the proposal budget to the techniques that have
    recently produced improvements (OpenTuner's AUC bandit).

    Critically — as §4.3 documents for OpenTuner — the proposal
    machinery is *constraint-unaware*: processor and memory kinds are
    drawn independently, so many proposals violate the accessibility
    constraint.  AutoMap answers such proposals with a penalty value
    without executing them, so the tuner suggests orders of magnitude
    more mappings than it evaluates (§5.3: 157 202 suggested vs. 273
    evaluated for Pennant).  Every proposal also charges a fixed
    machinery overhead to virtual search time, reproducing the
    13–45 % useful-search-time observation. *)

type config = {
  seed : int;
  elite_size : int;          (** elites kept for mutation/crossover *)
  exploration : float;       (** bandit ε *)
  suggestion_overhead : float; (** virtual seconds charged per proposal *)
  max_suggestions : int;     (** hard cap independent of the time budget *)
}

val default_config : config

val make : ?config:config -> Evaluator.t -> Engine.strategy
(** The ensemble as an engine strategy (name ["ensemble"]); every
    proposal carries [suggestion_overhead] in its {!Engine.hint}.
    Improvements are {e accepted} so the engine pins them as incumbents
    ({!Evaluator.note_incumbent}) — the legacy loop never did, which
    forfeited incremental dirty-cone replay. *)

val decode : Evaluator.t -> string list -> (Engine.strategy, string) result
(** Rebuild a checkpointed ensemble: bandit arm statistics, pattern
    cursor, RNG state and best-so-far restored bit-exactly. *)

val search :
  ?config:config ->
  ?start:Mapping.t ->
  ?budget:float ->
  Evaluator.t ->
  Mapping.t * float
(** Runs until the virtual-time [budget] (default unlimited) or
    [max_suggestions] is exhausted.  Returns the best mapping found
    (falling back to the §4.1 starting point, which is always
    evaluated first). *)

val technique_names : string list
(** The ensemble members, for reporting. *)
