type member = Ccd of int | Cd | Annealing | Random

let default_members = [ Ccd 5; Annealing; Random ]

let member_name = function
  | Ccd r -> Printf.sprintf "ccd(%d)" r
  | Cd -> "cd"
  | Annealing -> "annealing"
  | Random -> "random"

(* checkpoint-stable member spelling (no spaces) *)
let member_to_string = function
  | Ccd r -> Printf.sprintf "ccd:%d" r
  | Cd -> "cd"
  | Annealing -> "annealing"
  | Random -> "random"

let member_of_string s =
  match String.split_on_char ':' s with
  | [ "cd" ] -> Some Cd
  | [ "annealing" ] -> Some Annealing
  | [ "random" ] -> Some Random
  | [ "ccd"; r ] -> Option.map (fun r -> Ccd r) (int_of_string_opt r)
  | _ -> None

(* The portfolio is a meta-strategy: it delegates step/receive to the
   active member's strategy and enforces each member's virtual-time
   share as an absolute deadline, exactly like the legacy sequential
   fold.  A member opens with its start point (the portfolio's
   best-so-far) proposed as a normal trial — a profiles-db cache hit,
   matching the legacy member searches re-evaluating their start. *)

type phase =
  | Idle
  | Ready of member * Engine.strategy * Mapping.t  (* announced, start not proposed *)
  | Starting of member * Engine.strategy           (* start proposal in flight *)
  | Active of member * Engine.strategy

type state = {
  ev : Evaluator.t;
  seed : int;
  share : float;
  batch : bool;  (* CD/CCD members propose whole neighbour sets *)
  min_batch : int;  (* CD/CCD rounds smaller than this run sequentially *)
  surrogate : Surrogate.t option;  (* CD/CCD members rank their batches *)
  mutable remaining : member list;
  mutable phase : phase;
  mutable deadline : float;
  mutable best : (Mapping.t * float) option;
}

let child_of st = function
  | Ccd rotations ->
      Ccd.make ~batch:st.batch ~min_batch:st.min_batch ?surrogate:st.surrogate
        ~rotations st.ev
  | Cd -> Cd.make ~batch:st.batch ~min_batch:st.min_batch ?surrogate:st.surrogate st.ev
  | Annealing -> Annealing.make ~seed:(st.seed + 13) st.ev
  | Random -> Random_search.make ~seed:(st.seed + 29) st.ev

let child_decode st member lines =
  match member with
  | Ccd _ ->
      Ccd.decode ~batch:st.batch ~min_batch:st.min_batch ?surrogate:st.surrogate
        st.ev lines
  | Cd ->
      Cd.decode ~batch:st.batch ~min_batch:st.min_batch ?surrogate:st.surrogate
        st.ev lines
  | Annealing -> Annealing.decode st.ev lines
  | Random -> Random_search.decode st.ev lines

let strategy_of st =
  let rec step ctx =
    match st.phase with
    | Idle -> (
        match st.remaining with
        | [] -> Engine.Stop
        | m :: rest ->
            st.remaining <- rest;
            (* each member gets an equal share, measured from its own
               entry — unspent time is not redistributed *)
            st.deadline <- ctx.Engine.vt +. st.share;
            let child = child_of st m in
            let start = match st.best with Some (b, _) -> b | None -> assert false in
            st.phase <- Ready (m, child, start);
            Engine.Phase (Printf.sprintf "member %s" (member_name m)))
    | Ready (m, child, start) ->
        st.phase <- Starting (m, child);
        Engine.Propose (start, Engine.unbounded)
    | Starting _ ->
        (* receive transitions out of Starting before the next step *)
        assert false
    | Active (m, child) ->
        if ctx.Engine.vt > st.deadline then begin
          st.phase <- Idle;
          Engine.Phase (Printf.sprintf "member %s: budget share spent" (member_name m))
        end
        else (
          match child.Engine.step ctx with
          | Engine.Stop ->
              st.phase <- Idle;
              step ctx
          | s -> s)
  in
  {
    Engine.name = "portfolio";
    init = (fun bp -> st.best <- Some bp);
    step;
    receive =
      (fun m perf ->
        let note_best () =
          match st.best with
          | Some (_, bp) when perf < bp -> st.best <- Some (m, perf)
          | _ -> ()
        in
        match st.phase with
        | Starting (mem, child) ->
            child.Engine.init (m, perf);
            st.phase <- Active (mem, child);
            note_best ();
            true
        | Active (_, child) ->
            let accepted = child.Engine.receive m perf in
            note_best ();
            accepted
        | Idle | Ready _ -> assert false);
    encode =
      (fun () ->
        let remaining, active =
          (* a member announced or mid-start restarts cleanly on resume:
             its start trial is a cache hit either way *)
          match st.phase with
          | Idle -> (st.remaining, None)
          | Ready (m, _, _) | Starting (m, _) -> (m :: st.remaining, None)
          | Active (m, child) -> (st.remaining, Some (m, child))
        in
        [
          Printf.sprintf "portfolio %d %s %s" st.seed (Codec.hex_of_float st.share)
            (Codec.hex_of_float st.deadline);
          Printf.sprintf "remaining %s"
            (String.concat " " (List.map member_to_string remaining));
          (match st.best with
          | None -> "best none"
          | Some (bm, bp) -> "best " ^ Codec.incumbent_line bm bp);
        ]
        @
        match active with
        | None -> [ "child none" ]
        | Some (m, child) ->
            let blob = child.Engine.encode () in
            Printf.sprintf "child %s %d" (member_to_string m) (List.length blob) :: blob);
  }

let make ?(members = default_members) ?(budget = infinity) ?(seed = 0)
    ?(batch = false) ?(min_batch = 1) ?surrogate ev =
  if members = [] then invalid_arg "Portfolio.search: no members";
  let share =
    if Float.is_finite budget then budget /. float_of_int (List.length members)
    else infinity
  in
  strategy_of
    {
      ev;
      seed;
      share;
      batch;
      min_batch;
      surrogate;
      remaining = members;
      phase = Idle;
      deadline = infinity;
      best = None;
    }

let decode ?(batch = false) ?(min_batch = 1) ?surrogate ev lines =
  let g = Evaluator.graph ev in
  let fail fmt = Printf.ksprintf (fun m -> Error ("Portfolio.decode: " ^ m)) fmt in
  match lines with
  | head :: remaining_l :: best_l :: child_l :: blob -> (
      let ( let* ) = Result.bind in
      let* seed, share, deadline =
        match String.split_on_char ' ' head |> List.filter (( <> ) "") with
        | [ "portfolio"; seed; share; deadline ] -> (
            match
              (int_of_string_opt seed, Codec.float_of_hex share,
               Codec.float_of_hex deadline)
            with
            | Some seed, Some share, Some deadline -> Ok (seed, share, deadline)
            | _ -> fail "bad portfolio fields")
        | _ -> fail "bad portfolio line"
      in
      let* remaining =
        match String.split_on_char ' ' remaining_l |> List.filter (( <> ) "") with
        | "remaining" :: ms ->
            let parsed = List.filter_map member_of_string ms in
            if List.length parsed <> List.length ms then fail "bad member name"
            else Ok parsed
        | _ -> fail "bad remaining line"
      in
      let st =
        {
          ev;
          seed;
          share;
          batch;
          min_batch;
          surrogate;
          remaining;
          phase = Idle;
          deadline;
          best = None;
        }
      in
      let* () =
        if best_l = "best none" then Ok ()
        else
          match String.index_opt best_l ' ' with
          | Some i when String.sub best_l 0 i = "best" ->
              let* mp =
                Codec.parse_incumbent g
                  (String.sub best_l (i + 1) (String.length best_l - i - 1))
              in
              st.best <- Some mp;
              Ok ()
          | _ -> fail "bad best line"
      in
      let* () =
        if child_l = "child none" then
          if blob = [] then Ok () else fail "unexpected trailing lines"
        else
          match String.split_on_char ' ' child_l |> List.filter (( <> ) "") with
          | [ "child"; m; n ] -> (
              match (member_of_string m, int_of_string_opt n) with
              | Some m, Some n when n = List.length blob ->
                  let* child = child_decode st m blob in
                  st.phase <- Active (m, child);
                  Ok ()
              | _ -> fail "bad child header")
          | _ -> fail "bad child line"
      in
      Ok (strategy_of st))
  | _ -> fail "truncated"

let search ?(members = default_members) ?(budget = infinity) ?(seed = 0) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let strat = make ~members ~budget ~seed ev in
  let start0 = Mapping.default_start g machine in
  (* the per-member deadlines are the strategy's own; the engine budget
     stays open so an infinite share lets every member run to completion *)
  let o = Engine.run ~start:start0 ev strat in
  (o.Engine.best, o.Engine.perf)
