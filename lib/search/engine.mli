(** The search engine: one trial loop for every algorithm.

    The paper's driver (Figure 4) treats search algorithms as
    interchangeable suggestion sources behind a single measurement
    protocol.  This module is that boundary made explicit: an algorithm
    is a {!strategy} — a state machine that {e proposes} candidate
    mappings and {e receives} verdicts — and the engine owns everything
    the algorithms used to hand-roll separately:

    - evaluation, with each proposal's pruning bound plumbed uniformly
      through {!Evaluator.evaluate}'s [?bound];
    - incumbent pinning ({!Evaluator.note_incumbent}) whenever the
      strategy accepts a proposal;
    - the stopping rule, via one {!Budget.t} (max trials / virtual
      time / wall clock) tested before every step;
    - the event bus ([on_event]) feeding progress displays, JSONL
      streams and benches;
    - the checkpoint codec: strategy state + evaluator state + profiles
      database serialized so an interrupted search resumes
      {e decision-identically} (same accept/reject sequence, same RNG
      draws, same best mapping).

    Budget checks happen between trials and virtual time only advances
    inside evaluations, so moving the legacy loops' interleaved
    [should_stop] tests to the engine's per-step check provably cannot
    change any decision. *)

type hint = {
  bound : float option;
      (** pruning bound for {!Evaluator.evaluate} — the value above
          which this proposal is certainly rejected (incumbent perf,
          Metropolis threshold, current best…) *)
  overhead : float;
      (** virtual seconds of proposal machinery to charge before
          evaluating ({!Evaluator.note_suggestion_overhead}); 0 for
          free proposals *)
}

val unbounded : hint
(** [{ bound = None; overhead = 0.0 }] *)

type step =
  | Propose of Mapping.t * hint  (** evaluate this candidate next *)
  | Propose_batch of Mapping.t array * hint
      (** evaluate a whole candidate set against one bound
          ({!Evaluator.evaluate_batch}).  Contract: the strategy's
          [receive] must accept exactly when [perf < hint.bound] (and
          [hint.bound] must be its current acceptance threshold) —
          first-improvement descent.  The engine evaluates the batch,
          delivers verdicts through [receive] in array order, and stops
          delivering at the first acceptance; candidates after it were
          skipped or rolled back by the evaluator, so the trial count,
          receive sequence, clocks and incumbent pinning are
          bit-identical to proposing the same candidates one
          {!Propose} at a time.  Batches are truncated at the trial
          budget; checkpoints fire at most once per batch, after
          delivery. *)
  | Phase of string              (** phase marker (rotation, member…) — no evaluation *)
  | Stop                         (** the strategy is done *)

type ctx = {
  trials : int;           (** proposals evaluated so far, incl. the start *)
  vt : float;             (** the evaluator's virtual clock *)
  best : Mapping.t * float;  (** engine-tracked best-so-far *)
}

type strategy = {
  name : string;  (** stable identifier, used by the checkpoint codec *)
  init : Mapping.t * float -> unit;
      (** called once with the evaluated start point before the first
          [step] (never on resume — decode restores that state) *)
  step : ctx -> step;
  receive : Mapping.t -> float -> bool;
      (** verdict for the proposal just evaluated; returns whether the
          strategy {e accepts} it as its new incumbent — the engine
          pins accepted mappings via {!Evaluator.note_incumbent} *)
  encode : unit -> string list;
      (** serialize the full decision state (RNG, cursors, incumbents)
          as newline-free text lines; each algorithm module provides
          the matching [decode] *)
}

type event =
  | Eval of { trial : int; mapping : Mapping.t; perf : float; vt : float; accepted : bool }
  | Improve of { trial : int; mapping : Mapping.t; perf : float; vt : float }
  | Phase_change of { name : string }
  | Checkpointed of { trial : int; path : string }

type checkpoint_cfg = {
  every : int;    (** write a checkpoint every [every] completed trials *)
  path : string;  (** target file, replaced atomically (tmp + rename) *)
}

type carry = {
  c_trials : int;
  c_steps : int;
  c_wall : float;
  c_best : Mapping.t * float;
}
(** Engine counters restored from a {!snapshot} when resuming. *)

type outcome = {
  best : Mapping.t;
  perf : float;
  trials : int;             (** evaluated proposals, incl. the start *)
  steps : int;              (** strategy [step] calls *)
  checkpoints_written : int;
}

(** {2 Symmetry seen-set}

    A memo of already-evaluated orbits: candidates are keyed by the
    canonical key of their orbit representative ({!Space.canonicalize}),
    so symmetric duplicates of an evaluated mapping can be {e rejected}
    without re-evaluating.  Skipping is rejection-only and
    bound-justified: a memoized entry [(v, be)] answers a proposal with
    bound [b] only when it proves [perf >= b] — either the stored value
    is exact ([v] was evaluated un-truncated, [v < be]) and [v >= b], or
    it is a cut certificate ([v >= be]) and [b <= be].  Memoized answers
    charge no virtual time, count no trial, and never update the
    engine's best (the incumbent is only pinned if the strategy
    unexpectedly accepts); the per-run tally is
    {!Evaluator.symmetry_skips}.  Skips change which candidates get
    evaluated, so runs with and without a seen-set (or with different
    seen contents) are different decision sequences — the seen-set is
    checkpointed and must be restored on resume. *)

type seen

val seen_create : (Mapping.t -> Mapping.t) -> seen
(** [seen_create canon] — [canon] maps a candidate to its orbit
    representative (pass [Space.canonicalize space]). *)

val seen_size : seen -> int
(** Number of memoized orbits. *)

val seen_restore : seen -> string list -> (unit, string) result
(** Load the entries of a checkpoint's [s_symmetry] section (each line
    [<canonical key> <v %h> <bound %h>]) into a fresh seen-set. *)

val run :
  ?budget:Budget.t ->
  ?on_event:(event -> unit) ->
  ?checkpoint:checkpoint_cfg ->
  ?carry:carry ->
  ?surrogate:Surrogate.t ->
  ?seen:seen ->
  start:Mapping.t ->
  Evaluator.t ->
  strategy ->
  outcome
(** Fresh run: evaluates [start] unbounded (trial 1), pins it, calls
    [strategy.init], then loops [step]/evaluate/[receive] until the
    strategy stops or the budget is {!Budget.exhausted}.  With [?carry]
    (resume): skips the start evaluation and [init] — the caller must
    have restored the evaluator ({!Evaluator.restore_state}) and
    decoded the strategy from the same snapshot.

    [surrogate] taps the event bus: every [Eval] event trains the model
    ({!Surrogate.observe}) and every accepted mapping becomes its diff
    reference — training needs no strategy cooperation.  Checkpoints
    written by this run then carry a [surrogate] section.  Whether the
    model also {e ranks} proposals is the strategy's own configuration
    (pass it to {!Cd.make}/{!Ccd.make}/{!Portfolio.make} too). *)

(** {2 Checkpoint codec}

    A checkpoint is a self-contained text envelope:
    {v
    automap-checkpoint 1
    algo <strategy name>
    fingerprint <Evaluator.fingerprint>
    engine <trials> <steps> <wall %h>
    best <perf %h> <canonical mapping key>
    strategy <n>   ... n strategy lines ...
    evaluator <n>  ... n Evaluator.save_state lines ...
    profiles <n>   ... n Profiles_db.save lines ...
    surrogate <n>  ... n Surrogate.save lines ...   (only when one ran)
    symmetry <n>   ... n seen-set lines ...         (only when one ran)
    end
    v}
    Floats are hex ([%h]) so restore is bit-exact.  The surrogate and
    symmetry sections are optional and trailing (recognized by their
    header word): envelopes without them parse as before
    ([s_surrogate = []], [s_symmetry = []]), so older checkpoints
    remain loadable.  Symmetry lines are sorted for determinism. *)

type snapshot = {
  s_algo : string;
  s_fingerprint : string;
  s_trials : int;
  s_steps : int;
  s_wall : float;
  s_best_key : string;
  s_best_perf : float;
  s_strategy : string list;
  s_evaluator : string list;
  s_profiles : string;
  s_surrogate : string list;
      (** empty when the checkpointed run had no surrogate *)
  s_symmetry : string list;
      (** seen-set entries; empty when the run had no seen-set *)
}

val checkpoint_string :
  ?surrogate:Surrogate.t ->
  ?seen:seen ->
  Evaluator.t ->
  strategy ->
  trials:int ->
  steps:int ->
  wall:float ->
  best:Mapping.t * float ->
  string
(** The envelope [run] writes; exposed for tests and manual snapshots. *)

val snapshot_of_string : string -> (snapshot, string) result

val load_snapshot : string -> (snapshot, string) result
(** Read and parse a checkpoint file. *)
