(** Constrained coordinate-wise descent — Algorithm 1, the paper's
    core contribution (§4.2).

    CCD runs [rotations] full coordinate-descent sweeps.  During a
    sweep, every candidate move is repaired by the co-location
    constraints of Algorithm 2 against the current overlap graph C, so
    overlapping collections move *together* — the coordinated moves
    that let CCD jump between basins (e.g., all shared collections
    from Frame-Buffer to Zero-Copy at once) that strictly-improving
    per-collection moves cannot reach.  After each rotation,
    ⌈E₀/(rotations−1)⌉ of the lightest remaining edges of C are pruned,
    so the data-movement constraint is progressively relaxed until the
    final rotation is an unconstrained CD.

    Each rotation starts from the best mapping of the previous one and
    re-profiles it to refresh the longest-running-first task order. *)

val make :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  ?rotations:int ->
  Evaluator.t ->
  Engine.strategy
(** CCD as an engine strategy (name ["ccd"]); emits a
    {!Engine.Phase} marker at each rotation entry.  [batch] (default
    false) emits each task's whole neighbour set as one
    {!Engine.Propose_batch} (see {!Cd.make}); decision-identical,
    faster.  [min_batch] (default 1) gates sub-threshold rounds back
    to sequential proposals (see {!Cd.make} and
    {!Descent.next_gated}).  [surrogate] ranks each batch
    best-predicted-first (see {!Cd.make} and {!Descent.start}) in
    every rotation.
    @raise Invalid_argument if [rotations < 2]. *)

val decode :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  string list ->
  (Engine.strategy, string) result
(** Rebuild a checkpointed CCD strategy mid-rotation: the overlap graph
    is re-derived (pruning is deterministic), the sweep cursor and
    incumbent restored.  [batch], [min_batch] and [surrogate] as in
    {!Cd.decode}. *)

val search :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  ?rotations:int ->
  ?start:Mapping.t ->
  ?budget:float ->
  Evaluator.t ->
  Mapping.t * float
(** [rotations] defaults to 5 (the paper's setting; fewer behaves like
    CD, more wastes search time — §5).  @raise Invalid_argument if
    [rotations < 2].  Convenience wrapper over {!Engine.run} with
    {!make}. *)
