let test_mapping ev candidate (best, best_perf) =
  (* the incumbent perf is the bound: a candidate pruned at it could
     never satisfy the strict-improvement acceptance below *)
  let perf = Evaluator.evaluate ~bound:best_perf ev candidate in
  if perf < best_perf then begin
    Evaluator.note_incumbent ev candidate;
    (candidate, perf)
  end
  else (best, best_perf)

let optimize_task ev ~overlap ~should_stop (task : Graph.task) (f0, p0) =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let incumbent = ref (f0, p0) in
  let test candidate =
    if not (should_stop ()) then
      (* Setting a coordinate to its current value (after any
         co-location repair) reproduces the incumbent: skip it instead
         of burning a suggestion + DB lookup on a mapping that can
         never be a strict improvement. *)
      if Mapping.equal candidate (fst !incumbent) then Evaluator.note_noop_neighbor ev
      else incumbent := test_mapping ev candidate !incumbent
  in
  (* lines 11-12: distribution setting (the extended space also
     enumerates the cross-node strategy here) *)
  List.iter
    (fun (d, strat) ->
      let f, _ = !incumbent in
      test (Mapping.set_strategy (Mapping.set_distribute f task.tid d) task.tid strat))
    (Space.distribution_choices space);
  (* lines 13-18: processor kind x (collection x memory kind),
     enumerating only analyzer-certified domains.  A skipped value is a
     candidate the unpruned enumeration would have suggested only to
     learn it validates-then-OOMs (or repairs to the incumbent):
     counted in [dead_coord_skips] instead of paying for a resolve. *)
  let live_kinds = Space.proc_choices space task.tid in
  List.iter
    (fun k ->
      if not (List.memq k live_kinds) then
        (* every (arg, mem) combination of a dead kind is skipped *)
        Evaluator.note_dead_coords ev
          (List.length task.args * List.length (Space.mem_choices space k)))
    (Space.proc_choices_all space task.tid);
  List.iter
    (fun k ->
      List.iter
        (fun (c : Graph.collection) ->
          let live_mems = Space.mem_choices_for space ~cid:c.cid k in
          let dead = List.length (Space.mem_choices space k) - List.length live_mems in
          if dead > 0 then Evaluator.note_dead_coords ev dead;
          List.iter
            (fun r ->
              let f, _ = !incumbent in
              let f' = Mapping.set_mem (Mapping.set_proc f task.tid k) c.cid r in
              let f'' =
                match overlap with
                | None -> f'
                | Some o ->
                    Colocation.apply g machine ~overlap:o ~mapping:f' ~t:task.tid
                      ~c:c.cid ~k ~r
              in
              test f'')
            live_mems)
        (Profile.order_args_by_size task))
    live_kinds;
  !incumbent

let sweep ev ~overlap ~should_stop ~profile (f0, p0) =
  let g = Evaluator.graph ev in
  List.fold_left
    (fun acc task ->
      if should_stop () then acc else optimize_task ev ~overlap ~should_stop task acc)
    (f0, p0)
    (Profile.order_tasks_by_runtime g profile)
