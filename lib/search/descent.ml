(* The coordinate-descent sweep of Algorithm 1 (lines 11-18), expressed
   as a cursor the engine can drive one proposal at a time.  The legacy
   [sweep]/[optimize_task] loops enumerated candidates and evaluated
   them in place; the cursor enumerates the same candidate *specs* in
   the same order and materializes each against the caller's current
   incumbent at proposal time — identical to the legacy loops, where a
   candidate was also built from the incumbent as it stood after the
   previous accept/reject.

   Accounting equivalence: the legacy loops counted dead coordinates
   interleaved with evaluations but unconditionally for every *entered*
   task (only the evaluations were budget-guarded), so doing all of a
   task's dead-coordinate accounting at task entry yields the same
   totals in every truncation scenario.  No-op candidates (a spec that
   reproduces the incumbent after co-location repair) are counted and
   skipped here, exactly like the legacy [test] guard. *)

type spec =
  | Dist of bool * Mapping.dist_strategy
  | Proc_mem of Kinds.proc_kind * int * Kinds.mem_kind  (* kind, cid, mem *)

type t = {
  ev : Evaluator.t;
  overlap : Overlap.t option;
  surrogate : Surrogate.t option;
      (* ranked mode: batches are built task-atomically and permuted
         best-predicted-first (skim truncates them) — see [ranked_batch] *)
  order : int list;        (* tids in runtime-descending order at sweep start *)
  mutable entered : int;   (* tasks entered so far; current = nth order (entered-1) *)
  mutable specs : spec list;  (* remaining specs of the current task *)
  mutable consumed : int;     (* specs consumed (proposed or no-op) in it *)
  mutable pending : int list;
      (* batch mode: per outstanding batch candidate, how many specs its
         verdict consumes (preceding gap no-ops + its own spec); never
         serialized — a batch is rebuilt from [specs] after restore *)
  mutable queue : Mapping.t list;
      (* ranked mode: the rest of the current ranked batch.  Sequential
         ranking proposes from it one candidate at a time; batch ranking
         drains it one [deliver_ranked] per verdict, so after a
         budget-truncated batch it holds exactly the undelivered
         remainder.  [abandon] drops it on an accept.  Serialized by
         [encode] (the permutation depends on the model state *before*
         the batch trained on its own results, so it cannot be rebuilt
         at decode time). *)
  mutable gated : bool;
      (* the current proposal round fell below the batch-size gate and
         runs sequentially: candidates are consumed at proposal time,
         so [deliver_verdict] must not consume them again.  Only
         meaningful alongside a non-empty ranked [queue] (the plain
         path re-decides the gate from the spec count every round), and
         serialized exactly then — a resumed gated ranked remainder
         must keep draining one proposal per step for trial counts to
         match the uninterrupted run. *)
}

let specs_for space (task : Graph.task) =
  List.map (fun (d, s) -> Dist (d, s)) (Space.distribution_choices_for space task.tid)
  @ List.concat_map
      (fun k ->
        List.concat_map
          (fun (c : Graph.collection) ->
            List.map (fun r -> Proc_mem (k, c.cid, r))
              (Space.mem_choices_for space ~cid:c.cid k))
          (Profile.order_args_by_size task))
      (Space.proc_choices space task.tid)

let account ev space (task : Graph.task) =
  let live_kinds = Space.proc_choices space task.tid in
  List.iter
    (fun k ->
      if not (List.memq k live_kinds) then
        Evaluator.note_dead_coords ev
          (List.length task.args * List.length (Space.mem_choices space k)))
    (Space.proc_choices_all space task.tid);
  List.iter
    (fun k ->
      List.iter
        (fun (c : Graph.collection) ->
          let live = Space.mem_choices_for space ~cid:c.cid k in
          let dead = List.length (Space.mem_choices space k) - List.length live in
          if dead > 0 then Evaluator.note_dead_coords ev dead)
        task.args)
    live_kinds

let start ?surrogate ev ~overlap ~profile =
  let g = Evaluator.graph ev in
  let order =
    List.map (fun (t : Graph.task) -> t.tid) (Profile.order_tasks_by_runtime g profile)
  in
  {
    ev;
    overlap;
    surrogate;
    order;
    entered = 0;
    specs = [];
    consumed = 0;
    pending = [];
    queue = [];
    gated = false;
  }

let build t incumbent tid spec =
  let g = Evaluator.graph t.ev in
  let machine = Evaluator.machine t.ev in
  match spec with
  | Dist (d, strat) ->
      Mapping.set_strategy (Mapping.set_distribute incumbent tid d) tid strat
  | Proc_mem (k, cid, r) -> (
      let f' = Mapping.set_mem (Mapping.set_proc incumbent tid k) cid r in
      match t.overlap with
      | None -> f'
      | Some o -> Colocation.apply g machine ~overlap:o ~mapping:f' ~t:tid ~c:cid ~k ~r)

let next_seq t ~incumbent =
  let g = Evaluator.graph t.ev in
  let space = Evaluator.space t.ev in
  let rec go () =
    match t.specs with
    | spec :: rest ->
        t.specs <- rest;
        t.consumed <- t.consumed + 1;
        let tid = List.nth t.order (t.entered - 1) in
        let cand = build t incumbent tid spec in
        if Mapping.equal cand incumbent then begin
          Evaluator.note_noop_neighbor t.ev;
          go ()
        end
        else Some cand
    | [] ->
        if t.entered >= List.length t.order then None
        else begin
          let tid = List.nth t.order t.entered in
          let task = Graph.task g tid in
          t.entered <- t.entered + 1;
          t.consumed <- 0;
          account t.ev space task;
          t.specs <- specs_for space task;
          go ()
        end
  in
  go ()

(* ---- batch mode ---------------------------------------------------------
   [next_batch] returns the current task's remaining non-no-op
   candidates all materialized against one incumbent — without consuming
   their specs — and [deliver] consumes one candidate's specs per
   verdict.  Equivalence with driving [next] one proposal at a time:
   within a batch the incumbent cannot change (the engine stops
   delivering at the first acceptance), so the no-op determination and
   the built candidates are identical; leading no-ops and task entries
   are settled eagerly exactly where a [next] call would have performed
   them; gap no-ops are counted when the preceding candidate's verdict
   arrives (same totals, and no-op counts carry no clock); trailing
   no-ops and unreached specs stay unconsumed for the next batch — or
   are never consumed at all if the budget ends the search first, just
   as a sequential run would never have reached them. *)

let current_tid t = List.nth t.order (t.entered - 1)

(* consume leading no-ops and enter tasks until [t.specs] starts with a
   real candidate or the sweep is complete — the prefix work a [next]
   call would do before returning a candidate *)
let rec settle t ~incumbent =
  match t.specs with
  | spec :: rest ->
      let cand = build t incumbent (current_tid t) spec in
      if Mapping.equal cand incumbent then begin
        t.specs <- rest;
        t.consumed <- t.consumed + 1;
        Evaluator.note_noop_neighbor t.ev;
        settle t ~incumbent
      end
  | [] ->
      if t.entered < List.length t.order then begin
        let g = Evaluator.graph t.ev in
        let space = Evaluator.space t.ev in
        let tid = List.nth t.order t.entered in
        let task = Graph.task g tid in
        t.entered <- t.entered + 1;
        t.consumed <- 0;
        account t.ev space task;
        t.specs <- specs_for space task;
        settle t ~incumbent
      end

let plain_batch t ~incumbent =
  settle t ~incumbent;
  match t.specs with
  | [] -> [||]
  | specs ->
      let tid = current_tid t in
      let cands = ref [] in
      let pending = ref [] in
      let gap = ref 0 in
      List.iter
        (fun spec ->
          let cand = build t incumbent tid spec in
          if Mapping.equal cand incumbent then incr gap
          else begin
            cands := cand :: !cands;
            pending := (!gap + 1) :: !pending;
            gap := 0
          end)
        specs;
      t.pending <- List.rev !pending;
      Array.of_list (List.rev !cands)

(* ---- ranked mode --------------------------------------------------------
   With a surrogate, a batch is the *whole* current task, permuted
   best-predicted-first so the bounded first-improvement short-circuit
   fires as early as the model can arrange.  The task is consumed
   atomically at build time ([deliver] has nothing left to do): spec
   positions are meaningless under a permutation, and an accept
   abandons the rest of the task's candidates — they were built
   against a now-replaced incumbent.  Skim mode additionally truncates
   the permuted batch to the top-K predictions; the dropped candidates
   are counted as surrogate skips, never suggested.

   [next] supports the same ranked order sequentially (one proposal per
   call from an internal queue, [abandon] dropping the queue on an
   accept), so ranked-batched ≡ ranked-sequential is bit-testable the
   same way plain batching is tested against [next_seq]. *)

let ranked_batch t ~incumbent sg =
  settle t ~incumbent;
  match t.specs with
  | [] -> [||]
  | specs ->
      let tid = current_tid t in
      let cands = ref [] in
      List.iter
        (fun spec ->
          let cand = build t incumbent tid spec in
          if Mapping.equal cand incumbent then Evaluator.note_noop_neighbor t.ev
          else cands := cand :: !cands)
        specs;
      t.consumed <- t.consumed + List.length specs;
      t.specs <- [];
      (* settle stops only at a real candidate, so the array is non-empty *)
      let arr = Array.of_list (List.rev !cands) in
      let perm = Surrogate.rank sg arr in
      let ranked = Array.map (fun i -> arr.(i)) perm in
      (match Surrogate.skim_active sg with
      | Some k when k < Array.length ranked ->
          Surrogate.note_skips sg (Array.length ranked - k);
          Array.sub ranked 0 k
      | _ -> ranked)

let next_batch t ~incumbent =
  t.pending <- [];  (* any previous batch's unreached candidates are stale *)
  match t.surrogate with
  | Some sg -> (
      (* a non-empty queue is the undelivered remainder of a ranked
         batch the engine truncated at the trial budget — only a
         resumed run can observe one here.  Propose it in its original
         model order: re-ranking with the since-trained weights would
         diverge from the uninterrupted run. *)
      match t.queue with
      | [] ->
          let arr = ranked_batch t ~incumbent sg in
          t.queue <- Array.to_list arr;
          arr
      | q -> Array.of_list q)
  | None ->
      t.queue <- [];
      plain_batch t ~incumbent

let next t ~incumbent =
  match t.surrogate with
  | None -> next_seq t ~incumbent
  | Some sg -> (
      match t.queue with
      | c :: rest ->
          t.queue <- rest;
          Some c
      | [] ->
          let arr = ranked_batch t ~incumbent sg in
          if Array.length arr = 0 then None
          else begin
            t.queue <- List.tl (Array.to_list arr);
            Some arr.(0)
          end)

let abandon t =
  t.queue <- [];
  t.pending <- [];
  t.gated <- false

let deliver_ranked t =
  match t.queue with
  | _ :: rest -> t.queue <- rest
  | [] -> invalid_arg "Descent.deliver_ranked: no outstanding ranked candidate"

let deliver t =
  match t.pending with
  | [] -> invalid_arg "Descent.deliver: no outstanding batch candidate"
  | c :: rest ->
      t.pending <- rest;
      (* the gap no-ops a sequential [next] would have consumed on its
         way to this candidate *)
      for _ = 2 to c do
        Evaluator.note_noop_neighbor t.ev
      done;
      let rec drop n l =
        if n = 0 then l
        else match l with _ :: r -> drop (n - 1) r | [] -> assert false
      in
      t.specs <- drop c t.specs;
      t.consumed <- t.consumed + c

(* ---- gated batch mode ---------------------------------------------------
   BENCH_searchrate.json showed batching *losing* at smoke sizes
   (geomean 0.981): the per-batch fixed costs (candidate rebuild,
   verdict bookkeeping) only amortize past a minimum batch size.
   [next_gated] keeps the batch representation for rounds of at least
   [min_batch] candidates and falls back to the sequential drive for
   smaller ones.  Decision-identity is free: both representations are
   already proven bit-identical to the sequential drive, and the gate
   itself is a deterministic function of checkpointed cursor state, so
   sliced/resumed runs re-decide it identically. *)

let default_min_batch = 24

let next_gated t ~incumbent ~min_batch =
  match t.surrogate with
  | Some sg -> (
      match t.queue with
      | c :: rest when t.gated ->
          (* mid-round sequential drain of a sub-threshold ranked batch *)
          t.queue <- rest;
          `Seq c
      | _ :: _ ->
          (* undelivered remainder of a truncated ranked batch (resume);
             propose verbatim, original model order — see [next_batch] *)
          `Batch (Array.of_list t.queue)
      | [] ->
          let arr = ranked_batch t ~incumbent sg in
          if Array.length arr = 0 then `Done
          else if Array.length arr >= min_batch then begin
            t.queue <- Array.to_list arr;
            t.gated <- false;
            `Batch arr
          end
          else begin
            t.queue <- List.tl (Array.to_list arr);
            t.gated <- true;
            `Seq arr.(0)
          end)
  | None ->
      t.queue <- [];
      let cands = plain_batch t ~incumbent in
      if Array.length cands = 0 then `Done
      else if Array.length cands >= min_batch then begin
        t.gated <- false;
        `Batch cands
      end
      else begin
        (* below the gate: discard the trial batch (its specs were not
           consumed — [pending] carries them) and drive sequentially;
           [next_seq] rebuilds the same first candidate *)
        t.pending <- [];
        t.gated <- true;
        match next_seq t ~incumbent with
        | Some c -> `Seq c
        | None -> assert false (* plain_batch was non-empty *)
      end

let deliver_verdict t =
  if not t.gated then
    match t.surrogate with
    | Some _ -> deliver_ranked t
    | None -> deliver t

let encode t =
  let base =
    Printf.sprintf "sweep %d %s %d %d" (List.length t.order)
      (String.concat " " (List.map string_of_int t.order))
      t.entered t.consumed
  in
  match t.queue with
  | [] -> base
  | q ->
      Printf.sprintf "%s queue %d %s%s" base (List.length q)
        (String.concat " " (List.map Mapping.canonical_key q))
        (if t.gated then " gated" else "")

let decode ?surrogate ev ~overlap line =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Descent.decode: " ^ m)) fmt in
  match String.split_on_char ' ' line |> List.filter (( <> ) "") with
  | "sweep" :: n :: rest -> (
      match int_of_string_opt n with
      | None -> fail "bad order length"
      | Some n -> (
          if List.length rest < n + 2 then fail "bad field count"
          else
            let cursor = List.filteri (fun i _ -> i < n + 2) rest in
            let tail = List.filteri (fun i _ -> i >= n + 2) rest in
            let ints = List.filter_map int_of_string_opt cursor in
            if List.length ints <> n + 2 then fail "bad integer field"
            else
              let order = List.filteri (fun i _ -> i < n) ints in
              match List.filteri (fun i _ -> i >= n) ints with
              | [ entered; consumed ] ->
                  if entered < 0 || entered > n || consumed < 0 then
                    fail "cursor out of range"
                  else
                    let g = Evaluator.graph ev in
                    let space = Evaluator.space ev in
                    let n_tasks = Graph.n_tasks g in
                    if List.exists (fun tid -> tid < 0 || tid >= n_tasks) order then
                      fail "task id out of range"
                    else
                      let ( let* ) = Result.bind in
                      let* queue, gated =
                        match tail with
                        | [] -> Ok ([], false)
                        | "queue" :: k :: keys -> (
                            let keys, gated =
                              match List.rev keys with
                              | "gated" :: r -> (List.rev r, true)
                              | _ -> (keys, false)
                            in
                            match int_of_string_opt k with
                            | Some k when List.length keys = k && k > 0 ->
                                let ms =
                                  List.filter_map (Mapping.of_canonical_key g) keys
                                in
                                if List.length ms = k then Ok (ms, gated)
                                else fail "unparsable queue key"
                            | _ -> fail "bad queue count")
                        | _ -> fail "bad queue suffix"
                      in
                      let t =
                        {
                          ev;
                          overlap;
                          surrogate;
                          order;
                          entered;
                          specs = [];
                          consumed;
                          pending = [];
                          queue;
                          gated;
                        }
                      in
                      if entered = 0 then
                        if consumed <> 0 then fail "consumed before first task"
                        else Ok t
                      else
                        let tid = List.nth order (entered - 1) in
                        let full = specs_for space (Graph.task g tid) in
                        if consumed > List.length full then fail "consumed too large"
                        else begin
                          (* re-entry: accounting already happened before
                             the checkpoint — do not redo it *)
                          t.specs <- List.filteri (fun i _ -> i >= consumed) full;
                          Ok t
                        end
              | _ -> fail "bad cursor fields"))
  | _ -> fail "not a sweep line"
