type hint = { bound : float option; overhead : float }

let unbounded = { bound = None; overhead = 0.0 }

type step =
  | Propose of Mapping.t * hint
  | Propose_batch of Mapping.t array * hint
  | Phase of string
  | Stop

type ctx = { trials : int; vt : float; best : Mapping.t * float }

type strategy = {
  name : string;
  init : Mapping.t * float -> unit;
  step : ctx -> step;
  receive : Mapping.t -> float -> bool;
  encode : unit -> string list;
}

type event =
  | Eval of { trial : int; mapping : Mapping.t; perf : float; vt : float; accepted : bool }
  | Improve of { trial : int; mapping : Mapping.t; perf : float; vt : float }
  | Phase_change of { name : string }
  | Checkpointed of { trial : int; path : string }

type checkpoint_cfg = { every : int; path : string }

type carry = {
  c_trials : int;
  c_steps : int;
  c_wall : float;
  c_best : Mapping.t * float;
}

type outcome = {
  best : Mapping.t;
  perf : float;
  trials : int;
  steps : int;
  checkpoints_written : int;
}

(* ---- checkpoint envelope ------------------------------------------------ *)

type snapshot = {
  s_algo : string;
  s_fingerprint : string;
  s_trials : int;
  s_steps : int;
  s_wall : float;
  s_best_key : string;
  s_best_perf : float;
  s_strategy : string list;
  s_evaluator : string list;
  s_profiles : string;
  s_surrogate : string list;  (* empty: no surrogate ran (or pre-section envelope) *)
  s_symmetry : string list;   (* empty: no seen-set ran (or pre-section envelope) *)
}

let magic = "automap-checkpoint 1"

(* ---- canonical seen-set -------------------------------------------------
   One entry per orbit-canonical mapping key.  An entry [(v, be)] means
   the canonical representative was evaluated under bound [be]
   (infinity when unbounded):

   - [v < be]: the evaluation completed, [v] is the exact value;
   - [v >= be]: the evaluation was cut, [v] only certifies "no better
     than [be]".

   A candidate proposed under bound [b] is answered from the memo only
   when the entry certifies rejection — exact with [v >= b], or cut
   with [b <= be].  A twin whose memoized value could win (or whose
   cut certificate is too weak for the current bound) evaluates
   normally, so skips never substitute a twin's value for an
   acceptance: twins share the noise-free static cost bit-for-bit, but
   the simulated makespan can differ by dispatch tie order, and the
   engine's best must only ever point at truly evaluated mappings. *)

type seen = {
  canon : Mapping.t -> Mapping.t;
  tbl : (string, float * float) Hashtbl.t;
}

let seen_create canon = { canon; tbl = Hashtbl.create 256 }
let seen_size sn = Hashtbl.length sn.tbl
let seen_key sn m = Mapping.canonical_key (sn.canon m)

let seen_record sn key v be =
  match Hashtbl.find_opt sn.tbl key with
  | Some (v0, be0) when v0 < be0 -> ()            (* exact entry: keep *)
  | Some (_, be0) when v >= be && be <= be0 -> () (* no stronger a cut *)
  | _ -> Hashtbl.replace sn.tbl key (v, be)

let seen_skippable sn key b =
  match Hashtbl.find_opt sn.tbl key with
  | Some (v, be) when (if v < be then v >= b else b <= be) -> Some v
  | _ -> None

let seen_save sn =
  Hashtbl.fold
    (fun k (v, be) acc -> Printf.sprintf "%s %h %h" k v be :: acc)
    sn.tbl []
  |> List.sort compare

let seen_restore sn lines =
  let err = Error "Engine.seen_restore: bad seen line" in
  List.fold_left
    (fun acc l ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          match String.split_on_char ' ' l |> List.filter (( <> ) "") with
          | [ k; v; be ] -> (
              match (float_of_string_opt v, float_of_string_opt be) with
              | Some v, Some be ->
                  Hashtbl.replace sn.tbl k (v, be);
                  Ok ()
              | _ -> err)
          | _ -> err))
    (Ok ()) lines

let checkpoint_string ?surrogate ?seen ev strat ~trials ~steps ~wall ~best =
  let bm, bp = best in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let section name lines =
    line "%s %d" name (List.length lines);
    List.iter (fun l -> line "%s" l) lines
  in
  line "%s" magic;
  line "algo %s" strat.name;
  line "fingerprint %s" (Evaluator.fingerprint ev);
  line "engine %d %d %h" trials steps wall;
  line "best %h %s" bp (Mapping.canonical_key bm);
  section "strategy" (strat.encode ());
  section "evaluator" (Evaluator.save_state ev);
  section "profiles"
    (String.split_on_char '\n' (Profiles_db.save (Evaluator.db ev))
    |> List.filter (( <> ) ""));
  (* optional trailing sections: absent when no surrogate/seen-set ran,
     so plain checkpoints stay byte-compatible with readers and writers
     that predate them *)
  (match surrogate with
  | None -> ()
  | Some sg -> section "surrogate" (Surrogate.save sg));
  (match seen with
  | None -> ()
  | Some sn -> section "symmetry" (seen_save sn));
  line "end";
  Buffer.contents buf

let snapshot_of_string s =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Engine.snapshot_of_string: " ^ m)) fmt in
  let lines = String.split_on_char '\n' s in
  (* a trailing newline yields one empty trailing element; drop blanks at
     the end only — blob lines themselves are never empty *)
  let rec drop_trailing = function
    | [ "" ] -> []
    | [] -> []
    | l :: rest -> l :: drop_trailing rest
  in
  let lines = drop_trailing lines in
  let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  let int_of s = int_of_string_opt s in
  let float_of s = float_of_string_opt s in
  let take_section tag = function
    | l :: rest -> (
        match words l with
        | [ w; n ] when w = tag -> (
            match int_of n with
            | Some n when n >= 0 && n <= List.length rest ->
                let rec split k acc rest =
                  if k = 0 then Ok (List.rev acc, rest)
                  else match rest with
                    | l :: rest -> split (k - 1) (l :: acc) rest
                    | [] -> fail "truncated %s section" tag
                in
                split n [] rest
            | _ -> fail "bad %s count" tag)
        | _ -> fail "expected %s section" tag)
    | [] -> fail "missing %s section" tag
  in
  match lines with
  | m :: algo :: fp :: engine :: best :: rest when m = magic -> (
      let ( let* ) = Result.bind in
      let* s_algo =
        match words algo with [ "algo"; a ] -> Ok a | _ -> fail "bad algo line"
      in
      let* s_fingerprint =
        match String.index_opt fp ' ' with
        | Some i when String.sub fp 0 i = "fingerprint" ->
            Ok (String.sub fp (i + 1) (String.length fp - i - 1))
        | _ -> fail "bad fingerprint line"
      in
      let* s_trials, s_steps, s_wall =
        match words engine with
        | [ "engine"; t; st; w ] -> (
            match (int_of t, int_of st, float_of w) with
            | Some t, Some st, Some w -> Ok (t, st, w)
            | _ -> fail "bad engine line")
        | _ -> fail "bad engine line"
      in
      let* s_best_perf, s_best_key =
        match words best with
        | [ "best"; p; k ] -> (
            match float_of p with Some p -> Ok (p, k) | None -> fail "bad best perf")
        | _ -> fail "bad best line"
      in
      let* s_strategy, rest = take_section "strategy" rest in
      let* s_evaluator, rest = take_section "evaluator" rest in
      let* s_profiles_lines, rest = take_section "profiles" rest in
      (* optional sections, recognized by their header word *)
      let take_optional tag rest =
        match rest with
        | l :: _ when (match words l with [ w; _ ] -> w = tag | _ -> false) ->
            take_section tag rest
        | _ -> Ok ([], rest)
      in
      let* s_surrogate, rest = take_optional "surrogate" rest in
      let* s_symmetry, rest = take_optional "symmetry" rest in
      match rest with
      | [ "end" ] ->
          Ok
            {
              s_algo;
              s_fingerprint;
              s_trials;
              s_steps;
              s_wall;
              s_best_key;
              s_best_perf;
              s_strategy;
              s_evaluator;
              s_profiles = String.concat "\n" s_profiles_lines;
              s_surrogate;
              s_symmetry;
            }
      | _ -> fail "missing end marker")
  | _ -> fail "bad magic"

let write_file path contents =
  (* atomic-enough: never leave a half-written checkpoint under [path] *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let load_snapshot path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error ("Engine.load_snapshot: " ^ e)
  | s -> snapshot_of_string s

(* ---- the one trial loop ------------------------------------------------- *)

let run ?(budget = Budget.unlimited) ?(on_event = fun _ -> ()) ?checkpoint ?carry
    ?surrogate ?seen ~start ev strat =
  (match checkpoint with
  | Some { every; _ } when every <= 0 ->
      invalid_arg "Engine.run: checkpoint interval must be positive"
  | _ -> ());
  (* the surrogate trains from the event bus: every exact evaluation is
     one SGD observation, every accepted mapping the new diff reference
     — all strategies and algorithms feed it for free *)
  let on_event =
    match surrogate with
    | None -> on_event
    | Some sg ->
        fun e ->
          (match e with
          | Eval { mapping; perf; accepted; _ } ->
              Surrogate.observe sg mapping perf;
              if accepted then Surrogate.note_incumbent sg mapping
          | _ -> ());
          on_event e
  in
  let t0 = Unix.gettimeofday () in
  let trials = ref 0 in
  let steps = ref 0 in
  let checkpoints = ref 0 in
  let wall0 = ref 0.0 in
  let best = ref (start, infinity) in
  let record_seen key v be =
    match (seen, key) with
    | Some sn, Some k -> seen_record sn k v be
    | _ -> ()
  in
  (match carry with
  | None ->
      (* the start point is trial 1: evaluated unbounded and pinned as
         the first incumbent, exactly as every legacy loop opened *)
      let p0 = Evaluator.evaluate ev start in
      record_seen (Option.map (fun sn -> seen_key sn start) seen) p0 infinity;
      Evaluator.note_incumbent ev start;
      strat.init (start, p0);
      best := (start, p0);
      trials := 1;
      let vt = Evaluator.virtual_time ev in
      on_event (Eval { trial = 1; mapping = start; perf = p0; vt; accepted = true });
      on_event (Improve { trial = 1; mapping = start; perf = p0; vt })
  | Some c ->
      (* resumed run: the evaluator and strategy were restored by the
         caller; no start evaluation, no init *)
      trials := c.c_trials;
      steps := c.c_steps;
      wall0 := c.c_wall;
      best := c.c_best);
  let wall () = !wall0 +. (Unix.gettimeofday () -. t0) in
  let maybe_checkpoint () =
    match checkpoint with
    | Some { every; path } when !trials mod every = 0 ->
        write_file path
          (checkpoint_string ?surrogate ?seen ev strat ~trials:!trials
             ~steps:!steps ~wall:(wall ()) ~best:!best);
        incr checkpoints;
        on_event (Checkpointed { trial = !trials; path })
    | _ -> ()
  in
  let exhausted () =
    Budget.exhausted budget ~trials:!trials ~vt:(Evaluator.virtual_time ev)
      ~wall:(wall ())
  in
  let stop = ref false in
  while not (!stop || exhausted ()) do
    incr steps;
    match strat.step { trials = !trials; vt = Evaluator.virtual_time ev; best = !best } with
    | Stop -> stop := true
    | Phase name -> on_event (Phase_change { name })
    | Propose (candidate, hint) -> (
        let key = Option.map (fun sn -> seen_key sn candidate) seen in
        let memo =
          match (seen, key, hint.bound) with
          | Some sn, Some k, Some b -> seen_skippable sn k b
          | _ -> None
        in
        match memo with
        | Some v ->
            (* a symmetric twin's recorded value certifies rejection at
               this bound: answer from the memo — no evaluation, no
               trial, no event, no clock charge.  [receive] is expected
               to reject (v >= bound); a strategy that still accepts
               (e.g. a Metropolis draw) gets its incumbent pinned, but
               the engine's best never moves on a memoized value. *)
            Evaluator.note_symmetry_skip ev;
            if strat.receive candidate v then Evaluator.note_incumbent ev candidate
        | None ->
            if hint.overhead > 0.0 then Evaluator.note_suggestion_overhead ev hint.overhead;
            let perf = Evaluator.evaluate ?bound:hint.bound ev candidate in
            record_seen key perf
              (match hint.bound with Some b -> b | None -> infinity);
            incr trials;
            let accepted = strat.receive candidate perf in
            if accepted then Evaluator.note_incumbent ev candidate;
            let vt = Evaluator.virtual_time ev in
            let improved = perf < snd !best in
            if improved then best := (candidate, perf);
            on_event (Eval { trial = !trials; mapping = candidate; perf; vt; accepted });
            if improved then on_event (Improve { trial = !trials; mapping = candidate; perf; vt });
            maybe_checkpoint ())
    | Propose_batch (cands, hint) -> (
        let before = !trials in
        (* Verdict delivery in original order — the trial counter,
           receive sequence, incumbent pinning and events match the
           sequential loop exactly; returns whether the strategy
           accepted (the batch contract: it accepts exactly when
           perf < hint bound, so everything past an acceptance was
           skipped or rolled back by the evaluator). *)
        let deliver candidate perf =
          incr trials;
          let accepted = strat.receive candidate perf in
          if accepted then Evaluator.note_incumbent ev candidate;
          let vt = Evaluator.virtual_time ev in
          let improved = perf < snd !best in
          if improved then best := (candidate, perf);
          on_event (Eval { trial = !trials; mapping = candidate; perf; vt; accepted });
          if improved then
            on_event (Improve { trial = !trials; mapping = candidate; perf; vt });
          accepted
        in
        (* at most one checkpoint per batch, at the first interval
           boundary the batch crossed — mid-batch writes would pair a
           mid-batch trial count with post-batch evaluator state *)
        let batch_checkpoint () =
          match checkpoint with
          | Some { every; path } when !trials / every > before / every ->
              write_file path
                (checkpoint_string ?surrogate ?seen ev strat ~trials:!trials
                   ~steps:!steps ~wall:(wall ()) ~best:!best);
              incr checkpoints;
              on_event (Checkpointed { trial = !trials; path })
          | _ -> ()
        in
        match (seen, hint.bound) with
        | Some sn, Some b ->
            (* Memo-interleaved delivery: skippable candidates are
               answered inline from the seen-set (no trial, no clock
               charge), maximal runs of the rest are batch-evaluated.
               Stops at the first acceptance, and never evaluates past
               the trial cap: the sequential loop would have stopped
               there, and extra evaluations would leak into the
               db/partials/clocks and change later decisions. *)
            let n = Array.length cands in
            let keys = Array.map (fun c -> seen_key sn c) cands in
            let cap_left () =
              match budget.Budget.max_trials with
              | Some cap -> cap - !trials
              | None -> max_int
            in
            let stop_batch = ref false in
            let i = ref 0 in
            while (not !stop_batch) && !i < n && cap_left () > 0 do
              match seen_skippable sn keys.(!i) b with
              | Some v ->
                  Evaluator.note_symmetry_skip ev;
                  if strat.receive cands.(!i) v then begin
                    Evaluator.note_incumbent ev cands.(!i);
                    stop_batch := true
                  end;
                  incr i
              | None ->
                  let j = ref (!i + 1) in
                  while !j < n && seen_skippable sn keys.(!j) b = None do
                    incr j
                  done;
                  let seg_len = min (!j - !i) (cap_left ()) in
                  let seg = Array.sub cands !i seg_len in
                  let outcomes =
                    Evaluator.evaluate_batch ~bound:b ~overhead:hint.overhead ev
                      seg
                  in
                  (try
                     for k = 0 to seg_len - 1 do
                       match outcomes.(k) with
                       | Evaluator.Skipped -> raise Exit
                       | Evaluator.Evaluated perf ->
                           seen_record sn keys.(!i + k) perf b;
                           if deliver seg.(k) perf then raise Exit
                     done
                   with Exit -> stop_batch := true);
                  i := !i + seg_len
            done;
            batch_checkpoint ()
        | _ ->
            (* Never evaluate past the trial cap (see above). *)
            let cands =
              match budget.Budget.max_trials with
              | Some cap when Array.length cands > cap - !trials ->
                  Array.sub cands 0 (max 0 (cap - !trials))
              | _ -> cands
            in
            if Array.length cands > 0 then begin
              let keys =
                Option.map
                  (fun sn -> Array.map (fun c -> seen_key sn c) cands)
                  seen
              in
              let outcomes =
                Evaluator.evaluate_batch ?bound:hint.bound ~overhead:hint.overhead
                  ev cands
              in
              (try
                 for i = 0 to Array.length cands - 1 do
                   match outcomes.(i) with
                   | Evaluator.Skipped -> raise Exit
                   | Evaluator.Evaluated perf ->
                       (match (seen, keys) with
                       | Some sn, Some ks ->
                           seen_record sn ks.(i) perf
                             (match hint.bound with Some b -> b | None -> infinity)
                       | _ -> ());
                       if deliver cands.(i) perf then raise Exit
                 done
               with Exit -> ());
              batch_checkpoint ()
            end)
  done;
  let bm, bp = !best in
  {
    best = bm;
    perf = bp;
    trials = !trials;
    steps = !steps;
    checkpoints_written = !checkpoints;
  }
