(* A cutoff-aborted evaluation: enough to (a) answer a later
   re-suggestion without re-proving the bound when the incumbent has
   only improved, and (b) finish the protocol with the original per-run
   seeds — reproducing the unpruned measurements bit-for-bit — when the
   incumbent has worsened past the proven lower bound. *)
type partial = {
  pbase : int;                (* seed base: run k (1-based) uses pbase + k *)
  mutable pdone : float list; (* objectives of completed runs, newest first *)
  mutable psum : float;       (* chronological sum of pdone *)
  mutable pnext : int;        (* 1-based index of the first incomplete run *)
  mutable plb : float;        (* proven lower bound on the final mean *)
}

type t = {
  machine : Machine.t;
  graph : Graph.t;
  scratch : Exec.scratch;  (* compiled problem + reusable simulation state *)
  space : Space.t;
  runs : int;
  noise_sigma : float;
  fallback : bool;
  iterations : int option;
  eff_iters : int;         (* [iterations] resolved against the graph *)
  penalty : float;
  eval_overhead : float;
  objective : Machine.t -> Exec.result -> float;
  prune : bool;
  symmetry : bool;   (* effective flags, as applied to [space] *)
  dominance : bool;
  db : Profiles_db.t;
  partials : (string, partial) Hashtbl.t;
  (* Common random numbers: run k of *every* evaluation uses seed
     [crn_base + k], so all candidates face identical noise streams.
     Comparisons between candidates become paired (lower variance than
     independent draws), and — decisively for throughput — the noise
     streams and committed timelines Exec caches per seed are reusable
     across the whole search, which is what enables incremental cone
     replay and once-per-seed noise draws. *)
  crn_base : int;
  mutable seed_counter : int;  (* post-evaluation window, for [measure] *)
  mutable suggested : int;
  mutable evaluated : int;
  mutable cache_hits : int;
  mutable invalid : int;
  mutable oom : int;
  mutable cut_evals : int;
  mutable cut_runs : int;
  mutable cut_sims : int;
  mutable noop_skips : int;
  mutable dead_coord_skips : int;
  mutable symmetry_skips : int;
  mutable batch_calls : int;
  mutable batch_short_circuits : int;
  (* Serve-daemon cache telemetry.  The evaluator doesn't own the
     caches (the server does); it is the one stats carrier every
     report already reads, so the server notes hits/misses here.
     [compile_cache_*] also count locally: create-with-[?scratch] is
     by definition a compile reuse.  Never serialized ([save_state]) —
     cache history is observability, not decision state. *)
  mutable compile_cache_hits : int;
  mutable compile_cache_misses : int;
  mutable result_cache_hits : int;
  mutable warm_starts : int;
  mutable cache_evictions : int;
  mutable cache_resident_bytes : int;
  mutable virtual_time : float;
  mutable eval_time : float;
  mutable best : (Mapping.t * float) option;
  mutable trace : (float * float) list;  (* newest first *)
  (* Deferred-commit cell.  Every [evaluate] path applies at most ONE
     clock charge and at most one best-note; with [defer] set (batch
     mode) the charge is parked here instead of applied, so
     [evaluate_batch] can evaluate in locality order and replay the
     charges in original candidate order — the clocks, the best, and
     the trace then match a sequential caller bit for bit. *)
  mutable defer : bool;
  mutable d_kind : int;   (* 0 none | 1 wall | 2 wall+overhead | 3 overhead *)
  mutable d_wall : float;
  mutable d_noted : bool;
  mutable d_perf : float;
  mutable surrogate : Surrogate.t option;
      (* telemetry attach only — the model is trained by the engine and
         consulted by the strategies; [stats] reads its counters here *)
}

type stats = {
  s_suggested : int;
  s_evaluated : int;
  s_cache_hits : int;
  s_invalid : int;
  s_oom : int;
  s_cut_evals : int;
  s_cut_runs : int;
  s_cut_sims : int;
  s_noop_skips : int;
  s_dead_coord_skips : int;
  s_symmetry_skips : int;
  s_batch_calls : int;
  s_batch_short_circuits : int;
  s_compile_cache_hits : int;
  s_compile_cache_misses : int;
  s_result_cache_hits : int;
  s_warm_starts : int;
  s_cache_evictions : int;
  s_cache_resident_bytes : int;
  s_delta_binds : int;
  s_full_binds : int;
  s_bind_hits_shared : int;
  s_bind_hits_private : int;
  s_cone_replays : int;
  s_cone_instances : int;
  s_full_replays : int;
  s_timeline_bytes : int;
  s_surrogate_trained : int;
  s_surrogate_reranks : int;
  s_surrogate_skips : int;
  s_spearman : float;
}

let default_objective _machine (r : Exec.result) = r.Exec.per_iteration

let create ?(runs = 7) ?(noise_sigma = 0.03) ?(fallback = false) ?iterations
    ?(penalty = infinity) ?(seed = 0) ?(eval_overhead = 0.0002)
    ?(objective = default_objective) ?(extended = false) ?(prune = true)
    ?(incremental = true) ?(domain_prune = true) ?(symmetry = false)
    ?(dominance = false) ?db ?scratch machine graph =
  if runs <= 0 then invalid_arg "Evaluator.create: runs must be positive";
  (* dominance certificates build on the capacity domains and, like
     them, are proved against strict placement only *)
  let dominance = dominance && domain_prune && not fallback in
  let shared_compile = scratch <> None in
  let scratch =
    match scratch with
    | Some sc -> sc  (* shared compiled problem, e.g. portfolio members *)
    | None -> Exec.scratch (Exec.compile machine graph)
  in
  Exec.set_incremental scratch incremental;
  {
    machine;
    graph;
    scratch;
    (* Domain certificates are proved against *strict* placement;
       fallback mode can demote an over-capacity instance into another
       kind and succeed, so domains only restrict the space when
       fallback is off. *)
    space =
      Space.make ~extended ~domains:(domain_prune && not fallback) ~dominance
        ~symmetry graph machine;
    runs;
    noise_sigma;
    fallback;
    iterations;
    eff_iters = (match iterations with Some i -> i | None -> graph.Graph.iterations);
    penalty;
    eval_overhead;
    objective;
    prune;
    symmetry;
    dominance;
    db = (match db with Some db -> db | None -> Profiles_db.create ());
    partials = Hashtbl.create 64;
    crn_base = seed * 1_000_003;
    (* [measure]'s ad-hoc runs draw from a window disjoint from the
       evaluation seeds so they never perturb or reuse the CRN streams *)
    seed_counter = (seed * 1_000_003) + runs;
    suggested = 0;
    evaluated = 0;
    cache_hits = 0;
    invalid = 0;
    oom = 0;
    cut_evals = 0;
    cut_runs = 0;
    cut_sims = 0;
    noop_skips = 0;
    dead_coord_skips = 0;
    symmetry_skips = 0;
    batch_calls = 0;
    batch_short_circuits = 0;
    compile_cache_hits = (if shared_compile then 1 else 0);
    compile_cache_misses = (if shared_compile then 0 else 1);
    result_cache_hits = 0;
    warm_starts = 0;
    cache_evictions = 0;
    cache_resident_bytes = 0;
    virtual_time = 0.0;
    eval_time = 0.0;
    best = None;
    trace = [];
    defer = false;
    d_kind = 0;
    d_wall = 0.0;
    d_noted = false;
    d_perf = 0.0;
    surrogate = None;
  }

let machine t = t.machine
let graph t = t.graph
let space t = t.space
let db t = t.db

let next_seed t =
  t.seed_counter <- t.seed_counter + 1;
  t.seed_counter

let run_once t ?iterations mapping =
  let iterations = match iterations with Some _ as i -> i | None -> t.iterations in
  Exec.simulate ~noise_sigma:t.noise_sigma ~seed:(next_seed t) ~fallback:t.fallback
    ?iterations t.scratch mapping

let note_best t mapping perf =
  match t.best with
  | Some (_, p) when p <= perf -> ()
  | _ ->
      t.best <- Some (mapping, perf);
      t.trace <- (t.virtual_time, perf) :: t.trace

(* Conservative slack on the pruning comparisons: the incremental
   chronological sum and the final [Stats.mean] fold accumulate the
   same runs in different orders, so they can differ by a few ulps.
   Pruning must only ever under-prune (a candidate the unpruned
   protocol would keep must never be cut), so every "provably >= bound"
   test requires clearing bound * (1 + 1e-9) — about seven orders of
   magnitude more slack than the worst-case rounding skew, and seven
   fewer than any perf difference the search could act on. *)
let prune_slack = 1.0 +. 1e-9

(* The hot-path simulation call: status code + plane accessors instead
   of allocated result records.  In the search's steady state a quiet
   run allocates nothing (see Exec's quiet interface). *)
let quiet_run t ~cutoff ~seed mapping =
  Exec.simulate_quiet t.scratch mapping ~noise_sigma:t.noise_sigma ~seed
    ~fallback:t.fallback ~iterations:t.eff_iters ~cutoff

(* Objective of the run that just finished on the scratch planes.  The
   default objective reads one plane slot; a custom objective gets the
   materialized record it expects (allocating — custom objectives are
   the cold case). *)
let obj_of_run t =
  if t.objective == default_objective then Exec.quiet_per_iteration t.scratch
  else t.objective t.machine (Exec.quiet_result t.scratch)

let quiet_error_exn t =
  match Exec.quiet_error t.scratch with Some e -> e | None -> assert false

let effective_iterations t = float_of_int t.eff_iters

(* ---- the single per-evaluation clock charge, routed through the
   deferral cell in batch mode.  Associativity is preserved exactly:
   sequential and replayed commits perform the same adds in the same
   order on the same running clock. ---- *)

let charge_wall t w =
  if t.defer then begin
    t.d_kind <- 1;
    t.d_wall <- w
  end
  else begin
    t.virtual_time <- t.virtual_time +. w;
    t.eval_time <- t.eval_time +. w
  end

let charge_complete t w =
  if t.defer then begin
    t.d_kind <- 2;
    t.d_wall <- w
  end
  else begin
    t.virtual_time <- t.virtual_time +. w +. t.eval_overhead;
    t.eval_time <- t.eval_time +. w
  end

let charge_overhead_only t =
  if t.defer then t.d_kind <- 3
  else t.virtual_time <- t.virtual_time +. t.eval_overhead

let note_result t mapping perf =
  if t.defer then begin
    t.d_noted <- true;
    t.d_perf <- perf
  end
  else note_best t mapping perf

let complete_protocol t ~key mapping times wall =
  t.evaluated <- t.evaluated + 1;
  charge_complete t wall;
  let entry = Profiles_db.record_key t.db ~key mapping times in
  note_result t mapping entry.Profiles_db.perf;
  entry.Profiles_db.perf

(* [evaluate] with the canonical key already computed: the key serves
   the db probe, the partials table and batch rollback, so it is
   derived exactly once per suggestion. *)
let eval_keyed ?bound t key mapping =
  t.suggested <- t.suggested + 1;
  match Profiles_db.find_key t.db key with
  | Some entry ->
      t.cache_hits <- t.cache_hits + 1;
      entry.Profiles_db.perf
  | None -> (
      (* Pruning is exact only for the default objective: the clock is
         a lower bound on the makespan, hence on per-iteration time,
         but not on an arbitrary objective (e.g. energy). *)
      let bound_v =
        match bound with
        | Some b when t.prune && Float.is_finite b && t.objective == default_objective
          ->
            b
        | _ -> infinity
      in
      let runs_f = float_of_int t.runs in
      let iters = effective_iterations t in
      (* Run k may stop once it alone pushes the final mean to the
         bound even if every remaining run took zero time:
         (sum_done + clock/iters) / runs >= bound. *)
      let cutoff_for sum_done =
        if bound_v = infinity then infinity
        else ((bound_v *. prune_slack *. runs_f) -. sum_done) *. iters
      in
      (* Any value >= bound is decision-equivalent for the caller: the
         candidate provably cannot be accepted at this bound. *)
      let pruned_value () = Float.max t.penalty bound_v in
      match Hashtbl.find_opt t.partials key with
      | Some p ->
          if p.plb >= bound_v *. prune_slack then begin
            (* still provably no better than the incumbent *)
            t.cut_evals <- t.cut_evals + 1;
            pruned_value ()
          end
          else begin
            (* The incumbent worsened below this candidate's proven
               lower bound: finish the protocol with the originally
               assigned seeds, reproducing what the unpruned evaluation
               would have measured. *)
            t.cut_runs <- t.cut_runs - (t.runs - p.pnext);
            let new_wall = ref 0.0 in
            let rec go () =
              if p.pnext > t.runs then begin
                Hashtbl.remove t.partials key;
                t.evaluated <- t.evaluated + 1;
                charge_complete t !new_wall;
                let entry = Profiles_db.record_key t.db ~key mapping p.pdone in
                note_result t mapping entry.Profiles_db.perf;
                entry.Profiles_db.perf
              end
              else begin
                let st =
                  quiet_run t ~cutoff:(cutoff_for p.psum) ~seed:(p.pbase + p.pnext)
                    mapping
                in
                if st = Exec.st_finished then begin
                  let obj = obj_of_run t in
                  p.pdone <- obj :: p.pdone;
                  p.psum <- p.psum +. obj;
                  p.pnext <- p.pnext + 1;
                  new_wall := !new_wall +. Exec.quiet_makespan t.scratch;
                  go ()
                end
                else if st = Exec.st_cut then begin
                  let tcut = Exec.quiet_cut_time t.scratch in
                  t.cut_sims <- t.cut_sims + 1;
                  t.cut_evals <- t.cut_evals + 1;
                  t.cut_runs <- t.cut_runs + (t.runs - p.pnext);
                  p.plb <- (p.psum +. (tcut /. iters)) /. runs_f;
                  charge_wall t (!new_wall +. tcut);
                  pruned_value ()
                end
                else
                  failwith
                    ("Evaluator.evaluate: " ^ Placement.error_to_string (quiet_error_exn t))
              end
            in
            go ()
          end
      | None -> (
          match Mapping.validate t.graph t.machine mapping with
          | Error _ ->
              t.invalid <- t.invalid + 1;
              t.penalty
          | Ok () when bound_v < infinity -> (
              let base = t.crn_base in
              (* Certified per-run lower bounds: before any event loop,
                 each run's objective is bounded below by its busiest
                 processor's total work under that run's own noise
                 draws (Exec.run_lower_bound).  With lb_j certified for
                 every run, the protocol can stop before run k whenever
                 sum_done + Σ_{j>=k} lb_j already clears the bound, and
                 run k's cutoff tightens from "remaining runs take zero
                 time" to "remaining runs take at least their lower
                 bounds" — both tests only ever under-prune, so
                 decisions still match the unpruned protocol exactly.
                 The first lower-bound call resolves the placement, so
                 OOM detection is preserved even when the whole
                 evaluation prunes without simulating. *)
              match
                Exec.static_lower_bound ~fallback:t.fallback ?iterations:t.iterations
                  t.scratch mapping
              with
              | Error (Placement.Out_of_memory _) ->
                  t.oom <- t.oom + 1;
                  charge_overhead_only t;
                  t.penalty
              | Error (Placement.Invalid_mapping _) ->
                  t.invalid <- t.invalid + 1;
                  t.penalty
              | Ok s_makespan ->
                  (* the noise-independent floor holds for every run *)
                  let s = s_makespan /. iters in
                  let threshold = bound_v *. prune_slack *. runs_f in
                  let results = ref [] in (* objectives, newest first *)
                  let sum = ref 0.0 in
                  let wall = ref 0.0 in
                  let prune_with ~k ~plb =
                    (* provably no better than the incumbent before
                       even starting run k: no simulation aborted, so
                       this counts cut runs but no cut sim *)
                    t.cut_evals <- t.cut_evals + 1;
                    t.cut_runs <- t.cut_runs + (t.runs - k + 1);
                    Hashtbl.replace t.partials key
                      { pbase = base; pdone = !results; psum = !sum; pnext = k; plb };
                    charge_wall t !wall;
                    pruned_value ()
                  in
                  if s *. runs_f >= threshold then
                    (* certified by the noise-free floor alone: no
                       noise draws, no event loop *)
                    prune_with ~k:1 ~plb:s
                  else begin
                  (* Per-run bounds from each run's own noise draws,
                     computed in seed order with an early stop: once
                     the bounded prefix plus the static floor for the
                     rest clears the threshold, the remaining draws are
                     unnecessary — the evaluation is already cut. *)
                  let lb = Array.make (t.runs + 1) 0.0 in
                  let lbsum = ref 0.0 in
                  let m = ref 0 in
                  let early =
                    try
                      for j = 1 to t.runs do
                        (match
                           Exec.run_lower_bound ~noise_sigma:t.noise_sigma
                             ~seed:(base + j) ~fallback:t.fallback
                             ?iterations:t.iterations t.scratch mapping
                         with
                        | Ok l -> lb.(j) <- l /. iters
                        | Error _ ->
                            (* placement is deterministic: the static
                               floor resolved, so these cannot fail *)
                            assert false);
                        lbsum := !lbsum +. lb.(j);
                        m := j;
                        if !lbsum +. (float_of_int (t.runs - j) *. s) >= threshold then
                          raise Exit
                      done;
                      false
                    with Exit -> true
                  in
                  if early then
                    prune_with ~k:1
                      ~plb:((!lbsum +. (float_of_int (t.runs - !m) *. s)) /. runs_f)
                  else begin
                  (* suffix.(k) = sum of lb_j for j > k *)
                  let suffix = Array.make (t.runs + 1) 0.0 in
                  for j = t.runs - 1 downto 0 do
                    suffix.(j) <- suffix.(j + 1) +. lb.(j + 1)
                  done;
                  let prune_at k = prune_with ~k ~plb:((!sum +. suffix.(k - 1)) /. runs_f) in
                  let rec go k =
                    if k > t.runs then complete_protocol t ~key mapping !results !wall
                    else if !sum +. suffix.(k - 1) >= threshold then prune_at k
                    else begin
                      let cutoff = (threshold -. !sum -. suffix.(k)) *. iters in
                      let st = quiet_run t ~cutoff ~seed:(base + k) mapping in
                      if st = Exec.st_finished then begin
                        let obj = obj_of_run t in
                        results := obj :: !results;
                        sum := !sum +. obj;
                        wall := !wall +. Exec.quiet_makespan t.scratch;
                        go (k + 1)
                      end
                      else if st = Exec.st_cut then begin
                        let tcut = Exec.quiet_cut_time t.scratch in
                        t.cut_sims <- t.cut_sims + 1;
                        t.cut_evals <- t.cut_evals + 1;
                        t.cut_runs <- t.cut_runs + (t.runs - k);
                        Hashtbl.replace t.partials key
                          {
                            pbase = base;
                            pdone = !results;
                            psum = !sum;
                            pnext = k;
                            plb = (!sum +. (tcut /. iters) +. suffix.(k)) /. runs_f;
                          };
                        charge_wall t (!wall +. tcut);
                        pruned_value ()
                      end
                      else
                        failwith
                          ("Evaluator.evaluate: "
                          ^ Placement.error_to_string (quiet_error_exn t))
                    end
                  in
                  go 1
                  end
                  end)
          | Ok () -> (
              let base = t.crn_base in
              (* First run decides whether the mapping can be placed at
                 all; an OOM aborts the evaluation after one cheap
                 failed launch.  The cutoff only gates the event loop,
                 so OOM/invalid detection is unaffected by pruning. *)
              let st0 = quiet_run t ~cutoff:(cutoff_for 0.0) ~seed:(base + 1) mapping in
              if st0 = Exec.st_error then (
                match quiet_error_exn t with
                | Placement.Out_of_memory _ ->
                    t.oom <- t.oom + 1;
                    charge_overhead_only t;
                    t.penalty
                | Placement.Invalid_mapping _ ->
                    t.invalid <- t.invalid + 1;
                    t.penalty)
              else begin
                (* objectives and walls, both newest first: the final
                   clock charge folds the walls newest-first exactly as
                   the record-based protocol did *)
                let objs = ref [] in
                let walls = ref [] in
                let sum = ref 0.0 in
                let cut = ref false in
                let tcut = ref 0.0 in
                let accept () =
                  let obj = obj_of_run t in
                  objs := obj :: !objs;
                  walls := Exec.quiet_makespan t.scratch :: !walls;
                  sum := !sum +. obj
                in
                if st0 = Exec.st_finished then accept ()
                else begin
                  cut := true;
                  tcut := Exec.quiet_cut_time t.scratch
                end;
                let k = ref 1 in
                while (not !cut) && !k < t.runs do
                  incr k;
                  let st = quiet_run t ~cutoff:(cutoff_for !sum) ~seed:(base + !k) mapping in
                  if st = Exec.st_finished then accept ()
                  else if st = Exec.st_cut then begin
                    cut := true;
                    tcut := Exec.quiet_cut_time t.scratch
                  end
                  else
                    (* placement is deterministic: later runs cannot
                       fail if the first succeeded *)
                    failwith
                      ("Evaluator.evaluate: "
                      ^ Placement.error_to_string (quiet_error_exn t))
                done;
                if not !cut then begin
                  let wall = List.fold_left ( +. ) 0.0 !walls in
                  complete_protocol t ~key mapping !objs wall
                end
                else begin
                  t.cut_sims <- t.cut_sims + 1;
                  t.cut_evals <- t.cut_evals + 1;
                  t.cut_runs <- t.cut_runs + (t.runs - !k);
                  Hashtbl.replace t.partials key
                    {
                      pbase = base;
                      pdone = !objs;
                      psum = !sum;
                      pnext = !k;
                      plb = (!sum +. (!tcut /. iters)) /. runs_f;
                    };
                  (* the per-evaluation relaunch overhead is charged
                     when a protocol *completes* — an aborted
                     candidate costs exactly its simulated wall *)
                  let wall = List.fold_left ( +. ) !tcut !walls in
                  charge_wall t wall;
                  pruned_value ()
                end
              end)))

let evaluate ?bound t mapping = eval_keyed ?bound t (Mapping.canonical_key mapping) mapping

(* ---- batch evaluation --------------------------------------------------- *)

type outcome = Evaluated of float | Skipped

(* Evaluate a batch of candidates against one fixed bound.

   Bounded ([?bound] given): the Engine's Propose_batch contract is
   first-improvement — the sequential caller stops at the first
   candidate whose value beats the bound, in original index order.
   Index order is therefore the unique sim-optimal evaluation order
   (a candidate evaluated out of turn past the eventual improver is
   work the sequential protocol never performs), so the batch runs the
   exact sequential loop — evaluate, charge, note — with an early
   exit, no journal, and no allocation beyond the outcome array.

   Unbounded: no short-circuit applies and every candidate is
   evaluated, so the evaluation order is free — candidates evaluate in
   diff-locality order, nearest the pinned replay anchor first, which
   maximizes Exec's placement-patch and cone-replay reuse.  The sort
   is stable on the original index, so duplicate candidates keep their
   relative order (the earlier one evaluates, the later one
   cache-hits, as sequentially).  Per-candidate clock charges and
   best-notes are journaled during out-of-order evaluation and
   replayed in original index order afterwards.

   Either way, every counter, clock value, db entry, best and trace
   line is bit-identical to the sequential loop of the contract. *)
let evaluate_batch ?bound ?(overhead = 0.0) t cands =
  t.batch_calls <- t.batch_calls + 1;
  let n = Array.length cands in
  if n = 0 then [||]
  else
    match bound with
    | Some raw_bound ->
        let outcomes = Array.make n Skipped in
        let stopped_at = ref n in
        (try
           for i = 0 to n - 1 do
             let m = cands.(i) in
             if overhead > 0.0 then t.virtual_time <- t.virtual_time +. overhead;
             let v = eval_keyed ~bound:raw_bound t (Mapping.canonical_key m) m in
             outcomes.(i) <- Evaluated v;
             if v < raw_bound then begin
               stopped_at := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !stopped_at < n - 1 then
          t.batch_short_circuits <- t.batch_short_circuits + 1;
        outcomes
    | None ->
        (* evaluation order: ascending diff distance from the replay
           anchor — the mapping last pinned by [note_incumbent], or
           failing that the last bound mapping *)
        let order = Array.init n (fun i -> i) in
        (match
           (match Exec.preferred_mapping t.scratch with
           | Some _ as a -> a
           | None -> Exec.bound_mapping t.scratch)
         with
        | Some anchor ->
            let dist =
              Array.map
                (fun c ->
                  if c == anchor then 0
                  else begin
                    let tids, cids = Mapping.diff anchor c in
                    List.length tids + List.length cids
                  end)
                cands
            in
            Array.sort
              (fun a b ->
                if dist.(a) <> dist.(b) then compare dist.(a) dist.(b)
                else compare a b)
              order
        | None -> ());
        let values = Array.make n 0.0 in
        let j_kind = Array.make n 0 in
        let j_wall = Array.make n 0.0 in
        let j_noted = Array.make n false in
        let j_perf = Array.make n 0.0 in
        for oi = 0 to n - 1 do
          let i = order.(oi) in
          let m = cands.(i) in
          t.defer <- true;
          t.d_kind <- 0;
          t.d_noted <- false;
          let v = eval_keyed t (Mapping.canonical_key m) m in
          t.defer <- false;
          j_kind.(i) <- t.d_kind;
          j_wall.(i) <- t.d_wall;
          j_noted.(i) <- t.d_noted;
          j_perf.(i) <- t.d_perf;
          values.(i) <- v
        done;
        let outcomes = Array.make n Skipped in
        for i = 0 to n - 1 do
          if overhead > 0.0 then t.virtual_time <- t.virtual_time +. overhead;
          (match j_kind.(i) with
          | 1 ->
              t.virtual_time <- t.virtual_time +. j_wall.(i);
              t.eval_time <- t.eval_time +. j_wall.(i)
          | 2 ->
              t.virtual_time <- t.virtual_time +. j_wall.(i) +. t.eval_overhead;
              t.eval_time <- t.eval_time +. j_wall.(i)
          | 3 -> t.virtual_time <- t.virtual_time +. t.eval_overhead
          | _ -> ());
          if j_noted.(i) then note_best t cands.(i) j_perf.(i);
          outcomes.(i) <- Evaluated values.(i)
        done;
        outcomes

let note_suggestion_overhead t dt =
  if dt < 0.0 then invalid_arg "Evaluator.note_suggestion_overhead: negative";
  t.virtual_time <- t.virtual_time +. dt

let note_noop_neighbor t = t.noop_skips <- t.noop_skips + 1
let note_symmetry_skip t = t.symmetry_skips <- t.symmetry_skips + 1

let note_dead_coords t n =
  if n < 0 then invalid_arg "Evaluator.note_dead_coords: negative";
  t.dead_coord_skips <- t.dead_coord_skips + n

(* The searches report each newly accepted incumbent here so Exec keeps
   its committed timelines pinned: every subsequent neighbour then
   replays against a schedule at most a couple of coordinates away. *)
let note_incumbent t mapping = Exec.prefer_timeline t.scratch mapping
let note_result_cache_hit t = t.result_cache_hits <- t.result_cache_hits + 1
let note_warm_start t = t.warm_starts <- t.warm_starts + 1

let note_cache_state t ~hits ~misses ~evictions ~resident_bytes =
  t.compile_cache_hits <- hits;
  t.compile_cache_misses <- misses;
  t.cache_evictions <- evictions;
  t.cache_resident_bytes <- resident_bytes
let attach_surrogate t sg = t.surrogate <- Some sg

let best t = t.best
let trace t = List.rev t.trace
let virtual_time t = t.virtual_time
let suggested t = t.suggested
let evaluated t = t.evaluated
let cache_hits t = t.cache_hits
let invalid_count t = t.invalid
let oom_count t = t.oom
let cut_evals t = t.cut_evals
let cut_runs t = t.cut_runs
let cut_sims t = t.cut_sims
let noop_skips t = t.noop_skips
let dead_coord_skips t = t.dead_coord_skips
let symmetry_skips t = t.symmetry_skips
let batch_calls t = t.batch_calls
let batch_short_circuits t = t.batch_short_circuits
let eval_time t = t.eval_time

let stats t =
  let hits_shared, hits_private = Exec.bind_cache_hits t.scratch in
  {
    s_suggested = t.suggested;
    s_evaluated = t.evaluated;
    s_cache_hits = t.cache_hits;
    s_invalid = t.invalid;
    s_oom = t.oom;
    s_cut_evals = t.cut_evals;
    s_cut_runs = t.cut_runs;
    s_cut_sims = t.cut_sims;
    s_noop_skips = t.noop_skips;
    s_dead_coord_skips = t.dead_coord_skips;
    s_symmetry_skips = t.symmetry_skips;
    s_batch_calls = t.batch_calls;
    s_batch_short_circuits = t.batch_short_circuits;
    s_compile_cache_hits = t.compile_cache_hits;
    s_compile_cache_misses = t.compile_cache_misses;
    s_result_cache_hits = t.result_cache_hits;
    s_warm_starts = t.warm_starts;
    s_cache_evictions = t.cache_evictions;
    s_cache_resident_bytes = t.cache_resident_bytes;
    s_delta_binds = Exec.delta_binds t.scratch;
    s_full_binds = Exec.full_binds t.scratch;
    s_bind_hits_shared = hits_shared;
    s_bind_hits_private = hits_private;
    s_cone_replays = Exec.cone_replays t.scratch;
    s_cone_instances = Exec.cone_instances t.scratch;
    s_full_replays = Exec.full_replays t.scratch;
    s_timeline_bytes = Exec.timeline_bytes t.scratch;
    s_surrogate_trained = (match t.surrogate with Some s -> Surrogate.trained s | None -> 0);
    s_surrogate_reranks = (match t.surrogate with Some s -> Surrogate.reranks s | None -> 0);
    s_surrogate_skips = (match t.surrogate with Some s -> Surrogate.skips s | None -> 0);
    s_spearman = (match t.surrogate with Some s -> Surrogate.spearman s | None -> Float.nan);
  }

(* ---- checkpoint support -------------------------------------------------
   The evaluator's mutable state is part of every search decision: the
   virtual clock feeds the budget test, the partials table changes how a
   re-suggested candidate is answered, and [seed_counter] decides the
   seeds of any post-search [measure] calls.  Serializing it with hex
   floats ([%h]) makes restore bit-exact.  The profiles database is
   saved separately ({!Profiles_db.save}) by the checkpoint envelope;
   Exec's per-seed caches are pure performance state (replay is
   bit-identical, PR 3) and are rebuilt on demand after a restore.
   Batch counters are bench telemetry, not decision state, and are
   deliberately not persisted (the format predates them). *)

let fingerprint t =
  (* [symmetry] changes what Space.random_mapping returns and which
     candidates the engine's seen-set skips; [dominance] changes the
     choice lists every strategy enumerates.  Both are decision state,
     so — unlike the surrogate, whose presence the snapshot itself
     records — they must match between the checkpointing and the
     resuming evaluator. *)
  Printf.sprintf "%s|%s|r%d|n%h|f%b|i%s|p%h|o%h|pr%b|c%d|sy%b|do%b"
    t.machine.Machine.name t.graph.Graph.gname t.runs t.noise_sigma t.fallback
    (match t.iterations with None -> "-" | Some i -> string_of_int i)
    t.penalty t.eval_overhead t.prune t.crn_base t.symmetry t.dominance

let save_state t =
  let fl = Printf.sprintf "%h" in
  let counters =
    Printf.sprintf "counters %d %d %d %d %d %d %d %d %d %d %d" t.suggested
      t.evaluated t.cache_hits t.invalid t.oom t.cut_evals t.cut_runs t.cut_sims
      t.noop_skips t.dead_coord_skips t.symmetry_skips
  in
  let clocks = Printf.sprintf "clocks %s %s" (fl t.virtual_time) (fl t.eval_time) in
  let seed = Printf.sprintf "seed_counter %d" t.seed_counter in
  let best =
    match t.best with
    | None -> "best none"
    | Some (m, p) -> Printf.sprintf "best %s %s" (fl p) (Mapping.canonical_key m)
  in
  let trace =
    Printf.sprintf "trace %d" (List.length t.trace)
    :: List.map (fun (vt, p) -> Printf.sprintf "t %s %s" (fl vt) (fl p)) t.trace
  in
  let partial_lines =
    Hashtbl.fold
      (fun key p acc ->
        Printf.sprintf "p %s %d %d %s %s %d%s" key p.pbase p.pnext (fl p.psum)
          (fl p.plb) (List.length p.pdone)
          (String.concat "" (List.map (fun x -> " " ^ fl x) p.pdone))
        :: acc)
      t.partials []
    (* deterministic checkpoint bytes regardless of hash order *)
    |> List.sort compare
  in
  (counters :: clocks :: seed :: best :: trace)
  @ (Printf.sprintf "partials %d" (List.length partial_lines) :: partial_lines)

let restore_state t lines =
  let fail fmt = Printf.ksprintf (fun m -> Error ("Evaluator.restore_state: " ^ m)) fmt in
  let float_of s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> failwith ("Evaluator.restore_state: bad float " ^ s)
  in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> failwith ("Evaluator.restore_state: bad int " ^ s)
  in
  let words l = String.split_on_char ' ' l |> List.filter (( <> ) "") in
  try
    match lines with
    | counters :: clocks :: seed :: best :: rest -> (
        (match words counters with
        (* pre-symmetry checkpoints carry 10 counters; current ones 11 *)
        | [ "counters"; a; b; c; d; e; f; g; h; i; j ]
        | [ "counters"; a; b; c; d; e; f; g; h; i; j; _ ] as w ->
            t.suggested <- int_of a;
            t.evaluated <- int_of b;
            t.cache_hits <- int_of c;
            t.invalid <- int_of d;
            t.oom <- int_of e;
            t.cut_evals <- int_of f;
            t.cut_runs <- int_of g;
            t.cut_sims <- int_of h;
            t.noop_skips <- int_of i;
            t.dead_coord_skips <- int_of j;
            t.symmetry_skips <-
              (match w with [ _; _; _; _; _; _; _; _; _; _; _; k ] -> int_of k | _ -> 0)
        | _ -> failwith "Evaluator.restore_state: bad counters line");
        (match words clocks with
        | [ "clocks"; vt; et ] ->
            t.virtual_time <- float_of vt;
            t.eval_time <- float_of et
        | _ -> failwith "Evaluator.restore_state: bad clocks line");
        (match words seed with
        | [ "seed_counter"; s ] -> t.seed_counter <- int_of s
        | _ -> failwith "Evaluator.restore_state: bad seed_counter line");
        (match words best with
        | [ "best"; "none" ] -> t.best <- None
        | [ "best"; p; key ] -> (
            match Mapping.of_canonical_key t.graph key with
            | Some m -> t.best <- Some (m, float_of p)
            | None -> failwith "Evaluator.restore_state: best key mismatch")
        | _ -> failwith "Evaluator.restore_state: bad best line");
        let take_count tag = function
          | l :: rest -> (
              match words l with
              | [ w; n ] when w = tag -> (int_of n, rest)
              | _ -> failwith ("Evaluator.restore_state: expected " ^ tag ^ " line"))
          | [] -> failwith ("Evaluator.restore_state: missing " ^ tag ^ " line")
        in
        let n_trace, rest = take_count "trace" rest in
        let rec read_trace n acc rest =
          if n = 0 then (List.rev acc, rest)
          else
            match rest with
            | l :: rest -> (
                match words l with
                | [ "t"; vt; p ] -> read_trace (n - 1) ((float_of vt, float_of p) :: acc) rest
                | _ -> failwith "Evaluator.restore_state: bad trace line")
            | [] -> failwith "Evaluator.restore_state: truncated trace"
        in
        let trace_rev, rest = read_trace n_trace [] rest in
        (* lines were emitted newest-first; [read_trace] reversed them *)
        t.trace <- List.rev trace_rev;
        let n_partials, rest = take_count "partials" rest in
        Hashtbl.reset t.partials;
        let rec read_partials n rest =
          if n = 0 then rest
          else
            match rest with
            | l :: rest -> (
                match words l with
                | "p" :: key :: pbase :: pnext :: psum :: plb :: ndone :: done_s ->
                    let nd = int_of ndone in
                    if List.length done_s <> nd then
                      failwith "Evaluator.restore_state: bad partial run count";
                    Hashtbl.replace t.partials key
                      {
                        pbase = int_of pbase;
                        pdone = List.map float_of done_s;
                        psum = float_of psum;
                        pnext = int_of pnext;
                        plb = float_of plb;
                      };
                    read_partials (n - 1) rest
                | _ -> failwith "Evaluator.restore_state: bad partial line")
            | [] -> failwith "Evaluator.restore_state: truncated partials"
        in
        match read_partials n_partials rest with
        | [] -> Ok ()
        | l :: _ -> fail "trailing line %S" l)
    | _ -> fail "truncated state"
  with Failure m -> Error m

let measure_with t ?runs ?iterations metric mapping =
  let runs = Option.value runs ~default:t.runs in
  let rec go n acc =
    if n = 0 then acc
    else
      match run_once t ?iterations mapping with
      | Ok r -> go (n - 1) (metric r :: acc)
      | Error e -> failwith ("Evaluator.measure: " ^ Placement.error_to_string e)
  in
  go runs []

let measure t ?runs ?iterations mapping =
  measure_with t ?runs ?iterations (fun r -> r.Exec.per_iteration) mapping

let measure_objective t ?runs mapping =
  measure_with t ?runs (fun r -> t.objective t.machine r) mapping

let profile_for t mapping =
  match Exec.simulate ~noise_sigma:0.0 ~fallback:t.fallback ?iterations:t.iterations
          t.scratch mapping
  with
  | Ok r ->
      Profile.of_times t.graph
        (Array.to_list (Array.mapi (fun tid s -> (tid, s)) r.Exec.task_times))
  | Error _ -> Profile.uniform t.graph
