type t = {
  machine : Machine.t;
  graph : Graph.t;
  scratch : Exec.scratch;  (* compiled problem + reusable simulation state *)
  space : Space.t;
  runs : int;
  noise_sigma : float;
  fallback : bool;
  iterations : int option;
  penalty : float;
  eval_overhead : float;
  objective : Machine.t -> Exec.result -> float;
  db : Profiles_db.t;
  mutable seed_counter : int;
  mutable suggested : int;
  mutable evaluated : int;
  mutable cache_hits : int;
  mutable invalid : int;
  mutable oom : int;
  mutable virtual_time : float;
  mutable eval_time : float;
  mutable best : (Mapping.t * float) option;
  mutable trace : (float * float) list;  (* newest first *)
}

let default_objective _machine (r : Exec.result) = r.Exec.per_iteration

let create ?(runs = 7) ?(noise_sigma = 0.03) ?(fallback = false) ?iterations
    ?(penalty = infinity) ?(seed = 0) ?(eval_overhead = 0.0002)
    ?(objective = default_objective) ?(extended = false) ?db machine graph =
  if runs <= 0 then invalid_arg "Evaluator.create: runs must be positive";
  {
    machine;
    graph;
    scratch = Exec.scratch (Exec.compile machine graph);
    space = Space.make ~extended graph machine;
    runs;
    noise_sigma;
    fallback;
    iterations;
    penalty;
    eval_overhead;
    objective;
    db = (match db with Some db -> db | None -> Profiles_db.create ());
    seed_counter = seed * 1_000_003;
    suggested = 0;
    evaluated = 0;
    cache_hits = 0;
    invalid = 0;
    oom = 0;
    virtual_time = 0.0;
    eval_time = 0.0;
    best = None;
    trace = [];
  }

let machine t = t.machine
let graph t = t.graph
let space t = t.space
let db t = t.db

let next_seed t =
  t.seed_counter <- t.seed_counter + 1;
  t.seed_counter

let run_once t ?iterations mapping =
  let iterations = match iterations with Some _ as i -> i | None -> t.iterations in
  Exec.simulate ~noise_sigma:t.noise_sigma ~seed:(next_seed t) ~fallback:t.fallback
    ?iterations t.scratch mapping

let note_best t mapping perf =
  match t.best with
  | Some (_, p) when p <= perf -> ()
  | _ ->
      t.best <- Some (mapping, perf);
      t.trace <- (t.virtual_time, perf) :: t.trace

let evaluate t mapping =
  t.suggested <- t.suggested + 1;
  match Profiles_db.find t.db mapping with
  | Some entry ->
      t.cache_hits <- t.cache_hits + 1;
      entry.Profiles_db.perf
  | None -> (
      match Mapping.validate t.graph t.machine mapping with
      | Error _ ->
          t.invalid <- t.invalid + 1;
          t.penalty
      | Ok () -> (
          (* First run decides whether the mapping can be placed at all;
             an OOM aborts the evaluation after one cheap failed launch. *)
          match run_once t mapping with
          | Error (Placement.Out_of_memory _) ->
              t.oom <- t.oom + 1;
              t.virtual_time <- t.virtual_time +. t.eval_overhead;
              t.penalty
          | Error (Placement.Invalid_mapping _) ->
              t.invalid <- t.invalid + 1;
              t.penalty
          | Ok first ->
              let results = ref [ first ] in
              for _ = 2 to t.runs do
                match run_once t mapping with
                | Ok r -> results := r :: !results
                | Error e ->
                    (* placement is deterministic: later runs cannot fail
                       if the first succeeded *)
                    failwith ("Evaluator.evaluate: " ^ Placement.error_to_string e)
              done;
              let times = List.map (fun r -> t.objective t.machine r) !results in
              let wall =
                List.fold_left (fun acc r -> acc +. r.Exec.makespan) 0.0 !results
              in
              t.evaluated <- t.evaluated + 1;
              t.virtual_time <- t.virtual_time +. wall +. t.eval_overhead;
              t.eval_time <- t.eval_time +. wall;
              let entry = Profiles_db.record t.db mapping times in
              note_best t mapping entry.Profiles_db.perf;
              entry.Profiles_db.perf))

let note_suggestion_overhead t dt =
  if dt < 0.0 then invalid_arg "Evaluator.note_suggestion_overhead: negative";
  t.virtual_time <- t.virtual_time +. dt

let best t = t.best
let trace t = List.rev t.trace
let virtual_time t = t.virtual_time
let suggested t = t.suggested
let evaluated t = t.evaluated
let cache_hits t = t.cache_hits
let invalid_count t = t.invalid
let oom_count t = t.oom
let eval_time t = t.eval_time

let measure_with t ?runs ?iterations metric mapping =
  let runs = Option.value runs ~default:t.runs in
  let rec go n acc =
    if n = 0 then acc
    else
      match run_once t ?iterations mapping with
      | Ok r -> go (n - 1) (metric r :: acc)
      | Error e -> failwith ("Evaluator.measure: " ^ Placement.error_to_string e)
  in
  go runs []

let measure t ?runs ?iterations mapping =
  measure_with t ?runs ?iterations (fun r -> r.Exec.per_iteration) mapping

let measure_objective t ?runs mapping =
  measure_with t ?runs (fun r -> t.objective t.machine r) mapping

let profile_for t mapping =
  match Exec.simulate ~noise_sigma:0.0 ~fallback:t.fallback ?iterations:t.iterations
          t.scratch mapping
  with
  | Ok r ->
      Profile.of_times t.graph
        (Array.to_list (Array.mapi (fun tid s -> (tid, s)) r.Exec.task_times))
  | Error _ -> Profile.uniform t.graph
