type state = {
  ev : Evaluator.t;
  max_evals : int;
  rng : Rng.t;
  mutable evals : int;
  mutable bound : float;  (* best-so-far at proposal time — the pruning bound *)
}

let strategy_of st =
  let space = Evaluator.space st.ev in
  {
    Engine.name = "random";
    init = (fun _ -> ());
    step =
      (fun ctx ->
        if st.evals >= st.max_evals then Engine.Stop
        else begin
          st.evals <- st.evals + 1;
          let candidate = Space.random_mapping space st.rng in
          st.bound <- snd ctx.Engine.best;
          Engine.Propose (candidate, { Engine.bound = Some st.bound; overhead = 0.0 })
        end);
    receive = (fun _m perf -> perf < st.bound);
    encode =
      (fun () ->
        [ Printf.sprintf "random %d %d %Ld" st.max_evals st.evals (Rng.state st.rng) ]);
  }

let make ?(seed = 7) ?(max_evals = 1000) ev =
  strategy_of { ev; max_evals; rng = Rng.create seed; evals = 0; bound = infinity }

let decode ev lines =
  match lines with
  | [ head ] -> (
      match String.split_on_char ' ' head |> List.filter (( <> ) "") with
      | [ "random"; max_evals; evals; rng ] -> (
          match
            (int_of_string_opt max_evals, int_of_string_opt evals, Int64.of_string_opt rng)
          with
          | Some max_evals, Some evals, Some rng ->
              Ok
                (strategy_of
                   { ev; max_evals; rng = Rng.of_state rng; evals; bound = infinity })
          | _ -> Error "Random_search.decode: bad fields")
      | _ -> Error "Random_search.decode: bad line")
  | _ -> Error "Random_search.decode: expected 1 line"

let search ?(seed = 7) ?(max_evals = 1000) ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let o =
    Engine.run ~budget:(Budget.of_virtual budget) ~start:f0 ev (make ~seed ~max_evals ev)
  in
  (o.Engine.best, o.Engine.perf)
