let search ?(seed = 7) ?(max_evals = 1000) ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let rng = Rng.create seed in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let best = ref (f0, Evaluator.evaluate ev f0) in
  let evals = ref 0 in
  while !evals < max_evals && Evaluator.virtual_time ev <= budget do
    incr evals;
    let candidate = Space.random_mapping space rng in
    let perf = Evaluator.evaluate ~bound:(snd !best) ev candidate in
    if perf < snd !best then best := (candidate, perf)
  done;
  !best
