(** Simulated annealing over valid mappings — an ablation baseline that
    *can* accept cost-increasing moves (unlike CD) but makes them one
    coordinate at a time (unlike CCD's coordinated co-location moves).
    §4.2 argues exactly this class of algorithm is unlikely to find
    solutions that require moving several overlapping collections
    together; the ablation bench quantifies that claim. *)

val make :
  ?seed:int ->
  ?max_evals:int ->
  ?t0:float ->
  ?cooling:float ->
  Evaluator.t ->
  Engine.strategy
(** Annealing as an engine strategy (name ["annealing"]); the
    Metropolis threshold of each proposal travels as its
    {!Engine.hint.bound}. *)

val decode : Evaluator.t -> string list -> (Engine.strategy, string) result
(** Rebuild a checkpointed annealing strategy: RNG state, temperature,
    current point and evaluation count restored bit-exactly. *)

val search :
  ?seed:int ->
  ?max_evals:int ->
  ?t0:float ->
  ?cooling:float ->
  ?start:Mapping.t ->
  ?budget:float ->
  Evaluator.t ->
  Mapping.t * float
(** Geometric cooling: temperature [t0] (default 0.3, relative to the
    starting performance) multiplied by [cooling] (default 0.995) per
    step; a worse candidate with Δ relative regression is accepted with
    probability exp(−Δ/T).  The acceptance variate is drawn *before*
    the evaluation and the Metropolis test is applied as the equivalent
    threshold [perf < current + p0·T·(−ln u)], so the threshold
    doubles as an exact pruning bound for {!Evaluator.evaluate}.
    Mutations are single-coordinate and constraint-repairing (a
    processor move re-maps newly inaccessible arguments to the fastest
    accessible kind). *)
