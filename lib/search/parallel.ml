let map ?domains jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Parallel.map: domains must be >= 1";
        min d (max n 1)
    | None -> max 1 (min n (min 4 (Domain.recommended_domain_count ())))
  in
  if n = 0 then []
  else if domains = 1 then Array.to_list (Array.map (fun job -> job ()) jobs)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let k = Atomic.fetch_and_add next 1 in
        if k >= n then continue := false else results.(k) <- Some (jobs.(k) ())
      done
    in
    let workers = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is a worker too; join the rest even if it
       raises, then surface the first failure *)
    let inline_failure = match worker () with () -> None | exception e -> Some e in
    let join_failure =
      Array.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception e -> ( match acc with None -> Some e | some -> some))
        None workers
    in
    (match (inline_failure, join_failure) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

type member_result = {
  member : string;
  mapping : Mapping.t;
  perf : float;
  evaluated : int;
  suggested : int;
  steps : int;
}

let run_members ?domains ?(members = Portfolio.default_members) ?(budget = infinity)
    ?(seed = 0) ?(runs = 7) ?(noise_sigma = 0.03) ?iterations machine graph =
  if members = [] then invalid_arg "Parallel.run_members: no members";
  let job index member () =
    (* per-worker evaluator: compiled problem, scratch, profiles db and
       noise stream are all private to this member *)
    let ev =
      Evaluator.create ~runs ~noise_sigma ?iterations
        ~seed:(seed + ((index + 1) * 7919))
        machine graph
    in
    let start = Mapping.default_start graph machine in
    let p0 = Evaluator.evaluate ev start in
    let deadline = Evaluator.virtual_time ev +. budget in
    let strat =
      match member with
      | Portfolio.Ccd rotations -> Ccd.make ~rotations ev
      | Portfolio.Cd -> Cd.make ev
      | Portfolio.Annealing -> Annealing.make ~seed:(seed + 13) ev
      | Portfolio.Random -> Random_search.make ~seed:(seed + 29) ev
    in
    (* the engine re-evaluates [start] (a cache hit, keeping legacy
       suggestion counts) and its budget check uses the evaluator's
       absolute virtual clock, so the deadline computed above is the
       member's private budget exactly as before *)
    let o = Engine.run ~budget:(Budget.of_virtual deadline) ~start ev strat in
    let m, p = (o.Engine.best, o.Engine.perf) in
    let m, p = if p0 < p then (start, p0) else (m, p) in
    {
      member = Portfolio.member_name member;
      mapping = m;
      perf = p;
      evaluated = Evaluator.evaluated ev;
      suggested = Evaluator.suggested ev;
      steps = o.Engine.steps;
    }
  in
  map ?domains (List.mapi job members)

let best = function
  | [] -> invalid_arg "Parallel.best: empty result list"
  | r :: rest -> List.fold_left (fun acc r -> if r.perf < acc.perf then r else acc) r rest

let search ?domains ?members ?budget ?seed ?runs ?noise_sigma ?iterations machine graph =
  let r =
    best
      (run_members ?domains ?members ?budget ?seed ?runs ?noise_sigma ?iterations machine
         graph)
  in
  (r.mapping, r.perf)
