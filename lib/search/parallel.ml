let map ?domains jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Parallel.map: domains must be >= 1";
        min d (max n 1)
    | None -> max 1 (min n (min 4 (Domain.recommended_domain_count ())))
  in
  if n = 0 then []
  else if domains = 1 then Array.to_list (Array.map (fun job -> job ()) jobs)
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue = ref true in
      while !continue do
        let k = Atomic.fetch_and_add next 1 in
        if k >= n then continue := false else results.(k) <- Some (jobs.(k) ())
      done
    in
    let workers = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is a worker too; join the rest even if it
       raises, then surface the first failure *)
    let inline_failure = match worker () with () -> None | exception e -> Some e in
    let join_failure =
      Array.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception e -> ( match acc with None -> Some e | some -> some))
        None workers
    in
    (match (inline_failure, join_failure) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

type member_result = {
  member : string;
  mapping : Mapping.t;
  perf : float;
  evaluated : int;
  suggested : int;
  steps : int;
}

(* Tighten every plain proposal's pruning bound with the best perf any
   member has published so far.  Values at or above the member's own
   bound are decision-equivalent rejections, so a *lower* shared bound
   only converts certain-rejections into cheaper certain-rejections —
   but which candidates get cut depends on cross-domain timing, so
   shared-bound runs trade reproducibility for pruning power.  Batch
   proposals are left untouched: Propose_batch's short-circuit contract
   requires the bound to be exactly the strategy's acceptance
   threshold. *)
let tighten_bounds cell (strat : Engine.strategy) =
  {
    strat with
    Engine.step =
      (fun ctx ->
        match strat.Engine.step ctx with
        | Engine.Propose (c, h) ->
            let shared = Atomic.get cell in
            let bound =
              match h.Engine.bound with
              | Some b -> Some (Float.min b shared)
              | None -> if shared = infinity then None else Some shared
            in
            Engine.Propose (c, { h with Engine.bound })
        | step -> step);
  }

let publish_best cell p =
  let rec go () =
    let cur = Atomic.get cell in
    if p < cur && not (Atomic.compare_and_set cell cur p) then go ()
  in
  go ()

let run_members ?domains ?(members = Portfolio.default_members) ?(budget = infinity)
    ?(seed = 0) ?(runs = 7) ?(noise_sigma = 0.03) ?iterations ?(batch = false)
    ?(share_bound = false) machine graph =
  if members = [] then invalid_arg "Parallel.run_members: no members";
  (* Compile once — the compiled problem is immutable and shared by
     every domain.  Each domain lazily builds ONE scratch and all its
     members reuse it: members on a domain run sequentially (the job
     queue deals one job at a time per worker), so the sharing is safe,
     and it lets Exec's bind/noise/timeline caches hit across members
     instead of being rebuilt per member.  Caches are decision-neutral
     (bit-identical replay), so results still match fully-private runs. *)
  let compiled = Exec.compile machine graph in
  let scratch_key =
    Domain.DLS.new_key (fun () ->
        let sc = Exec.scratch compiled in
        Exec.set_shared sc true;
        sc)
  in
  let best_cell = Atomic.make infinity in
  let job index member () =
    let scratch = Domain.DLS.get scratch_key in
    (* per-member evaluator: profiles db and noise stream stay private;
       only the simulation scratch is per-domain *)
    let ev =
      Evaluator.create ~runs ~noise_sigma ?iterations
        ~seed:(seed + ((index + 1) * 7919))
        ~scratch machine graph
    in
    let start = Mapping.default_start graph machine in
    let p0 = Evaluator.evaluate ev start in
    if share_bound then publish_best best_cell p0;
    let deadline = Evaluator.virtual_time ev +. budget in
    let strat =
      match member with
      | Portfolio.Ccd rotations -> Ccd.make ~batch ~rotations ev
      | Portfolio.Cd -> Cd.make ~batch ev
      | Portfolio.Annealing -> Annealing.make ~seed:(seed + 13) ev
      | Portfolio.Random -> Random_search.make ~seed:(seed + 29) ev
    in
    let strat = if share_bound then tighten_bounds best_cell strat else strat in
    let on_event =
      if share_bound then fun ev ->
        match ev with
        | Engine.Improve { perf; _ } -> publish_best best_cell perf
        | _ -> ()
      else fun _ -> ()
    in
    (* the engine re-evaluates [start] (a cache hit, keeping legacy
       suggestion counts) and its budget check uses the evaluator's
       absolute virtual clock, so the deadline computed above is the
       member's private budget exactly as before *)
    let o = Engine.run ~budget:(Budget.of_virtual deadline) ~on_event ~start ev strat in
    let m, p = (o.Engine.best, o.Engine.perf) in
    let m, p = if p0 < p then (start, p0) else (m, p) in
    {
      member = Portfolio.member_name member;
      mapping = m;
      perf = p;
      evaluated = Evaluator.evaluated ev;
      suggested = Evaluator.suggested ev;
      steps = o.Engine.steps;
    }
  in
  map ?domains (List.mapi job members)

let best = function
  | [] -> invalid_arg "Parallel.best: empty result list"
  | r :: rest -> List.fold_left (fun acc r -> if r.perf < acc.perf then r else acc) r rest

let search ?domains ?members ?budget ?seed ?runs ?noise_sigma ?iterations ?batch
    ?share_bound machine graph =
  let r =
    best
      (run_members ?domains ?members ?budget ?seed ?runs ?noise_sigma ?iterations ?batch
         ?share_bound machine graph)
  in
  (r.mapping, r.perf)
