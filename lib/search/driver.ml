type algo =
  | Cd
  | Ccd of { rotations : int }
  | Ensemble_tuner
  | Random_walk of { max_evals : int }
  | Annealing of { max_evals : int }

let algo_name = function
  | Cd -> "CD"
  | Ccd { rotations } -> Printf.sprintf "CCD(%d)" rotations
  | Ensemble_tuner -> "Ensemble(OT)"
  | Random_walk _ -> "Random"
  | Annealing _ -> "Annealing"

type result = {
  algo : algo;
  db : Profiles_db.t;
  best : Mapping.t;
  perf : float;
  final_stats : Stats.summary;
  search_perf : float;
  trace : (float * float) list;
  virtual_search_time : float;
  eval_time_fraction : float;
  suggested : int;
  evaluated : int;
  cache_hits : int;
  invalid : int;
  oom : int;
}

let run ?runs ?(final_top = 5) ?(final_runs = 30) ?noise_sigma ?iterations
    ?(seed = 0) ?budget ?start ?objective ?extended ?incremental ?domain_prune ?db
    algo machine graph =
  let ev =
    Evaluator.create ?runs ?noise_sigma ?iterations ~seed ?objective ?extended
      ?incremental ?domain_prune ?db machine graph
  in
  let search_best, search_perf =
    match algo with
    | Cd -> Cd.search ?start ?budget ev
    | Ccd { rotations } -> Ccd.search ~rotations ?start ?budget ev
    | Ensemble_tuner ->
        Ensemble.search ~config:{ Ensemble.default_config with seed = seed + 1 } ?start
          ?budget ev
    | Random_walk { max_evals } -> Random_search.search ~seed:(seed + 1) ~max_evals ?start ?budget ev
    | Annealing { max_evals } -> Annealing.search ~seed:(seed + 1) ~max_evals ?start ?budget ev
  in
  (* Final protocol: re-run the top-5 mappings 30 times each; report
     the one with the fastest average. *)
  let candidates =
    match Profiles_db.top (Evaluator.db ev) final_top with
    | [] -> [ (search_best, [ search_perf ]) ]
    | tops ->
        List.map
          (fun e ->
            let m = e.Profiles_db.mapping in
            (m, Evaluator.measure_objective ev ~runs:final_runs m))
          tops
  in
  let best, best_runs =
    List.fold_left
      (fun ((_, bruns) as acc) ((_, runs) as cand) ->
        if Stats.mean runs < Stats.mean bruns then cand else acc)
      (List.hd candidates) (List.tl candidates)
  in
  let vt = Evaluator.virtual_time ev in
  {
    algo;
    db = Evaluator.db ev;
    best;
    perf = Stats.mean best_runs;
    final_stats = Stats.summarize best_runs;
    search_perf;
    trace = Evaluator.trace ev;
    virtual_search_time = vt;
    eval_time_fraction = (if vt > 0.0 then Evaluator.eval_time ev /. vt else 1.0);
    suggested = Evaluator.suggested ev;
    evaluated = Evaluator.evaluated ev;
    cache_hits = Evaluator.cache_hits ev;
    invalid = Evaluator.invalid_count ev;
    oom = Evaluator.oom_count ev;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%s: perf=%.6gs/iter (search best %.6g), suggested=%d evaluated=%d cache=%d invalid=%d oom=%d, search time=%.1fs (useful %.0f%%)"
    (algo_name r.algo) r.perf r.search_perf r.suggested r.evaluated r.cache_hits
    r.invalid r.oom r.virtual_search_time
    (100.0 *. r.eval_time_fraction)
