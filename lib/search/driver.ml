type algo =
  | Cd
  | Ccd of { rotations : int }
  | Ensemble_tuner
  | Random_walk of { max_evals : int }
  | Annealing of { max_evals : int }
  | Portfolio
  | Heft

let algo_name = function
  | Cd -> "CD"
  | Ccd { rotations } -> Printf.sprintf "CCD(%d)" rotations
  | Ensemble_tuner -> "Ensemble(OT)"
  | Random_walk _ -> "Random"
  | Annealing _ -> "Annealing"
  | Portfolio -> "Portfolio"
  | Heft -> "HEFT"

(* CLI/wire spelling — one parser shared by automap_cli and the serve
   daemon, so a request names algorithms exactly like the command line *)
let algo_of_string ?(max_evals = 1000) s =
  match String.lowercase_ascii s with
  | "cd" -> Ok Cd
  | "ccd" -> Ok (Ccd { rotations = 5 })
  | "ensemble" -> Ok Ensemble_tuner
  | "random" -> Ok (Random_walk { max_evals })
  | "annealing" -> Ok (Annealing { max_evals })
  | "portfolio" -> Ok Portfolio
  | "heft" -> Ok Heft
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)

let algo_to_string = function
  | Cd -> "cd"
  | Ccd _ -> "ccd"
  | Ensemble_tuner -> "ensemble"
  | Random_walk _ -> "random"
  | Annealing _ -> "annealing"
  | Portfolio -> "portfolio"
  | Heft -> "heft"

type result = {
  algo : algo;
  db : Profiles_db.t;
  best : Mapping.t;
  perf : float;
  final_stats : Stats.summary;
  search_perf : float;
  trace : (float * float) list;
  virtual_search_time : float;
  eval_time_fraction : float;
  suggested : int;
  evaluated : int;
  cache_hits : int;
  invalid : int;
  oom : int;
  engine_steps : int;
  checkpoints_written : int;
  batch_calls : int;
  batch_short_circuits : int;
  symmetry_skips : int;
  surrogate_trained : int;
  surrogate_reranks : int;
  surrogate_skips : int;
  spearman : float;
}

(* HEFT is not a search: the list schedule *is* the mapping.  As a
   strategy it stops immediately, so the engine evaluates the (HEFT)
   start point and hands it straight to the final protocol. *)
let heft_strategy =
  {
    Engine.name = "heft";
    init = ignore;
    step = (fun _ -> Engine.Stop);
    receive = (fun _ _ -> false);
    encode = (fun () -> []);
  }

let make_strategy ~seed ?budget ~batch ?(min_batch = 1) ?surrogate algo ev =
  match algo with
  | Cd -> Cd.make ~batch ~min_batch ?surrogate ev
  | Ccd { rotations } -> Ccd.make ~batch ~min_batch ?surrogate ~rotations ev
  | Ensemble_tuner ->
      Ensemble.make ~config:{ Ensemble.default_config with seed = seed + 1 } ev
  | Random_walk { max_evals } -> Random_search.make ~seed:(seed + 1) ~max_evals ev
  | Annealing { max_evals } -> Annealing.make ~seed:(seed + 1) ~max_evals ev
  | Portfolio -> Portfolio.make ?budget ~seed:(seed + 1) ~batch ~min_batch ?surrogate ev
  | Heft -> heft_strategy

(* Checkpoints name the strategy; decoding dispatches on that name
   explicitly (no registration side effects, so no link-order traps). *)
let decode_strategy ?(batch = false) ?(min_batch = 1) ?surrogate ev ~algo lines =
  match algo with
  | "cd" -> Cd.decode ~batch ~min_batch ?surrogate ev lines
  | "ccd" -> Ccd.decode ~batch ~min_batch ?surrogate ev lines
  | "annealing" -> Annealing.decode ev lines
  | "random" -> Random_search.decode ev lines
  | "ensemble" -> Ensemble.decode ev lines
  | "portfolio" -> Portfolio.decode ~batch ~min_batch ?surrogate ev lines
  | "heft" -> Ok heft_strategy
  | other -> Error (Printf.sprintf "unknown strategy %S in checkpoint" other)

(* Final protocol (§5): re-run the [final_top] best mappings of the
   profiles database [final_runs] times each; report the one with the
   fastest average.  Shared by [run] and the serve daemon's slice
   driver, which applies it when a sliced search finishes. *)
let final_protocol ?(final_top = 5) ?(final_runs = 30) ev ~search_best ~search_perf
    =
  let candidates =
    match Profiles_db.top (Evaluator.db ev) final_top with
    | [] -> [ (search_best, [ search_perf ]) ]
    | tops ->
        List.map
          (fun e ->
            let m = e.Profiles_db.mapping in
            (m, Evaluator.measure_objective ev ~runs:final_runs m))
          tops
  in
  List.fold_left
    (fun ((_, bruns) as acc) ((_, runs) as cand) ->
      if Stats.mean runs < Stats.mean bruns then cand else acc)
    (List.hd candidates) (List.tl candidates)

let run ?runs ?(final_top = 5) ?(final_runs = 30) ?noise_sigma ?iterations
    ?(seed = 0) ?budget ?max_trials ?max_wall ?start ?(heft_seed = false)
    ?objective ?extended ?incremental ?domain_prune ?(batch = false)
    ?(min_batch = Descent.default_min_batch) ?(surrogate = true) ?surrogate_skim
    ?(symmetry = true) ?(dominance = true)
    ?db ?on_event ?checkpoint ?(checkpoint_every = 25) ?resume_from algo machine
    graph =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* skim only makes sense on ranked batches *)
  let batch = batch || surrogate_skim <> None in
  let snapshot =
    match resume_from with
    | None -> None
    | Some path -> (
        match Engine.load_snapshot path with
        | Ok s -> Some (path, s)
        | Error e -> fail "%s: %s" path e)
  in
  let db =
    (* a checkpoint carries its own profiles database — it supersedes
       any warm-start [?db] *)
    match snapshot with
    | None -> db
    | Some (path, s) -> (
        match Profiles_db.load graph s.Engine.s_profiles with
        | Ok db -> Some db
        | Error e -> fail "%s: profiles section: %s" path e)
  in
  let ev =
    Evaluator.create ?runs ?noise_sigma ?iterations ~seed ?objective ?extended
      ?incremental ?domain_prune ~symmetry ~dominance ?db machine graph
  in
  (* The seen-set memoizes evaluated orbits so symmetric duplicates are
     skipped; keyed by the space's canonicalizer, it exists exactly when
     the evaluator's space canonicalizes (symmetry is part of the
     fingerprint, so resume cannot silently flip it). *)
  let seen =
    if Space.symmetry (Evaluator.space ev) then
      Some (Engine.seen_create (Space.canonicalize (Evaluator.space ev)))
    else None
  in
  let checkpoint =
    Option.map (fun path -> { Engine.every = checkpoint_every; path }) checkpoint
  in
  let o =
    match snapshot with
    | None ->
        let start =
          match start with
          | Some m -> m
          | None ->
              if heft_seed || algo = Heft then Heft.mapping machine graph
              else Mapping.default_start graph machine
        in
        let sg =
          if not surrogate then None
          else Some (Surrogate.create ?skim:surrogate_skim (Evaluator.space ev))
        in
        Option.iter (Evaluator.attach_surrogate ev) sg;
        (* ranking needs batch proposals (checkpoints then fall strictly
           between ranked batches — see Descent); without batch the
           model still trains for telemetry and a later batched run *)
        let rank_sg = if batch then sg else None in
        let strat =
          make_strategy ~seed ?budget ~batch ~min_batch ?surrogate:rank_sg algo ev
        in
        let budget =
          (* the portfolio shares [budget] across members through its own
             absolute deadlines; every other algorithm gets it as the
             engine's virtual-time cap *)
          let max_virtual = if algo = Portfolio then None else budget in
          Budget.make ?max_trials ?max_virtual ?max_wall ()
        in
        Engine.run ~budget ?on_event ?checkpoint ?surrogate:sg ?seen ~start ev
          strat
    | Some (path, s) ->
        if Evaluator.fingerprint ev <> s.Engine.s_fingerprint then
          fail
            "%s: fingerprint mismatch — checkpoint was written with a different \
             machine, graph or evaluator configuration (%s vs %s)"
            path s.Engine.s_fingerprint (Evaluator.fingerprint ev);
        (match Evaluator.restore_state ev s.Engine.s_evaluator with
        | Ok () -> ()
        | Error e -> fail "%s: %s" path e);
        (* the snapshot decides whether a surrogate resumes: restoring
           one into a surrogate-free run (or dropping it from a
           surrogate run) would silently change the decision sequence.
           The model's own header rejects a skim/config mismatch. *)
        let sg =
          if s.Engine.s_surrogate = [] then None
          else begin
            let m = Surrogate.create ?skim:surrogate_skim (Evaluator.space ev) in
            (match Surrogate.restore m s.Engine.s_surrogate with
            | Ok () -> ()
            | Error e -> fail "%s: %s" path e);
            Some m
          end
        in
        Option.iter (Evaluator.attach_surrogate ev) sg;
        (* the fingerprint check above guarantees the snapshot was
           written with the same symmetry flag, so [seen] exists exactly
           when the snapshot has entries to restore *)
        (match seen with
        | Some sn -> (
            match Engine.seen_restore sn s.Engine.s_symmetry with
            | Ok () -> ()
            | Error e -> fail "%s: symmetry section: %s" path e)
        | None ->
            if s.Engine.s_symmetry <> [] then
              fail "%s: checkpoint has a symmetry section but symmetry is off"
                path);
        let rank_sg = if batch then sg else None in
        let strat =
          match
            decode_strategy ~batch ~min_batch ?surrogate:rank_sg ev
              ~algo:s.Engine.s_algo s.Engine.s_strategy
          with
          | Ok strat -> strat
          | Error e -> fail "%s: %s" path e
        in
        let best_m =
          match Mapping.of_canonical_key graph s.Engine.s_best_key with
          | Some m -> m
          | None -> fail "%s: best-mapping key does not parse for this graph" path
        in
        let carry =
          {
            Engine.c_trials = s.Engine.s_trials;
            c_steps = s.Engine.s_steps;
            c_wall = s.Engine.s_wall;
            c_best = (best_m, s.Engine.s_best_perf);
          }
        in
        let budget =
          let max_virtual = if s.Engine.s_algo = "portfolio" then None else budget in
          Budget.make ?max_trials ?max_virtual ?max_wall ()
        in
        Engine.run ~budget ?on_event ?checkpoint ~carry ?surrogate:sg ?seen
          ~start:best_m ev strat
  in
  let search_best, search_perf = (o.Engine.best, o.Engine.perf) in
  let best, best_runs =
    final_protocol ~final_top ~final_runs ev ~search_best ~search_perf
  in
  let vt = Evaluator.virtual_time ev in
  let st = Evaluator.stats ev in
  {
    algo;
    db = Evaluator.db ev;
    best;
    perf = Stats.mean best_runs;
    final_stats = Stats.summarize best_runs;
    search_perf;
    trace = Evaluator.trace ev;
    virtual_search_time = vt;
    eval_time_fraction = (if vt > 0.0 then Evaluator.eval_time ev /. vt else 1.0);
    suggested = Evaluator.suggested ev;
    evaluated = Evaluator.evaluated ev;
    cache_hits = Evaluator.cache_hits ev;
    invalid = Evaluator.invalid_count ev;
    oom = Evaluator.oom_count ev;
    engine_steps = o.Engine.steps;
    checkpoints_written = o.Engine.checkpoints_written;
    batch_calls = Evaluator.batch_calls ev;
    batch_short_circuits = Evaluator.batch_short_circuits ev;
    symmetry_skips = st.Evaluator.s_symmetry_skips;
    surrogate_trained = st.Evaluator.s_surrogate_trained;
    surrogate_reranks = st.Evaluator.s_surrogate_reranks;
    surrogate_skips = st.Evaluator.s_surrogate_skips;
    spearman = st.Evaluator.s_spearman;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%s: perf=%.6gs/iter (search best %.6g), suggested=%d evaluated=%d cache=%d invalid=%d oom=%d, search time=%.1fs (useful %.0f%%)"
    (algo_name r.algo) r.perf r.search_perf r.suggested r.evaluated r.cache_hits
    r.invalid r.oom r.virtual_search_time
    (100.0 *. r.eval_time_fraction)
