(** Unified search budget.

    Before the engine refactor every algorithm hand-rolled its own
    stopping test: [Cd]/[Ccd] stopped on [virtual_time ev > budget]
    while [Annealing]/[Ensemble]/[Random_search] looped on
    [virtual_time ev <= budget].  Those two phrasings are the same
    strict-excess rule written twice; this module writes it once, adds
    the trial-count and wall-clock axes, and {!Engine} applies it
    identically for every strategy.

    {b Semantics} (the single rule all strategies now share): a budget
    is exhausted — checked by the engine {e before} each trial — when

    - [trials >= max_trials]: the completed-trial count has reached the
      cap, so the next proposal is not evaluated; or
    - [vt > max_virtual]: accumulated virtual search time {e strictly}
      exceeds the cap.  A trial landing exactly on the cap completes
      and only the next one is cut, matching both legacy phrasings; or
    - [wall > max_wall]: elapsed wall-clock seconds strictly exceed the
      cap (only this axis is machine-dependent; checkpoints record the
      wall already consumed so a resumed search keeps burning the same
      budget, but wall-bounded runs are inherently not
      decision-reproducible).

    Absent axes never exhaust; {!unlimited} never stops a search. *)

type t = {
  max_trials : int option;   (** cap on evaluated proposals (incl. the start) *)
  max_virtual : float option; (** cap on virtual search seconds (Figure 9 x-axis) *)
  max_wall : float option;   (** cap on real elapsed seconds *)
}

val unlimited : t

val make : ?max_trials:int -> ?max_virtual:float -> ?max_wall:float -> unit -> t
(** Omitted axes are unlimited; an [infinity] cap is normalized to
    unlimited.  @raise Invalid_argument on negative or NaN caps. *)

val of_virtual : float -> t
(** Virtual-time-only budget — the legacy [?budget:float] parameter of
    every [search] function maps to this. *)

val of_trials : int -> t

val is_unlimited : t -> bool

val exhausted : t -> trials:int -> vt:float -> wall:float -> bool
(** The one stopping test (semantics above).  [trials] counts evaluated
    proposals so far, [vt] is the evaluator's virtual clock, [wall] the
    real seconds consumed (including any consumed before a resume). *)

val pp : Format.formatter -> t -> unit
