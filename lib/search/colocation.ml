module IS = Set.Make (Int)

module PS = Set.Make (struct
  type t = int * int

  let compare = compare
end)

(* line 16 of Algorithm 2: pick a memory kind addressable by the task's
   processor kind.  We keep the collection's current kind when it is
   already addressable (no spurious move) and otherwise take the
   fastest addressable kind. *)
let select_mem current proc_kind =
  if Kinds.accessible proc_kind current then current
  else
    match Kinds.accessible_mem_kinds proc_kind with
    | m :: _ -> m
    | [] -> assert false

let apply (g : Graph.t) _machine ~overlap ~mapping ~t ~c ~k ~r =
  let o cid = Overlap.o_map g overlap cid in
  (* The fixpoint runs many one-coordinate repairs; going through
     Mapping.set_* would copy a whole array per repair, and [apply] is
     on the candidate-construction hot path.  The repairs therefore
     operate on flat working copies — the exact same reads and writes
     in the exact same order — and the mapping is rebuilt once at the
     end from the coordinates that actually changed. *)
  let nc = Graph.n_collections g and nt = Graph.n_tasks g in
  let mem = Array.init nc (Mapping.mem_of mapping) in
  let proc = Array.init nt (Mapping.proc_of mapping) in
  let t_check = ref IS.empty in
  let c_check = ref PS.empty in
  (* lines 4-6: map every collection overlapping c to r and queue the
     owning tasks for re-checking *)
  List.iter
    (fun (ti, ci) ->
      if ci <> c then mem.(ci) <- r;
      t_check := IS.add ti !t_check)
    (o c);
  let steps = ref 0 in
  let cap = 10 * (Graph.n_tasks g + Graph.n_collections g + 1) * 4 in
  let bump () =
    incr steps;
    if !steps > cap then failwith "Colocation.apply: fixed point did not converge"
  in
  while (not (IS.is_empty !t_check)) || not (PS.is_empty !c_check) do
    (* lines 8-13: repair tasks whose arguments became unreachable.
       Moving ti to k changes which of its arguments are reachable, so
       the kind is settled first and every argument is then checked
       against the *final* kind (a literal arg-by-arg reading of the
       pseudocode would skip arguments scanned before the move). *)
    while not (IS.is_empty !t_check) do
      bump ();
      let ti = IS.min_elt !t_check in
      t_check := IS.remove ti !t_check;
      let task = Graph.task g ti in
      let inaccessible kind =
        List.filter
          (fun (ci : Graph.collection) -> not (Kinds.accessible kind mem.(ci.cid)))
          task.args
      in
      if ti <> t && inaccessible proc.(ti) <> [] then proc.(ti) <- k;
      List.iter
        (fun (ci : Graph.collection) -> c_check := PS.add (ti, ci.cid) !c_check)
        (inaccessible proc.(ti))
    done;
    (* lines 14-26: repair collections of moved tasks *)
    while not (PS.is_empty !c_check) do
      bump ();
      let ((ti, ci) as pivot) = PS.min_elt !c_check in
      c_check := PS.remove pivot !c_check;
      let m = select_mem mem.(ci) proc.(ti) in
      (* line 17: collections overlapping the original pivot (t, c) are
         pinned to r; do not disturb them *)
      if not (List.exists (fun (tj, cj) -> tj = t && cj = c) (o ci)) then begin
        mem.(ci) <- m;
        List.iter
          (fun ((tj, cj) as partner) ->
            if not (partner = (ti, ci) || Kinds.equal_mem mem.(cj) m) then begin
              mem.(cj) <- m;
              if not (Kinds.accessible proc.(tj) m) then t_check := IS.add tj !t_check;
              c_check := PS.remove partner !c_check
            end)
          (o ci)
      end
    done
  done;
  let f' = ref mapping in
  for tid = 0 to nt - 1 do
    if proc.(tid) != Mapping.proc_of mapping tid then
      f' := Mapping.set_proc !f' tid proc.(tid)
  done;
  for cid = 0 to nc - 1 do
    if mem.(cid) != Mapping.mem_of mapping cid then
      f' := Mapping.set_mem !f' cid mem.(cid)
  done;
  !f'

let satisfies_colocation overlap mapping =
  List.for_all
    (fun (c1, c2, _w) ->
      Kinds.equal_mem (Mapping.mem_of mapping c1) (Mapping.mem_of mapping c2))
    (Overlap.edges overlap)
