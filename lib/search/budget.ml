type t = {
  max_trials : int option;
  max_virtual : float option;
  max_wall : float option;
}

let unlimited = { max_trials = None; max_virtual = None; max_wall = None }

let make ?max_trials ?max_virtual ?max_wall () =
  (match max_trials with
  | Some n when n < 0 -> invalid_arg "Budget.make: max_trials must be non-negative"
  | _ -> ());
  let finite_cap name = function
    | Some c when Float.is_nan c -> invalid_arg ("Budget.make: " ^ name ^ " is NaN")
    | Some c when c = infinity -> None (* an infinite cap is no cap *)
    | Some c when c < 0.0 -> invalid_arg ("Budget.make: " ^ name ^ " must be non-negative")
    | c -> c
  in
  {
    max_trials;
    max_virtual = finite_cap "max_virtual" max_virtual;
    max_wall = finite_cap "max_wall" max_wall;
  }

let of_virtual cap = make ~max_virtual:cap ()
let of_trials n = make ~max_trials:n ()

let is_unlimited b = b.max_trials = None && b.max_virtual = None && b.max_wall = None

let exhausted b ~trials ~vt ~wall =
  (match b.max_trials with Some n -> trials >= n | None -> false)
  || (match b.max_virtual with Some cap -> vt > cap | None -> false)
  || (match b.max_wall with Some cap -> wall > cap | None -> false)

let pp ppf b =
  let parts =
    List.filter_map
      (fun x -> x)
      [
        Option.map (Printf.sprintf "trials<=%d") b.max_trials;
        Option.map (Printf.sprintf "virtual<=%gs") b.max_virtual;
        Option.map (Printf.sprintf "wall<=%gs") b.max_wall;
      ]
  in
  Format.pp_print_string ppf
    (match parts with [] -> "unlimited" | ps -> String.concat " " ps)
