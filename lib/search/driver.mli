(** The AutoMap driver (Figure 4): owns the evaluator/profiles
    database, invokes a pluggable search algorithm, and applies the
    paper's measurement protocol — during the search each candidate is
    executed [runs] (7) times and averaged; afterwards the [final_top]
    (5) best mappings are re-executed [final_runs] (30) times each and
    the mapping with the fastest average is reported (§5,
    "Experimental Setup"). *)

type algo =
  | Cd
  | Ccd of { rotations : int }
  | Ensemble_tuner
  | Random_walk of { max_evals : int }
  | Annealing of { max_evals : int }

val algo_name : algo -> string

type result = {
  algo : algo;
  db : Profiles_db.t;           (** every measurement of the search *)
  best : Mapping.t;            (** winner of the final re-evaluation *)
  perf : float;                (** its final average per-iteration time *)
  final_stats : Stats.summary; (** statistics of the winner's final runs *)
  search_perf : float;         (** best average seen during the search *)
  trace : (float * float) list;(** (virtual time, best-so-far) — Figure 9 *)
  virtual_search_time : float;
  eval_time_fraction : float;  (** useful fraction of search time (§5.3) *)
  suggested : int;
  evaluated : int;
  cache_hits : int;
  invalid : int;
  oom : int;
}

val run :
  ?runs:int ->
  ?final_top:int ->
  ?final_runs:int ->
  ?noise_sigma:float ->
  ?iterations:int ->
  ?seed:int ->
  ?budget:float ->
  ?start:Mapping.t ->
  ?objective:(Machine.t -> Exec.result -> float) ->
  ?extended:bool ->
  ?incremental:bool ->
  ?domain_prune:bool ->
  ?db:Profiles_db.t ->
  algo ->
  Machine.t ->
  Graph.t ->
  result
(** [budget] caps virtual search time (seconds of simulated
    application execution); the defaults follow §5: [runs] = 7,
    [final_top] = 5, [final_runs] = 30.  [objective] selects the
    metric the search minimizes (default: per-iteration time),
    [extended] opens the distribution-strategy dimension,
    [incremental] (default true) toggles incremental re-simulation and
    [db] warm-starts from a persisted profiles database (see
    {!Evaluator.create}). *)

val pp_result : Format.formatter -> result -> unit
