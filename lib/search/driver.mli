(** The AutoMap driver (Figure 4): owns the evaluator/profiles
    database, invokes a pluggable search algorithm through the
    {!Engine}, and applies the paper's measurement protocol — during
    the search each candidate is executed [runs] (7) times and
    averaged; afterwards the [final_top] (5) best mappings are
    re-executed [final_runs] (30) times each and the mapping with the
    fastest average is reported (§5, "Experimental Setup"). *)

type algo =
  | Cd
  | Ccd of { rotations : int }
  | Ensemble_tuner
  | Random_walk of { max_evals : int }
  | Annealing of { max_evals : int }
  | Portfolio  (** {!Portfolio.default_members} sharing the budget *)
  | Heft  (** no search: evaluate the HEFT list schedule (§5 baseline) *)

val algo_name : algo -> string

val algo_of_string : ?max_evals:int -> string -> (algo, string) Stdlib.result
(** CLI/wire spelling (["cd"], ["ccd"], ["ensemble"], ["random"],
    ["annealing"], ["portfolio"], ["heft"]; case-insensitive).
    [max_evals] (default 1000) parameterizes the stochastic
    algorithms. *)

val algo_to_string : algo -> string
(** Inverse spelling of {!algo_of_string} (parameters dropped:
    [Ccd _] is ["ccd"]).  Matches {!Engine.snapshot.s_algo}. *)

type result = {
  algo : algo;
  db : Profiles_db.t;           (** every measurement of the search *)
  best : Mapping.t;            (** winner of the final re-evaluation *)
  perf : float;                (** its final average per-iteration time *)
  final_stats : Stats.summary; (** statistics of the winner's final runs *)
  search_perf : float;         (** best average seen during the search *)
  trace : (float * float) list;(** (virtual time, best-so-far) — Figure 9 *)
  virtual_search_time : float;
  eval_time_fraction : float;  (** useful fraction of search time (§5.3) *)
  suggested : int;
  evaluated : int;
  cache_hits : int;
  invalid : int;
  oom : int;
  engine_steps : int;          (** {!Engine} strategy steps taken *)
  checkpoints_written : int;
  batch_calls : int;           (** {!Evaluator.batch_calls} *)
  batch_short_circuits : int;  (** {!Evaluator.batch_short_circuits} *)
  symmetry_skips : int;        (** symmetric duplicates never re-evaluated *)
  surrogate_trained : int;     (** SGD observations absorbed (0 without model) *)
  surrogate_reranks : int;     (** batches reordered by the model *)
  surrogate_skips : int;       (** candidates never simulated (skim mode) *)
  spearman : float;            (** rank correlation, recent window; nan early *)
}

val make_strategy :
  seed:int ->
  ?budget:float ->
  batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  algo ->
  Evaluator.t ->
  Engine.strategy
(** A fresh strategy for [algo], exactly as {!run} builds one: [seed]
    derives the stochastic algorithms' seeds, [budget] becomes the
    portfolio's member shares, [batch]/[min_batch]/[surrogate]
    configure CD/CCD proposal batching (gated — see
    {!Descent.next_gated} — and ranked).  Exposed for callers that
    drive {!Engine.run} themselves (the serve daemon's slice driver). *)

val decode_strategy :
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:Surrogate.t ->
  Evaluator.t ->
  algo:string ->
  string list ->
  (Engine.strategy, string) Stdlib.result
(** Rebuild a checkpointed strategy from its [algo] name (as recorded in
    {!Engine.snapshot.s_algo}) and encoded state lines.  [batch]
    resumes CD/CCD in batch mode ([min_batch] gating sub-threshold
    rounds, default 1); [surrogate] resumes them with ranked batches
    (see {!run}). *)

val final_protocol :
  ?final_top:int ->
  ?final_runs:int ->
  Evaluator.t ->
  search_best:Mapping.t ->
  search_perf:float ->
  Mapping.t * float list
(** The paper's final measurement protocol: re-run the [final_top] (5)
    best mappings of the evaluator's profiles database [final_runs]
    (30) times each and return the fastest-on-average with its runs
    (falling back to [(search_best, [search_perf])] on an empty
    database).  {!run} applies it automatically; the serve daemon's
    slice driver calls it when a sliced search completes. *)

val run :
  ?runs:int ->
  ?final_top:int ->
  ?final_runs:int ->
  ?noise_sigma:float ->
  ?iterations:int ->
  ?seed:int ->
  ?budget:float ->
  ?max_trials:int ->
  ?max_wall:float ->
  ?start:Mapping.t ->
  ?heft_seed:bool ->
  ?objective:(Machine.t -> Exec.result -> float) ->
  ?extended:bool ->
  ?incremental:bool ->
  ?domain_prune:bool ->
  ?batch:bool ->
  ?min_batch:int ->
  ?surrogate:bool ->
  ?surrogate_skim:int ->
  ?symmetry:bool ->
  ?dominance:bool ->
  ?db:Profiles_db.t ->
  ?on_event:(Engine.event -> unit) ->
  ?checkpoint:string ->
  ?checkpoint_every:int ->
  ?resume_from:string ->
  algo ->
  Machine.t ->
  Graph.t ->
  result
(** [budget] caps virtual search time (seconds of simulated
    application execution); [max_trials] and [max_wall] cap evaluated
    proposals and real elapsed seconds — the three compose into one
    {!Budget.t} and the first exhausted axis stops the search.  The
    defaults follow §5: [runs] = 7,
    [final_top] = 5, [final_runs] = 30.  [objective] selects the
    metric the search minimizes (default: per-iteration time),
    [extended] opens the distribution-strategy dimension,
    [incremental] (default true) toggles incremental re-simulation,
    [batch] (default false) runs CD/CCD through
    {!Engine.Propose_batch} whole-neighbour-set evaluation
    (decision-identical, faster — see {!Evaluator.evaluate_batch};
    other algorithms ignore it), [min_batch] (default
    {!Descent.default_min_batch}) keeps sub-threshold rounds on the
    sequential path where batching does not amortize (still
    decision-identical; pass 1 to always batch) and
    [db] warm-starts from a persisted profiles database (see
    {!Evaluator.create}).

    [surrogate] (default true) trains an online {!Surrogate} cost
    model on every exact evaluation; combined with [batch] it also
    reranks CD/CCD candidate batches best-predicted-first (same
    candidates, same acceptance rule — the exact simulator still
    decides).  [surrogate_skim] additionally simulates only the top-K
    predictions of each ranked batch (implies [batch]); skimming can
    change the search trajectory, so it is guarded by the never-worse
    bench gate rather than an identity proof.  Resume note: the
    checkpoint decides — a snapshot with a surrogate section restores
    it (skim config must match), one without runs surrogate-free.

    [symmetry] (default true) quotients the search by the task-orbit
    symmetries {!Symmetry} certifies: random samples are canonicalized
    and an engine seen-set rejects symmetric duplicates of evaluated
    orbits without re-simulating ([symmetry_skips] counts them;
    checkpoints carry the seen-set so resume stays
    decision-identical).  [dominance] (default true; requires
    [domain_prune]) drops values {!Analysis.compute_dominance} proves
    dominated from the choice lists.  Both change the search
    trajectory, so they are part of the evaluator fingerprint — a
    checkpoint resumes only under the same flags.

    [heft_seed] starts the search from {!Heft.mapping} instead of
    {!Mapping.default_start} (ignored when [start] is given).

    [on_event] taps the engine's progress bus.  [checkpoint] names a
    file rewritten atomically every [checkpoint_every] (25) evaluated
    trials.  [resume_from] restores a checkpoint written by the same
    (machine, graph, evaluator-configuration) run — the snapshot's own
    strategy, evaluator state and profiles database replace [algo]'s
    fresh strategy and [db], and the search continues
    decision-identically from where it stopped.
    @raise Failure if the checkpoint is unreadable, fingerprint-
    mismatched, or names an unknown strategy. *)

val pp_result : Format.formatter -> result -> unit
