type config = {
  seed : int;
  elite_size : int;
  exploration : float;
  suggestion_overhead : float;
  max_suggestions : int;
}

let default_config =
  {
    seed = 42;
    elite_size = 5;
    exploration = 0.2;
    suggestion_overhead = 0.005;
    max_suggestions = 200_000;
  }

let technique_names = [ "random"; "mutate"; "crossover"; "pattern" ]

type bandit_arm = { mutable uses : int; mutable wins : int }

let arm_score arm =
  (* Laplace-smoothed success rate; unexplored arms look promising. *)
  float_of_int (arm.wins + 1) /. float_of_int (arm.uses + 2)

let pick_arm rng ~exploration arms =
  if Rng.float rng 1.0 < exploration then Rng.int rng (Array.length arms)
  else begin
    let best = ref 0 in
    Array.iteri (fun i a -> if arm_score a > arm_score arms.(!best) then best := i) arms;
    !best
  end

(* Unconstrained single-coordinate mutation: kinds drawn from the full
   domain, ignoring accessibility — the OpenTuner behaviour. *)
let flip_strategy = function
  | Mapping.Blocked -> Mapping.Cyclic
  | Mapping.Cyclic -> Mapping.Blocked

let mutate space rng parent =
  let dims = Array.of_list (Space.dims space) in
  match Rng.choose rng dims with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid (flip_strategy (Mapping.strategy_of parent tid))
  | Space.Processor tid ->
      Mapping.set_proc parent tid (Rng.choose_list rng Kinds.all_proc_kinds)
  | Space.Memory cid ->
      Mapping.set_mem parent cid (Rng.choose_list rng Kinds.all_mem_kinds)

let crossover g rng a b =
  Mapping.make g
    ~strategy:(fun t -> Mapping.strategy_of (if Rng.bool rng then a else b) t.tid)
    ~distribute:(fun t ->
      Mapping.distribute_of (if Rng.bool rng then a else b) t.tid)
    ~proc:(fun t -> Mapping.proc_of (if Rng.bool rng then a else b) t.tid)
    ~mem:(fun c -> Mapping.mem_of (if Rng.bool rng then a else b) c.cid)

(* Pattern walk: visit dimensions cyclically, replacing the current
   value with the "next" value of the full domain. *)
let pattern_step space cursor parent =
  let dims = Array.of_list (Space.dims space) in
  let d = dims.(cursor mod Array.length dims) in
  match d with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid (flip_strategy (Mapping.strategy_of parent tid))
  | Space.Processor tid ->
      let next = function Kinds.Cpu -> Kinds.Gpu | Kinds.Gpu -> Kinds.Cpu in
      Mapping.set_proc parent tid (next (Mapping.proc_of parent tid))
  | Space.Memory cid ->
      let next = function
        | Kinds.System -> Kinds.Zero_copy
        | Kinds.Zero_copy -> Kinds.Frame_buffer
        | Kinds.Frame_buffer -> Kinds.System
      in
      Mapping.set_mem parent cid (next (Mapping.mem_of parent cid))

type state = {
  ev : Evaluator.t;
  config : config;
  rng : Rng.t;
  arms : bandit_arm array;
  mutable pattern_cursor : int;
  mutable suggestions : int;
  mutable best : (Mapping.t * float) option;
  mutable pending_arm : int;  (* arm of the proposal in flight *)
}

let strategy_of st =
  let g = Evaluator.graph st.ev in
  let space = Evaluator.space st.ev in
  let elites () =
    match Profiles_db.top (Evaluator.db st.ev) st.config.elite_size with
    | [] -> [ (match st.best with Some (m, _) -> m | None -> assert false) ]
    | es -> List.map (fun e -> e.Profiles_db.mapping) es
  in
  let propose arm =
    match arm with
    | 0 -> Space.random_unconstrained space st.rng
    | 1 -> mutate space st.rng (Rng.choose_list st.rng (elites ()))
    | 2 -> (
        match elites () with
        | [ only ] -> mutate space st.rng only
        | es ->
            crossover g st.rng (Rng.choose_list st.rng es) (Rng.choose_list st.rng es))
    | 3 ->
        let c = st.pattern_cursor in
        st.pattern_cursor <- st.pattern_cursor + 1;
        pattern_step space c (match st.best with Some (m, _) -> m | None -> assert false)
    | _ -> assert false
  in
  {
    Engine.name = "ensemble";
    init = (fun bp -> st.best <- Some bp);
    step =
      (fun _ctx ->
        if st.suggestions >= st.config.max_suggestions || st.best = None then
          Engine.Stop
        else begin
          st.suggestions <- st.suggestions + 1;
          let arm_idx = pick_arm st.rng ~exploration:st.config.exploration st.arms in
          let candidate = propose arm_idx in
          st.pending_arm <- arm_idx;
          (* every proposal charges the machinery overhead (§5.3) *)
          Engine.Propose
            (candidate,
             { Engine.bound = None; overhead = st.config.suggestion_overhead })
        end);
    receive =
      (fun m perf ->
        let arm = st.arms.(st.pending_arm) in
        arm.uses <- arm.uses + 1;
        match st.best with
        | Some (_, bp) when perf < bp ->
            arm.wins <- arm.wins + 1;
            st.best <- Some (m, perf);
            (* accepting here makes the engine pin the new best as the
               incumbent — the legacy loop forfeited incremental replay
               by never calling note_incumbent *)
            true
        | _ -> false);
    encode =
      (fun () ->
        let fl = Codec.hex_of_float in
        [
          Printf.sprintf "ens %d %d %s %s %d %d %d %Ld" st.config.seed
            st.config.elite_size (fl st.config.exploration)
            (fl st.config.suggestion_overhead) st.config.max_suggestions
            st.suggestions st.pattern_cursor (Rng.state st.rng);
          Printf.sprintf "arms %s"
            (String.concat " "
               (Array.to_list
                  (Array.map (fun a -> Printf.sprintf "%d %d" a.uses a.wins) st.arms)));
          (match st.best with
          | None -> "best none"
          | Some (m, p) -> "best " ^ Codec.incumbent_line m p);
        ]);
  }

let make ?(config = default_config) ev =
  strategy_of
    {
      ev;
      config;
      rng = Rng.create config.seed;
      arms = Array.init 4 (fun _ -> { uses = 0; wins = 0 });
      pattern_cursor = 0;
      suggestions = 0;
      best = None;
      pending_arm = 0;
    }

let decode ev lines =
  let g = Evaluator.graph ev in
  match lines with
  | [ head; arms_l; best_l ] -> (
      let ( let* ) = Result.bind in
      let* st =
        match String.split_on_char ' ' head |> List.filter (( <> ) "") with
        | [ "ens"; seed; elite; expl; ovh; maxs; sugg; pc; rng ] -> (
            match
              ( int_of_string_opt seed,
                int_of_string_opt elite,
                Codec.float_of_hex expl,
                Codec.float_of_hex ovh,
                int_of_string_opt maxs,
                int_of_string_opt sugg,
                int_of_string_opt pc,
                Int64.of_string_opt rng )
            with
            | ( Some seed,
                Some elite_size,
                Some exploration,
                Some suggestion_overhead,
                Some max_suggestions,
                Some suggestions,
                Some pattern_cursor,
                Some rng ) ->
                Ok
                  {
                    ev;
                    config =
                      {
                        seed;
                        elite_size;
                        exploration;
                        suggestion_overhead;
                        max_suggestions;
                      };
                    rng = Rng.of_state rng;
                    arms = Array.init 4 (fun _ -> { uses = 0; wins = 0 });
                    pattern_cursor;
                    suggestions;
                    best = None;
                    pending_arm = 0;
                  }
            | _ -> Error "Ensemble.decode: bad ens fields")
        | _ -> Error "Ensemble.decode: bad ens line"
      in
      let* () =
        match String.split_on_char ' ' arms_l |> List.filter (( <> ) "") with
        | [ "arms"; u0; w0; u1; w1; u2; w2; u3; w3 ] -> (
            let ints = List.filter_map int_of_string_opt [ u0; w0; u1; w1; u2; w2; u3; w3 ] in
            match ints with
            | [ u0; w0; u1; w1; u2; w2; u3; w3 ] ->
                List.iteri
                  (fun i (u, w) ->
                    st.arms.(i).uses <- u;
                    st.arms.(i).wins <- w)
                  [ (u0, w0); (u1, w1); (u2, w2); (u3, w3) ];
                Ok ()
            | _ -> Error "Ensemble.decode: bad arm counts")
        | _ -> Error "Ensemble.decode: bad arms line"
      in
      let* () =
        if best_l = "best none" then Ok ()
        else
          match String.index_opt best_l ' ' with
          | Some i when String.sub best_l 0 i = "best" ->
              let* mp =
                Codec.parse_incumbent g
                  (String.sub best_l (i + 1) (String.length best_l - i - 1))
              in
              st.best <- Some mp;
              Evaluator.note_incumbent ev (fst mp);
              Ok ()
          | _ -> Error "Ensemble.decode: bad best line"
      in
      Ok (strategy_of st))
  | _ -> Error "Ensemble.decode: expected 3 lines"

let search ?(config = default_config) ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let o =
    Engine.run ~budget:(Budget.of_virtual budget) ~start:f0 ev (make ~config ev)
  in
  (o.Engine.best, o.Engine.perf)
