(** Pure random search over *valid* mappings — a sanity baseline for
    the ablation benchmarks (not in the paper's algorithm set, but the
    natural lower bar: it shares AutoMap's constraint knowledge yet
    makes no coordinated or local moves). *)

val make : ?seed:int -> ?max_evals:int -> Evaluator.t -> Engine.strategy
(** Random search as an engine strategy (name ["random"]); each
    proposal is bounded by the engine's best-so-far. *)

val decode : Evaluator.t -> string list -> (Engine.strategy, string) result

val search :
  ?seed:int ->
  ?max_evals:int ->
  ?start:Mapping.t ->
  ?budget:float ->
  Evaluator.t ->
  Mapping.t * float
(** Samples valid mappings uniformly until [max_evals] (default 1000)
    or the virtual-time [budget] runs out. *)
