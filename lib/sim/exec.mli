(** Discrete-event execution of a task graph under a mapping.

    This is the stand-in for running the application on the cluster
    (the paper's EvaluateMapping, Algorithm 1 line 21).  The simulator
    models:

    - one FIFO resource per processor; shards run where {!Placement}
      put them, for the duration given by {!Cost} (× measurement
      noise);
    - explicit data movement: for every dependence whose producer and
      consumer instances live in different memories, a copy is serialized
      on the connecting channel (host, cross-socket, PCIe, GPU-peer or
      network — §2's "a mapping may imply data movement not explicit in
      the task graph");
    - halo patterns: neighbour shards additionally receive their ghost
      fraction, crossing the network when the neighbour lives on
      another node;
    - iterative execution: the graph body repeats [iterations] times,
      each task shard serialized with its previous iteration, allowing
      cross-iteration pipelining as in Legion;
    - capacity failures surfaced from placement (§5.2).

    Runs are deterministic given the noise seed. *)

type result = {
  makespan : float;        (** seconds for all iterations *)
  per_iteration : float;   (** makespan / iterations *)
  task_times : float array;(** per-tid busy time, summed over shards/iterations *)
  proc_busy : float array; (** per-pid busy seconds (the energy model's input) *)
  bytes_moved : float;     (** total copied bytes *)
  channel_bytes : float array;
      (** bytes per channel class, indexed like {!channel_class_names} *)
  n_copies : int;
  demotions : int;         (** fallback demotions performed by placement *)
}

val channel_class_names : string array
(** ["host"; "xsocket"; "pcie"; "peer"; "net"] — index space of
    [channel_bytes]. *)

type error = Placement.error

(** {1 Compiled simulation}

    Mapping search evaluates thousands of candidates against the same
    (machine, graph) pair.  {!compile} derives every mapping-independent
    structure once — instance tables, the intra-iteration dependence
    CSR, per-slot indegree bases — into flat int/float arrays, and
    {!simulate} evaluates one mapping against the compiled problem,
    reusing a {!scratch} so the event loop allocates nothing but the
    small result arrays.

    Determinism invariant: for the same (noise_sigma, seed, fallback,
    iterations), [simulate] returns bit-identical results to
    {!run_reference} — the dependence traversal order, the RNG draw
    order (instance-ascending, before any event is processed) and the
    event queue's FIFO tie-breaking are all preserved exactly.
    [test/test_compile.ml] enforces this. *)

type compiled
(** Mapping-independent simulation structure for one (machine, graph)
    pair.  Immutable after {!compile}; safe to share across domains. *)

type scratch
(** Reusable per-simulation state (ready times, indegrees, resource
    free-times, noise buffer, event heap) tied to one {!compiled}
    problem.  NOT thread-safe: each domain needs its own scratch. *)

val compile : Machine.t -> Graph.t -> compiled

val scratch : compiled -> scratch
(** A fresh scratch; grows lazily to the largest [iterations] it has
    simulated. *)

val compiled_of_scratch : scratch -> compiled
val compiled_machine : compiled -> Machine.t
val compiled_graph : compiled -> Graph.t

val compiled_words : compiled -> int
(** Heap words reachable from the compiled problem — the weight the
    serve daemon's LRU compile cache charges an entry (multiply by
    [Sys.word_size / 8] for bytes). *)

val simulate :
  ?noise_sigma:float ->
  ?seed:int ->
  ?fallback:bool ->
  ?iterations:int ->
  ?trace:Trace.t ->
  scratch ->
  Mapping.t ->
  (result, error) Stdlib.result
(** Evaluate one mapping.  Parameters as {!run}.  The returned result
    arrays are freshly allocated (results from earlier calls stay
    valid); everything else is scratch-reused. *)

(** {1 Bounded simulation}

    The search only needs a candidate's exact runtime when it might
    beat the incumbent.  [simulate_bounded ~cutoff] aborts the event
    loop the moment the simulated clock reaches [cutoff]: event times
    pop in nondecreasing order and all remaining work is nonnegative,
    so the clock is a monotone lower bound on the final makespan and
    [Cut t] certifies makespan >= t without finishing the run.  With
    the default [cutoff = infinity] the behaviour — including every
    float and RNG draw — is identical to {!simulate}. *)

type outcome =
  | Finished of result
  | Cut of float
      (** The simulated clock reached the cutoff at this time; the true
          makespan is at least this value. *)

val simulate_bounded :
  ?noise_sigma:float ->
  ?seed:int ->
  ?fallback:bool ->
  ?iterations:int ->
  ?trace:Trace.t ->
  ?cutoff:float ->
  scratch ->
  Mapping.t ->
  (outcome, error) Stdlib.result

(** {1 Quiet (zero-allocation) interface}

    [simulate_quiet] is {!simulate_bounded} minus every allocation: the
    run's outputs are written into preallocated planes inside the
    scratch and the call returns a status code.  In the search's steady
    state — bind cached (same mapping re-run under a new noise seed or
    re-admitted over a committed timeline), noise stream cached,
    incremental replay on — a candidate costs {e zero} minor-heap words
    (pinned by test/test_alloc.ml), which keeps the GC silent across
    millions of candidates.  Decisions, floats and RNG draws are
    bit-identical to {!simulate_bounded}; the two share one event
    loop. *)

val simulate_quiet :
  scratch ->
  Mapping.t ->
  noise_sigma:float ->
  seed:int ->
  fallback:bool ->
  iterations:int ->
  cutoff:float ->
  int
(** Returns {!st_finished}, {!st_cut} or {!st_error}.  The scalar
    accessors below are valid until the next simulation on the same
    scratch; {!quiet_result} materializes a full {!result} record (and
    allocates — use it off the hot path only). *)

val st_finished : int
val st_cut : int
val st_error : int

val quiet_makespan : scratch -> float
val quiet_per_iteration : scratch -> float

val quiet_cut_time : scratch -> float
(** Clock at which the run was cut; valid after {!st_cut} only. *)

val quiet_error : scratch -> error option
(** The placement/bind error of the last {!st_error} return. *)

val quiet_result : scratch -> result
(** Record view over the result planes of the last finished run.  The
    arrays are fresh copies (safe to retain). *)

val static_lower_bound :
  ?fallback:bool ->
  ?iterations:int ->
  scratch ->
  Mapping.t ->
  (float, error) Stdlib.result
(** The noise-independent part of {!run_lower_bound}: the busiest
    channel's total copy time, the busiest node's dispatch
    serialization, and the dependence-graph critical path of dispatch
    and copy costs under the bound placement (compute durations
    contribute nothing — noise multipliers can be arbitrarily small).
    Valid for *every* noise seed, and an order of magnitude cheaper
    than a per-run bound (no noise draws), so a caller can certify "no
    run of this mapping can beat [b]" once before paying for per-run
    bounds or simulations. *)

val run_lower_bound :
  ?noise_sigma:float ->
  ?seed:int ->
  ?fallback:bool ->
  ?iterations:int ->
  scratch ->
  Mapping.t ->
  (float, error) Stdlib.result
(** A certified lower bound on the makespan {!simulate_bounded} with
    the same parameters would return (or abort at), computed without
    running the event loop: the busiest processor's total noise-scaled
    work — replaying the exact per-instance noise draws of that seed —
    and the busiest node's dispatch serialization both bound the final
    clock from below.  Costs one noise pass (a fraction of a full
    simulation); placement/bind errors are surfaced exactly as
    {!simulate}'s, and the resolved binding is cached for a subsequent
    simulation of the same mapping. *)

(** {1 Incremental re-simulation}

    A hill-climbing candidate differs from its incumbent in 1–2 mapping
    coordinates, which perturbs only a bounded region of the schedule.
    After every finished (untraced, strict) run, the scratch retains the
    run's committed {e timeline} — the exact pop order of the event loop
    — keyed by noise seed, together with a shared per-seed noise stream.
    A later run of the same seed whose mapping diff touches at most
    {!Placement.patch}'s coordinate limit {e admits} the longest prefix
    of the committed pop order that provably cannot have changed (no pop
    reads a rebound slot duration/processor or dep channel/cost)
    heap-free at re-derived times, reconstructs the event heap with the
    original FIFO insertion sequence numbers, and re-executes live only
    from the first dirty pop on — the dirty cone through dependence
    edges and same-queue FIFO successors.  Makespans, per-instance
    times, RNG streams, [Cut] decisions and all result statistics are
    bit-identical to a full replay (test/test_incremental.ml); runs
    whose diff is too large or whose clean prefix is too short fall back
    to the plain loop ([full_replays]).

    Replay requires the evaluator to reuse noise seeds across
    candidates (common random numbers): with per-candidate seeds no
    timeline ever matches and the machinery self-disables. *)

val set_incremental : scratch -> bool -> unit
(** Enable/disable timeline capture and cone replay (default on).
    Disabling drops the retained timelines and cached noise streams and
    restores the plain event loop exactly — a scratch with incremental
    off is observationally identical to one predating the machinery. *)

val incremental : scratch -> bool

val prefer_timeline : scratch -> Mapping.t -> unit
(** Mark the search's current incumbent: its committed timelines are
    not evicted by candidate commits (so every neighbour diffs against
    a 1–2 coordinate-away timeline) until a different mapping is
    preferred.  Physical equality identifies the incumbent's runs. *)

val preferred_mapping : scratch -> Mapping.t option
(** The mapping last passed to {!prefer_timeline} — the replay anchor
    batch evaluation orders candidates against. *)

val cone_replays : scratch -> int
(** Runs that admitted a nonempty clean prefix from a committed
    timeline. *)

val cone_instances : scratch -> int
(** Task instances (Ready events) re-executed live inside cones — the
    work incremental replay could not skip. *)

val full_replays : scratch -> int
(** Runs where a matching timeline existed but replay fell back to the
    plain loop (diff beyond the coordinate limit, or clean prefix too
    short to pay for admission). *)

val timeline_bytes : scratch -> int
(** Approximate bytes held by committed timelines and cached noise
    streams. *)

val delta_binds : scratch -> int
(** How many resolve+bind operations were served by patching the
    previously bound placement ({!Placement.patch} + a partial table
    rebind) instead of a full re-resolve.  Strict (non-fallback) mode
    only; the patched state is bit-identical to a full bind. *)

val full_binds : scratch -> int
(** How many resolve+bind operations ran the full path.  Physical-
    equality cache hits (re-running the same mapping with a new noise
    seed) are counted by neither counter — they show up in
    {!bind_cache_hits} instead. *)

val set_shared : scratch -> bool -> unit
(** Mark this scratch as shared between several search strategies
    (portfolio members on one domain).  Purely an accounting label: it
    routes physical-equality bind-cache hits to the shared counter of
    {!bind_cache_hits} so benches can attribute reuse across members
    vs. within one member.  Default false. *)

val bind_cache_hits : scratch -> int * int
(** [(shared, private_)] physical-equality bind-cache hits — resolves
    served without touching placement or the bind tables, split by the
    {!set_shared} label at hit time. *)

val bound_mapping : scratch -> Mapping.t option
(** The mapping of the currently cached bind, if any.  Batch evaluation
    sorts candidates by diff distance to this mapping so consecutive
    runs maximize patch locality and cone replay. *)

val run :
  ?noise_sigma:float ->
  ?seed:int ->
  ?fallback:bool ->
  ?iterations:int ->
  ?trace:Trace.t ->
  Machine.t ->
  Graph.t ->
  Mapping.t ->
  (result, error) Stdlib.result
(** [noise_sigma] (default 0.03) is the per-instance lognormal noise;
    0 gives noise-free runs.  [seed] defaults to 0.  [iterations]
    overrides the graph's iteration count.  [fallback] enables §3.1's
    priority-list demotion instead of failing on OOM.  When [trace] is
    given, every task execution and copy is recorded in it.

    Compatibility wrapper: compiles and simulates once.  Hot callers
    should {!compile} once and reuse a {!scratch}. *)

val run_reference :
  ?noise_sigma:float ->
  ?seed:int ->
  ?fallback:bool ->
  ?iterations:int ->
  ?trace:Trace.t ->
  Machine.t ->
  Graph.t ->
  Mapping.t ->
  (result, error) Stdlib.result
(** The original single-pass interpreter, kept as the golden semantics
    {!simulate} must reproduce bit-for-bit, and as the baseline the
    evalrate benchmark measures against.  Same behaviour as {!run},
    derived from scratch on every call. *)

val profile :
  ?iterations:int -> Machine.t -> Graph.t -> Mapping.t -> (int * float) list
(** Noise-free per-task times under a mapping — the profiling run of
    §3.3 that seeds the search's task ordering.  Raises [Failure] if
    the mapping cannot be placed. *)
