type result = {
  makespan : float;
  per_iteration : float;
  task_times : float array;
  proc_busy : float array;
  bytes_moved : float;
  channel_bytes : float array;
  n_copies : int;
  demotions : int;
}

let channel_class_names = [| "host"; "xsocket"; "pcie"; "peer"; "net" |]

type error = Placement.error

(* A dependence of one consumer instance on one producer instance:
   [bytes] must be visible at the consumer's argument memory. *)
type dep = {
  src_tid : int;
  src_shard : int;
  dst_cid : int;
  src_cid : int;
  bytes : float;
  carried : bool;
}

type event = Ready of int | Done of int

let n_channel_classes = 5

let channel_slot ~nodes:_ node = function
  | Machine.Host_local -> (node * n_channel_classes) + 0
  | Machine.Cross_socket -> (node * n_channel_classes) + 1
  | Machine.Pcie -> (node * n_channel_classes) + 2
  | Machine.Gpu_peer -> (node * n_channel_classes) + 3
  | Machine.Network -> (node * n_channel_classes) + 4
  | Machine.Same_memory -> invalid_arg "channel_slot: Same_memory"

let channel_class_index = function
  | Machine.Host_local -> 0
  | Machine.Cross_socket -> 1
  | Machine.Pcie -> 2
  | Machine.Gpu_peer -> 3
  | Machine.Network -> 4
  | Machine.Same_memory -> invalid_arg "channel_class_index: Same_memory"

(* Routed copies (machines with an explicit topology).  [dep_chan]
   encodes three regimes: -1 = same memory (no copy); >= 0 = the
   pre-topology kind-level channel slot, kept byte-identical for every
   machine without a topology; <= -2 = routed, with (-2 - dep_chan)
   hops in the fixed-stride hop tables.  Per-link busy-until clocks
   live after the kind-level plane of [chan_free]:
   slot = nodes * n_channel_classes + link id. *)
let link_slot_base ~nodes = nodes * n_channel_classes

let n_chan_slots machine =
  (machine.Machine.nodes * n_channel_classes)
  +
  match machine.Machine.topology with
  | Some topo -> Topology.n_links topo
  | None -> 0

(* Fixed stride of the per-dep hop tables: the longest route plus one
   PCIe staging hop per FB endpoint.  Fixed-width rows keep
   [bind_delta]'s in-place dep rebinding sound. *)
let dep_hop_stride machine =
  match machine.Machine.topology with
  | Some topo -> Topology.max_hops topo + 2
  | None -> 0

(* Does the machine serialize copies on busy-until clocks?  True for
   every machine without a topology (kind-level channel FIFOs) and for
   contended topologies; false only for the [:free] counterfactual,
   where every copy costs its full path time but never queues. *)
let clocks_contended machine =
  match machine.Machine.topology with
  | Some topo -> Topology.contended topo
  | None -> true

let proc_resource_name (p : Machine.processor) =
  Printf.sprintf "node%d/%s%d" p.Machine.pnode
    (Kinds.proc_kind_to_string p.Machine.pkind)
    p.Machine.plocal

(* ------------------------------------------------------------------ *)
(* Reference interpreter.                                             *)
(*                                                                    *)
(* Re-derives every piece of structure on each call.  Kept as the     *)
(* golden semantics the compiled fast path below must reproduce       *)
(* bit-for-bit (test/test_compile.ml), and as the baseline the        *)
(* evalrate benchmark measures speedups against.                      *)
(* ------------------------------------------------------------------ *)

let run_reference ?(noise_sigma = 0.03) ?(seed = 0) ?(fallback = false) ?iterations ?trace
    machine (g : Graph.t) mapping =
  match Placement.resolve ~fallback machine g mapping with
  | Error e -> Error e
  | Ok pl ->
      let iterations = Option.value iterations ~default:g.iterations in
      if iterations <= 0 then invalid_arg "Exec.run: iterations must be positive";
      let nt = Graph.n_tasks g in
      let offset = Array.make (nt + 1) 0 in
      for tid = 0 to nt - 1 do
        offset.(tid + 1) <- offset.(tid) + (Graph.task g tid).group_size
      done;
      let shards_per_iter = offset.(nt) in
      let n_instances = iterations * shards_per_iter in
      let inst iter tid shard = (iter * shards_per_iter) + offset.(tid) + shard in
      let tid_of = Array.make n_instances 0 in
      let shard_of = Array.make n_instances 0 in
      for iter = 0 to iterations - 1 do
        for tid = 0 to nt - 1 do
          let sz = (Graph.task g tid).group_size in
          for s = 0 to sz - 1 do
            let i = inst iter tid s in
            tid_of.(i) <- tid;
            shard_of.(i) <- s
          done
        done
      done;
      (* Intra-iteration dependence lists, computed once per producer
         (tid, shard) slot and reused for every iteration, paired with
         the consumer shard they feed; [indeg_base] is the per-consumer
         within-iteration indegree. *)
      let out_deps_with_consumer : (dep * int) list array = Array.make shards_per_iter [] in
      let indeg_base = Array.make shards_per_iter 0 in
      (* loop-carried dependencies only bind from iteration 1 onward *)
      let indeg_carried = Array.make shards_per_iter 0 in
      let owner cid = (Graph.collection g cid).owner in
      List.iter
        (fun (e : Graph.edge) ->
          let ts = owner e.src and td = owner e.dst in
          let ss = (Graph.task g ts).group_size and sd = (Graph.task g td).group_size in
          for s = 0 to sd - 1 do
            let main = if ss = sd then s else s * ss / sd in
            let add src_shard bytes =
              if src_shard >= 0 && src_shard < ss && bytes > 0.0 then begin
                let d =
                  {
                    src_tid = ts;
                    src_shard;
                    dst_cid = e.dst;
                    src_cid = e.src;
                    bytes;
                    carried = e.carried;
                  }
                in
                let slot = offset.(ts) + src_shard in
                out_deps_with_consumer.(slot) <- (d, s) :: out_deps_with_consumer.(slot);
                let counter = if e.carried then indeg_carried else indeg_base in
                counter.(offset.(td) + s) <- counter.(offset.(td) + s) + 1
              end
            in
            add main e.bytes;
            match e.pattern with
            | Pattern.Same_shard -> ()
            | Pattern.Halo { frac } ->
                add (main - 1) (e.bytes *. frac);
                add (main + 1) (e.bytes *. frac)
          done)
        g.edges;
      let rng = Rng.create seed in
      (* Pre-draw per-instance noise in a fixed order so the schedule
         does not perturb the random stream. *)
      let noise = Array.make n_instances 1.0 in
      if noise_sigma > 0.0 then
        for i = 0 to n_instances - 1 do
          noise.(i) <- Rng.lognormal rng ~sigma:noise_sigma
        done;
      let indeg = Array.make n_instances 0 in
      for iter = 0 to iterations - 1 do
        for slot = 0 to shards_per_iter - 1 do
          indeg.((iter * shards_per_iter) + slot) <-
            (indeg_base.(slot)
            + if iter > 0 then 1 + indeg_carried.(slot) else 0)
        done
      done;
      let ready_time = Array.make n_instances 0.0 in
      let proc_free = Array.make (Array.length machine.Machine.processors) 0.0 in
      let chan_free = Array.make (n_chan_slots machine) 0.0 in
      (* per-node runtime utility processor: every instance pays the
         mapping-independent dependence-analysis/dispatch cost here *)
      let dispatch_free = Array.make machine.Machine.nodes 0.0 in
      let dispatch_cost = machine.Machine.compute.Machine.runtime_dispatch in
      let events : event Heap.t = Heap.create () in
      let task_times = Array.make nt 0.0 in
      let proc_busy = Array.make (Array.length machine.Machine.processors) 0.0 in
      let bytes_moved = ref 0.0 in
      let channel_bytes = Array.make n_channel_classes 0.0 in
      let n_copies = ref 0 in
      let makespan = ref 0.0 in
      (* duration of an instance (placement-resolved memories) *)
      let duration i =
        let tid = tid_of.(i) and s = shard_of.(i) in
        let task = Graph.task g tid in
        let kind = Mapping.proc_of mapping tid in
        let d =
          Cost.task_duration machine task kind ~arg_mem:(fun c ->
              Placement.effective_mem_kind pl ~cid:c.cid ~shard:s)
        in
        d *. noise.(i)
      in
      let dep_arrived i t =
        ready_time.(i) <- Float.max ready_time.(i) t;
        indeg.(i) <- indeg.(i) - 1;
        if indeg.(i) = 0 then Heap.push events ready_time.(i) (Ready i)
      in
      for i = 0 to n_instances - 1 do
        if indeg.(i) = 0 then Heap.push events 0.0 (Ready i)
      done;
      let iter_of i = i / shards_per_iter in
      let process_done i t_done =
        let tid = tid_of.(i) and s = shard_of.(i) and iter = iter_of i in
        makespan := Float.max !makespan t_done;
        (* next-iteration self dependence *)
        if iter + 1 < iterations then dep_arrived (inst (iter + 1) tid s) t_done;
        (* feed consumers of this iteration *)
        List.iter
          (fun (d, consumer_shard) ->
            let target_iter = if d.carried then iter + 1 else iter in
            if target_iter < iterations then begin
              let dst_tid = owner d.dst_cid in
              let ci = inst target_iter dst_tid consumer_shard in
              let src_mem = Placement.arg_memory pl ~cid:d.src_cid ~shard:d.src_shard in
              let dst_mem = Placement.arg_memory pl ~cid:d.dst_cid ~shard:consumer_shard in
              if src_mem.Machine.mid = dst_mem.Machine.mid then dep_arrived ci t_done
              else begin
                let ch = Machine.channel_between machine src_mem dst_mem in
                let routed_topo =
                  match machine.Machine.topology with
                  | Some topo when ch = Machine.Network -> (
                      match Topology.family topo with
                      | Topology.Direct -> Some topo
                      | _ ->
                          if
                            Topology.distance topo ~src:src_mem.Machine.mnode
                              ~dst:dst_mem.Machine.mnode
                            >= 0
                          then Some topo
                          else None)
                  | _ -> None
                in
                match routed_topo with
                | Some topo ->
                    (* Routed copy: charge every hop of the compiled
                       route in order — optional PCIe staging on FB
                       endpoints, then each link.  The Direct family
                       folds the whole legacy cost into its single
                       node link. *)
                    let bytes = d.bytes in
                    let total =
                      Cost.copy_seconds machine ~src:src_mem ~dst:dst_mem ~bytes
                    in
                    let arrival =
                      if not (Topology.contended topo) then t_done +. total
                      else begin
                        let t = ref t_done in
                        let charge slot cost =
                          let free = chan_free.(slot) in
                          let start = if !t > free then !t else free in
                          let arr = start +. cost in
                          chan_free.(slot) <- arr;
                          t := arr
                        in
                        let base = link_slot_base ~nodes:machine.Machine.nodes in
                        (match Topology.family topo with
                        | Topology.Direct ->
                            charge (base + src_mem.Machine.mnode) total
                        | _ ->
                            let staging =
                              machine.Machine.copy.Machine.local_latency
                              +. (bytes /. machine.Machine.copy.Machine.pcie_bw)
                            in
                            if src_mem.Machine.mkind = Kinds.Frame_buffer then
                              charge
                                ((src_mem.Machine.mnode * n_channel_classes) + 2)
                                staging;
                            Topology.route_iter topo ~src:src_mem.Machine.mnode
                              ~dst:dst_mem.Machine.mnode ~f:(fun l ->
                                charge
                                  (base + l.Topology.lid)
                                  (l.Topology.llat +. (bytes /. l.Topology.lbw)));
                            if dst_mem.Machine.mkind = Kinds.Frame_buffer then
                              charge
                                ((dst_mem.Machine.mnode * n_channel_classes) + 2)
                                staging);
                        !t
                      end
                    in
                    bytes_moved := !bytes_moved +. bytes;
                    channel_bytes.(channel_class_index ch) <-
                      channel_bytes.(channel_class_index ch) +. bytes;
                    incr n_copies;
                    (match trace with
                    | Some collector ->
                        Trace.add collector
                          {
                            Trace.label =
                              Printf.sprintf "%s -> %s"
                                (Graph.collection g d.src_cid).Graph.cname
                                (Graph.collection g d.dst_cid).Graph.cname;
                            kind = Trace.Copy;
                            resource =
                              Printf.sprintf "node%d/%s" src_mem.Machine.mnode
                                channel_class_names.(channel_class_index ch);
                            start_time = t_done;
                            duration = arrival -. t_done;
                          }
                    | None -> ());
                    dep_arrived ci arrival
                | None ->
                    let cost =
                      Cost.copy_seconds machine ~src:src_mem ~dst:dst_mem ~bytes:d.bytes
                    in
                    let slot =
                      channel_slot ~nodes:machine.Machine.nodes src_mem.Machine.mnode ch
                    in
                    let start =
                      if clocks_contended machine then Float.max t_done chan_free.(slot)
                      else t_done
                    in
                    let arrival = start +. cost in
                    if clocks_contended machine then chan_free.(slot) <- arrival;
                    bytes_moved := !bytes_moved +. d.bytes;
                    channel_bytes.(channel_class_index ch) <-
                      channel_bytes.(channel_class_index ch) +. d.bytes;
                    incr n_copies;
                    (match trace with
                    | Some collector ->
                        Trace.add collector
                          {
                            Trace.label =
                              Printf.sprintf "%s -> %s"
                                (Graph.collection g d.src_cid).Graph.cname
                                (Graph.collection g d.dst_cid).Graph.cname;
                            kind = Trace.Copy;
                            resource =
                              Printf.sprintf "node%d/%s" src_mem.Machine.mnode
                                channel_class_names.(channel_class_index ch);
                            start_time = start;
                            duration = cost;
                          }
                    | None -> ());
                    dep_arrived ci arrival
              end
            end)
          out_deps_with_consumer.(offset.(tid) + s)
      in
      let rec loop () =
        match Heap.pop events with
        | None -> ()
        | Some (t, Ready i) ->
            let p = Placement.processor pl ~tid:tid_of.(i) ~shard:shard_of.(i) in
            let node = p.Machine.pnode in
            let dispatched = Float.max t dispatch_free.(node) +. dispatch_cost in
            dispatch_free.(node) <- dispatched;
            let start = Float.max dispatched proc_free.(p.Machine.pid) in
            let d = duration i in
            let t_done = start +. d in
            proc_free.(p.Machine.pid) <- t_done;
            proc_busy.(p.Machine.pid) <- proc_busy.(p.Machine.pid) +. d;
            task_times.(tid_of.(i)) <- task_times.(tid_of.(i)) +. d;
            (match trace with
            | Some collector ->
                Trace.add collector
                  {
                    Trace.label =
                      Printf.sprintf "%s.%d"
                        (Graph.task g tid_of.(i)).Graph.tname
                        shard_of.(i);
                    kind = Trace.Task_exec;
                    resource = proc_resource_name p;
                    start_time = start;
                    duration = d;
                  }
            | None -> ());
            Heap.push events t_done (Done i);
            loop ()
        | Some (t, Done i) ->
            process_done i t;
            loop ()
      in
      loop ();
      Ok
        {
          makespan = !makespan;
          per_iteration = !makespan /. float_of_int iterations;
          task_times;
          proc_busy;
          bytes_moved = !bytes_moved;
          channel_bytes;
          n_copies = !n_copies;
          demotions = Placement.demotions pl;
        }

(* ------------------------------------------------------------------ *)
(* Compiled fast path.                                                *)
(*                                                                    *)
(* [compile] derives every mapping-independent structure once, as     *)
(* flat CSR-style int/float arrays; [simulate] binds a mapping to the *)
(* compiled problem and runs the event loop against a reusable        *)
(* [scratch], allocating only the (small) per-task/per-proc result    *)
(* arrays.  The event order — and therefore every float — is          *)
(* identical to [run_reference]: same dependence traversal order,     *)
(* same RNG draw order, same FIFO tie-breaking in the event queue.    *)
(* ------------------------------------------------------------------ *)

type compiled = {
  cmachine : Machine.t;
  cgraph : Graph.t;
  cplan : Placement.plan;      (* placement order + alias sources *)
  spi : int;                   (* shards (instance slots) per iteration *)
  slot_tid : int array;        (* slot -> owning task *)
  slot_shard : int array;      (* slot -> shard index within the group *)
  task_off : int array;        (* tid -> first slot; length nt+1 *)
  n_cols : int;
  col_owner : int array;       (* cid -> owning task *)
  indeg_base : int array;      (* per-slot within-iteration indegree *)
  indeg_carried : int array;   (* extra indegree from loop-carried edges *)
  (* CSR over producer slots: deps of slot s live in
     dep_*[dep_off.(s) .. dep_off.(s+1) - 1], in the exact order the
     reference interpreter visits them. *)
  dep_off : int array;
  dep_src_slot : int array;    (* producer's slot (inverse of dep_off ranges) *)
  dep_src_cid : int array;
  dep_dst_cid : int array;
  dep_dst_slot : int array;    (* consumer's slot within its iteration *)
  dep_bytes : float array;
  dep_carried : bool array;
  (* CSR over collections: indices of the deps that read or write
     collection c live in cid_dep_idx[cid_dep_off.(c) ..
     cid_dep_off.(c+1) - 1] — the deps whose channel binding a change
     to c's placement can invalidate. *)
  cid_dep_off : int array;
  cid_dep_idx : int array;
  (* slots in task-topological order (producers of every non-carried
     dep before its consumers) — slot numbering itself is task-id
     order, NOT topological, so the static critical-path floor must
     relax along this permutation *)
  topo_slots : int array;
  dispatch_cost : float;
}

(* Committed pop order of one finished run: payloads in the exact order
   the event loop popped them ([(i lsl 1) lor tag]).  No times are
   stored — the loop is deterministic, so admission re-derives every
   float bit-identically; the payload sequence is only needed to know
   *which* event the heap would have popped next without running the
   heap.  One entry per noise seed, tagged with the mapping it was
   committed under so a candidate can diff against it. *)
type timeline = {
  mutable tl_pops : int array;   (* capacity >= tl_n *)
  mutable tl_n : int;            (* = 2 * n_instances of the run *)
  mutable tl_mapping : Mapping.t;
  mutable tl_sigma : float;
  mutable tl_iters : int;
}

(* Shared per-seed noise stream.  Draws are strictly sequential and
   instance-ascending for every run of a seed regardless of mapping, so
   the values can be drawn once and reused by every candidate (and by
   {!run_lower_bound}).  [nrng] is positioned after [nfilled] draws;
   extending the buffer continues the exact stream a fresh
   [Rng.create seed] would produce. *)
type noise_cache = {
  mutable nbuf : float array;
  mutable nfilled : int;
  nrng : Rng.t;
  nsigma : float;
}

(* Indices into the [r_acc] accumulator plane.  Scalar float outputs of
   a simulation live in one preallocated float array rather than in
   [ref] cells: a [float ref] write from an unboxed local re-boxes the
   float, a float-array store never does. *)
let acc_makespan = 0
let acc_bytes = 1
let acc_cut = 2
let acc_per_iter = 3
let acc_sfloor = 4
let n_acc = 5

(* Both per-seed tables are keyed by noise seed; the evaluator's
   common-random-numbers protocol draws every run's seed from a fixed
   window of [runs] values, so a small cap never evicts in practice and
   merely bounds memory for unusual callers.  (64 leaves room for a
   whole portfolio of members sharing one scratch — 8 members x 8 CRN
   seeds.) *)
let seed_table_cap = 64

type scratch = {
  prob : compiled;
  (* per-instance state, grown on demand when [iterations] increases *)
  mutable cap_instances : int;
  mutable ready_time : float array;
  mutable indeg : int array;
  mutable noise : float array;
  (* instance -> (slot, iteration) — [i mod spi] / [i / spi]
     precomputed once per capacity growth, so the per-event handlers
     perform no integer division *)
  mutable inst_slot : int array;
  mutable inst_iter : int array;
  (* per-resource state, fixed size *)
  proc_free : float array;
  chan_free : float array;
  dispatch_free : float array;
  (* mapping-dependent but iteration-independent bindings, recomputed
     once per [simulate] *)
  slot_dur : float array;      (* noise-free duration of one instance *)
  slot_pid : int array;
  slot_node : int array;
  cp : float array;            (* static_floors' critical-path accumulator *)
  dep_chan : int array;        (* -1 same-memory | >= 0 channel slot
                                  | <= -2 routed with (-2 - v) hops *)
  dep_class : int array;
  dep_cost : float array;
  (* routed-copy hop tables: dep [k]'s hops live at [k * hop_stride];
     each hop is a (busy-until slot, seconds) pair.  Empty (stride 0)
     on machines without a topology. *)
  hop_stride : int;
  hop_slot : int array;
  hop_cost : float array;
  dep_cross : bool array;      (* routed dep crosses the bisection cut *)
  (* false only for [:free] (uncontended) topologies: copies still pay
     full path cost but never serialize on the busy-until clocks *)
  contended : bool;
  mutable hop_t : float;       (* running clock of the hop walk *)
  events : Fheap.t;
  (* cache of the last successful bind: the evaluator's §5 protocol
     simulates the same mapping [runs] times in a row with different
     noise seeds, and placement + binding are noise-independent.
     Mappings are immutable values, so physical equality is a sound
     cache key. *)
  mutable bound_mapping : Mapping.t option;
  mutable bound_fallback : bool;
  mutable bound_placement : Placement.t option;
  (* bind-path counters for the pruning benches/tests *)
  mutable delta_binds : int;
  mutable full_binds : int;
  (* bind-cache hits, split by whether this scratch is advertised as
     shared between portfolio members (see {!set_shared}) *)
  mutable shared_scratch : bool;
  mutable bind_hits_shared : int;
  mutable bind_hits_private : int;
  (* ---- incremental re-simulation state ---- *)
  mutable incremental : bool;                    (* master switch *)
  (* flat per-seed tables (struct-of-arrays).  A search touches a
     handful of CRN seeds, so a linear scan beats hashing — and unlike
     [Hashtbl.find_opt], which boxes its [Some], a scan allocates
     nothing on the per-candidate path. *)
  tl_seed : int array;                           (* length seed_table_cap *)
  mutable tls : timeline array;                  (* first n_tls live *)
  mutable n_tls : int;
  nz_seed : int array;
  mutable nzs : noise_cache array;
  mutable n_nzs : int;
  mutable preferred : Mapping.t option;          (* incumbent protection *)
  mutable pop_buf : int array;                   (* pops of the current run *)
  (* virtual heap used while admitting a clean prefix: per-payload push
     priority / insertion seq / pending mark (generation-stamped) *)
  mutable adm_prio : float array;
  mutable adm_seq : int array;
  mutable adm_mark : int array;
  mutable adm_run : int;
  (* per-slot dirty masks of the current candidate diff *)
  ready_dirty : bool array;
  done_dirty : bool array;
  (* replay counters for the benches/stats *)
  mutable cone_replays : int;
  mutable cone_instances : int;
  mutable full_replays : int;
  (* ---- result planes (struct-of-arrays): [sim_core] writes every
     run's outputs here; the record-returning wrappers copy them out,
     so the zero-allocation quiet path and the compat API share one
     event loop ---- *)
  r_task_times : float array;
  r_proc_busy : float array;
  r_channel_bytes : float array;
  r_acc : float array;
  mutable r_n_copies : int;
  mutable r_error : Placement.error option;
  (* ---- per-call event-loop state.  Scratch-resident so the event
     helpers ([push_ev] / [dep_arrived] / [do_ready] / [do_done]) are
     plain top-level functions: no closures means no per-call
     environment allocation, and [@inline] call sites keep every float
     unboxed between them. ---- *)
  mutable sim_iters : int;
  mutable sim_vmode : bool;          (* admission pass: pushes go to adm_* *)
  mutable sim_vseq : int;
  mutable sim_noise : float array;   (* active noise buffer *)
  mutable sim_nfilled : int;
  mutable sim_fill : int;            (* 0 prefilled | 1 shared cache | 2 private rng *)
  mutable sim_ncache : noise_cache;  (* valid when sim_fill = 1 *)
  mutable sim_nrng : Rng.t;          (* valid when sim_fill = 2 *)
  mutable sim_sigma : float;
  mutable sim_trace : Trace.t option;
  (* static-floor memo: {!static_floors} is pure in the bind tables and
     [iterations], so its value survives until the next re-bind *)
  mutable sfloor_valid : bool;
  mutable sfloor_iters : int;
}

let compile machine (g : Graph.t) =
  let nt = Graph.n_tasks g in
  let offset = Array.make (nt + 1) 0 in
  for tid = 0 to nt - 1 do
    offset.(tid + 1) <- offset.(tid) + (Graph.task g tid).group_size
  done;
  let spi = offset.(nt) in
  let slot_tid = Array.make spi 0 in
  let slot_shard = Array.make spi 0 in
  for tid = 0 to nt - 1 do
    for s = 0 to (Graph.task g tid).group_size - 1 do
      slot_tid.(offset.(tid) + s) <- tid;
      slot_shard.(offset.(tid) + s) <- s
    done
  done;
  (* Build the per-producer-slot dependence lists exactly as the
     reference interpreter does, then flatten in the same traversal
     order (list head first). *)
  let out : (int * int * int * float * bool) list array = Array.make spi [] in
  let indeg_base = Array.make spi 0 in
  let indeg_carried = Array.make spi 0 in
  let owner cid = (Graph.collection g cid).owner in
  let n_deps = ref 0 in
  List.iter
    (fun (e : Graph.edge) ->
      let ts = owner e.src and td = owner e.dst in
      let ss = (Graph.task g ts).group_size and sd = (Graph.task g td).group_size in
      for s = 0 to sd - 1 do
        let main = if ss = sd then s else s * ss / sd in
        let add src_shard bytes =
          if src_shard >= 0 && src_shard < ss && bytes > 0.0 then begin
            let slot = offset.(ts) + src_shard in
            out.(slot) <- (e.src, e.dst, offset.(td) + s, bytes, e.carried) :: out.(slot);
            incr n_deps;
            let counter = if e.carried then indeg_carried else indeg_base in
            counter.(offset.(td) + s) <- counter.(offset.(td) + s) + 1
          end
        in
        add main e.bytes;
        match e.pattern with
        | Pattern.Same_shard -> ()
        | Pattern.Halo { frac } ->
            add (main - 1) (e.bytes *. frac);
            add (main + 1) (e.bytes *. frac)
      done)
    g.edges;
  let n_deps = !n_deps in
  let dep_off = Array.make (spi + 1) 0 in
  let dep_src_slot = Array.make n_deps 0 in
  let dep_src_cid = Array.make n_deps 0 in
  let dep_dst_cid = Array.make n_deps 0 in
  let dep_dst_slot = Array.make n_deps 0 in
  let dep_bytes = Array.make n_deps 0.0 in
  let dep_carried = Array.make n_deps false in
  let k = ref 0 in
  for slot = 0 to spi - 1 do
    dep_off.(slot) <- !k;
    List.iter
      (fun (src_cid, dst_cid, dst_slot, bytes, carried) ->
        dep_src_slot.(!k) <- slot;
        dep_src_cid.(!k) <- src_cid;
        dep_dst_cid.(!k) <- dst_cid;
        dep_dst_slot.(!k) <- dst_slot;
        dep_bytes.(!k) <- bytes;
        dep_carried.(!k) <- carried;
        incr k)
      out.(slot)
  done;
  dep_off.(spi) <- !k;
  let n_cols = Graph.n_collections g in
  let col_owner = Array.make (max n_cols 1) 0 in
  List.iter
    (fun (c : Graph.collection) -> col_owner.(c.cid) <- c.owner)
    (Graph.collections g);
  (* collection -> touching deps, CSR (each dep touches its source and
     destination collection; counted once when they coincide) *)
  let cid_count = Array.make (n_cols + 1) 0 in
  let touch f =
    for k = 0 to n_deps - 1 do
      f dep_src_cid.(k) k;
      if dep_dst_cid.(k) <> dep_src_cid.(k) then f dep_dst_cid.(k) k
    done
  in
  touch (fun cid _ -> cid_count.(cid) <- cid_count.(cid) + 1);
  let cid_dep_off = Array.make (n_cols + 1) 0 in
  for cid = 0 to n_cols - 1 do
    cid_dep_off.(cid + 1) <- cid_dep_off.(cid) + cid_count.(cid)
  done;
  let cid_dep_idx = Array.make cid_dep_off.(n_cols) 0 in
  let fill = Array.make (max n_cols 1) 0 in
  touch (fun cid k ->
      cid_dep_idx.(cid_dep_off.(cid) + fill.(cid)) <- k;
      fill.(cid) <- fill.(cid) + 1);
  let topo_slots = Array.make spi 0 in
  (let i = ref 0 in
   List.iter
     (fun (task : Graph.task) ->
       for s = 0 to task.group_size - 1 do
         topo_slots.(!i) <- offset.(task.tid) + s;
         incr i
       done)
     (Graph.topological_order g));
  {
    cmachine = machine;
    cgraph = g;
    cplan = Placement.plan machine g;
    spi;
    slot_tid;
    slot_shard;
    task_off = offset;
    n_cols;
    col_owner;
    indeg_base;
    indeg_carried;
    dep_off;
    dep_src_slot;
    dep_src_cid;
    dep_dst_cid;
    dep_dst_slot;
    dep_bytes;
    dep_carried;
    cid_dep_off;
    cid_dep_idx;
    topo_slots;
    dispatch_cost = machine.Machine.compute.Machine.runtime_dispatch;
  }

let scratch prob =
  let machine = prob.cmachine in
  let n_deps = Array.length prob.dep_bytes in
  let stride = dep_hop_stride machine in
  let dummy_noise = { nbuf = [||]; nfilled = 0; nrng = Rng.create 0; nsigma = 0.0 } in
  {
    prob;
    cap_instances = 0;
    ready_time = [||];
    indeg = [||];
    noise = [||];
    inst_slot = [||];
    inst_iter = [||];
    proc_free = Array.make (Array.length machine.Machine.processors) 0.0;
    chan_free = Array.make (n_chan_slots machine) 0.0;
    dispatch_free = Array.make machine.Machine.nodes 0.0;
    slot_dur = Array.make (max prob.spi 1) 0.0;
    slot_pid = Array.make (max prob.spi 1) 0;
    slot_node = Array.make (max prob.spi 1) 0;
    cp = Array.make (max prob.spi 1) 0.0;
    dep_chan = Array.make (max n_deps 1) 0;
    dep_class = Array.make (max n_deps 1) 0;
    dep_cost = Array.make (max n_deps 1) 0.0;
    hop_stride = stride;
    hop_slot = Array.make (max (n_deps * stride) 1) 0;
    hop_cost = Array.make (max (n_deps * stride) 1) 0.0;
    dep_cross = Array.make (max n_deps 1) false;
    contended = clocks_contended machine;
    hop_t = 0.0;
    events = Fheap.create ();
    bound_mapping = None;
    bound_fallback = false;
    bound_placement = None;
    delta_binds = 0;
    full_binds = 0;
    shared_scratch = false;
    bind_hits_shared = 0;
    bind_hits_private = 0;
    incremental = true;
    tl_seed = Array.make seed_table_cap 0;
    tls = [||];
    n_tls = 0;
    nz_seed = Array.make seed_table_cap 0;
    nzs = [||];
    n_nzs = 0;
    preferred = None;
    pop_buf = [||];
    adm_prio = [||];
    adm_seq = [||];
    adm_mark = [||];
    adm_run = 0;
    ready_dirty = Array.make (max prob.spi 1) false;
    done_dirty = Array.make (max prob.spi 1) false;
    cone_replays = 0;
    cone_instances = 0;
    full_replays = 0;
    r_task_times = Array.make (max (Graph.n_tasks prob.cgraph) 1) 0.0;
    r_proc_busy = Array.make (Array.length machine.Machine.processors) 0.0;
    r_channel_bytes = Array.make n_channel_classes 0.0;
    r_acc = Array.make n_acc 0.0;
    r_n_copies = 0;
    r_error = None;
    sim_iters = 0;
    sim_vmode = false;
    sim_vseq = 0;
    sim_noise = [||];
    sim_nfilled = 0;
    sim_fill = 0;
    sim_ncache = dummy_noise;
    sim_nrng = dummy_noise.nrng;
    sim_sigma = 0.0;
    sim_trace = None;
    sfloor_valid = false;
    sfloor_iters = 0;
  }

let compiled_of_scratch sc = sc.prob
let compiled_machine prob = prob.cmachine
let compiled_graph prob = prob.cgraph
let compiled_words prob = Obj.reachable_words (Obj.repr prob)

let set_shared sc on = sc.shared_scratch <- on
let bind_cache_hits sc = (sc.bind_hits_shared, sc.bind_hits_private)
let bound_mapping sc = sc.bound_mapping

let ensure_capacity sc n =
  if n > sc.cap_instances then begin
    sc.ready_time <- Array.make n 0.0;
    sc.indeg <- Array.make n 0;
    sc.noise <- Array.make n 1.0;
    let spi = sc.prob.spi in
    let is = Array.make n 0 and ii = Array.make n 0 in
    let slot = ref 0 and iter = ref 0 in
    for i = 0 to n - 1 do
      is.(i) <- !slot;
      ii.(i) <- !iter;
      incr slot;
      if !slot = spi then begin
        slot := 0;
        incr iter
      end
    done;
    sc.inst_slot <- is;
    sc.inst_iter <- ii;
    (* generation stamps start over at 0; [adm_run] keeps increasing, so
       stale zeros can never alias a live run's mark *)
    sc.pop_buf <- Array.make (2 * n) 0;
    sc.adm_prio <- Array.make (2 * n) 0.0;
    sc.adm_seq <- Array.make (2 * n) 0;
    sc.adm_mark <- Array.make (2 * n) 0;
    sc.cap_instances <- n
  end

(* ------------------------------------------------------------------ *)
(* Incremental re-simulation support: per-seed noise streams and       *)
(* committed timelines.                                                *)
(* ------------------------------------------------------------------ *)

let set_incremental sc on =
  sc.incremental <- on;
  if not on then begin
    (* nothing will consult the retained state while disabled; dropping
       it keeps [timeline_bytes] an honest account of live memory *)
    sc.n_tls <- 0;
    sc.tls <- [||];
    sc.n_nzs <- 0;
    sc.nzs <- [||]
  end
let incremental sc = sc.incremental

(* Protect the incumbent's timelines from being replaced by candidate
   commits: the search calls this when a candidate is accepted, so the
   entries every neighbour diffs against stay close (1-2 coordinates)
   to the mappings being explored. *)
let prefer_timeline sc mapping = sc.preferred <- Some mapping
let preferred_mapping sc = sc.preferred

let cone_replays sc = sc.cone_replays
let cone_instances sc = sc.cone_instances
let full_replays sc = sc.full_replays

let timeline_bytes sc =
  let b = ref 0 in
  for i = 0 to sc.n_tls - 1 do
    b := !b + (8 * Array.length sc.tls.(i).tl_pops)
  done;
  for i = 0 to sc.n_nzs - 1 do
    b := !b + (8 * Array.length sc.nzs.(i).nbuf)
  done;
  !b

(* Linear scans over the flat seed tables; -1 = absent. *)
let find_timeline sc seed =
  let n = sc.n_tls in
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < n do
    if sc.tl_seed.(!i) = seed then found := !i else incr i
  done;
  !found

(* Index of the noise cache for [seed], creating it when the table has
   room.  -1 = none usable (sigma mismatch on an existing stream, or
   table full): the caller must fall back to a private Rng. *)
let noise_cache_idx sc ~seed ~sigma =
  let n = sc.n_nzs in
  let found = ref (-2) in
  let i = ref 0 in
  while !found = -2 && !i < n do
    if sc.nz_seed.(!i) = seed then
      (* same seed under a different sigma: leave the stream alone *)
      found := (if sc.nzs.(!i).nsigma = sigma then !i else -1)
    else incr i
  done;
  if !found > -2 then !found
  else if n >= seed_table_cap then -1
  else begin
    let c = { nbuf = [||]; nfilled = 0; nrng = Rng.create seed; nsigma = sigma } in
    sc.nz_seed.(n) <- seed;
    if Array.length sc.nzs > n then sc.nzs.(n) <- c
    else sc.nzs <- Array.append sc.nzs [| c |];
    sc.n_nzs <- n + 1;
    n
  end

let noise_reserve c n =
  if Array.length c.nbuf < n then begin
    let nb = Array.make (max n (2 * Array.length c.nbuf)) 1.0 in
    Array.blit c.nbuf 0 nb 0 c.nfilled;
    c.nbuf <- nb
  end

let noise_fill c upto =
  if upto > c.nfilled then begin
    for i = c.nfilled to upto - 1 do
      c.nbuf.(i) <- Rng.lognormal c.nrng ~sigma:c.nsigma
    done;
    c.nfilled <- upto
  end

(* Top-level rather than a local closure of [commit_timeline]: commits
   run once per finished candidate, and a closure environment there
   would be the hot path's only surviving allocation. *)
let write_timeline sc tl ~mapping ~sigma ~iters ~n_pops =
  if Array.length tl.tl_pops < n_pops then tl.tl_pops <- Array.make n_pops 0;
  Array.blit sc.pop_buf 0 tl.tl_pops 0 n_pops;
  tl.tl_n <- n_pops;
  tl.tl_mapping <- mapping;
  tl.tl_sigma <- sigma;
  tl.tl_iters <- iters

let commit_timeline sc ~seed ~mapping ~sigma ~iters ~n_pops =
  let i = find_timeline sc seed in
  if i >= 0 then begin
    let tl = sc.tls.(i) in
    (* keep the incumbent's committed schedule while candidates churn;
       the protection lapses as soon as the preferred mapping moves *)
    let keep =
      match sc.preferred with
      | Some pref -> tl.tl_mapping == pref && mapping != pref
      | None -> false
    in
    if not keep then write_timeline sc tl ~mapping ~sigma ~iters ~n_pops
  end
  else if sc.n_tls < seed_table_cap then begin
    let tl =
      {
        tl_pops = Array.sub sc.pop_buf 0 n_pops;
        tl_n = n_pops;
        tl_mapping = mapping;
        tl_sigma = sigma;
        tl_iters = iters;
      }
    in
    let n = sc.n_tls in
    sc.tl_seed.(n) <- seed;
    if Array.length sc.tls > n then sc.tls.(n) <- tl
    else sc.tls <- Array.append sc.tls [| tl |];
    sc.n_tls <- n + 1
  end

(* Fill the mapping-dependent scratch tables: durations, processors and
   copy channels are the same for an instance slot in every
   iteration.  One task's slots are bound together: a placement with no
   demotions serves every shard its mapped memory kinds, so the
   duration is shard-invariant and is computed once for the whole
   group — rebinding a task then costs one {!Cost.task_duration}, not
   one per shard. *)
let bind_task sc pl mapping tid =
  let prob = sc.prob in
  let machine = prob.cmachine and g = prob.cgraph in
  let task = Graph.task g tid in
  let kind = Mapping.proc_of mapping tid in
  let lo = prob.task_off.(tid) and hi = prob.task_off.(tid + 1) - 1 in
  if Placement.demotions pl = 0 then begin
    let d =
      Cost.task_duration machine task kind ~arg_mem:(fun c ->
          Mapping.mem_of mapping c.Graph.cid)
    in
    for slot = lo to hi do
      let p = Placement.processor pl ~tid ~shard:prob.slot_shard.(slot) in
      sc.slot_pid.(slot) <- p.Machine.pid;
      sc.slot_node.(slot) <- p.Machine.pnode;
      sc.slot_dur.(slot) <- d
    done
  end
  else
    for slot = lo to hi do
      let s = prob.slot_shard.(slot) in
      let p = Placement.processor pl ~tid ~shard:s in
      sc.slot_pid.(slot) <- p.Machine.pid;
      sc.slot_node.(slot) <- p.Machine.pnode;
      sc.slot_dur.(slot) <-
        Cost.task_duration machine task kind ~arg_mem:(fun c ->
            Placement.effective_mem_kind pl ~cid:c.Graph.cid ~shard:s)
    done

let bind_dep sc pl k =
  let prob = sc.prob in
  let machine = prob.cmachine in
  let src_mem =
    Placement.arg_memory pl ~cid:prob.dep_src_cid.(k)
      ~shard:prob.slot_shard.(prob.dep_src_slot.(k))
  in
  let dst_mem =
    Placement.arg_memory pl ~cid:prob.dep_dst_cid.(k)
      ~shard:prob.slot_shard.(prob.dep_dst_slot.(k))
  in
  if src_mem.Machine.mid = dst_mem.Machine.mid then sc.dep_chan.(k) <- -1
  else begin
    let ch = Machine.channel_between machine src_mem dst_mem in
    let routed_topo =
      match machine.Machine.topology with
      | Some topo when ch = Machine.Network -> (
          match Topology.family topo with
          | Topology.Direct -> Some topo
          | _ ->
              if
                Topology.distance topo ~src:src_mem.Machine.mnode
                  ~dst:dst_mem.Machine.mnode
                >= 0
              then Some topo
              else None)
      | _ -> None
    in
    match routed_topo with
    | None ->
        sc.dep_chan.(k) <-
          channel_slot ~nodes:machine.Machine.nodes src_mem.Machine.mnode ch;
        sc.dep_class.(k) <- channel_class_index ch;
        sc.dep_cost.(k) <-
          Cost.copy_seconds machine ~src:src_mem ~dst:dst_mem ~bytes:prob.dep_bytes.(k)
    | Some topo ->
        (* Compile the copy's route once per binding: optional PCIe
           staging hop per FB endpoint, then one hop per link.  The
           Direct family folds the full legacy cost into the source
           node's single link, a slot bijection with the pre-topology
           Network plane. *)
        let bytes = prob.dep_bytes.(k) in
        let base = k * sc.hop_stride in
        let link_base = link_slot_base ~nodes:machine.Machine.nodes in
        let nh = ref 0 in
        let add slot cost =
          sc.hop_slot.(base + !nh) <- slot;
          sc.hop_cost.(base + !nh) <- cost;
          incr nh
        in
        let total = Cost.copy_seconds machine ~src:src_mem ~dst:dst_mem ~bytes in
        (match Topology.family topo with
        | Topology.Direct -> add (link_base + src_mem.Machine.mnode) total
        | _ ->
            let staging =
              machine.Machine.copy.Machine.local_latency
              +. (bytes /. machine.Machine.copy.Machine.pcie_bw)
            in
            if src_mem.Machine.mkind = Kinds.Frame_buffer then
              add ((src_mem.Machine.mnode * n_channel_classes) + 2) staging;
            Topology.route_iter topo ~src:src_mem.Machine.mnode
              ~dst:dst_mem.Machine.mnode ~f:(fun l ->
                add (link_base + l.Topology.lid)
                  (l.Topology.llat +. (bytes /. l.Topology.lbw)));
            if dst_mem.Machine.mkind = Kinds.Frame_buffer then
              add ((dst_mem.Machine.mnode * n_channel_classes) + 2) staging);
        sc.dep_chan.(k) <- -2 - !nh;
        sc.dep_class.(k) <- channel_class_index ch;
        sc.dep_cost.(k) <- total;
        sc.dep_cross.(k) <-
          Topology.side topo src_mem.Machine.mnode
          <> Topology.side topo dst_mem.Machine.mnode
  end

let bind sc pl mapping =
  let prob = sc.prob in
  for tid = 0 to Graph.n_tasks prob.cgraph - 1 do
    bind_task sc pl mapping tid
  done;
  for k = 0 to Array.length prob.dep_bytes - 1 do
    bind_dep sc pl k
  done

(* Re-bind only the entries a coordinate change can invalidate: the
   slots of changed tasks and of tasks owning a changed collection
   (their durations read the collection's effective memory kind), and
   the deps touching any collection whose memory array was recomputed
   by {!Placement.patch}.  Every other entry's inputs — the shared
   processor/memory arrays of unaffected coordinates — are physically
   unchanged, so the skipped entries are already bit-correct. *)
let bind_delta sc pl mapping ~tids ~cids =
  let prob = sc.prob in
  let g = prob.cgraph in
  List.iter (fun tid -> bind_task sc pl mapping tid) tids;
  List.iter
    (fun cid ->
      let o = prob.col_owner.(cid) in
      if not (List.mem o tids) then bind_task sc pl mapping o)
    cids;
  let rebind_deps_of_cid cid =
    for j = prob.cid_dep_off.(cid) to prob.cid_dep_off.(cid + 1) - 1 do
      bind_dep sc pl prob.cid_dep_idx.(j)
    done
  in
  List.iter rebind_deps_of_cid cids;
  List.iter
    (fun tid ->
      List.iter
        (fun (c : Graph.collection) ->
          if not (List.mem c.cid cids) then rebind_deps_of_cid c.cid)
        (Graph.task g tid).args)
    tids

(* Admission eligibility: a diff wider than this dirties so much of the
   timeline that scanning for a clean prefix is wasted work.  Search
   neighbours change 1–2 coordinates (plus a few more after co-location
   repair). *)
let delta_coord_limit = 8

(* Placement patching pays off over a much wider range: {!Placement.patch}
   scales with the affected collections while a full re-resolve walks the
   whole graph, so only give up when most coordinates moved at once
   (e.g. a restart from a random mapping). *)
let patch_coord_limit = 32

(* Resolve + bind, reusing the cached bind when the evaluator re-runs
   the same mapping with a fresh noise seed, and patching it
   (placement + bind tables) when the new mapping is a near neighbour
   of the cached one — the hill-climbing common case. *)
let resolve_bound sc ~fallback mapping =
  match (sc.bound_mapping, sc.bound_placement) with
  | Some m, Some pl when m == mapping && sc.bound_fallback = fallback ->
      if sc.shared_scratch then sc.bind_hits_shared <- sc.bind_hits_shared + 1
      else sc.bind_hits_private <- sc.bind_hits_private + 1;
      Ok pl
  | cached -> (
      let prob = sc.prob in
      let delta =
        (* delta placement is strict-mode only: a fallback placement's
           demotions couple distant coordinates through shared
           capacities, so sharing its arrays would be unsound *)
        match cached with
        | Some m, Some pl when (not fallback) && not sc.bound_fallback -> (
            let tids, cids = Mapping.diff m mapping in
            if List.length tids + List.length cids > patch_coord_limit then None
            else
              match Placement.patch prob.cplan pl mapping ~tids ~cids with
              | Ok pl' ->
                  sc.delta_binds <- sc.delta_binds + 1;
                  sc.sfloor_valid <- false;
                  bind_delta sc pl' mapping ~tids ~cids;
                  Some (Ok pl')
              | Error _ as e ->
                  (* patch replays the full validation/accounting
                     decision, so the error is exactly resolve's *)
                  Some e)
        | _ -> None
      in
      let resolved =
        match delta with
        | Some r -> r
        | None -> (
            match Placement.resolve_with ~fallback prob.cplan mapping with
            | Error _ as e -> e
            | Ok pl ->
                sc.full_binds <- sc.full_binds + 1;
                sc.sfloor_valid <- false;
                bind sc pl mapping;
                Ok pl)
      in
      match resolved with
      | Error _ as e ->
          (* the cached pair still describes the last successful bind:
             keeping it lets the next candidate delta-patch from it
             instead of paying a full resolve after every OOM/invalid
             suggestion *)
          e
      | Ok pl ->
          sc.bound_mapping <- Some mapping;
          sc.bound_fallback <- fallback;
          sc.bound_placement <- Some pl;
          Ok pl)

let delta_binds sc = sc.delta_binds
let full_binds sc = sc.full_binds

type outcome = Finished of result | Cut of float

(* ------------------------------------------------------------------ *)
(* The event loop.                                                     *)
(*                                                                     *)
(* Events are (instance lsl 1) lor tag, tag 0 = Ready, 1 = Done; push  *)
(* order matches the reference so FIFO tie-breaks agree.  The helpers  *)
(* below are top-level [@inline] functions over scratch-resident state *)
(* rather than per-call closures: the admission pass and the live heap *)
(* loop still execute the *same* code path (push_ev branches on        *)
(* [sim_vmode]), but a call to [sim_core] allocates no environment,    *)
(* and inlining keeps every float in registers between helpers.  In    *)
(* the steady state (cached bind, cached noise, committed timeline)    *)
(* a simulation performs zero minor-heap allocation — pinned by        *)
(* test_alloc. *)
(* ------------------------------------------------------------------ *)

(* status codes of [sim_core] / [simulate_quiet] *)
let st_finished = 0
let st_cut = 1
let st_error = 2

(* Lazy noise refill, out of line: int-only signature, and in the
   steady state [sim_nfilled] already covers the run so it is never
   called. *)
let fill_noise sc upto =
  match sc.sim_fill with
  | 1 ->
      let c = sc.sim_ncache in
      noise_fill c upto;
      sc.sim_nfilled <- c.nfilled
  | 2 ->
      let buf = sc.sim_noise in
      let rng = sc.sim_nrng in
      let sigma = sc.sim_sigma in
      for i = sc.sim_nfilled to upto - 1 do
        buf.(i) <- Rng.lognormal rng ~sigma
      done;
      sc.sim_nfilled <- upto
  | _ -> ()

(* Trace emission, out of line: tracing callers are cold by
   construction (admission and timelines are disabled under a trace). *)
let trace_exec_event sc collector slot start d =
  let prob = sc.prob in
  let g = prob.cgraph in
  let tid = prob.slot_tid.(slot) in
  let pl = match sc.bound_placement with Some pl -> pl | None -> assert false in
  let p = Placement.processor pl ~tid ~shard:prob.slot_shard.(slot) in
  Trace.add collector
    {
      Trace.label =
        Printf.sprintf "%s.%d" (Graph.task g tid).Graph.tname prob.slot_shard.(slot);
      kind = Trace.Task_exec;
      resource = proc_resource_name p;
      start_time = start;
      duration = d;
    }

let trace_copy_event sc collector slot k start cost =
  let prob = sc.prob in
  let g = prob.cgraph in
  let pl = match sc.bound_placement with Some pl -> pl | None -> assert false in
  let src_mem =
    Placement.arg_memory pl ~cid:prob.dep_src_cid.(k) ~shard:prob.slot_shard.(slot)
  in
  Trace.add collector
    {
      Trace.label =
        Printf.sprintf "%s -> %s"
          (Graph.collection g prob.dep_src_cid.(k)).Graph.cname
          (Graph.collection g prob.dep_dst_cid.(k)).Graph.cname;
      kind = Trace.Copy;
      resource =
        Printf.sprintf "node%d/%s" src_mem.Machine.mnode
          channel_class_names.(sc.dep_class.(k));
      start_time = start;
      duration = cost;
    }

let[@inline] push_ev sc prio payload =
  if sc.sim_vmode then begin
    sc.adm_prio.(payload) <- prio;
    sc.adm_seq.(payload) <- sc.sim_vseq;
    sc.adm_mark.(payload) <- sc.adm_run;
    sc.sim_vseq <- sc.sim_vseq + 1
  end
  else Fheap.push sc.events prio payload

let[@inline] dep_arrived sc i t =
  let ready_time = sc.ready_time in
  if t > ready_time.(i) then ready_time.(i) <- t;
  let indeg = sc.indeg in
  let d = indeg.(i) - 1 in
  indeg.(i) <- d;
  if d = 0 then push_ev sc ready_time.(i) (i lsl 1)

let[@inline] do_ready sc i t =
  let prob = sc.prob in
  let slot = sc.inst_slot.(i) in
  let node = sc.slot_node.(slot) in
  let free = sc.dispatch_free.(node) in
  let dispatched = (if t > free then t else free) +. prob.dispatch_cost in
  sc.dispatch_free.(node) <- dispatched;
  let pid = sc.slot_pid.(slot) in
  let pfree = sc.proc_free.(pid) in
  let start = if dispatched > pfree then dispatched else pfree in
  if i >= sc.sim_nfilled then fill_noise sc (i + 1);
  let d = sc.slot_dur.(slot) *. sc.sim_noise.(i) in
  let t_done = start +. d in
  sc.proc_free.(pid) <- t_done;
  sc.r_proc_busy.(pid) <- sc.r_proc_busy.(pid) +. d;
  let tid = prob.slot_tid.(slot) in
  sc.r_task_times.(tid) <- sc.r_task_times.(tid) +. d;
  (match sc.sim_trace with
  | Some collector -> trace_exec_event sc collector slot start d
  | None -> ());
  push_ev sc t_done ((i lsl 1) lor 1)

let[@inline] do_done sc i t_done =
  let prob = sc.prob in
  let spi = prob.spi in
  let iter = sc.inst_iter.(i) in
  let slot = sc.inst_slot.(i) in
  let acc = sc.r_acc in
  if t_done > acc.(acc_makespan) then acc.(acc_makespan) <- t_done;
  let iterations = sc.sim_iters in
  (* next-iteration self dependence *)
  if iter + 1 < iterations then dep_arrived sc (i + spi) t_done;
  (* feed consumers *)
  for k = prob.dep_off.(slot) to prob.dep_off.(slot + 1) - 1 do
    let target_iter = if prob.dep_carried.(k) then iter + 1 else iter in
    if target_iter < iterations then begin
      let ci = (target_iter * spi) + prob.dep_dst_slot.(k) in
      let chan = sc.dep_chan.(k) in
      if chan = -1 then dep_arrived sc ci t_done
      else if chan >= 0 then begin
        let cost = sc.dep_cost.(k) in
        let start =
          if sc.contended then begin
            let cfree = sc.chan_free.(chan) in
            if t_done > cfree then t_done else cfree
          end
          else t_done
        in
        let arrival = start +. cost in
        if sc.contended then sc.chan_free.(chan) <- arrival;
        let bytes = prob.dep_bytes.(k) in
        acc.(acc_bytes) <- acc.(acc_bytes) +. bytes;
        let cls = sc.dep_class.(k) in
        sc.r_channel_bytes.(cls) <- sc.r_channel_bytes.(cls) +. bytes;
        sc.r_n_copies <- sc.r_n_copies + 1;
        (match sc.sim_trace with
        | Some collector -> trace_copy_event sc collector slot k start cost
        | None -> ());
        dep_arrived sc ci arrival
      end
      else begin
        (* routed copy: walk the compiled hop row, charging each
           busy-until clock in path order (store-and-forward).  The
           uncontended model pays the same total without queueing. *)
        let arrival =
          if not sc.contended then t_done +. sc.dep_cost.(k)
          else begin
            let nh = -2 - chan in
            let base = k * sc.hop_stride in
            sc.hop_t <- t_done;
            for h = 0 to nh - 1 do
              let hslot = sc.hop_slot.(base + h) in
              let cost = sc.hop_cost.(base + h) in
              let free = sc.chan_free.(hslot) in
              let t = sc.hop_t in
              let start = if t > free then t else free in
              let arr = start +. cost in
              sc.chan_free.(hslot) <- arr;
              sc.hop_t <- arr
            done;
            sc.hop_t
          end
        in
        let bytes = prob.dep_bytes.(k) in
        acc.(acc_bytes) <- acc.(acc_bytes) +. bytes;
        let cls = sc.dep_class.(k) in
        sc.r_channel_bytes.(cls) <- sc.r_channel_bytes.(cls) +. bytes;
        sc.r_n_copies <- sc.r_n_copies + 1;
        (match sc.sim_trace with
        | Some collector ->
            trace_copy_event sc collector slot k t_done (arrival -. t_done)
        | None -> ());
        dep_arrived sc ci arrival
      end
    end
  done

(* One full simulation into the scratch's result planes.  Returns a
   status code ([st_finished] / [st_cut] / [st_error]) instead of a
   constructor so the call frame carries no allocation; the wrappers
   below rebuild the [result] / [outcome] views for record-API
   callers. *)
let sim_core sc mapping ~noise_sigma ~seed ~fallback ~iterations ~trace ~cutoff =
  let prob = sc.prob in
  let bound_ok =
    (* same inline fast path as {!resolve_bound}, minus its [Ok]
       allocation; the slow branch delegates (and the fast condition
       failing here means it cannot re-fire there, so hits are counted
       exactly once) *)
    match sc.bound_mapping with
    | Some m when m == mapping && sc.bound_fallback = fallback ->
        if sc.shared_scratch then sc.bind_hits_shared <- sc.bind_hits_shared + 1
        else sc.bind_hits_private <- sc.bind_hits_private + 1;
        true
    | _ -> (
        match resolve_bound sc ~fallback mapping with
        | Ok _ -> true
        | Error e ->
            sc.r_error <- Some e;
            false)
  in
  if not bound_ok then st_error
  else begin
    if iterations <= 0 then invalid_arg "Exec.simulate: iterations must be positive";
    let spi = prob.spi in
    let n_instances = iterations * spi in
    ensure_capacity sc n_instances;
    (* Noise draws are strictly sequential (instance-ascending, like
       the reference's upfront pass), but filled lazily as the event
       loop first touches an instance: a cutoff-aborted run then skips
       the (Box–Muller) draws for instances it never reached, while a
       full run performs the identical draw sequence.  When a per-seed
       cache is available the stream is shared across runs: continuing
       [nrng] after [nfilled] draws produces exactly the values a
       fresh [Rng.create seed] would, so reuse is bit-identical and
       each seed's draws happen once per search. *)
    sc.sim_sigma <- noise_sigma;
    let ci =
      if sc.incremental && noise_sigma > 0.0 then
        noise_cache_idx sc ~seed ~sigma:noise_sigma
      else -1
    in
    if ci >= 0 then begin
      let c = sc.nzs.(ci) in
      noise_reserve c n_instances;
      sc.sim_fill <- 1;
      sc.sim_ncache <- c;
      sc.sim_noise <- c.nbuf;
      sc.sim_nfilled <- c.nfilled
    end
    else if noise_sigma > 0.0 then begin
      sc.sim_fill <- 2;
      sc.sim_nrng <- Rng.create seed;
      sc.sim_noise <- sc.noise;
      sc.sim_nfilled <- 0
    end
    else begin
      Array.fill sc.noise 0 n_instances 1.0;
      sc.sim_fill <- 0;
      sc.sim_noise <- sc.noise;
      sc.sim_nfilled <- n_instances
    end;
    (* O(n) scratch reset; no allocation *)
    Array.fill sc.proc_free 0 (Array.length sc.proc_free) 0.0;
    Array.fill sc.chan_free 0 (Array.length sc.chan_free) 0.0;
    Array.fill sc.dispatch_free 0 (Array.length sc.dispatch_free) 0.0;
    let indeg = sc.indeg in
    Array.fill sc.ready_time 0 n_instances 0.0;
    let indeg_base = prob.indeg_base and indeg_carried = prob.indeg_carried in
    for iter = 0 to iterations - 1 do
      let base = iter * spi in
      for slot = 0 to spi - 1 do
        indeg.(base + slot) <-
          (indeg_base.(slot) + if iter > 0 then 1 + indeg_carried.(slot) else 0)
      done
    done;
    let events = sc.events in
    Fheap.reset events;
    (* result planes *)
    Array.fill sc.r_task_times 0 (Array.length sc.r_task_times) 0.0;
    Array.fill sc.r_proc_busy 0 (Array.length sc.r_proc_busy) 0.0;
    Array.fill sc.r_channel_bytes 0 n_channel_classes 0.0;
    sc.r_acc.(acc_makespan) <- 0.0;
    sc.r_acc.(acc_bytes) <- 0.0;
    sc.r_acc.(acc_cut) <- 0.0;
    sc.r_n_copies <- 0;
    sc.sim_iters <- iterations;
    sc.sim_trace <- trace;
    let has_trace = match trace with Some _ -> true | None -> false in
    (* ---- incremental admission eligibility: how many leading pops
       of this seed's committed timeline are provably identical under
       [mapping]. ---- *)
    let ti =
      if (not sc.incremental) || fallback || has_trace then -1
      else begin
        let i = find_timeline sc seed in
        if i < 0 then -1
        else begin
          let tl = sc.tls.(i) in
          if
            tl.tl_sigma = noise_sigma && tl.tl_iters = iterations
            && tl.tl_n = 2 * n_instances
          then i
          else -1
        end
      end
    in
    let admit_upto =
      if ti < 0 then 0
      else begin
        let tl = sc.tls.(ti) in
        if tl.tl_mapping == mapping then
          (* identical mapping: the whole committed timeline is clean
             (an empty diff dirties nothing, so the prefix scan the
             general path runs would accept every pop) *)
          tl.tl_n
        else begin
          let tids, cids = Mapping.diff tl.tl_mapping mapping in
          if List.length tids + List.length cids > delta_coord_limit then begin
            sc.full_replays <- sc.full_replays + 1;
            0
          end
          else begin
            (* Dirty masks over instance slots.  Ready processing
               reads slot_dur/slot_pid/slot_node — rebound exactly for
               changed tasks and owners of affected collections; Done
               processing reads dep_chan/dep_class/dep_cost — rebound
               exactly for deps touching an affected collection.  A
               pop whose slot is clean therefore reads only bindings
               both runs share, and (by induction over the prefix)
               only resource state written by earlier clean pops, so
               its times equal the committed run's bit for bit. *)
            let rd = sc.ready_dirty and dd = sc.done_dirty in
            Array.fill rd 0 spi false;
            Array.fill dd 0 spi false;
            List.iter
              (fun tid ->
                for slot = prob.task_off.(tid) to prob.task_off.(tid + 1) - 1 do
                  rd.(slot) <- true
                done)
              tids;
            List.iter
              (fun cid ->
                let o = prob.col_owner.(cid) in
                for slot = prob.task_off.(o) to prob.task_off.(o + 1) - 1 do
                  rd.(slot) <- true
                done;
                for j = prob.cid_dep_off.(cid) to prob.cid_dep_off.(cid + 1) - 1 do
                  dd.(prob.dep_src_slot.(prob.cid_dep_idx.(j))) <- true
                done)
              (Placement.affected_collections prob.cplan ~tids ~cids);
            (* temporal prefix: everything before the first dirty pop
               replays verbatim; the live loop takes over from there,
               which closes the cone through dependence edges and
               same-queue FIFO successors without computing it *)
            let pops = tl.tl_pops in
            let n_pops = tl.tl_n in
            let c = ref 0 in
            let stop = ref false in
            let inst_slot = sc.inst_slot in
            while (not !stop) && !c < n_pops do
              let p = pops.(!c) in
              let slot = inst_slot.(p lsr 1) in
              if (if p land 1 = 0 then rd.(slot) else dd.(slot)) then stop := true
              else incr c
            done;
            if !c < n_pops / 8 then begin
              (* clean prefix too short to beat the plain loop *)
              sc.full_replays <- sc.full_replays + 1;
              0
            end
            else !c
          end
        end
      end
    in
    let pop_buf = sc.pop_buf in
    let cut = ref false in
    let n_popped = ref 0 in
    let in_cone = admit_upto > 0 in
    if in_cone then begin
      (* Admission: replay the clean prefix in committed pop order,
         heap-free.  Pushes are tracked per payload (each event is
         pushed exactly once) with the insertion seq the live heap
         would have assigned; each pop's time is its recorded push
         priority, re-derived by the shared helpers above, and the
         caller's cutoff is checked exactly where the live loop checks
         it (before the pop), so a Cut is bit-identical too. *)
      sc.cone_replays <- sc.cone_replays + 1;
      sc.adm_run <- sc.adm_run + 1;
      sc.sim_vmode <- true;
      sc.sim_vseq <- 0;
      for i = 0 to n_instances - 1 do
        if indeg.(i) = 0 then push_ev sc 0.0 (i lsl 1)
      done;
      let tlp = sc.tls.(ti).tl_pops in
      Array.blit tlp 0 pop_buf 0 admit_upto;
      let adm_prio = sc.adm_prio and adm_mark = sc.adm_mark in
      let run_id = sc.adm_run in
      while (not !cut) && !n_popped < admit_upto do
        let payload = tlp.(!n_popped) in
        assert (adm_mark.(payload) = run_id);
        let t = adm_prio.(payload) in
        if t >= cutoff then begin
          cut := true;
          sc.r_acc.(acc_cut) <- t
        end
        else begin
          adm_mark.(payload) <- 0;
          let i = payload lsr 1 in
          if payload land 1 = 0 then do_ready sc i t else do_done sc i t;
          incr n_popped
        end
      done;
      sc.sim_vmode <- false;
      if not !cut then begin
        (* Reconstruct the heap exactly as the live loop would hold it
           after [admit_upto] pops: every still-pending event re-enters
           with its original insertion seq (heap order is the total
           order (prio, seq), so insertion order is irrelevant), and
           the seq counter resumes where the virtual one left off. *)
        let adm_seq = sc.adm_seq in
        for p = 0 to (2 * n_instances) - 1 do
          if adm_mark.(p) = run_id then
            Fheap.push_with_seq events adm_prio.(p) p ~seq:adm_seq.(p)
        done;
        Fheap.set_next_seq events sc.sim_vseq
      end
    end
    else begin
      sc.sim_vmode <- false;
      for i = 0 to n_instances - 1 do
        if indeg.(i) = 0 then Fheap.push events 0.0 (i lsl 1)
      done
    end;
    while (not !cut) && not (Fheap.is_empty events) do
      let t = Fheap.top_prio events in
      if t >= cutoff then begin
        (* events pop in nondecreasing time order and every pending
           instance still has nonnegative work left, so the final
           makespan is >= t: the caller's bound is unreachable *)
        cut := true;
        sc.r_acc.(acc_cut) <- t
      end
      else begin
        let payload = Fheap.top events in
        Fheap.drop events;
        pop_buf.(!n_popped) <- payload;
        incr n_popped;
        let i = payload lsr 1 in
        if payload land 1 = 0 then begin
          if in_cone then sc.cone_instances <- sc.cone_instances + 1;
          do_ready sc i t
        end
        else do_done sc i t
      end
    done;
    if !cut then st_cut
    else begin
      if sc.incremental && (not fallback) && not has_trace then
        commit_timeline sc ~seed ~mapping ~sigma:noise_sigma ~iters:iterations
          ~n_pops:!n_popped;
      sc.r_acc.(acc_per_iter) <- sc.r_acc.(acc_makespan) /. float_of_int iterations;
      st_finished
    end
  end

(* Record view over the result planes.  The returned arrays are fresh
   copies, so they stay valid across subsequent simulations — the one
   thing the record API allocates. *)
let result_of_planes sc =
  {
    makespan = sc.r_acc.(acc_makespan);
    per_iteration = sc.r_acc.(acc_per_iter);
    task_times = Array.copy sc.r_task_times;
    proc_busy = Array.copy sc.r_proc_busy;
    bytes_moved = sc.r_acc.(acc_bytes);
    channel_bytes = Array.copy sc.r_channel_bytes;
    n_copies = sc.r_n_copies;
    demotions =
      (match sc.bound_placement with Some pl -> Placement.demotions pl | None -> 0);
  }

let simulate_bounded ?(noise_sigma = 0.03) ?(seed = 0) ?(fallback = false) ?iterations
    ?trace ?(cutoff = infinity) sc mapping =
  let iterations = Option.value iterations ~default:sc.prob.cgraph.Graph.iterations in
  let st = sim_core sc mapping ~noise_sigma ~seed ~fallback ~iterations ~trace ~cutoff in
  if st = st_error then Error (match sc.r_error with Some e -> e | None -> assert false)
  else if st = st_cut then Ok (Cut sc.r_acc.(acc_cut))
  else Ok (Finished (result_of_planes sc))

let simulate ?noise_sigma ?seed ?fallback ?iterations ?trace sc mapping =
  match simulate_bounded ?noise_sigma ?seed ?fallback ?iterations ?trace sc mapping with
  | Ok (Finished r) -> Ok r
  | Ok (Cut _) -> assert false (* unreachable without a cutoff *)
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Quiet API: the evaluator's batch loop reads scalar outputs straight *)
(* from the planes, so a steady-state candidate costs zero minor-heap  *)
(* words end to end.                                                   *)
(* ------------------------------------------------------------------ *)

let simulate_quiet sc mapping ~noise_sigma ~seed ~fallback ~iterations ~cutoff =
  sim_core sc mapping ~noise_sigma ~seed ~fallback ~iterations ~trace:None ~cutoff

let[@inline] quiet_makespan sc = sc.r_acc.(acc_makespan)
let[@inline] quiet_per_iteration sc = sc.r_acc.(acc_per_iter)
let[@inline] quiet_cut_time sc = sc.r_acc.(acc_cut)
let quiet_error sc = sc.r_error
let quiet_result sc = result_of_planes sc

(* Noise-independent makespan floors, shared by {!static_lower_bound}
   and {!run_lower_bound}.  Assumes the mapping is already bound.
   Memoized on the bind tables: the evaluator probes the same bound
   mapping once per run plus once per lower-bound check, and the
   floors only depend on the bind tables and [iterations], so the
   scans below run once per (re-)bind instead of once per probe.
   {!resolve_bound} clears [sfloor_valid] whenever it rebinds. *)
let static_floors sc iterations =
  if sc.sfloor_valid && sc.sfloor_iters = iterations then sc.r_acc.(acc_sfloor)
  else begin
  let prob = sc.prob in
  let spi = prob.spi in
  let iters_f = float_of_int iterations in
  let lb = ref 0.0 in
  (* Copies are noise-free and serialized per channel, and a dep with
     a channel performs one copy per target iteration (carried deps
     skip the first), so each channel's total copy time bounds the
     makespan from below: the last copy's arrival feeds an instance
     whose completion the makespan dominates.  This floor is what
     makes the bound tight for communication-dominated mappings on
     multi-node machines. *)
  let chan_busy = sc.chan_free in
  Array.fill chan_busy 0 (Array.length chan_busy) 0.0;
  let cross_bytes = ref 0.0 in
  if sc.contended then
    for slot = 0 to spi - 1 do
      for k = prob.dep_off.(slot) to prob.dep_off.(slot + 1) - 1 do
        let chan = sc.dep_chan.(k) in
        if chan >= 0 then begin
          let times = if prob.dep_carried.(k) then iterations - 1 else iterations in
          chan_busy.(chan) <- chan_busy.(chan) +. (sc.dep_cost.(k) *. float_of_int times)
        end
        else if chan < -1 then begin
          (* routed: each hop serializes on its own link/staging clock *)
          let times = if prob.dep_carried.(k) then iterations - 1 else iterations in
          let tf = float_of_int times in
          let nh = -2 - chan in
          let base = k * sc.hop_stride in
          for h = 0 to nh - 1 do
            let hslot = sc.hop_slot.(base + h) in
            chan_busy.(hslot) <- chan_busy.(hslot) +. (sc.hop_cost.(base + h) *. tf)
          done;
          if sc.dep_cross.(k) then
            cross_bytes := !cross_bytes +. (prob.dep_bytes.(k) *. tf)
        end
      done
    done;
  Array.iter (fun b -> if b > !lb then lb := b) chan_busy;
  (* Bisection floor: every byte crossing the canonical cut transits
     some cut link, so total cross traffic over total cut bandwidth
     bounds the busiest cut link's serial time (weighted mean <= max). *)
  (match prob.cmachine.Machine.topology with
  | Some topo when sc.contended && Topology.bisection_bw topo > 0.0 ->
      let floor = !cross_bytes /. Topology.bisection_bw topo in
      if floor > !lb then lb := floor
  | _ -> ());
  (* A node's runtime issues its instances one dispatch_cost apart, so
     the last instance dispatched on the busiest node cannot finish
     before count * dispatch_cost — a noise-free second floor that
     dominates for dispatch-bound mappings. *)
  if prob.dispatch_cost > 0.0 then begin
    let disp = sc.dispatch_free in
    Array.fill disp 0 (Array.length disp) 0.0;
    for slot = 0 to spi - 1 do
      let n = sc.slot_node.(slot) in
      disp.(n) <- disp.(n) +. prob.dispatch_cost
    done;
    Array.iter
      (fun d ->
        let d = d *. iters_f in
        if d > !lb then lb := d)
      disp
  end;
  (* Critical-path floor over the bound dependence structure: every
     instance completes no earlier than ready + dispatch_cost (the
     event loop's do_ready adds dispatch_cost before any start, and
     durations are nonnegative), and a consumer of a channel-bound dep
     becomes ready no earlier than the producer's completion plus the
     copy's cost (do_done's arrival is >= t_done + cost).  Compute
     noise multipliers can be arbitrarily small, so compute durations
     contribute nothing — only dispatch and copy costs chain, which
     keeps the floor valid for every seed.  Relaxation runs over
     [topo_slots] (slot ids are task-id-ordered, not topological) and
     only intra-iteration deps; the per-slot cross-iteration
     serialization (dep_arrived (i + spi)) then adds dispatch_cost per
     extra iteration on top of the deepest first-iteration path. *)
  if prob.dispatch_cost > 0.0 || Array.length prob.dep_bytes > 0 then begin
    let cp = sc.cp in
    Array.fill cp 0 spi 0.0;
    let cp_max = ref 0.0 in
    Array.iter
      (fun slot ->
        let done_floor = cp.(slot) +. prob.dispatch_cost in
        if done_floor > !cp_max then cp_max := done_floor;
        for k = prob.dep_off.(slot) to prob.dep_off.(slot + 1) - 1 do
          if not prob.dep_carried.(k) then begin
            let arrival =
              (* any copy (kind-level or routed) delays its consumer by
                 at least its full noise-free cost *)
              if sc.dep_chan.(k) <> -1 then done_floor +. sc.dep_cost.(k)
              else done_floor
            in
            let dst = prob.dep_dst_slot.(k) in
            if arrival > cp.(dst) then cp.(dst) <- arrival
          end
        done)
      prob.topo_slots;
    let floor = !cp_max +. (float_of_int (iterations - 1) *. prob.dispatch_cost) in
    if floor > !lb then lb := floor
  end;
  sc.r_acc.(acc_sfloor) <- !lb;
  sc.sfloor_iters <- iterations;
  sc.sfloor_valid <- true;
  !lb
  end

let static_lower_bound ?(fallback = false) ?iterations sc mapping =
  match resolve_bound sc ~fallback mapping with
  | Error e -> Error e
  | Ok _ ->
      let iterations =
        Option.value iterations ~default:sc.prob.cgraph.Graph.iterations
      in
      if iterations <= 0 then
        invalid_arg "Exec.static_lower_bound: iterations must be positive";
      Ok (static_floors sc iterations)

let run_lower_bound ?(noise_sigma = 0.03) ?(seed = 0) ?(fallback = false) ?iterations sc
    mapping =
  let prob = sc.prob in
  match resolve_bound sc ~fallback mapping with
  | Error e -> Error e
  | Ok _ ->
      let iterations = Option.value iterations ~default:prob.cgraph.Graph.iterations in
      if iterations <= 0 then
        invalid_arg "Exec.run_lower_bound: iterations must be positive";
      let spi = prob.spi in
      let iters_f = float_of_int iterations in
      (* Every processor executes its instances serially, so the
         busiest processor's total noise-scaled work bounds the final
         makespan from below.  The draws replay the exact instance-
         ascending noise sequence [simulate] performs for this seed
         (both start from a fresh [Rng.create seed]), so the bound is
         certified for the run the caller would otherwise simulate.
         [proc_free]/[dispatch_free] serve as accumulators; any
         subsequent simulation resets them first. *)
      let busy = sc.proc_free in
      Array.fill busy 0 (Array.length busy) 0.0;
      if noise_sigma > 0.0 then begin
        (* The loop nest visits instances in ascending order (iteration-
           major, slot within), which is exactly the draw order, so the
           per-seed cache substitutes values without changing a single
           float operation — and turns the per-candidate Box–Muller cost
           into a once-per-seed cost across the whole search. *)
        let ci =
          if sc.incremental then noise_cache_idx sc ~seed ~sigma:noise_sigma else -1
        in
        if ci >= 0 then begin
          let c = sc.nzs.(ci) in
          let n = iterations * spi in
          noise_reserve c n;
          noise_fill c n;
          let nbuf = c.nbuf in
          for iter = 0 to iterations - 1 do
            let base = iter * spi in
            for slot = 0 to spi - 1 do
              let x = nbuf.(base + slot) in
              let pid = sc.slot_pid.(slot) in
              busy.(pid) <- busy.(pid) +. (sc.slot_dur.(slot) *. x)
            done
          done
        end
        else begin
          let rng = Rng.create seed in
          for _iter = 1 to iterations do
            for slot = 0 to spi - 1 do
              let x = Rng.lognormal rng ~sigma:noise_sigma in
              let pid = sc.slot_pid.(slot) in
              busy.(pid) <- busy.(pid) +. (sc.slot_dur.(slot) *. x)
            done
          done
        end
      end
      else
        for slot = 0 to spi - 1 do
          let pid = sc.slot_pid.(slot) in
          busy.(pid) <- busy.(pid) +. (sc.slot_dur.(slot) *. iters_f)
        done;
      let lb = ref 0.0 in
      Array.iter (fun b -> if b > !lb then lb := b) busy;
      let s = static_floors sc iterations in
      if s > !lb then lb := s;
      Ok !lb

(* Compatibility wrapper: compile-and-run once.  Callers that evaluate
   many mappings on the same (machine, graph) should compile once and
   keep a scratch (as {!Evaluator} does). *)
let run ?noise_sigma ?seed ?fallback ?iterations ?trace machine g mapping =
  simulate ?noise_sigma ?seed ?fallback ?iterations ?trace
    (scratch (compile machine g))
    mapping

let profile ?iterations machine g mapping =
  match run ~noise_sigma:0.0 ?iterations machine g mapping with
  | Ok r -> Array.to_list (Array.mapi (fun tid t -> (tid, t)) r.task_times)
  | Error e -> failwith ("Exec.profile: " ^ Placement.error_to_string e)
