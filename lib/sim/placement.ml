type t = {
  machine : Machine.t;
  graph : Graph.t;
  procs : Machine.processor array array;  (* [tid].(shard) *)
  mems : Machine.memory array array;      (* [cid].(shard) *)
  usage : float array;                    (* bytes per mid *)
  demotions : int;
}

type error = Invalid_mapping of string | Out_of_memory of string

let error_to_string = function
  | Invalid_mapping s -> "invalid mapping: " ^ s
  | Out_of_memory s -> "out of memory: " ^ s

(* Distribution of [shards] across [nodes] (§3.1): blocked puts shard s
   on node s·nodes/shards (neighbouring shards share a node — good for
   halo locality); cyclic deals shards round-robin (better load spread,
   more neighbour traffic).  The paper fixes blocked; cyclic is part of
   the extended search space. *)
let node_of_shard ~distribute ~strategy ~nodes ~shards s =
  if not distribute then 0
  else
    match (strategy : Mapping.dist_strategy) with
    | Mapping.Cyclic -> s mod nodes
    | Mapping.Blocked -> if shards >= nodes then s * nodes / shards else s

(* Round-robin across the same-kind processors of the node (§3.2 and
   the Circuit discussion in §5: AutoMap uses a round-robin strategy
   within the selected kind). *)
let local_of_shard ~per_node_rank ~nprocs = per_node_rank mod nprocs

let place_shards machine (g : Graph.t) mapping tid =
  let task = Graph.task g tid in
  let kind = Mapping.proc_of mapping tid in
  let distribute = Mapping.distribute_of mapping tid in
  let strategy = Mapping.strategy_of mapping tid in
  let nodes = machine.Machine.nodes in
  let nprocs = Machine.procs_of_kind_per_node machine kind in
  let shards = task.group_size in
  let node_rank = Array.make nodes 0 in
  Array.init shards (fun s ->
      let node = node_of_shard ~distribute ~strategy ~nodes ~shards s in
      let rank = node_rank.(node) in
      node_rank.(node) <- rank + 1;
      Machine.proc machine ~node ~kind
        ~local:(local_of_shard ~per_node_rank:rank ~nprocs))

exception Oom of string

(* Mapping-independent placement structure: the (task, argument) steps
   in the fixed topological placement order, and the alias sources of
   each collection.  Deriving this once per (machine, graph) lets a
   search both resolve candidates without re-sorting the graph and
   patch a neighbour's placement from its incumbent's ({!patch}). *)
type plan = {
  pmachine : Machine.t;
  pgraph : Graph.t;
  n_cols : int;
  steps : (Graph.task * Graph.collection) array;
  (* Alias detection: an argument colocated with another instance of
     the same logical data references that physical instance and costs
     no extra capacity.  Two arguments refer to the same data when an
     edge connects them (producer/consumer) or when they fully overlap
     (|c1∩c2| equals the smaller argument — e.g. two readers of the
     same input region).  Halo consumers additionally hold a small
     ghost region we do not charge. *)
  producers : int list array;
  dependents : int list array;  (* reverse of [producers] *)
  (* Every collection is an argument of exactly one task, so it is
     placed by exactly one step; its index makes the "already placed"
     half of the alias predicate a static order test, which is what
     lets {!patch} recompute alias flags out of step order. *)
  step_of : int array;
  (* cid-indexed view of the graph's collections: [Graph.collection]
     rebuilds the collection list per call, far too slow for the alias
     checks {!account} and {!patch} run per shard *)
  cols : Graph.collection array;
}

let plan machine (g : Graph.t) =
  let nc = Graph.n_collections g in
  let producers = Array.make (max nc 1) [] in
  List.iter
    (fun (e : Graph.edge) -> producers.(e.dst) <- e.src :: producers.(e.dst))
    g.edges;
  List.iter
    (fun (c1, c2, w) ->
      let b1 = (Graph.collection g c1).Graph.bytes
      and b2 = (Graph.collection g c2).Graph.bytes in
      if w >= 0.999 *. Float.min b1 b2 then begin
        producers.(c1) <- c2 :: producers.(c1);
        producers.(c2) <- c1 :: producers.(c2)
      end)
    g.overlaps;
  let dependents = Array.make (max nc 1) [] in
  Array.iteri
    (fun cid srcs ->
      List.iter (fun src -> dependents.(src) <- cid :: dependents.(src)) srcs)
    producers;
  let steps =
    Graph.topological_order g
    |> List.concat_map (fun (task : Graph.task) ->
           List.map (fun (c : Graph.collection) -> (task, c)) task.args)
    |> Array.of_list
  in
  let step_of = Array.make (max nc 1) 0 in
  Array.iteri (fun i (_, (c : Graph.collection)) -> step_of.(c.cid) <- i) steps;
  let cols =
    match Graph.collections g with
    | [] -> [||]
    | c0 :: _ as l ->
        let arr = Array.make nc c0 in
        List.iter (fun (c : Graph.collection) -> arr.(c.cid) <- c) l;
        arr
  in
  { pmachine = machine; pgraph = g; n_cols = nc; steps; producers; dependents; step_of;
    cols }

let plan_machine pl = pl.pmachine
let plan_graph pl = pl.pgraph

(* The capacity-accounting core of {!resolve_with}: placement steps run
   in the plan's fixed order, charging each non-aliased instance
   against its memory's capacity. *)
let account pl ~fallback mapping procs =
  let machine = pl.pmachine and g = pl.pgraph in
  let mems = Array.make pl.n_cols [||] in
  let usage = Array.make (Array.length machine.Machine.memories) 0.0 in
  let demotions = ref 0 in
  let place_arg ((task : Graph.task), (c : Graph.collection)) =
    let shards = task.group_size in
    let arr =
      Array.init shards (fun s ->
          Machine.closest_memory machine procs.(task.tid).(s)
            (Mapping.mem_of mapping c.cid))
    in
    (* Capacity accounting with aliasing: a Same_shard consumer whose
       instance coincides with its producer's reuses the physical
       instance and costs nothing. *)
    for s = 0 to shards - 1 do
      let aliased =
        List.exists
          (fun src_cid ->
            let src_task = Graph.task g pl.cols.(src_cid).Graph.owner in
            let src_shards = src_task.group_size in
            let src_shard = if src_shards = shards then s else s * src_shards / shards in
            Array.length mems.(src_cid) > src_shard
            && mems.(src_cid).(src_shard).Machine.mid = arr.(s).Machine.mid)
          pl.producers.(c.cid)
      in
      if not aliased then begin
        let charge mem =
          let mid = mem.Machine.mid in
          if usage.(mid) +. c.bytes > mem.Machine.capacity then None
          else begin
            usage.(mid) <- usage.(mid) +. c.bytes;
            Some mem
          end
        in
        match charge arr.(s) with
        | Some _ -> ()
        | None when not fallback ->
            raise
              (Oom
                 (Printf.sprintf
                    "collection c%d (%s) of task %d (%s): %s of node %d full (shard %d)"
                    c.cid c.cname task.tid task.tname
                    (Kinds.mem_kind_to_string arr.(s).Machine.mkind)
                    arr.(s).Machine.mnode s))
        | None -> (
            (* walk the priority list for a kind with room *)
            let proc = procs.(task.tid).(s) in
            let rec try_kinds = function
              | [] ->
                  raise
                    (Oom
                       (Printf.sprintf
                          "collection c%d (%s) of task %d (%s): no memory accessible from %s can hold it (shard %d)"
                          c.cid c.cname task.tid task.tname
                          (Kinds.proc_kind_to_string proc.Machine.pkind)
                          s))
              | k :: rest -> (
                  let mem = Machine.closest_memory machine proc k in
                  match charge mem with
                  | Some m ->
                      incr demotions;
                      m
                  | None -> try_kinds rest)
            in
            match Mapping.memory_priority mapping task c.cid with
            | [] -> assert false
            | _ :: lower -> arr.(s) <- try_kinds lower)
      end
    done;
    mems.(c.cid) <- arr
  in
  try
    Array.iter place_arg pl.steps;
    Ok { machine; graph = g; procs; mems; usage; demotions = !demotions }
  with Oom msg -> Error (Out_of_memory msg)

let resolve_with ?(fallback = false) pl mapping =
  match Mapping.validate pl.pgraph pl.pmachine mapping with
  | Error e -> Error (Invalid_mapping e)
  | Ok () ->
      let nt = Graph.n_tasks pl.pgraph in
      let procs = Array.init nt (place_shards pl.pmachine pl.pgraph mapping) in
      account pl ~fallback mapping procs

let resolve ?fallback machine g mapping = resolve_with ?fallback (plan machine g) mapping

(* The collections whose memory arrays a ~tids/~cids coordinate change
   can move: the changed collections themselves, plus every argument of
   a task whose shard placement changed (their closest-memory anchors
   moved).  This is both the set {!patch} re-derives and the dirty seed
   set incremental re-simulation starts its cone from ({!Exec}). *)
let affected_collections pl ~tids ~cids =
  let g = pl.pgraph in
  let hit = Array.make pl.n_cols false in
  List.iter (fun cid -> hit.(cid) <- true) cids;
  List.iter
    (fun tid ->
      List.iter (fun (c : Graph.collection) -> hit.(c.cid) <- true) (Graph.task g tid).args)
    tids;
  let acc = ref [] in
  for cid = pl.n_cols - 1 downto 0 do
    if hit.(cid) then acc := cid :: !acc
  done;
  !acc

let patch pl prev mapping ~tids ~cids =
  let machine = pl.pmachine and g = pl.pgraph in
  (* Delta validation: [prev]'s mapping passed the full §4.2 check, so
     only the changed coordinates can have introduced a violation — a
     changed task's kind/variant/argument accessibility, or a changed
     collection's accessibility from its (unchanged) owner.  When a
     check fails we defer to the full validator so the error message is
     identical to {!resolve}'s. *)
  let coords_ok =
    List.for_all
      (fun tid ->
        let task = Graph.task g tid in
        let k = Mapping.proc_of mapping tid in
        Machine.procs_of_kind_per_node machine k > 0
        && Graph.has_variant task k
        && List.for_all
             (fun (c : Graph.collection) ->
               Kinds.accessible k (Mapping.mem_of mapping c.cid))
             task.args)
      tids
    && List.for_all
         (fun cid ->
           let owner = pl.cols.(cid).Graph.owner in
           Kinds.accessible (Mapping.proc_of mapping owner) (Mapping.mem_of mapping cid))
         cids
  in
  if not coords_ok then
    match Mapping.validate g machine mapping with
    | Error e -> Error (Invalid_mapping e)
    | Ok () -> assert false
  else begin
    let procs = Array.copy prev.procs in
    List.iter (fun tid -> procs.(tid) <- place_shards machine g mapping tid) tids;
    let affected = Array.make pl.n_cols false in
    List.iter (fun cid -> affected.(cid) <- true) (affected_collections pl ~tids ~cids);
    (* Capacity charges can additionally flip for direct consumers of a
       changed array — and only for those: a consumer's own array is
       unchanged, so collections aliasing against *it* still see the
       same mids.  One level of the dependents graph closes the set. *)
    let touched = Array.copy affected in
    Array.iteri
      (fun cid hit ->
        if hit then List.iter (fun d -> touched.(d) <- true) pl.dependents.(cid))
      affected;
    let mems = Array.copy prev.mems in
    Array.iteri
      (fun cid hit ->
        if hit then begin
          let c = pl.cols.(cid) in
          let task = Graph.task g c.owner in
          mems.(cid) <-
            Array.init task.group_size (fun s ->
                Machine.closest_memory machine procs.(task.tid).(s)
                  (Mapping.mem_of mapping cid))
        end)
      affected;
    (* The alias predicate of {!account} on a complete placement:
       [mems.(src)] is non-empty there exactly when src's step precedes
       c's, so with full arrays the test is a static order check. *)
    let aliased lookup (c : Graph.collection) ~shards s mid =
      let step_c = pl.step_of.(c.cid) in
      List.exists
        (fun src_cid ->
          pl.step_of.(src_cid) < step_c
          &&
          let src_task = Graph.task g pl.cols.(src_cid).Graph.owner in
          let src_shards = src_task.group_size in
          let src_shard = if src_shards = shards then s else s * src_shards / shards in
          let src_arr : Machine.memory array = lookup src_cid in
          Array.length src_arr > src_shard
          && src_arr.(src_shard).Machine.mid = mid)
        pl.producers.(c.cid)
    in
    (* Move only the charges that changed.  Byte counts are
       integer-valued, so the incremental sums are exact and the final
       totals equal a from-scratch replay's; strict-mode usage grows
       monotonically during that replay, so it raises OOM iff some
       final total exceeds its capacity.  When a grown memory exceeds
       capacity we defer to the full resolver for its canonical error
       (and the authoritative verdict). *)
    let usage = Array.copy prev.usage in
    let grew = ref [] in
    Array.iteri
      (fun cid hit ->
        if hit then begin
          let c = pl.cols.(cid) in
          let shards = (Graph.task g c.owner).Graph.group_size in
          let old_arr = prev.mems.(cid) and new_arr = mems.(cid) in
          for s = 0 to shards - 1 do
            let old_mid = old_arr.(s).Machine.mid
            and new_mid = new_arr.(s).Machine.mid in
            let was =
              if aliased (fun i -> prev.mems.(i)) c ~shards s old_mid then -1
              else old_mid
            and now =
              if aliased (fun i -> mems.(i)) c ~shards s new_mid then -1 else new_mid
            in
            if was <> now then begin
              if was >= 0 then usage.(was) <- usage.(was) -. c.bytes;
              if now >= 0 then begin
                usage.(now) <- usage.(now) +. c.bytes;
                grew := now :: !grew
              end
            end
          done
        end)
      touched;
    let over =
      List.exists
        (fun mid ->
          usage.(mid) > machine.Machine.memories.(mid).Machine.capacity)
        !grew
    in
    if over then resolve_with pl mapping
    else Ok { machine; graph = g; procs; mems; usage; demotions = prev.demotions }
  end

let shards t tid = Array.length t.procs.(tid)
let processor t ~tid ~shard = t.procs.(tid).(shard)
let arg_memory t ~cid ~shard = t.mems.(cid).(shard)
let effective_mem_kind t ~cid ~shard = (arg_memory t ~cid ~shard).Machine.mkind
let demotions t = t.demotions
let bytes_resident t (mem : Machine.memory) = t.usage.(mem.Machine.mid)
