(** Concrete placement: from kind-level mapping decisions to devices.

    This is the deterministic "runtime logic" half of §3.2's
    factorization.  Given a mapping, every shard of every group task is
    assigned a concrete processor — blocked across nodes (or all on the
    leader node when the distribution bit is off, §3.1), round-robin
    across the same-kind processors within a node — and every
    collection argument of that shard is materialized in the memory of
    the mapped kind closest to that processor.

    Placement also performs the capacity check of §3.1/§5.2: the bytes
    resident in each physical memory are accumulated, and a mapping
    that exceeds a capacity either fails with [Out_of_memory] (strict
    mode, the behaviour the search relies on) or, in fallback mode,
    demotes the argument along its memory priority list (§3.1's
    generalized mapping). *)

type t

type error =
  | Invalid_mapping of string    (** violates §4.2 constraint (1) *)
  | Out_of_memory of string      (** a memory capacity is exceeded *)

val resolve :
  ?fallback:bool -> Machine.t -> Graph.t -> Mapping.t -> (t, error) Stdlib.result
(** [fallback] defaults to false (strict). *)

(** {1 Plans and delta placement}

    A search resolves thousands of candidate mappings against the same
    (machine, graph) pair, and hill-climbing candidates differ from
    their incumbent in one or two coordinates.  A {!plan} captures the
    mapping-independent placement structure (the topological placement
    order and each collection's alias sources) once; {!resolve_with}
    resolves against it without re-deriving that structure, and
    {!patch} re-resolves only what a coordinate change can affect. *)

type plan
(** Mapping-independent placement structure for one (machine, graph)
    pair.  Immutable; safe to share across domains. *)

val plan : Machine.t -> Graph.t -> plan
val plan_machine : plan -> Machine.t
val plan_graph : plan -> Graph.t

val resolve_with : ?fallback:bool -> plan -> Mapping.t -> (t, error) Stdlib.result
(** Exactly {!resolve} against a precomputed plan (bit-identical
    result, including error messages). *)

val affected_collections : plan -> tids:int list -> cids:int list -> int list
(** The collections whose memory placement a change at coordinates
    [~tids]/[~cids] (as computed by {!Mapping.diff}) can move: the
    changed collections plus every argument of a changed task (its
    closest-memory anchors moved).  Sorted ascending, deduplicated.
    This is both the set {!patch} re-derives and the dirty seed set
    incremental re-simulation grows its cone from ({!Exec}). *)

val patch :
  plan -> t -> Mapping.t -> tids:int list -> cids:int list -> (t, error) Stdlib.result
(** [patch pl prev mapping ~tids ~cids] resolves [mapping] strictly
    (no fallback), reusing [prev] — a *strict* placement of a mapping
    that differs from [mapping] exactly at task coordinates [tids] and
    collection coordinates [cids] (as computed by {!Mapping.diff}).
    Shard processors are recomputed only for [tids]; memory arrays are
    recomputed only for collections in [cids] or owned by a task in
    [tids]; capacity charges are adjusted only where they can change
    (those collections plus their direct alias consumers).  Byte counts
    are integers, so the adjusted totals are exact, and a capacity
    violation defers to a full {!resolve_with} for the canonical
    verdict — the result (placements, usage, OOM or invalid-mapping
    errors and their messages) is identical to
    [resolve_with ~fallback:false pl mapping]. *)

val shards : t -> int -> int
(** Number of shards of task [tid] (its group size). *)

val processor : t -> tid:int -> shard:int -> Machine.processor

val arg_memory : t -> cid:int -> shard:int -> Machine.memory
(** The memory instance actually holding the argument for that shard
    (after any fallback demotion). *)

val effective_mem_kind : t -> cid:int -> shard:int -> Kinds.mem_kind

val demotions : t -> int
(** How many (argument, shard) placements fell back to a lower-priority
    memory kind (0 in strict mode). *)

val bytes_resident : t -> Machine.memory -> float
(** Bytes accounted to a concrete memory by this placement. *)

val error_to_string : error -> string
