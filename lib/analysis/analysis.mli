(** Static feasibility analysis of a (machine, graph) pair (§4.2).

    The search only ever discovers a §4.2 constraint violation
    dynamically — by paying for a {!Placement.resolve} that returns
    [Invalid_mapping]/OOM, or by answering a constraint-unaware
    proposal with a penalty.  Everything this module derives is known
    before the first evaluation:

    - {b machine lint}: memory kinds no present processor kind can
      reach (constraint (1) unsatisfiable for any collection mapped
      there), dead channels, zero-capacity memories, asymmetric
      channel pairs;
    - {b coordinate domains}: for every task the processor kinds with
      a variant, present processors and a capacity-feasible memory for
      each argument; for every collection the memory kinds whose
      capacity admits its footprint.  Singleton domains are {e forced}
      coordinates; an empty domain certifies infeasibility;
    - {b co-location analysis}: union-find over the overlap graph C
      produces the constraint groups of each CCD rotation; member
      domains are intersected and groups whose combined footprint fits
      no single memory kind are flagged;
    - {b critical-path / per-kind work summary}: mapping-independent
      floors and totals.

    {b Soundness contract} (test/test_analysis.ml): the analyzer never
    excludes a coordinate value that [Mapping.validate] + strict
    [Placement.resolve] would accept.  Domain exclusions therefore use
    only certificates that imply {e every} completion of the partial
    assignment fails.  The capacity certificate is the least fixed
    point [fit(c,m) = bytes(c) <= capacity(m) \/ exists s in
    sources(c). fit(s,m)] over the alias sources (edge producers and
    full overlap partners, mirroring [Placement.plan]): an aliased
    instance costs no capacity only when a source instance occupies the
    same physical memory, and every alias chain terminates in a charged
    instance, so when no transitive source fits, every strict placement
    of [c] in [m] OOMs.  Co-location violations are at most warnings:
    [Placement.resolve] does not enforce constraint (2), and CCD
    relaxes C to empty by its final rotation. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type diagnostic = {
  severity : severity;
  code : string;     (** stable machine-readable code, e.g. ["unreachable-memory"] *)
  subject : string;  (** the coordinate or machine element, analyzer-style:
                         ["task 3 (update)"], ["collection c7 (halo)"], ["machine"] *)
  message : string;
}

(** {1 Coordinate domains} *)

type domains
(** Per-coordinate value domains: for each task the feasible processor
    kinds, for each (collection, owner kind) the feasible memory
    kinds.  Sound by construction (see above); an empty domain means
    the coordinate certifiably admits no strictly-placeable value. *)

val compute_domains : Machine.t -> Graph.t -> domains
(** The domain computation alone — cheap (no lint, no groups); what
    {!Space} uses to restrict sampling and neighbour generation. *)

val proc_domain : domains -> int -> Kinds.proc_kind list
(** Feasible processor kinds of task [tid], preserving the task's
    variant order (so an unpruned domain is exactly the list
    {!Space.proc_choices} used before domains existed).  Subset of the
    task's variants present on the machine. *)

val mem_domain : domains -> cid:int -> Kinds.proc_kind -> Kinds.mem_kind list
(** Feasible memory kinds for collection [cid] when its owner runs on
    kind [k]: [Kinds.accessible_mem_kinds k] minus the certified
    capacity-infeasible kinds, preserving the fastest-first order. *)

val mem_feasible : domains -> cid:int -> Kinds.mem_kind -> bool
(** Whether [m] is capacity-feasible for [cid] (ignoring owner-kind
    accessibility). *)

(** {1 Dominance} *)

type dominance
(** Per-coordinate value dominance beyond capacity pruning: a value is
    recorded as dominated when replacing it by its dominator in {e any}
    completion of the partial assignment yields an equal-or-better
    noise-free cost.  Two conservative certificates are used (see
    DESIGN.md §14): memory kinds of communication-free collections
    whose dominator has >= execution bandwidth, fits directly and
    cannot be crowded past capacity by any co-resident placement; and
    processor kinds of tasks whose arguments are forced to Zero-copy
    under the dominated kind, where the swap keeps every memory
    instance (hence every copy and capacity charge) identical and the
    dominator has an exclusive processor pool, no more launch overhead,
    no slower all-Zero-copy duration and at least as many processors
    per node. *)

val compute_dominance : Machine.t -> Graph.t -> domains -> dominance

val dominated_procs :
  dominance -> int -> (Kinds.proc_kind * Kinds.proc_kind) list
(** [(dominated, dominator)] pairs for task [tid]; dominators always
    survive the pruning themselves. *)

val dominated_mems :
  dominance -> cid:int -> Kinds.proc_kind -> (Kinds.mem_kind * Kinds.mem_kind) list
(** [(dominated, dominator)] pairs for collection [cid] under owner
    kind [k]. *)

val proc_surviving :
  dominance -> int -> Kinds.proc_kind list -> Kinds.proc_kind list
(** Filter a processor choice list of task [tid] down to undominated
    values, order preserved; never empties a list that contains a
    dominator. *)

val mem_surviving :
  dominance -> cid:int -> Kinds.proc_kind -> Kinds.mem_kind list -> Kinds.mem_kind list

val n_dominated : dominance -> int
(** Total dominated values over both coordinate families. *)

(** {1 Co-location groups} *)

type group = {
  members : int list;            (** cids, ascending *)
  combined_bytes : float;        (** sum of member footprints (no alias discount) *)
  common_kinds : Kinds.mem_kind list;
      (** memory kinds every member can use under some feasible owner
          kind, [Kinds.all_mem_kinds] order *)
  fitting_kinds : Kinds.mem_kind list;
      (** subset of [common_kinds] whose per-memory capacity admits
          [combined_bytes] *)
}

(** {1 Work / critical-path summary} *)

type summary = {
  n_tasks : int;
  n_collections : int;
  n_edges : int;
  n_overlaps : int;
  instances_per_iteration : int;  (** sum of group sizes *)
  iterations : int;
  total_flops : float;
  total_bytes : float;            (** per-shard bytes over all collections *)
  depth : int;                    (** critical-path length in tasks (non-carried edges) *)
  dispatch_floor : float;
      (** depth * runtime_dispatch * iterations: no mapping finishes an
          iteration chain faster than its dispatch serialization *)
  work_seconds : (Kinds.proc_kind * float) list;
      (** per present kind: total compute seconds if every task with a
          variant for that kind ran there (efficiency-scaled) *)
  forced_tasks : int;             (** singleton processor domains *)
  forced_collections : int;       (** collections with one feasible memory kind *)
}

(** {1 Analysis} *)

type t

val analyze : ?rotations:int -> Machine.t -> Graph.t -> t
(** Full analysis: lint + domains + per-rotation co-location groups
    ([rotations] defaults to 5, matching {!Ccd.search}) + summary. *)

val diagnostics : t -> diagnostic list
(** All diagnostics, errors first, in a deterministic order. *)

val errors : t -> diagnostic list
val warnings : t -> diagnostic list
val feasible : t -> bool
(** No error-level diagnostic: some mapping may validate and place. *)

val domains : t -> domains
val dominance : t -> dominance
val symmetry : t -> Symmetry.t
(** Task orbits of the graph (see {!Symmetry}). *)

val node_classes : t -> int array array
(** Machine-node equivalence classes by kind-signature
    ({!Symmetry.node_classes} of the analyzed machine). *)

val log2_space : t -> float
(** log₂ of the search-space size after domain and dominance pruning
    (paper space: distribution bit × kinds × argument memories). *)

val log2_symmetry_reduction : t -> float
(** Bits saved by quotienting the space by the task orbits
    ({!Symmetry.log2_reduction} with this analysis' pruned domains). *)

val groups : t -> group list list
(** Constraint groups per rotation (head = rotation 1 = full C); only
    groups of >= 2 members are listed.  The final rotation's list is
    empty by construction when the CCD schedule prunes C completely. *)

val summary : t -> summary

val report : Format.formatter -> t -> unit
(** Structured, deterministic text report (the CLI's [analyze] output
    and the golden files under test/golden/). *)

val to_json : t -> string
(** The same content as a single-line-per-field JSON object. *)
