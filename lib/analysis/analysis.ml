type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type diagnostic = {
  severity : severity;
  code : string;
  subject : string;
  message : string;
}

(* Analyzer-style coordinate names, shared with the runtime error
   messages of Mapping.validate and Placement (satellite: diagnostics
   and errors read the same way). *)
let task_subject (task : Graph.task) = Printf.sprintf "task %d (%s)" task.tid task.tname

let col_subject (c : Graph.collection) = Printf.sprintf "collection c%d (%s)" c.cid c.cname

(* ------------------------------------------------------------------ *)
(* Coordinate domains                                                  *)
(* ------------------------------------------------------------------ *)

type domains = {
  d_proc : Kinds.proc_kind list array; (* tid -> feasible kinds, variant order *)
  d_memok : bool array array;          (* cid -> rank_mem-indexed feasibility *)
}

(* Alias sources of each collection — incoming dependence edges and
   full overlap partners, exactly Placement.plan's producers.  In
   Placement.account an instance dodges its capacity charge only when a
   source instance occupies the *same* physical memory; that source was
   in turn either charged or aliased, and the chain strictly descends
   the placement step order.  Every alias chain therefore terminates in
   a charged instance, so capacity feasibility is the least fixed point

     fit(c, m)  =  bytes(c) <= capacity(m)  \/  exists s in sources(c). fit(s, m)

   — if no transitive source fits kind [m], every strict placement of
   [c] there ends in an over-capacity charge, which certifies the
   exclusion. *)
let alias_sources (g : Graph.t) =
  let nc = Graph.n_collections g in
  let srcs = Array.make (max nc 1) [] in
  List.iter (fun (e : Graph.edge) -> srcs.(e.dst) <- e.src :: srcs.(e.dst)) g.edges;
  List.iter
    (fun (c1, c2, w) ->
      let b1 = (Graph.collection g c1).Graph.bytes
      and b2 = (Graph.collection g c2).Graph.bytes in
      if w >= 0.999 *. Float.min b1 b2 then begin
        srcs.(c1) <- c2 :: srcs.(c1);
        srcs.(c2) <- c1 :: srcs.(c2)
      end)
    g.overlaps;
  srcs

let compute_domains (machine : Machine.t) (g : Graph.t) =
  let nc = Graph.n_collections g in
  let sources = alias_sources g in
  let d_memok = Array.make (max nc 1) [||] in
  List.iter
    (fun (c : Graph.collection) ->
      d_memok.(c.cid) <-
        Array.of_list
          (List.map
             (fun m -> c.Graph.bytes <= Machine.mem_kind_capacity machine m)
             Kinds.all_mem_kinds))
    (Graph.collections g);
  (* propagate fits along alias sources to the least fixed point; the
     source graph is tiny, so round-robin sweeps are plenty *)
  let changed = ref true in
  while !changed do
    changed := false;
    for cid = 0 to nc - 1 do
      let row = d_memok.(cid) in
      Array.iteri
        (fun rank ok ->
          if
            (not ok)
            && List.exists (fun s -> d_memok.(s).(rank)) sources.(cid)
          then begin
            row.(rank) <- true;
            changed := true
          end)
        row
    done
  done;
  let mem_ok cid m = d_memok.(cid).(Kinds.rank_mem m) in
  let d_proc =
    Array.map
      (fun (task : Graph.task) ->
        List.filter
          (fun k ->
            Machine.procs_of_kind_per_node machine k > 0
            && List.for_all
                 (fun (c : Graph.collection) ->
                   List.exists (fun m -> mem_ok c.cid m) (Kinds.accessible_mem_kinds k))
                 task.args)
          task.variants)
      g.Graph.tasks
  in
  { d_proc; d_memok }

let proc_domain d tid = d.d_proc.(tid)

let mem_feasible d ~cid m = d.d_memok.(cid).(Kinds.rank_mem m)

let mem_domain d ~cid k =
  List.filter (fun m -> mem_feasible d ~cid m) (Kinds.accessible_mem_kinds k)

(* ------------------------------------------------------------------ *)
(* Dominance                                                           *)
(* ------------------------------------------------------------------ *)

type dominance = {
  dm_proc : (Kinds.proc_kind * Kinds.proc_kind) list array;
      (* tid -> (dominated, dominator) *)
  dm_mem : (Kinds.proc_kind * Kinds.mem_kind * Kinds.mem_kind) list array;
      (* cid -> (owner kind, dominated, dominator) *)
}

(* Value dominance must survive every completion of the partial
   assignment, which is a much higher bar than "locally faster":
   Same_memory channels are free (a slower memory co-resident with a
   producer beats a faster one across a channel), channel classes are
   asymmetric, capacities are shared across collections, and the DES
   admits Graham anomalies.  The two rules below are the ones whose
   certificates close over all of that:

   - memory kinds, per (collection, owner kind): only for
     communication-free collections (no dependence edge in or out, no
     overlap), where the placement of the collection affects exactly
     one cost term — the owner's access-bandwidth time.  M1 dominates
     M2 when its execution bandwidth is >= under the owner kind, the
     footprint fits M1 directly, and M1 cannot be crowded: even if
     every possibly-M1-resident collection lands its worst case (all
     shards of an undistributed owner in one memory instance) there,
     capacity still admits it, so swapping M2 -> M1 can never OOM any
     completion.

   - processor kinds, per task: when every argument is forced to
     Zero_copy under B, the B->A swap keeps every memory instance
     bit-identical (Zero_copy is node-level, so closest_memory picks
     the same instance for either kind), hence identical copies and
     capacity charges.  A dominates B when additionally A's launch
     overhead and all-Zero_copy duration are <=, A has at least as many
     processors per node, and no other task's domain contains A (an
     exclusive pool: moving this task onto A cannot contend with
     anything else in any completion). *)
let compute_dominance (machine : Machine.t) (g : Graph.t) dom =
  let nt = Graph.n_tasks g and nc = Graph.n_collections g in
  let touched = Array.make (max nc 1) false in
  List.iter
    (fun (e : Graph.edge) ->
      touched.(e.src) <- true;
      touched.(e.dst) <- true)
    g.Graph.edges;
  List.iter
    (fun (c1, c2, _) ->
      touched.(c1) <- true;
      touched.(c2) <- true)
    g.Graph.overlaps;
  (* worst-case standing demand per memory kind over all collections
     that could reside there under some in-domain owner kind *)
  let demand = Array.make (List.length Kinds.all_mem_kinds) 0.0 in
  List.iter
    (fun (c : Graph.collection) ->
      let owner = Graph.task g c.owner in
      List.iter
        (fun m ->
          if
            mem_feasible dom ~cid:c.cid m
            && List.exists
                 (fun k -> Kinds.accessible k m)
                 (proc_domain dom c.owner)
          then
            demand.(Kinds.rank_mem m) <-
              demand.(Kinds.rank_mem m)
              +. (float_of_int owner.group_size *. c.bytes))
        Kinds.all_mem_kinds)
    (Graph.collections g);
  let dm_mem = Array.make (max nc 1) [] in
  List.iter
    (fun (c : Graph.collection) ->
      if not touched.(c.cid) then
        List.iter
          (fun k ->
            match mem_domain dom ~cid:c.cid k with
            | [] | [ _ ] -> ()
            | dom_mems ->
                (* scan fastest-first; prune a value when an earlier
                   surviving value dominates it *)
                let surviving = ref [] in
                List.iter
                  (fun m2 ->
                    let dominator =
                      List.find_opt
                        (fun m1 ->
                          Machine.exec_bandwidth machine k m1
                          >= Machine.exec_bandwidth machine k m2
                          && c.bytes <= Machine.mem_kind_capacity machine m1
                          && demand.(Kinds.rank_mem m1)
                             <= Machine.mem_kind_capacity machine m1)
                        (List.rev !surviving)
                    in
                    match dominator with
                    | Some m1 ->
                        dm_mem.(c.cid) <- (k, m2, m1) :: dm_mem.(c.cid)
                    | None -> surviving := m2 :: !surviving)
                  dom_mems)
          (proc_domain dom c.owner))
    (Graph.collections g);
  Array.iteri (fun cid l -> dm_mem.(cid) <- List.rev l) dm_mem;
  (* how many tasks may use each processor kind in some in-space
     mapping: the exclusive-pool condition *)
  let kind_users = Array.make (List.length Kinds.all_proc_kinds) 0 in
  Array.iter
    (fun (t : Graph.task) ->
      List.iter
        (fun k -> kind_users.(Kinds.rank_proc k) <- kind_users.(Kinds.rank_proc k) + 1)
        (proc_domain dom t.tid))
    g.Graph.tasks;
  let dm_proc = Array.make (max nt 1) [] in
  Array.iter
    (fun (t : Graph.task) ->
      match proc_domain dom t.tid with
      | [] | [ _ ] -> ()
      | kinds ->
          let forced_zc k =
            List.for_all
              (fun (c : Graph.collection) ->
                mem_domain dom ~cid:c.cid k = [ Kinds.Zero_copy ])
              t.args
          in
          let zc_ok k =
            List.for_all
              (fun (c : Graph.collection) ->
                List.memq Kinds.Zero_copy (mem_domain dom ~cid:c.cid k))
              t.args
          in
          let total_bytes =
            List.fold_left
              (fun s (c : Graph.collection) -> s +. c.bytes)
              0.0 t.args
          in
          let all_zc_duration k =
            let eff =
              match k with
              | Kinds.Cpu -> t.cpu_efficiency
              | Kinds.Gpu -> t.gpu_efficiency
            in
            Machine.launch_overhead machine k
            +. Float.max
                 (t.flops /. (Machine.compute_rate machine k *. eff))
                 (total_bytes /. Machine.exec_bandwidth machine k Kinds.Zero_copy)
          in
          let surviving = ref [] in
          List.iter
            (fun b ->
              let dominator =
                List.find_opt
                  (fun a ->
                    kind_users.(Kinds.rank_proc a) = 1
                    && forced_zc b && zc_ok a
                    && Machine.procs_of_kind_per_node machine a
                       >= Machine.procs_of_kind_per_node machine b
                    && Machine.launch_overhead machine a
                       <= Machine.launch_overhead machine b
                    && all_zc_duration a <= all_zc_duration b)
                  (List.rev !surviving)
              in
              match dominator with
              | Some a -> dm_proc.(t.tid) <- (b, a) :: dm_proc.(t.tid)
              | None -> surviving := b :: !surviving)
            kinds)
    g.Graph.tasks;
  Array.iteri (fun tid l -> dm_proc.(tid) <- List.rev l) dm_proc;
  { dm_proc; dm_mem }

let dominated_procs dmn tid = dmn.dm_proc.(tid)

let dominated_mems dmn ~cid k =
  List.filter_map
    (fun (k', m2, m1) -> if Kinds.equal_proc k' k then Some (m2, m1) else None)
    dmn.dm_mem.(cid)

let proc_surviving dmn tid ks =
  match dmn.dm_proc.(tid) with
  | [] -> ks
  | pruned ->
      List.filter
        (fun k -> not (List.exists (fun (b, _) -> Kinds.equal_proc b k) pruned))
        ks

let mem_surviving dmn ~cid k ms =
  match dominated_mems dmn ~cid k with
  | [] -> ms
  | pruned ->
      List.filter
        (fun m -> not (List.exists (fun (b, _) -> Kinds.equal_mem b m) pruned))
        ms

let n_dominated dmn =
  Array.fold_left (fun n l -> n + List.length l) 0 dmn.dm_proc
  + Array.fold_left (fun n l -> n + List.length l) 0 dmn.dm_mem

(* ------------------------------------------------------------------ *)
(* Co-location groups                                                  *)
(* ------------------------------------------------------------------ *)

type group = {
  members : int list;
  combined_bytes : float;
  common_kinds : Kinds.mem_kind list;
  fitting_kinds : Kinds.mem_kind list;
}

(* union-find over collection ids *)
let uf_find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(Stdlib.max ra rb) <- Stdlib.min ra rb

let groups_of_overlap (machine : Machine.t) (g : Graph.t) dom overlap =
  let nc = Graph.n_collections g in
  if nc = 0 then []
  else begin
    let parent = Array.init nc (fun i -> i) in
    List.iter (fun (c1, c2, _) -> uf_union parent c1 c2) (Overlap.edges overlap);
    let members = Array.make nc [] in
    for cid = nc - 1 downto 0 do
      let r = uf_find parent cid in
      members.(r) <- cid :: members.(r)
    done;
    (* usable kinds of one member: any memory kind admitted under some
       feasible kind of its owning task *)
    let usable cid =
      let owner = (Graph.collection g cid).Graph.owner in
      List.filter
        (fun m ->
          List.exists
            (fun k -> Kinds.accessible k m && mem_feasible dom ~cid m)
            (proc_domain dom owner))
        Kinds.all_mem_kinds
    in
    let acc = ref [] in
    for root = nc - 1 downto 0 do
      match members.(root) with
      | [] | [ _ ] -> ()
      | cids ->
          let combined =
            List.fold_left
              (fun s cid -> s +. (Graph.collection g cid).Graph.bytes)
              0.0 cids
          in
          let common =
            List.fold_left
              (fun common cid ->
                let u = usable cid in
                List.filter (fun m -> List.memq m u) common)
              Kinds.all_mem_kinds cids
          in
          let fitting =
            List.filter (fun m -> combined <= Machine.mem_kind_capacity machine m) common
          in
          acc :=
            { members = cids; combined_bytes = combined; common_kinds = common;
              fitting_kinds = fitting }
            :: !acc
    done;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)
(* ------------------------------------------------------------------ *)

type summary = {
  n_tasks : int;
  n_collections : int;
  n_edges : int;
  n_overlaps : int;
  instances_per_iteration : int;
  iterations : int;
  total_flops : float;
  total_bytes : float;
  depth : int;
  dispatch_floor : float;
  work_seconds : (Kinds.proc_kind * float) list;
  forced_tasks : int;
  forced_collections : int;
}

let critical_depth (g : Graph.t) =
  let nt = Graph.n_tasks g in
  if nt = 0 then 0
  else begin
    let depth = Array.make nt 1 in
    List.iter
      (fun (task : Graph.task) ->
        List.iter
          (fun (e : Graph.edge) ->
            if not e.Graph.carried then begin
              let src_t = (Graph.collection g e.Graph.src).Graph.owner in
              if depth.(src_t) + 1 > depth.(task.tid) then
                depth.(task.tid) <- depth.(src_t) + 1
            end)
          (Graph.predecessors g task.tid))
      (Graph.topological_order g);
    Array.fold_left Stdlib.max 0 depth
  end

let forced_collections_count (g : Graph.t) dom =
  List.length
    (List.filter
       (fun (c : Graph.collection) ->
         let ks = proc_domain dom c.owner in
         ks <> []
         &&
         let usable =
           List.filter
             (fun m ->
               List.exists
                 (fun k -> Kinds.accessible k m && mem_feasible dom ~cid:c.cid m)
                 ks)
             Kinds.all_mem_kinds
         in
         List.length usable = 1)
       (Graph.collections g))

let make_summary (machine : Machine.t) (g : Graph.t) dom =
  let depth = critical_depth g in
  let total_flops =
    Array.fold_left
      (fun s (t : Graph.task) -> s +. (t.flops *. float_of_int t.group_size))
      0.0 g.tasks
  in
  let work_seconds =
    List.map
      (fun k ->
        let rate = Machine.compute_rate machine k in
        let secs =
          Array.fold_left
            (fun s (t : Graph.task) ->
              if Graph.has_variant t k then
                let eff =
                  match k with Kinds.Cpu -> t.cpu_efficiency | Kinds.Gpu -> t.gpu_efficiency
                in
                s +. (t.flops *. float_of_int t.group_size /. (rate *. eff))
              else s)
            0.0 g.tasks
        in
        (k, secs))
      (Machine.proc_kinds_available machine)
  in
  let forced_tasks =
    Array.fold_left
      (fun n d -> if List.length d = 1 then n + 1 else n)
      0 dom.d_proc
  in
  {
    n_tasks = Graph.n_tasks g;
    n_collections = Graph.n_collections g;
    n_edges = List.length g.edges;
    n_overlaps = List.length g.overlaps;
    instances_per_iteration =
      Array.fold_left (fun s (t : Graph.task) -> s + t.group_size) 0 g.tasks;
    iterations = g.iterations;
    total_flops;
    total_bytes = Graph.total_bytes g;
    depth;
    dispatch_floor =
      float_of_int (depth + g.iterations - 1)
      *. machine.Machine.compute.Machine.runtime_dispatch;
    work_seconds;
    forced_tasks;
    forced_collections = forced_collections_count g dom;
  }

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

let mem_kinds_present (machine : Machine.t) =
  List.filter
    (fun m ->
      match m with
      | Kinds.System | Kinds.Zero_copy -> true
      | Kinds.Frame_buffer -> machine.Machine.node.Machine.gpus > 0)
    Kinds.all_mem_kinds

let machine_lint (machine : Machine.t) =
  let diags = ref [] in
  let add severity code subject fmt =
    Printf.ksprintf (fun message -> diags := { severity; code; subject; message } :: !diags) fmt
  in
  let present_procs = Machine.proc_kinds_available machine in
  (* absent processor kinds: informational, GPU-variant tasks simply
     cannot use them *)
  List.iter
    (fun k ->
      if not (List.memq k present_procs) then
        add Info "absent-processor-kind" "machine" "machine has no %s processors; %s variants are unusable"
          (Kinds.proc_kind_to_string k) (Kinds.proc_kind_to_string k))
    Kinds.all_proc_kinds;
  (* constraint (1) reachability: a memory kind no present processor
     kind can address can never hold a validly mapped collection *)
  List.iter
    (fun m ->
      if not (List.exists (fun k -> Kinds.accessible k m) present_procs) then
        add Error "unreachable-memory"
          (Printf.sprintf "memory %s" (Kinds.mem_kind_to_string m))
          "no present processor kind can address %s memory: any collection mapped there is invalid (§4.2 constraint 1)"
          (Kinds.mem_kind_to_string m);
      if Machine.mem_kind_capacity machine m <= 0.0 then
        add Warning "zero-capacity"
          (Printf.sprintf "memory %s" (Kinds.mem_kind_to_string m))
          "%s memory has zero capacity: every non-aliased placement there OOMs"
          (Kinds.mem_kind_to_string m))
    (mem_kinds_present machine);
  (* channel lint over representative memory pairs: every channel class
     in use must have positive finite cost structure, and the channel
     relation must be symmetric *)
  let mems = machine.Machine.memories in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (a : Machine.memory) ->
      Array.iter
        (fun (b : Machine.memory) ->
          let ch = Machine.channel_between machine a b in
          let rev = Machine.channel_between machine b a in
          if rev <> ch && not (Hashtbl.mem seen (`Asym (a.Machine.mkind, b.Machine.mkind)))
          then begin
            Hashtbl.add seen (`Asym (a.Machine.mkind, b.Machine.mkind)) ();
            add Warning "asymmetric-channel" "machine"
              "%s->%s and %s->%s use different channels"
              (Kinds.mem_kind_to_string a.Machine.mkind)
              (Kinds.mem_kind_to_string b.Machine.mkind)
              (Kinds.mem_kind_to_string b.Machine.mkind)
              (Kinds.mem_kind_to_string a.Machine.mkind)
          end;
          if ch <> Machine.Same_memory && not (Hashtbl.mem seen (`Chan ch)) then begin
            Hashtbl.add seen (`Chan ch) ();
            let bw = Machine.channel_bandwidth machine ch in
            if not (bw > 0.0) then
              add Error "dead-channel" "machine"
                "channel %s->%s has non-positive bandwidth %g"
                (Kinds.mem_kind_to_string a.Machine.mkind)
                (Kinds.mem_kind_to_string b.Machine.mkind)
                bw
          end)
        mems)
    mems;
  (* interconnect lint: a disconnected topology silently falls back to
     the kind-level Network charge for the unreachable pairs, and a
     zero-bandwidth link makes every route through it infinitely slow *)
  (match machine.Machine.topology with
  | None -> ()
  | Some topo ->
      let unreachable = Topology.unreachable_pairs topo in
      if unreachable > 0 then
        add Error "topology-disconnected"
          (Printf.sprintf "topology %s" (Topology.name topo))
          "%d ordered node pair(s) have no route; their copies fall back to the flat network charge"
          unreachable;
      List.iter
        (fun lid ->
          let l = (Topology.links topo).(lid) in
          add Error "topology-zero-bandwidth"
            (Printf.sprintf "topology %s" (Topology.name topo))
            "link %d (%d->%d) has non-positive bandwidth %g" lid l.Topology.lsrc
            l.Topology.ldst l.Topology.lbw)
        (Topology.zero_bw_links topo));
  List.rev !diags

let domain_lint (machine : Machine.t) (g : Graph.t) dom =
  let diags = ref [] in
  let add severity code subject fmt =
    Printf.ksprintf (fun message -> diags := { severity; code; subject; message } :: !diags) fmt
  in
  let present = Machine.proc_kinds_available machine in
  Array.iter
    (fun (task : Graph.task) ->
      match proc_domain dom task.tid with
      | [] ->
          let variants_present =
            List.filter (fun k -> List.memq k present) task.variants
          in
          if variants_present = [] then
            add Error "no-feasible-processor" (task_subject task)
              "no variant of this task matches a present processor kind (variants: %s)"
              (String.concat ", " (List.map Kinds.proc_kind_to_string task.variants))
          else
            add Error "no-feasible-processor" (task_subject task)
              "every candidate kind (%s) leaves some argument with no capacity-feasible memory"
              (String.concat ", " (List.map Kinds.proc_kind_to_string variants_present))
      | [ k ] ->
          add Info "forced-processor" (task_subject task) "processor domain is {%s}: coordinate is fixed"
            (Kinds.proc_kind_to_string k)
      | ks ->
          (* oversubscription is worth surfacing, but it is routine on
             small machines: info *)
          if
            List.for_all
              (fun k ->
                task.group_size
                > machine.Machine.nodes * Machine.procs_of_kind_per_node machine k)
              ks
          then
            add Info "oversubscribed" (task_subject task)
              "group size %d exceeds every candidate kind's processor count" task.group_size)
    g.Graph.tasks;
  List.iter
    (fun (c : Graph.collection) ->
      let reachable_kinds =
        List.filter
          (fun m -> List.exists (fun k -> Kinds.accessible k m) present)
          (mem_kinds_present machine)
      in
      let feasible_kinds = List.filter (fun m -> mem_feasible dom ~cid:c.cid m) reachable_kinds in
      match feasible_kinds with
      | [] ->
          add Error "collection-too-large" (col_subject c)
            "footprint %g bytes/shard exceeds the capacity of every reachable memory kind and no alias source fits either"
            c.bytes
      | [ m ] when List.length reachable_kinds > 1 ->
          add Info "forced-memory" (col_subject c)
            "memory domain is {%s}: coordinate is fixed" (Kinds.mem_kind_to_string m)
      | _ -> ())
    (Graph.collections g);
  List.rev !diags

let colocation_lint (machine : Machine.t) (g : Graph.t) rotation1 =
  let diags = ref [] in
  let add severity code subject fmt =
    Printf.ksprintf (fun message -> diags := { severity; code; subject; message } :: !diags) fmt
  in
  List.iter
    (fun grp ->
      let name_members cids =
        String.concat ", "
          (List.map (fun cid -> col_subject (Graph.collection g cid)) cids)
      in
      let subject =
        Printf.sprintf "group {%s}"
          (String.concat "," (List.map (fun cid -> Printf.sprintf "c%d" cid) grp.members))
      in
      ignore machine;
      if grp.common_kinds = [] then
        add Warning "colocation-conflict" subject
          "no memory kind is usable by every member (%s): constraint (2) is unsatisfiable until C is relaxed"
          (name_members grp.members)
      else if grp.fitting_kinds = [] then
        add Warning "colocation-capacity" subject
          "combined footprint %g bytes/shard fits no common memory kind (%s)"
          grp.combined_bytes
          (String.concat ", " (List.map Kinds.mem_kind_to_string grp.common_kinds)))
    rotation1;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

type t = {
  machine : Machine.t;
  graph : Graph.t;
  diags : diagnostic list;
  dom : domains;
  dmn : dominance;
  sym : Symmetry.t;
  node_cls : int array array;
  grps : group list list;
  summ : summary;
}

(* per-task assignment combinations in the paper's space (distribution
   bit x kinds x argument memories), mirroring Space.log2_size; domain
   lists fall back to the unpruned ones when empty, exactly as Space
   does, and [dmn] additionally removes dominated values *)
let task_combos (machine : Machine.t) (g : Graph.t) dom dmn tid =
  let t = Graph.task g tid in
  let procs =
    let all =
      List.filter
        (fun k -> Machine.procs_of_kind_per_node machine k > 0)
        t.variants
    in
    let l = match proc_domain dom tid with [] -> all | l -> l in
    match dmn with None -> l | Some d -> proc_surviving d tid l
  in
  let mems cid k =
    let l =
      match mem_domain dom ~cid k with
      | [] -> Kinds.accessible_mem_kinds k
      | l -> l
    in
    match dmn with None -> l | Some d -> mem_surviving d ~cid k l
  in
  let per_kind k =
    List.fold_left
      (fun p (c : Graph.collection) ->
        p *. float_of_int (List.length (mems c.cid k)))
      1.0 t.args
  in
  2.0 *. List.fold_left (fun s k -> s +. per_kind k) 0.0 procs

let space_log2 (machine : Machine.t) (g : Graph.t) dom dmn =
  Array.fold_left
    (fun acc (t : Graph.task) ->
      acc +. Float.log2 (task_combos machine g dom dmn t.tid))
    0.0 g.Graph.tasks

let analyze ?(rotations = 5) (machine : Machine.t) (g : Graph.t) =
  if rotations < 2 then invalid_arg "Analysis.analyze: rotations must be at least 2";
  let dom = compute_domains machine g in
  let c0 = Overlap.of_graph g in
  let prune_per_rotation =
    let e0 = Overlap.n_edges c0 in
    if e0 = 0 then 0 else (e0 + rotations - 2) / (rotations - 1)
  in
  let grps =
    let rec rotate r c acc =
      if r > rotations then List.rev acc
      else
        rotate (r + 1)
          (Overlap.prune_lightest c prune_per_rotation)
          (groups_of_overlap machine g dom c :: acc)
    in
    rotate 1 c0 []
  in
  let rotation1 = match grps with r1 :: _ -> r1 | [] -> [] in
  let diags =
    machine_lint machine @ domain_lint machine g dom
    @ colocation_lint machine g rotation1
  in
  let diags =
    List.stable_sort
      (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
      diags
  in
  { machine; graph = g; diags; dom;
    dmn = compute_dominance machine g dom;
    sym = Symmetry.build g;
    node_cls = Symmetry.node_classes machine;
    grps; summ = make_summary machine g dom }

let diagnostics t = t.diags
let errors t = List.filter (fun d -> d.severity = Error) t.diags
let warnings t = List.filter (fun d -> d.severity = Warning) t.diags
let feasible t = errors t = []
let domains t = t.dom
let dominance t = t.dmn
let symmetry t = t.sym
let node_classes t = t.node_cls
let groups t = t.grps
let summary t = t.summ

let log2_space t = space_log2 t.machine t.graph t.dom (Some t.dmn)

let log2_symmetry_reduction t =
  Symmetry.log2_reduction t.sym
    ~combos:(task_combos t.machine t.graph t.dom (Some t.dmn))

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let report ppf t =
  let s = t.summ in
  Format.fprintf ppf "analyze: %s on %s@." t.graph.Graph.gname t.machine.Machine.name;
  Format.fprintf ppf "machine: %a@." Machine.pp t.machine;
  (match t.machine.Machine.topology with
  | None -> ()
  | Some topo ->
      Format.fprintf ppf
        "topology: %s, %d node(s), %d link(s), diameter %d, bisection %.6g B/s, %s@."
        (Topology.name topo) (Topology.n_nodes topo) (Topology.n_links topo)
        (Topology.diameter topo) (Topology.bisection_bw topo)
        (if Topology.contended topo then "contended links"
         else "contention-free links"));
  Format.fprintf ppf
    "graph: %d tasks, %d collections, %d edges, %d overlaps, %d instances/iteration, %d iterations@."
    s.n_tasks s.n_collections s.n_edges s.n_overlaps s.instances_per_iteration
    s.iterations;
  Format.fprintf ppf "work: %.6g flops, %.6g bytes/shard, critical path %d tasks, dispatch floor %.3gs@."
    s.total_flops s.total_bytes s.depth s.dispatch_floor;
  List.iter
    (fun (k, secs) ->
      Format.fprintf ppf "work[%s]: %.6gs if every %s-capable task runs there@."
        (Kinds.proc_kind_to_string k) secs (Kinds.proc_kind_to_string k))
    s.work_seconds;
  Format.fprintf ppf "domains: %d/%d forced task coordinates, %d/%d forced collection coordinates@."
    s.forced_tasks s.n_tasks s.forced_collections s.n_collections;
  Format.fprintf ppf
    "symmetry: %d task orbit(s) (%d nontrivial, largest %d), %d node class(es) over %d node(s)@."
    (Symmetry.n_orbits t.sym) (Symmetry.n_nontrivial t.sym)
    (Symmetry.largest_orbit t.sym)
    (Array.length t.node_cls) t.machine.Machine.nodes;
  Format.fprintf ppf
    "space: log2 = %.6g bits after domain+dominance pruning, symmetry quotient saves %.6g bits@."
    (log2_space t) (log2_symmetry_reduction t);
  Format.fprintf ppf "dominance: %d dominated value(s)@." (n_dominated t.dmn);
  Array.iteri
    (fun tid prs ->
      List.iter
        (fun (b, a) ->
          Format.fprintf ppf "  %s: %s dominated by %s@."
            (task_subject (Graph.task t.graph tid))
            (Kinds.proc_kind_to_string b) (Kinds.proc_kind_to_string a))
        prs)
    t.dmn.dm_proc;
  Array.iteri
    (fun cid prs ->
      List.iter
        (fun (k, b, a) ->
          Format.fprintf ppf "  %s under %s: %s dominated by %s@."
            (col_subject (Graph.collection t.graph cid))
            (Kinds.proc_kind_to_string k) (Kinds.mem_kind_to_string b)
            (Kinds.mem_kind_to_string a))
        prs)
    t.dmn.dm_mem;
  List.iteri
    (fun i rot ->
      Format.fprintf ppf "colocation rotation %d: %d group(s)%s@." (i + 1)
        (List.length rot)
        (match rot with
        | [] -> ""
        | _ ->
            let largest =
              List.fold_left (fun m g -> Stdlib.max m (List.length g.members)) 0 rot
            in
            let unsat = List.length (List.filter (fun g -> g.fitting_kinds = []) rot) in
            Printf.sprintf ", largest %d members, %d without a fitting common kind"
              largest unsat))
    t.grps;
  let e = List.length (errors t)
  and w = List.length (warnings t)
  and i = List.length (List.filter (fun d -> d.severity = Info) t.diags) in
  Format.fprintf ppf "diagnostics: %d error(s), %d warning(s), %d info@." e w i;
  List.iter
    (fun d ->
      Format.fprintf ppf "  [%s] %s %s: %s@." (severity_to_string d.severity) d.code
        d.subject d.message)
    t.diags;
  Format.fprintf ppf "verdict: %s@."
    (if feasible t then "feasible" else "infeasible (error-level diagnostics)")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let s = t.summ in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"graph\": \"%s\",\n" (json_escape t.graph.Graph.gname);
  add "  \"machine\": \"%s\",\n" (json_escape t.machine.Machine.name);
  (match t.machine.Machine.topology with
  | None -> ()
  | Some topo ->
      add
        "  \"topology\": {\"name\": \"%s\", \"nodes\": %d, \"links\": %d, \"diameter\": %d, \"bisection_bw\": %.6g, \"contended\": %b},\n"
        (json_escape (Topology.name topo))
        (Topology.n_nodes topo) (Topology.n_links topo) (Topology.diameter topo)
        (Topology.bisection_bw topo) (Topology.contended topo));
  add "  \"feasible\": %b,\n" (feasible t);
  add "  \"summary\": {\"tasks\": %d, \"collections\": %d, \"edges\": %d, \"overlaps\": %d, \"instances_per_iteration\": %d, \"iterations\": %d, \"total_flops\": %.6g, \"total_bytes\": %.6g, \"depth\": %d, \"dispatch_floor\": %.6g, \"forced_tasks\": %d, \"forced_collections\": %d},\n"
    s.n_tasks s.n_collections s.n_edges s.n_overlaps s.instances_per_iteration
    s.iterations s.total_flops s.total_bytes s.depth s.dispatch_floor s.forced_tasks
    s.forced_collections;
  add "  \"work_seconds\": {%s},\n"
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\": %.6g" (Kinds.proc_kind_to_string k) v)
          s.work_seconds));
  add "  \"proc_domains\": [%s],\n"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun ks ->
               Printf.sprintf "[%s]"
                 (String.concat ", "
                    (List.map
                       (fun k -> Printf.sprintf "\"%s\"" (Kinds.proc_kind_to_string k))
                       ks)))
             t.dom.d_proc)));
  add "  \"colocation_rotations\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun rot ->
            Printf.sprintf "[%s]"
              (String.concat ", "
                 (List.map
                    (fun g ->
                      Printf.sprintf
                        "{\"members\": [%s], \"combined_bytes\": %.6g, \"common_kinds\": [%s], \"fitting_kinds\": [%s]}"
                        (String.concat ", " (List.map string_of_int g.members))
                        g.combined_bytes
                        (String.concat ", "
                           (List.map
                              (fun m -> Printf.sprintf "\"%s\"" (Kinds.mem_kind_to_string m))
                              g.common_kinds))
                        (String.concat ", "
                           (List.map
                              (fun m -> Printf.sprintf "\"%s\"" (Kinds.mem_kind_to_string m))
                              g.fitting_kinds)))
                    rot)))
          t.grps));
  add
    "  \"symmetry\": {\"task_orbits\": %d, \"nontrivial_orbits\": %d, \"largest_orbit\": %d, \"node_classes\": %d, \"log2_space\": %.6g, \"log2_symmetry_reduction\": %.6g, \"orbits\": [%s]},\n"
    (Symmetry.n_orbits t.sym) (Symmetry.n_nontrivial t.sym)
    (Symmetry.largest_orbit t.sym) (Array.length t.node_cls) (log2_space t)
    (log2_symmetry_reduction t)
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun ms ->
               Printf.sprintf "[%s]"
                 (String.concat ", "
                    (Array.to_list (Array.map string_of_int ms))))
             (Symmetry.orbits t.sym))));
  let proc_doms =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun tid prs ->
              List.map
                (fun (b, a) ->
                  Printf.sprintf
                    "{\"task\": %d, \"dominated\": \"%s\", \"dominator\": \"%s\"}"
                    tid (Kinds.proc_kind_to_string b)
                    (Kinds.proc_kind_to_string a))
                prs)
            t.dmn.dm_proc))
  and mem_doms =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun cid prs ->
              List.map
                (fun (k, b, a) ->
                  Printf.sprintf
                    "{\"collection\": %d, \"kind\": \"%s\", \"dominated\": \"%s\", \"dominator\": \"%s\"}"
                    cid (Kinds.proc_kind_to_string k)
                    (Kinds.mem_kind_to_string b) (Kinds.mem_kind_to_string a))
                prs)
            t.dmn.dm_mem))
  in
  add
    "  \"dominance\": {\"pruned_values\": %d, \"proc\": [%s], \"mem\": [%s]},\n"
    (n_dominated t.dmn)
    (String.concat ", " proc_doms)
    (String.concat ", " mem_doms);
  add "  \"diagnostics\": [%s]\n"
    (String.concat ", "
       (List.map
          (fun d ->
            Printf.sprintf
              "{\"severity\": \"%s\", \"code\": \"%s\", \"subject\": \"%s\", \"message\": \"%s\"}"
              (severity_to_string d.severity) (json_escape d.code)
              (json_escape d.subject) (json_escape d.message))
          t.diags));
  add "}\n";
  Buffer.contents buf
