(* Task orbits by 1-WL colour refinement plus exactly verified
   transpositions; machine-node classes by kind-signature.  See
   symmetry.mli and DESIGN.md §14 for the soundness argument. *)

type t = {
  nt : int;
  orbit_of : int array;     (* tid -> orbit index *)
  orbits : int array array; (* orbit index -> members, ascending *)
}

let fb = Printf.sprintf "%h"

let pat_enc = function
  | Pattern.Same_shard -> "s"
  | Pattern.Halo { frac } -> "h" ^ fb frac

let intern tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
      let c = Hashtbl.length tbl in
      Hashtbl.add tbl key c;
      c

(* union-find, min member as root *)
let uf_find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(Stdlib.max ra rb) <- Stdlib.min ra rb

let build (g : Graph.t) =
  let nt = Graph.n_tasks g in
  if nt = 0 then { nt; orbit_of = [||]; orbits = [||] }
  else begin
    let nc = Graph.n_collections g in
    (* cid -> position of the argument within its owner's args *)
    let argpos = Array.make (max nc 1) 0 in
    Array.iter
      (fun (t : Graph.task) ->
        List.iteri (fun i (c : Graph.collection) -> argpos.(c.cid) <- i) t.args)
      g.Graph.tasks;
    let owner cid = (Graph.collection g cid).Graph.owner in
    (* initial colours: every statically observable per-task attribute *)
    let color =
      let tbl = Hashtbl.create 16 in
      Array.map
        (fun (t : Graph.task) ->
          let key =
            String.concat ";"
              (string_of_int t.group_size
              :: String.concat ","
                   (List.map Kinds.proc_kind_to_string t.variants)
              :: fb t.flops :: fb t.cpu_efficiency :: fb t.gpu_efficiency
              :: List.map
                   (fun (c : Graph.collection) ->
                     fb c.bytes ^ ":" ^ Mode.to_string c.mode)
                   t.args)
          in
          intern tbl key)
        g.Graph.tasks
    in
    let n_colors c =
      let tbl = Hashtbl.create 16 in
      Array.iter (fun x -> Hashtbl.replace tbl x ()) c;
      Hashtbl.length tbl
    in
    (* refine by incident dependence/overlap signatures to a fixed
       point; refinement only splits classes, so a stable class count
       means a stable partition *)
    let rec refine color ncol =
      let items = Array.make nt [] in
      let push tid s = items.(tid) <- s :: items.(tid) in
      List.iter
        (fun (e : Graph.edge) ->
          let so = owner e.src and sd = owner e.dst in
          let tail =
            Printf.sprintf "%s.%s.%b" (fb e.bytes) (pat_enc e.pattern) e.carried
          in
          push so
            (Printf.sprintf "o%d.%d.%d.%s" argpos.(e.src) argpos.(e.dst)
               color.(sd) tail);
          push sd
            (Printf.sprintf "i%d.%d.%d.%s" argpos.(e.dst) argpos.(e.src)
               color.(so) tail))
        g.Graph.edges;
      List.iter
        (fun (c1, c2, w) ->
          let o1 = owner c1 and o2 = owner c2 in
          push o1
            (Printf.sprintf "v%d.%d.%d.%s" argpos.(c1) argpos.(c2) color.(o2)
               (fb w));
          push o2
            (Printf.sprintf "v%d.%d.%d.%s" argpos.(c2) argpos.(c1) color.(o1)
               (fb w)))
        g.Graph.overlaps;
      let tbl = Hashtbl.create 16 in
      let next =
        Array.mapi
          (fun tid c ->
            intern tbl
              (string_of_int c ^ "|"
              ^ String.concat "|" (List.sort compare items.(tid))))
          color
      in
      let ncol' = Hashtbl.length tbl in
      if ncol' = ncol then next else refine next ncol'
    in
    let refined = refine color (n_colors color) in
    (* exact check: does the transposition (a b), with positional
       argument alignment, leave the edge and overlap multisets
       invariant?  Attribute equality already holds (same colour). *)
    let swap_ok a b =
      let ta = Graph.task g a and tb = Graph.task g b in
      List.length ta.args = List.length tb.args
      && begin
           let cperm = Array.init (max nc 1) (fun i -> i) in
           List.iter2
             (fun (ca : Graph.collection) (cb : Graph.collection) ->
               cperm.(ca.cid) <- cb.cid;
               cperm.(cb.cid) <- ca.cid)
             ta.args tb.args;
           let enc_edge mapped (e : Graph.edge) =
             let s = if mapped then cperm.(e.src) else e.src
             and d = if mapped then cperm.(e.dst) else e.dst in
             Printf.sprintf "%d.%d.%s.%s.%b" s d (fb e.bytes)
               (pat_enc e.pattern) e.carried
           in
           let sorted f l = List.sort compare (List.map f l) in
           sorted (enc_edge false) g.Graph.edges
           = sorted (enc_edge true) g.Graph.edges
           && begin
                let enc_ov mapped (c1, c2, w) =
                  let x = if mapped then cperm.(c1) else c1
                  and y = if mapped then cperm.(c2) else c2 in
                  let x, y = if x <= y then (x, y) else (y, x) in
                  Printf.sprintf "%d.%d.%s" x y (fb w)
                in
                sorted (enc_ov false) g.Graph.overlaps
                = sorted (enc_ov true) g.Graph.overlaps
              end
         end
    in
    let parent = Array.init nt (fun i -> i) in
    let members = Array.make (n_colors refined + 1) [] in
    for tid = nt - 1 downto 0 do
      members.(refined.(tid)) <- tid :: members.(refined.(tid))
    done;
    Array.iter
      (fun ms ->
        match ms with
        | [] | [ _ ] -> ()
        | ms ->
            (* verified transpositions with earlier members; a connected
               swap-graph generates the full symmetric group *)
            List.iter
              (fun x ->
                List.iter
                  (fun y ->
                    if
                      y < x
                      && uf_find parent y <> uf_find parent x
                      && swap_ok y x
                    then uf_union parent y x)
                  ms)
              ms)
      members;
    let buckets = Array.make nt [] in
    for tid = nt - 1 downto 0 do
      buckets.(uf_find parent tid) <- tid :: buckets.(uf_find parent tid)
    done;
    let orbits = ref [] in
    for r = nt - 1 downto 0 do
      match buckets.(r) with
      | [] -> ()
      | ms -> orbits := Array.of_list ms :: !orbits
    done;
    let orbits = Array.of_list !orbits in
    let orbit_of = Array.make nt 0 in
    Array.iteri
      (fun i ms -> Array.iter (fun tid -> orbit_of.(tid) <- i) ms)
      orbits;
    { nt; orbit_of; orbits }
  end

let n_tasks t = t.nt
let orbits t = t.orbits
let orbit_of t tid = t.orbit_of.(tid)
let same_orbit t a b = t.orbit_of.(a) = t.orbit_of.(b)
let n_orbits t = Array.length t.orbits

let n_nontrivial t =
  Array.fold_left
    (fun n ms -> if Array.length ms >= 2 then n + 1 else n)
    0 t.orbits

let largest_orbit t =
  Array.fold_left (fun m ms -> Stdlib.max m (Array.length ms)) 0 t.orbits

let node_classes (m : Machine.t) =
  let n = m.Machine.nodes in
  if n = 0 then [||]
  else begin
    let sigs = Array.make n [] in
    Array.iter
      (fun (p : Machine.processor) ->
        sigs.(p.Machine.pnode) <-
          ("p" ^ Kinds.proc_kind_to_string p.Machine.pkind)
          :: sigs.(p.Machine.pnode))
      m.Machine.processors;
    Array.iter
      (fun (mem : Machine.memory) ->
        sigs.(mem.Machine.mnode) <-
          Printf.sprintf "m%s:%s"
            (Kinds.mem_kind_to_string mem.Machine.mkind)
            (fb mem.Machine.capacity)
          :: sigs.(mem.Machine.mnode))
      m.Machine.memories;
    let key node = String.concat ";" (List.sort compare sigs.(node)) in
    let tbl = Hashtbl.create 8 in
    let classes = ref [] in
    for node = n - 1 downto 0 do
      let k = key node in
      match Hashtbl.find_opt tbl k with
      | Some r -> r := node :: !r
      | None ->
          let r = ref [ node ] in
          Hashtbl.add tbl k r;
          classes := r :: !classes
    done;
    let classes =
      Array.of_list (List.map (fun r -> Array.of_list !r) !classes)
    in
    (* members are ascending (descending walk, prepend); order the
       classes by their smallest node *)
    Array.sort (fun a b -> compare a.(0) b.(0)) classes;
    classes
  end

let log2_reduction t ~combos =
  Array.fold_left
    (fun acc ms ->
      let k = Array.length ms in
      if k < 2 then acc
      else
        let c = combos ms.(0) in
        if c <= 1.0 then acc
        else begin
          (* log2 C(c+k-1, k): ordered tuples collapse to multisets *)
          let lg = ref 0.0 in
          for i = 1 to k do
            lg := !lg +. Float.log2 ((c -. 1.0 +. float_of_int i) /. float_of_int i)
          done;
          acc +. ((float_of_int k *. Float.log2 c) -. !lg)
        end)
    0.0 t.orbits
