(** Symmetry (orbit) analysis of a task graph and a machine (§4.2 of
    the paper, extended): equivalence classes of coordinates whose
    values can be exchanged without changing any noise-free cost.

    Two tasks are in the same {e orbit} when the transposition that
    exchanges them (and their collection arguments, positionally) is an
    automorphism of the graph: same group size, variants, flops,
    efficiencies, per-argument footprints and modes, and the same
    dependence/overlap structure up to the relabelling.  Orbits are
    computed in two stages:

    + {b 1-WL colour refinement}: tasks start with a colour derived
      from every statically observable attribute and are iteratively
      split by the multiset of (argument position, neighbour colour,
      bytes, pattern, carried) signatures of their incident dependence
      and overlap edges, to a fixed point.  Refinement over-approximates
      the orbit partition (equal colour is necessary, not sufficient).
    + {b verified transpositions}: within each colour class, candidate
      pairs are checked exactly — the pair swap (with positional
      argument alignment) must leave the edge and overlap multisets
      invariant.  Verified pairs are merged with union-find.  Because
      a set of transpositions whose swap-graph is connected generates
      the full symmetric group on the component, every permutation
      within a reported orbit is a graph automorphism.

    Exchanging the full mapping blocks (distribute, strategy, processor
    kind, per-argument memory kinds) of two orbit members therefore
    yields a mapping with the same noise-free static cost:
    {!Placement} assigns shards per task round-robin from a local
    counter, so same-group-size tasks with exchanged blocks land on
    exactly each other's processors and memories.  The simulated
    makespan agrees up to dispatch-serialization tie order (see
    DESIGN.md §14); the exact certificate tested is
    [Exec.static_lower_bound] equality.

    The machine side is reported for completeness: node equivalence
    classes by kind-signature (processor-kind multiset and
    (memory kind, capacity) multiset; channel structure is per-kind and
    thus determined by the signature).  Presets build nodes
    replicated, so all nodes of a preset machine form one class. *)

type t

val build : Graph.t -> t
(** Compute the task orbits of a graph.  Cost is a few refinement
    sweeps over the edge lists plus an exact check per candidate pair;
    negligible next to one simulation. *)

val n_tasks : t -> int

val orbits : t -> int array array
(** All orbits, each member list ascending by tid, orbits ordered by
    their smallest member.  Every task appears in exactly one orbit;
    singleton orbits are included. *)

val orbit_of : t -> int -> int
(** Index into {!orbits} of the orbit containing task [tid]. *)

val same_orbit : t -> int -> int -> bool

val n_orbits : t -> int
val n_nontrivial : t -> int
(** Orbits with at least two members. *)

val largest_orbit : t -> int
(** Size of the largest orbit (0 on an empty graph). *)

val node_classes : Machine.t -> int array array
(** Machine-node equivalence classes by kind-signature: two nodes are
    equivalent when they host the same multiset of processor kinds and
    the same multiset of (memory kind, capacity) pairs.  Channel
    bandwidth/latency is a function of the endpoint kinds, so the
    incident-channel multiset is implied.  Classes ordered by their
    smallest node id, members ascending. *)

val log2_reduction : t -> combos:(int -> float) -> float
(** Bits of search space removed by quotienting each orbit: with [k]
    members each having [combos tid] per-task assignment choices [c]
    (identical across an orbit), ordered assignments collapse to
    multisets, saving [k*log2 c - log2 (C (c+k-1) k)] bits per orbit.
    [combos] is queried on each orbit's representative (smallest tid). *)
