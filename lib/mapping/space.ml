type dim = Distribution of int | Strategy of int | Processor of int | Memory of int

type t = { g : Graph.t; m : Machine.t; ext : bool; dom : Analysis.domains option }

let make ?(extended = false) ?(domains = true) g m =
  { g; m; ext = extended; dom = (if domains then Some (Analysis.compute_domains m g) else None) }

let graph t = t.g
let machine t = t.m
let extended t = t.ext
let pruned t = t.dom <> None

let dims t =
  let task_dims =
    List.concat_map
      (fun (task : Graph.task) ->
        [ Distribution task.tid; Processor task.tid ]
        @ if t.ext then [ Strategy task.tid ] else [])
      (Array.to_list t.g.tasks)
  in
  let mem_dims =
    List.map (fun (c : Graph.collection) -> Memory c.cid) (Graph.collections t.g)
  in
  task_dims @ mem_dims

let proc_choices_all t tid =
  let task = Graph.task t.g tid in
  List.filter
    (fun k -> Machine.procs_of_kind_per_node t.m k > 0)
    task.variants

(* Domain-pruned choice lists fall back to the unpruned ones when a
   domain is empty: on a certifiably infeasible input the search still
   needs non-empty lists to enumerate (every candidate then earns its
   penalty from the evaluator, exactly as before domains existed). *)
let proc_choices t tid =
  match t.dom with
  | None -> proc_choices_all t tid
  | Some d -> (
      match Analysis.proc_domain d tid with
      | [] -> proc_choices_all t tid
      | l -> l)

let mem_choices _t k = Kinds.accessible_mem_kinds k

let mem_choices_for t ~cid k =
  match t.dom with
  | None -> Kinds.accessible_mem_kinds k
  | Some d -> (
      match Analysis.mem_domain d ~cid k with
      | [] -> Kinds.accessible_mem_kinds k
      | l -> l)

let distribution_choices t =
  (true, Mapping.Blocked) :: (false, Mapping.Blocked)
  :: (if t.ext then [ (true, Mapping.Cyclic) ] else [])

let log2_size t =
  let log2 x = log x /. log 2.0 in
  Array.fold_left
    (fun acc (task : Graph.task) ->
      let procs = proc_choices t task.tid in
      (* Number of (proc, mems...) combinations for this task: sum over
         candidate kinds of the product of its arguments' memory
         domains, times 2 for the distribution bit. *)
      let per_kind k =
        List.fold_left
          (fun p (c : Graph.collection) ->
            p *. float_of_int (List.length (mem_choices_for t ~cid:c.cid k)))
          1.0 task.args
      in
      let combos = List.fold_left (fun s k -> s +. per_kind k) 0.0 procs in
      let dist = float_of_int (List.length (distribution_choices t)) in
      acc +. log2 (dist *. combos))
    0.0 t.g.tasks

let random_strategy t rng =
  if t.ext && Rng.bool rng then Mapping.Cyclic else Mapping.Blocked

let random_mapping t rng =
  let proc_for = Array.make (Graph.n_tasks t.g) Kinds.Cpu in
  Array.iter
    (fun (task : Graph.task) ->
      proc_for.(task.tid) <- Rng.choose_list rng (proc_choices t task.tid))
    t.g.tasks;
  Mapping.make t.g
    ~strategy:(fun _ -> random_strategy t rng)
    ~distribute:(fun _ -> Rng.bool rng)
    ~proc:(fun task -> proc_for.(task.tid))
    ~mem:(fun c -> Rng.choose_list rng (mem_choices_for t ~cid:c.cid proc_for.(c.owner)))

let random_unconstrained t rng =
  Mapping.make t.g
    ~strategy:(fun _ -> random_strategy t rng)
    ~distribute:(fun _ -> Rng.bool rng)
    ~proc:(fun _ -> Rng.choose_list rng Kinds.all_proc_kinds)
    ~mem:(fun _ -> Rng.choose_list rng Kinds.all_mem_kinds)
