type dim = Distribution of int | Strategy of int | Processor of int | Memory of int

type t = {
  g : Graph.t;
  m : Machine.t;
  ext : bool;
  dom : Analysis.domains option;
  dmn : Analysis.dominance option;
  sym : Symmetry.t option;
}

let make ?(extended = false) ?(domains = true) ?(dominance = false)
    ?(symmetry = false) g m =
  let dom = if domains then Some (Analysis.compute_domains m g) else None in
  let dmn =
    match dom with
    | Some d when dominance -> Some (Analysis.compute_dominance m g d)
    | _ -> None
  in
  let sym = if symmetry then Some (Symmetry.build g) else None in
  { g; m; ext = extended; dom; dmn; sym }

let graph t = t.g
let machine t = t.m
let extended t = t.ext
let pruned t = t.dom <> None
let dominance t = t.dmn <> None
let symmetry t = t.sym <> None

let dims t =
  let task_dims =
    List.concat_map
      (fun (task : Graph.task) ->
        [ Distribution task.tid; Processor task.tid ]
        @ if t.ext then [ Strategy task.tid ] else [])
      (Array.to_list t.g.tasks)
  in
  let mem_dims =
    List.map (fun (c : Graph.collection) -> Memory c.cid) (Graph.collections t.g)
  in
  task_dims @ mem_dims

let proc_choices_all t tid =
  let task = Graph.task t.g tid in
  List.filter
    (fun k -> Machine.procs_of_kind_per_node t.m k > 0)
    task.variants

(* Domain-pruned choice lists fall back to the unpruned ones when a
   domain is empty: on a certifiably infeasible input the search still
   needs non-empty lists to enumerate (every candidate then earns its
   penalty from the evaluator, exactly as before domains existed).
   Dominance pruning applies on top and never empties a list: the
   dominator of every pruned value survives by construction. *)
let proc_choices t tid =
  let base =
    match t.dom with
    | None -> proc_choices_all t tid
    | Some d -> (
        match Analysis.proc_domain d tid with
        | [] -> proc_choices_all t tid
        | l -> l)
  in
  match t.dmn with
  | None -> base
  | Some d -> Analysis.proc_surviving d tid base

let mem_choices _t k = Kinds.accessible_mem_kinds k

let mem_choices_for t ~cid k =
  let base =
    match t.dom with
    | None -> Kinds.accessible_mem_kinds k
    | Some d -> (
        match Analysis.mem_domain d ~cid k with
        | [] -> Kinds.accessible_mem_kinds k
        | l -> l)
  in
  match t.dmn with
  | None -> base
  | Some d -> Analysis.mem_surviving d ~cid k base

let distribution_choices t =
  (true, Mapping.Blocked) :: (false, Mapping.Blocked)
  :: (if t.ext then [ (true, Mapping.Cyclic) ] else [])

(* Distance-aware ordering of the distribution choices on topology
   machines: choices whose adjacent shards (the halo-exchange partners)
   land on nodes at most one hop apart come first, so coordinate
   descent tries locality-preserving distributions before ones that
   scatter neighbours across the interconnect.  The candidate set is
   unchanged — only the order moves — and machines without a topology
   get the historical list verbatim.  The shard->node arithmetic
   mirrors Placement.node_of_shard (the mapping layer sits below sim,
   so it cannot call it). *)
let distribution_choices_for t tid =
  let base = distribution_choices t in
  match t.m.Machine.topology with
  | None -> base
  | Some topo ->
      let nodes = t.m.Machine.nodes in
      if nodes <= 1 then base
      else begin
        let shards = (Graph.task t.g tid).group_size in
        let node_of distribute strategy s =
          if not distribute then 0
          else
            match (strategy : Mapping.dist_strategy) with
            | Mapping.Cyclic -> s mod nodes
            | Mapping.Blocked -> if shards >= nodes then s * nodes / shards else s
        in
        let local (distribute, strategy) =
          let ok = ref true in
          for s = 0 to shards - 2 do
            let a = node_of distribute strategy s
            and b = node_of distribute strategy (s + 1) in
            if a <> b then begin
              let d = Topology.distance topo ~src:a ~dst:b in
              if d < 0 || d > 1 then ok := false
            end
          done;
          !ok
        in
        let locals, scattered = List.partition local base in
        locals @ scattered
      end

let log2_size t =
  let log2 x = log x /. log 2.0 in
  Array.fold_left
    (fun acc (task : Graph.task) ->
      let procs = proc_choices t task.tid in
      (* Number of (proc, mems...) combinations for this task: sum over
         candidate kinds of the product of its arguments' memory
         domains, times 2 for the distribution bit. *)
      let per_kind k =
        List.fold_left
          (fun p (c : Graph.collection) ->
            p *. float_of_int (List.length (mem_choices_for t ~cid:c.cid k)))
          1.0 task.args
      in
      let combos = List.fold_left (fun s k -> s +. per_kind k) 0.0 procs in
      let dist = float_of_int (List.length (distribution_choices t)) in
      acc +. log2 (dist *. combos))
    0.0 t.g.tasks

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

(* Relabel within task orbits to the lexicographic representative: the
   multiset of per-task blocks (distribution, strategy, processor kind,
   argument memory kinds in argument order) of each orbit is reassigned
   to its members in ascending tid order, blocks sorted.  Placement
   assigns shards per task from a task-local round-robin counter, so
   orbit members (same group size by construction) with exchanged
   blocks land on exactly each other's processors and memories — the
   noise-free static cost is unchanged (see Symmetry and DESIGN.md
   §14). *)
let canonicalize t m =
  match t.sym with
  | None -> m
  | Some sym ->
      let nt = Graph.n_tasks t.g in
      let dist = Array.init nt (Mapping.distribute_of m) in
      let strat = Array.init nt (Mapping.strategy_of m) in
      let proc = Array.init nt (Mapping.proc_of m) in
      let mem =
        Array.map (fun (c : Graph.collection) -> Mapping.mem_of m c.cid)
          t.g.Graph.cols
      in
      let changed = ref false in
      Array.iter
        (fun members ->
          if Array.length members >= 2 then begin
            let block tid =
              let task = Graph.task t.g tid in
              (if dist.(tid) then 0 else 1)
              :: (match strat.(tid) with Mapping.Blocked -> 0 | Mapping.Cyclic -> 1)
              :: Kinds.rank_proc proc.(tid)
              :: List.map
                   (fun (c : Graph.collection) -> Kinds.rank_mem mem.(c.cid))
                   task.args
            in
            let blocks = Array.map block members in
            let sorted = Array.copy blocks in
            Array.sort compare sorted;
            if sorted <> blocks then begin
              changed := true;
              Array.iteri
                (fun i tid ->
                  match sorted.(i) with
                  | d :: s :: p :: ms ->
                      dist.(tid) <- d = 0;
                      strat.(tid) <-
                        (if s = 0 then Mapping.Blocked else Mapping.Cyclic);
                      proc.(tid) <-
                        (if p = 0 then Kinds.Cpu else Kinds.Gpu);
                      List.iteri
                        (fun j (c : Graph.collection) ->
                          mem.(c.cid) <-
                            (match List.nth ms j with
                            | 0 -> Kinds.System
                            | 1 -> Kinds.Zero_copy
                            | _ -> Kinds.Frame_buffer))
                        (Graph.task t.g tid).args
                  | _ -> assert false)
                members
            end
          end)
        (Symmetry.orbits sym);
      if not !changed then m
      else
        Mapping.make t.g
          ~strategy:(fun (task : Graph.task) -> strat.(task.tid))
          ~distribute:(fun (task : Graph.task) -> dist.(task.tid))
          ~proc:(fun (task : Graph.task) -> proc.(task.tid))
          ~mem:(fun (c : Graph.collection) -> mem.(c.cid))

let random_strategy t rng =
  if t.ext && Rng.bool rng then Mapping.Cyclic else Mapping.Blocked

let random_mapping t rng =
  let proc_for = Array.make (Graph.n_tasks t.g) Kinds.Cpu in
  Array.iter
    (fun (task : Graph.task) ->
      proc_for.(task.tid) <- Rng.choose_list rng (proc_choices t task.tid))
    t.g.tasks;
  let m =
    Mapping.make t.g
      ~strategy:(fun _ -> random_strategy t rng)
      ~distribute:(fun _ -> Rng.bool rng)
      ~proc:(fun task -> proc_for.(task.tid))
      ~mem:(fun c -> Rng.choose_list rng (mem_choices_for t ~cid:c.cid proc_for.(c.owner)))
  in
  canonicalize t m

let random_unconstrained t rng =
  Mapping.make t.g
    ~strategy:(fun _ -> random_strategy t rng)
    ~distribute:(fun _ -> Rng.bool rng)
    ~proc:(fun _ -> Rng.choose_list rng Kinds.all_proc_kinds)
    ~mem:(fun _ -> Rng.choose_list rng Kinds.all_mem_kinds)
