(** A mapping f (§2, factored as in §3.2).

    After AutoMap's factorization, a mapping assigns to every group
    task a distribution bit (run on the leader node vs. blocked across
    all nodes, §3.1) and a processor *kind*, and to every collection
    argument a memory *kind*:

      f(t, c) = (d, k_p, k_m)

    The runtime logic (the simulator's mapper) later picks concrete
    devices: shards are placed blocked across nodes and round-robin
    across same-kind processors within a node, and each argument goes
    to the memory of the chosen kind closest to the chosen processor.

    Values are immutable; updates return new mappings (the search's
    TestMapping discipline relies on candidate mappings being
    independent values). *)

type t

(** How a distributed group task's shards are laid out across nodes —
    the paper fixes this to [Blocked] and flags searching it as future
    work (§3.2, and the §5 Circuit discussion of blocked vs.
    round-robin decomposition); the extended search space exposes it
    as a dimension. *)
type dist_strategy = Blocked | Cyclic

val strategy_to_string : dist_strategy -> string
val strategy_of_string : string -> dist_strategy option

val make :
  ?strategy:(Graph.task -> dist_strategy) ->
  Graph.t ->
  distribute:(Graph.task -> bool) ->
  proc:(Graph.task -> Kinds.proc_kind) ->
  mem:(Graph.collection -> Kinds.mem_kind) ->
  t
(** Build from per-task / per-argument choice functions; [strategy]
    defaults to [Blocked] for every task (the paper's fixed choice). *)

val default_start : Graph.t -> Machine.t -> t
(** The starting point of §4.1: group tasks distributed across all
    nodes, tasks with a GPU variant on GPUs (when the machine has
    GPUs), every collection in the fastest memory accessible from the
    chosen processor kind (Frame-Buffer for GPU tasks, System for CPU
    tasks). *)

val all_cpu : Graph.t -> Machine.t -> t
(** Everything on CPUs with collections in System memory. *)

(** {1 Accessors} *)

val distribute_of : t -> int -> bool
(** By tid. *)

val strategy_of : t -> int -> dist_strategy

val proc_of : t -> int -> Kinds.proc_kind
val mem_of : t -> int -> Kinds.mem_kind
(** By cid. *)

(** {1 Functional updates} *)

val set_distribute : t -> int -> bool -> t
val set_strategy : t -> int -> dist_strategy -> t
val set_proc : t -> int -> Kinds.proc_kind -> t
val set_mem : t -> int -> Kinds.mem_kind -> t

(** {1 Validity (§4.2 constraint (1))} *)

val validate : Graph.t -> Machine.t -> t -> (unit, string) result
(** Checks that every task's processor kind exists on the machine and
    the task has a variant for it, and that every collection argument's
    memory kind is accessible from its task's processor kind.  Returns
    a human-readable reason on failure. *)

val is_valid : Graph.t -> Machine.t -> t -> bool

val memory_priority : t -> Graph.task -> int -> Kinds.mem_kind list
(** Priority list of memory kinds for an argument (§3.1's
    generalization): the mapped kind first, then the remaining kinds
    accessible from the task's processor kind.  The simulator's
    fallback mode walks this list when a memory is full. *)

(** {1 Identity} *)

val equal : t -> t -> bool

val diff : t -> t -> int list * int list
(** [diff a b] is [(tids, cids)]: the tasks whose distribution bit,
    strategy or processor kind differ between the two mappings, and the
    collections whose memory kind differs, both in ascending order.
    Search neighbors differ from their incumbent in one or two
    coordinates, which is what makes delta-aware placement
    ({!Placement.patch}) pay off.  Raises [Invalid_argument] when the
    mappings belong to graphs of different shape. *)

val canonical_key : t -> string
(** Stable, injective textual key (used by the profiles database to
    detect that a search algorithm re-suggested an already-evaluated
    mapping, §5.3). *)

val of_canonical_key : Graph.t -> string -> t option
(** Inverse of {!canonical_key} for the same graph; [None] when the key
    does not match the graph's task/argument counts or contains
    unknown codes.  Lets the profiles database be persisted and
    reloaded across search sessions. *)

val pp : Graph.t -> Format.formatter -> t -> unit
(** Multi-line human-readable rendering, one task per line. *)
