(** Search-space descriptor (§3.2).

    After factoring the mapping problem into kinds, the space of
    candidate mappings for graph G on machine M is

      Π_t  2 · |variants(t) ∩ kinds(M)| · Π_{c ∈ args(t)} |mems(k)|

    where the 2 is the distribution bit and |mems(k)| the number of
    memory kinds addressable from each candidate processor kind.  This
    module computes the per-dimension domains the search algorithms
    enumerate and the size statistics reported in Figure 5. *)

type dim =
  | Distribution of int          (** tid *)
  | Strategy of int              (** tid — extended space only *)
  | Processor of int             (** tid *)
  | Memory of int                (** cid *)

type t

val make :
  ?extended:bool -> ?domains:bool -> ?dominance:bool -> ?symmetry:bool ->
  Graph.t -> Machine.t -> t
(** [extended] (default false) additionally opens the group-task
    distribution-strategy dimension (blocked vs. cyclic across nodes)
    that the paper fixes to blocked and names as future work (§3.2).

    [domains] (default true) restricts every choice list to the
    coordinate domains {!Analysis.compute_domains} certifies: values
    the analyzer proves can never validate + place strictly are not
    sampled or enumerated.  Pruned lists fall back to the unpruned
    ones when a domain is empty, so choice lists are always non-empty
    on any machine/graph the unpruned space accepted.

    [dominance] (default false; requires [domains]) further removes
    values {!Analysis.compute_dominance} certifies are dominated —
    replacing them by their surviving dominator in any candidate never
    worsens the noise-free cost.  Order-preserving, never empties a
    list.

    [symmetry] (default false) activates {!canonicalize}: random
    samples are canonicalized, and callers (the engine's seen-set) can
    canonicalize candidates to detect symmetric duplicates. *)

val extended : t -> bool

val pruned : t -> bool
(** Whether coordinate domains are active. *)

val dominance : t -> bool
(** Whether dominance pruning is active. *)

val symmetry : t -> bool
(** Whether orbit canonicalization is active. *)

val graph : t -> Graph.t
val machine : t -> Machine.t

val dims : t -> dim list
(** All search dimensions: one distribution and one processor choice
    per task, one memory choice per collection argument. *)

val proc_choices : t -> int -> Kinds.proc_kind list
(** Processor kinds usable for task [tid]: variants intersected with
    kinds present on the machine, minus domain-excluded kinds when
    domains are active (order preserved). *)

val proc_choices_all : t -> int -> Kinds.proc_kind list
(** The unpruned list (variants ∩ present kinds), regardless of
    domains — what the search space looked like before analysis;
    [length (proc_choices_all) - length (proc_choices)] is the number
    of dead values of the coordinate. *)

val mem_choices : t -> Kinds.proc_kind -> Kinds.mem_kind list
(** Memory kinds addressable from a processor kind (kind-level only,
    never domain-pruned — use {!mem_choices_for} for a specific
    collection coordinate). *)

val mem_choices_for : t -> cid:int -> Kinds.proc_kind -> Kinds.mem_kind list
(** Memory kinds for collection [cid] under owner kind [k]:
    [mem_choices k] minus capacity-infeasible kinds when domains are
    active (fastest-first order preserved, unpruned fallback when the
    domain is empty). *)

val distribution_choices : t -> (bool * Mapping.dist_strategy) list
(** The (distribute, strategy) combinations the search enumerates per
    task: {[(true, Blocked); (false, Blocked)]} in the paper's space,
    plus [(true, Cyclic)] when extended. *)

val distribution_choices_for : t -> int -> (bool * Mapping.dist_strategy) list
(** {!distribution_choices} reordered for task [tid] on a topology
    machine: choices whose adjacent shards land at most one routing hop
    apart come first, so descent probes locality-preserving
    distributions before scattering ones.  Same elements as
    {!distribution_choices} (only the order changes); identical to it
    on machines without a topology. *)

val log2_size : t -> float
(** log₂ of the number of candidate mappings, counting for each task
    the distribution bit, its processor-kind domain, and — summed over
    the per-kind choice — the memory domains of its arguments (the
    estimate of §3.2). *)

val canonicalize : t -> Mapping.t -> Mapping.t
(** Orbit-canonical representative of a mapping: within every task
    orbit ({!Symmetry}), the members' blocks (distribution, strategy,
    processor kind, argument memory kinds) are sorted lexicographically
    and reassigned to the members in ascending tid order.  Idempotent;
    invariant under within-orbit relabelings; the result has the same
    noise-free static cost ([Exec.static_lower_bound]) because shard
    placement is per-task round-robin.  The identity when [symmetry]
    was not requested at {!make}; returns the input physically
    unchanged when it is already canonical. *)

val random_mapping : t -> Rng.t -> Mapping.t
(** Uniform sample of a *valid* mapping: pick a processor kind from the
    task's domain, then each argument's memory uniformly among the
    kinds that processor can address.  Used by the ensemble tuner's
    seeding and by property tests.  Canonicalized when [symmetry] is
    active. *)

val random_unconstrained : t -> Rng.t -> Mapping.t
(** Uniform sample ignoring accessibility — processor and memory kinds
    drawn independently, as a constraint-unaware tuner (OpenTuner,
    §4.3) would.  Frequently invalid by design. *)
