let to_string g m =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "# mapping for %s\n" g.Graph.gname);
  for tid = 0 to Graph.n_tasks g - 1 do
    let task = Graph.task g tid in
    Buffer.add_string buf
      (Printf.sprintf "task %s distribute=%b proc=%s strategy=%s\n" task.tname
         (Mapping.distribute_of m tid)
         (Kinds.proc_kind_to_string (Mapping.proc_of m tid))
         (Mapping.strategy_to_string (Mapping.strategy_of m tid)));
    List.iter
      (fun (c : Graph.collection) ->
        Buffer.add_string buf
          (Printf.sprintf "arg %s %s mem=%s\n" task.tname c.cname
             (Kinds.mem_kind_to_string (Mapping.mem_of m c.cid))))
      task.args
  done;
  Buffer.contents buf

type parse_state = {
  mutable dist : (string * bool) list;
  mutable strat : (string * Mapping.dist_strategy) list;
  mutable proc : (string * Kinds.proc_kind) list;
  mutable mem : ((string * string) * Kinds.mem_kind) list;
}

let of_string g s =
  let st = { dist = []; strat = []; proc = []; mem = [] } in
  let error = ref None in
  let set_error fmt = Printf.ksprintf (fun e -> if !error = None then error := Some e) fmt in
  let parse_line lineno line =
    let line = String.trim line in
    if line = "" || (String.length line > 0 && line.[0] = '#') then ()
    else
      match String.split_on_char ' ' line |> List.filter (fun x -> x <> "") with
      | "task" :: name :: fields -> (
          let kv =
            List.filter_map
              (fun tok ->
                match String.split_on_char '=' tok with
                | [ k; v ] -> Some (k, v)
                | _ -> None)
              fields
          in
          if List.length kv <> List.length fields then
            set_error "line %d: malformed task line" lineno
          else
            match (List.assoc_opt "distribute" kv, List.assoc_opt "proc" kv) with
            | Some d, Some p -> (
                match (bool_of_string_opt d, Kinds.proc_kind_of_string p) with
                | Some d, Some p -> (
                    st.dist <- (name, d) :: st.dist;
                    st.proc <- (name, p) :: st.proc;
                    (* strategy is optional for backward compatibility *)
                    match List.assoc_opt "strategy" kv with
                    | None -> ()
                    | Some sv -> (
                        match Mapping.strategy_of_string sv with
                        | Some strat -> st.strat <- (name, strat) :: st.strat
                        | None -> set_error "line %d: bad strategy %S" lineno sv))
                | None, _ -> set_error "line %d: bad boolean %S" lineno d
                | _, None -> set_error "line %d: bad processor kind %S" lineno p)
            | _ -> set_error "line %d: malformed task line" lineno)
      | [ "arg"; tname; cname; mem_field ] -> (
          match String.split_on_char '=' mem_field with
          | [ "mem"; mk ] -> (
              match Kinds.mem_kind_of_string mk with
              | Some mk -> st.mem <- ((tname, cname), mk) :: st.mem
              | None -> set_error "line %d: bad memory kind %S" lineno mk)
          | _ -> set_error "line %d: malformed arg line" lineno)
      | _ -> set_error "line %d: unrecognized line %S" lineno line
  in
  List.iteri (fun i l -> parse_line (i + 1) l) (String.split_on_char '\n' s);
  match !error with
  | Some e -> Error e
  | None -> (
      let missing = ref None in
      let lookup what assoc key pretty =
        match List.assoc_opt key assoc with
        | Some v -> Some v
        | None ->
            if !missing = None then
              missing := Some (Printf.sprintf "missing %s for %s" what pretty);
            None
      in
      let mapping =
        Mapping.make g
          ~strategy:(fun t ->
            Option.value ~default:Mapping.Blocked (List.assoc_opt t.tname st.strat))
          ~distribute:(fun t ->
            Option.value ~default:true (lookup "distribute" st.dist t.tname t.tname))
          ~proc:(fun t ->
            Option.value ~default:Kinds.Cpu (lookup "proc" st.proc t.tname t.tname))
          ~mem:(fun c ->
            let tname = (Graph.task g c.owner).tname in
            Option.value ~default:Kinds.System
              (lookup "mem" st.mem (tname, c.cname) (tname ^ "/" ^ c.cname)))
      in
      match !missing with Some e -> Error e | None -> Ok mapping)

(* Checkpoint primitives: hex floats round-trip bit-exactly, canonical
   keys round-trip mappings exactly — together they let the search
   layer serialize an incumbent in one line. *)

let hex_of_float = Printf.sprintf "%h"

let float_of_hex s = float_of_string_opt s

let incumbent_line m perf =
  Printf.sprintf "%h %s" perf (Mapping.canonical_key m)

let parse_incumbent g line =
  match String.split_on_char ' ' line |> List.filter (( <> ) "") with
  | [ p; key ] -> (
      match (float_of_string_opt p, Mapping.of_canonical_key g key) with
      | Some p, Some m -> Ok (m, p)
      | None, _ -> Error ("Codec.parse_incumbent: bad perf " ^ p)
      | _, None -> Error ("Codec.parse_incumbent: key does not match the graph"))
  | _ -> Error ("Codec.parse_incumbent: malformed line " ^ line)

let round_trip_exn g m =
  match of_string g (to_string g m) with
  | Ok m' -> m'
  | Error e -> failwith ("Codec.round_trip_exn: " ^ e)
