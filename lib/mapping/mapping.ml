type dist_strategy = Blocked | Cyclic

let strategy_to_string = function Blocked -> "blocked" | Cyclic -> "cyclic"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "blocked" -> Some Blocked
  | "cyclic" -> Some Cyclic
  | _ -> None

type t = {
  distribute : bool array;           (* indexed by tid *)
  strategy : dist_strategy array;    (* indexed by tid *)
  proc : Kinds.proc_kind array;      (* indexed by tid *)
  mem : Kinds.mem_kind array;        (* indexed by cid *)
}

let make ?(strategy = fun _ -> Blocked) (g : Graph.t) ~distribute ~proc ~mem =
  let nt = Graph.n_tasks g in
  let cols = Graph.collections g in
  let nc = List.length cols in
  (* cids are dense by construction of Graph.Builder. *)
  List.iteri
    (fun i (c : Graph.collection) ->
      if c.cid <> i then invalid_arg "Mapping.make: collection ids are not dense")
    cols;
  let d = Array.make nt true in
  let st = Array.make nt Blocked in
  let p = Array.make nt Kinds.Cpu in
  let m = Array.make (max nc 1) Kinds.System in
  for tid = 0 to nt - 1 do
    let task = Graph.task g tid in
    d.(tid) <- distribute task;
    st.(tid) <- strategy task;
    p.(tid) <- proc task
  done;
  List.iter (fun (c : Graph.collection) -> m.(c.cid) <- mem c) cols;
  { distribute = d; strategy = st; proc = p; mem = m }

let preferred_kind (m : Machine.t) (task : Graph.task) =
  if Graph.has_variant task Kinds.Gpu && Machine.procs_of_kind_per_node m Kinds.Gpu > 0
  then Kinds.Gpu
  else Kinds.Cpu

let fastest_mem = function Kinds.Gpu -> Kinds.Frame_buffer | Kinds.Cpu -> Kinds.System

let default_start g machine =
  let proc t = preferred_kind machine t in
  make g
    ~distribute:(fun _ -> true)
    ~proc
    ~mem:(fun c -> fastest_mem (proc (Graph.task g c.owner)))

let all_cpu g _machine =
  make g ~distribute:(fun _ -> true) ~proc:(fun _ -> Kinds.Cpu) ~mem:(fun _ -> Kinds.System)

let distribute_of t tid = t.distribute.(tid)
let strategy_of t tid = t.strategy.(tid)
let proc_of t tid = t.proc.(tid)
let mem_of t cid = t.mem.(cid)

let set_distribute t tid v =
  let d = Array.copy t.distribute in
  d.(tid) <- v;
  { t with distribute = d }

let set_strategy t tid v =
  let st = Array.copy t.strategy in
  st.(tid) <- v;
  { t with strategy = st }

let set_proc t tid v =
  let p = Array.copy t.proc in
  p.(tid) <- v;
  { t with proc = p }

let set_mem t cid v =
  let m = Array.copy t.mem in
  m.(cid) <- v;
  { t with mem = m }

let validate g machine t =
  (* format an error message only on failure: this runs once per
     suggested candidate, and eagerly rendering messages for checks
     that pass dominates the whole call *)
  let problem = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt
  in
  (* Coordinate-naming style shared with Analysis diagnostics and
     Placement's OOM errors: "task <tid> (<name>)" / "collection
     c<cid> (<name>)", always naming the kinds involved. *)
  for tid = 0 to Graph.n_tasks g - 1 do
    let task = Graph.task g tid in
    let k = t.proc.(tid) in
    if not (Machine.procs_of_kind_per_node machine k > 0) then
      fail "task %d (%s) mapped to %s but the machine has no %s processors" tid
        task.tname (Kinds.proc_kind_to_string k) (Kinds.proc_kind_to_string k);
    if not (Graph.has_variant task k) then
      fail "task %d (%s) has no %s variant" tid task.tname (Kinds.proc_kind_to_string k);
    List.iter
      (fun (c : Graph.collection) ->
        if not (Kinds.accessible k t.mem.(c.cid)) then
          fail "collection c%d (%s) of task %d (%s) mapped to %s, not addressable from %s"
            c.cid c.cname tid task.tname
            (Kinds.mem_kind_to_string t.mem.(c.cid))
            (Kinds.proc_kind_to_string k))
      task.args
  done;
  match !problem with None -> Ok () | Some reason -> Error reason

let is_valid g machine t = Result.is_ok (validate g machine t)

let memory_priority t (task : Graph.task) cid =
  let chosen = t.mem.(cid) in
  let k = t.proc.(task.tid) in
  chosen
  :: List.filter
       (fun mk -> not (Kinds.equal_mem mk chosen))
       (Kinds.accessible_mem_kinds k)

(* Monomorphic array walks: [equal] runs once per generated neighbour
   (the no-op check), where the polymorphic compare's C calls dominate
   on these small immediate-element arrays. *)
let equal a b =
  let nt = Array.length a.proc and nc = Array.length a.mem in
  nt = Array.length b.proc
  && nc = Array.length b.mem
  &&
  let ok = ref true in
  for tid = 0 to nt - 1 do
    if
      a.distribute.(tid) <> b.distribute.(tid)
      || a.strategy.(tid) != b.strategy.(tid)
      || a.proc.(tid) != b.proc.(tid)
    then ok := false
  done;
  if !ok then
    for cid = 0 to nc - 1 do
      if a.mem.(cid) != b.mem.(cid) then ok := false
    done;
  !ok

let diff a b =
  if
    Array.length a.proc <> Array.length b.proc
    || Array.length a.mem <> Array.length b.mem
  then invalid_arg "Mapping.diff: mappings of different graphs";
  let tids = ref [] in
  for tid = Array.length a.proc - 1 downto 0 do
    if
      a.distribute.(tid) <> b.distribute.(tid)
      || a.strategy.(tid) != b.strategy.(tid)
      || a.proc.(tid) != b.proc.(tid)
    then tids := tid :: !tids
  done;
  let cids = ref [] in
  for cid = Array.length a.mem - 1 downto 0 do
    if a.mem.(cid) != b.mem.(cid) then cids := cid :: !cids
  done;
  (!tids, !cids)

let canonical_key t =
  let buf = Buffer.create 64 in
  Array.iter (fun d -> Buffer.add_char buf (if d then 'D' else 'L')) t.distribute;
  Buffer.add_char buf '|';
  Array.iter
    (fun s -> Buffer.add_char buf (match s with Blocked -> 'B' | Cyclic -> 'Y'))
    t.strategy;
  Buffer.add_char buf '|';
  Array.iter
    (fun p -> Buffer.add_char buf (match p with Kinds.Cpu -> 'C' | Kinds.Gpu -> 'G'))
    t.proc;
  Buffer.add_char buf '|';
  Array.iter
    (fun m ->
      Buffer.add_char buf
        (match m with Kinds.System -> 'S' | Kinds.Zero_copy -> 'Z' | Kinds.Frame_buffer -> 'F'))
    t.mem;
  Buffer.contents buf

let of_canonical_key g key =
  match String.split_on_char '|' key with
  | [ d; st; p; m ] ->
      let nt = Graph.n_tasks g and nc = Graph.n_collections g in
      if String.length d <> nt || String.length st <> nt || String.length p <> nt
         || String.length m <> nc
      then None
      else begin
        let ok = ref true in
        let distribute = Array.make nt true in
        let strategy = Array.make nt Blocked in
        let proc = Array.make nt Kinds.Cpu in
        let mem = Array.make (max nc 1) Kinds.System in
        String.iteri
          (fun i c ->
            match c with
            | 'D' -> distribute.(i) <- true
            | 'L' -> distribute.(i) <- false
            | _ -> ok := false)
          d;
        String.iteri
          (fun i c ->
            match c with
            | 'B' -> strategy.(i) <- Blocked
            | 'Y' -> strategy.(i) <- Cyclic
            | _ -> ok := false)
          st;
        String.iteri
          (fun i c ->
            match c with
            | 'C' -> proc.(i) <- Kinds.Cpu
            | 'G' -> proc.(i) <- Kinds.Gpu
            | _ -> ok := false)
          p;
        String.iteri
          (fun i c ->
            match c with
            | 'S' -> mem.(i) <- Kinds.System
            | 'Z' -> mem.(i) <- Kinds.Zero_copy
            | 'F' -> mem.(i) <- Kinds.Frame_buffer
            | _ -> ok := false)
          m;
        if !ok then Some { distribute; strategy; proc; mem } else None
      end
  | _ -> None

let pp g ppf t =
  for tid = 0 to Graph.n_tasks g - 1 do
    let task = Graph.task g tid in
    Format.fprintf ppf "%-24s %s/%s %-3s |" task.tname
      (if t.distribute.(tid) then "dist" else "leader")
      (strategy_to_string t.strategy.(tid))
      (Kinds.proc_kind_to_string t.proc.(tid));
    List.iter
      (fun (c : Graph.collection) ->
        Format.fprintf ppf " %s:%s" c.cname (Kinds.mem_kind_to_string t.mem.(c.cid)))
      task.args;
    if tid < Graph.n_tasks g - 1 then Format.pp_print_newline ppf ()
  done
