(* Checkpointed, resumable and portfolio search.

     dune exec examples/checkpointed_search.exe

   Long offline searches (the paper's Pennant/HTR searches ran for
   hours, Figure 5) benefit from the strategy engine's persistence:
   a checkpoint file carries the full decision state — strategy
   cursors, RNG streams, evaluator counters and the profiles
   database — so an interrupted search resumes decision-identically,
   not merely warm-started. *)

let () =
  let machine = Presets.shepard ~nodes:1 in
  let g = App.pennant.App.graph ~nodes:1 ~input:"320x90" in
  let ckpt = Filename.temp_file "automap_example" ".ckpt" in

  (* session 1: CCD capped at 80 trials — an "interrupted" search that
     left a checkpoint behind (written every 20 evaluated trials) *)
  let r1 =
    Driver.run ~runs:3 ~noise_sigma:0.02 ~seed:0 ~max_trials:80 ~checkpoint:ckpt
      ~checkpoint_every:20
      (Driver.Ccd { rotations = 5 })
      machine g
  in
  Printf.printf
    "session 1 (CCD, interrupted): best %.3f ms after %d executions; %d checkpoint(s)\n"
    (r1.Driver.search_perf *. 1e3)
    r1.Driver.evaluated r1.Driver.checkpoints_written;

  (* session 2: resume from the file.  The engine replays nothing — it
     restores the sweep cursor, incumbent and RNG state and continues
     with the exact decision sequence the uninterrupted search would
     have made, streaming improvements as events. *)
  let improvements = ref 0 in
  let r2 =
    Driver.run ~runs:3 ~noise_sigma:0.02 ~seed:0 ~resume_from:ckpt
      ~on_event:(function Engine.Improve _ -> incr improvements | _ -> ())
      (Driver.Ccd { rotations = 5 })
      machine g
  in
  Printf.printf
    "session 2 (resumed): best %.3f ms, %d engine steps total, %d further improvements\n"
    (r2.Driver.search_perf *. 1e3)
    r2.Driver.engine_steps !improvements;
  Sys.remove ckpt;

  (* portfolio: CCD + annealing + random over one shared evaluator,
     under a 30-virtual-second budget split equally *)
  let ev3 = Evaluator.create ~runs:3 ~noise_sigma:0.02 ~seed:1 machine g in
  let best, p3 = Portfolio.search ~seed:1 ~budget:30.0 ev3 in
  Printf.printf "portfolio (%s): best %.3f ms — %s\n"
    (String.concat "+" (List.map Portfolio.member_name Portfolio.default_members))
    (p3 *. 1e3)
    (Report.placement_summary g best)
