(* Bring your own application and machine.

     dune exec examples/custom_app.exe

   Shows the full public API surface a downstream user touches:

   - declare a machine (here: a 2-node box with one big GPU and a
     small Zero-Copy pool);
   - declare a workload with the declarative builder (arrays +
     tasks in per-iteration order) — or drop down to Graph.Builder
     for full control;
   - run the search and replay the resulting mapping. *)

let my_machine =
  Machine.make ~name:"MyCluster" ~nodes:2
    ~node:
      {
        sockets = 2;
        cores_per_socket = 1;       (* one OpenMP group per socket *)
        gpus = 2;
        sysmem_per_socket = 64e9;
        zc_capacity = 8e9;
        fb_capacity = 24e9;
      }
    ~exec_bw:
      { cpu_sys = 60e9; cpu_zc = 40e9; gpu_fb = 900e9; gpu_zc = 25e9 }
    ~compute:
      {
        cpu_flops = 1000e9;
        gpu_flops = 10000e9;
        cpu_launch_overhead = 8e-6;
        gpu_launch_overhead = 25e-6;
        runtime_dispatch = 8e-6;
      }
    ~copy:
      {
        memcpy_bw = 30e9;
        cross_socket_bw = 15e9;
        pcie_bw = 25e9;
        gpu_peer_bw = 100e9;
        local_latency = 4e-6;
        net_bandwidth = 25e9;
        net_latency = 2e-6;
      }
    ()

(* A small graph-analytics-style pipeline: gather is scatter-heavy
   (poor GPU efficiency), apply is dense (great on GPU), and the
   frontier data is shared between them every iteration. *)
let my_app =
  let n = 4e6 in
  let shards = 8 in
  let arrays =
    [
      Workload.array_decl ~name:"vertices" ~elems:n ~comps:4 ~halo_frac:0.05 ();
      Workload.array_decl ~name:"frontier" ~elems:n ();
      Workload.array_decl ~name:"messages" ~elems:n ~comps:2 ();
    ]
  in
  let tasks =
    [
      Workload.task_decl ~name:"gather" ~work_elems:n ~flops_per_elem:30.0
        ~group_size:shards ~gpu_eff:0.3 ~cpu_eff:1.0
        ~accesses:
          [ Workload.read ~ghosted:true "vertices"; Workload.read "frontier";
            Workload.write "messages" ]
        ();
      Workload.task_decl ~name:"apply" ~work_elems:n ~flops_per_elem:200.0
        ~group_size:shards ~gpu_eff:1.0 ~cpu_eff:0.8
        ~accesses:
          [ Workload.read "messages"; Workload.read_write "vertices";
            Workload.write "frontier" ]
        ();
    ]
  in
  Workload.build ~name:"graph-pipeline" ~iterations:4 ~arrays ~tasks

let () =
  Format.printf "machine: %a@." Machine.pp my_machine;
  Format.printf "workload: %a@.@." Graph.pp_summary my_app;
  let default = Mapping.default_start my_app my_machine in
  let p0 = Automap_api.measure_mapping my_machine my_app default in
  let r = Driver.run ~seed:0 (Driver.Ccd { rotations = 5 }) my_machine my_app in
  Printf.printf "default strategy : %8.3f ms/iter\n" (p0 *. 1e3);
  Printf.printf "AutoMap (CCD)    : %8.3f ms/iter  (%.2fx)\n\n" (r.Driver.perf *. 1e3)
    (p0 /. r.Driver.perf);
  print_string (Report.mapping my_app r.Driver.best);
  (* replay: anyone can reload and re-run the tuned mapping *)
  let file = Codec.to_string my_app r.Driver.best in
  match Codec.of_string my_app file with
  | Ok m ->
      let p = Automap_api.measure_mapping my_machine my_app m in
      Printf.printf "\nreplayed from mapping file: %.3f ms/iter\n" (p *. 1e3)
  | Error e -> failwith e
