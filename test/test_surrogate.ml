(* The surrogate contract (DESIGN.md §12), in three layers:

   1. Model properties (qcheck, all five apps): feature extraction is
      total and stable on arbitrary — even invalid — mappings, [rank]
      always returns a permutation, and the checkpoint codec
      round-trips bit-exactly (save → restore → save is the identity,
      and a restored model predicts bit-identically).

   2. Identity: CCD proposing surrogate-ranked *batches* is
      decision-identical — same best, bit-equal perf, identical
      evaluator counters, identical surrogate state — to CCD proposing
      the same ranked candidates one at a time.  This is the ranked
      analogue of the plain batch ≡ sequential property (test_batch),
      valid for the same reason: common random numbers make each
      candidate's result order-independent.

   3. Never-worse golden gate: at the same trial budget, surrogate
      reranking and top-K skimming must end with a final best no worse
      than the exact batched CCD, on every app.  Reranking and
      skimming change the *trajectory* (a different neighbour may be
      accepted first), so this is an empirical quality gate, not an
      identity — the bench (surrogaterate) holds the same line. *)

let cases =
  [
    (App.circuit, "n50w200");
    (App.stencil, "500x500");
    (App.pennant, "320x90");
    (App.htr, "8x8y9z");
    (App.maestro, "lf4r16");
  ]

let machine_for (app : App.t) ~nodes =
  if app.App.app_name = "Maestro" then Presets.lassen ~nodes else Presets.shepard ~nodes

let space_of (app : App.t) input =
  let machine = machine_for app ~nodes:1 in
  let g = app.App.graph ~nodes:1 ~input in
  (machine, g, Space.make g machine)

(* ---- 1. model properties -------------------------------------------- *)

let features_total_and_stable (app : App.t) input seed =
  let _, _, space = space_of app input in
  let sg = Surrogate.create space in
  let rng = Rng.create seed in
  (* exercise the diff features too: half the time set a reference *)
  if Rng.bool rng then
    Surrogate.note_incumbent sg (Space.random_unconstrained space rng);
  let m = Space.random_unconstrained space rng in
  let f1 = Surrogate.features sg m in
  let f2 = Surrogate.features sg m in
  let p1 = Surrogate.predict sg m in
  let p2 = Surrogate.predict sg m in
  let rec ascending = function
    | (i, _) :: ((j, _) :: _ as rest) -> i < j && ascending rest
    | _ -> true
  in
  f1 = f2
  && f1 <> []
  && List.for_all (fun (i, v) -> i >= 0 && i < 512 && Float.is_finite v) f1
  && ascending f1
  && Int64.bits_of_float p1 = Int64.bits_of_float p2

let rank_is_permutation (app : App.t) input seed =
  let _, _, space = space_of app input in
  let sg = Surrogate.create space in
  let rng = Rng.create (seed + 1) in
  (* a few observations so the weights are non-trivial *)
  for _ = 1 to 10 do
    Surrogate.observe sg
      (Space.random_unconstrained space rng)
      (0.001 +. Rng.float rng 0.01)
  done;
  let n = 1 + Rng.int rng 12 in
  let cands = Array.init n (fun _ -> Space.random_unconstrained space rng) in
  let perm = Surrogate.rank sg cands in
  let perm' = Surrogate.rank sg cands in
  let sorted = Array.copy perm in
  Array.sort compare sorted;
  Array.length perm = n
  && sorted = Array.init n Fun.id
  && perm = perm' (* deterministic in the model state *)

let roundtrip_bit_exact (app : App.t) input seed =
  let _, _, space = space_of app input in
  let sg = Surrogate.create ~window:16 ~skim:3 space in
  let rng = Rng.create (seed + 2) in
  Surrogate.note_incumbent sg (Space.random_unconstrained space rng);
  for _ = 1 to 25 do
    Surrogate.observe sg
      (Space.random_unconstrained space rng)
      (0.001 +. Rng.float rng 0.01)
  done;
  let saved = Surrogate.save sg in
  let sg2 = Surrogate.create ~window:16 ~skim:3 space in
  (match Surrogate.restore sg2 saved with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let probe = Array.init 6 (fun _ -> Space.random_unconstrained space rng) in
  Surrogate.save sg2 = saved
  && Surrogate.trained sg2 = Surrogate.trained sg
  && Array.for_all
       (fun m ->
         Int64.bits_of_float (Surrogate.predict sg m)
         = Int64.bits_of_float (Surrogate.predict sg2 m))
       probe
  && Float.equal (Surrogate.spearman sg) (Surrogate.spearman sg2)
     || (Float.is_nan (Surrogate.spearman sg) && Float.is_nan (Surrogate.spearman sg2))

let test_restore_mismatch () =
  let _, _, space = space_of App.stencil "500x500" in
  let sg = Surrogate.create space in
  let saved = Surrogate.save sg in
  (* different dims, different window, different skim: all must refuse *)
  List.iter
    (fun other ->
      match Surrogate.restore other saved with
      | Ok () -> Alcotest.fail "mismatched restore must fail"
      | Error e ->
          Alcotest.(check bool) "mentions mismatch" true
            (Str_helpers.contains e "mismatch"))
    [
      Surrogate.create ~dims:256 space;
      Surrogate.create ~window:8 space;
      Surrogate.create ~skim:4 space;
    ]

let test_warmup_gates_skim () =
  let _, _, space = space_of App.stencil "500x500" in
  let sg = Surrogate.create ~window:4 ~skim:2 space in
  Alcotest.(check bool) "skim configured" true (Surrogate.skim sg = Some 2);
  Alcotest.(check bool) "inactive untrained" true (Surrogate.skim_active sg = None);
  let rng = Rng.create 9 in
  for _ = 1 to 8 do
    Surrogate.observe sg (Space.random_unconstrained space rng) 0.002
  done;
  Alcotest.(check bool) "active past 2*window" true
    (Surrogate.skim_active sg = Some 2)

(* ---- 2. ranked batch = ranked sequential ---------------------------- *)

type counters = {
  suggested : int;
  evaluated : int;
  cache_hits : int;
  invalid : int;
  oom : int;
  noop : int;
  dead : int;
  vt_bits : int64;
}

let counters ev =
  {
    suggested = Evaluator.suggested ev;
    evaluated = Evaluator.evaluated ev;
    cache_hits = Evaluator.cache_hits ev;
    invalid = Evaluator.invalid_count ev;
    oom = Evaluator.oom_count ev;
    noop = Evaluator.noop_skips ev;
    dead = Evaluator.dead_coord_skips ev;
    vt_bits = Int64.bits_of_float (Evaluator.virtual_time ev);
  }

let ranked_modes_identical (app : App.t) input ~skim ~max_trials =
  let machine = machine_for app ~nodes:1 in
  let g = app.App.graph ~nodes:1 ~input in
  let start = Mapping.default_start g machine in
  let run ~batch =
    let ev = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:1 machine g in
    let sg = Surrogate.create ~window:4 ?skim (Evaluator.space ev) in
    let o =
      Engine.run
        ~budget:(Budget.make ~max_trials ())
        ~surrogate:sg ~start ev
        (Ccd.make ~batch ~surrogate:sg ~rotations:3 ev)
    in
    (o, ev, sg)
  in
  let o_b, ev_b, sg_b = run ~batch:true in
  let o_s, ev_s, sg_s = run ~batch:false in
  Mapping.equal o_b.Engine.best o_s.Engine.best
  && Int64.bits_of_float o_b.Engine.perf = Int64.bits_of_float o_s.Engine.perf
  && o_b.Engine.trials = o_s.Engine.trials
  && counters ev_b = counters ev_s
  && Surrogate.save sg_b = Surrogate.save sg_s
  && Evaluator.save_state ev_b = Evaluator.save_state ev_s

let ranked_identity_props =
  List.map
    (fun ((app : App.t), input) ->
      QCheck.Test.make ~count:4
        ~name:
          (Printf.sprintf "ranked batch = ranked sequential (%s)" app.App.app_name)
        QCheck.(int_range 10 60)
        (fun max_trials ->
          (* odd budgets exercise mid-batch truncation; skim on half *)
          let skim = if max_trials mod 2 = 0 then Some 3 else None in
          ranked_modes_identical app input ~skim ~max_trials))
    cases

(* ---- 3. never-worse golden gate ------------------------------------- *)

let never_worse (app : App.t) input =
  let machine = machine_for app ~nodes:1 in
  let g = app.App.graph ~nodes:1 ~input in
  let start = Mapping.default_start g machine in
  let max_trials = 120 in
  let run surrogate =
    let ev = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:1 machine g in
    let sg =
      Option.map (fun skim -> Surrogate.create ~window:8 ?skim (Evaluator.space ev))
        surrogate
    in
    let o =
      Engine.run
        ~budget:(Budget.make ~max_trials ())
        ?surrogate:sg ~start ev
        (Ccd.make ~batch:true ?surrogate:sg ~rotations:5 ev)
    in
    o.Engine.perf
  in
  let exact = run None in
  let rerank = run (Some None) in
  let skim = run (Some (Some 4)) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: rerank never worse (%.6g vs exact %.6g)" app.App.app_name
       rerank exact)
    true (rerank <= exact);
  Alcotest.(check bool)
    (Printf.sprintf "%s: skim never worse (%.6g vs exact %.6g)" app.App.app_name skim
       exact)
    true (skim <= exact)

let test_never_worse () = List.iter (fun (app, input) -> never_worse app input) cases

(* ---- 4. driver resume with a surrogate ------------------------------ *)

let test_driver_surrogate_resume () =
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let path = Filename.temp_file "automap_sg" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let run ?checkpoint ?resume_from ~max_trials () =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials
          ~batch:true ~surrogate:true ?checkpoint ~checkpoint_every:20
          ?resume_from
          (Driver.Ccd { rotations = 5 })
          m g
      in
      let full = run ~max_trials:40 () in
      let truncated = run ~checkpoint:path ~max_trials:20 () in
      Alcotest.(check bool) "checkpoint written" true
        (truncated.Driver.checkpoints_written >= 1);
      let resumed = run ~resume_from:path ~max_trials:40 () in
      Alcotest.(check bool) "same best mapping" true
        (Mapping.equal full.Driver.best resumed.Driver.best);
      Alcotest.(check (float 0.0)) "same search perf" full.Driver.search_perf
        resumed.Driver.search_perf;
      Alcotest.(check int) "same evaluation count" full.Driver.evaluated
        resumed.Driver.evaluated;
      Alcotest.(check int) "same surrogate observations" full.Driver.surrogate_trained
        resumed.Driver.surrogate_trained;
      Alcotest.(check bool) "surrogate actually ran" true
        (full.Driver.surrogate_trained > 0))

let test_driver_surrogate_free_checkpoint () =
  (* a checkpoint written without a surrogate resumes surrogate-free
     even when the resuming run would default one on: the snapshot is
     the decision record *)
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let path = Filename.temp_file "automap_sgfree" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let full =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:40
          ~batch:true ~surrogate:false
          (Driver.Ccd { rotations = 5 })
          m g
      in
      ignore
        (Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:20
           ~batch:true ~surrogate:false ~checkpoint:path ~checkpoint_every:20
           (Driver.Ccd { rotations = 5 })
           m g);
      let resumed =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:40
          ~batch:true ~surrogate:true ~resume_from:path
          (Driver.Ccd { rotations = 5 })
          m g
      in
      Alcotest.(check int) "resumes surrogate-free" 0 resumed.Driver.surrogate_trained;
      Alcotest.(check bool) "same best mapping" true
        (Mapping.equal full.Driver.best resumed.Driver.best);
      Alcotest.(check (float 0.0)) "same search perf" full.Driver.search_perf
        resumed.Driver.search_perf)

let test_driver_skim_mismatch () =
  (* resuming a surrogate checkpoint under a different skim config must
     fail loudly, not silently change the decision sequence *)
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let path = Filename.temp_file "automap_skim" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      ignore
        (Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:20
           ~batch:true ~surrogate:true ~checkpoint:path ~checkpoint_every:20
           (Driver.Ccd { rotations = 5 })
           m g);
      match
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:40
          ~surrogate_skim:7 ~resume_from:path
          (Driver.Ccd { rotations = 5 })
          m g
      with
      | _ -> Alcotest.fail "skim-mismatched resume must raise"
      | exception Failure msg ->
          Alcotest.(check bool) "mentions mismatch" true
            (Str_helpers.contains msg "mismatch"))

let props =
  List.concat
    [
      List.map
        (fun ((app : App.t), input) ->
          QCheck.Test.make ~count:10
            ~name:(Printf.sprintf "features total and stable (%s)" app.App.app_name)
            QCheck.small_nat
            (fun seed -> features_total_and_stable app input seed))
        cases;
      List.map
        (fun ((app : App.t), input) ->
          QCheck.Test.make ~count:10
            ~name:(Printf.sprintf "rank is a permutation (%s)" app.App.app_name)
            QCheck.small_nat
            (fun seed -> rank_is_permutation app input seed))
        cases;
      List.map
        (fun ((app : App.t), input) ->
          QCheck.Test.make ~count:6
            ~name:(Printf.sprintf "checkpoint round-trips bit-exactly (%s)" app.App.app_name)
            QCheck.small_nat
            (fun seed -> roundtrip_bit_exact app input seed))
        cases;
      ranked_identity_props;
    ]

let suite =
  List.map QCheck_alcotest.to_alcotest props
  @ [
      Alcotest.test_case "restore refuses config mismatch" `Quick test_restore_mismatch;
      Alcotest.test_case "warmup gates skim" `Quick test_warmup_gates_skim;
      Alcotest.test_case "never worse than exact (all apps)" `Quick test_never_worse;
      Alcotest.test_case "driver resume with surrogate" `Quick
        test_driver_surrogate_resume;
      Alcotest.test_case "surrogate-free checkpoint resumes free" `Quick
        test_driver_surrogate_free_checkpoint;
      Alcotest.test_case "skim-mismatched resume fails" `Quick test_driver_skim_mismatch;
    ]
