let () =
  Alcotest.run "automap"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("heap", Test_heap.suite);
      ("table", Test_table.suite);
      ("machine", Test_machine.suite);
      ("graph", Test_graph.suite);
      ("overlap", Test_overlap.suite);
      ("profile", Test_profile.suite);
      ("mapping", Test_mapping.suite);
      ("space", Test_space.suite);
      ("codec", Test_codec.suite);
      ("cost", Test_cost.suite);
      ("placement", Test_placement.suite);
      ("exec", Test_exec.suite);
      ("compile", Test_compile.suite);
      ("evaluator", Test_evaluator.suite);
      ("colocation", Test_colocation.suite);
      ("search", Test_search.suite);
      ("workload", Test_workload.suite);
      ("apps", Test_apps.suite);
      ("trace", Test_trace.suite);
      ("energy", Test_energy.suite);
      ("codecs-ext", Test_codecs_ext.suite);
      ("heft", Test_heft.suite);
      ("online", Test_online.suite);
      ("extended", Test_extended.suite);
      ("fuzz", Test_fuzz.suite);
      ("svg-plot", Test_svg_plot.suite);
      ("persistence", Test_persistence.suite);
      ("des-invariants", Test_des_invariants.suite);
      ("shapes", Test_shapes.suite);
      ("search-more", Test_search_more.suite);
      ("core-api", Test_core_api.suite);
      ("integration", Test_integration.suite);
    ]
