(* Static feasibility analyzer (§4.2): preset lint severities, the
   domain soundness contract against the runtime (Mapping.validate +
   strict Placement.resolve), static-floor soundness, and the
   acceptance criteria for domain-pruned search on the real apps. *)

let small_apps =
  [
    (App.circuit, "n50w200");
    (App.stencil, "500x500");
    (App.pennant, "320x90");
    (App.htr, "8x8y9z");
    (App.maestro, "lf4r16");
  ]

(* A shepard-shaped cluster whose Frame-Buffer holds only 8 KB: every
   sizable unaliased GPU-task argument certifiably cannot live in FB,
   so the analyzer has real capacity certificates to prove on the
   bundled apps while System/Zero-Copy keep the workload feasible. *)
let tight_shepard ~nodes =
  let s = Presets.shepard ~nodes in
  Machine.make ~name:"TightShepard" ~nodes
    ~node:{ s.Machine.node with Machine.fb_capacity = 8192.0 }
    ~exec_bw:s.Machine.exec_bw ~compute:s.Machine.compute ~copy:s.Machine.copy ()

let test_headless_error () =
  let machine = Presets.headless ~nodes:1 in
  let g, _, _, _, _ = Fixtures.pipeline () in
  let a = Analysis.analyze machine g in
  Alcotest.(check bool) "infeasible" false (Analysis.feasible a);
  Alcotest.(check bool)
    "unreachable-memory error" true
    (List.exists
       (fun (d : Analysis.diagnostic) -> d.Analysis.code = "unreachable-memory")
       (Analysis.errors a))

let test_presets_clean () =
  (* every working preset must analyze error-free on every bundled app
     it can actually host (warnings and infos are allowed).  Two pairs
     are genuinely infeasible and must be flagged instead: Maestro
     sizes its high-fidelity arrays for 64 GB frame buffers, far past
     the Testbed's 1 GB FB / 2 GB ZC, and its GPU-only tasks have no
     variant CpuOnly can run. *)
  let expect_infeasible machine_name app_name =
    app_name = "Maestro" && (machine_name = "Testbed" || machine_name = "CpuOnly")
  in
  List.iter
    (fun mk ->
      let machine = mk ~nodes:2 in
      List.iter
        (fun ((app : App.t), input) ->
          let g = app.App.graph ~nodes:2 ~input in
          if expect_infeasible machine.Machine.name app.App.app_name then
            Alcotest.(check bool)
              (app.App.app_name ^ " on " ^ machine.Machine.name ^ " infeasible")
              false
              (Analysis.feasible (Analysis.analyze machine g))
          else
            match Analysis.errors (Analysis.analyze machine g) with
            | [] -> ()
            | d :: _ ->
                Alcotest.fail
                  (Printf.sprintf "%s on %s: [%s] %s: %s" app.App.app_name
                     machine.Machine.name d.Analysis.code d.Analysis.subject
                     d.Analysis.message))
        small_apps)
    [ Presets.shepard; Presets.lassen; Presets.testbed; Presets.cpu_only ]

let test_api_gate () =
  let machine = Presets.headless ~nodes:1 in
  let g, _, _, _, _ = Fixtures.pipeline () in
  match Automap_api.check_feasible machine g with
  | exception Automap_api.Infeasible a ->
      Alcotest.(check bool)
        "message names the unreachable memory" true
        (Str_helpers.contains (Automap_api.infeasible_message a) "unreachable-memory")
  | _ -> Alcotest.fail "check_feasible accepted the headless machine"

let test_tight_machine_prunes () =
  (* non-vacuity: on the capacity-constrained machine the domains must
     actually exclude Frame-Buffer for some collection, and Space must
     expose the restriction *)
  let machine = tight_shepard ~nodes:2 in
  let g = App.circuit.App.graph ~nodes:2 ~input:"n50w200" in
  let dom = Analysis.compute_domains machine g in
  Alcotest.(check bool)
    "some FB-infeasible collection" true
    (List.exists
       (fun (c : Graph.collection) ->
         not (Analysis.mem_feasible dom ~cid:c.Graph.cid Kinds.Frame_buffer))
       (Graph.collections g));
  let space = Space.make g machine in
  Alcotest.(check bool) "space pruned" true (Space.pruned space);
  Alcotest.(check bool)
    "some collection loses FB in mem_choices_for" true
    (List.exists
       (fun (c : Graph.collection) ->
         List.length (Space.mem_choices_for space ~cid:c.Graph.cid Kinds.Gpu)
         < List.length (Space.mem_choices space Kinds.Gpu))
       (Graph.collections g))

(* Soundness contract: the analyzer never excludes a coordinate value
   the runtime accepts.  Random workloads, unconstrained random
   mappings; whenever validate + strict resolve both pass, every
   mapped coordinate must sit inside its computed domain.  The tight
   machine makes the property non-vacuous (many values really are
   excluded); the testbed covers the typical ample-capacity case. *)
let prop_domains_sound =
  QCheck.Test.make ~count:80
    ~name:"domains never exclude a coordinate the runtime accepts"
    Gen.arbitrary_spec
    (fun spec ->
      let g = Gen.graph_of_spec spec in
      List.for_all
        (fun machine ->
          let dom = Analysis.compute_domains machine g in
          let space = Space.make ~domains:false g machine in
          let rng = Rng.create (spec.Gen.seed + 17) in
          let sound = ref true in
          for _ = 1 to 15 do
            let m = Space.random_unconstrained space rng in
            match Mapping.validate g machine m with
            | Error _ -> ()
            | Ok () -> (
                match Placement.resolve machine g m with
                | Error _ -> ()
                | Ok _ ->
                    for tid = 0 to Graph.n_tasks g - 1 do
                      if
                        not
                          (List.mem (Mapping.proc_of m tid)
                             (Analysis.proc_domain dom tid))
                      then sound := false
                    done;
                    List.iter
                      (fun (c : Graph.collection) ->
                        let k = Mapping.proc_of m c.Graph.owner in
                        if
                          not
                            (List.mem
                               (Mapping.mem_of m c.Graph.cid)
                               (Analysis.mem_domain dom ~cid:c.Graph.cid k))
                        then sound := false)
                      (Graph.collections g))
          done;
          !sound)
        [ Presets.testbed ~nodes:2; tight_shepard ~nodes:2 ])

(* The critical-path-tightened static floor must stay below every
   simulated makespan of the same mapping, at any noise level/seed. *)
let prop_static_floor_sound =
  QCheck.Test.make ~count:40
    ~name:"static lower bound never exceeds a simulated makespan"
    Gen.arbitrary_spec
    (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Presets.testbed ~nodes:2 in
      let sc = Exec.scratch (Exec.compile machine g) in
      let m = Mapping.default_start g machine in
      match Exec.static_lower_bound sc m with
      | Error _ -> true
      | Ok floor ->
          floor >= 0.0
          && List.for_all
               (fun (sigma, seed) ->
                 match Exec.simulate ~noise_sigma:sigma ~seed sc m with
                 | Ok r -> floor <= r.Exec.makespan *. (1.0 +. 1e-9) +. 1e-12
                 | Error _ -> true)
               [ (0.0, 0); (0.03, 1); (0.3, 7) ])

let test_floor_covers_critical_path () =
  (* pipeline: produce -> consume is a 2-task chain, so the floor must
     be at least 2 dispatches deep — strictly more than the busiest
     single node's serialization would give for one instance each *)
  let machine = Presets.testbed ~nodes:4 in
  let g, _, _, _, _ = Fixtures.pipeline ~group_size:4 () in
  let sc = Exec.scratch (Exec.compile machine g) in
  match Exec.static_lower_bound sc (Mapping.default_start g machine) with
  | Error e -> Alcotest.fail (Placement.error_to_string e)
  | Ok floor ->
      Alcotest.(check bool)
        "floor >= depth * dispatch" true
        (floor >= 2.0 *. machine.Machine.compute.Machine.runtime_dispatch -. 1e-15)

(* ISSUE acceptance: on every bundled app, the domain-pruned CCD search
   must reach a best makespan no worse than the unpruned baseline while
   paying for strictly fewer Placement resolutions — the skipped dead
   coordinates were exactly the candidates whose strict resolve ends in
   OOM — and must actually report skipped dead coordinates. *)
let test_pruned_search_no_worse () =
  (* per-app machine: one GPU memory kind holds only half the app's
     largest per-shard argument — so that kind is certifiably dead for
     at least that collection — while the remaining kinds stay ample,
     keeping the workload feasible and the live coordinate space
     identical between the pruned and unpruned runs.  Frame-Buffer is
     the tightened kind except for Maestro, whose GPU-only tasks place
     their arguments in FB at the start mapping (FB must stay at
     Maestro's design size of 64 GB/node); there Zero-Copy is
     tightened instead, forcing the hf arrays into FB. *)
  let tight_for ?(knob = `Fb) g ~nodes =
    let maxb =
      List.fold_left
        (fun acc (c : Graph.collection) -> Float.max acc c.Graph.bytes)
        0.0 (Graph.collections g)
    in
    let s = Presets.shepard ~nodes in
    let node =
      match knob with
      | `Fb ->
          {
            s.Machine.node with
            Machine.fb_capacity = 0.5 *. maxb;
            Machine.zc_capacity = 1e15;
            Machine.sysmem_per_socket = 1e15;
          }
      | `Zc ->
          {
            s.Machine.node with
            Machine.zc_capacity = 0.5 *. maxb;
            Machine.sysmem_per_socket = 1e15;
          }
    in
    Machine.make ~name:"Tight" ~nodes ~node ~exec_bw:s.Machine.exec_bw
      ~compute:s.Machine.compute ~copy:s.Machine.copy ()
  in
  List.iter
    (fun ((app : App.t), input) ->
      let g = app.App.graph ~nodes:2 ~input in
      let knob = if app.App.app_name = "Maestro" then `Zc else `Fb in
      let machine = tight_for ~knob g ~nodes:2 in
      let run domain_prune =
        let ev =
          Evaluator.create ~runs:1 ~noise_sigma:0.0 ~seed:0 ~domain_prune machine g
        in
        let _, perf = Ccd.search ~rotations:2 ev in
        (perf, Evaluator.stats ev)
      in
      let p_on, st_on = run true in
      let p_off, st_off = run false in
      Alcotest.(check bool)
        (app.App.app_name ^ " pruned no worse")
        true
        (p_on <= p_off +. 1e-12);
      let resolutions (st : Evaluator.stats) =
        st.Evaluator.s_delta_binds + st.Evaluator.s_full_binds + st.Evaluator.s_oom
      in
      Alcotest.(check bool)
        (app.App.app_name ^ " strictly fewer resolutions")
        true
        (resolutions st_on < resolutions st_off);
      Alcotest.(check bool)
        (app.App.app_name ^ " dead coordinates skipped")
        true
        (st_on.Evaluator.s_dead_coord_skips > 0))
    small_apps

(* Dominance soundness: substituting a dominator for a dominated value
   in any mapping keeps the mapping feasible and never slows its
   noise-free simulation.  Swaps keep every other coordinate fixed, so
   any regression is attributable to the claimed dominance. *)

let set_proc g m tid k =
  Mapping.make g
    ~strategy:(fun (t : Graph.task) -> Mapping.strategy_of m t.Graph.tid)
    ~distribute:(fun (t : Graph.task) -> Mapping.distribute_of m t.Graph.tid)
    ~proc:(fun (t : Graph.task) ->
      if t.Graph.tid = tid then k else Mapping.proc_of m t.Graph.tid)
    ~mem:(fun (c : Graph.collection) -> Mapping.mem_of m c.Graph.cid)

let set_mem g m cid k =
  Mapping.make g
    ~strategy:(fun (t : Graph.task) -> Mapping.strategy_of m t.Graph.tid)
    ~distribute:(fun (t : Graph.task) -> Mapping.distribute_of m t.Graph.tid)
    ~proc:(fun (t : Graph.task) -> Mapping.proc_of m t.Graph.tid)
    ~mem:(fun (c : Graph.collection) ->
      if c.Graph.cid = cid then k else Mapping.mem_of m c.Graph.cid)

(* Checks every dominated value reachable from [samples] random
   mappings; returns how many substitution pairs were exercised. *)
let check_dominance_sound ?(samples = 12) ~seed machine g =
  let a = Analysis.analyze machine g in
  let dom = Analysis.dominance a in
  if Analysis.n_dominated dom = 0 then 0
  else begin
    let space = Space.make ~domains:false g machine in
    let sc = Exec.scratch (Exec.compile machine g) in
    let rng = Rng.create seed in
    let exercised = ref 0 in
    let check name orig subst =
      match Exec.simulate ~noise_sigma:0.0 ~seed:0 sc orig with
      | Error _ -> ()
      | Ok r_b -> (
          incr exercised;
          match Exec.simulate ~noise_sigma:0.0 ~seed:0 sc subst with
          | Error e ->
              Alcotest.fail
                (Printf.sprintf "%s: dominator substitution became infeasible: %s"
                   name
                   (Placement.error_to_string e))
          | Ok r_a ->
              if
                r_a.Exec.makespan
                > r_b.Exec.makespan *. (1.0 +. 1e-9) +. 1e-15
              then
                Alcotest.fail
                  (Printf.sprintf "%s: dominator slower: %.17g vs %.17g" name
                     r_a.Exec.makespan r_b.Exec.makespan))
    in
    for _ = 1 to samples do
      let m = Space.random_unconstrained space rng in
      for tid = 0 to Graph.n_tasks g - 1 do
        List.iter
          (fun (dominated, dominator) ->
            check
              (Printf.sprintf "%s task %d: %s > %s" g.Graph.gname tid
                 (Kinds.proc_kind_to_string dominator)
                 (Kinds.proc_kind_to_string dominated))
              (set_proc g m tid dominated)
              (set_proc g m tid dominator))
          (Analysis.dominated_procs dom tid)
      done;
      List.iter
        (fun (c : Graph.collection) ->
          let owner_kind = Mapping.proc_of m c.Graph.owner in
          List.iter
            (fun (dominated, dominator) ->
              check
                (Printf.sprintf "%s c%d under %s: %s > %s" g.Graph.gname
                   c.Graph.cid
                   (Kinds.proc_kind_to_string owner_kind)
                   (Kinds.mem_kind_to_string dominator)
                   (Kinds.mem_kind_to_string dominated))
                (set_mem g m c.Graph.cid dominated)
                (set_mem g m c.Graph.cid dominator))
            (Analysis.dominated_mems dom ~cid:c.Graph.cid owner_kind))
        (Graph.collections g)
    done;
    !exercised
  end

let test_dominance_sound_apps () =
  let exercised = ref 0 in
  List.iter
    (fun ((app : App.t), input) ->
      let g = app.App.graph ~nodes:2 ~input in
      List.iter
        (fun machine ->
          exercised := !exercised + check_dominance_sound ~seed:29 machine g)
        [ Presets.shepard ~nodes:2; tight_shepard ~nodes:2 ])
    small_apps;
  (* the bundled apps must make this test non-vacuous *)
  Alcotest.(check bool) "dominated substitutions exercised" true (!exercised > 0)

let prop_dominance_sound =
  QCheck.Test.make ~count:30
    ~name:"dominator substitution is feasible and never slower"
    Gen.arbitrary_spec
    (fun spec ->
      let g = Gen.graph_of_spec spec in
      List.iter
        (fun machine ->
          ignore
            (check_dominance_sound ~samples:6 ~seed:(spec.Gen.seed + 31) machine g))
        [ Presets.shepard ~nodes:2; tight_shepard ~nodes:2 ];
      true)

let suite =
  [
    Alcotest.test_case "headless unreachable memory" `Quick test_headless_error;
    Alcotest.test_case "presets analyze clean" `Quick test_presets_clean;
    Alcotest.test_case "api refuses infeasible" `Quick test_api_gate;
    Alcotest.test_case "tight machine prunes" `Quick test_tight_machine_prunes;
    QCheck_alcotest.to_alcotest prop_domains_sound;
    QCheck_alcotest.to_alcotest prop_static_floor_sound;
    Alcotest.test_case "dominance sound on apps" `Quick test_dominance_sound_apps;
    QCheck_alcotest.to_alcotest prop_dominance_sound;
    Alcotest.test_case "floor covers critical path" `Quick test_floor_covers_critical_path;
    Alcotest.test_case "pruned search acceptance" `Quick test_pruned_search_no_worse;
  ]
