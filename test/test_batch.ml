(* Order-independence of batch evaluation (qcheck).

   For a random candidate set and a random permutation of it,
   [Evaluator.evaluate_batch] (unbounded — the path free to reorder
   evaluation by diff locality) must yield, per index, exactly the
   value sequential [Evaluator.evaluate] calls produce in that same
   order, leave the evaluator in an identical state (clocks, RNG
   cursors, profile db — everything {!Evaluator.save_state} captures),
   and the permuted values must be the base-order values modulo the
   permutation.  Exercised across all five benchmark apps. *)

let cases =
  [
    (App.circuit, "n50w200");
    (App.stencil, "500x500");
    (App.pennant, "320x90");
    (App.htr, "8x8y9z");
    (App.maestro, "lf4r16");
  ]

let machine_for (app : App.t) ~nodes =
  (* Maestro's HF sample is sized for a Lassen node's frame buffer *)
  if app.App.app_name = "Maestro" then Presets.lassen ~nodes else Presets.shepard ~nodes

let shuffle rng n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let fresh_evaluator machine g = Evaluator.create ~prune:true ~incremental:true ~seed:3 machine g

let batch_matches_sequential (app : App.t) input seed =
  let nodes = 2 in
  let machine = machine_for app ~nodes in
  let g = app.App.graph ~nodes ~input in
  let space = Space.make g machine in
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng 7 in
  let cands = Array.init n (fun _ -> Space.random_unconstrained space rng) in
  let perm = shuffle rng n in
  let permuted = Array.map (fun i -> cands.(i)) perm in
  let seq ev ms = Array.map (fun m -> Evaluator.evaluate ev m) ms in
  let ev_base = fresh_evaluator machine g in
  let vals_base = seq ev_base cands in
  let ev_seq = fresh_evaluator machine g in
  let vals_seq = seq ev_seq permuted in
  let state_seq = Evaluator.save_state ev_seq in
  let ev_bat = fresh_evaluator machine g in
  let outcomes = Evaluator.evaluate_batch ev_bat permuted in
  let state_bat = Evaluator.save_state ev_bat in
  Array.length outcomes = n
  && Array.for_all2
       (fun o v -> match o with Evaluator.Evaluated v' -> v' = v | Evaluator.Skipped -> false)
       outcomes vals_seq
  && state_bat = state_seq
  && Array.for_all (fun j -> vals_seq.(j) = vals_base.(perm.(j))) (Array.init n Fun.id)

(* Same property, but the permutation is the one the surrogate would
   actually apply: train a model on a few observations, rank the
   candidate set, and check batch evaluation of the model's order
   against sequential evaluation of that same order.  Reranking only
   ever permutes — so this is exactly the order-independence the ranked
   batch mode (Descent) leans on. *)
let batch_matches_surrogate_order (app : App.t) input seed =
  let nodes = 2 in
  let machine = machine_for app ~nodes in
  let g = app.App.graph ~nodes ~input in
  let space = Space.make g machine in
  let rng = Rng.create (seed + 100) in
  let n = 2 + Rng.int rng 6 in
  let cands = Array.init n (fun _ -> Space.random_unconstrained space rng) in
  let sg = Surrogate.create space in
  Surrogate.note_incumbent sg (Mapping.default_start g machine);
  for _ = 1 to 12 do
    Surrogate.observe sg
      (Space.random_unconstrained space rng)
      (0.001 +. Rng.float rng 0.01)
  done;
  let perm = Surrogate.rank sg cands in
  let ranked = Array.map (fun i -> cands.(i)) perm in
  let ev_seq = fresh_evaluator machine g in
  let vals_seq = Array.map (fun m -> Evaluator.evaluate ev_seq m) ranked in
  let state_seq = Evaluator.save_state ev_seq in
  let ev_bat = fresh_evaluator machine g in
  let outcomes = Evaluator.evaluate_batch ev_bat ranked in
  Array.for_all2
    (fun o v -> match o with Evaluator.Evaluated v' -> v' = v | Evaluator.Skipped -> false)
    outcomes vals_seq
  && Evaluator.save_state ev_bat = state_seq

let props =
  List.map
    (fun ((app : App.t), input) ->
      QCheck.Test.make ~count:8
        ~name:
          (Printf.sprintf "batch = sequential under permutation (%s)" app.App.app_name)
        QCheck.small_nat
        (fun seed -> batch_matches_sequential app input seed))
    cases
  @ List.map
      (fun ((app : App.t), input) ->
        QCheck.Test.make ~count:4
          ~name:
            (Printf.sprintf "batch = sequential under surrogate rank (%s)"
               app.App.app_name)
          QCheck.small_nat
          (fun seed -> batch_matches_surrogate_order app input seed))
      cases

let suite = List.map QCheck_alcotest.to_alcotest props
