(* ---------------------------------------------------------------- *)
(* Reference BFS over the link graph: validates the arithmetic      *)
(* routers against an independent shortest-path oracle.             *)
(* ---------------------------------------------------------------- *)

let bfs_dist topo src =
  let nv = Topology.n_vertices topo in
  let dist = Array.make nv (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun l ->
        if l.Topology.lsrc = v && dist.(l.Topology.ldst) < 0 then begin
          dist.(l.Topology.ldst) <- dist.(v) + 1;
          Queue.add l.Topology.ldst q
        end)
      (Topology.links topo)
  done;
  dist

let check_routes_valid topo =
  let n = Topology.n_nodes topo in
  for src = 0 to n - 1 do
    let dist = bfs_dist topo src in
    for dst = 0 to n - 1 do
      let d = Topology.distance topo ~src ~dst in
      Alcotest.(check int)
        (Printf.sprintf "%s: dist %d->%d matches BFS" (Topology.name topo) src dst)
        dist.(dst) d;
      if d >= 0 then begin
        (* the route must be a connected src->dst path of exactly d links *)
        let pos = ref src and hops = ref 0 in
        Topology.route_iter topo ~src ~dst ~f:(fun l ->
            Alcotest.(check int) "hop continues from current vertex" !pos
              l.Topology.lsrc;
            pos := l.Topology.ldst;
            incr hops);
        Alcotest.(check int) "route ends at dst" dst !pos;
        Alcotest.(check int) "route length = distance" d !hops
      end
    done
  done

let test_routes_match_bfs () =
  List.iter check_routes_valid
    [
      Topology.grid ~w:4 ~h:3 ~link_bw:1e9 ~link_latency:1e-6 ();
      Topology.grid ~w:1 ~h:5 ~link_bw:1e9 ~link_latency:1e-6 ();
      Topology.grid ~w:5 ~h:1 ~link_bw:1e9 ~link_latency:1e-6 ();
      Topology.grid ~w:4 ~h:4 ~wrap:true ~link_bw:1e9 ~link_latency:1e-6 ();
      Topology.grid ~w:3 ~h:5 ~wrap:true ~link_bw:1e9 ~link_latency:1e-6 ();
      Topology.fattree ~levels:2 ~arity:3 ~link_bw:1e9 ~link_latency:1e-6;
      Topology.fattree ~levels:3 ~arity:2 ~link_bw:1e9 ~link_latency:1e-6;
      Topology.custom ~name:"ring4" ~n_nodes:4
        ~links:
          [ (0, 1, 1e9, 1e-6); (1, 2, 1e9, 1e-6); (2, 3, 1e9, 1e-6); (3, 0, 1e9, 1e-6) ]
        ();
    ]

let test_direct_single_hop () =
  (* Direct is a modeling shortcut, not a BFS-faithful graph: every
     cross-node copy is one hop on the SOURCE node's NIC link (the
     ether vertex absorbs it), mirroring the kind-level per-source
     Network slot the bit-identity argument relies on *)
  let topo = Topology.direct ~nodes:5 ~link_bw:1e9 ~link_latency:1e-6 in
  Alcotest.(check int) "one ether vertex" 6 (Topology.n_vertices topo);
  for src = 0 to 4 do
    for dst = 0 to 4 do
      if src <> dst then begin
        Alcotest.(check int) "single hop" 1 (Topology.distance topo ~src ~dst);
        let path = Topology.route topo ~src ~dst in
        Alcotest.(check (list int)) "source NIC link" [ src ]
          (List.map (fun l -> l.Topology.lid) path)
      end
    done
  done

let test_grid_dimension_order () =
  (* X-then-Y: from (0,0) to (2,1) on a 3x3 mesh the route is
     east,east,south — never interleaved *)
  let topo = Topology.grid ~w:3 ~h:3 ~link_bw:1e9 ~link_latency:1e-6 () in
  let path = Topology.route topo ~src:0 ~dst:5 in
  let verts = List.map (fun l -> l.Topology.ldst) path in
  Alcotest.(check (list int)) "dimension-order X then Y" [ 1; 2; 5 ] verts

let test_torus_shorter_ring () =
  let topo = Topology.grid ~w:4 ~h:4 ~wrap:true ~link_bw:1e9 ~link_latency:1e-6 () in
  (* x: 0 -> 3 is one hop westward around the wrap link *)
  Alcotest.(check int) "wrap distance" 1 (Topology.distance topo ~src:0 ~dst:3);
  (* equidistant x: 0 -> 2 ties break eastward *)
  let path = Topology.route topo ~src:0 ~dst:2 in
  Alcotest.(check (list int)) "eastward tie-break" [ 1; 2 ]
    (List.map (fun l -> l.Topology.ldst) path)

let test_fattree_shape () =
  let topo = Topology.fattree ~levels:2 ~arity:2 ~link_bw:1e9 ~link_latency:1e-6 in
  Alcotest.(check int) "leaves" 4 (Topology.n_nodes topo);
  (* 4 leaves + 2 level-1 switches + 1 root *)
  Alcotest.(check int) "vertices" 7 (Topology.n_vertices topo);
  (* up+down links: level1 4+4, level2 2+2 *)
  Alcotest.(check int) "links" 12 (Topology.n_links topo);
  Alcotest.(check int) "diameter" 4 (Topology.diameter topo);
  (* capacity fattens toward the root: level-2 links carry 2x *)
  let bws =
    Array.to_list (Topology.links topo) |> List.map (fun l -> l.Topology.lbw)
  in
  Alcotest.(check int) "fat level-2 links" 4
    (List.length (List.filter (fun b -> b = 2e9) bws));
  (* siblings share only the leaf links; cousins transit the root *)
  Alcotest.(check int) "sibling distance" 2 (Topology.distance topo ~src:0 ~dst:1);
  Alcotest.(check int) "cousin distance" 4 (Topology.distance topo ~src:0 ~dst:3)

let test_bisection () =
  let grid = Topology.grid ~w:4 ~h:4 ~link_bw:1e9 ~link_latency:1e-6 () in
  Alcotest.(check (float 1.0)) "grid 4x4 bisection" 8e9 (Topology.bisection_bw grid);
  let torus = Topology.grid ~w:4 ~h:4 ~wrap:true ~link_bw:1e9 ~link_latency:1e-6 () in
  Alcotest.(check (float 1.0)) "torus 4x4 bisection" 16e9 (Topology.bisection_bw torus);
  let ft = Topology.fattree ~levels:2 ~arity:2 ~link_bw:1e9 ~link_latency:1e-6 in
  Alcotest.(check (float 1.0)) "fattree 2:2 bisection" 4e9 (Topology.bisection_bw ft);
  let dir = Topology.direct ~nodes:4 ~link_bw:1e9 ~link_latency:1e-6 in
  Alcotest.(check (float 0.0)) "direct has no cut" 0.0 (Topology.bisection_bw dir);
  (* sides partition the nodes evenly on the 4x4 grid *)
  let zero = ref 0 in
  for n = 0 to Topology.n_nodes grid - 1 do
    if Topology.side grid n = 0 then incr zero
  done;
  Alcotest.(check int) "grid sides balanced" 8 !zero

let test_lint_queries () =
  let ok = Topology.grid ~w:2 ~h:2 ~link_bw:1e9 ~link_latency:1e-6 () in
  Alcotest.(check int) "grid fully connected" 0 (Topology.unreachable_pairs ok);
  Alcotest.(check (list int)) "no dead links" [] (Topology.zero_bw_links ok);
  (* 0->1 exists, 1->0 does not; link 1 is dead *)
  let bad =
    Topology.custom ~name:"oneway" ~n_nodes:2
      ~links:[ (0, 1, 1e9, 1e-6); (1, 0, 0.0, 1e-6) ] ()
  in
  Alcotest.(check (list int)) "zero-bw link flagged" [ 1 ] (Topology.zero_bw_links bad);
  let disc =
    Topology.custom ~name:"split" ~n_nodes:3 ~links:[ (0, 1, 1e9, 1e-6) ] ()
  in
  (* reachable: 0->1 only; unreachable ordered pairs: 1->0, 0->2, 2->0, 1->2, 2->1 *)
  Alcotest.(check int) "unreachable pairs" 5 (Topology.unreachable_pairs disc);
  Alcotest.(check int) "unreachable distance" (-1)
    (Topology.distance disc ~src:2 ~dst:0)

let test_custom_deterministic_tie_break () =
  (* two parallel 0->1 links: routing must always take the smaller id *)
  let topo =
    Topology.custom ~name:"par" ~n_nodes:2
      ~links:[ (0, 1, 1e9, 1e-6); (0, 1, 2e9, 1e-6) ] ()
  in
  let path = Topology.route topo ~src:0 ~dst:1 in
  Alcotest.(check (list int)) "smallest lid wins" [ 0 ]
    (List.map (fun l -> l.Topology.lid) path)

let test_spec_round_trip () =
  List.iter
    (fun spec ->
      match Topology.of_spec spec ~link_bw:1e9 ~link_latency:1e-6 with
      | Error e -> Alcotest.failf "of_spec %s: %s" spec e
      | Ok topo -> (
          Alcotest.(check (option string)) "spec canonical" (Some spec)
            (Topology.to_spec topo);
          match Topology.of_spec spec ~link_bw:1e9 ~link_latency:1e-6 with
          | Error e -> Alcotest.failf "re-parse %s: %s" spec e
          | Ok topo' ->
              Alcotest.(check bool) "round-trip structural equality" true
                (Topology.equal_structure topo topo')))
    [
      "grid:4x3"; "torus:4x4"; "fattree:3:4"; "direct:8"; "grid:8x8:free";
      "fattree:2:2:free";
    ];
  (match Topology.of_spec "grid:4x4:free" ~link_bw:1e9 ~link_latency:1e-6 with
  | Ok topo -> Alcotest.(check bool) "free = uncontended" false (Topology.contended topo)
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Topology.of_spec bad ~link_bw:1e9 ~link_latency:1e-6 with
      | Ok _ -> Alcotest.failf "of_spec %S should fail" bad
      | Error _ -> ())
    [ "grid:4"; "grid:0x4"; "torus:1x4"; "fattree:3"; "ring:5"; "fattree:0:2"; "" ]

let test_machine_integration () =
  (* node-count agreement is validated by Machine.make; 4e9/2e-6 are
     the mesh-tile preset's link rates *)
  let topo = Topology.grid ~w:2 ~h:2 ~link_bw:4e9 ~link_latency:2e-6 () in
  (match Presets.of_spec "grid:2x2" ~nodes:1 with
  | Error e -> Alcotest.fail e
  | Ok m -> (
      Alcotest.(check int) "preset picks up node count" 4 m.Machine.nodes;
      Alcotest.(check string) "named by spec" "grid:2x2" m.Machine.name;
      match m.Machine.topology with
      | Some t ->
          Alcotest.(check bool) "same structure" true (Topology.equal_structure t topo)
      | None -> Alcotest.fail "preset lost its topology"));
  (match Presets.of_spec "grid:2x2" ~nodes:3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "node-count mismatch must be rejected");
  match Presets.of_spec "shepard" ~nodes:2 with
  | Ok m -> Alcotest.(check bool) "legacy presets have no topology" true
              (m.Machine.topology = None)
  | Error e -> Alcotest.fail e

let test_routed_copy_cost () =
  (* 2x1 grid: one hop; 3x1 grid src 0 dst 2: two hops — copy_cost must
     scale with the path, unlike the kind-level flat Network charge *)
  let machine spec =
    match Presets.of_spec spec ~nodes:1 with Ok m -> m | Error e -> Alcotest.fail e
  in
  let m2 = machine "grid:2x1" and m3 = machine "grid:3x1" in
  let mem (m : Machine.t) node =
    Machine.closest_memory m (Machine.proc m ~node ~kind:Kinds.Cpu ~local:0) Kinds.System
  in
  let bytes = 1e6 in
  let c1 = Machine.copy_cost m2 ~src:(mem m2 0) ~dst:(mem m2 1) ~bytes in
  let c2 = Machine.copy_cost m3 ~src:(mem m3 0) ~dst:(mem m3 2) ~bytes in
  let hop = 2e-6 +. (bytes /. 4e9) in
  Alcotest.(check (float 1e-12)) "one routed hop" hop c1;
  Alcotest.(check (float 1e-12)) "two routed hops" (2.0 *. hop) c2

(* ---------------------------------------------------------------- *)
(* Routed DES: the compiled simulator must reproduce the reference  *)
(* interpreter bit-for-bit on topology machines too, and the Direct *)
(* family must stay bit-identical to the topology-less preset it    *)
(* degenerates to.                                                  *)
(* ---------------------------------------------------------------- *)

let exact = Alcotest.float 0.0

let topo_machine spec =
  match Presets.of_spec spec ~nodes:1 with Ok m -> m | Error e -> Alcotest.fail e

let test_routed_compile_identity () =
  List.iter
    (fun spec ->
      let machine = topo_machine spec in
      let app = List.find (fun a -> a.App.app_name = "Stencil") App.all in
      let input = List.hd (app.App.inputs ~nodes:machine.Machine.nodes) in
      let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
      let sc = Exec.scratch (Exec.compile machine g) in
      List.iter
        (fun (mname, mapping) ->
          List.iter
            (fun seed ->
              let name = Printf.sprintf "%s/%s seed=%d" spec mname seed in
              match
                ( Exec.run_reference ~noise_sigma:0.03 ~seed ~fallback:true machine g
                    mapping,
                  Exec.simulate ~noise_sigma:0.03 ~seed ~fallback:true sc mapping )
              with
              | Ok a, Ok b ->
                  Alcotest.(check exact)
                    (name ^ ": makespan") a.Exec.makespan b.Exec.makespan;
                  Alcotest.(check exact)
                    (name ^ ": bytes") a.Exec.bytes_moved b.Exec.bytes_moved;
                  Alcotest.(check int) (name ^ ": copies") a.Exec.n_copies b.Exec.n_copies;
                  Alcotest.(check (array exact))
                    (name ^ ": channel_bytes") a.Exec.channel_bytes b.Exec.channel_bytes
              | Error ea, Error eb ->
                  Alcotest.(check string)
                    (name ^ ": same error")
                    (Placement.error_to_string ea)
                    (Placement.error_to_string eb)
              | Ok _, Error e | Error e, Ok _ ->
                  Alcotest.failf "%s: one side failed: %s" name
                    (Placement.error_to_string e))
            [ 0; 7 ])
        [
          ("default", Mapping.default_start g machine);
          ("custom", app.App.custom g machine);
          ("all_cpu", Mapping.all_cpu g machine);
        ])
    [ "grid:4x4"; "torus:3x3"; "fattree:2:2"; "grid:4x4:free"; "direct:4" ]

let test_direct_degenerate_identity () =
  (* direct:N folds the legacy Network cost into one link per source
     node — a slot bijection, so makespans must equal the topology-less
     shepard preset bit for bit. *)
  let m_topo = topo_machine "direct:4" in
  let m_legacy = Presets.shepard ~nodes:4 in
  List.iter
    (fun (app : App.t) ->
      let input = List.hd (app.App.inputs ~nodes:4) in
      let g = app.App.graph ~nodes:4 ~input in
      let sc_t = Exec.scratch (Exec.compile m_topo g) in
      let sc_l = Exec.scratch (Exec.compile m_legacy g) in
      List.iter
        (fun (mname, mapping) ->
          let name = Printf.sprintf "direct:4 %s/%s" app.App.app_name mname in
          match
            ( Exec.simulate ~noise_sigma:0.03 ~seed:11 ~fallback:true sc_t mapping,
              Exec.simulate ~noise_sigma:0.03 ~seed:11 ~fallback:true sc_l mapping )
          with
          | Ok a, Ok b ->
              Alcotest.(check exact) (name ^ ": makespan") b.Exec.makespan a.Exec.makespan
          | Error ea, Error eb ->
              Alcotest.(check string)
                (name ^ ": same error")
                (Placement.error_to_string eb)
                (Placement.error_to_string ea)
          | Ok _, Error e | Error e, Ok _ ->
              Alcotest.failf "%s: one side failed: %s" name
                (Placement.error_to_string e))
        [
          ("default", Mapping.default_start g m_legacy);
          ("all_cpu", Mapping.all_cpu g m_legacy);
        ])
    App.all

let test_contention_matters () =
  (* the same mapping on the same grid must get strictly slower once
     link clocks serialize, and never faster.  A halo-heavy,
     compute-light exchange makes row-crossing copies queue behind
     in-row halo copies on the shared mesh links. *)
  let m_hot = topo_machine "grid:4x4" in
  let m_free = topo_machine "grid:4x4:free" in
  let g =
    let cells = 64e6 in
    let arrays =
      [
        Workload.array_decl ~name:"u" ~elems:cells ~halo_frac:0.5 ();
        Workload.array_decl ~name:"v" ~elems:cells ();
      ]
    in
    let tasks =
      [
        Workload.task_decl ~name:"exchange" ~work_elems:cells ~flops_per_elem:0.5
          ~group_size:16 ~gpu_eff:1.0 ~cpu_eff:1.0
          ~accesses:[ Workload.read ~ghosted:true "u"; Workload.read_write "v" ]
          ();
        Workload.task_decl ~name:"update" ~work_elems:cells ~flops_per_elem:0.5
          ~group_size:16 ~gpu_eff:1.0 ~cpu_eff:1.0
          ~accesses:[ Workload.read "v"; Workload.read_write "u" ]
          ();
      ]
    in
    Workload.build ~name:"halo-hot" ~iterations:3 ~arrays ~tasks
  in
  let mapping = Mapping.default_start g m_hot in
  let run m =
    let sc = Exec.scratch (Exec.compile m g) in
    match Exec.simulate ~noise_sigma:0.0 ~seed:0 ~fallback:true sc mapping with
    | Ok r -> r.Exec.makespan
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  let hot = run m_hot and free = run m_free in
  if hot < free then
    Alcotest.failf "contended grid faster than free: %.9g < %.9g" hot free;
  if not (hot > free) then
    Alcotest.failf "link contention has no effect on Stencil: %.9g = %.9g" hot free

let test_contention_flips_search () =
  (* congestion is load-bearing: on the same workload, CCD picks a
     different best mapping on the contended grid than on the
     contention-free one.  stepA (24 shards over 16 nodes) exchanges a
     wide halo with stepB (8 shards); scattering stepA cyclically
     shortens the shard-to-shard paths, so the contention-free model
     prefers it — but the scattered copies pile onto shared mesh links,
     so the contended model keeps the blocked layout instead. *)
  let g =
    let cells = 32e6 in
    let arrays =
      [
        Workload.array_decl ~name:"u" ~elems:cells ~halo_frac:0.6 ();
        Workload.array_decl ~name:"v" ~elems:cells ();
      ]
    in
    let tasks =
      [
        Workload.task_decl ~name:"stepA" ~work_elems:cells ~flops_per_elem:0.5
          ~group_size:24 ~variants:[ Kinds.Cpu ]
          ~accesses:[ Workload.read ~ghosted:true "u"; Workload.read_write "v" ]
          ();
        Workload.task_decl ~name:"stepB" ~work_elems:cells ~flops_per_elem:0.5
          ~group_size:8 ~variants:[ Kinds.Cpu ]
          ~accesses:[ Workload.read "v"; Workload.read_write ~ghosted:true "u" ]
          ();
      ]
    in
    Workload.build ~name:"shifted-halo" ~iterations:3 ~arrays ~tasks
  in
  let m_hot = topo_machine "grid:4x4" in
  let m_free = topo_machine "grid:4x4:free" in
  let search m =
    Driver.run ~runs:1 ~final_runs:1 ~noise_sigma:0.0 ~seed:0 ~max_trials:300
      ~symmetry:false ~extended:true
      (Driver.Ccd { rotations = 5 })
      m g
  in
  let hot = search m_hot and free = search m_free in
  Alcotest.(check bool)
    "best-found mappings differ" false
    (Mapping.equal hot.Driver.best free.Driver.best);
  (* pin the decision that flips: stepA's distribution strategy *)
  let strat (r : Driver.result) =
    match Mapping.strategy_of r.Driver.best 0 with
    | Mapping.Blocked -> "blocked"
    | Mapping.Cyclic -> "cyclic"
  in
  Alcotest.(check string) "contended keeps stepA blocked" "blocked" (strat hot);
  Alcotest.(check string) "contention-free scatters stepA" "cyclic" (strat free);
  (* and each winner must actually beat the other machine's winner when
     re-simulated under its own model — the flip is not a search
     artifact *)
  let time m mapping =
    let sc = Exec.scratch (Exec.compile m g) in
    match Exec.simulate ~noise_sigma:0.0 ~seed:0 ~fallback:true sc mapping with
    | Ok r -> r.Exec.makespan
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  if not (time m_hot hot.Driver.best < time m_hot free.Driver.best) then
    Alcotest.failf "contended: free winner not slower (%.9g vs %.9g)"
      (time m_hot hot.Driver.best)
      (time m_hot free.Driver.best);
  if not (time m_free free.Driver.best < time m_free hot.Driver.best) then
    Alcotest.failf "free: contended winner not slower (%.9g vs %.9g)"
      (time m_free free.Driver.best)
      (time m_free hot.Driver.best)

let test_routed_lower_bound_holds () =
  (* static floor (incl. per-link busy + bisection) must never exceed
     the simulated makespan on topology machines *)
  List.iter
    (fun spec ->
      let machine = topo_machine spec in
      let app = List.find (fun a -> a.App.app_name = "Stencil") App.all in
      let input = List.hd (app.App.inputs ~nodes:machine.Machine.nodes) in
      let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
      let sc = Exec.scratch (Exec.compile machine g) in
      List.iter
        (fun (mname, mapping) ->
          let name = Printf.sprintf "%s/%s" spec mname in
          match
            ( Exec.static_lower_bound ~fallback:true sc mapping,
              Exec.simulate ~noise_sigma:0.0 ~seed:0 ~fallback:true sc mapping )
          with
          | Ok lb, Ok r ->
              if lb > r.Exec.makespan +. 1e-9 then
                Alcotest.failf "%s: floor %.9g above makespan %.9g" name lb
                  r.Exec.makespan
          | _ -> Alcotest.failf "%s: failed" name)
        [
          ("default", Mapping.default_start g machine);
          ("all_cpu", Mapping.all_cpu g machine);
        ])
    [ "grid:4x4"; "torus:3x3"; "fattree:2:2"; "grid:4x4:free"; "direct:4" ]

let suite =
  [
    Alcotest.test_case "routes match BFS oracle" `Quick test_routes_match_bfs;
    Alcotest.test_case "direct single-hop shortcut" `Quick test_direct_single_hop;
    Alcotest.test_case "grid dimension-order routing" `Quick test_grid_dimension_order;
    Alcotest.test_case "torus shorter ring + tie-break" `Quick test_torus_shorter_ring;
    Alcotest.test_case "fattree shape and fattening" `Quick test_fattree_shape;
    Alcotest.test_case "bisection cuts" `Quick test_bisection;
    Alcotest.test_case "lint queries" `Quick test_lint_queries;
    Alcotest.test_case "custom tie-break determinism" `Quick
      test_custom_deterministic_tie_break;
    Alcotest.test_case "spec round-trip" `Quick test_spec_round_trip;
    Alcotest.test_case "machine integration" `Quick test_machine_integration;
    Alcotest.test_case "routed copy cost" `Quick test_routed_copy_cost;
    Alcotest.test_case "routed DES: compiled = reference" `Quick
      test_routed_compile_identity;
    Alcotest.test_case "direct family degenerates to legacy" `Quick
      test_direct_degenerate_identity;
    Alcotest.test_case "link contention changes makespan" `Quick test_contention_matters;
    Alcotest.test_case "link contention changes the best-found mapping" `Quick
      test_contention_flips_search;
    Alcotest.test_case "routed static floor holds" `Quick test_routed_lower_bound_holds;
  ]
