(* The strategy-engine contract: (1) every algorithm driven through
   Search.Engine is decision-identical to its frozen pre-engine loop
   (Legacy_ref) — same best mapping, bit-equal performance, identical
   evaluator decision counters and bit-equal virtual time; (2) a search
   checkpointed at trial k, killed and resumed replays the exact same
   accept/reject sequence and lands on the same best as an
   uninterrupted run; (3) budget semantics and the event bus behave as
   documented. *)

let machine () = Fixtures.default_machine ()

let make_ev ?(runs = 2) m g = Evaluator.create ~runs ~noise_sigma:0.0 ~seed:1 m g

(* every decision-relevant evaluator counter; Exec-level perf counters
   are deliberately excluded (incumbent pinning may shift cache
   internals without changing any result) *)
type counters = {
  suggested : int;
  evaluated : int;
  cache_hits : int;
  invalid : int;
  oom : int;
  cut_evals : int;
  cut_runs : int;
  cut_sims : int;
  noop : int;
  dead : int;
  vt_bits : int64;
}

let counters ev =
  {
    suggested = Evaluator.suggested ev;
    evaluated = Evaluator.evaluated ev;
    cache_hits = Evaluator.cache_hits ev;
    invalid = Evaluator.invalid_count ev;
    oom = Evaluator.oom_count ev;
    cut_evals = Evaluator.cut_evals ev;
    cut_runs = Evaluator.cut_runs ev;
    cut_sims = Evaluator.cut_sims ev;
    noop = Evaluator.noop_skips ev;
    dead = Evaluator.dead_coord_skips ev;
    vt_bits = Int64.bits_of_float (Evaluator.virtual_time ev);
  }

let check_equiv name (m1, p1) ev1 (m2, p2) ev2 =
  Alcotest.(check bool) (name ^ ": same best mapping") true (Mapping.equal m1 m2);
  Alcotest.(check bool)
    (name ^ ": bit-equal best perf")
    true
    (Int64.bits_of_float p1 = Int64.bits_of_float p2);
  Alcotest.(check bool) (name ^ ": identical counters") true (counters ev1 = counters ev2)

let equiv_case name legacy modern () =
  let g, _, _ = Fixtures.shared_halo () in
  let m = machine () in
  let ev1 = make_ev m g and ev2 = make_ev m g in
  check_equiv name (legacy ev1) ev1 (modern ev2) ev2

let test_equiv_cd =
  equiv_case "cd" (fun ev -> Legacy_ref.cd_search ev) (fun ev -> Cd.search ev)

let test_equiv_ccd =
  equiv_case "ccd"
    (fun ev -> Legacy_ref.ccd_search ~rotations:5 ev)
    (fun ev -> Ccd.search ~rotations:5 ev)

let test_equiv_ccd_budget =
  (* truncation: the engine's per-step budget check must cut the search
     at exactly the same decision as the legacy interleaved should_stop *)
  equiv_case "ccd budget"
    (fun ev -> Legacy_ref.ccd_search ~rotations:3 ~budget:0.005 ev)
    (fun ev -> Ccd.search ~rotations:3 ~budget:0.005 ev)

let test_equiv_annealing =
  equiv_case "annealing"
    (fun ev -> Legacy_ref.annealing_search ~seed:11 ~max_evals:300 ev)
    (fun ev -> Annealing.search ~seed:11 ~max_evals:300 ev)

let test_equiv_random =
  equiv_case "random"
    (fun ev -> Legacy_ref.random_search ~seed:7 ~max_evals:300 ev)
    (fun ev -> Random_search.search ~seed:7 ~max_evals:300 ev)

let test_equiv_ensemble =
  let config = { Ensemble.default_config with max_suggestions = 200; seed = 5 } in
  equiv_case "ensemble"
    (fun ev -> Legacy_ref.ensemble_search ~config ev)
    (fun ev -> Ensemble.search ~config ev)

let test_equiv_portfolio =
  equiv_case "portfolio"
    (fun ev -> Legacy_ref.portfolio_search ~budget:0.05 ~seed:3 ev)
    (fun ev -> Portfolio.search ~budget:0.05 ~seed:3 ev)

let test_equiv_ccd_app () =
  (* same contract on a real application *)
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let ev1 = make_ev m g and ev2 = make_ev m g in
  check_equiv "ccd stencil"
    (Legacy_ref.ccd_search ~rotations:5 ev1)
    ev1
    (Ccd.search ~rotations:5 ev2)
    ev2

(* ---- budget semantics ---------------------------------------------- *)

let test_budget_semantics () =
  let b = Budget.make ~max_trials:10 ~max_virtual:1.0 ~max_wall:5.0 () in
  let ex = Budget.exhausted b in
  Alcotest.(check bool) "under every cap" false (ex ~trials:9 ~vt:1.0 ~wall:5.0);
  Alcotest.(check bool) "trials reach cap" true (ex ~trials:10 ~vt:0.0 ~wall:0.0);
  Alcotest.(check bool) "vt at cap continues" false (ex ~trials:0 ~vt:1.0 ~wall:0.0);
  Alcotest.(check bool) "vt past cap stops" true (ex ~trials:0 ~vt:1.0000001 ~wall:0.0);
  Alcotest.(check bool) "wall past cap stops" true (ex ~trials:0 ~vt:0.0 ~wall:5.1);
  Alcotest.(check bool) "unlimited never stops" false
    (Budget.exhausted Budget.unlimited ~trials:max_int ~vt:infinity ~wall:infinity);
  Alcotest.(check bool) "unlimited is unlimited" true (Budget.is_unlimited Budget.unlimited);
  Alcotest.(check bool) "capped is not unlimited" false (Budget.is_unlimited b);
  Alcotest.check_raises "negative trials rejected"
    (Invalid_argument "Budget.make: max_trials must be non-negative") (fun () ->
      ignore (Budget.make ~max_trials:(-1) ()));
  (* infinity caps normalize to "no cap" *)
  Alcotest.(check bool) "infinite virtual cap is unlimited" true
    (Budget.is_unlimited (Budget.make ~max_virtual:infinity ()))

(* ---- event bus ----------------------------------------------------- *)

let test_event_bus () =
  let g, _, _ = Fixtures.shared_halo () in
  let m = machine () in
  let ev = make_ev m g in
  let events = ref [] in
  let o =
    Engine.run
      ~on_event:(fun e -> events := e :: !events)
      ~start:(Mapping.default_start g m) ev
      (Ccd.make ~rotations:3 ev)
  in
  let events = List.rev !events in
  (match events with
  | Engine.Eval { trial = 1; accepted = true; _ }
    :: Engine.Improve { trial = 1; _ }
    :: Engine.Phase_change { name = "rotation 1/3" }
    :: _ ->
      ()
  | _ -> Alcotest.fail "run must open with Eval 1 / Improve 1 / Phase");
  let n_evals =
    List.length (List.filter (function Engine.Eval _ -> true | _ -> false) events)
  in
  Alcotest.(check int) "one Eval event per trial" o.Engine.trials n_evals;
  (* Improve events carry a strictly decreasing perf sequence ending at
     the outcome's best *)
  let improves =
    List.filter_map
      (function Engine.Improve { perf; _ } -> Some perf | _ -> None)
      events
  in
  let rec strictly_decreasing = function
    | a :: (b :: _ as rest) -> a > b && strictly_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "improvements strictly decrease" true
    (strictly_decreasing improves);
  Alcotest.(check (float 0.0)) "last improvement is the outcome"
    o.Engine.perf
    (List.fold_left (fun _ p -> p) nan improves)

(* ---- checkpoint / resume ------------------------------------------- *)

(* the strategies under test; portfolio gets a finite budget so its
   member deadlines are exercised *)
let strategies =
  [|
    ("cd", fun ev -> Cd.make ev);
    ("ccd", fun ev -> Ccd.make ~rotations:3 ev);
    ("annealing", fun ev -> Annealing.make ~seed:5 ev);
    ("random", fun ev -> Random_search.make ~seed:9 ev);
    ("ensemble", fun ev -> Ensemble.make ~config:{ Ensemble.default_config with seed = 2 } ev);
    ("portfolio", fun ev -> Portfolio.make ~budget:0.2 ~seed:4 ev);
  |]

let apps =
  [|
    ("Circuit", "n50w200");
    ("Stencil", "500x500");
    ("Pennant", "320x90");
    ("HTR", "8x8y9z");
    ("Maestro", "lf4r16");
  |]

let app_graph i =
  let name, input = apps.(i) in
  match App.find name with
  | Some a -> a.App.graph ~nodes:1 ~input
  | None -> Alcotest.fail ("unknown app " ^ name)

(* one Eval event, reduced to its decision content *)
let eval_events events =
  List.filter_map
    (function
      | Engine.Eval { trial; perf; vt; accepted; _ } ->
          Some (trial, Int64.bits_of_float perf, Int64.bits_of_float vt, accepted)
      | _ -> None)
    (List.rev events)

(* Run [strat] to [t2] trials uninterrupted; run it again but checkpoint
   and stop at [t1]; resume from the file to [t2].  The resumed run must
   replay the reference's post-[t1] decision sequence exactly. *)
let resume_identical ~strat_i ~app_i ~t1 =
  let m = Presets.shepard ~nodes:1 in
  let g = app_graph app_i in
  let start = Mapping.default_start g m in
  let t2 = t1 + 10 in
  let _, make_strat = strategies.(strat_i) in
  let run ?carry ?checkpoint ~max_trials ev strat =
    let events = ref [] in
    let o =
      Engine.run
        ~budget:(Budget.make ~max_trials ())
        ~on_event:(fun e -> events := e :: !events)
        ?carry ?checkpoint ~start ev strat
    in
    (o, !events)
  in
  (* reference: uninterrupted *)
  let ev_ref = make_ev m g in
  let o_ref, events_ref = run ~max_trials:t2 ev_ref (make_strat ev_ref) in
  (* interrupted at t1, checkpointing exactly there *)
  let path = Filename.temp_file "automap_resume" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let ev_a = make_ev m g in
      let o_a, _ =
        run ~checkpoint:{ Engine.every = t1; path } ~max_trials:t1 ev_a
          (make_strat ev_a)
      in
      if o_a.Engine.checkpoints_written = 0 then
        (* the strategy finished before trial t1 — nothing to resume;
           the truncated run must then already equal the reference *)
        Mapping.equal o_a.Engine.best o_ref.Engine.best
        && o_a.Engine.trials = o_ref.Engine.trials
      else begin
        let snap =
          match Engine.load_snapshot path with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        (* a resumed evaluator needs the snapshot's profiles database
           (cache hits!) as well as its mutable state *)
        let db =
          match Profiles_db.load g snap.Engine.s_profiles with
          | Ok db -> db
          | Error e -> Alcotest.fail e
        in
        let ev_b = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:1 ~db m g in
        if Evaluator.fingerprint ev_b <> snap.Engine.s_fingerprint then
          Alcotest.fail "fingerprint mismatch";
        (match Evaluator.restore_state ev_b snap.Engine.s_evaluator with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let strat_b =
          match Driver.decode_strategy ev_b ~algo:snap.Engine.s_algo snap.Engine.s_strategy with
          | Ok s -> s
          | Error e -> Alcotest.fail e
        in
        let best_m =
          match Mapping.of_canonical_key g snap.Engine.s_best_key with
          | Some m -> m
          | None -> Alcotest.fail "unparsable best key"
        in
        let carry =
          {
            Engine.c_trials = snap.Engine.s_trials;
            c_steps = snap.Engine.s_steps;
            c_wall = snap.Engine.s_wall;
            c_best = (best_m, snap.Engine.s_best_perf);
          }
        in
        let o_b, events_b = run ~carry ~max_trials:t2 ev_b strat_b in
        let tail_ref =
          List.filter (fun (t, _, _, _) -> t > snap.Engine.s_trials) (eval_events events_ref)
        in
        Mapping.equal o_b.Engine.best o_ref.Engine.best
        && Int64.bits_of_float o_b.Engine.perf = Int64.bits_of_float o_ref.Engine.perf
        && o_b.Engine.trials = o_ref.Engine.trials
        && o_b.Engine.steps = o_ref.Engine.steps
        && eval_events events_b = tail_ref
        && counters ev_b = counters ev_ref
      end)

let resume_prop =
  QCheck.Test.make ~count:15
    ~name:"checkpoint/resume is decision-identical (every strategy, every app)"
    QCheck.(triple (int_bound (Array.length strategies - 1)) (int_bound 4) (int_range 2 12))
    (fun (strat_i, app_i, t1) -> resume_identical ~strat_i ~app_i ~t1)

(* deterministic full matrix on the cheap fixture so every strategy is
   exercised even if the random sampler misses one *)
let test_resume_matrix () =
  let g, _, _ = Fixtures.shared_halo () in
  ignore g;
  Array.iteri
    (fun strat_i (name, _) ->
      Alcotest.(check bool)
        (name ^ " resumes identically")
        true
        (resume_identical ~strat_i ~app_i:1 ~t1:5))
    strategies

(* ---- driver-level resume ------------------------------------------- *)

let test_driver_resume () =
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let path = Filename.temp_file "automap_driver" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let full =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:40
          (Driver.Ccd { rotations = 5 }) m g
      in
      let truncated =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:20
          ~checkpoint:path ~checkpoint_every:20
          (Driver.Ccd { rotations = 5 }) m g
      in
      Alcotest.(check int) "one checkpoint written" 1 truncated.Driver.checkpoints_written;
      let resumed =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:40
          ~resume_from:path (Driver.Ccd { rotations = 5 }) m g
      in
      Alcotest.(check bool) "same best mapping" true
        (Mapping.equal full.Driver.best resumed.Driver.best);
      Alcotest.(check (float 0.0)) "same search perf" full.Driver.search_perf
        resumed.Driver.search_perf;
      Alcotest.(check int) "same evaluation count" full.Driver.evaluated
        resumed.Driver.evaluated;
      Alcotest.(check int) "same engine steps" full.Driver.engine_steps
        resumed.Driver.engine_steps)

let test_driver_fingerprint_mismatch () =
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let path = Filename.temp_file "automap_fp" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      ignore
        (Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:10
           ~checkpoint:path ~checkpoint_every:10
           (Driver.Ccd { rotations = 5 }) m g);
      (* different evaluator settings must be refused *)
      match
        Driver.run ~runs:3 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~resume_from:path
          (Driver.Ccd { rotations = 5 }) m g
      with
      | _ -> Alcotest.fail "mismatched resume must raise"
      | exception Failure msg ->
          Alcotest.(check bool) "mentions fingerprint" true
            (String.length msg > 0
            && Str_helpers.contains msg "fingerprint"))

(* ---- heft through the engine --------------------------------------- *)

let test_driver_heft () =
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let r = Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 Driver.Heft m g in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g m r.Driver.best);
  Alcotest.(check int) "single trial" 1 r.Driver.suggested;
  Alcotest.(check int) "one step" 1 r.Driver.engine_steps;
  Alcotest.(check bool) "heft mapping evaluated" true
    (Mapping.equal r.Driver.best (Heft.mapping m g));
  (* HEFT as a seed for a real search must do no worse than HEFT *)
  let seeded =
    Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~heft_seed:true
      ~max_trials:30 Driver.Cd m g
  in
  Alcotest.(check bool) "cd from heft seed no worse" true
    (seeded.Driver.search_perf <= r.Driver.search_perf +. 1e-12)

let suite =
  [
    Alcotest.test_case "equiv cd" `Quick test_equiv_cd;
    Alcotest.test_case "equiv ccd" `Quick test_equiv_ccd;
    Alcotest.test_case "equiv ccd budget" `Quick test_equiv_ccd_budget;
    Alcotest.test_case "equiv annealing" `Quick test_equiv_annealing;
    Alcotest.test_case "equiv random" `Quick test_equiv_random;
    Alcotest.test_case "equiv ensemble" `Quick test_equiv_ensemble;
    Alcotest.test_case "equiv portfolio" `Quick test_equiv_portfolio;
    Alcotest.test_case "equiv ccd on stencil" `Quick test_equiv_ccd_app;
    Alcotest.test_case "budget semantics" `Quick test_budget_semantics;
    Alcotest.test_case "event bus" `Quick test_event_bus;
    QCheck_alcotest.to_alcotest resume_prop;
    Alcotest.test_case "resume matrix" `Quick test_resume_matrix;
    Alcotest.test_case "driver resume" `Quick test_driver_resume;
    Alcotest.test_case "driver fingerprint mismatch" `Quick test_driver_fingerprint_mismatch;
    Alcotest.test_case "driver heft" `Quick test_driver_heft;
  ]
