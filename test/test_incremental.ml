(* Incremental (dirty-cone) re-simulation must be bit-identical to the
   plain event loop: same makespans, per-instance statistics, RNG
   streams and Cut decisions for every mapping the search can visit.
   Two scratches over one compiled problem — one with timelines on, one
   forced off — walk the same candidate chains and every observable is
   compared bit-for-bit. *)

let bits = Int64.bits_of_float

let check_float name a b =
  if bits a <> bits b then
    Alcotest.failf "%s: %.17g <> %.17g (bit mismatch)" name a b

let check_farray name a b =
  Alcotest.(check int) (name ^ " length") (Array.length a) (Array.length b);
  Array.iteri (fun i x -> check_float (Printf.sprintf "%s.(%d)" name i) x b.(i)) a

let check_result name (a : Exec.result) (b : Exec.result) =
  check_float (name ^ " makespan") a.Exec.makespan b.Exec.makespan;
  check_float (name ^ " per_iteration") a.Exec.per_iteration b.Exec.per_iteration;
  check_farray (name ^ " task_times") a.Exec.task_times b.Exec.task_times;
  check_farray (name ^ " proc_busy") a.Exec.proc_busy b.Exec.proc_busy;
  check_float (name ^ " bytes_moved") a.Exec.bytes_moved b.Exec.bytes_moved;
  check_farray (name ^ " channel_bytes") a.Exec.channel_bytes b.Exec.channel_bytes;
  Alcotest.(check int) (name ^ " n_copies") a.Exec.n_copies b.Exec.n_copies;
  Alcotest.(check int) (name ^ " demotions") a.Exec.demotions b.Exec.demotions

(* Same constraint-repairing single-coordinate move the annealer makes:
   the diffs incremental replay sees in production are chains of
   these. *)
let mutate g space rng parent =
  let dims = Array.of_list (Space.dims space) in
  match Rng.choose rng dims with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid
        (match Mapping.strategy_of parent tid with
        | Mapping.Blocked -> Mapping.Cyclic
        | Mapping.Cyclic -> Mapping.Blocked)
  | Space.Processor tid ->
      let k = Rng.choose_list rng (Space.proc_choices space tid) in
      let m = Mapping.set_proc parent tid k in
      List.fold_left
        (fun acc (c : Graph.collection) ->
          if Kinds.accessible k (Mapping.mem_of acc c.cid) then acc
          else
            match Kinds.accessible_mem_kinds k with
            | mk :: _ -> Mapping.set_mem acc c.cid mk
            | [] -> acc)
        m (Graph.task g tid).args
  | Space.Memory cid ->
      let owner = (Graph.collection g cid).owner in
      let k = Mapping.proc_of parent owner in
      Mapping.set_mem parent cid (Rng.choose_list rng (Space.mem_choices space k))

(* Walk a neighbor chain on both scratches, comparing full runs and
   bounded runs (the Cut path) at every step under common random
   numbers. *)
let compare_chain ~name ~steps ~seeds machine g =
  let c = Exec.compile machine g in
  let sc_inc = Exec.scratch c in
  let sc_full = Exec.scratch c in
  Exec.set_incremental sc_full false;
  let space = Space.make g machine in
  let rng = Rng.create 42 in
  (* Maestro's GPU-first default OOMs on the small test machine; chains
     need a runnable base so the success path is actually exercised *)
  let start =
    let d = Mapping.default_start g machine in
    match Exec.simulate ~noise_sigma:0.0 sc_full d with
    | Ok _ -> d
    | Error _ -> Mapping.all_cpu g machine
  in
  let incumbent = ref start in
  Exec.prefer_timeline sc_inc !incumbent;
  let best = ref infinity in
  let m = ref !incumbent in
  for step = 0 to steps - 1 do
    List.iter
      (fun seed ->
        let tag = Printf.sprintf "%s step %d seed %d" name step seed in
        (match
           ( Exec.simulate ~noise_sigma:0.03 ~seed sc_inc !m,
             Exec.simulate ~noise_sigma:0.03 ~seed sc_full !m )
         with
        | Ok a, Ok b ->
            check_result tag a b;
            if a.Exec.makespan < !best then begin
              best := a.Exec.makespan;
              incumbent := !m;
              Exec.prefer_timeline sc_inc !m
            end
        | Error a, Error b ->
            Alcotest.(check string) (tag ^ " error")
              (Placement.error_to_string b) (Placement.error_to_string a)
        | Ok _, Error e ->
            Alcotest.failf "%s: incremental Ok, full Error %s" tag
              (Placement.error_to_string e)
        | Error e, Ok _ ->
            Alcotest.failf "%s: incremental Error %s, full Ok" tag
              (Placement.error_to_string e));
        (* the pruning path: cutoffs below the incumbent must cut at
           bit-identical clock values on both scratches *)
        if !best < infinity then
          let cutoff = 0.9 *. !best in
          match
            ( Exec.simulate_bounded ~noise_sigma:0.03 ~seed ~cutoff sc_inc !m,
              Exec.simulate_bounded ~noise_sigma:0.03 ~seed ~cutoff sc_full !m )
          with
          | Ok (Exec.Finished a), Ok (Exec.Finished b) -> check_result (tag ^ " bounded") a b
          | Ok (Exec.Cut a), Ok (Exec.Cut b) -> check_float (tag ^ " cut clock") a b
          | Error _, Error _ -> ()
          | _ -> Alcotest.failf "%s: bounded outcomes diverge" tag)
      seeds;
    (* 1-2 coordinate hops, occasionally rebased on the incumbent like
       a descent restart *)
    m := mutate g space rng (if step mod 5 = 4 then !incumbent else !m);
    if Rng.bool rng then m := mutate g space rng !m
  done;
  Alcotest.(check bool) (name ^ " exercised replay path") true
    (Exec.cone_replays sc_inc + Exec.full_replays sc_inc > 0)

let test_app (app : App.t) () =
  let nodes = 2 in
  (* Maestro's HF sample is sized for Lassen's 64 GB frame buffers and
     OOMs on every strict Shepard mapping (cf. test_apps.ml) *)
  let machine =
    if app.App.app_name = "Maestro" then Presets.lassen ~nodes else Presets.shepard ~nodes
  in
  let input = List.hd (app.App.inputs ~nodes) in
  let g = app.App.graph ~nodes ~input in
  compare_chain ~name:app.App.app_name ~steps:12 ~seeds:[ 3; 4; 5 ] machine g

(* A committed timeline replayed under an empty diff admits every pop:
   the cheapest possible cone replay, and a deterministic counter
   check. *)
let test_cone_counters () =
  let g, _, _ = Fixtures.shared_halo ~iterations:4 () in
  let machine = Fixtures.default_machine () in
  let sc = Exec.scratch (Exec.compile machine g) in
  let m = Mapping.default_start g machine in
  Exec.prefer_timeline sc m;
  let run mp =
    match Exec.simulate ~noise_sigma:0.03 ~seed:7 sc mp with
    | Ok r -> r.Exec.makespan
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  let a = run m in
  (* structurally equal but physically distinct: diff = ([], []) *)
  let m' = Mapping.set_proc m 0 (Mapping.proc_of m 0) in
  let b = run m' in
  check_float "empty-diff replay" a b;
  Alcotest.(check bool) "cone replay happened" true (Exec.cone_replays sc >= 1);
  Alcotest.(check bool) "timelines account bytes" true (Exec.timeline_bytes sc > 0);
  Exec.set_incremental sc false;
  Alcotest.(check bool) "disable drops timelines" true (Exec.timeline_bytes sc = 0);
  let c = run m' in
  check_float "post-disable result unchanged" a c

(* End-to-end decision identity: a full CCD search must make the same
   accept/reject sequence, visit the same candidates and return the
   same best with incremental on and off. *)
let test_ccd_decision_identity () =
  let machine = Presets.shepard ~nodes:4 in
  let g = App.circuit.App.graph ~nodes:4 ~input:(List.hd (App.circuit.App.inputs ~nodes:4)) in
  let run incremental =
    let ev = Evaluator.create ~prune:true ~incremental ~seed:3 machine g in
    let best, perf = Ccd.search ~rotations:3 ev in
    (best, perf, Evaluator.stats ev)
  in
  let bi, pi, si = run true in
  let bf, pf, sf = run false in
  Alcotest.(check string) "best mapping" (Mapping.canonical_key bf) (Mapping.canonical_key bi);
  check_float "best perf" pi pf;
  Alcotest.(check int) "suggested" sf.Evaluator.s_suggested si.Evaluator.s_suggested;
  Alcotest.(check int) "evaluated" sf.Evaluator.s_evaluated si.Evaluator.s_evaluated;
  Alcotest.(check int) "cut evals" sf.Evaluator.s_cut_evals si.Evaluator.s_cut_evals;
  Alcotest.(check int) "cut sims" sf.Evaluator.s_cut_sims si.Evaluator.s_cut_sims;
  Alcotest.(check bool) "incremental leg replayed cones" true (si.Evaluator.s_cone_replays > 0);
  Alcotest.(check int) "full leg kept no timelines" 0 sf.Evaluator.s_timeline_bytes

(* Random graphs x random <=8-coordinate neighbor chains: the property
   the golden tests spot-check, over the whole builder space. *)
let prop_random_graphs =
  QCheck.Test.make ~count:40 ~name:"incremental == full on random workloads"
    Gen.arbitrary_spec (fun spec ->
      let g = Gen.graph_of_spec spec in
      let machine = Fixtures.default_machine () in
      let c = Exec.compile machine g in
      let sc_inc = Exec.scratch c in
      let sc_full = Exec.scratch c in
      Exec.set_incremental sc_full false;
      let space = Space.make g machine in
      let rng = Rng.create (spec.Gen.seed + 1) in
      let m = ref (Mapping.default_start g machine) in
      Exec.prefer_timeline sc_inc !m;
      let ok = ref true in
      for _ = 1 to 8 do
        List.iter
          (fun seed ->
            match
              ( Exec.simulate ~noise_sigma:0.05 ~seed sc_inc !m,
                Exec.simulate ~noise_sigma:0.05 ~seed sc_full !m )
            with
            | Ok a, Ok b ->
                if bits a.Exec.makespan <> bits b.Exec.makespan then ok := false
            | Error _, Error _ -> ()
            | _ -> ok := false)
          [ 1; 2 ];
        (* up to 4 task + 4 collection coordinate hops between runs *)
        for _ = 1 to 1 + Rng.int rng 4 do
          m := mutate g space rng !m
        done
      done;
      !ok)

let suite =
  List.map (fun (a : App.t) -> Alcotest.test_case a.App.app_name `Quick (test_app a)) App.all
  @ [
      Alcotest.test_case "cone counters" `Quick test_cone_counters;
      Alcotest.test_case "ccd decision identity" `Slow test_ccd_decision_identity;
      QCheck_alcotest.to_alcotest prop_random_graphs;
    ]
