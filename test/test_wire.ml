(* Wire-protocol codec: random JSON values, requests and responses must
   survive print -> parse exactly (the daemon's cold/warm bit-equality
   guarantee rides on this), and hostile inputs — oversized payloads,
   malformed JSON, unknown types — must come back as typed errors, never
   exceptions. *)

open QCheck

(* ---- generators ------------------------------------------------------- *)

let finite_float =
  Gen.map (fun f -> if Float.is_finite f then f else 0.0) Gen.float

let short_string = Gen.(string_size ~gen:printable (int_bound 16))
let ident = Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 12))

let json_gen =
  Gen.(
    sized_size (int_bound 3)
    @@ fix (fun self n ->
           let leaf =
             oneof
               [
                 return Wire.Null;
                 map (fun b -> Wire.Bool b) bool;
                 map (fun f -> Wire.Num f) finite_float;
                 map (fun s -> Wire.Str s) short_string;
               ]
           in
           if n = 0 then leaf
           else
             oneof
               [
                 leaf;
                 map (fun l -> Wire.Arr l) (list_size (int_bound 4) (self (n - 1)));
                 map
                   (fun l -> Wire.Obj l)
                   (list_size (int_bound 4) (pair ident (self (n - 1))));
               ]))

let algo_gen =
  Gen.(
    oneof
      [
        return Driver.Cd;
        map (fun r -> Driver.Ccd { rotations = r }) (int_range 1 9);
        return Driver.Ensemble_tuner;
        map (fun m -> Driver.Random_walk { max_evals = m }) (int_range 1 5000);
        map (fun m -> Driver.Annealing { max_evals = m }) (int_range 1 5000);
        return Driver.Portfolio;
        return Driver.Heft;
      ])

let opt g = Gen.(oneof [ return None; map Option.some g ])

let cfg_gen =
  Gen.(
    let* algo = algo_gen in
    let* runs = int_range 1 30 and* seed = int_range 0 999 in
    let* noise_sigma = opt (map (fun f -> Float.abs f) finite_float)
    and* iterations = opt (int_range 1 10) in
    let* budget = opt (map Float.abs finite_float)
    and* max_trials = opt (int_range 1 100000) in
    let* batch = bool and* min_batch = int_range 1 64 in
    let* surrogate = bool and* surrogate_skim = opt (int_range 1 32) in
    let* symmetry = bool and* dominance = bool in
    let* heft_seed = bool in
    let* final_top = int_range 1 10 and* final_runs = int_range 1 50 in
    return
      {
        Slice.algo;
        runs;
        noise_sigma;
        iterations;
        seed;
        budget;
        max_trials;
        batch;
        min_batch;
        surrogate;
        surrogate_skim;
        symmetry;
        dominance;
        heft_seed;
        final_top;
        final_runs;
      })

let workload_gen =
  Gen.(
    let* w_app = opt ident and* w_input = opt short_string in
    let* w_nodes = int_range 1 8 and* w_cluster = ident in
    let* w_graph = opt short_string and* w_machine = opt short_string in
    return { Wire.w_app; w_input; w_nodes; w_cluster; w_graph; w_machine })

let request_gen =
  Gen.(
    oneof
      [
        return Wire.Ping;
        return Wire.Status;
        return Wire.Shutdown;
        map2
          (fun an_id workload -> Wire.Analyze { an_id; workload })
          ident workload_gen;
        (let* m_id = ident and* workload = workload_gen and* cfg = cfg_gen in
         let* wait = bool and* warm = bool in
         return (Wire.Map { m_id; workload; cfg; wait; warm }));
        map (fun p_id -> Wire.Poll { p_id }) ident;
      ])

let job_state_gen =
  Gen.oneofl [ Wire.Queued; Wire.Running; Wire.Done; Wire.Failed ]

let response_gen =
  Gen.(
    oneof
      [
        return Wire.Pong;
        map2
          (fun e_id message -> Wire.R_error { e_id; message })
          (opt ident) short_string;
        map (fun a_id -> Wire.R_accepted { a_id }) ident;
        (let* requests = int_bound 100000 in
         let* jobs = list_size (int_bound 5) (pair ident job_state_gen) in
         let* counters = list_size (int_bound 8) (pair ident (int_bound 1000000)) in
         return (Wire.R_status { requests; jobs; counters }));
        map2
          (fun ra_id report -> Wire.R_analysis { ra_id; report })
          ident
          (list_size (int_bound 6) short_string);
        (let* r_id = ident and* r_state = job_state_gen in
         let* r_mapping = opt short_string and* r_perf = opt finite_float in
         let* r_trials = int_bound 100000 in
         let* r_cached = bool and* r_warm_started = bool in
         let* r_error = opt short_string in
         let r_perf_hex = Option.map (Printf.sprintf "%h") r_perf in
         return
           (Wire.R_result
              {
                r_id;
                r_state;
                r_mapping;
                r_perf;
                r_perf_hex;
                r_trials;
                r_cached;
                r_warm_started;
                r_error;
              }));
      ])

(* ---- round-trip properties -------------------------------------------- *)

let prop name gen f = Test.make ~count:300 ~name (make gen) f

let json_round_trip =
  prop "json survives print -> parse" json_gen (fun j ->
      Wire.of_string (Wire.to_string j) = Ok j)

let request_round_trip =
  prop "requests survive print -> parse" request_gen (fun r ->
      Wire.request_of_string (Wire.request_to_string r) = Ok r)

let response_round_trip =
  prop "responses survive print -> parse" response_gen (fun r ->
      Wire.response_of_string (Wire.response_to_string r) = Ok r)

let request_is_one_line =
  prop "printed requests never contain a raw newline" request_gen (fun r ->
      not (String.contains (Wire.request_to_string r) '\n'))

let response_is_one_line =
  prop "printed responses never contain a raw newline" response_gen (fun r ->
      not (String.contains (Wire.response_to_string r) '\n'))

let parse_never_raises =
  prop "parsing arbitrary bytes never raises"
    Gen.(string_size ~gen:(char_range '\000' '\255') (int_bound 64))
    (fun s ->
      match Wire.of_string s with Ok _ | Error _ -> true)

(* ---- unit cases ------------------------------------------------------- *)

let check_parse () =
  let ok s v =
    Alcotest.(check bool) s true (Wire.of_string s = Ok v)
  in
  ok "null" Wire.Null;
  ok "[1,2.5,-3]" (Wire.Arr [ Wire.Num 1.0; Wire.Num 2.5; Wire.Num (-3.0) ]);
  ok {|{"a":true,"b":[{}]}|}
    (Wire.Obj [ ("a", Wire.Bool true); ("b", Wire.Arr [ Wire.Obj [] ]) ]);
  ok {|"A\n\t\\\""|} (Wire.Str "A\n\t\\\"");
  ok "  { \"x\" : 1e3 }  " (Wire.Obj [ ("x", Wire.Num 1000.0) ])

let check_parse_errors () =
  let bad s =
    match Wire.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected a parse error for %S" s
  in
  bad "";
  bad "{";
  bad "nul";
  bad "[1,]";
  bad {|{"a" 1}|};
  bad "1 2";
  bad "\"raw\ncontrol\"";
  bad {|{"unterminated|}

let check_depth_limit () =
  (* a nesting bomb within the byte cap must come back as Error, not
     Stack_overflow *)
  let bomb = String.make 100_000 '[' in
  (match Wire.of_string bomb with
  | Error e ->
      Alcotest.(check bool) "mentions nesting" true (Str_helpers.contains e "nest")
  | Ok _ -> Alcotest.fail "nesting bomb must be rejected");
  (* modest nesting still parses *)
  let modest = String.make 50 '[' ^ "1" ^ String.make 50 ']' in
  match Wire.of_string modest with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "50-deep nesting must parse: %s" e

let check_surrogate_pairs () =
  (* U+1F600 (grinning face) arrives as a UTF-16 surrogate pair and
     must decode to one 4-byte UTF-8 sequence *)
  (match Wire.of_string {|"\ud83d\ude00"|} with
  | Ok (Wire.Str s) -> Alcotest.(check string) "pair combines" "\xF0\x9F\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair must parse");
  (* BMP escapes are unaffected *)
  (match Wire.of_string {|"\u00e9"|} with
  | Ok (Wire.Str s) -> Alcotest.(check string) "BMP escape" "\xC3\xA9" s
  | _ -> Alcotest.fail "BMP escape must parse");
  (* a high surrogate not followed by a low one parses (legacy 3-byte
     form), and the following escape is decoded independently *)
  match Wire.of_string {|"\ud83dA"|} with
  | Ok (Wire.Str s) ->
      Alcotest.(check string) "lone surrogate + BMP" "\xED\xA0\xBDA" s
  | _ -> Alcotest.fail "lone surrogate must still parse"

let check_oversized () =
  let big = "\"" ^ String.make 200 'x' ^ "\"" in
  (match Wire.of_string ~max_bytes:64 big with
  | Error e ->
      Alcotest.(check bool) "mentions the limit" true
        (Str_helpers.contains e "too large")
  | Ok _ -> Alcotest.fail "oversized payload must be rejected");
  (* under the limit the same payload parses *)
  match Wire.of_string ~max_bytes:4096 big with
  | Ok (Wire.Str s) -> Alcotest.(check int) "content intact" 200 (String.length s)
  | _ -> Alcotest.fail "payload under the limit must parse"

let check_request_errors () =
  let bad line frag =
    match Wire.request_of_string line with
    | Error e ->
        Alcotest.(check bool) (frag ^ " mentioned") true (Str_helpers.contains e frag)
    | Ok _ -> Alcotest.failf "expected an error for %s" line
  in
  bad {|{"type":"teleport"}|} "unknown request type";
  bad {|{"type":"map"}|} "missing id";
  bad {|{"type":"result"}|} "missing id";
  bad {|{"type":"map","id":"j","algo":"quantum"}|} "unknown algorithm";
  bad {|[1,2]|} "object";
  bad "{" "";
  let too_long = String.make 200 'a' in
  bad (Printf.sprintf {|{"type":"map","id":"%s"}|} too_long) "128"

let check_error_response_round_trip () =
  let r = Wire.R_error { e_id = Some "j9"; message = "no such \"job\"" } in
  Alcotest.(check bool) "error response round-trips" true
    (Wire.response_of_string (Wire.response_to_string r) = Ok r);
  let anon = Wire.R_error { e_id = None; message = "parse failure at byte 3" } in
  Alcotest.(check bool) "anonymous error round-trips" true
    (Wire.response_of_string (Wire.response_to_string anon) = Ok anon)

let check_defaults () =
  match Wire.request_of_string {|{"type":"map","id":"j1","app":"stencil"}|} with
  | Ok (Wire.Map { cfg; workload; wait; warm; _ }) ->
      Alcotest.(check bool) "default cfg" true (cfg = Slice.default_cfg);
      Alcotest.(check string) "app" "stencil" (Option.get workload.Wire.w_app);
      Alcotest.(check int) "nodes default" 1 workload.Wire.w_nodes;
      Alcotest.(check bool) "wait defaults false" false wait;
      Alcotest.(check bool) "warm defaults true" true warm;
      (match Wire.request_of_string {|{"type":"poll","id":"j2"}|} with
      | Ok (Wire.Poll { p_id }) -> Alcotest.(check string) "poll alias" "j2" p_id
      | _ -> Alcotest.fail "\"poll\" must parse as the result request")
  | Ok _ -> Alcotest.fail "parsed as the wrong request"
  | Error e -> Alcotest.fail e

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      json_round_trip;
      request_round_trip;
      response_round_trip;
      request_is_one_line;
      response_is_one_line;
      parse_never_raises;
    ]
  @ [
      Alcotest.test_case "parser accepts the JSON grammar" `Quick check_parse;
      Alcotest.test_case "parser rejects malformed input" `Quick check_parse_errors;
      Alcotest.test_case "nesting bombs are rejected" `Quick check_depth_limit;
      Alcotest.test_case "surrogate pairs decode to 4-byte UTF-8" `Quick
        check_surrogate_pairs;
      Alcotest.test_case "oversized payloads are rejected" `Quick check_oversized;
      Alcotest.test_case "bad requests become typed errors" `Quick check_request_errors;
      Alcotest.test_case "error responses round-trip" `Quick check_error_response_round_trip;
      Alcotest.test_case "map defaults match Slice.default_cfg" `Quick check_defaults;
    ]
