(* Canonical-key inverse, profiles-DB persistence, evaluator
   warm-start, confidence intervals and the portfolio. *)

let machine () = Fixtures.default_machine ()

let test_canonical_key_inverse () =
  let g, _, _ = Fixtures.shared_halo () in
  let space = Space.make ~extended:true g (machine ()) in
  let rng = Rng.create 3 in
  for _ = 1 to 25 do
    let m = Space.random_mapping space rng in
    match Mapping.of_canonical_key g (Mapping.canonical_key m) with
    | Some m' -> Alcotest.(check bool) "inverse" true (Mapping.equal m m')
    | None -> Alcotest.fail "key did not parse"
  done

let test_canonical_key_rejects_mismatch () =
  let g, _, _ = Fixtures.shared_halo () in
  Alcotest.(check bool) "garbage" true (Mapping.of_canonical_key g "nope" = None);
  Alcotest.(check bool) "wrong arity" true (Mapping.of_canonical_key g "D|B|C|S" = None);
  (* a key from a different graph shape *)
  let g2, _, _, _, _ = Fixtures.pipeline () in
  let k2 = Mapping.canonical_key (Mapping.default_start g2 (machine ())) in
  Alcotest.(check bool) "cross-graph" true (Mapping.of_canonical_key g k2 = None)

let test_db_save_load_round_trip () =
  let g, _, _ = Fixtures.shared_halo () in
  let db = Profiles_db.create () in
  let m1 = Mapping.default_start g (machine ()) in
  let m2 = Mapping.all_cpu g (machine ()) in
  ignore (Profiles_db.record db m1 [ 1.0; 1.2 ]);
  ignore (Profiles_db.record db m2 [ 0.5 ]);
  match Profiles_db.load g (Profiles_db.save db) with
  | Error e -> Alcotest.fail e
  | Ok db' ->
      Alcotest.(check int) "size" 2 (Profiles_db.size db');
      (match Profiles_db.find db' m1 with
      | Some e ->
          Alcotest.(check (float 1e-12)) "perf preserved" 1.1 e.Profiles_db.perf;
          Alcotest.(check int) "runs preserved" 2 (List.length e.Profiles_db.runs)
      | None -> Alcotest.fail "m1 lost");
      (match Profiles_db.best db' with
      | Some e -> Alcotest.(check bool) "best is m2" true (Mapping.equal e.Profiles_db.mapping m2)
      | None -> Alcotest.fail "no best")

let test_db_load_rejects_garbage () =
  let g, _, _ = Fixtures.shared_halo () in
  (match Profiles_db.load g "not-a-key 1.0" with
  | Error e -> Alcotest.(check bool) "mentions graph" true (Str_helpers.contains e "graph")
  | Ok _ -> Alcotest.fail "expected error");
  match Profiles_db.load g "" with
  | Ok db -> Alcotest.(check int) "empty ok" 0 (Profiles_db.size db)
  | Error e -> Alcotest.fail e

(* Property: save/load is the identity on databases of arbitrary valid
   mappings with arbitrary positive measurements ("%.17g" round-trips
   every finite double exactly). *)
let prop_db_round_trip =
  QCheck.Test.make ~count:50 ~name:"profiles-db save/load round trip"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let g, _, _ = Fixtures.shared_halo () in
      let space = Space.make ~extended:true g (machine ()) in
      let rng = Rng.create seed in
      let db = Profiles_db.create () in
      for _ = 1 to 1 + Rng.int rng 20 do
        let m = Space.random_mapping space rng in
        let runs = List.init (1 + Rng.int rng 7) (fun _ -> Rng.float rng 50.0) in
        ignore (Profiles_db.record db m runs)
      done;
      match Profiles_db.load g (Profiles_db.save db) with
      | Error e -> QCheck.Test.fail_report e
      | Ok db' ->
          Profiles_db.size db' = Profiles_db.size db
          && List.for_all
               (fun (e : Profiles_db.entry) ->
                 match Profiles_db.find db' e.Profiles_db.mapping with
                 | Some e' ->
                     e'.Profiles_db.runs = e.Profiles_db.runs
                     && e'.Profiles_db.perf = e.Profiles_db.perf
                 | None -> false)
               (Profiles_db.top db (Profiles_db.size db)))

let test_db_load_rejects_duplicates () =
  let g, _, _ = Fixtures.shared_halo () in
  let db = Profiles_db.create () in
  let m = Mapping.default_start g (machine ()) in
  ignore (Profiles_db.record db m [ 1.0 ]);
  let line = String.trim (Profiles_db.save db) in
  match Profiles_db.load g (line ^ "\n" ^ line ^ "\n") with
  | Error e ->
      Alcotest.(check bool) "mentions duplicate" true (Str_helpers.contains e "duplicate");
      Alcotest.(check bool) "names the line" true (Str_helpers.contains e "line 2")
  | Ok _ -> Alcotest.fail "duplicate key accepted"

let test_evaluator_warm_start () =
  let g, _, _ = Fixtures.shared_halo () in
  (* first session measures and persists *)
  let ev1 = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:0 (machine ()) g in
  let m = Mapping.default_start g (machine ()) in
  let p1 = Evaluator.evaluate ev1 m in
  let persisted = Profiles_db.save (Evaluator.db ev1) in
  (* second session reloads: the same mapping is a cache hit *)
  match Profiles_db.load g persisted with
  | Error e -> Alcotest.fail e
  | Ok db ->
      let ev2 = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:9 ~db (machine ()) g in
      let p2 = Evaluator.evaluate ev2 m in
      Alcotest.(check (float 1e-12)) "same value from cache" p1 p2;
      Alcotest.(check int) "no execution" 0 (Evaluator.evaluated ev2);
      Alcotest.(check int) "one cache hit" 1 (Evaluator.cache_hits ev2)

let test_confidence_interval () =
  let lo, hi = Stats.confidence_interval_95 [ 10.0; 12.0; 11.0; 13.0; 9.0 ] in
  let m = Stats.mean [ 10.0; 12.0; 11.0; 13.0; 9.0 ] in
  Alcotest.(check bool) "contains mean" true (lo < m && m < hi);
  Alcotest.(check bool) "symmetric" true (abs_float (m -. lo -. (hi -. m)) < 1e-9);
  (* n=5, sd=sqrt(2.5), t=2.776: half-width = 2.776*sqrt(2.5/5) *)
  let expected_half = 2.776 *. sqrt (2.5 /. 5.0) in
  Alcotest.(check bool) "t-table width" true (abs_float (hi -. m -. expected_half) < 1e-9);
  let lo1, hi1 = Stats.confidence_interval_95 [ 4.2 ] in
  Alcotest.(check (float 0.0)) "singleton lo" 4.2 lo1;
  Alcotest.(check (float 0.0)) "singleton hi" 4.2 hi1

let test_ci_narrows_with_samples () =
  let rng = Rng.create 5 in
  let sample n = List.init n (fun _ -> 10.0 +. Rng.gaussian rng) in
  let width xs =
    let lo, hi = Stats.confidence_interval_95 xs in
    hi -. lo
  in
  Alcotest.(check bool) "30 samples narrower than 5" true (width (sample 30) < width (sample 5))

let test_portfolio () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:0 (machine ()) g in
  let p0 = Evaluator.evaluate ev (Mapping.default_start g (machine ())) in
  let best, p = Portfolio.search ~seed:1 ev in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) best);
  Alcotest.(check bool) "no worse than default" true (p <= p0);
  (* the shared DB means members dedup against each other *)
  Alcotest.(check bool) "cache hits across members" true (Evaluator.cache_hits ev > 0)

let test_portfolio_validation () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = Evaluator.create ~runs:1 ~noise_sigma:0.0 (machine ()) g in
  Alcotest.check_raises "no members" (Invalid_argument "Portfolio.search: no members")
    (fun () -> ignore (Portfolio.search ~members:[] ev))

let suite =
  [
    Alcotest.test_case "canonical key inverse" `Quick test_canonical_key_inverse;
    Alcotest.test_case "key mismatch" `Quick test_canonical_key_rejects_mismatch;
    Alcotest.test_case "db round trip" `Quick test_db_save_load_round_trip;
    Alcotest.test_case "db garbage" `Quick test_db_load_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_db_round_trip;
    Alcotest.test_case "db duplicates" `Quick test_db_load_rejects_duplicates;
    Alcotest.test_case "warm start" `Quick test_evaluator_warm_start;
    Alcotest.test_case "confidence interval" `Quick test_confidence_interval;
    Alcotest.test_case "ci narrows" `Quick test_ci_narrows_with_samples;
    Alcotest.test_case "portfolio" `Quick test_portfolio;
    Alcotest.test_case "portfolio validation" `Quick test_portfolio_validation;
  ]
