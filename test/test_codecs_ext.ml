(* Machine and task-graph file codecs. *)

let machines_equal (a : Machine.t) (b : Machine.t) =
  a.Machine.name = b.Machine.name
  && a.Machine.nodes = b.Machine.nodes
  && a.Machine.node = b.Machine.node
  && a.Machine.exec_bw = b.Machine.exec_bw
  && a.Machine.compute = b.Machine.compute
  && a.Machine.copy = b.Machine.copy

let test_machine_round_trip () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Machine.name ^ " round-trips")
        true
        (machines_equal m (Machine_codec.round_trip_exn m)))
    [ Presets.shepard ~nodes:2; Presets.lassen ~nodes:4; Presets.testbed ~nodes:1 ]

(* Every preset constructor — including the degenerate cpu_only and the
   deliberately broken headless machine — must survive encode → decode
   at any node count.  %.17g round-trips doubles exactly and the
   processor/memory tables are derived deterministically from the node
   description, so full structural equality is the right check. *)
let all_presets =
  [
    ("shepard", Presets.shepard);
    ("lassen", Presets.lassen);
    ("testbed", Presets.testbed);
    ("cpu_only", Presets.cpu_only);
    ("headless", Presets.headless);
  ]

let qcheck_machine_round_trip =
  QCheck.Test.make ~count:60
    ~name:"machine codec round-trips every preset at any node count"
    QCheck.(
      pair
        (map
           (fun i -> List.nth all_presets (i mod List.length all_presets))
           (int_range 0 (List.length all_presets - 1)))
        (int_range 1 16))
    (fun ((_, mk), nodes) ->
      let m = mk ~nodes in
      Machine_codec.round_trip_exn m = m)

(* Topology presets: the codec serializes the topology as its spec (or
   custom link list) and *regenerates* the route tables at decode time,
   so the decoded machine must be structurally equal and route-identical
   — same distances and same link sequence for every sampled pair. *)
let topo_specs =
  [|
    "grid:4x4"; "grid:8x8"; "grid:1x6"; "torus:4x4"; "torus:3x5"; "fattree:2:3";
    "fattree:3:2"; "direct:4"; "direct:9"; "grid:4x4:free"; "torus:4x4:free";
    "fattree:2:2:free";
  |]

let routes_identical t t' ~src ~dst =
  Topology.distance t ~src ~dst = Topology.distance t' ~src ~dst
  &&
  let path topo =
    let l = ref [] in
    Topology.route_iter topo ~src ~dst ~f:(fun lk -> l := lk.Topology.lid :: !l);
    List.rev !l
  in
  path t = path t'

let qcheck_topology_machine_round_trip =
  QCheck.Test.make ~count:80
    ~name:"machine codec round-trips topology presets (routes regenerated)"
    QCheck.(triple (int_bound (Array.length topo_specs - 1)) small_nat small_nat)
    (fun (i, a, b) ->
      let spec = topo_specs.(i) in
      let m =
        match Presets.of_spec spec ~nodes:1 with
        | Ok m -> m
        | Error e -> QCheck.Test.fail_reportf "of_spec %s: %s" spec e
      in
      let m' = Machine_codec.round_trip_exn m in
      machines_equal m m'
      &&
      match (m.Machine.topology, m'.Machine.topology) with
      | Some t, Some t' ->
          Topology.equal_structure t t'
          &&
          let n = Topology.n_nodes t in
          routes_identical t t' ~src:(a mod n) ~dst:(b mod n)
      | _ -> false)

let test_custom_topology_round_trip () =
  (* Custom topologies serialize their explicit link list (topolink
     stanzas); the per-destination next-hop tables are rebuilt, so a
     decode must reproduce every route. *)
  let topo =
    Topology.custom ~name:"ring4" ~n_nodes:4
      ~links:
        [ (0, 1, 2e9, 1e-6); (1, 2, 2e9, 1e-6); (2, 3, 2e9, 1e-6); (3, 0, 2e9, 1e-6) ]
      ()
  in
  let m =
    let base = Presets.testbed ~nodes:4 in
    Machine.make ~name:"ring-machine" ~nodes:4 ~node:base.Machine.node
      ~exec_bw:base.Machine.exec_bw ~compute:base.Machine.compute
      ~copy:base.Machine.copy ~topology:topo ()
  in
  let text = Machine_codec.to_string m in
  Alcotest.(check bool)
    "route tables are not serialized" false
    (Str_helpers.contains text "route");
  let m' = Machine_codec.round_trip_exn m in
  Alcotest.(check bool) "machine fields survive" true (machines_equal m m');
  match (m.Machine.topology, m'.Machine.topology) with
  | Some t, Some t' ->
      Alcotest.(check bool) "structure survives" true (Topology.equal_structure t t');
      for src = 0 to 3 do
        for dst = 0 to 3 do
          Alcotest.(check bool)
            (Printf.sprintf "route %d->%d identical" src dst)
            true
            (routes_identical t t' ~src ~dst)
        done
      done
  | _ -> Alcotest.fail "topology lost in round trip"

let test_machine_parse_errors () =
  let check_error input frag =
    match Machine_codec.of_string input with
    | Ok _ -> Alcotest.fail "expected error"
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" e frag)
          true (Str_helpers.contains e frag)
  in
  check_error "nonsense stanza" "unknown stanza";
  check_error "machine X nodes=two" "bad integer";
  check_error "machine X nodes=1" "missing";
  let valid = Machine_codec.to_string (Presets.testbed ~nodes:1) in
  check_error (valid ^ "\nmachine Y nodes=1") "duplicate"

let test_machine_comments () =
  let s = "# hello\n" ^ Machine_codec.to_string (Presets.testbed ~nodes:1) in
  match Machine_codec.of_string s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_machine_validation_propagates () =
  let s =
    Machine_codec.to_string (Presets.testbed ~nodes:1)
    |> String.split_on_char '\n'
    |> List.map (fun l ->
           if String.length l > 4 && String.sub l 0 4 = "node" then
             "node sockets=0 cores_per_socket=1 gpus=1 sysmem=1e9 zc=1e9 fb=1e9"
           else l)
    |> String.concat "\n"
  in
  match Machine_codec.of_string s with
  | Error e -> Alcotest.(check bool) "mentions sockets" true (Str_helpers.contains e "sockets")
  | Ok _ -> Alcotest.fail "expected validation error"

let graphs_equal (a : Graph.t) (b : Graph.t) =
  Graph.n_tasks a = Graph.n_tasks b
  && Graph.n_collections a = Graph.n_collections b
  && List.length a.Graph.edges = List.length b.Graph.edges
  && a.Graph.overlaps = b.Graph.overlaps
  && a.Graph.iterations = b.Graph.iterations
  && List.for_all2
       (fun (x : Graph.task) (y : Graph.task) ->
         x.Graph.tname = y.Graph.tname
         && x.Graph.group_size = y.Graph.group_size
         && x.Graph.variants = y.Graph.variants
         && x.Graph.flops = y.Graph.flops
         && List.for_all2
              (fun (c : Graph.collection) (d : Graph.collection) ->
                c.Graph.cname = d.Graph.cname
                && c.Graph.bytes = d.Graph.bytes
                && Mode.equal c.Graph.mode d.Graph.mode)
              x.Graph.args y.Graph.args)
       (Array.to_list a.Graph.tasks)
       (Array.to_list b.Graph.tasks)

let test_graph_round_trip_fixtures () =
  let g1, _, _, _, _ = Fixtures.pipeline () in
  let g2, _, _ = Fixtures.shared_halo () in
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (g.Graph.gname ^ " round-trips")
        true
        (graphs_equal g (Graph_codec.round_trip_exn g)))
    [ g1; g2 ]

let test_graph_round_trip_apps () =
  (* the big generated graphs round-trip too, including all edges *)
  List.iter
    (fun g ->
      let g' = Graph_codec.round_trip_exn g in
      Alcotest.(check bool) (g.Graph.gname ^ " equal") true (graphs_equal g g');
      Alcotest.(check int)
        (g.Graph.gname ^ " edges")
        (List.length g.Graph.edges)
        (List.length g'.Graph.edges))
    [
      App.circuit.App.graph ~nodes:1 ~input:"n50w200";
      App.pennant.App.graph ~nodes:1 ~input:"320x90";
    ]

let test_graph_simulates_identically () =
  (* a round-tripped graph must simulate to the same makespan *)
  let machine = Presets.shepard ~nodes:1 in
  let g = App.htr.App.graph ~nodes:1 ~input:"8x8y9z" in
  let g' = Graph_codec.round_trip_exn g in
  let time graph =
    match Exec.run ~noise_sigma:0.0 machine graph (Mapping.default_start graph machine) with
    | Ok r -> r.Exec.makespan
    | Error e -> Alcotest.fail (Placement.error_to_string e)
  in
  Alcotest.(check (float 1e-12)) "same makespan" (time g) (time g')

let test_graph_parse_errors () =
  let check_error input frag =
    match Graph_codec.of_string input with
    | Ok _ -> Alcotest.fail "expected error"
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" e frag)
          true (Str_helpers.contains e frag)
  in
  check_error "" "no graph header";
  check_error "task t group=1 flops=1" "header must come first";
  check_error "graph g\ntask t group=1 flops=1 variants=TPU" "bad processor kind";
  check_error "graph g\narg nope x bytes=1 mode=R" "unknown task";
  check_error "graph g\ntask t group=1 flops=1\narg t x bytes=1 mode=Q" "bad mode";
  check_error
    "graph g\ntask t group=1 flops=1\narg t x bytes=1 mode=W\ndep t x t y" "unknown argument"

let test_graph_minimal_example () =
  let s =
    "graph tiny iterations=2\n\
     task a group=2 flops=1e6\n\
     arg a out bytes=1e6 mode=RW\n\
     task b group=2 flops=1e6\n\
     arg b in bytes=1e6 mode=RW\n\
     dep a out b in pattern=halo:0.25\n\
     dep b in a out carried=true\n\
     overlap a out b in bytes=5e5\n"
  in
  match Graph_codec.of_string s with
  | Ok g ->
      Alcotest.(check int) "tasks" 2 (Graph.n_tasks g);
      Alcotest.(check int) "iterations" 2 g.Graph.iterations;
      Alcotest.(check int) "edges" 2 (List.length g.Graph.edges);
      let carried = List.filter (fun (e : Graph.edge) -> e.Graph.carried) g.Graph.edges in
      Alcotest.(check int) "one carried" 1 (List.length carried)
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "machine round trip" `Quick test_machine_round_trip;
    QCheck_alcotest.to_alcotest qcheck_machine_round_trip;
    QCheck_alcotest.to_alcotest qcheck_topology_machine_round_trip;
    Alcotest.test_case "custom topology round trip" `Quick
      test_custom_topology_round_trip;
    Alcotest.test_case "machine parse errors" `Quick test_machine_parse_errors;
    Alcotest.test_case "machine comments" `Quick test_machine_comments;
    Alcotest.test_case "machine validation" `Quick test_machine_validation_propagates;
    Alcotest.test_case "graph round trip" `Quick test_graph_round_trip_fixtures;
    Alcotest.test_case "graph round trip apps" `Quick test_graph_round_trip_apps;
    Alcotest.test_case "graph same simulation" `Quick test_graph_simulates_identically;
    Alcotest.test_case "graph parse errors" `Quick test_graph_parse_errors;
    Alcotest.test_case "graph minimal example" `Quick test_graph_minimal_example;
  ]
