(* PR 9 symmetry analysis: the orbit partition is a partition (1-WL +
   verified transpositions), canonicalization is idempotent and
   invariant under within-orbit relabelings, the canonical
   representative carries the same noise-free static cost, the engine
   seen-set round-trips through the checkpoint codec, and the reduced
   search (canonicalization + seen-set + dominance) is never worse than
   the unreduced one at an equal trial budget on every bundled app. *)

let small_apps =
  [
    (App.circuit, "n50w200");
    (App.stencil, "500x500");
    (App.pennant, "320x90");
    (App.htr, "8x8y9z");
    (App.maestro, "lf4r16");
  ]

(* A workload with genuine symmetry: [k] byte-identical tasks, each
   owning a private identically-declared array.  No cross-task edges or
   overlaps distinguish them, so they must form one orbit. *)
let clones_graph k =
  let arrays =
    List.init k (fun i ->
        Workload.array_decl ~name:(Printf.sprintf "a%d" i) ~elems:40_000.0
          ~comps:2 ())
  in
  let tasks =
    List.init k (fun i ->
        Workload.task_decl
          ~name:(Printf.sprintf "clone%d" i)
          ~work_elems:40_000.0 ~flops_per_elem:25.0 ~group_size:2
          ~cpu_eff:0.7 ~gpu_eff:0.9
          ~accesses:[ Workload.read_write (Printf.sprintf "a%d" i) ]
          ())
  in
  Workload.build ~name:(Printf.sprintf "clones%d" k) ~iterations:2 ~arrays ~tasks

(* ---- orbit partition --------------------------------------------------- *)

let check_partition g =
  let sym = Symmetry.build g in
  let n = Graph.n_tasks g in
  Alcotest.(check int) "n_tasks" n (Symmetry.n_tasks sym);
  let seen = Array.make n 0 in
  let orbits = Symmetry.orbits sym in
  Array.iteri
    (fun oi members ->
      Alcotest.(check bool) "orbit non-empty" true (Array.length members > 0);
      Array.iteri
        (fun j tid ->
          seen.(tid) <- seen.(tid) + 1;
          if j > 0 then
            Alcotest.(check bool) "members ascending" true (members.(j - 1) < tid);
          Alcotest.(check int) "orbit_of consistent" oi (Symmetry.orbit_of sym tid))
        members)
    orbits;
  Array.iter (fun c -> Alcotest.(check int) "each task in one orbit" 1 c) seen;
  Array.iteri
    (fun oi members ->
      if oi > 0 then
        Alcotest.(check bool) "orbits ordered by smallest member" true
          (orbits.(oi - 1).(0) < members.(0)))
    orbits;
  Alcotest.(check int) "n_orbits" (Array.length orbits) (Symmetry.n_orbits sym);
  (* same_orbit agrees with the partition on every pair *)
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      Alcotest.(check bool) "same_orbit matches partition"
        (Symmetry.orbit_of sym a = Symmetry.orbit_of sym b)
        (Symmetry.same_orbit sym a b)
    done
  done;
  sym

let prop_orbits_partition =
  QCheck.Test.make ~count:60 ~name:"orbits partition the task set"
    Gen.arbitrary_spec
    (fun spec ->
      ignore (check_partition (Gen.graph_of_spec spec));
      true)

let test_clones_one_orbit () =
  let sym = check_partition (clones_graph 4) in
  Alcotest.(check int) "one nontrivial orbit" 1 (Symmetry.n_nontrivial sym);
  Alcotest.(check int) "largest orbit is all clones" 4 (Symmetry.largest_orbit sym);
  (* and the quotient saves bits: 4 interchangeable tasks with c > 1
     per-task choices collapse ordered tuples to multisets *)
  let saved = Symmetry.log2_reduction sym ~combos:(fun _ -> 8.0) in
  Alcotest.(check bool) "log2 reduction positive" true (saved > 0.0)

let test_node_classes () =
  (* preset nodes are replicated: one class covering every node *)
  let m = Presets.shepard ~nodes:3 in
  let cls = Symmetry.node_classes m in
  Alcotest.(check int) "one class" 1 (Array.length cls);
  Alcotest.(check int) "all nodes" 3 (Array.length cls.(0))

(* ---- canonicalization -------------------------------------------------- *)

(* Relabel within one orbit: member i takes the block (distribution,
   strategy, processor, positional argument memories) of member perm(i). *)
let apply_perm g (members : int array) (perm : int array) m =
  let nt = Graph.n_tasks g in
  let dist = Array.init nt (Mapping.distribute_of m) in
  let strat = Array.init nt (Mapping.strategy_of m) in
  let proc = Array.init nt (Mapping.proc_of m) in
  let mem =
    Array.map (fun (c : Graph.collection) -> Mapping.mem_of m c.Graph.cid)
      g.Graph.cols
  in
  let dist' = Array.copy dist and strat' = Array.copy strat in
  let proc' = Array.copy proc and mem' = Array.copy mem in
  Array.iteri
    (fun i tid ->
      let src = members.(perm.(i)) in
      dist'.(tid) <- dist.(src);
      strat'.(tid) <- strat.(src);
      proc'.(tid) <- proc.(src);
      List.iteri
        (fun j (c : Graph.collection) ->
          let cs = List.nth (Graph.task g src).Graph.args j in
          mem'.(c.Graph.cid) <- mem.(cs.Graph.cid))
        (Graph.task g tid).Graph.args)
    members;
  Mapping.make g
    ~strategy:(fun (t : Graph.task) -> strat'.(t.Graph.tid))
    ~distribute:(fun (t : Graph.task) -> dist'.(t.Graph.tid))
    ~proc:(fun (t : Graph.task) -> proc'.(t.Graph.tid))
    ~mem:(fun (c : Graph.collection) -> mem'.(c.Graph.cid))

let canon_cases spec =
  let machine = Presets.testbed ~nodes:2 in
  let graphs = [ Gen.graph_of_spec spec; clones_graph 3 ] in
  List.iter
    (fun g ->
      let space = Space.make ~symmetry:true g machine in
      let sym = Symmetry.build g in
      let rng = Rng.create (spec.Gen.seed + 23) in
      for _ = 1 to 10 do
        let m = Space.random_unconstrained space rng in
        let c = Space.canonicalize space m in
        (* idempotent *)
        if not (Mapping.equal c (Space.canonicalize space c)) then
          Alcotest.fail "canonicalize not idempotent";
        (* invariant under any within-orbit relabeling of the canonical
           representative *)
        Array.iter
          (fun members ->
            if Array.length members >= 2 then begin
              let perm = Array.init (Array.length members) Fun.id in
              Rng.shuffle rng perm;
              let relabeled = apply_perm g members perm c in
              if not (Mapping.equal c (Space.canonicalize space relabeled)) then
                Alcotest.fail "canonical not invariant under orbit relabeling"
            end)
          (Symmetry.orbits sym)
      done)
    graphs

let prop_canonical_stable =
  QCheck.Test.make ~count:40
    ~name:"canonicalize is idempotent and relabeling-invariant"
    Gen.arbitrary_spec
    (fun spec ->
      canon_cases spec;
      true)

(* sampled mappings come out canonical already *)
let test_random_mapping_canonical () =
  let machine = Presets.shepard ~nodes:2 in
  let g = clones_graph 4 in
  let space = Space.make ~symmetry:true g machine in
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let m = Space.random_mapping space rng in
    if not (Mapping.equal m (Space.canonicalize space m)) then
      Alcotest.fail "random_mapping returned a non-canonical mapping"
  done

(* The certificate behind seen-set skipping: the canonical
   representative has bit-equal noise-free *static* cost, and a
   simulated makespan that agrees up to dispatch tie order. *)
let test_canonical_cost_certificate () =
  let machine = Presets.shepard ~nodes:2 in
  (* DES dispatch tie order is not relabeling-invariant; on the tiny
     clones graphs each dispatch quantum is a large fraction of the
     makespan, so the drift bound is proportionally looser there. *)
  let cases =
    (clones_graph 3, "clones3", 0.35)
    :: (clones_graph 5, "clones5", 0.35)
    :: List.map
         (fun ((app : App.t), input) ->
           (app.App.graph ~nodes:2 ~input, app.App.app_name, 0.15))
         small_apps
  in
  List.iter
    (fun (g, name, sim_tol) ->
      let space = Space.make ~symmetry:true g machine in
      let sc = Exec.scratch (Exec.compile machine g) in
      let rng = Rng.create 11 in
      let nontrivial = ref 0 in
      for _ = 1 to 25 do
        let m = Space.random_unconstrained space rng in
        let c = Space.canonicalize space m in
        if not (Mapping.equal m c) then incr nontrivial;
        match (Exec.static_lower_bound sc m, Exec.static_lower_bound sc c) with
        | Ok a, Ok b ->
            if not (a = b || Float.abs (a -. b) <= 1e-12 *. Float.abs a) then
              Alcotest.fail
                (Printf.sprintf "%s: static floor changed: %.17g vs %.17g" name a b);
            (match
               ( Exec.simulate ~noise_sigma:0.0 ~seed:0 sc m,
                 Exec.simulate ~noise_sigma:0.0 ~seed:0 sc c )
             with
            | Ok rm, Ok rc ->
                let a = rm.Exec.makespan and b = rc.Exec.makespan in
                if Float.abs (a -. b) > sim_tol *. Float.max a b then
                  Alcotest.fail
                    (Printf.sprintf
                       "%s: simulated makespan drifted past tie-order tolerance: \
                        %.17g vs %.17g"
                       name a b)
            | Ok _, Error e | Error e, Ok _ ->
                Alcotest.fail
                  (Printf.sprintf "%s: validity changed by canonicalization: %s"
                     name
                     (Placement.error_to_string e))
            | Error _, Error _ -> ())
        | Error _, Error _ -> ()
        | Ok _, Error e | Error e, Ok _ ->
            Alcotest.fail
              (Printf.sprintf "%s: feasibility changed by canonicalization: %s" name
                 (Placement.error_to_string e))
      done;
      (* the clones graphs must actually exercise nontrivial relabelings *)
      if String.length name >= 6 && String.sub name 0 6 = "clones" then
        Alcotest.(check bool) (name ^ " canonicalization non-vacuous") true
          (!nontrivial > 0))
    cases

(* ---- seen-set checkpoint codec ----------------------------------------- *)

let test_seen_roundtrip () =
  let machine = Presets.shepard ~nodes:2 in
  let g = clones_graph 4 in
  let ev =
    Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:0 ~symmetry:true
      ~dominance:true machine g
  in
  let seen = Engine.seen_create (Space.canonicalize (Evaluator.space ev)) in
  let strat = Ccd.make ~rotations:2 ev in
  let o = Engine.run ~seen ~start:(Mapping.default_start g machine) ev strat in
  Alcotest.(check bool) "seen-set populated" true (Engine.seen_size seen > 0);
  let ck ~seen =
    Engine.checkpoint_string ~seen ev strat ~trials:o.Engine.trials
      ~steps:o.Engine.steps ~wall:0.0 ~best:(o.Engine.best, o.Engine.perf)
  in
  match Engine.snapshot_of_string (ck ~seen) with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check int) "one line per memoized orbit"
        (Engine.seen_size seen)
        (List.length s.Engine.s_symmetry);
      let seen2 = Engine.seen_create (Space.canonicalize (Evaluator.space ev)) in
      (match Engine.seen_restore seen2 s.Engine.s_symmetry with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      Alcotest.(check int) "restored size" (Engine.seen_size seen)
        (Engine.seen_size seen2);
      (* bit-exact: re-serializing the restored set reproduces the
         section *)
      (match Engine.snapshot_of_string (ck ~seen:seen2) with
      | Error e -> Alcotest.fail e
      | Ok s2 ->
          Alcotest.(check (list string)) "section round-trips bit-exactly"
            s.Engine.s_symmetry s2.Engine.s_symmetry);
      (* and a garbled line is rejected, not silently dropped *)
      let seen3 = Engine.seen_create (Space.canonicalize (Evaluator.space ev)) in
      (match Engine.seen_restore seen3 [ "not a seen line" ] with
      | Ok () -> Alcotest.fail "seen_restore accepted a garbled line"
      | Error _ -> ())

(* ---- driver: resume + flag discipline ---------------------------------- *)

let test_driver_resume_with_symmetry () =
  let m = Presets.shepard ~nodes:1 in
  let g = App.stencil.App.graph ~nodes:1 ~input:"500x500" in
  let path = Filename.temp_file "automap_sym" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let run ?checkpoint ?resume_from ~max_trials () =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials
          ?checkpoint ~checkpoint_every:20 ?resume_from
          (Driver.Ccd { rotations = 5 })
          m g
      in
      let full = run ~max_trials:60 () in
      Alcotest.(check bool) "symmetry skipped duplicates" true
        (full.Driver.symmetry_skips > 0);
      let truncated = run ~checkpoint:path ~max_trials:20 () in
      Alcotest.(check bool) "checkpoint written" true
        (truncated.Driver.checkpoints_written >= 1);
      let resumed = run ~resume_from:path ~max_trials:60 () in
      Alcotest.(check bool) "same best mapping" true
        (Mapping.equal full.Driver.best resumed.Driver.best);
      Alcotest.(check (float 0.0)) "same search perf" full.Driver.search_perf
        resumed.Driver.search_perf;
      Alcotest.(check int) "same evaluation count" full.Driver.evaluated
        resumed.Driver.evaluated;
      (* symmetry is decision state: a checkpoint written without it
         must not resume under it (loud fingerprint mismatch) *)
      let off =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~max_trials:20
          ~symmetry:false ~checkpoint:path ~checkpoint_every:10
          (Driver.Ccd { rotations = 5 })
          m g
      in
      Alcotest.(check bool) "symmetry-off checkpoint written" true
        (off.Driver.checkpoints_written >= 1);
      match run ~resume_from:path ~max_trials:60 () with
      | _ -> Alcotest.fail "resume accepted a symmetry-off checkpoint"
      | exception Failure msg ->
          Alcotest.(check bool) "mismatch names the fingerprint" true
            (Str_helpers.contains msg "fingerprint"))

(* ---- ISSUE acceptance: reduced search never worse ---------------------- *)

let test_reduced_search_never_worse () =
  let machine = Presets.shepard ~nodes:2 in
  let apps_with_skips = ref 0 in
  List.iter
    (fun ((app : App.t), input) ->
      let g = app.App.graph ~nodes:2 ~input in
      let run ~reduce =
        let ev =
          Evaluator.create ~runs:1 ~noise_sigma:0.0 ~seed:0 ~symmetry:reduce
            ~dominance:reduce machine g
        in
        let seen =
          if reduce then
            Some (Engine.seen_create (Space.canonicalize (Evaluator.space ev)))
          else None
        in
        let o =
          Engine.run
            ~budget:(Budget.make ~max_trials:120 ())
            ?seen
            ~start:(Mapping.default_start g machine)
            ev (Ccd.make ~rotations:2 ev)
        in
        (o.Engine.perf, Evaluator.symmetry_skips ev)
      in
      let base_perf, _ = run ~reduce:false in
      let red_perf, skips = run ~reduce:true in
      Alcotest.(check bool)
        (app.App.app_name ^ " reduced no worse at equal trials")
        true
        (red_perf <= base_perf +. 1e-12);
      if skips > 0 then incr apps_with_skips)
    small_apps;
  Alcotest.(check bool) "skips on at least 3 apps" true (!apps_with_skips >= 3)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_orbits_partition;
    Alcotest.test_case "clones form one orbit" `Quick test_clones_one_orbit;
    Alcotest.test_case "preset nodes form one class" `Quick test_node_classes;
    QCheck_alcotest.to_alcotest prop_canonical_stable;
    Alcotest.test_case "random_mapping is canonical" `Quick
      test_random_mapping_canonical;
    Alcotest.test_case "canonical cost certificate" `Quick
      test_canonical_cost_certificate;
    Alcotest.test_case "seen-set checkpoint round-trip" `Quick test_seen_roundtrip;
    Alcotest.test_case "driver resume with symmetry" `Quick
      test_driver_resume_with_symmetry;
    Alcotest.test_case "reduced search acceptance (all apps)" `Quick
      test_reduced_search_never_worse;
  ]
