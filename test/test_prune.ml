(* Bound-and-prune evaluation: pruning must be invisible to every
   search decision, and the bounded simulator / delta bind paths must
   be bit-identical to their unbounded / full counterparts. *)

let machine_for (app : App.t) =
  if app.App.app_name = "Maestro" then Presets.lassen ~nodes:1 else Presets.shepard ~nodes:1

(* -------- golden decision identity: prune on == prune off -------- *)

let algos =
  [
    ("ccd", fun ev -> Ccd.search ~rotations:2 ev);
    ("cd", fun ev -> Cd.search ev);
    ("annealing", fun ev -> Annealing.search ~max_evals:150 ev);
  ]

let run_leg ~prune (app : App.t) algo =
  let machine = machine_for app in
  let g = app.App.graph ~nodes:1 ~input:(List.hd (app.App.inputs ~nodes:1)) in
  let ev = Evaluator.create ~runs:3 ~prune ~seed:5 machine g in
  let best, perf = algo ev in
  (best, perf, List.map snd (Evaluator.trace ev), Evaluator.stats ev)

let test_golden_identity () =
  List.iter
    (fun (app : App.t) ->
      List.iter
        (fun (algo_name, algo) ->
          let label = Printf.sprintf "%s/%s" app.App.app_name algo_name in
          let b_off, p_off, tr_off, st_off = run_leg ~prune:false app algo in
          let b_on, p_on, tr_on, st_on = run_leg ~prune:true app algo in
          Alcotest.(check bool) (label ^ " same best mapping") true
            (Mapping.equal b_off b_on);
          Alcotest.(check (float 0.0)) (label ^ " same best perf") p_off p_on;
          Alcotest.(check (list (float 0.0))) (label ^ " same improvement trace")
            tr_off tr_on;
          Alcotest.(check int) (label ^ " same suggestions")
            st_off.Evaluator.s_suggested st_on.Evaluator.s_suggested;
          Alcotest.(check int) (label ^ " pruning off cuts nothing") 0
            st_off.Evaluator.s_cut_sims)
        algos)
    App.all

let test_pruning_actually_cuts () =
  (* the identity above would hold trivially if pruning never fired *)
  let _, _, _, st = run_leg ~prune:true App.stencil (fun ev -> Ccd.search ~rotations:2 ev) in
  Alcotest.(check bool) "some evaluations were cut" true (st.Evaluator.s_cut_evals > 0);
  Alcotest.(check bool) "some runs were skipped" true (st.Evaluator.s_cut_runs > 0);
  Alcotest.(check bool) "some sims were aborted" true (st.Evaluator.s_cut_sims > 0)

(* -------- simulate_bounded edge cases -------- *)

let sim_setup () =
  let g, _, _ = Fixtures.shared_halo () in
  let machine = Fixtures.default_machine () in
  let sc = Exec.scratch (Exec.compile machine g) in
  let m = Mapping.default_start g machine in
  (sc, m)

let makespan_of = function
  | Ok (r : Exec.result) -> r.Exec.makespan
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let check_result_eq label (a : Exec.result) (b : Exec.result) =
  Alcotest.(check (float 0.0)) (label ^ " makespan") a.Exec.makespan b.Exec.makespan;
  Alcotest.(check (float 0.0)) (label ^ " per_iteration") a.Exec.per_iteration
    b.Exec.per_iteration;
  Alcotest.(check (array (float 0.0))) (label ^ " task_times") a.Exec.task_times
    b.Exec.task_times;
  Alcotest.(check (array (float 0.0))) (label ^ " proc_busy") a.Exec.proc_busy
    b.Exec.proc_busy;
  Alcotest.(check (float 0.0)) (label ^ " bytes_moved") a.Exec.bytes_moved
    b.Exec.bytes_moved;
  Alcotest.(check (array (float 0.0))) (label ^ " channel_bytes") a.Exec.channel_bytes
    b.Exec.channel_bytes;
  Alcotest.(check int) (label ^ " n_copies") a.Exec.n_copies b.Exec.n_copies;
  Alcotest.(check int) (label ^ " demotions") a.Exec.demotions b.Exec.demotions

let test_cutoff_zero () =
  let sc, m = sim_setup () in
  match Exec.simulate_bounded ~cutoff:0.0 sc m with
  | Ok (Exec.Cut t) -> Alcotest.(check (float 0.0)) "cut at time zero" 0.0 t
  | Ok (Exec.Finished _) -> Alcotest.fail "finished under a zero cutoff"
  | Error e -> Alcotest.fail (Placement.error_to_string e)

let test_cutoff_at_and_above_makespan () =
  let sc, m = sim_setup () in
  let full = makespan_of (Exec.simulate ~seed:9 sc m) in
  (* the final completion event pops at exactly [full]: an inclusive
     cutoff there must cut, certifying makespan >= full *)
  (match Exec.simulate_bounded ~seed:9 ~cutoff:full sc m with
  | Ok (Exec.Cut t) ->
      Alcotest.(check bool) "cut time <= makespan" true (t <= full);
      Alcotest.(check bool) "cut time positive" true (t > 0.0)
  | Ok (Exec.Finished _) -> Alcotest.fail "finished with cutoff = makespan"
  | Error e -> Alcotest.fail (Placement.error_to_string e));
  match
    ( Exec.simulate_bounded ~seed:9 ~cutoff:(full *. (1.0 +. 1e-9)) sc m,
      Exec.simulate ~seed:9 sc m )
  with
  | Ok (Exec.Finished r), Ok r_ref -> check_result_eq "just-above cutoff" r_ref r
  | Ok (Exec.Cut _), _ -> Alcotest.fail "cut above the makespan"
  | Error e, _ | _, Error e -> Alcotest.fail (Placement.error_to_string e)

let test_cutoff_with_noise () =
  let sc, m = sim_setup () in
  (* unbounded simulate_bounded must be draw-for-draw identical *)
  (match
     ( Exec.simulate_bounded ~noise_sigma:0.05 ~seed:42 sc m,
       Exec.simulate ~noise_sigma:0.05 ~seed:42 sc m )
   with
  | Ok (Exec.Finished r), Ok r_ref -> check_result_eq "noisy unbounded" r_ref r
  | Ok (Exec.Cut _), _ -> Alcotest.fail "cut without a cutoff"
  | Error e, _ | _, Error e -> Alcotest.fail (Placement.error_to_string e));
  let full = makespan_of (Exec.simulate ~noise_sigma:0.05 ~seed:42 sc m) in
  match Exec.simulate_bounded ~noise_sigma:0.05 ~seed:42 ~cutoff:(full /. 2.0) sc m with
  | Ok (Exec.Cut t) ->
      (* the cut time is the first event clock at or past the cutoff *)
      Alcotest.(check bool) "noisy cut in [cutoff, makespan]" true
        (t >= full /. 2.0 && t <= full)
  | Ok (Exec.Finished _) -> Alcotest.fail "finished past a half-makespan cutoff"
  | Error e -> Alcotest.fail (Placement.error_to_string e)

(* -------- lower bounds certify the runs they stand in for -------- *)

let test_lower_bounds_certified () =
  (* a 2-node machine exercises the channel floor (cross-node halo
     copies) on top of the per-processor busy bound *)
  let machine = Presets.shepard ~nodes:2 in
  let g = App.stencil.App.graph ~nodes:2 ~input:"200x200" in
  let sc = Exec.scratch (Exec.compile machine g) in
  let m0 = Mapping.default_start g machine in
  let candidates =
    m0
    :: List.filter
         (Mapping.is_valid g machine)
         (List.concat_map
            (fun (c : Graph.collection) ->
              [ Mapping.set_mem m0 c.Graph.cid Kinds.Zero_copy;
                Mapping.set_mem m0 c.Graph.cid Kinds.Frame_buffer ])
            (Graph.collections g))
  in
  List.iter
    (fun m ->
      match Exec.static_lower_bound sc m with
      | Error _ -> () (* strict placement may OOM; nothing to certify *)
      | Ok s ->
          Alcotest.(check bool) "static floor is nonnegative" true (s >= 0.0);
          List.iter
            (fun seed ->
              let lb =
                match Exec.run_lower_bound ~seed sc m with
                | Ok l -> l
                | Error e -> Alcotest.fail (Placement.error_to_string e)
              in
              let mk = makespan_of (Exec.simulate ~seed sc m) in
              Alcotest.(check bool) "static floor <= per-run bound" true (s <= lb);
              Alcotest.(check bool) "per-run bound <= that run's makespan" true
                (lb <= mk))
            [ 1; 2; 3; 4; 5 ];
          (* noise-free: the bound must hold for the deterministic run *)
          let lb0 =
            match Exec.run_lower_bound ~noise_sigma:0.0 sc m with
            | Ok l -> l
            | Error e -> Alcotest.fail (Placement.error_to_string e)
          in
          let mk0 = makespan_of (Exec.simulate ~noise_sigma:0.0 sc m) in
          Alcotest.(check bool) "noise-free bound <= noise-free makespan" true
            (lb0 <= mk0))
    candidates

(* -------- delta binds: patched placement == full re-resolve -------- *)

let neighbor_chain g machine =
  (* a CCD-like walk: each mapping differs from its predecessor in one
     or two coordinates *)
  let m0 = Mapping.default_start g machine in
  let task0 = g.Graph.tasks.(0) in
  let steps =
    List.concat_map
      (fun (c : Graph.collection) ->
        [ (fun m -> Mapping.set_mem m c.Graph.cid Kinds.Zero_copy);
          (fun m -> Mapping.set_mem m c.Graph.cid Kinds.Frame_buffer);
          (fun m ->
            Mapping.set_mem (Mapping.set_proc m task0.Graph.tid Kinds.Cpu) c.Graph.cid
              Kinds.System) ])
      (Graph.collections g)
  in
  List.rev
    (List.fold_left
       (fun acc step ->
         let prev = List.hd acc in
         let next = step prev in
         if Mapping.is_valid g machine next then next :: acc else acc)
       [ m0 ] steps)

let test_delta_bind_bitwise () =
  let g, _, _ = Fixtures.shared_halo () in
  let machine = Fixtures.default_machine () in
  let prob = Exec.compile machine g in
  let sc_chain = Exec.scratch prob in
  let chain = neighbor_chain g machine in
  Alcotest.(check bool) "chain is long enough" true (List.length chain > 3);
  List.iter
    (fun m ->
      let fresh = Exec.scratch prob in
      match (Exec.simulate ~seed:4 sc_chain m, Exec.simulate ~seed:4 fresh m) with
      | Ok r_delta, Ok r_full -> check_result_eq "delta vs full" r_full r_delta
      | Error e, _ | _, Error e -> Alcotest.fail (Placement.error_to_string e))
    chain;
  Alcotest.(check bool) "delta path exercised" true (Exec.delta_binds sc_chain > 0);
  Alcotest.(check int) "fresh scratches never delta-bind" 0
    (Exec.delta_binds (Exec.scratch prob))

let test_delta_bind_fallback_disabled () =
  let g, _, _ = Fixtures.shared_halo () in
  let machine = Fixtures.default_machine () in
  let sc = Exec.scratch (Exec.compile machine g) in
  List.iter
    (fun m ->
      match Exec.simulate ~fallback:true ~seed:4 sc m with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Placement.error_to_string e))
    (neighbor_chain g machine);
  Alcotest.(check int) "fallback mode never delta-binds" 0 (Exec.delta_binds sc);
  Alcotest.(check bool) "fallback mode full-binds" true (Exec.full_binds sc > 0)

(* -------- partial evaluations resume bit-exactly -------- *)

let test_partial_resume_exact () =
  let g, _, _, out, _ = Fixtures.pipeline () in
  let machine = Fixtures.default_machine () in
  let good = Mapping.default_start g machine in
  let bad = Mapping.set_mem good out Kinds.Zero_copy in
  let mk prune = Evaluator.create ~runs:3 ~noise_sigma:0.01 ~prune ~seed:1 machine g in
  (* reference: unpruned evaluator sees good then bad *)
  let ev_ref = mk false in
  let p_good_ref = Evaluator.evaluate ev_ref good in
  let p_bad_ref = Evaluator.evaluate ev_ref bad in
  (* pruned evaluator: bad is cut at the incumbent bound... *)
  let ev = mk true in
  let p_good = Evaluator.evaluate ev good in
  Alcotest.(check (float 0.0)) "incumbent identical" p_good_ref p_good;
  let cut_value = Evaluator.evaluate ~bound:p_good ev bad in
  Alcotest.(check bool) "cut value certifies a loser" true (cut_value >= p_good);
  Alcotest.(check int) "evaluation was cut" 1 (Evaluator.cut_evals ev);
  Alcotest.(check int) "cut candidate not recorded" 1 (Profiles_db.size (Evaluator.db ev));
  (* ...and an unbounded re-suggestion resumes with the original seeds
     and reproduces the unpruned measurement bit-for-bit *)
  let p_bad = Evaluator.evaluate ev bad in
  Alcotest.(check (float 0.0)) "resumed perf identical" p_bad_ref p_bad;
  (match (Profiles_db.find (Evaluator.db ev_ref) bad, Profiles_db.find (Evaluator.db ev) bad) with
  | Some a, Some b ->
      Alcotest.(check (list (float 0.0))) "resumed runs identical" a.Profiles_db.runs
        b.Profiles_db.runs
  | _ -> Alcotest.fail "bad mapping missing from a db");
  (* later candidates see the same noise streams: seed budgets matched *)
  let m3 = Mapping.set_proc good (List.hd (Array.to_list g.Graph.tasks)).Graph.tid Kinds.Cpu in
  if Mapping.is_valid g machine m3 then
    Alcotest.(check (float 0.0)) "next candidate unaffected"
      (Evaluator.evaluate ev_ref m3) (Evaluator.evaluate ev m3)

let test_still_pruned_on_repeat () =
  let g, _, _, out, _ = Fixtures.pipeline () in
  let machine = Fixtures.default_machine () in
  let good = Mapping.default_start g machine in
  let bad = Mapping.set_mem good out Kinds.Zero_copy in
  let ev = Evaluator.create ~runs:3 ~noise_sigma:0.01 ~seed:1 machine g in
  let p_good = Evaluator.evaluate ev good in
  ignore (Evaluator.evaluate ~bound:p_good ev bad);
  let sims = Evaluator.cut_sims ev in
  ignore (Evaluator.evaluate ~bound:p_good ev bad);
  Alcotest.(check int) "re-suggestion answered from the partial record" sims
    (Evaluator.cut_sims ev);
  Alcotest.(check int) "both suggestions counted as cut" 2 (Evaluator.cut_evals ev)

let test_noop_counter () =
  let g, _, _, _, _ = Fixtures.pipeline () in
  let machine = Fixtures.default_machine () in
  let ev = Evaluator.create ~runs:2 ~noise_sigma:0.0 ~seed:1 machine g in
  ignore (Cd.search ev);
  (* CD re-proposes the incumbent's own coordinates on every sweep *)
  Alcotest.(check bool) "noop neighbors skipped" true (Evaluator.noop_skips ev > 0);
  Alcotest.(check int) "stats snapshot agrees" (Evaluator.noop_skips ev)
    (Evaluator.stats ev).Evaluator.s_noop_skips

let suite =
  [
    Alcotest.test_case "golden identity" `Slow test_golden_identity;
    Alcotest.test_case "pruning cuts" `Quick test_pruning_actually_cuts;
    Alcotest.test_case "cutoff zero" `Quick test_cutoff_zero;
    Alcotest.test_case "cutoff at makespan" `Quick test_cutoff_at_and_above_makespan;
    Alcotest.test_case "cutoff with noise" `Quick test_cutoff_with_noise;
    Alcotest.test_case "lower bounds certified" `Quick test_lower_bounds_certified;
    Alcotest.test_case "delta bind bitwise" `Quick test_delta_bind_bitwise;
    Alcotest.test_case "delta bind fallback" `Quick test_delta_bind_fallback_disabled;
    Alcotest.test_case "partial resume exact" `Quick test_partial_resume_exact;
    Alcotest.test_case "repeat prune cheap" `Quick test_still_pruned_on_repeat;
    Alcotest.test_case "noop counter" `Quick test_noop_counter;
  ]
