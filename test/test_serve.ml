(* The serve daemon's core, driven in-process (no domains, no sockets:
   Server.step runs slices deterministically on this thread), proving
   the service guarantees:

   - an exact repeat is answered from the result memo at submit time —
     no slice runs, no simulation — bit-equal to the cold answer;
   - a long search cannot starve a short one (FIFO re-queue between
     slices);
   - a server restarted from its state directory resumes an in-flight
     search decision-identically to an uninterrupted run;
   - near-repeats warm-start from the cached incumbent;
   - the cache counters surface through the status response. *)

let cfg ?(algo = Driver.Ccd { rotations = 2 }) ?(seed = 0) ~max_trials () =
  {
    Slice.default_cfg with
    Slice.algo;
    runs = 3;
    seed;
    max_trials = Some max_trials;
  }

let stencil ~nodes = { Wire.default_workload with Wire.w_app = Some "stencil"; w_nodes = nodes }

let map_req ?(warm = true) ~id ~cfg workload =
  Wire.Map { m_id = id; workload; cfg; wait = false; warm }

let counters_of = function
  | Wire.R_status { counters; _ } -> counters
  | _ -> Alcotest.fail "expected a status response"

let counter cs name =
  match List.assoc_opt name cs with
  | Some v -> v
  | None -> Alcotest.failf "status counter %s missing" name

let result_of srv id =
  match Server.handle srv (Wire.Poll { p_id = id }) with
  | Wire.R_result p -> p
  | Wire.R_error { message; _ } -> Alcotest.failf "poll %s: %s" id message
  | _ -> Alcotest.fail "expected a result response"

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "automap_serve_test_%d_%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists d then
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
    else Unix.mkdir d 0o755;
    d

(* ---- warm repeat: memo hit, bit-equal, no search ---------------------- *)

let check_warm_repeat () =
  let srv = Server.create ~slice_trials:20 () in
  let c = cfg ~max_trials:50 () in
  (match Server.handle srv (map_req ~id:"cold" ~cfg:c (stencil ~nodes:1)) with
  | Wire.R_accepted _ -> ()
  | _ -> Alcotest.fail "cold map must be accepted");
  Server.drain srv;
  let cold = result_of srv "cold" in
  Alcotest.(check bool) "cold done" true (cold.Wire.r_state = Wire.Done);
  Alcotest.(check bool) "cold not cached" false cold.Wire.r_cached;
  let slices_before = counter (counters_of (Server.handle srv Wire.Status)) "slices" in
  (* the repeat is answered synchronously at submit — R_result, not
     R_accepted — and runs zero slices, hence zero simulations *)
  let warm =
    match Server.handle srv (map_req ~id:"warm" ~cfg:c (stencil ~nodes:1)) with
    | Wire.R_result p -> p
    | _ -> Alcotest.fail "exact repeat must be answered immediately"
  in
  let slices_after = counter (counters_of (Server.handle srv Wire.Status)) "slices" in
  Alcotest.(check int) "no slice ran for the repeat" slices_before slices_after;
  Alcotest.(check bool) "repeat marked cached" true warm.Wire.r_cached;
  Alcotest.(check (option string)) "same mapping" cold.Wire.r_mapping warm.Wire.r_mapping;
  Alcotest.(check (option string))
    "bit-equal perf" cold.Wire.r_perf_hex warm.Wire.r_perf_hex;
  Alcotest.(check int) "same trial count" cold.Wire.r_trials warm.Wire.r_trials

(* ---- fairness: a long search does not starve a short one -------------- *)

let check_interleaving () =
  let srv = Server.create ~slice_trials:20 () in
  let long =
    map_req ~warm:false ~id:"long"
      ~cfg:(cfg ~algo:(Driver.Random_walk { max_evals = 100000 }) ~max_trials:100000 ())
      (stencil ~nodes:1)
  in
  let short = map_req ~warm:false ~id:"short" ~cfg:(cfg ~max_trials:10 ()) (stencil ~nodes:1) in
  ignore (Server.handle srv long);
  ignore (Server.handle srv short);
  (* slice 1: the long job runs one quantum and re-queues BEHIND the
     short job; slice 2 must therefore be the short job, to completion *)
  Alcotest.(check bool) "slice 1 ran" true (Server.step srv);
  Alcotest.(check bool) "slice 2 ran" true (Server.step srv);
  let s = result_of srv "short" in
  let l = result_of srv "long" in
  Alcotest.(check bool) "short finished" true (s.Wire.r_state = Wire.Done);
  Alcotest.(check bool) "long still in flight" true (l.Wire.r_state <> Wire.Done);
  Alcotest.(check bool) "long made progress" true (l.Wire.r_trials > 0)

(* ---- restart: resume is decision-identical ---------------------------- *)

let check_restart_identity () =
  let c = cfg ~algo:(Driver.Random_walk { max_evals = 150 }) ~max_trials:150 () in
  let req id = map_req ~warm:false ~id ~cfg:c (stencil ~nodes:2) in
  (* interrupted: run two slices, then abandon the server mid-search —
     its state directory is all that survives (as after SIGKILL) *)
  let dir = fresh_dir () in
  let a = Server.create ~slice_trials:25 ~state_dir:dir () in
  ignore (Server.handle a (req "job"));
  ignore (Server.step a);
  ignore (Server.step a);
  Alcotest.(check bool) "still unfinished when abandoned" true
    ((result_of a "job").Wire.r_state <> Wire.Done);
  (* restart from disk *)
  let b = Server.create ~slice_trials:25 ~state_dir:dir () in
  Alcotest.(check int) "one job recovered" 1 (Server.recover b);
  Server.drain b;
  let resumed = result_of b "job" in
  (* reference: the same request, uninterrupted *)
  let r = Server.create ~slice_trials:25 () in
  ignore (Server.handle r (req "job"));
  Server.drain r;
  let straight = result_of r "job" in
  Alcotest.(check bool) "resumed finished" true (resumed.Wire.r_state = Wire.Done);
  Alcotest.(check (option string))
    "same mapping as uninterrupted" straight.Wire.r_mapping resumed.Wire.r_mapping;
  Alcotest.(check (option string))
    "bit-equal perf" straight.Wire.r_perf_hex resumed.Wire.r_perf_hex;
  Alcotest.(check int) "same trials" straight.Wire.r_trials resumed.Wire.r_trials;
  Alcotest.(check bool) "state files cleaned after completion" true
    (Sys.readdir dir = [||])

(* ---- warm start for near-repeats -------------------------------------- *)

let check_warm_start () =
  let srv = Server.create ~slice_trials:20 () in
  ignore (Server.handle srv (map_req ~id:"first" ~cfg:(cfg ~max_trials:50 ()) (stencil ~nodes:1)));
  Server.drain srv;
  (* different seed => different memo key, same workload => incumbent *)
  let near = map_req ~id:"near" ~cfg:(cfg ~seed:7 ~max_trials:50 ()) (stencil ~nodes:1) in
  (match Server.handle srv near with
  | Wire.R_accepted _ -> ()
  | Wire.R_result _ -> Alcotest.fail "near-repeat must not hit the result memo"
  | _ -> Alcotest.fail "unexpected response");
  Server.drain srv;
  let p = result_of srv "near" in
  Alcotest.(check bool) "near-repeat done" true (p.Wire.r_state = Wire.Done);
  Alcotest.(check bool) "warm-started from the incumbent" true p.Wire.r_warm_started;
  let cs = counters_of (Server.handle srv Wire.Status) in
  Alcotest.(check bool) "warm_starts counted" true (counter cs "warm_starts" >= 1);
  (* a cold-pinned request must not warm-start *)
  (match
     Server.handle srv
       (map_req ~warm:false ~id:"pinned" ~cfg:(cfg ~seed:9 ~max_trials:50 ()) (stencil ~nodes:1))
   with
  | Wire.R_accepted _ -> ()
  | _ -> Alcotest.fail "unexpected response");
  Server.drain srv;
  Alcotest.(check bool) "warm=false stays cold" false
    (result_of srv "pinned").Wire.r_warm_started

(* ---- counters and analyze --------------------------------------------- *)

let check_counters () =
  let srv = Server.create ~slice_trials:20 () in
  let c = cfg ~max_trials:50 () in
  ignore (Server.handle srv (map_req ~id:"a" ~cfg:c (stencil ~nodes:1)));
  Server.drain srv;
  ignore (Server.handle srv (map_req ~id:"b" ~cfg:c (stencil ~nodes:1)));
  let cs = counters_of (Server.handle srv Wire.Status) in
  Alcotest.(check bool) "compile cache hit across slices" true
    (counter cs "compile_hits" >= 1);
  Alcotest.(check int) "one compile for one workload" 1 (counter cs "compile_misses");
  Alcotest.(check int) "repeat hit the result memo" 1 (counter cs "result_hits");
  Alcotest.(check bool) "compiled problem has weight" true
    (counter cs "resident_bytes" > 0);
  Alcotest.(check bool) "profiles pooled" true (counter cs "pool_entries" >= 1);
  Alcotest.(check int) "no evictions in a small run" 0 (counter cs "evictions")

let check_analyze_and_errors () =
  let srv = Server.create () in
  (match
     Server.handle srv (Wire.Analyze { an_id = "an1"; workload = stencil ~nodes:1 })
   with
  | Wire.R_analysis { ra_id = "an1"; report } ->
      Alcotest.(check bool) "report has lines" true (List.length report > 0)
  | _ -> Alcotest.fail "expected an analysis response");
  (match Server.handle srv (Wire.Poll { p_id = "ghost" }) with
  | Wire.R_error _ -> ()
  | _ -> Alcotest.fail "unknown job must be an error");
  (match
     Server.handle srv
       (Wire.Analyze
          { an_id = "an2"; workload = { (stencil ~nodes:1) with Wire.w_app = Some "nosuch" } })
   with
  | Wire.R_error { message; _ } ->
      Alcotest.(check bool) "names the app" true (Str_helpers.contains message "nosuch")
  | _ -> Alcotest.fail "unknown app must be an error");
  (match Server.handle_line srv "{nonsense" with
  | Wire.R_error _ -> ()
  | _ -> Alcotest.fail "unparseable line must be an error");
  (* hostile field values must become error responses, never exceptions
     out of handle (nodes:0 used to raise through Machine.make) *)
  (match
     Server.handle_line srv {|{"type":"map","id":"bad-nodes","app":"stencil","nodes":0}|}
   with
  | Wire.R_error { message; _ } ->
      Alcotest.(check bool) "names nodes" true (Str_helpers.contains message "nodes")
  | _ -> Alcotest.fail "nodes:0 must be a typed error");
  match
    Server.handle_line srv {|{"type":"analyze","id":"neg","app":"stencil","nodes":-3}|}
  with
  | Wire.R_error _ -> ()
  | _ -> Alcotest.fail "negative nodes must be a typed error"

(* ---- the LRU cache underneath ----------------------------------------- *)

let check_cache_lru () =
  let c = Cache.create ~max_entries:2 () in
  Cache.put c "a" 1 ~weight:10;
  Cache.put c "b" 2 ~weight:10;
  ignore (Cache.find c "a");    (* refresh a: b is now LRU *)
  Cache.put c "c" 3 ~weight:10; (* evicts b *)
  Alcotest.(check bool) "a survives (recently used)" true (Cache.mem c "a");
  Alcotest.(check bool) "b evicted (LRU)" false (Cache.mem c "b");
  Alcotest.(check bool) "c resident" true (Cache.mem c "c");
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "resident weight tracked" 20 s.Cache.resident_bytes

let check_cache_weight_cap () =
  let c = Cache.create ~max_entries:100 ~max_bytes:25 () in
  Cache.put c "a" 1 ~weight:10;
  Cache.put c "b" 2 ~weight:10;
  Cache.put c "c" 3 ~weight:10; (* 30 > 25: evict a *)
  Alcotest.(check bool) "oldest evicted for weight" false (Cache.mem c "a");
  Alcotest.(check int) "two resident" 2 (Cache.length c);
  (* a single oversized entry is kept: it must be usable once *)
  Cache.put c "huge" 4 ~weight:1000;
  Alcotest.(check bool) "oversized entry resident" true (Cache.mem c "huge");
  Alcotest.(check int) "alone in the cache" 1 (Cache.length c)

let suite =
  [
    Alcotest.test_case "warm repeat: memo hit, bit-equal, zero slices" `Quick
      check_warm_repeat;
    Alcotest.test_case "a long search does not starve a short one" `Quick
      check_interleaving;
    Alcotest.test_case "restart resumes decision-identically" `Quick
      check_restart_identity;
    Alcotest.test_case "near-repeats warm-start from the incumbent" `Quick
      check_warm_start;
    Alcotest.test_case "status surfaces the cache counters" `Quick check_counters;
    Alcotest.test_case "analyze inline; errors are typed" `Quick
      check_analyze_and_errors;
    Alcotest.test_case "cache: LRU order and stats" `Quick check_cache_lru;
    Alcotest.test_case "cache: weight cap and oversized entries" `Quick
      check_cache_weight_cap;
  ]
