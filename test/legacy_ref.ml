(* Verbatim copies of the pre-engine per-algorithm search loops, kept
   as *reference implementations* for the engine equivalence suite
   (test_engine.ml).  The production loops were deleted when every
   algorithm moved onto Search.Engine; these copies pin down the exact
   legacy decision sequence — bound choices, RNG draw order, budget
   check points, incumbent updates — so any engine change that would
   silently alter a search decision fails the equivalence tests.

   Do not "improve" this file: its value is being frozen. *)

(* ------------------------------------------------------------------ *)
(* Descent (legacy lib/search/descent.ml)                              *)
(* ------------------------------------------------------------------ *)

let test_mapping ev candidate (best, best_perf) =
  let perf = Evaluator.evaluate ~bound:best_perf ev candidate in
  if perf < best_perf then begin
    Evaluator.note_incumbent ev candidate;
    (candidate, perf)
  end
  else (best, best_perf)

let optimize_task ev ~overlap ~should_stop (task : Graph.task) (f0, p0) =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let incumbent = ref (f0, p0) in
  let test candidate =
    if not (should_stop ()) then
      if Mapping.equal candidate (fst !incumbent) then Evaluator.note_noop_neighbor ev
      else incumbent := test_mapping ev candidate !incumbent
  in
  List.iter
    (fun (d, strat) ->
      let f, _ = !incumbent in
      test (Mapping.set_strategy (Mapping.set_distribute f task.tid d) task.tid strat))
    (Space.distribution_choices space);
  let live_kinds = Space.proc_choices space task.tid in
  List.iter
    (fun k ->
      if not (List.memq k live_kinds) then
        Evaluator.note_dead_coords ev
          (List.length task.args * List.length (Space.mem_choices space k)))
    (Space.proc_choices_all space task.tid);
  List.iter
    (fun k ->
      List.iter
        (fun (c : Graph.collection) ->
          let live_mems = Space.mem_choices_for space ~cid:c.cid k in
          let dead = List.length (Space.mem_choices space k) - List.length live_mems in
          if dead > 0 then Evaluator.note_dead_coords ev dead;
          List.iter
            (fun r ->
              let f, _ = !incumbent in
              let f' = Mapping.set_mem (Mapping.set_proc f task.tid k) c.cid r in
              let f'' =
                match overlap with
                | None -> f'
                | Some o ->
                    Colocation.apply g machine ~overlap:o ~mapping:f' ~t:task.tid
                      ~c:c.cid ~k ~r
              in
              test f'')
            live_mems)
        (Profile.order_args_by_size task))
    live_kinds;
  !incumbent

let sweep ev ~overlap ~should_stop ~profile (f0, p0) =
  let g = Evaluator.graph ev in
  List.fold_left
    (fun acc task ->
      if should_stop () then acc else optimize_task ev ~overlap ~should_stop task acc)
    (f0, p0)
    (Profile.order_tasks_by_runtime g profile)

(* ------------------------------------------------------------------ *)
(* CD (legacy lib/search/cd.ml)                                        *)
(* ------------------------------------------------------------------ *)

let cd_search ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  Evaluator.note_incumbent ev f0;
  let should_stop () = Evaluator.virtual_time ev > budget in
  let profile = Evaluator.profile_for ev f0 in
  sweep ev ~overlap:None ~should_stop ~profile (f0, p0)

(* ------------------------------------------------------------------ *)
(* CCD (legacy lib/search/ccd.ml)                                      *)
(* ------------------------------------------------------------------ *)

let ccd_search ?(rotations = 5) ?start ?(budget = infinity) ev =
  if rotations < 2 then invalid_arg "Ccd.search: rotations must be at least 2";
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  Evaluator.note_incumbent ev f0;
  let should_stop () = Evaluator.virtual_time ev > budget in
  let c0 = Overlap.of_graph g in
  let prune_per_rotation =
    let e0 = Overlap.n_edges c0 in
    if e0 = 0 then 0 else ((e0 + rotations - 2) / (rotations - 1))
  in
  let rec rotate r c (f, p) =
    if r > rotations || should_stop () then (f, p)
    else begin
      let overlap = if Overlap.is_empty c then None else Some c in
      let profile = Evaluator.profile_for ev f in
      let f, p = sweep ev ~overlap ~should_stop ~profile (f, p) in
      rotate (r + 1) (Overlap.prune_lightest c prune_per_rotation) (f, p)
    end
  in
  rotate 1 c0 (f0, p0)

(* ------------------------------------------------------------------ *)
(* Annealing (legacy lib/search/annealing.ml)                          *)
(* ------------------------------------------------------------------ *)

let mutate_valid g space rng parent =
  let dims = Array.of_list (Space.dims space) in
  match Rng.choose rng dims with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid
        (match Mapping.strategy_of parent tid with
        | Mapping.Blocked -> Mapping.Cyclic
        | Mapping.Cyclic -> Mapping.Blocked)
  | Space.Processor tid ->
      let choices = Space.proc_choices space tid in
      let k = Rng.choose_list rng choices in
      let m = Mapping.set_proc parent tid k in
      List.fold_left
        (fun acc (c : Graph.collection) ->
          if Kinds.accessible k (Mapping.mem_of acc c.cid) then acc
          else
            match Kinds.accessible_mem_kinds k with
            | mk :: _ -> Mapping.set_mem acc c.cid mk
            | [] -> acc)
        m (Graph.task g tid).args
  | Space.Memory cid ->
      let owner = (Graph.collection g cid).owner in
      let k = Mapping.proc_of parent owner in
      Mapping.set_mem parent cid
        (Rng.choose_list rng (Space.mem_choices_for space ~cid k))

let annealing_search ?(seed = 11) ?(max_evals = 2000) ?(t0 = 0.3) ?(cooling = 0.995)
    ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let rng = Rng.create seed in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  Evaluator.note_incumbent ev f0;
  let current = ref (f0, p0) in
  let best = ref (f0, p0) in
  let temp = ref t0 in
  let evals = ref 0 in
  while !evals < max_evals && Evaluator.virtual_time ev <= budget do
    incr evals;
    let candidate = mutate_valid g space rng (fst !current) in
    let u = Rng.float rng 1.0 in
    let _, pcur = !current in
    let threshold =
      if u <= 0.0 then infinity
      else
        let bump = p0 *. Float.max !temp 1e-9 *. -.log u in
        if Float.is_finite bump then pcur +. bump else infinity
    in
    let perf = Evaluator.evaluate ~bound:threshold ev candidate in
    if perf < threshold then begin
      Evaluator.note_incumbent ev candidate;
      current := (candidate, perf)
    end;
    if perf < snd !best then best := (candidate, perf);
    temp := !temp *. cooling
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Random search (legacy lib/search/random_search.ml)                  *)
(* ------------------------------------------------------------------ *)

let random_search ?(seed = 7) ?(max_evals = 1000) ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let rng = Rng.create seed in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let best = ref (f0, Evaluator.evaluate ev f0) in
  let evals = ref 0 in
  while !evals < max_evals && Evaluator.virtual_time ev <= budget do
    incr evals;
    let candidate = Space.random_mapping space rng in
    let perf = Evaluator.evaluate ~bound:(snd !best) ev candidate in
    if perf < snd !best then best := (candidate, perf)
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Ensemble tuner (legacy lib/search/ensemble.ml)                      *)
(* ------------------------------------------------------------------ *)

type bandit_arm = { mutable uses : int; mutable wins : int }

let arm_score arm = float_of_int (arm.wins + 1) /. float_of_int (arm.uses + 2)

let pick_arm rng ~exploration arms =
  if Rng.float rng 1.0 < exploration then Rng.int rng (Array.length arms)
  else begin
    let best = ref 0 in
    Array.iteri (fun i a -> if arm_score a > arm_score arms.(!best) then best := i) arms;
    !best
  end

let flip_strategy = function
  | Mapping.Blocked -> Mapping.Cyclic
  | Mapping.Cyclic -> Mapping.Blocked

let mutate space rng parent =
  let dims = Array.of_list (Space.dims space) in
  match Rng.choose rng dims with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid (flip_strategy (Mapping.strategy_of parent tid))
  | Space.Processor tid ->
      Mapping.set_proc parent tid (Rng.choose_list rng Kinds.all_proc_kinds)
  | Space.Memory cid ->
      Mapping.set_mem parent cid (Rng.choose_list rng Kinds.all_mem_kinds)

let crossover g rng a b =
  Mapping.make g
    ~strategy:(fun t -> Mapping.strategy_of (if Rng.bool rng then a else b) t.tid)
    ~distribute:(fun t ->
      Mapping.distribute_of (if Rng.bool rng then a else b) t.tid)
    ~proc:(fun t -> Mapping.proc_of (if Rng.bool rng then a else b) t.tid)
    ~mem:(fun c -> Mapping.mem_of (if Rng.bool rng then a else b) c.cid)

let pattern_step space cursor parent =
  let dims = Array.of_list (Space.dims space) in
  let d = dims.(cursor mod Array.length dims) in
  match d with
  | Space.Distribution tid ->
      Mapping.set_distribute parent tid (not (Mapping.distribute_of parent tid))
  | Space.Strategy tid ->
      Mapping.set_strategy parent tid (flip_strategy (Mapping.strategy_of parent tid))
  | Space.Processor tid ->
      let next = function Kinds.Cpu -> Kinds.Gpu | Kinds.Gpu -> Kinds.Cpu in
      Mapping.set_proc parent tid (next (Mapping.proc_of parent tid))
  | Space.Memory cid ->
      let next = function
        | Kinds.System -> Kinds.Zero_copy
        | Kinds.Zero_copy -> Kinds.Frame_buffer
        | Kinds.Frame_buffer -> Kinds.System
      in
      Mapping.set_mem parent cid (next (Mapping.mem_of parent cid))

let ensemble_search ?(config = Ensemble.default_config) ?start ?(budget = infinity) ev =
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let space = Evaluator.space ev in
  let rng = Rng.create config.Ensemble.seed in
  let f0 = match start with Some f -> f | None -> Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev f0 in
  let best = ref (f0, p0) in
  let arms = Array.init 4 (fun _ -> { uses = 0; wins = 0 }) in
  let pattern_cursor = ref 0 in
  let elites () =
    match Profiles_db.top (Evaluator.db ev) config.Ensemble.elite_size with
    | [] -> [ fst !best ]
    | es -> List.map (fun e -> e.Profiles_db.mapping) es
  in
  let propose arm =
    match arm with
    | 0 -> Space.random_unconstrained space rng
    | 1 -> mutate space rng (Rng.choose_list rng (elites ()))
    | 2 -> (
        match elites () with
        | [ only ] -> mutate space rng only
        | es -> crossover g rng (Rng.choose_list rng es) (Rng.choose_list rng es))
    | 3 ->
        let c = !pattern_cursor in
        incr pattern_cursor;
        pattern_step space c (fst !best)
    | _ -> assert false
  in
  let suggestions = ref 0 in
  while
    !suggestions < config.Ensemble.max_suggestions
    && Evaluator.virtual_time ev <= budget
  do
    incr suggestions;
    let arm_idx = pick_arm rng ~exploration:config.Ensemble.exploration arms in
    let candidate = propose arm_idx in
    Evaluator.note_suggestion_overhead ev config.Ensemble.suggestion_overhead;
    let perf = Evaluator.evaluate ev candidate in
    let arm = arms.(arm_idx) in
    arm.uses <- arm.uses + 1;
    if perf < snd !best then begin
      arm.wins <- arm.wins + 1;
      best := (candidate, perf)
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Portfolio (legacy lib/search/portfolio.ml)                          *)
(* ------------------------------------------------------------------ *)

let portfolio_search ?(members = Portfolio.default_members) ?(budget = infinity)
    ?(seed = 0) ev =
  if members = [] then invalid_arg "Portfolio.search: no members";
  let share =
    if Float.is_finite budget then budget /. float_of_int (List.length members)
    else infinity
  in
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let start0 = Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev start0 in
  List.fold_left
    (fun (best, perf) member ->
      let deadline = Evaluator.virtual_time ev +. share in
      let result =
        match member with
        | Portfolio.Ccd rotations -> ccd_search ~rotations ~start:best ~budget:deadline ev
        | Portfolio.Cd -> cd_search ~start:best ~budget:deadline ev
        | Portfolio.Annealing ->
            annealing_search ~seed:(seed + 13) ~start:best ~budget:deadline ev
        | Portfolio.Random ->
            random_search ~seed:(seed + 29) ~start:best ~budget:deadline ev
      in
      let m, p = result in
      if p < perf then (m, p) else (best, perf))
    (start0, p0) members
