(* Allocation discipline of the hot evaluation path.

   Two gates:

   - the event loop proper: once the scratch is warm (bind cached,
     noise stream cached, heaps grown), re-simulating a candidate
     allocates exactly zero minor-heap words — the property Exec's
     quiet interface documents and the GC-quiet steady state rests on;

   - the whole search: minor words per suggested candidate of a full
     batched CCD run stays within the budget committed in
     golden/alloc_budget.txt, so allocation regressions anywhere in
     the suggest/build/evaluate cycle fail loudly instead of slowly
     eroding the steady state.

   Both measurements only make sense compiled to native code —
   bytecode boxes freely — so the tests skip under other backends. *)

let native = match Sys.backend_type with Sys.Native -> true | _ -> false

let skip_unless_native () =
  if not native then Alcotest.skip ()

let problem () =
  let machine = Presets.shepard ~nodes:4 in
  let g = App.stencil.App.graph ~nodes:4 ~input:"500x500" in
  (machine, g)

(* Gc.minor_words is [@@noalloc] with an unboxed float result: reading
   the counter does not itself disturb the measurement. *)
let minor_words_during f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_quiet_steady_state_zero_alloc () =
  skip_unless_native ();
  let machine, g = problem () in
  let sc = Exec.scratch (Exec.compile machine g) in
  let m = Mapping.default_start g machine in
  let run seed =
    Exec.simulate_quiet sc m ~noise_sigma:0.03 ~seed ~fallback:false
      ~iterations:g.Graph.iterations ~cutoff:infinity
  in
  (* warm-up: first run binds and grows every pool; a second run under
     a different seed fills that seed's noise stream *)
  Alcotest.(check int) "finished" Exec.st_finished (run 1);
  Alcotest.(check int) "finished" Exec.st_finished (run 2);
  (* steady state: same mapping, already-filled seeds.  Nothing but the
     simulation itself may sit inside the measured window — even an
     Alcotest check allocates hundreds of words. *)
  for trial = 1 to 50 do
    let seed = 1 + (trial mod 2) in
    let w0 = Gc.minor_words () in
    let st = run seed in
    let w = Gc.minor_words () -. w0 in
    if st <> Exec.st_finished then Alcotest.failf "simulation failed (trial %d)" trial;
    if w <> 0.0 then
      Alcotest.failf "steady-state simulate_quiet allocated %.0f minor words (trial %d)"
        w trial
  done

(* Budget gate: a full batched CCD search's minor-heap traffic per
   suggested candidate, measured over the second (steady-state) search
   on a process that has already run one.  The committed budget is
   generous against run-to-run jitter but small enough that an
   accidental per-candidate record or closure (tens of words x
   thousands of candidates) trips it. *)
let read_budget () =
  let path = Filename.concat "golden" "alloc_budget.txt" in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec next () =
        match String.trim (input_line ic) with
        | "" -> next ()
        | line when line.[0] = '#' -> next ()
        | line -> float_of_string line
      in
      next ())

let search_words_per_candidate () =
  let machine, g = problem () in
  let ev = Evaluator.create ~prune:true ~incremental:true ~seed:3 machine g in
  let out =
    Engine.run
      ~start:(Mapping.default_start g machine)
      ev
      (Ccd.make ~batch:true ~rotations:2 ev)
  in
  let suggested = (Evaluator.stats ev).Evaluator.s_suggested in
  Alcotest.(check bool) "searched" true (suggested > 0 && out.Engine.trials > 0);
  let ev2 = Evaluator.create ~prune:true ~incremental:true ~seed:3 machine g in
  let words =
    minor_words_during (fun () ->
        ignore
          (Engine.run
             ~start:(Mapping.default_start g machine)
             ev2
             (Ccd.make ~batch:true ~rotations:2 ev2)))
  in
  words /. float_of_int suggested

let test_search_alloc_budget () =
  skip_unless_native ();
  let budget = read_budget () in
  let per_cand = search_words_per_candidate () in
  if per_cand > budget then
    Alcotest.failf
      "batched CCD search allocates %.1f minor words per suggested candidate, over \
       the committed budget of %.1f (golden/alloc_budget.txt)"
      per_cand budget

let suite =
  [
    Alcotest.test_case "quiet steady state allocates zero minor words" `Quick
      test_quiet_steady_state_zero_alloc;
    Alcotest.test_case "search minor words per candidate within budget" `Quick
      test_search_alloc_budget;
  ]
