(* Finer-grained search-layer coverage: TestMapping semantics, the
   OptimizeTask inner loop, ensemble technique internals, driver edge
   cases.  The TestMapping/OptimizeTask/sweep tests exercise the frozen
   legacy loops in Legacy_ref — the reference the engine is proven
   decision-identical against in test_engine.ml — so their semantics
   stay covered after the production loops moved into Engine/Descent. *)

let machine () = Fixtures.default_machine ()

let make_ev ?(runs = 2) g =
  Evaluator.create ~runs ~noise_sigma:0.0 ~seed:1 (machine ()) g

let test_test_mapping_strict_improvement () =
  let g, _, _, out, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let good = Mapping.default_start g (machine ()) in
  let p_good = Evaluator.evaluate ev good in
  let worse = Mapping.set_mem good out Kinds.Zero_copy in
  (* candidate worse: incumbent kept *)
  let kept, pk = Legacy_ref.test_mapping ev worse (good, p_good) in
  Alcotest.(check bool) "incumbent kept" true (Mapping.equal kept good);
  Alcotest.(check (float 0.0)) "perf kept" p_good pk;
  (* candidate better: adopted *)
  let p_worse = Evaluator.evaluate ev worse in
  let adopted, pa = Legacy_ref.test_mapping ev good (worse, p_worse) in
  Alcotest.(check bool) "better adopted" true (Mapping.equal adopted good);
  Alcotest.(check bool) "perf improves" true (pa < p_worse)

let test_test_mapping_equal_not_adopted () =
  (* ties keep the incumbent (strict < in Algorithm 1 line 22) *)
  let g, _, _, _, _ = Fixtures.pipeline () in
  let ev = make_ev g in
  let m = Mapping.default_start g (machine ()) in
  let p = Evaluator.evaluate ev m in
  let other = Mapping.set_distribute m 0 false in
  let incumbent = (other, p) in
  let kept, _ = Legacy_ref.test_mapping ev m incumbent in
  (* evaluate m returns the same cached value p: not strictly better *)
  Alcotest.(check bool) "tie keeps incumbent" true (Mapping.equal kept other)

let test_optimize_task_only_touches_target () =
  (* OptimizeTask for one task must leave other tasks' processor
     decisions intact unless colocation dragged them *)
  let g, (t1, t2, t3), _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let start = Mapping.default_start g (machine ()) in
  let p0 = Evaluator.evaluate ev start in
  let task = Graph.task g t1 in
  let best, _ =
    Legacy_ref.optimize_task ev ~overlap:None ~should_stop:(fun () -> false) task
      (start, p0)
  in
  Alcotest.(check bool) "valid" true (Mapping.is_valid g (machine ()) best);
  (* without colocation, t2/t3 keep their kinds *)
  Alcotest.(check bool) "t2 untouched" true
    (Kinds.equal_proc (Mapping.proc_of best t2) (Mapping.proc_of start t2));
  Alcotest.(check bool) "t3 untouched" true
    (Kinds.equal_proc (Mapping.proc_of best t3) (Mapping.proc_of start t3))

let test_sweep_respects_stop () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let start = Mapping.default_start g (machine ()) in
  let p0 = Evaluator.evaluate ev start in
  let before = Evaluator.suggested ev in
  let best, p =
    Legacy_ref.sweep ev ~overlap:None ~should_stop:(fun () -> true)
      ~profile:(Profile.uniform g) (start, p0)
  in
  Alcotest.(check int) "no suggestions under stop" before (Evaluator.suggested ev);
  Alcotest.(check bool) "incumbent returned" true (Mapping.equal best start && p = p0)

let test_ensemble_techniques_listed () =
  Alcotest.(check int) "four techniques" 4 (List.length Ensemble.technique_names)

let test_ensemble_respects_max_suggestions () =
  let g, _, _ = Fixtures.shared_halo () in
  let ev = make_ev g in
  let config = { Ensemble.default_config with max_suggestions = 25; seed = 3 } in
  ignore (Ensemble.search ~config ev);
  (* +1 for the starting-point evaluation *)
  Alcotest.(check bool) "bounded" true (Evaluator.suggested ev <= 26)

let test_driver_final_top_one () =
  let g, _, _ = Fixtures.shared_halo () in
  let r =
    Driver.run ~runs:2 ~final_top:1 ~final_runs:3 ~noise_sigma:0.0 ~seed:0 Driver.Cd
      (machine ()) g
  in
  Alcotest.(check int) "final stats n" 3 r.Driver.final_stats.Stats.n;
  Alcotest.(check bool) "db exposed" true (Profiles_db.size r.Driver.db > 0)

let test_driver_budget_zero_still_returns () =
  let g, _, _ = Fixtures.shared_halo () in
  let r =
    Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~budget:0.0
      (Driver.Ccd { rotations = 5 })
      (machine ()) g
  in
  Alcotest.(check bool) "valid result even with zero budget" true
    (Mapping.is_valid g (machine ()) r.Driver.best)

let test_driver_warm_db () =
  let g, _, _ = Fixtures.shared_halo () in
  let r1 = Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 Driver.Cd (machine ()) g in
  match Profiles_db.load g (Profiles_db.save r1.Driver.db) with
  | Error e -> Alcotest.fail e
  | Ok db ->
      let r2 =
        Driver.run ~runs:2 ~final_runs:2 ~noise_sigma:0.0 ~seed:0 ~db Driver.Cd
          (machine ()) g
      in
      Alcotest.(check int) "warm driver re-executes nothing" 0 r2.Driver.evaluated;
      Alcotest.(check (float 1e-9)) "same search result" r1.Driver.search_perf
        r2.Driver.search_perf

let test_heft_kind_pool_cost () =
  (* upward ranks must be finite and positive on a real app *)
  let machine = Presets.shepard ~nodes:1 in
  let g = App.htr.App.graph ~nodes:1 ~input:"8x8y9z" in
  let ranks = Heft.upward_ranks machine g in
  Array.iter
    (fun r -> Alcotest.(check bool) "finite positive" true (Float.is_finite r && r > 0.0))
    ranks

let suite =
  [
    Alcotest.test_case "test_mapping strict" `Quick test_test_mapping_strict_improvement;
    Alcotest.test_case "test_mapping ties" `Quick test_test_mapping_equal_not_adopted;
    Alcotest.test_case "optimize_task scope" `Quick test_optimize_task_only_touches_target;
    Alcotest.test_case "sweep stop" `Quick test_sweep_respects_stop;
    Alcotest.test_case "ensemble techniques" `Quick test_ensemble_techniques_listed;
    Alcotest.test_case "ensemble cap" `Quick test_ensemble_respects_max_suggestions;
    Alcotest.test_case "driver final_top 1" `Quick test_driver_final_top_one;
    Alcotest.test_case "driver zero budget" `Quick test_driver_budget_zero_still_returns;
    Alcotest.test_case "driver warm db" `Quick test_driver_warm_db;
    Alcotest.test_case "heft ranks" `Quick test_heft_kind_pool_cost;
  ]
