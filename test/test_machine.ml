let machine () = Presets.testbed ~nodes:2

let test_kinds_accessibility () =
  Alcotest.(check bool) "cpu-sys" true (Kinds.accessible Kinds.Cpu Kinds.System);
  Alcotest.(check bool) "cpu-zc" true (Kinds.accessible Kinds.Cpu Kinds.Zero_copy);
  Alcotest.(check bool) "cpu-fb" false (Kinds.accessible Kinds.Cpu Kinds.Frame_buffer);
  Alcotest.(check bool) "gpu-fb" true (Kinds.accessible Kinds.Gpu Kinds.Frame_buffer);
  Alcotest.(check bool) "gpu-zc" true (Kinds.accessible Kinds.Gpu Kinds.Zero_copy);
  Alcotest.(check bool) "gpu-sys" false (Kinds.accessible Kinds.Gpu Kinds.System)

let test_kinds_strings () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "proc round-trip"
        (Some (Kinds.proc_kind_to_string k))
        (Option.map Kinds.proc_kind_to_string
           (Kinds.proc_kind_of_string (Kinds.proc_kind_to_string k))))
    Kinds.all_proc_kinds;
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "mem round-trip"
        (Some (Kinds.mem_kind_to_string k))
        (Option.map Kinds.mem_kind_to_string
           (Kinds.mem_kind_of_string (Kinds.mem_kind_to_string k))))
    Kinds.all_mem_kinds;
  Alcotest.(check bool) "garbage rejected" true (Kinds.mem_kind_of_string "nope" = None)

let test_accessible_kinds_fastest_first () =
  Alcotest.(check bool) "gpu list" true
    (Kinds.accessible_mem_kinds Kinds.Gpu = [ Kinds.Frame_buffer; Kinds.Zero_copy ]);
  Alcotest.(check bool) "cpu list" true
    (Kinds.accessible_mem_kinds Kinds.Cpu = [ Kinds.System; Kinds.Zero_copy ])

let test_inventory () =
  let m = machine () in
  (* testbed: 1 socket x 2 cores + 1 gpu per node, 2 nodes *)
  Alcotest.(check int) "processors" 6 (Array.length m.Machine.processors);
  (* per node: 1 SYS + 1 ZC + 1 FB *)
  Alcotest.(check int) "memories" 6 (Array.length m.Machine.memories);
  Alcotest.(check int) "cpus per node" 2 (Machine.procs_of_kind_per_node m Kinds.Cpu);
  Alcotest.(check int) "gpus per node" 1 (Machine.procs_of_kind_per_node m Kinds.Gpu)

let test_proc_lookup () =
  let m = machine () in
  let p = Machine.proc m ~node:1 ~kind:Kinds.Gpu ~local:0 in
  Alcotest.(check int) "node" 1 p.Machine.pnode;
  Alcotest.(check bool) "kind" true (Kinds.equal_proc p.Machine.pkind Kinds.Gpu);
  Alcotest.check_raises "bad node" (Invalid_argument "Machine.proc: bad node") (fun () ->
      ignore (Machine.proc m ~node:9 ~kind:Kinds.Cpu ~local:0));
  Alcotest.check_raises "bad local" (Invalid_argument "Machine.proc: bad local index")
    (fun () -> ignore (Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:3))

let test_closest_memory () =
  let m = machine () in
  let gpu = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let fb = Machine.closest_memory m gpu Kinds.Frame_buffer in
  Alcotest.(check bool) "fb kind" true (Kinds.equal_mem fb.Machine.mkind Kinds.Frame_buffer);
  Alcotest.(check int) "fb node" 0 fb.Machine.mnode;
  let zc = Machine.closest_memory m gpu Kinds.Zero_copy in
  Alcotest.(check bool) "zc kind" true (Kinds.equal_mem zc.Machine.mkind Kinds.Zero_copy);
  Alcotest.check_raises "gpu cannot address SYS"
    (Invalid_argument "Machine.closest_memory: GPU cannot address SYS") (fun () ->
      ignore (Machine.closest_memory m gpu Kinds.System))

let test_addressable () =
  let m = machine () in
  let cpu = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:0 in
  let sys0 = Machine.closest_memory m cpu Kinds.System in
  Alcotest.(check bool) "cpu addresses own sys" true (Machine.addressable m cpu sys0);
  let cpu1 = Machine.proc m ~node:1 ~kind:Kinds.Cpu ~local:0 in
  Alcotest.(check bool) "cross-node not addressable" false (Machine.addressable m cpu1 sys0)

let test_channels () =
  let m = machine () in
  let gpu0 = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let cpu0 = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:0 in
  let fb0 = Machine.closest_memory m gpu0 Kinds.Frame_buffer in
  let zc0 = Machine.closest_memory m gpu0 Kinds.Zero_copy in
  let sys0 = Machine.closest_memory m cpu0 Kinds.System in
  let gpu1 = Machine.proc m ~node:1 ~kind:Kinds.Gpu ~local:0 in
  let fb1 = Machine.closest_memory m gpu1 Kinds.Frame_buffer in
  Alcotest.(check bool) "same memory" true (Machine.channel_between m fb0 fb0 = Machine.Same_memory);
  Alcotest.(check bool) "fb-zc is pcie" true (Machine.channel_between m fb0 zc0 = Machine.Pcie);
  Alcotest.(check bool) "sys-zc is host" true (Machine.channel_between m sys0 zc0 = Machine.Host_local);
  Alcotest.(check bool) "fb-fb cross node is network" true
    (Machine.channel_between m fb0 fb1 = Machine.Network)

let test_cross_socket_channel () =
  let m = Presets.shepard ~nodes:1 in
  let cpu0 = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:0 in
  let cpu1 = Machine.proc m ~node:0 ~kind:Kinds.Cpu ~local:1 in
  let s0 = Machine.closest_memory m cpu0 Kinds.System in
  let s1 = Machine.closest_memory m cpu1 Kinds.System in
  Alcotest.(check bool) "different sockets" true (s0.Machine.mid <> s1.Machine.mid);
  Alcotest.(check bool) "cross-socket channel" true
    (Machine.channel_between m s0 s1 = Machine.Cross_socket)

let test_copy_cost_monotone () =
  let m = machine () in
  let gpu0 = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let fb0 = Machine.closest_memory m gpu0 Kinds.Frame_buffer in
  let zc0 = Machine.closest_memory m gpu0 Kinds.Zero_copy in
  Alcotest.(check (float 0.0)) "same memory free" 0.0
    (Machine.copy_cost m ~src:fb0 ~dst:fb0 ~bytes:1e9);
  let small = Machine.copy_cost m ~src:fb0 ~dst:zc0 ~bytes:1e6 in
  let big = Machine.copy_cost m ~src:fb0 ~dst:zc0 ~bytes:1e8 in
  Alcotest.(check bool) "monotone in bytes" true (big > small);
  Alcotest.(check bool) "latency floor" true (small > 0.0)

let test_network_fb_staging () =
  (* a cross-node copy out of FB must cost at least the pure-network
     copy of the same bytes from ZC (extra PCIe staging hop) *)
  let m = machine () in
  let gpu0 = Machine.proc m ~node:0 ~kind:Kinds.Gpu ~local:0 in
  let gpu1 = Machine.proc m ~node:1 ~kind:Kinds.Gpu ~local:0 in
  let fb0 = Machine.closest_memory m gpu0 Kinds.Frame_buffer in
  let zc0 = Machine.closest_memory m gpu0 Kinds.Zero_copy in
  let zc1 = Machine.closest_memory m gpu1 Kinds.Zero_copy in
  let fb1 = Machine.closest_memory m gpu1 Kinds.Frame_buffer in
  let bytes = 1e7 in
  let zz = Machine.copy_cost m ~src:zc0 ~dst:zc1 ~bytes in
  let fz = Machine.copy_cost m ~src:fb0 ~dst:zc1 ~bytes in
  let ff = Machine.copy_cost m ~src:fb0 ~dst:fb1 ~bytes in
  Alcotest.(check bool) "fb source costs more" true (fz > zz);
  Alcotest.(check bool) "fb both ends costs most" true (ff > fz)

let test_make_validation () =
  Alcotest.check_raises "bad nodes" (Invalid_argument "Machine.make: nodes must be positive")
    (fun () -> ignore (Presets.testbed ~nodes:0))

let test_cpu_only () =
  let m = Presets.cpu_only ~nodes:1 in
  Alcotest.(check (list bool)) "only cpu available" [ true; false ]
    (List.map
       (fun k -> List.mem k (Machine.proc_kinds_available m))
       [ Kinds.Cpu; Kinds.Gpu ])

let test_mem_kind_capacity () =
  let m = machine () in
  Alcotest.(check (float 1.0)) "fb capacity" 1e9 (Machine.mem_kind_capacity m Kinds.Frame_buffer);
  Alcotest.(check (float 1.0)) "zc capacity" 2e9 (Machine.mem_kind_capacity m Kinds.Zero_copy)

(* Pin the channel classification table documented on
   [Machine.channel]: Cross_socket is *only* SYS<->SYS across sockets
   of one node — FB pairs are Gpu_peer regardless of socket, and ZC is
   socket-agnostic (msocket = -1), so every same-node ZC pairing is
   Host_local. *)
let test_channel_classification_table () =
  let m =
    Machine.make ~name:"chan-table" ~nodes:2
      ~node:
        {
          sockets = 2;
          cores_per_socket = 1;
          gpus = 2;
          sysmem_per_socket = 16e9;
          zc_capacity = 4e9;
          fb_capacity = 8e9;
        }
      ~exec_bw:{ cpu_sys = 50e9; cpu_zc = 30e9; gpu_fb = 400e9; gpu_zc = 20e9 }
      ~compute:
        {
          cpu_flops = 500e9;
          gpu_flops = 4000e9;
          cpu_launch_overhead = 1e-6;
          gpu_launch_overhead = 2e-6;
          runtime_dispatch = 1e-6;
        }
      ~copy:
        {
          memcpy_bw = 20e9;
          cross_socket_bw = 10e9;
          pcie_bw = 12e9;
          gpu_peer_bw = 40e9;
          local_latency = 1e-6;
          net_bandwidth = 10e9;
          net_latency = 3e-6;
        }
      ()
  in
  let mem node kind idx =
    let found = ref [] in
    Array.iter
      (fun (mm : Machine.memory) ->
        if mm.Machine.mnode = node && mm.Machine.mkind = kind then
          found := mm :: !found)
      m.Machine.memories;
    List.nth (List.rev !found) idx
  in
  let sys00 = mem 0 Kinds.System 0
  and sys01 = mem 0 Kinds.System 1
  and sys10 = mem 1 Kinds.System 0
  and zc0 = mem 0 Kinds.Zero_copy 0
  and zc1 = mem 1 Kinds.Zero_copy 0
  and fb00 = mem 0 Kinds.Frame_buffer 0
  and fb01 = mem 0 Kinds.Frame_buffer 1
  and fb10 = mem 1 Kinds.Frame_buffer 0 in
  (* GPUs land on alternating sockets (g mod sockets) *)
  Alcotest.(check int) "fb0 socket" 0 fb00.Machine.msocket;
  Alcotest.(check int) "fb1 socket" 1 fb01.Machine.msocket;
  Alcotest.(check int) "zc socket-agnostic" (-1) zc0.Machine.msocket;
  let chan_name = function
    | Machine.Same_memory -> "same-memory"
    | Machine.Host_local -> "host-local"
    | Machine.Cross_socket -> "cross-socket"
    | Machine.Pcie -> "pcie"
    | Machine.Gpu_peer -> "gpu-peer"
    | Machine.Network -> "network"
  in
  let check name a b want =
    let got = Machine.channel_between m a b in
    Alcotest.(check bool)
      (Printf.sprintf "%s is %s" name (chan_name want))
      true (got = want)
  in
  check "same memory" sys00 sys00 Machine.Same_memory;
  check "SYS<->SYS same node across sockets" sys00 sys01 Machine.Cross_socket;
  check "SYS<->ZC same node" sys00 zc0 Machine.Host_local;
  check "ZC<->SYS other socket" zc0 sys01 Machine.Host_local;
  check "ZC<->FB same node" zc0 fb00 Machine.Pcie;
  check "FB<->SYS same node" fb00 sys00 Machine.Pcie;
  check "FB<->FB same node (across sockets)" fb00 fb01 Machine.Gpu_peer;
  check "SYS<->SYS cross node" sys00 sys10 Machine.Network;
  check "ZC<->ZC cross node" zc0 zc1 Machine.Network;
  check "FB<->FB cross node" fb00 fb10 Machine.Network;
  (* exhaustive: Cross_socket arises for SYS<->SYS pairs only *)
  Array.iter
    (fun (a : Machine.memory) ->
      Array.iter
        (fun (b : Machine.memory) ->
          if Machine.channel_between m a b = Machine.Cross_socket then begin
            Alcotest.(check bool)
              "Cross_socket implies SYS<->SYS" true
              (a.Machine.mkind = Kinds.System && b.Machine.mkind = Kinds.System);
            Alcotest.(check bool)
              "Cross_socket implies same node, different sockets" true
              (a.Machine.mnode = b.Machine.mnode
              && a.Machine.msocket <> b.Machine.msocket)
          end)
        m.Machine.memories)
    m.Machine.memories

let suite =
  [
    Alcotest.test_case "kind accessibility" `Quick test_kinds_accessibility;
    Alcotest.test_case "kind strings" `Quick test_kinds_strings;
    Alcotest.test_case "accessible kinds order" `Quick test_accessible_kinds_fastest_first;
    Alcotest.test_case "inventory" `Quick test_inventory;
    Alcotest.test_case "proc lookup" `Quick test_proc_lookup;
    Alcotest.test_case "closest memory" `Quick test_closest_memory;
    Alcotest.test_case "addressable" `Quick test_addressable;
    Alcotest.test_case "channels" `Quick test_channels;
    Alcotest.test_case "cross-socket" `Quick test_cross_socket_channel;
    Alcotest.test_case "channel classification table" `Quick
      test_channel_classification_table;
    Alcotest.test_case "copy cost" `Quick test_copy_cost_monotone;
    Alcotest.test_case "network FB staging" `Quick test_network_fb_staging;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "cpu-only machine" `Quick test_cpu_only;
    Alcotest.test_case "mem kind capacity" `Quick test_mem_kind_capacity;
  ]
