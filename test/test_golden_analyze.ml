(* Golden analyze reports: the exact text the CLI's [analyze] command
   emits for every bundled app on the Shepard and Lassen presets.
   Regenerate after an intentional report change with:
     for p in shepard lassen; do for a in "circuit n50w200" \
       "stencil 500x500" "pennant 320x90" "htr 8x8y9z" "maestro lf4r16"; do
       set -- $a; dune exec bin/automap_cli.exe -- analyze -a $1 -i $2 \
         -n 2 -c $p -o test/golden/analyze_${1}_${p}.txt; done; done *)

let cases =
  [
    (App.circuit, "n50w200");
    (App.stencil, "500x500");
    (App.pennant, "320x90");
    (App.htr, "8x8y9z");
    (App.maestro, "lf4r16");
  ]

let presets = [ ("shepard", Presets.shepard); ("lassen", Presets.lassen) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* locate the first differing line so a mismatch is actionable *)
let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go n = function
    | x :: xs, y :: ys when x = y -> go (n + 1) (xs, ys)
    | x :: _, y :: _ -> Printf.sprintf "line %d:\n  golden: %s\n  actual: %s" n x y
    | x :: _, [] -> Printf.sprintf "line %d only in golden: %s" n x
    | [], y :: _ -> Printf.sprintf "line %d only in actual: %s" n y
    | [], [] -> "identical"
  in
  go 1 (la, lb)

(* Topology presets: text and strict-JSON reports for a mesh and a
   fat-tree, pinning the topology summary line / object and the routed
   machine stanza.  Regenerate with:
     for c in grid:8x8 fattree:3:4; do
       f=$(echo $c | tr -d ':' | sed 's/fattree34/fattree3_4/'); \
       dune exec bin/automap_cli.exe -- analyze -a stencil -i 500x500 \
         -c $c -o test/golden/analyze_stencil_${f}.txt; \
       dune exec bin/automap_cli.exe -- analyze -a stencil -i 500x500 \
         -c $c --json -o test/golden/analyze_stencil_${f}.json; done
   (grid:8x8 -> grid8x8, fattree:3:4 -> fattree3_4) *)
let topo_cases = [ ("grid:8x8", "grid8x8"); ("fattree:3:4", "fattree3_4") ]

let test_golden_topology () =
  List.iter
    (fun (spec, fname) ->
      let machine =
        match Presets.of_spec spec ~nodes:1 with
        | Ok m -> m
        | Error e -> Alcotest.fail e
      in
      let g = App.stencil.App.graph ~nodes:machine.Machine.nodes ~input:"500x500" in
      let t = Analysis.analyze machine g in
      let check_kind ext render =
        let path = Printf.sprintf "golden/analyze_stencil_%s.%s" fname ext in
        let golden = read_file path in
        let actual = render t in
        if actual <> golden then
          Alcotest.fail
            (Printf.sprintf "%s differs; %s" path (first_diff golden actual))
      in
      check_kind "txt" (Format.asprintf "%a" Analysis.report);
      check_kind "json" Analysis.to_json)
    topo_cases

let test_golden () =
  List.iter
    (fun (pname, mk) ->
      let machine = mk ~nodes:2 in
      List.iter
        (fun ((app : App.t), input) ->
          let g = app.App.graph ~nodes:2 ~input in
          let actual =
            Format.asprintf "%a" Analysis.report (Analysis.analyze machine g)
          in
          let cli_name = String.lowercase_ascii app.App.app_name in
          let path = Printf.sprintf "golden/analyze_%s_%s.txt" cli_name pname in
          let golden = read_file path in
          if actual <> golden then
            Alcotest.fail
              (Printf.sprintf "%s differs; %s" path (first_diff golden actual)))
        cases)
    presets

let suite =
  [
    Alcotest.test_case "analyze reports match golden" `Quick test_golden;
    Alcotest.test_case "topology analyze reports match golden" `Quick
      test_golden_topology;
  ]
