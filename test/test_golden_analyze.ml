(* Golden analyze reports: the exact text the CLI's [analyze] command
   emits for every bundled app on the Shepard and Lassen presets.
   Regenerate after an intentional report change with:
     for p in shepard lassen; do for a in "circuit n50w200" \
       "stencil 500x500" "pennant 320x90" "htr 8x8y9z" "maestro lf4r16"; do
       set -- $a; dune exec bin/automap_cli.exe -- analyze -a $1 -i $2 \
         -n 2 -c $p -o test/golden/analyze_${1}_${p}.txt; done; done *)

let cases =
  [
    (App.circuit, "n50w200");
    (App.stencil, "500x500");
    (App.pennant, "320x90");
    (App.htr, "8x8y9z");
    (App.maestro, "lf4r16");
  ]

let presets = [ ("shepard", Presets.shepard); ("lassen", Presets.lassen) ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* locate the first differing line so a mismatch is actionable *)
let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go n = function
    | x :: xs, y :: ys when x = y -> go (n + 1) (xs, ys)
    | x :: _, y :: _ -> Printf.sprintf "line %d:\n  golden: %s\n  actual: %s" n x y
    | x :: _, [] -> Printf.sprintf "line %d only in golden: %s" n x
    | [], y :: _ -> Printf.sprintf "line %d only in actual: %s" n y
    | [], [] -> "identical"
  in
  go 1 (la, lb)

let test_golden () =
  List.iter
    (fun (pname, mk) ->
      let machine = mk ~nodes:2 in
      List.iter
        (fun ((app : App.t), input) ->
          let g = app.App.graph ~nodes:2 ~input in
          let actual =
            Format.asprintf "%a" Analysis.report (Analysis.analyze machine g)
          in
          let cli_name = String.lowercase_ascii app.App.app_name in
          let path = Printf.sprintf "golden/analyze_%s_%s.txt" cli_name pname in
          let golden = read_file path in
          if actual <> golden then
            Alcotest.fail
              (Printf.sprintf "%s differs; %s" path (first_diff golden actual)))
        cases)
    presets

let suite = [ Alcotest.test_case "analyze reports match golden" `Quick test_golden ]
