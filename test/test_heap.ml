let test_empty () =
  let h : int Heap.t = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Heap.length h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  Alcotest.(check (option (pair (float 0.0) string))) "peek min" (Some (1.0, "a")) (Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c")) (Heap.pop h);
  Alcotest.(check bool) "drained" true (Heap.pop h = None)

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1.0 v) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ] order

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h 5.0 5;
  Heap.push h 1.0 1;
  Alcotest.(check (option (pair (float 0.0) int))) "min" (Some (1.0, 1)) (Heap.pop h);
  Heap.push h 0.5 0;
  Heap.push h 3.0 3;
  Alcotest.(check (option (pair (float 0.0) int))) "new min" (Some (0.5, 0)) (Heap.pop h);
  Alcotest.(check int) "length" 2 (Heap.length h)

let test_clear () =
  let h = Heap.create () in
  Heap.push h 1.0 ();
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  (* clear keeps the heap usable without regrowing from scratch *)
  Heap.push h 2.0 ();
  Alcotest.(check int) "reusable after clear" 1 (Heap.length h)

let test_reset_rewinds_ties () =
  (* after reset, tie-breaking must behave exactly like a fresh heap:
     entries pushed before the reset cannot shadow new sequence
     numbers *)
  let run_ties h =
    List.iter (fun v -> Heap.push h 1.0 v) [ "a"; "b"; "c" ];
    List.init 3 (fun _ -> snd (Option.get (Heap.pop h)))
  in
  let h = Heap.create () in
  let first = run_ties h in
  Heap.reset h;
  let second = run_ties h in
  Alcotest.(check (list string)) "same order after reset" first second

let drain_fheap h =
  let rec go acc =
    if Fheap.is_empty h then List.rev acc
    else begin
      let p = Fheap.top_prio h and v = Fheap.top h in
      Fheap.drop h;
      go ((p, v) :: acc)
    end
  in
  go []

let test_fheap_ordering_and_ties () =
  let h = Fheap.create ~capacity:2 () in
  List.iter (fun (p, v) -> Fheap.push h p v) [ (3.0, 30); (1.0, 10); (1.0, 11); (2.0, 20) ];
  Alcotest.(check (list (pair (float 0.0) int)))
    "sorted, FIFO on ties"
    [ (1.0, 10); (1.0, 11); (2.0, 20); (3.0, 30) ]
    (drain_fheap h);
  Fheap.reset h;
  Alcotest.(check bool) "empty after reset" true (Fheap.is_empty h)

let prop_fheap_matches_heap =
  QCheck.Test.make ~name:"fheap pops in the same order as the boxed heap"
    QCheck.(list (pair (float_range 0.0 100.0) small_nat))
    (fun entries ->
      let fh = Fheap.create () and h = Heap.create () in
      List.iter
        (fun (p, v) ->
          Fheap.push fh p v;
          Heap.push h p v)
        entries;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, v) -> drain ((p, v) :: acc)
      in
      drain [] = drain_fheap fh)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in non-decreasing priority order"
    QCheck.(list (float_range 0.0 1e6))
    (fun ps ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p p) ps;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare ps)

let prop_heap_length =
  QCheck.Test.make ~name:"length tracks pushes and pops"
    QCheck.(list (float_range 0.0 100.0))
    (fun ps ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h p ()) ps;
      let n = List.length ps in
      Heap.length h = n
      &&
      (ignore (Heap.pop h);
       Heap.length h = max 0 (n - 1)))

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "reset rewinds ties" `Quick test_reset_rewinds_ties;
    Alcotest.test_case "fheap ordering and ties" `Quick test_fheap_ordering_and_ties;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_length;
    QCheck_alcotest.to_alcotest prop_fheap_matches_heap;
  ]
