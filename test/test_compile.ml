(* Golden determinism of the compiled simulator (Exec.compile /
   Exec.simulate): for the same seed it must reproduce the reference
   interpreter bit-for-bit, across all five apps; and the parallel
   portfolio must return exactly the sequential portfolio's results. *)

let exact = Alcotest.float 0.0

let check_results name (a : Exec.result) (b : Exec.result) =
  Alcotest.(check exact) (name ^ ": makespan") a.Exec.makespan b.Exec.makespan;
  Alcotest.(check exact) (name ^ ": per_iteration") a.Exec.per_iteration b.Exec.per_iteration;
  Alcotest.(check exact) (name ^ ": bytes_moved") a.Exec.bytes_moved b.Exec.bytes_moved;
  Alcotest.(check int) (name ^ ": n_copies") a.Exec.n_copies b.Exec.n_copies;
  Alcotest.(check int) (name ^ ": demotions") a.Exec.demotions b.Exec.demotions;
  Alcotest.(check (array exact)) (name ^ ": channel_bytes") a.Exec.channel_bytes
    b.Exec.channel_bytes;
  Alcotest.(check (array exact)) (name ^ ": task_times") a.Exec.task_times b.Exec.task_times;
  Alcotest.(check (array exact)) (name ^ ": proc_busy") a.Exec.proc_busy b.Exec.proc_busy

let ok name = function
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %s" name (Placement.error_to_string e)

let seeds = [ 0; 3; 11 ]

(* one scratch per (machine, graph), reused across every mapping, seed
   and sigma below — exactly how the evaluator drives it *)
let check_app machine (app : App.t) =
  let input = List.hd (app.App.inputs ~nodes:machine.Machine.nodes) in
  let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
  let sc = Exec.scratch (Exec.compile machine g) in
  let mappings =
    [
      ("default", Mapping.default_start g machine);
      ("custom", app.App.custom g machine);
      ("all_cpu", Mapping.all_cpu g machine);
    ]
  in
  List.iter
    (fun (mname, mapping) ->
      List.iter
        (fun seed ->
          List.iter
            (fun noise_sigma ->
              let name =
                Printf.sprintf "%s/%s seed=%d sigma=%.2f" app.App.app_name mname seed
                  noise_sigma
              in
              match
                ( Exec.run_reference ~noise_sigma ~seed ~fallback:true machine g mapping,
                  Exec.simulate ~noise_sigma ~seed ~fallback:true sc mapping )
              with
              | Ok a, Ok b -> check_results name a b
              | Error ea, Error eb ->
                  Alcotest.(check string)
                    (name ^ ": same error")
                    (Placement.error_to_string ea)
                    (Placement.error_to_string eb)
              | Ok _, Error e | Error e, Ok _ ->
                  Alcotest.failf "%s: one side failed: %s" name
                    (Placement.error_to_string e))
            [ 0.0; 0.03 ])
        seeds)
    mappings

let test_apps_golden () =
  let machine = Presets.shepard ~nodes:2 in
  List.iter (check_app machine) App.all

let test_fixture_golden_iterations () =
  (* scratch reuse across changing iteration counts, including growth *)
  let machine = Fixtures.default_machine () in
  let g, _, _ = Fixtures.shared_halo ~iterations:2 () in
  let sc = Exec.scratch (Exec.compile machine g) in
  let m = Mapping.default_start g machine in
  List.iter
    (fun iterations ->
      let name = Printf.sprintf "shared_halo iters=%d" iterations in
      let a = ok name (Exec.run_reference ~seed:7 ~iterations machine g m) in
      let b = ok name (Exec.simulate ~seed:7 ~iterations sc m) in
      check_results name a b)
    [ 2; 7; 1; 4 ]

let test_run_matches_reference () =
  (* the compatibility wrapper is the compiled path *)
  let machine = Fixtures.default_machine () in
  let g, _, _, _, inp = Fixtures.pipeline ~iterations:3 () in
  let m = Mapping.set_mem (Mapping.default_start g machine) inp Kinds.Zero_copy in
  let a = ok "run" (Exec.run ~seed:5 machine g m) in
  let b = ok "reference" (Exec.run_reference ~seed:5 machine g m) in
  check_results "wrapper" a b

let test_result_arrays_fresh () =
  (* results returned by earlier simulate calls must survive later ones *)
  let machine = Fixtures.default_machine () in
  let g, _, _ = Fixtures.shared_halo () in
  let sc = Exec.scratch (Exec.compile machine g) in
  let m = Mapping.default_start g machine in
  let a = ok "first" (Exec.simulate ~seed:1 sc m) in
  let snapshot = Array.copy a.Exec.task_times in
  let _b = ok "second" (Exec.simulate ~seed:2 sc m) in
  Alcotest.(check (array exact)) "first result untouched" snapshot a.Exec.task_times

let test_evaluator_unchanged () =
  (* the compiled evaluator must score candidates exactly as the
     reference protocol (run_reference with the evaluator's seed
     schedule: seed * 1_000_003 + k for the k-th execution) *)
  let machine = Fixtures.default_machine () in
  let g, _, _ = Fixtures.shared_halo () in
  let m = Mapping.default_start g machine in
  let runs = 4 and seed = 9 in
  let ev = Evaluator.create ~runs ~seed machine g in
  let got = Evaluator.evaluate ev m in
  let expected =
    let times =
      List.init runs (fun k ->
          let seed = (seed * 1_000_003) + k + 1 in
          match Exec.run_reference ~noise_sigma:0.03 ~seed machine g m with
          | Ok r -> r.Exec.per_iteration
          | Error e -> Alcotest.fail (Placement.error_to_string e))
    in
    (* the evaluator averages newest-first; float addition order matters
       for exactness *)
    Stats.mean (List.rev times)
  in
  Alcotest.(check exact) "evaluator objective" expected got

let test_parallel_map_order () =
  let jobs = List.init 17 (fun i () -> i * i) in
  Alcotest.(check (list int))
    "results in input order"
    (List.init 17 (fun i -> i * i))
    (Parallel.map ~domains:4 jobs)

let test_parallel_map_exception () =
  let jobs =
    List.init 6 (fun i () -> if i = 3 then failwith "boom" else i)
  in
  match Parallel.map ~domains:3 jobs with
  | _ -> Alcotest.fail "expected exception"
  | exception Failure msg -> Alcotest.(check string) "propagated" "boom" msg

let member_result_eq g (a : Parallel.member_result) (b : Parallel.member_result) =
  let mapping = Alcotest.testable (Mapping.pp g) Mapping.equal in
  Alcotest.(check string) "member" a.Parallel.member b.Parallel.member;
  Alcotest.(check exact) "perf" a.Parallel.perf b.Parallel.perf;
  Alcotest.check mapping "mapping" a.Parallel.mapping b.Parallel.mapping;
  Alcotest.(check int) "evaluated" a.Parallel.evaluated b.Parallel.evaluated;
  Alcotest.(check int) "suggested" a.Parallel.suggested b.Parallel.suggested

let test_parallel_equals_sequential () =
  let machine = Fixtures.default_machine () in
  let g, _, _ = Fixtures.shared_halo () in
  let members = [ Portfolio.Ccd 3; Portfolio.Annealing; Portfolio.Random; Portfolio.Cd ] in
  let run domains =
    Parallel.run_members ~domains ~members ~budget:0.5 ~seed:1 ~runs:3 machine g
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check int) "same member count" (List.length seq) (List.length par);
  List.iter2 (member_result_eq g) seq par;
  let bs = Parallel.best seq and bp = Parallel.best par in
  Alcotest.(check string) "same best member" bs.Parallel.member bp.Parallel.member;
  Alcotest.(check exact) "same best perf" bs.Parallel.perf bp.Parallel.perf

let suite =
  [
    Alcotest.test_case "five apps: simulate == reference" `Slow test_apps_golden;
    Alcotest.test_case "scratch reuse across iteration counts" `Quick
      test_fixture_golden_iterations;
    Alcotest.test_case "run wrapper matches reference" `Quick test_run_matches_reference;
    Alcotest.test_case "result arrays are fresh per simulate" `Quick
      test_result_arrays_fresh;
    Alcotest.test_case "evaluator protocol unchanged" `Quick test_evaluator_unchanged;
    Alcotest.test_case "parallel map preserves order" `Quick test_parallel_map_order;
    Alcotest.test_case "parallel map propagates exceptions" `Quick
      test_parallel_map_exception;
    Alcotest.test_case "parallel portfolio == sequential" `Slow
      test_parallel_equals_sequential;
  ]
