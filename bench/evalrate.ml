(* Evaluator-throughput microbenchmark: how many candidate mappings per
   second can the search evaluate?

   For Stencil and Circuit (the two ends of the app spectrum: few big
   group tasks vs. many smaller ones) it measures

     - the reference interpreter (Exec.run_reference: re-derives all
       structure per run — the pre-compile simulator), and
     - the compiled path (Exec.compile once + Exec.simulate per
       candidate against a reused scratch — what Evaluator does),

   each driven with the §5 protocol of [runs] noisy executions per
   candidate, and reports candidate evaluations/sec, simulated task
   instances/sec and the compiled-over-reference speedup.  A second
   section measures the wall-clock speedup of the Domains-parallel
   portfolio (Parallel.run_members) at 1 vs. 4 domains.

   Results go to stdout and to BENCH_evalrate.json so successive PRs
   can track the perf trajectory.

   Usage: dune exec bench/evalrate.exe [-- --smoke] [-- --out FILE]
     --smoke   single tiny pass (CI rot check, seconds not minutes)   *)

let out_file = ref "BENCH_evalrate.json"
let smoke = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out_file := f;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "evalrate: unknown argument %S\n" unknown;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let now = Unix.gettimeofday

(* Stamp the report with the producing commit so JSON files compared
   across PRs identify their code version.  Benchmarks may run from a
   build tree outside any repository: fall back to "unknown". *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* distinct valid candidates, deterministically derived from the search
   space so the bind phase is exercised like a real search *)
let candidates g machine ~count =
  let space = Space.make g machine in
  let rng = Rng.create 12345 in
  let rec gen acc n guard =
    if n = 0 || guard = 0 then acc
    else
      let m = Space.random_unconstrained space rng in
      if Mapping.is_valid g machine m then gen (m :: acc) (n - 1) (guard - 1)
      else gen acc n (guard - 1)
  in
  gen [ Mapping.default_start g machine ] (count - 1) (count * 200)

type rate = { evals_per_sec : float; instances_per_sec : float; evals : int }

let measure_rate ~runs ~min_time ~instances_per_sim sim_candidate mappings =
  (* one untimed pass first: allocator growth, code and page
     first-touch are one-time costs, not part of the steady-state rate
     this benchmark tracks — then repeat whole passes over the
     candidate list until [min_time] elapsed, so rates are stable
     across machine jitter *)
  List.iter (fun m -> sim_candidate ~seed:0 m) mappings;
  let evals = ref 0 in
  let t0 = now () in
  let elapsed () = now () -. t0 in
  while !evals = 0 || elapsed () < min_time do
    List.iter
      (fun m ->
        for r = 1 to runs do
          sim_candidate ~seed:(!evals + r) m
        done;
        incr evals)
      mappings
  done;
  let dt = elapsed () in
  let sims = !evals * runs in
  {
    evals_per_sec = float_of_int !evals /. dt;
    instances_per_sec = float_of_int (sims * instances_per_sim) /. dt;
    evals = !evals;
  }

type app_row = {
  row_app : string;
  row_input : string;
  reference : rate;
  compiled : rate;
  speedup : float;
}

let bench_app (app : App.t) machine ~input ~count ~runs ~min_time =
  let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
  let mappings = candidates g machine ~count in
  let instances_per_sim =
    g.Graph.iterations
    * Array.fold_left (fun acc (t : Graph.task) -> acc + t.group_size) 0 g.Graph.tasks
  in
  let expect_ok = function
    | Ok _ -> ()
    | Error e -> failwith ("evalrate: " ^ Placement.error_to_string e)
  in
  let reference =
    measure_rate ~runs ~min_time ~instances_per_sim
      (fun ~seed m -> expect_ok (Exec.run_reference ~fallback:true ~seed machine g m))
      mappings
  in
  let sc = Exec.scratch (Exec.compile machine g) in
  let compiled =
    measure_rate ~runs ~min_time ~instances_per_sim
      (fun ~seed m -> expect_ok (Exec.simulate ~fallback:true ~seed sc m))
      mappings
  in
  let speedup = compiled.evals_per_sec /. reference.evals_per_sec in
  Printf.printf
    "%-8s %-10s reference %8.1f evals/s | compiled %8.1f evals/s | %5.2fx | %.2e inst/s\n%!"
    app.App.app_name input reference.evals_per_sec compiled.evals_per_sec speedup
    compiled.instances_per_sec;
  { row_app = app.App.app_name; row_input = input; reference; compiled; speedup }

let bench_parallel machine g ~budget ~runs =
  (* an ensemble of independent restarts: 8 jobs over 4 domains keeps
     the workers load-balanced even though members differ in length *)
  let members =
    [
      Portfolio.Ccd 5;
      Portfolio.Annealing;
      Portfolio.Random;
      Portfolio.Ccd 4;
      Portfolio.Cd;
      Portfolio.Ccd 3;
      Portfolio.Annealing;
      Portfolio.Ccd 2;
    ]
  in
  let time domains =
    (* untimed warm-up run: per-process compile, allocator growth and
       first-touch page faults are one-time costs — the reported leg is
       the steady-state pass (domain spawning recurs per run and stays
       in the timed region, as real portfolio overhead) *)
    ignore (Parallel.run_members ~domains ~members ~budget ~seed:1 ~runs machine g);
    let t0 = now () in
    let results = Parallel.run_members ~domains ~members ~budget ~seed:1 ~runs machine g in
    let steps = List.fold_left (fun acc r -> acc + r.Parallel.steps) 0 results in
    (now () -. t0, Parallel.best results, steps)
  in
  (* Timing more domains than cores measures scheduler thrash, not the
     portfolio: clamp the parallel leg to the cores actually available
     (and skip it entirely on a 1-core box — it would just repeat the
     serial leg with extra domain overhead). *)
  let cores = Domain.recommended_domain_count () in
  let domains_requested = 4 in
  let domains_used = max 1 (min domains_requested cores) in
  let t1, best1, steps1 = time 1 in
  if domains_used = 1 then begin
    (* there is nothing to compare against on a 1-core box: reporting a
       1.000x "speedup" would read as a scaling regression, so mark the
       section skipped instead *)
    Printf.printf
      "parallel portfolio (%d members): 1 domain %.2fs (%d engine steps); scaling leg \
       skipped (1 core available, %d domains requested)\n%!"
      (List.length members) t1 steps1 domains_requested;
    (t1, None, domains_requested, domains_used, best1.Parallel.perf, steps1)
  end
  else begin
    let tn, bestn, stepsn = time domains_used in
    assert (best1.Parallel.perf = bestn.Parallel.perf);
    assert (steps1 = stepsn);
    Printf.printf
      "parallel portfolio (%d members): 1 domain %.2fs, %d domains %.2fs -> %.2fx speedup \
       (%d engine steps, %d cores available%s)\n%!"
      (List.length members) t1 domains_used tn (t1 /. tn) steps1 cores
      (if cores < domains_requested then
         Printf.sprintf "; %d domains requested, clamped to the core count"
           domains_requested
       else "");
    (t1, Some tn, domains_requested, domains_used, best1.Parallel.perf, steps1)
  end

let json_rate r =
  Printf.sprintf
    {|{"evals_per_sec": %.2f, "instances_per_sec": %.2f, "evals": %d}|}
    r.evals_per_sec r.instances_per_sec r.evals

let () =
  let machine = Presets.shepard ~nodes:1 in
  let count = if !smoke then 2 else 30 in
  let runs = if !smoke then 1 else 7 in
  let min_time = if !smoke then 0.0 else 1.0 in
  let apps =
    [ (App.stencil, if !smoke then "500x500" else "2000x2000");
      (App.circuit, if !smoke then "n100w400" else "n200w800") ]
  in
  Printf.printf "evalrate: %s mode, %d candidates x %d runs per measurement\n%!"
    (if !smoke then "smoke" else "bench")
    count runs;
  let rows =
    List.map (fun (app, input) -> bench_app app machine ~input ~count ~runs ~min_time) apps
  in
  let par_g =
    App.circuit.App.graph ~nodes:1 ~input:(if !smoke then "n100w400" else "n200w800")
  in
  let par_budget = if !smoke then 0.02 else infinity in
  let par_runs = if !smoke then 1 else 7 in
  let t1, tn, par_requested, par_used, par_perf, par_steps =
    bench_parallel machine par_g ~budget:par_budget ~runs:par_runs
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"evalrate\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n  \"apps\": [\n" !smoke);
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"app\": %S, \"input\": %S, \"reference\": %s, \"compiled\": %s, \
            \"speedup\": %.3f}%s\n"
           row.row_app row.row_input (json_rate row.reference) (json_rate row.compiled)
           row.speedup
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ],\n";
  (match tn with
  | None ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"parallel_portfolio\": {\"domains_requested\": %d, \"domains_used\": %d, \
            \"cores_available\": %d, \"skipped\": true, \
            \"wall_1\": %.4f, \"best_perf\": %.6e, \"engine_steps\": %d}\n"
           par_requested par_used
           (Domain.recommended_domain_count ())
           t1 par_perf par_steps)
  | Some tn ->
      Buffer.add_string buf
        (Printf.sprintf
           "  \"parallel_portfolio\": {\"domains_requested\": %d, \"domains_used\": %d, \
            \"cores_available\": %d, \"oversubscribed\": %b, \"skipped\": false, \
            \"wall_1\": %.4f, \"wall_n\": %.4f, \"speedup\": %.3f, \"best_perf\": %.6e, \
            \"engine_steps\": %d}\n"
           par_requested par_used
           (Domain.recommended_domain_count ())
           (par_used < par_requested) t1 tn (t1 /. tn) par_perf par_steps));
  Buffer.add_string buf "}\n";
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out_file
