(* Serve-daemon request-latency benchmark: what does cross-request
   memoization actually buy?

   For each app the same map request is issued three ways against an
   in-process server (no sockets, no domains — Server.step runs the
   slices on this thread, so the numbers isolate the service layer
   from transport and scheduling noise):

   - cold:       first ever request for the workload — compiles the
                 simulation, runs the full sliced search;
   - warm:       the exact same request again — must be answered from
                 the result memo at submit time, bit-equal to cold,
                 with zero slices run.  Measured over many repeats
                 (a single hit is sub-microsecond);
   - warm-start: the same workload under a different seed — misses the
                 memo but seeds its search from the cached incumbent
                 and shares the compiled simulation and profiles pool.

   Hard gates (the bench fails, it does not just report):
   - the warm answer is bit-identical to the cold answer (mapping and
     %h-printed perf) and runs zero slices;
   - warm is at least 50x faster than cold.

   Results go to stdout and BENCH_servrate.json.

   Usage: dune exec bench/servrate.exe [-- --smoke] [-- --out FILE]
     --smoke   two apps, small trial budget (CI rot check)            *)

let out_file = ref "BENCH_servrate.json"
let smoke = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out_file := f;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "servrate: unknown argument %S\n" unknown;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let now = Unix.gettimeofday

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

type row = {
  row_app : string;
  row_input : string;
  cold_ms : float;
  cold_trials : int;
  warm_us : float;      (* per-request, averaged over warm_reps *)
  warm_reps : int;
  speedup : float;      (* cold / warm *)
  warm_start_ms : float;
  warm_start_trials : int;
  perf_hex : string;
}

let counter resp name =
  match resp with
  | Wire.R_status { counters; _ } -> (
      match List.assoc_opt name counters with
      | Some v -> v
      | None -> failwith ("servrate: missing status counter " ^ name))
  | _ -> failwith "servrate: expected a status response"

let result_of srv id =
  match Server.handle srv (Wire.Poll { p_id = id }) with
  | Wire.R_result p -> p
  | _ -> failwith ("servrate: no result for job " ^ id)

let run_row srv ~max_trials app =
  let name = app.App.app_name in
  let input = match app.App.inputs ~nodes:1 with i :: _ -> i | [] -> "" in
  let workload =
    { Wire.default_workload with Wire.w_app = Some name; w_input = Some input }
  in
  let cfg seed = { Slice.default_cfg with Slice.max_trials = Some max_trials; seed } in
  let submit ?(warm = true) id c =
    Server.handle srv (Wire.Map { m_id = id; workload; cfg = c; wait = false; warm })
  in
  (* cold: submit + run every slice to completion *)
  let t0 = now () in
  (match submit ~warm:false (name ^ "-cold") (cfg 0) with
  | Wire.R_accepted _ -> ()
  | _ -> failwith (name ^ ": cold request not accepted"));
  Server.drain srv;
  let cold_ms = 1e3 *. (now () -. t0) in
  let cold = result_of srv (name ^ "-cold") in
  if cold.Wire.r_state <> Wire.Done then failwith (name ^ ": cold search failed");
  (* warm: the exact repeat, many times; every one must be a memo hit *)
  let slices_before = counter (Server.handle srv Wire.Status) "slices" in
  let warm_reps = 200 in
  let t1 = now () in
  let last = ref None in
  for i = 1 to warm_reps do
    match submit (Printf.sprintf "%s-warm-%d" name i) (cfg 0) with
    | Wire.R_result p -> last := Some p
    | _ -> failwith (name ^ ": warm repeat was not answered immediately")
  done;
  let warm_us = 1e6 *. (now () -. t1) /. float_of_int warm_reps in
  let slices_after = counter (Server.handle srv Wire.Status) "slices" in
  if slices_after <> slices_before then
    failwith (name ^ ": warm repeats ran slices — the memo was not used");
  let warm = Option.get !last in
  if not (warm.Wire.r_cached) then failwith (name ^ ": warm repeat not marked cached");
  if warm.Wire.r_mapping <> cold.Wire.r_mapping || warm.Wire.r_perf_hex <> cold.Wire.r_perf_hex
  then failwith (name ^ ": warm answer differs from cold — memo must be bit-exact");
  let speedup = cold_ms *. 1e3 /. warm_us in
  if speedup < 50.0 then
    failwith
      (Printf.sprintf "%s: warm speedup %.1fx below the 50x gate (cold %.2fms, warm %.1fus)"
         name speedup cold_ms warm_us);
  (* warm-start: same workload, different search identity *)
  let t2 = now () in
  (match submit (name ^ "-near") (cfg 1) with
  | Wire.R_accepted _ -> ()
  | Wire.R_result _ -> failwith (name ^ ": near-repeat unexpectedly hit the memo")
  | _ -> failwith (name ^ ": near-repeat rejected"));
  Server.drain srv;
  let warm_start_ms = 1e3 *. (now () -. t2) in
  let near = result_of srv (name ^ "-near") in
  if near.Wire.r_state <> Wire.Done then failwith (name ^ ": warm-start search failed");
  if not near.Wire.r_warm_started then
    failwith (name ^ ": near-repeat did not warm-start from the incumbent");
  Printf.printf
    "%-8s cold %8.2fms (%d trials) | warm %7.2fus x%d (%.0fx, bit-equal) | warm-start \
     %8.2fms (%d trials)\n%!"
    name cold_ms cold.Wire.r_trials warm_us warm_reps speedup warm_start_ms
    near.Wire.r_trials;
  {
    row_app = name;
    row_input = input;
    cold_ms;
    cold_trials = cold.Wire.r_trials;
    warm_us;
    warm_reps;
    speedup;
    warm_start_ms;
    warm_start_trials = near.Wire.r_trials;
    perf_hex = Option.value ~default:"" cold.Wire.r_perf_hex;
  }

let () =
  let max_trials = if !smoke then 60 else 400 in
  let apps =
    if !smoke then
      List.filter
        (fun a ->
          List.mem (String.lowercase_ascii a.App.app_name) [ "stencil"; "circuit" ])
        App.all
    else App.all
  in
  let srv = Server.create ~slice_trials:40 () in
  Printf.printf "servrate: %d apps, %d trials per search, slice 40 (%s)\n%!"
    (List.length apps) max_trials
    (if !smoke then "smoke" else "full");
  let rows = List.map (run_row srv ~max_trials) apps in
  let status = Server.handle srv Wire.Status in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"bench\": \"servrate\",\n");
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" !smoke);
  Buffer.add_string buf (Printf.sprintf "  \"max_trials\": %d,\n" max_trials);
  Buffer.add_string buf "  \"apps\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           {|    {"app": %S, "input": %S, "cold_ms": %.3f, "cold_trials": %d, "warm_us": %.3f, "warm_reps": %d, "warm_speedup": %.1f, "warm_bit_equal": true, "warm_start_ms": %.3f, "warm_start_trials": %d, "perf_hex": %S}%s|}
           r.row_app r.row_input r.cold_ms r.cold_trials r.warm_us r.warm_reps
           r.speedup r.warm_start_ms r.warm_start_trials r.perf_hex
           (if i = List.length rows - 1 then "\n" else ",\n"))
      )
    rows;
  Buffer.add_string buf "  ],\n";
  (let geo =
     exp
       (List.fold_left (fun acc r -> acc +. log r.speedup) 0.0 rows
       /. float_of_int (List.length rows))
   in
   Buffer.add_string buf (Printf.sprintf "  \"geomean_warm_speedup\": %.1f,\n" geo));
  Buffer.add_string buf "  \"counters\": {";
  (match status with
  | Wire.R_status { counters; _ } ->
      List.iteri
        (fun i (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s\"%s\": %d" (if i = 0 then "" else ", ") k v))
        counters
  | _ -> ());
  Buffer.add_string buf "}\n}\n";
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n" !out_file
