(* Allocation-rate benchmark: how many minor-heap words does the search
   allocate per suggested candidate, and at what candidate throughput,
   for each evaluation mode?

   For Stencil and Circuit it runs one full CCD search per leg —

     full         prune off, full replay (the PR 2 baseline protocol)
     pruned       bound-aware pruning on
     incremental  pruning + incremental cone replay
     batched      the above + whole-neighbour-set batch evaluation

   — and reports Gc.minor_words per suggested candidate alongside
   candidates/sec.  Allocation counts are deterministic for a fixed
   build (unlike wall clock), so the words/candidate trajectory across
   PRs is noise-free; the committed budget in
   test/golden/alloc_budget.txt gates the batched leg's steady state.

   Each leg's search runs twice: the first pass warms code pages and
   the allocator, the second is measured (steady state — the same
   discipline as evalrate and searchrate).

   Results go to stdout and BENCH_allocrate.json.

   Usage: dune exec bench/allocrate.exe [-- --smoke] [-- --out FILE] *)

let out_file = ref "BENCH_allocrate.json"
let smoke = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out_file := f;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "allocrate: unknown argument %S\n" unknown;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let now = Unix.gettimeofday

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

type leg = {
  leg_name : string;
  words_per_cand : float;
  cands_per_sec : float;
  suggested : int;
  minor_words : float;
  perf : float;
}

let run_leg ~name ~batch ~prune ~incremental ~rotations machine g =
  let search () =
    let ev = Evaluator.create ~prune ~incremental ~seed:3 machine g in
    let t0 = now () in
    let w0 = Gc.minor_words () in
    let o =
      Engine.run ~start:(Mapping.default_start g machine) ev (Ccd.make ~batch ~rotations ev)
    in
    let words = Gc.minor_words () -. w0 in
    let wall = now () -. t0 in
    (words, wall, o.Engine.perf, (Evaluator.stats ev).Evaluator.s_suggested)
  in
  ignore (search ());
  let words, wall, perf, suggested = search () in
  {
    leg_name = name;
    words_per_cand = words /. float_of_int suggested;
    cands_per_sec = float_of_int suggested /. wall;
    suggested;
    minor_words = words;
    perf;
  }

let bench_app (app : App.t) machine ~input ~rotations =
  let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
  let legs =
    [
      run_leg ~name:"full" ~batch:false ~prune:false ~incremental:false ~rotations machine g;
      run_leg ~name:"pruned" ~batch:false ~prune:true ~incremental:false ~rotations machine g;
      run_leg ~name:"incremental" ~batch:false ~prune:true ~incremental:true ~rotations
        machine g;
      run_leg ~name:"batched" ~batch:true ~prune:true ~incremental:true ~rotations machine g;
    ]
  in
  (* allocation discipline must never trade away decisions *)
  (match legs with
  | first :: rest ->
      List.iter
        (fun l ->
          if l.perf <> first.perf then
            failwith (app.App.app_name ^ ": " ^ l.leg_name ^ " found a different best perf");
          if l.suggested <> first.suggested then
            failwith
              (app.App.app_name ^ ": " ^ l.leg_name
             ^ " made a different number of suggestions"))
        rest
  | [] -> assert false);
  Printf.printf "%-8s %-10s" app.App.app_name input;
  List.iter
    (fun l ->
      Printf.printf " | %s %8.1f w/cand %9.1f cand/s" l.leg_name l.words_per_cand
        l.cands_per_sec)
    legs;
  print_newline ();
  (app.App.app_name, input, legs)

let json_leg l =
  Printf.sprintf
    {|{"leg": %S, "minor_words_per_candidate": %.2f, "cands_per_sec": %.2f, "suggested": %d, "minor_words": %.0f}|}
    l.leg_name l.words_per_cand l.cands_per_sec l.suggested l.minor_words

let () =
  let nodes = 4 in
  let machine = Presets.shepard ~nodes in
  let rotations = if !smoke then 2 else 5 in
  let apps =
    [ (App.stencil, if !smoke then "500x500" else "2000x2000");
      (App.circuit, if !smoke then "n100w400" else "n200w800") ]
  in
  Printf.printf "allocrate: %s mode, shepard x%d, CCD(%d), minor words per candidate\n%!"
    (if !smoke then "smoke" else "bench")
    nodes rotations;
  let rows = List.map (fun (app, input) -> bench_app app machine ~input ~rotations) apps in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"allocrate\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"nodes\": %d,\n  \"rotations\": %d,\n  \"apps\": [\n"
       !smoke nodes rotations);
  List.iteri
    (fun i (name, input, legs) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"app\": %S, \"input\": %S, \"legs\": [\n%s\n     ],
     \"decision_identical\": true}%s\n"
           name input
           (String.concat ",\n" (List.map (fun l -> "      " ^ json_leg l) legs))
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out_file
