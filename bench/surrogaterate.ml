(* Surrogate-guided search benchmark: how much exact simulation does
   the online cost model save?

   For every benchmark app it runs the same batched CCD search three
   ways at the same trial budget on fresh evaluators —

     exact    plain batch order, no model (the PR 6 baseline);
     rerank   batches permuted best-predicted-first, every candidate
              still simulated;
     skim     reranked and truncated to the top-K predictions per
              batch once the model is past warmup;

   — and reports, per leg, the final best, the trials and exact
   simulations needed to first reach the exact leg's final quality,
   candidates/sec, and the model's counters and rank correlation.  The
   never-worse gate is enforced here, not just observed: a surrogate
   leg ending above the exact leg's final best is a hard failure, the
   same line test_surrogate holds and CI replays on the smoke inputs.

   Results go to stdout and BENCH_surrogaterate.json.  With
   AUTOMAP_NO_SURROGATE set the whole report is stamped skipped.

   Usage: dune exec bench/surrogaterate.exe [-- --smoke] [-- --out FILE]
     --smoke   Stencil + Pennant only, smaller budget (CI leg)        *)

let out_file = ref "BENCH_surrogaterate.json"
let smoke = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out_file := f;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "surrogaterate: unknown argument %S\n" unknown;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let no_surrogate = Sys.getenv_opt "AUTOMAP_NO_SURROGATE" <> None
let now = Unix.gettimeofday

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

let machine_for (app : App.t) ~nodes =
  if app.App.app_name = "Maestro" then Presets.lassen ~nodes else Presets.shepard ~nodes

type leg = {
  mode : string;
  wall : float;
  perf : float;
  improvements : (int * float) list;  (* (trial, best-so-far) *)
  st : Evaluator.stats;
}

type mode = Exact | Rerank | Skim of int

(* the skim leg uses a small correlation window so warmup (2x window)
   ends inside even the smoke budget — the default 64 is tuned for
   long searches *)
let skim_window = 8

let run_leg mode machine g ~max_trials =
  let ev = Evaluator.create ~prune:true ~incremental:true ~seed:3 machine g in
  let sg =
    match mode with
    | Exact -> None
    | Rerank -> Some (Surrogate.create (Evaluator.space ev))
    | Skim k -> Some (Surrogate.create ~window:skim_window ~skim:k (Evaluator.space ev))
  in
  Option.iter (Evaluator.attach_surrogate ev) sg;
  let improvements = ref [] in
  let t0 = now () in
  let o =
    Engine.run
      ~budget:(Budget.make ~max_trials ())
      ~on_event:(function
        | Engine.Improve { trial; perf; _ } -> improvements := (trial, perf) :: !improvements
        | _ -> ())
      ?surrogate:sg
      ~start:(Mapping.default_start g machine)
      ev
      (Ccd.make ~batch:true ?surrogate:sg ~rotations:5 ev)
  in
  {
    mode = (match mode with Exact -> "exact" | Rerank -> "rerank" | Skim _ -> "skim");
    wall = now () -. t0;
    perf = o.Engine.perf;
    improvements = List.rev !improvements;
    st = Evaluator.stats ev;
  }

(* first trial at which the leg's best-so-far reached [quality]; the
   exact leg's own final best is the target, so the exact leg always
   terminates this search *)
let trials_to quality leg =
  List.find_map (fun (t, p) -> if p <= quality then Some t else None) leg.improvements

type row = {
  row_app : string;
  row_input : string;
  budget : int;
  exact : leg;
  rerank : leg;
  skim : leg;
  skim_k : int;
}

let bench_app (app : App.t) ~input ~max_trials ~skim_k =
  let nodes = 2 in
  let machine = machine_for app ~nodes in
  let g = app.App.graph ~nodes ~input in
  let exact = run_leg Exact machine g ~max_trials in
  let rerank = run_leg Rerank machine g ~max_trials in
  let skim = run_leg (Skim skim_k) machine g ~max_trials in
  (* the gate: at the same trial budget, a surrogate leg may never end
     worse than the exact search *)
  List.iter
    (fun l ->
      if l.perf > exact.perf then
        failwith
          (Printf.sprintf "surrogaterate: %s %s leg ended worse than exact (%.6g > %.6g)"
             app.App.app_name l.mode l.perf exact.perf))
    [ rerank; skim ];
  let report l =
    let cands = float_of_int l.st.Evaluator.s_suggested /. l.wall in
    let reached =
      match trials_to exact.perf l with
      | Some t -> Printf.sprintf "%4d trials" t
      | None -> "   never   "
    in
    Printf.printf
      "  %-6s best %.6g | to-exact-best %s | %4d sims | %7.1f cand/s | %d trained, %d \
       reranks, %d skims%s\n%!"
      l.mode l.perf reached l.st.Evaluator.s_evaluated cands
      l.st.Evaluator.s_surrogate_trained l.st.Evaluator.s_surrogate_reranks
      l.st.Evaluator.s_surrogate_skips
      (if Float.is_finite l.st.Evaluator.s_spearman then
         Printf.sprintf " | spearman %.3f" l.st.Evaluator.s_spearman
       else "")
  in
  Printf.printf "%s %s (budget %d trials, skim K=%d):\n%!" app.App.app_name input
    max_trials skim_k;
  report exact;
  report rerank;
  report skim;
  { row_app = app.App.app_name; row_input = input; budget = max_trials; exact; rerank;
    skim; skim_k }

let json_leg target l =
  Printf.sprintf
    {|{"mode": %S, "wall": %.5f, "perf": %.6e, "trials_to_exact_best": %s, "suggested": %d, "evaluated": %d, "cands_per_sec": %.2f, "surrogate_trained": %d, "surrogate_reranks": %d, "surrogate_skips": %d, "spearman_rank_corr": %s, "never_worse": true}|}
    l.mode l.wall l.perf
    (match trials_to target l with Some t -> string_of_int t | None -> "null")
    l.st.Evaluator.s_suggested l.st.Evaluator.s_evaluated
    (float_of_int l.st.Evaluator.s_suggested /. l.wall)
    l.st.Evaluator.s_surrogate_trained l.st.Evaluator.s_surrogate_reranks
    l.st.Evaluator.s_surrogate_skips
    (if Float.is_finite l.st.Evaluator.s_spearman then
       Printf.sprintf "%.4f" l.st.Evaluator.s_spearman
     else "null")

let () =
  if no_surrogate then begin
    let oc = open_out !out_file in
    Printf.fprintf oc
      "{\n  \"bench\": \"surrogaterate\",\n  \"commit\": %S,\n  \"skipped\": true\n}\n"
      (git_commit ());
    close_out oc;
    Printf.printf "surrogaterate: AUTOMAP_NO_SURROGATE set, skipped (wrote %s)\n%!"
      !out_file;
    exit 0
  end;
  let apps =
    if !smoke then [ (App.stencil, "500x500"); (App.pennant, "320x90") ]
    else
      [
        (App.circuit, "n50w200");
        (App.stencil, "500x500");
        (App.pennant, "320x90");
        (App.htr, "8x8y9z");
        (App.maestro, "lf4r16");
      ]
  in
  let max_trials = if !smoke then 150 else 400 in
  let skim_k = 12 in
  Printf.printf
    "surrogaterate: %s mode, 2 nodes, CCD(5) batch, %d-trial budget, exact vs rerank \
     vs skim(%d)\n%!"
    (if !smoke then "smoke" else "bench")
    max_trials skim_k;
  let rows = List.map (fun (app, input) -> bench_app app ~input ~max_trials ~skim_k) apps in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"bench\": \"surrogaterate\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"skipped\": false,\n  \"smoke\": %b,\n  \"nodes\": 2,\n  \"budget_trials\": \
        %d,\n  \"skim_k\": %d,\n  \"apps\": [\n"
       !smoke max_trials skim_k);
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"app\": %S, \"input\": %S,\n     \"exact\": %s,\n     \"rerank\": \
            %s,\n     \"skim\": %s}%s\n"
           row.row_app row.row_input
           (json_leg row.exact.perf row.exact)
           (json_leg row.exact.perf row.rerank)
           (json_leg row.exact.perf row.skim)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out_file
