(* Topology-routed DES throughput benchmark.

   Two questions after the link-level routing refactor:

   1. What does search throughput look like when every copy is
      resolved to a link path and charged per-link?  The scaling leg
      runs the same CCD search on Stencil over mesh machines from
      grid:4x4 (16 nodes) to grid:32x32 (1024 nodes) and reports
      candidates per second at each size.  The 32x32 point is gated:
      below 1000 candidates/sec the refactor has made topology-aware
      search impractical and the bench hard-fails.

   2. Did the degenerate path stay free?  A direct:N machine routes
      every copy over a single per-source link whose slot and cost are
      a bijection of the legacy kind-level Network channel, so a
      search on direct:4 must be decision-identical to one on the
      4-node shepard preset and at most 5% slower.  The two legs are
      interleaved and each reports its fastest repeat, so load drift
      skews both equally and the gate measures the code, not the
      machine.

   Results go to stdout and to BENCH_toporate.json.

   Usage: dune exec bench/toporate.exe [-- --smoke] [-- --out FILE]
     --smoke   2 rotations + fewer repeats (CI gate check)            *)

let out_file = ref "BENCH_toporate.json"
let smoke = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out_file := f;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "toporate: unknown argument %S\n" unknown;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let now = Unix.gettimeofday

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

type leg = {
  wall : float;
  cands_per_sec : float;
  best : Mapping.t;
  perf : float;
  suggested : int;
  evaluated : int;
}

(* One CCD search on a fresh evaluator; only the engine run is timed
   (Evaluator.create's one-time compile stays outside, as in
   searchrate).  Single-run noise-free evaluation: the throughput
   question is how fast candidates move through bound/prune/replay
   with routed copies, not how much the measurement protocol repeats
   each one — and it is the same setting the decision-identity gates
   compare under. *)
let search_once ~rotations machine g =
  let ev =
    Evaluator.create ~runs:1 ~noise_sigma:0.0 ~prune:true ~incremental:true
      ~seed:3 machine g
  in
  let t0 = now () in
  let o =
    Engine.run ~start:(Mapping.default_start g machine) ev
      (Ccd.make ~rotations ev)
  in
  let wall = now () -. t0 in
  let s = Evaluator.stats ev in
  {
    wall;
    cands_per_sec = float_of_int s.Evaluator.s_suggested /. wall;
    best = o.Engine.best;
    perf = o.Engine.perf;
    suggested = s.Evaluator.s_suggested;
    evaluated = s.Evaluator.s_evaluated;
  }

let min_leg a b = if b.wall < a.wall then b else a

(* ------------------------------------------------------------------ *)
(* Scaling leg: Stencil over growing meshes                            *)
(* ------------------------------------------------------------------ *)

type grid_row = {
  gr_spec : string;
  gr_nodes : int;
  gr_links : int;
  gr_leg : leg;
}

let bench_grid ~rotations ~repeats spec =
  let machine =
    match Presets.of_spec spec ~nodes:1 with
    | Ok m -> m
    | Error e -> failwith ("toporate: " ^ e)
  in
  let g =
    App.stencil.App.graph ~nodes:machine.Machine.nodes ~input:"500x500"
  in
  let best = ref (search_once ~rotations machine g) in
  for _ = 2 to repeats do
    best := min_leg !best (search_once ~rotations machine g)
  done;
  let links =
    match machine.Machine.topology with
    | Some topo -> Topology.n_links topo
    | None -> 0
  in
  Printf.printf
    "%-11s %5d nodes %5d links: %8.2fms, %8.1f cand/s (%d suggested, %d evaluated)\n%!"
    spec machine.Machine.nodes links
    (1e3 *. !best.wall)
    !best.cands_per_sec !best.suggested !best.evaluated;
  { gr_spec = spec; gr_nodes = machine.Machine.nodes; gr_links = links;
    gr_leg = !best }

(* ------------------------------------------------------------------ *)
(* Degenerate gate: direct:4 vs the legacy 4-node shepard              *)
(* ------------------------------------------------------------------ *)

let degenerate_gate ~repeats =
  (* deep legs (50 rotations, ~5ms each): at shallow depth the legs
     are sub-millisecond and scheduler noise swamps the 5% budget *)
  let rotations = 50 in
  let repeats = max repeats 8 in
  let legacy = Presets.shepard ~nodes:4 in
  let routed =
    match Presets.of_spec "direct:4" ~nodes:1 with
    | Ok m -> m
    | Error e -> failwith ("toporate: " ^ e)
  in
  let g = App.stencil.App.graph ~nodes:4 ~input:"2000x2000" in
  let l = ref (search_once ~rotations legacy g) in
  let r = ref (search_once ~rotations routed g) in
  for _ = 2 to repeats do
    l := min_leg !l (search_once ~rotations legacy g);
    r := min_leg !r (search_once ~rotations routed g)
  done;
  let l = !l and r = !r in
  if not (Mapping.equal l.best r.best) then
    failwith "toporate: direct:4 search found a different best mapping than shepard";
  if l.perf <> r.perf then
    failwith "toporate: direct:4 search found a different best perf than shepard";
  if l.suggested <> r.suggested then
    failwith "toporate: direct:4 search made a different number of suggestions";
  let ratio = r.cands_per_sec /. l.cands_per_sec in
  Printf.printf
    "degenerate gate: shepard x4 %8.1f cand/s | direct:4 %8.1f cand/s | ratio %.3f \
     (>= 0.95 required), decision-identical\n%!"
    l.cands_per_sec r.cands_per_sec ratio;
  if ratio < 0.95 then
    failwith
      (Printf.sprintf
         "toporate: routed degenerate path is more than 5%% slower than the legacy \
          channel path (ratio %.3f)"
         ratio);
  (l, r, ratio)

let json_leg l =
  Printf.sprintf
    {|{"wall": %.5f, "cands_per_sec": %.2f, "perf": %.6e, "suggested": %d, "evaluated": %d}|}
    l.wall l.cands_per_sec l.perf l.suggested l.evaluated

let () =
  let rotations = 50 in
  let repeats = if !smoke then 3 else 8 in
  Printf.printf "toporate: %s mode, CCD(%d), Stencil over routed meshes\n%!"
    (if !smoke then "smoke" else "bench")
    rotations;
  (* The searches are deep (50 rotations): the candidate rate only
     means something in steady state, where the per-candidate cone
     replays dominate the one-time full bind of the start mapping
     rather than drowning in it. *)
  let grids = [ "grid:4x4"; "grid:8x8"; "grid:16x16"; "grid:32x32" ] in
  let rows =
    List.map (bench_grid ~rotations ~repeats:(if !smoke then 1 else 3)) grids
  in
  let last = List.nth rows (List.length rows - 1) in
  if last.gr_leg.cands_per_sec < 1000.0 then
    failwith
      (Printf.sprintf
         "toporate: %s search throughput %.1f cand/s is below the 1000 cand/s gate"
         last.gr_spec last.gr_leg.cands_per_sec);
  Printf.printf "%s gate: %.1f cand/s >= 1000 ok\n%!" last.gr_spec
    last.gr_leg.cands_per_sec;
  let legacy, routed, ratio = degenerate_gate ~repeats in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"toporate\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"rotations\": %d,\n  \"grids\": [\n" !smoke
       rotations);
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"spec\": %S, \"nodes\": %d, \"links\": %d, \"search\": %s}%s\n"
           row.gr_spec row.gr_nodes row.gr_links (json_leg row.gr_leg)
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"throughput_gate\": {\"spec\": %S, \"cands_per_sec\": %.2f, \
        \"minimum\": 1000.0, \"pass\": true},\n  \
        \"degenerate\": {\"legacy\": %s,\n                 \"routed\": %s,\n                 \
        \"ratio\": %.4f, \"minimum_ratio\": 0.95, \"decision_identical\": true}\n}\n"
       last.gr_spec last.gr_leg.cands_per_sec (json_leg legacy) (json_leg routed)
       ratio);
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out_file
