(* Mapping-sensitivity experiments — the claim that motivates AutoMap
   in §1: "fast mappings are sensitive to the machine, application,
   and input.  Porting to a new machine, modifying the application, or
   using a different input size may necessitate re-tuning the mapping
   to maintain the best possible performance."

   - machine sensitivity: tune Pennant separately on the Shepard and
     Lassen models, then run each discovered mapping on the *other*
     machine and compare against that machine's own tuned mapping;
   - input sensitivity: tune on a small and a large input and
     cross-apply (the small-input mapping is CPU-heavy, which is
     exactly wrong at scale, and vice versa);
   - parameter sensitivity: sweep one machine parameter (the GPU's
     Zero-Copy bandwidth) and report how the best mapping's placement
     counts change — the trade-off frontier CCD navigates. *)

let seed () = !Bench_common.scale.seed

let tune machine g =
  Driver.run ~runs:(Bench_common.runs ()) ~final_runs:(Bench_common.final_runs ())
    ~seed:(seed ()) (Driver.Ccd { rotations = 5 }) machine g

let measure machine g mapping =
  Bench_common.measure_mapping ~runs:(Bench_common.runs ()) machine g mapping
    ~seed:(seed ())

let machine_sensitivity () =
  Bench_common.section "Sensitivity: machine (Pennant 320x180, tuned on A, run on B)";
  let input = "320x180" in
  let shepard = Presets.shepard ~nodes:1 and lassen = Presets.lassen ~nodes:1 in
  let g = App.pennant.App.graph ~nodes:1 ~input in
  let r_shep = tune shepard g and r_lass = tune lassen g in
  let t = Table.create [ "run on"; "own tuned (ms)"; "other's mapping (ms)"; "penalty" ] in
  let row name machine own foreign =
    let own_ms = own.Driver.perf *. 1e3 in
    let foreign_ms =
      match measure machine g foreign.Driver.best with
      | Some v -> v *. 1e3
      | None -> nan
    in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.3f" own_ms;
        Printf.sprintf "%.3f" foreign_ms;
        Printf.sprintf "%.2fx" (foreign_ms /. own_ms);
      ]
  in
  row "Shepard" shepard r_shep r_lass;
  row "Lassen" lassen r_lass r_shep;
  Table.print t

let input_sensitivity () =
  Bench_common.section "Sensitivity: input size (Circuit, tuned on A, run on B)";
  let machine = Presets.shepard ~nodes:1 in
  let small = "n100w400" and large = "n6400w25600" in
  let g_small = App.circuit.App.graph ~nodes:1 ~input:small in
  let g_large = App.circuit.App.graph ~nodes:1 ~input:large in
  (* the graphs share structure, so a mapping transfers by task/arg ids *)
  let transfer src =
    Mapping.make g_large
      ~strategy:(fun task -> Mapping.strategy_of src task.Graph.tid)
      ~distribute:(fun task -> Mapping.distribute_of src task.Graph.tid)
      ~proc:(fun task -> Mapping.proc_of src task.Graph.tid)
      ~mem:(fun c -> Mapping.mem_of src c.Graph.cid)
  in
  let r_small = tune machine g_small and r_large = tune machine g_large in
  let t = Table.create [ "mapping"; "on small (ms)"; "on large (ms)" ] in
  let cell = function Some v -> Printf.sprintf "%.3f" (v *. 1e3) | None -> "OOM" in
  Table.add_row t
    [
      "tuned on small";
      Printf.sprintf "%.3f" (r_small.Driver.perf *. 1e3);
      cell (measure machine g_large (transfer r_small.Driver.best));
    ];
  let small_of src =
    Mapping.make g_small
      ~strategy:(fun task -> Mapping.strategy_of src task.Graph.tid)
      ~distribute:(fun task -> Mapping.distribute_of src task.Graph.tid)
      ~proc:(fun task -> Mapping.proc_of src task.Graph.tid)
      ~mem:(fun c -> Mapping.mem_of src c.Graph.cid)
  in
  Table.add_row t
    [
      "tuned on large";
      cell (measure machine g_small (small_of r_large.Driver.best));
      Printf.sprintf "%.3f" (r_large.Driver.perf *. 1e3);
    ];
  Table.print t;
  Bench_common.note
    "(each mapping is best on the input it was tuned for — the §1 re-tuning claim)"

let parameter_sensitivity () =
  Bench_common.section
    "Sensitivity: GPU Zero-Copy bandwidth sweep (HTR 16x16y18z, placement of best mapping)";
  let base = Presets.shepard ~nodes:1 in
  let t = Table.create [ "gpu_zc (GB/s)"; "best (ms/iter)"; "placement" ] in
  List.iter
    (fun zc_gbs ->
      let machine =
        Machine.make ~name:"Shepard-sweep" ~nodes:1 ~node:base.Machine.node
          ~exec_bw:{ base.Machine.exec_bw with Machine.gpu_zc = zc_gbs *. 1e9 }
          ~compute:base.Machine.compute ~copy:base.Machine.copy ()
      in
      let g = App.htr.App.graph ~nodes:1 ~input:"16x16y18z" in
      let r = tune machine g in
      Table.add_row t
        [
          Printf.sprintf "%.0f" zc_gbs;
          Printf.sprintf "%.3f" (r.Driver.perf *. 1e3);
          Report.placement_summary g r.Driver.best;
        ])
    [ 2.0; 10.0; 50.0; 200.0 ];
  Table.print t;
  Bench_common.note
    "(as the ZC path speeds up, the best mapping shifts more arguments into Zero-Copy)"

let run () =
  machine_sensitivity ();
  input_sensitivity ();
  parameter_sensitivity ()
