(* End-to-end search-throughput benchmark for bound-and-prune
   candidate evaluation and incremental delta re-simulation.

   For Stencil and Circuit it runs the same CCD search four times on
   fresh evaluators — pruning off, pruning on (the PR 2 baseline),
   pruning on with incremental cone replay, and incremental with
   whole-neighbour-set batch evaluation — and checks the four
   searches are *decision-identical* (same best mapping, same best
   perf bit-for-bit, same suggestion count) before reporting the
   wall-clock speedups and candidates-per-second gains each layer
   buys.  The pruning counters (cut runs/sims, delta vs. full
   placement binds) and the replay counters (cone vs. full replays,
   instances re-executed in cones, retained timeline bytes) are
   reported alongside so regressions in any one layer of the
   optimisation are visible in the numbers, not just the total.

   The machine is a 4-node shepard cluster: distributed machines are
   the paper's setting, and the communication floors that make the
   pruning bounds tight only exist with more than one node.

   Results go to stdout and to BENCH_searchrate.json.

   Usage: dune exec bench/searchrate.exe [-- --smoke] [-- --out FILE]
     --smoke   tiny inputs + 2 rotations (CI rot check)               *)

let out_file = ref "BENCH_searchrate.json"
let smoke = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out_file := f;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "searchrate: unknown argument %S\n" unknown;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let now = Unix.gettimeofday

(* Stamp the report with the producing commit so JSON files compared
   across PRs identify their code version.  Benchmarks may run from a
   build tree outside any repository: fall back to "unknown". *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* surrogate-ranked legs are reported but never part of the identity
   check (reranking legitimately changes the trajectory); the env knob
   mirrors the CLI's --no-surrogate *)
let no_surrogate = Sys.getenv_opt "AUTOMAP_NO_SURROGATE" <> None

type leg = {
  wall : float;
  cands_per_sec : float;
  best : Mapping.t;
  perf : float;
  steps : int;  (* Engine strategy steps *)
  st : Evaluator.stats;
}

(* One full search on a fresh evaluator (pruning and timeline state
   must not leak between repeats); only the engine run is timed —
   Evaluator.create (the one-time compile, identical for all legs)
   stays outside. *)
let search_once ?(batch = false) ?(surrogate = false) ~prune ~incremental ~rotations
    machine g =
  let ev = Evaluator.create ~prune ~incremental ~seed:3 machine g in
  let sg = if surrogate then Some (Surrogate.create (Evaluator.space ev)) else None in
  Option.iter (Evaluator.attach_surrogate ev) sg;
  let t0 = now () in
  let o =
    Engine.run ?surrogate:sg ~start:(Mapping.default_start g machine) ev
      (Ccd.make ~batch ?surrogate:sg ~rotations ev)
  in
  (now () -. t0, o.Engine.best, o.Engine.perf, o.Engine.steps, Evaluator.stats ev)

type app_row = {
  row_app : string;
  row_input : string;
  off : leg;
  on_ : leg;
  inc : leg;
  bat : leg;
  sur : leg option;            (* surrogate-ranked batches; None when disabled *)
  speedup : float;             (* prune on vs. off, both full-replay *)
  incremental_speedup : float; (* incremental vs. the PR 2 baseline  *)
  batched_speedup : float;     (* batched vs. incremental            *)
}

let bench_app (app : App.t) machine ~input ~rotations ~min_time =
  let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
  (* A single CCD run is milliseconds: repeat whole searches until
     [min_time] of measured wall accumulated, interleaving the four
     legs so any slow drift in machine load skews all equally and the
     reported ratios stay honest.  Each leg reports its fastest repeat
     (steady state): scheduler preemption and first-touch page faults
     only ever add time, so the minimum is the run least polluted by
     the machine, and every leg gets the same treatment. *)
  let t_off = ref infinity and t_on = ref infinity in
  let t_inc = ref infinity and t_bat = ref infinity and t_sur = ref infinity in
  let spent = ref 0.0 in
  let last_off = ref None and last_on = ref None and last_inc = ref None in
  let last_bat = ref None and last_sur = ref None in
  let step () =
    let d, b, p, k, s = search_once ~prune:false ~incremental:false ~rotations machine g in
    t_off := Float.min !t_off d;
    spent := !spent +. d;
    last_off := Some (b, p, k, s);
    let d, b, p, k, s = search_once ~prune:true ~incremental:false ~rotations machine g in
    t_on := Float.min !t_on d;
    spent := !spent +. d;
    last_on := Some (b, p, k, s);
    let d, b, p, k, s = search_once ~prune:true ~incremental:true ~rotations machine g in
    t_inc := Float.min !t_inc d;
    spent := !spent +. d;
    last_inc := Some (b, p, k, s);
    let d, b, p, k, s =
      search_once ~batch:true ~prune:true ~incremental:true ~rotations machine g
    in
    t_bat := Float.min !t_bat d;
    spent := !spent +. d;
    last_bat := Some (b, p, k, s);
    if not no_surrogate then begin
      let d, b, p, k, s =
        search_once ~batch:true ~surrogate:true ~prune:true ~incremental:true
          ~rotations machine g
      in
      t_sur := Float.min !t_sur d;
      spent := !spent +. d;
      last_sur := Some (b, p, k, s)
    end
  in
  step ();
  while !spent < min_time do
    step ()
  done;
  let leg_of wall last =
    let b, p, k, s = Option.get last in
    {
      wall;
      cands_per_sec = float_of_int s.Evaluator.s_suggested /. wall;
      best = b;
      perf = p;
      steps = k;
      st = s;
    }
  in
  let off = leg_of !t_off !last_off
  and on_ = leg_of !t_on !last_on
  and inc = leg_of !t_inc !last_inc
  and bat = leg_of !t_bat !last_bat in
  let sur = if no_surrogate then None else Some (leg_of !t_sur !last_sur) in
  (* neither pruning, incremental replay, nor batching may be visible
     to the search's decisions.  Batching folds each neighbour set into
     one engine step, so engine-step counts are only compared between
     the sequential legs. *)
  let check ?(steps = true) name a b =
    if not (Mapping.equal a.best b.best) then
      failwith (app.App.app_name ^ ": " ^ name ^ " search found a different best mapping");
    if a.perf <> b.perf then
      failwith (app.App.app_name ^ ": " ^ name ^ " search found a different best perf");
    if a.st.Evaluator.s_suggested <> b.st.Evaluator.s_suggested then
      failwith
        (app.App.app_name ^ ": " ^ name ^ " search made a different number of suggestions");
    if steps && a.steps <> b.steps then
      failwith
        (app.App.app_name ^ ": " ^ name ^ " search took a different number of engine steps")
  in
  check "pruned" off on_;
  check "incremental" on_ inc;
  check ~steps:false "batched" inc bat;
  let speedup = off.wall /. on_.wall in
  let incremental_speedup = inc.cands_per_sec /. on_.cands_per_sec in
  let batched_speedup = bat.cands_per_sec /. inc.cands_per_sec in
  Printf.printf
    "%-8s %-10s off %6.2fms (%7.1f cand/s) | on %6.2fms (%7.1f cand/s, %5.2fx) | inc \
     %6.2fms (%7.1f cand/s, %5.2fx) | batch %6.2fms (%7.1f cand/s, %5.2fx)\n\
    \         cut %d/%d evals, %d runs, %d sims | binds %d delta / %d full | %d noop \
     skips | %d dead-coord skips\n\
    \         replays %d cone / %d full | %d cone instances | %.1f KiB timelines\n\
    \         batches %d, %d short-circuited | bind hits %d shared / %d private\n%!"
    app.App.app_name input (1e3 *. off.wall) off.cands_per_sec (1e3 *. on_.wall)
    on_.cands_per_sec speedup (1e3 *. inc.wall) inc.cands_per_sec incremental_speedup
    (1e3 *. bat.wall) bat.cands_per_sec batched_speedup
    inc.st.Evaluator.s_cut_evals inc.st.Evaluator.s_suggested
    inc.st.Evaluator.s_cut_runs inc.st.Evaluator.s_cut_sims
    inc.st.Evaluator.s_delta_binds inc.st.Evaluator.s_full_binds
    inc.st.Evaluator.s_noop_skips inc.st.Evaluator.s_dead_coord_skips
    inc.st.Evaluator.s_cone_replays
    inc.st.Evaluator.s_full_replays inc.st.Evaluator.s_cone_instances
    (float_of_int inc.st.Evaluator.s_timeline_bytes /. 1024.0)
    bat.st.Evaluator.s_batch_calls bat.st.Evaluator.s_batch_short_circuits
    bat.st.Evaluator.s_bind_hits_shared bat.st.Evaluator.s_bind_hits_private;
  Option.iter
    (fun (l : leg) ->
      Printf.printf
        "         surrogate %6.2fms (%7.1f cand/s) | %d trained, %d reranks, %d skims \
         | spearman %s | best %.4g vs exact %.4g\n%!"
        (1e3 *. l.wall) l.cands_per_sec l.st.Evaluator.s_surrogate_trained
        l.st.Evaluator.s_surrogate_reranks l.st.Evaluator.s_surrogate_skips
        (if Float.is_finite l.st.Evaluator.s_spearman then
           Printf.sprintf "%.3f" l.st.Evaluator.s_spearman
         else "n/a")
        l.perf bat.perf)
    sur;
  { row_app = app.App.app_name; row_input = input; off; on_; inc; bat; sur; speedup;
    incremental_speedup; batched_speedup }

let json_leg l =
  Printf.sprintf
    {|{"wall": %.5f, "cands_per_sec": %.2f, "perf": %.6e, "engine_steps": %d, "suggested": %d, "evaluated": %d, "cache_hits": %d, "cut_evals": %d, "cut_runs": %d, "cut_sims": %d, "noop_skips": %d, "dead_coord_skips": %d, "delta_binds": %d, "full_binds": %d, "cone_replays": %d, "cone_instances": %d, "full_replays": %d, "timeline_bytes": %d, "batch_calls": %d, "batch_short_circuits": %d, "bind_hits_shared": %d, "bind_hits_private": %d, "compile_cache_hits": %d, "compile_cache_misses": %d, "result_cache_hits": %d, "warm_starts": %d}|}
    l.wall l.cands_per_sec l.perf l.steps l.st.Evaluator.s_suggested l.st.Evaluator.s_evaluated
    l.st.Evaluator.s_cache_hits l.st.Evaluator.s_cut_evals l.st.Evaluator.s_cut_runs
    l.st.Evaluator.s_cut_sims l.st.Evaluator.s_noop_skips
    l.st.Evaluator.s_dead_coord_skips l.st.Evaluator.s_delta_binds
    l.st.Evaluator.s_full_binds l.st.Evaluator.s_cone_replays
    l.st.Evaluator.s_cone_instances l.st.Evaluator.s_full_replays
    l.st.Evaluator.s_timeline_bytes l.st.Evaluator.s_batch_calls
    l.st.Evaluator.s_batch_short_circuits l.st.Evaluator.s_bind_hits_shared
    l.st.Evaluator.s_bind_hits_private l.st.Evaluator.s_compile_cache_hits
    l.st.Evaluator.s_compile_cache_misses l.st.Evaluator.s_result_cache_hits
    l.st.Evaluator.s_warm_starts

(* the surrogate leg reranks batches, so it is reported — counters,
   rank quality, final best — but excluded from the identity check;
   AUTOMAP_NO_SURROGATE stamps the section skipped instead *)
let json_surrogate = function
  | None -> {|{"skipped": true}|}
  | Some l ->
      Printf.sprintf
        {|{"skipped": false, "wall": %.5f, "cands_per_sec": %.2f, "perf": %.6e, "engine_steps": %d, "suggested": %d, "surrogate_trained": %d, "surrogate_reranks": %d, "surrogate_skips": %d, "spearman_rank_corr": %s}|}
        l.wall l.cands_per_sec l.perf l.steps l.st.Evaluator.s_suggested
        l.st.Evaluator.s_surrogate_trained l.st.Evaluator.s_surrogate_reranks
        l.st.Evaluator.s_surrogate_skips
        (if Float.is_finite l.st.Evaluator.s_spearman then
           Printf.sprintf "%.4f" l.st.Evaluator.s_spearman
         else "null")

(* Symmetry leg: the same CCD search at an equal trial budget with and
   without the PR 9 reduction stack (orbit canonicalization + engine
   seen-set + dominance-pruned domains).  The reduction changes the
   trajectory — skipped duplicates free budget for distinct candidates
   — so instead of an identity check it is held to the never-worse
   gate: the reduced run's final best must be equal-or-better, else the
   bench hard-fails.  Noise-free evaluation keeps the comparison about
   search decisions rather than measurement luck. *)
type sym_row = {
  sy_app : string;
  sy_input : string;
  sy_trials : int;
  sy_base : leg;
  sy_red : leg;
  sy_skips : int;          (* symmetric duplicates answered from the seen-set *)
  sy_log2_space : float;   (* log2 |space| after domain+dominance pruning *)
  sy_log2_reduction : float; (* further bits the orbit quotient saves *)
}

let symmetry_check (app : App.t) machine ~input ~rotations ~max_trials =
  let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
  let run ~symmetry ~dominance =
    let ev =
      Evaluator.create ~noise_sigma:0.0 ~seed:3 ~symmetry ~dominance machine g
    in
    let seen =
      if symmetry then
        Some (Engine.seen_create (Space.canonicalize (Evaluator.space ev)))
      else None
    in
    let t0 = now () in
    let o =
      Engine.run
        ~budget:(Budget.make ~max_trials ())
        ?seen
        ~start:(Mapping.default_start g machine)
        ev (Ccd.make ~rotations ev)
    in
    let wall = now () -. t0 in
    let s = Evaluator.stats ev in
    {
      wall;
      cands_per_sec = float_of_int s.Evaluator.s_suggested /. wall;
      best = o.Engine.best;
      perf = o.Engine.perf;
      steps = o.Engine.steps;
      st = s;
    }
  in
  let base = run ~symmetry:false ~dominance:false in
  let red = run ~symmetry:true ~dominance:true in
  if red.perf > base.perf then
    failwith
      (Printf.sprintf
         "%s: symmetry-reduced search final best %.6g is worse than unreduced %.6g"
         app.App.app_name red.perf base.perf);
  let an = Analysis.analyze machine g in
  let row =
    {
      sy_app = app.App.app_name;
      sy_input = input;
      sy_trials = max_trials;
      sy_base = base;
      sy_red = red;
      sy_skips = red.st.Evaluator.s_symmetry_skips;
      sy_log2_space = Analysis.log2_space an;
      sy_log2_reduction = Analysis.log2_symmetry_reduction an;
    }
  in
  Printf.printf
    "%-8s %-10s symmetry @%d trials: base %.6g (%d distinct evals) | reduced %.6g \
     (%d distinct evals, %d skips) | space %.1f bits, quotient -%.2f bits | \
     never-worse ok\n%!"
    app.App.app_name input max_trials base.perf base.st.Evaluator.s_evaluated
    red.perf red.st.Evaluator.s_evaluated row.sy_skips row.sy_log2_space
    row.sy_log2_reduction;
  row

let json_sym r =
  Printf.sprintf
    {|{"app": %S, "input": %S, "trials": %d, "base_perf": %.6e, "reduced_perf": %.6e, "base_evaluated": %d, "reduced_evaluated": %d, "base_wall": %.5f, "reduced_wall": %.5f, "symmetry_skips": %d, "log2_space": %.4f, "log2_symmetry_reduction": %.4f, "never_worse": true}|}
    r.sy_app r.sy_input r.sy_trials r.sy_base.perf r.sy_red.perf
    r.sy_base.st.Evaluator.s_evaluated r.sy_red.st.Evaluator.s_evaluated
    r.sy_base.wall r.sy_red.wall r.sy_skips r.sy_log2_space r.sy_log2_reduction

(* Checkpoint/resume self-check: a CCD search checkpointed mid-flight
   and resumed must land on the same best as one uninterrupted run.
   Returns (checkpoints written by the truncated run, resumed trials). *)
let resume_check machine g ~rotations =
  let start = Mapping.default_start g machine in
  let fresh () = Evaluator.create ~seed:3 machine g in
  let ev1 = fresh () in
  let full = Engine.run ~start ev1 (Ccd.make ~rotations ev1) in
  let t1 = max 2 (full.Engine.trials / 2) in
  let path = Filename.temp_file "searchrate_resume" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let ev2 = fresh () in
      let truncated =
        Engine.run
          ~budget:(Budget.make ~max_trials:t1 ())
          ~checkpoint:{ Engine.every = t1; path } ~start ev2 (Ccd.make ~rotations ev2)
      in
      if truncated.Engine.checkpoints_written = 0 then
        failwith "searchrate: resume check wrote no checkpoint";
      let snap =
        match Engine.load_snapshot path with Ok s -> s | Error e -> failwith e
      in
      let db =
        match Profiles_db.load g snap.Engine.s_profiles with
        | Ok db -> db
        | Error e -> failwith e
      in
      let ev3 = Evaluator.create ~seed:3 ~db machine g in
      (match Evaluator.restore_state ev3 snap.Engine.s_evaluator with
      | Ok () -> ()
      | Error e -> failwith e);
      let strat =
        match Driver.decode_strategy ev3 ~algo:snap.Engine.s_algo snap.Engine.s_strategy with
        | Ok s -> s
        | Error e -> failwith e
      in
      let best_m =
        match Mapping.of_canonical_key g snap.Engine.s_best_key with
        | Some m -> m
        | None -> failwith "searchrate: bad best key in checkpoint"
      in
      let resumed =
        Engine.run
          ~carry:
            {
              Engine.c_trials = snap.Engine.s_trials;
              c_steps = snap.Engine.s_steps;
              c_wall = snap.Engine.s_wall;
              c_best = (best_m, snap.Engine.s_best_perf);
            }
          ~start ev3 strat
      in
      if not (Mapping.equal resumed.Engine.best full.Engine.best) then
        failwith "searchrate: resumed search found a different best mapping";
      if resumed.Engine.perf <> full.Engine.perf then
        failwith "searchrate: resumed search found a different best perf";
      if resumed.Engine.trials <> full.Engine.trials then
        failwith "searchrate: resumed search took a different number of trials";
      (truncated.Engine.checkpoints_written, resumed.Engine.trials))

let () =
  let nodes = 4 in
  let machine = Presets.shepard ~nodes in
  let rotations = if !smoke then 2 else 5 in
  let apps =
    [ (App.stencil, if !smoke then "500x500" else "2000x2000");
      (App.circuit, if !smoke then "n100w400" else "n200w800") ]
  in
  Printf.printf
    "searchrate: %s mode, shepard x%d, CCD(%d), prune off vs on vs +incremental vs \
     +batched\n%!"
    (if !smoke then "smoke" else "bench")
    nodes rotations;
  let min_time = if !smoke then 0.0 else 4.0 in
  let rows =
    List.map (fun (app, input) -> bench_app app machine ~input ~rotations ~min_time) apps
  in
  let geomean f =
    exp
      (List.fold_left (fun acc r -> acc +. log (f r)) 0.0 rows
      /. float_of_int (List.length rows))
  in
  let geo_prune = geomean (fun r -> r.speedup) in
  let geo_inc = geomean (fun r -> r.incremental_speedup) in
  let geo_bat = geomean (fun r -> r.batched_speedup) in
  Printf.printf
    "geomean search speedup: prune %.2fx, incremental %.2fx over prune-on, batched \
     %.2fx over incremental\n%!"
    geo_prune geo_inc geo_bat;
  (* symmetry leg over all five bundled apps — the reduction's
     never-worse guarantee is about search structure, so every graph
     shape is exercised, not just the two throughput apps *)
  let sym_apps =
    [ (App.stencil, if !smoke then "500x500" else "2000x2000");
      (App.circuit, if !smoke then "n100w400" else "n200w800");
      (App.pennant, "320x90");
      (App.htr, "8x8y9z");
      (App.maestro, "lf4r16") ]
  in
  let sym_trials = if !smoke then 120 else 400 in
  let sym_rows =
    List.map
      (fun (app, input) ->
        symmetry_check app machine ~input ~rotations ~max_trials:sym_trials)
      sym_apps
  in
  let sym_apps_with_skips =
    List.length (List.filter (fun r -> r.sy_skips > 0) sym_rows)
  in
  Printf.printf "symmetry: %d/%d apps skipped at least one duplicate\n%!"
    sym_apps_with_skips (List.length sym_rows);
  let resume_g =
    App.stencil.App.graph ~nodes ~input:(if !smoke then "500x500" else "2000x2000")
  in
  let checkpoints_written, resumed_trials = resume_check machine resume_g ~rotations in
  Printf.printf
    "resume self-check: %d checkpoint(s), resumed to %d trials, decision-identical\n%!"
    checkpoints_written resumed_trials;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"searchrate\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"commit\": %S,\n" (git_commit ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"nodes\": %d,\n  \"rotations\": %d,\n  \"apps\": [\n"
       !smoke nodes rotations);
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"app\": %S, \"input\": %S,\n     \"prune_off\": %s,\n     \
            \"prune_on\": %s,\n     \"incremental\": %s,\n     \"batched\": %s,\n     \
            \"surrogate\": %s,\n     \
            \"speedup\": %.3f, \"incremental_speedup\": %.3f, \
            \"batched_speedup\": %.3f, \"decision_identical\": true}%s\n"
           row.row_app row.row_input (json_leg row.off) (json_leg row.on_)
           (json_leg row.inc) (json_leg row.bat) (json_surrogate row.sur) row.speedup
           row.incremental_speedup row.batched_speedup
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"geomean_speedup\": %.3f,\n  \"geomean_incremental_speedup\": %.3f,\n  \
        \"geomean_batched_speedup\": %.3f,\n  \"symmetry\": [\n%s\n  ],\n  \
        \"symmetry_apps_with_skips\": %d,\n  \
        \"resume\": {\"checkpoints_written\": %d, \"resumed_trials\": %d, \
        \"decision_identical\": true}\n}\n"
       geo_prune geo_inc geo_bat
       (String.concat ",\n" (List.map (fun r -> "    " ^ json_sym r) sym_rows))
       sym_apps_with_skips checkpoints_written resumed_trials);
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out_file
