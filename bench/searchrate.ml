(* End-to-end search-throughput benchmark for bound-and-prune
   candidate evaluation.

   For Stencil and Circuit it runs the same CCD search twice on fresh
   evaluators — once with pruning disabled, once enabled — and checks
   the two searches are *decision-identical* (same best mapping, same
   best perf bit-for-bit, same suggestion count) before reporting the
   wall-clock speedup and candidates-per-second gain pruning buys.
   The pruning counters (cut runs/sims, delta vs. full placement
   binds) are reported alongside so regressions in any one layer of
   the optimisation are visible in the numbers, not just the total.

   The machine is a 4-node shepard cluster: distributed machines are
   the paper's setting, and the communication floors that make the
   pruning bounds tight only exist with more than one node.

   Results go to stdout and to BENCH_searchrate.json.

   Usage: dune exec bench/searchrate.exe [-- --smoke] [-- --out FILE]
     --smoke   tiny inputs + 2 rotations (CI rot check)               *)

let out_file = ref "BENCH_searchrate.json"
let smoke = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--out" :: f :: rest ->
        out_file := f;
        parse rest
    | unknown :: _ ->
        Printf.eprintf "searchrate: unknown argument %S\n" unknown;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let now = Unix.gettimeofday

type leg = {
  wall : float;
  cands_per_sec : float;
  best : Mapping.t;
  perf : float;
  st : Evaluator.stats;
}

(* One full search on a fresh evaluator (pruning state must not leak
   between repeats); only Ccd.search is timed — Evaluator.create (the
   one-time compile, identical for both legs) stays outside. *)
let search_once ~prune ~rotations machine g =
  let ev = Evaluator.create ~prune ~seed:3 machine g in
  let t0 = now () in
  let best, perf = Ccd.search ~rotations ev in
  (now () -. t0, best, perf, Evaluator.stats ev)

type app_row = {
  row_app : string;
  row_input : string;
  off : leg;
  on_ : leg;
  speedup : float;
}

let bench_app (app : App.t) machine ~input ~rotations ~min_time =
  let g = app.App.graph ~nodes:machine.Machine.nodes ~input in
  (* A single CCD run is milliseconds: repeat whole searches until
     [min_time] of measured wall accumulated, interleaving the two
     legs so any slow drift in machine load skews both equally and
     the reported ratio stays honest. *)
  let t_off = ref 0.0 and t_on = ref 0.0 in
  let n = ref 0 in
  let last_off = ref None and last_on = ref None in
  let step () =
    let d, b, p, s = search_once ~prune:false ~rotations machine g in
    t_off := !t_off +. d;
    last_off := Some (b, p, s);
    let d, b, p, s = search_once ~prune:true ~rotations machine g in
    t_on := !t_on +. d;
    last_on := Some (b, p, s);
    incr n
  in
  step ();
  while !t_off +. !t_on < min_time do
    step ()
  done;
  let leg_of total last =
    let b, p, s = Option.get last in
    let wall = total /. float_of_int !n in
    {
      wall;
      cands_per_sec = float_of_int s.Evaluator.s_suggested /. wall;
      best = b;
      perf = p;
      st = s;
    }
  in
  let off = leg_of !t_off !last_off and on_ = leg_of !t_on !last_on in
  (* pruning must be invisible to the search's decisions *)
  if not (Mapping.equal off.best on_.best) then
    failwith (app.App.app_name ^ ": pruned search found a different best mapping");
  if off.perf <> on_.perf then
    failwith (app.App.app_name ^ ": pruned search found a different best perf");
  if off.st.Evaluator.s_suggested <> on_.st.Evaluator.s_suggested then
    failwith (app.App.app_name ^ ": pruned search made a different number of suggestions");
  let speedup = off.wall /. on_.wall in
  Printf.printf
    "%-8s %-10s off %6.2fms (%7.1f cand/s) | on %6.2fms (%7.1f cand/s) | %5.2fx | cut \
     %d/%d evals, %d runs, %d sims | binds %d delta / %d full | %d noop skips\n%!"
    app.App.app_name input (1e3 *. off.wall) off.cands_per_sec (1e3 *. on_.wall)
    on_.cands_per_sec speedup on_.st.Evaluator.s_cut_evals on_.st.Evaluator.s_suggested
    on_.st.Evaluator.s_cut_runs on_.st.Evaluator.s_cut_sims
    on_.st.Evaluator.s_delta_binds on_.st.Evaluator.s_full_binds
    on_.st.Evaluator.s_noop_skips;
  { row_app = app.App.app_name; row_input = input; off; on_; speedup }

let json_leg l =
  Printf.sprintf
    {|{"wall": %.5f, "cands_per_sec": %.2f, "perf": %.6e, "suggested": %d, "evaluated": %d, "cache_hits": %d, "cut_evals": %d, "cut_runs": %d, "cut_sims": %d, "noop_skips": %d, "delta_binds": %d, "full_binds": %d}|}
    l.wall l.cands_per_sec l.perf l.st.Evaluator.s_suggested l.st.Evaluator.s_evaluated
    l.st.Evaluator.s_cache_hits l.st.Evaluator.s_cut_evals l.st.Evaluator.s_cut_runs
    l.st.Evaluator.s_cut_sims l.st.Evaluator.s_noop_skips l.st.Evaluator.s_delta_binds
    l.st.Evaluator.s_full_binds

let () =
  let nodes = 4 in
  let machine = Presets.shepard ~nodes in
  let rotations = if !smoke then 2 else 5 in
  let apps =
    [ (App.stencil, if !smoke then "500x500" else "2000x2000");
      (App.circuit, if !smoke then "n100w400" else "n200w800") ]
  in
  Printf.printf "searchrate: %s mode, shepard x%d, CCD(%d), prune off vs on\n%!"
    (if !smoke then "smoke" else "bench")
    nodes rotations;
  let min_time = if !smoke then 0.0 else 4.0 in
  let rows =
    List.map (fun (app, input) -> bench_app app machine ~input ~rotations ~min_time) apps
  in
  let geomean =
    exp
      (List.fold_left (fun acc r -> acc +. log r.speedup) 0.0 rows
      /. float_of_int (List.length rows))
  in
  Printf.printf "geomean search speedup: %.2fx\n%!" geomean;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"searchrate\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"smoke\": %b,\n  \"nodes\": %d,\n  \"rotations\": %d,\n  \"apps\": [\n"
       !smoke nodes rotations);
  List.iteri
    (fun i row ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"app\": %S, \"input\": %S,\n     \"prune_off\": %s,\n     \
            \"prune_on\": %s,\n     \"speedup\": %.3f, \"decision_identical\": true}%s\n"
           row.row_app row.row_input (json_leg row.off) (json_leg row.on_) row.speedup
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "  ],\n  \"geomean_speedup\": %.3f\n}\n" geomean);
  let oc = open_out !out_file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out_file
