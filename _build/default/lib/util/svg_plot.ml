type series = { label : string; points : (float * float) list }

let palette =
  [| "#1f77b4"; "#d62728"; "#2ca02c"; "#ff7f0e"; "#9467bd"; "#8c564b"; "#17becf" |]

let markers = [| "circle"; "square"; "diamond"; "triangle" |]

let nice_step raw =
  (* round the raw step to 1, 2 or 5 times a power of ten *)
  let mag = 10.0 ** Float.round (Float.of_int (int_of_float (floor (log10 raw)))) in
  let mag = if mag <= 0.0 || Float.is_nan mag then 1.0 else mag in
  let candidates = [ 1.0; 2.0; 5.0; 10.0 ] in
  let best =
    List.fold_left
      (fun acc c -> if c *. mag >= raw && acc = None then Some (c *. mag) else acc)
      None candidates
  in
  Option.value best ~default:(10.0 *. mag)

let nice_ticks lo hi n =
  if not (Float.is_finite lo && Float.is_finite hi) || hi <= lo then [ lo ]
  else begin
    let raw = (hi -. lo) /. float_of_int (max 1 n) in
    let step = nice_step raw in
    let first = step *. Float.round (lo /. step -. 0.5) in
    let rec go acc v =
      if v > hi +. (0.5 *. step) then List.rev acc else go (v :: acc) (v +. step)
    in
    List.filter (fun v -> v >= lo -. (0.001 *. step)) (go [] first)
  end

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_tick v =
  if Float.abs v >= 1000.0 || (Float.abs v < 0.01 && v <> 0.0) then
    Printf.sprintf "%.1e" v
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.3g" v

type frame = {
  width : int;
  height : int;
  left : float;
  right : float;
  top : float;
  bottom : float;
  x_min : float;
  x_max : float;
  y_min : float;
  y_max : float;
}

let x_pos f x =
  let w = float_of_int f.width -. f.left -. f.right in
  let span = Float.max (f.x_max -. f.x_min) 1e-300 in
  f.left +. ((x -. f.x_min) /. span *. w)

let y_pos f y =
  let h = float_of_int f.height -. f.top -. f.bottom in
  let span = Float.max (f.y_max -. f.y_min) 1e-300 in
  float_of_int f.height -. f.bottom -. ((y -. f.y_min) /. span *. h)

let header ~width ~height =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
    width height width height width height

let axes buf f ~title ~xlabel ~ylabel ~y_ticks ~x_tick_labels =
  let bl = Printf.sprintf in
  (* frame *)
  Buffer.add_string buf
    (bl
       "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" stroke=\"#333\"/>\n"
       f.left f.top
       (float_of_int f.width -. f.left -. f.right)
       (float_of_int f.height -. f.top -. f.bottom));
  (* title and axis labels *)
  Buffer.add_string buf
    (bl
       "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"14\" font-weight=\"bold\">%s</text>\n"
       (float_of_int f.width /. 2.0) (f.top -. 10.0) (escape title));
  Buffer.add_string buf
    (bl "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"12\">%s</text>\n"
       (float_of_int f.width /. 2.0)
       (float_of_int f.height -. 6.0)
       (escape xlabel));
  Buffer.add_string buf
    (bl
       "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" font-size=\"12\" transform=\"rotate(-90 14 %.1f)\">%s</text>\n"
       (float_of_int f.height /. 2.0)
       (float_of_int f.height /. 2.0)
       (escape ylabel));
  (* y ticks with gridlines *)
  List.iter
    (fun v ->
      let y = y_pos f v in
      Buffer.add_string buf
        (bl
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n"
           f.left y
           (float_of_int f.width -. f.right)
           y);
      Buffer.add_string buf
        (bl
           "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" font-size=\"10\">%s</text>\n"
           (f.left -. 5.0) (y +. 3.5) (fmt_tick v)))
    y_ticks;
  (* x ticks *)
  List.iter
    (fun (x, label) ->
      let xp = x_pos f x in
      Buffer.add_string buf
        (bl
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#333\"/>\n"
           xp
           (float_of_int f.height -. f.bottom)
           xp
           (float_of_int f.height -. f.bottom +. 4.0));
      Buffer.add_string buf
        (bl
           "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" font-size=\"9\" transform=\"rotate(-35 %.1f %.1f)\">%s</text>\n"
           xp
           (float_of_int f.height -. f.bottom +. 14.0)
           xp
           (float_of_int f.height -. f.bottom +. 14.0)
           (escape label)))
    x_tick_labels

let marker buf ~shape ~color x y =
  let bl = Printf.sprintf in
  match shape with
  | "square" ->
      Buffer.add_string buf
        (bl "<rect x=\"%.1f\" y=\"%.1f\" width=\"6\" height=\"6\" fill=\"%s\"/>\n"
           (x -. 3.0) (y -. 3.0) color)
  | "diamond" ->
      Buffer.add_string buf
        (bl
           "<polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"%s\"/>\n"
           x (y -. 4.0) (x +. 4.0) y x (y +. 4.0) (x -. 4.0) y color)
  | "triangle" ->
      Buffer.add_string buf
        (bl "<polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"%s\"/>\n" x
           (y -. 4.0) (x +. 4.0) (y +. 3.0) (x -. 4.0) (y +. 3.0) color)
  | _ ->
      Buffer.add_string buf
        (bl "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3.2\" fill=\"%s\"/>\n" x y color)

let legend buf f entries =
  let bl = Printf.sprintf in
  List.iteri
    (fun i (label, color) ->
      let y = f.top +. 8.0 +. (float_of_int i *. 16.0) in
      let x = float_of_int f.width -. f.right -. 150.0 in
      Buffer.add_string buf
        (bl "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" fill=\"%s\"/>\n" x
           (y -. 8.0) color);
      Buffer.add_string buf
        (bl "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n" (x +. 14.0) y
           (escape label)))
    entries

let line_chart ?(width = 640) ?(height = 400) ?x_categories ?y_min ~title ~xlabel
    ~ylabel series =
  let all_points = List.concat_map (fun s -> s.points) series in
  let finite = List.filter (fun (_, y) -> Float.is_finite y) all_points in
  let xs = List.map fst finite and ys = List.map snd finite in
  let minl l = List.fold_left Float.min infinity l in
  let maxl l = List.fold_left Float.max neg_infinity l in
  let x_min, x_max =
    match x_categories with
    | Some cats -> (-0.5, float_of_int (List.length cats) -. 0.5)
    | None -> if xs = [] then (0.0, 1.0) else (minl xs, maxl xs)
  in
  let y_lo = match y_min with Some v -> v | None -> if ys = [] then 0.0 else Float.min 0.0 (minl ys) in
  let y_hi = if ys = [] then 1.0 else maxl ys in
  let y_hi = if y_hi <= y_lo then y_lo +. 1.0 else y_hi *. 1.05 in
  let f =
    {
      width;
      height;
      left = 60.0;
      right = 20.0;
      top = 30.0;
      bottom = 60.0;
      x_min;
      x_max;
      y_min = y_lo;
      y_max = y_hi;
    }
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~width ~height);
  let x_tick_labels =
    match x_categories with
    | Some cats -> List.mapi (fun i c -> (float_of_int i, c)) cats
    | None -> List.map (fun v -> (v, fmt_tick v)) (nice_ticks x_min x_max 6)
  in
  axes buf f ~title ~xlabel ~ylabel ~y_ticks:(nice_ticks y_lo y_hi 6) ~x_tick_labels;
  List.iteri
    (fun i s ->
      let color = palette.(i mod Array.length palette) in
      let shape = markers.(i mod Array.length markers) in
      let pts = List.filter (fun (_, y) -> Float.is_finite y) s.points in
      let path =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (x_pos f x) (y_pos f y)) pts)
      in
      if path <> "" then
        Buffer.add_string buf
          (Printf.sprintf
             "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.8\"/>\n"
             path color);
      List.iter (fun (x, y) -> marker buf ~shape ~color (x_pos f x) (y_pos f y)) pts)
    series;
  legend buf f (List.mapi (fun i s -> (s.label, palette.(i mod Array.length palette))) series);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let bar_chart ?(width = 640) ?(height = 400) ~title ~ylabel ~categories groups =
  let all = List.concat_map snd groups in
  let finite = List.filter Float.is_finite all in
  let y_hi =
    (match finite with [] -> 1.0 | l -> List.fold_left Float.max neg_infinity l) *. 1.1
  in
  let n_cats = List.length categories and n_groups = max 1 (List.length groups) in
  let f =
    {
      width;
      height;
      left = 60.0;
      right = 20.0;
      top = 30.0;
      bottom = 60.0;
      x_min = -0.5;
      x_max = float_of_int n_cats -. 0.5;
      y_min = 0.0;
      y_max = (if y_hi <= 0.0 then 1.0 else y_hi);
    }
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~width ~height);
  axes buf f ~title ~xlabel:"" ~ylabel
    ~y_ticks:(nice_ticks 0.0 f.y_max 6)
    ~x_tick_labels:(List.mapi (fun i c -> (float_of_int i, c)) categories);
  let slot = 0.8 /. float_of_int n_groups in
  List.iteri
    (fun gi (_, values) ->
      let color = palette.(gi mod Array.length palette) in
      List.iteri
        (fun ci v ->
          if Float.is_finite v then begin
            let x0 =
              x_pos f (float_of_int ci -. 0.4 +. (float_of_int gi *. slot))
            in
            let x1 =
              x_pos f (float_of_int ci -. 0.4 +. (float_of_int (gi + 1) *. slot))
            in
            let y = y_pos f v and y0 = y_pos f 0.0 in
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\"/>\n"
                 x0 y
                 (Float.max 1.0 (x1 -. x0 -. 2.0))
                 (Float.max 0.0 (y0 -. y))
                 color)
          end)
        values)
    groups;
  legend buf f (List.mapi (fun i (l, _) -> (l, palette.(i mod Array.length palette))) groups);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save path svg =
  let oc = open_out path in
  output_string oc svg;
  close_out oc
