lib/util/rng.mli:
