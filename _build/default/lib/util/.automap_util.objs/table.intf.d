lib/util/table.mli:
