lib/util/svg_plot.ml: Array Buffer Float List Option Printf String
