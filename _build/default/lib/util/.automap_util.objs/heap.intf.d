lib/util/heap.mli:
