(** Plain-text table rendering for the benchmark harness.

    Every figure and table of the paper is regenerated as rows printed
    by [bench/main.exe]; this module right-pads cells into aligned
    columns so the output is diffable and readable in a terminal. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row; the row may be shorter or longer than the header,
    missing cells render empty. *)

val render : t -> string
(** Whole table, headers underlined, columns aligned. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_f : float -> string
(** Canonical float cell: 4 significant digits. *)

val cell_fx : int -> float -> string
(** [cell_fx digits v] float cell with fixed decimal digits. *)
