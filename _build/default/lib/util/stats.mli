(** Descriptive statistics over float samples.

    The evaluation protocol of the paper (§5) runs each candidate
    mapping 7 times and averages, then re-runs the top 5 mappings 30
    times and reports the fastest average; this module provides the
    aggregations that protocol needs. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
}

val mean : float list -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty list. *)

val variance : float list -> float
(** Unbiased sample variance; 0 for singleton samples. *)

val stddev : float list -> float

val median : float list -> float
(** Median (mean of the two middle elements for even lengths). *)

val min_max : float list -> float * float

val summarize : float list -> summary

val coefficient_of_variation : float list -> float
(** stddev / mean — the run-to-run variation measure motivating the
    multi-run evaluation protocol. *)

val geometric_mean : float list -> float
(** Geometric mean of positive samples; used to aggregate speedups. *)

val confidence_interval_95 : float list -> float * float
(** Two-sided 95 % confidence interval of the mean using Student's t
    critical values (exact table for n ≤ 30, 1.96 beyond) — what the
    final 30-run re-evaluation reports.  Degenerates to (mean, mean)
    for singleton samples. *)

val pp_summary : Format.formatter -> summary -> unit
