(** Dependency-free SVG chart rendering.

    The benchmark harness emits each reproduced figure as an SVG file
    (line charts for the Figure 6/7/9 series, grouped bars for
    Figure 8) so results can be compared with the paper's plots
    visually.  Only the features the harness needs are implemented:
    numeric or categorical x axes, automatic "nice" ticks, multiple
    series with distinct colours and markers, a legend, and titles. *)

type series = {
  label : string;
  points : (float * float) list;  (** x is a category index when categorical *)
}

val line_chart :
  ?width:int ->
  ?height:int ->
  ?x_categories:string list ->
  ?y_min:float ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  string
(** Renders a line chart with markers.  When [x_categories] is given
    the x axis is categorical and each point's x is its category
    index.  Returns the SVG document. *)

val bar_chart :
  ?width:int ->
  ?height:int ->
  title:string ->
  ylabel:string ->
  categories:string list ->
  (string * float list) list ->
  string
(** Grouped bar chart: each (label, values) series contributes one bar
    per category.  Missing values may be [nan] (skipped). *)

val save : string -> string -> unit
(** [save path svg] writes the document to a file. *)

val nice_ticks : float -> float -> int -> float list
(** [nice_ticks lo hi n] ≈ n human-friendly tick positions covering
    [lo, hi] (exposed for tests). *)
