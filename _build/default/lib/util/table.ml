type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left (fun acc row -> max acc (String.length (cell row i))) 0 all
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i w ->
           let c = cell row i in
           c ^ String.make (w - String.length c) ' ')
         widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_row row))
    rows;
  Buffer.contents buf

let print t = print_endline (render t)
let cell_f v = Printf.sprintf "%.4g" v
let cell_fx digits v = Printf.sprintf "%.*f" digits v
