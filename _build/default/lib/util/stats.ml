type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | _ -> ()

let mean xs =
  require_nonempty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  match xs with
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      ss /. float_of_int (List.length xs - 1)

let stddev xs = sqrt (variance xs)

let median xs =
  require_nonempty "Stats.median" xs;
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

let summarize xs =
  let lo, hi = min_max xs in
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = lo;
    max = hi;
    median = median xs;
  }

let coefficient_of_variation xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else stddev xs /. m

let geometric_mean xs =
  require_nonempty "Stats.geometric_mean" xs;
  List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample") xs;
  exp (mean (List.map log xs))

(* two-sided 95% Student t critical values for df = 1..30 *)
let t_table =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let confidence_interval_95 xs =
  require_nonempty "Stats.confidence_interval_95" xs;
  let n = List.length xs in
  let m = mean xs in
  if n = 1 then (m, m)
  else begin
    let df = n - 1 in
    let t = if df <= 30 then t_table.(df - 1) else 1.96 in
    let half = t *. stddev xs /. sqrt (float_of_int n) in
    (m -. half, m +. half)
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.3g min=%.6g med=%.6g max=%.6g" s.n
    s.mean s.stddev s.min s.median s.max
