(* HEFT at processor-kind granularity: the factored search space of
   §3.2 only distinguishes kinds (the runtime logic spreads shards), so
   a "processor" here is the machine-wide pool of one kind and a task's
   cost on it is its group makespan across the pool. *)

let fastest_mem = function
  | Kinds.Gpu -> Kinds.Frame_buffer
  | Kinds.Cpu -> Kinds.System

let kind_choices machine (t : Graph.task) =
  List.filter
    (fun k -> Graph.has_variant t k && Machine.procs_of_kind_per_node machine k > 0)
    Kinds.all_proc_kinds

(* group makespan of a task on the pool of one kind *)
let pool_cost machine (t : Graph.task) k =
  let per_shard =
    Cost.task_duration machine t k ~arg_mem:(fun _ -> fastest_mem k)
  in
  let pool = Machine.procs_of_kind_per_node machine k * machine.Machine.nodes in
  let waves = (t.group_size + pool - 1) / pool in
  float_of_int waves *. per_shard

let avg_cost machine t =
  match kind_choices machine t with
  | [] -> pool_cost machine t Kinds.Cpu
  | ks -> Stats.mean (List.map (pool_cost machine t) ks)

(* average communication cost of an edge: bytes over a representative
   transfer rate (the PCIe link, the channel every cross-kind move
   crosses) *)
let comm_cost machine (e : Graph.edge) =
  e.Graph.bytes /. machine.Machine.copy.Machine.pcie_bw

let upward_ranks machine (g : Graph.t) =
  let n = Graph.n_tasks g in
  let ranks = Array.make n 0.0 in
  let order = List.rev (Graph.topological_order g) in
  List.iter
    (fun (t : Graph.task) ->
      let succ_term =
        List.fold_left
          (fun acc (e : Graph.edge) ->
            if e.Graph.carried then acc
            else
              let dst = (Graph.collection g e.Graph.dst).Graph.owner in
              Float.max acc (comm_cost machine e +. ranks.(dst)))
          0.0 (Graph.successors g t.Graph.tid)
      in
      ranks.(t.Graph.tid) <- avg_cost machine t +. succ_term)
    order;
  ranks

let mapping machine (g : Graph.t) =
  let ranks = upward_ranks machine g in
  let by_rank =
    Array.to_list g.Graph.tasks
    |> List.sort (fun (a : Graph.task) (b : Graph.task) ->
           compare ranks.(b.Graph.tid) ranks.(a.Graph.tid))
  in
  let kind_free = Hashtbl.create 4 in
  let free k = Option.value ~default:0.0 (Hashtbl.find_opt kind_free k) in
  let finish = Array.make (Graph.n_tasks g) 0.0 in
  let chosen = Array.make (Graph.n_tasks g) Kinds.Cpu in
  List.iter
    (fun (t : Graph.task) ->
      let choices =
        match kind_choices machine t with [] -> [ Kinds.Cpu ] | ks -> ks
      in
      let eft k =
        let ready =
          List.fold_left
            (fun acc (e : Graph.edge) ->
              if e.Graph.carried then acc
              else
                let src = (Graph.collection g e.Graph.src).Graph.owner in
                let comm =
                  if Kinds.equal_proc chosen.(src) k then 0.0 else comm_cost machine e
                in
                Float.max acc (finish.(src) +. comm))
            0.0 (Graph.predecessors g t.Graph.tid)
        in
        Float.max ready (free k) +. pool_cost machine t k
      in
      let best =
        List.fold_left
          (fun acc k -> if eft k < eft acc then k else acc)
          (List.hd choices) (List.tl choices)
      in
      chosen.(t.Graph.tid) <- best;
      finish.(t.Graph.tid) <- eft best;
      Hashtbl.replace kind_free best (eft best))
    by_rank;
  Mapping.make g
    ~distribute:(fun _ -> true)
    ~proc:(fun t -> chosen.(t.Graph.tid))
    ~mem:(fun c -> fastest_mem chosen.((Graph.task g c.Graph.owner).Graph.tid))
