lib/search/random_search.ml: Evaluator Mapping Rng Space
