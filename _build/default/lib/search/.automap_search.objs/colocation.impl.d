lib/search/colocation.ml: Graph Int Kinds List Mapping Overlap Set
