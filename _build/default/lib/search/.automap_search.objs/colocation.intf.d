lib/search/colocation.mli: Graph Kinds Machine Mapping Overlap
