lib/search/cd.ml: Descent Evaluator Mapping
