lib/search/heft.mli: Graph Machine Mapping
