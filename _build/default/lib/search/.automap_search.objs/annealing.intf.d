lib/search/annealing.mli: Evaluator Mapping
