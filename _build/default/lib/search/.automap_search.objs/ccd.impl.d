lib/search/ccd.ml: Descent Evaluator Mapping Overlap
