lib/search/ccd.mli: Evaluator Mapping
