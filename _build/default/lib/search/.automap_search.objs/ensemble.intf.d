lib/search/ensemble.mli: Evaluator Mapping
