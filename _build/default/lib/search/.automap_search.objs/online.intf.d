lib/search/online.mli: Graph Machine Mapping
