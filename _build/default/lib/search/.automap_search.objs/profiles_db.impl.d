lib/search/profiles_db.ml: Buffer Hashtbl List Mapping Printf Stats String
