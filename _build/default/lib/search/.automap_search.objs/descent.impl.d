lib/search/descent.ml: Colocation Evaluator Graph List Mapping Profile Space
