lib/search/random_search.mli: Evaluator Mapping
