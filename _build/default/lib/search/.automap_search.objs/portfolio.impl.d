lib/search/portfolio.ml: Annealing Ccd Cd Evaluator Float List Mapping Printf Random_search
