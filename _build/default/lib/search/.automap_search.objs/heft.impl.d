lib/search/heft.ml: Array Cost Float Graph Hashtbl Kinds List Machine Mapping Option Stats
