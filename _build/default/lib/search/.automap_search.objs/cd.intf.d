lib/search/cd.mli: Evaluator Mapping
