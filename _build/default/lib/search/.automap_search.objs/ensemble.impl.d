lib/search/ensemble.ml: Array Evaluator Kinds List Mapping Profiles_db Rng Space
