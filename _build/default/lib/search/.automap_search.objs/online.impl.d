lib/search/online.ml: Ccd Evaluator Exec Float Mapping Placement
