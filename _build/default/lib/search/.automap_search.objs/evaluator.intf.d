lib/search/evaluator.mli: Exec Graph Machine Mapping Profile Profiles_db Space
