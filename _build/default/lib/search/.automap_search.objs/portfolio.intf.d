lib/search/portfolio.mli: Evaluator Mapping
