lib/search/profiles_db.mli: Graph Mapping
