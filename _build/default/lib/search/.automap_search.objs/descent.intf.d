lib/search/descent.mli: Evaluator Graph Mapping Overlap Profile
