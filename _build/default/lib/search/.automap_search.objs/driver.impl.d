lib/search/driver.ml: Annealing Ccd Cd Ensemble Evaluator Format List Mapping Printf Profiles_db Random_search Stats
