lib/search/evaluator.ml: Array Exec Graph List Machine Mapping Option Placement Profile Profiles_db Space
