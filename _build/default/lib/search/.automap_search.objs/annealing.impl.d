lib/search/annealing.ml: Array Evaluator Float Graph Kinds List Mapping Rng Space
