lib/search/driver.mli: Exec Format Graph Machine Mapping Profiles_db Stats
