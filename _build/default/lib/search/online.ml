type result = {
  default_total : float;
  tuned_total : float;
  search_time : float;
  iterations_spent : int;
  best : Mapping.t;
  speedup : float;
}

let run ?(seed = 0) ?(search_fraction = 0.1) ?(rotations = 5) ~total_iterations machine
    graph =
  if total_iterations <= 0 then invalid_arg "Online.run: total_iterations must be positive";
  if search_fraction <= 0.0 || search_fraction >= 1.0 then
    invalid_arg "Online.run: search_fraction must be in (0,1)";
  let default = Mapping.default_start graph machine in
  let per_iter_default =
    match Exec.run ~noise_sigma:0.0 machine graph default ~iterations:1 with
    | Ok r -> r.Exec.per_iteration
    | Error e -> failwith ("Online.run: " ^ Placement.error_to_string e)
  in
  let default_total = per_iter_default *. float_of_int total_iterations in
  (* Inspector: candidate evaluations run a 1-iteration slice of the
     production job; the virtual time they accumulate is production
     time spent searching. *)
  let budget = search_fraction *. default_total in
  let ev =
    Evaluator.create ~runs:3 ~noise_sigma:0.02 ~seed ~iterations:1 machine graph
  in
  let best, _ = Ccd.search ~rotations ~budget ev in
  let search_time = Evaluator.virtual_time ev in
  let iterations_spent =
    int_of_float (ceil (search_time /. Float.max per_iter_default 1e-300))
  in
  let iterations_spent = min iterations_spent total_iterations in
  let remaining = total_iterations - iterations_spent in
  let per_iter_best =
    match Exec.run ~noise_sigma:0.0 machine graph best ~iterations:1 with
    | Ok r -> r.Exec.per_iteration
    | Error _ -> per_iter_default
  in
  let tuned_total = search_time +. (per_iter_best *. float_of_int remaining) in
  {
    default_total;
    tuned_total;
    search_time;
    iterations_spent;
    best;
    speedup = default_total /. tuned_total;
  }
