(** Inspector–executor style on-line tuning — the deployment mode §6
    sketches in "Profile-Guided Optimization": run AutoMap during an
    initial portion of a production run and use the discovered mapping
    for the remainder.

    [run] models a production job of [total_iterations] time steps.
    The inspector phase spends up to [search_fraction] of the
    *default-mapping* projected job time searching (every candidate
    evaluation "costs" the iterations it simulates); the executor
    phase then runs the remaining iterations under the best mapping
    found so far.  The result compares total time against simply
    running the whole job with the default mapping, i.e. the payback
    analysis a user needs before enabling on-line tuning. *)

type result = {
  default_total : float;   (** seconds to run the whole job untuned *)
  tuned_total : float;     (** inspector + executor seconds *)
  search_time : float;     (** inspector share of [tuned_total] *)
  iterations_spent : int;  (** iterations consumed by the inspector *)
  best : Mapping.t;
  speedup : float;         (** default_total / tuned_total *)
}

val run :
  ?seed:int ->
  ?search_fraction:float ->
  ?rotations:int ->
  total_iterations:int ->
  Machine.t ->
  Graph.t ->
  result
(** [search_fraction] defaults to 0.1.  Raises [Failure] if even the
    default mapping cannot run. *)
