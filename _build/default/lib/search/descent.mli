(** The inner loop shared by CD and CCD: OptimizeTask (Algorithm 1,
    lines 10–19).

    For one group task, greedily optimize — accepting only strict
    improvements (TestMapping, lines 20–24) — first the distribution
    setting, then jointly the processor kind and, per collection
    argument in decreasing size order, the memory kind.  When an
    overlap graph is supplied (CCD), every candidate is repaired into
    co-location-satisfying form by Algorithm 2 before being tested;
    plain CD tests the raw candidate (Algorithm 1 "excluding
    line 17"). *)

val test_mapping :
  Evaluator.t -> Mapping.t -> Mapping.t * float -> Mapping.t * float
(** [test_mapping ev candidate (best, best_perf)] evaluates the
    candidate and returns it with its performance if strictly better,
    otherwise the incumbent (Algorithm 1 lines 20-24). *)

val optimize_task :
  Evaluator.t ->
  overlap:Overlap.t option ->
  should_stop:(unit -> bool) ->
  Graph.task ->
  Mapping.t * float ->
  Mapping.t * float
(** One OptimizeTask pass.  [should_stop] is polled between
    evaluations so a time budget can cut the search short; the
    incumbent is returned unchanged from that point on. *)

val sweep :
  Evaluator.t ->
  overlap:Overlap.t option ->
  should_stop:(unit -> bool) ->
  profile:Profile.t ->
  Mapping.t * float ->
  Mapping.t * float
(** One full rotation: OptimizeTask over every task, longest-running
    first (Algorithm 1 line 6). *)
