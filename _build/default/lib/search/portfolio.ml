type member = Ccd of int | Cd | Annealing | Random

let default_members = [ Ccd 5; Annealing; Random ]

let member_name = function
  | Ccd r -> Printf.sprintf "ccd(%d)" r
  | Cd -> "cd"
  | Annealing -> "annealing"
  | Random -> "random"

let search ?(members = default_members) ?(budget = infinity) ?(seed = 0) ev =
  if members = [] then invalid_arg "Portfolio.search: no members";
  let share =
    if Float.is_finite budget then budget /. float_of_int (List.length members)
    else infinity
  in
  let g = Evaluator.graph ev in
  let machine = Evaluator.machine ev in
  let start0 = Mapping.default_start g machine in
  let p0 = Evaluator.evaluate ev start0 in
  List.fold_left
    (fun (best, perf) member ->
      let deadline = Evaluator.virtual_time ev +. share in
      let result =
        match member with
        | Ccd rotations -> Ccd.search ~rotations ~start:best ~budget:deadline ev
        | Cd -> Cd.search ~start:best ~budget:deadline ev
        | Annealing ->
            Annealing.search ~seed:(seed + 13) ~start:best ~budget:deadline ev
        | Random -> Random_search.search ~seed:(seed + 29) ~start:best ~budget:deadline ev
      in
      let m, p = result in
      if p < perf then (m, p) else (best, perf))
    (start0, p0) members
